package core

import (
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// LoopKernel adapts a plain parallel-for body into a Kernel — the
// one-liner entry point for code that just wants OpenMP-style
// `parallel for` with FDT picking the team size. Iterations are
// block-distributed across the team, like OpenMP's static schedule.
type LoopKernel struct {
	name  string
	iters int
	body  func(tc *thread.Ctx, iter int)
}

// NewLoopKernel wraps a loop body. The body receives the thread
// context (for Compute/Load/Store/Critical) and the iteration index;
// it must be safe to run iterations in any block distribution.
func NewLoopKernel(name string, iterations int, body func(tc *thread.Ctx, iter int)) *LoopKernel {
	return &LoopKernel{name: name, iters: iterations, body: body}
}

// Name implements Kernel.
func (k *LoopKernel) Name() string { return k.name }

// Iterations implements Kernel.
func (k *LoopKernel) Iterations() int { return k.iters }

// RunChunk implements Kernel.
func (k *LoopKernel) RunChunk(master *thread.Ctx, n, lo, hi int) {
	master.Fork(n, func(tc *thread.Ctx) {
		myLo, myHi := tc.Range(lo, hi)
		for i := myLo; i < myHi; i++ {
			k.body(tc, i)
		}
	})
}

// LoopWorkload is a single-loop program.
type LoopWorkload struct {
	kernel *LoopKernel
}

// NewLoopWorkload wraps one loop kernel as a runnable workload.
func NewLoopWorkload(k *LoopKernel) *LoopWorkload { return &LoopWorkload{kernel: k} }

// Name implements Workload.
func (w *LoopWorkload) Name() string { return w.kernel.Name() }

// Kernels implements Workload.
func (w *LoopWorkload) Kernels() []Kernel { return []Kernel{w.kernel} }

// ParallelFor runs `iterations` of body on a fresh machine under the
// combined SAT+BAT policy and reports the run — the shortest path
// from "I have a loop" to "FDT sized my team":
//
//	res := core.ParallelFor(machine.DefaultConfig(), "mykernel", 10000,
//		func(tc *thread.Ctx, i int) {
//			tc.Load(base + uint64(8*i))
//			tc.Exec(40)
//		})
func ParallelFor(cfg machine.Config, name string, iterations int, body func(tc *thread.Ctx, iter int)) RunResult {
	m := machine.MustNew(cfg)
	w := NewLoopWorkload(NewLoopKernel(name, iterations, body))
	return NewController(Combined{}).Run(m, w)
}
