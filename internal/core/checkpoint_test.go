package core_test

import (
	"reflect"
	"testing"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

// The checkpoint determinism contract: a machine checkpointed at
// quiescence, restored into a fresh machine of the same Config, and
// handed the same remaining work must reproduce the uninterrupted
// execution cycle for cycle. The tests drive a two-leg run — warm the
// machine with one workload execution, then run a second execution on
// top of the warm state — and compare the second leg between the
// uninterrupted machine and a checkpoint/restore round trip. The
// second leg's training, decisions, timing and power all depend on
// the warm microarchitectural state (cache tags, DRAM row buffers,
// bus schedule, heap cursor), so any state the checkpoint misses
// shows up as a divergence.

// ckptWorkloads are small instances of three differently-limited
// workloads: a critical-section-limited miner, a bandwidth-limited
// streamer, and a two-kernel pipeline whose second kernel consumes
// the first's cache-resident output.
var ckptWorkloads = []struct {
	name    string
	factory core.Factory
}{
	{"pagemine", func(m *machine.Machine) core.Workload {
		return workloads.NewPageMine(m, workloads.PageMineParams{
			Pages: 64, PageBytes: 1320, WorkPerCharInstr: 2, MergePerBinInstr: 6,
		})
	}},
	{"ed", func(m *machine.Machine) core.Workload {
		return workloads.NewED(m, workloads.EDParams{N: 64 << 10, Block: 1024, MulAddInstr: 4})
	}},
	{"mtwister", func(m *machine.Machine) core.Workload {
		return workloads.NewMTwister(m, workloads.MTwisterParams{
			N: 8 << 10, BlockLen: 256, GenInstr: 260, BoxMullerInstr: 40,
		})
	}},
}

// ckptPolicies builds a fresh controller per leg so no controller
// state leaks between runs.
var ckptPolicies = []struct {
	name string
	mk   func() *core.Controller
}{
	{"serial", func() *core.Controller { return core.NewController(core.Static{N: 1}) }},
	{"SAT", func() *core.Controller { return core.NewController(core.SAT{}) }},
	{"BAT", func() *core.Controller { return core.NewController(core.BAT{}) }},
	{"adaptive", func() *core.Controller {
		return core.NewAdaptiveController(core.Combined{}, core.DefaultMonitorParams())
	}},
}

// runSecondLeg executes the two-leg sequence and returns the second
// leg's result plus the machine's final checkpoint. With interrupt
// set, the warm state crosses a Checkpoint/RestoreCheckpoint round
// trip into a fresh machine before the second leg runs.
func runSecondLeg(cfg machine.Config, f core.Factory, mk func() *core.Controller, interrupt bool) (core.RunResult, *machine.Checkpoint) {
	m := machine.MustNew(cfg)
	mk().Run(m, f(m))
	if interrupt {
		cp := m.Checkpoint()
		m = machine.MustNew(cfg)
		m.RestoreCheckpoint(cp)
	}
	res := mk().Run(m, f(m))
	return res, m.Checkpoint()
}

func TestCheckpointRestoreDeterminism(t *testing.T) {
	cfg := machine.DefaultConfig()
	for _, w := range ckptWorkloads {
		for _, p := range ckptPolicies {
			t.Run(w.name+"/"+p.name, func(t *testing.T) {
				want, wantCp := runSecondLeg(cfg, w.factory, p.mk, false)
				got, gotCp := runSecondLeg(cfg, w.factory, p.mk, true)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("restored continuation diverged:\nuninterrupted: %+v\nrestored:      %+v", want, got)
				}
				if !reflect.DeepEqual(wantCp, gotCp) {
					t.Errorf("final machine state diverged after restore")
					diffCheckpoints(t, wantCp, gotCp)
				}
			})
		}
	}
}

// TestCheckpointRoundTrip asserts that restoring a checkpoint into a
// fresh machine reproduces the checkpoint itself — Restore(State())
// is the identity on the observable state.
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := machine.DefaultConfig()
	m := machine.MustNew(cfg)
	core.NewController(core.SAT{}).Run(m, ckptWorkloads[0].factory(m))
	cp := m.Checkpoint()
	m2 := machine.MustNew(cfg)
	m2.RestoreCheckpoint(cp)
	cp2 := m2.Checkpoint()
	if !reflect.DeepEqual(cp, cp2) {
		t.Errorf("checkpoint round trip not identity")
		diffCheckpoints(t, cp, cp2)
	}
}

// diffCheckpoints narrows a checkpoint mismatch to the component that
// diverged, so failures point at the subsystem missing state.
func diffCheckpoints(t *testing.T, a, b *machine.Checkpoint) {
	t.Helper()
	if a.Now != b.Now {
		t.Errorf("  clock: %d vs %d", a.Now, b.Now)
	}
	for name, av := range a.Counters {
		if bv := b.Counters[name]; av != bv {
			t.Errorf("  counter %s: %d vs %d", name, av, bv)
		}
	}
	for name := range b.Counters {
		if _, ok := a.Counters[name]; !ok {
			t.Errorf("  counter %s: missing in first", name)
		}
	}
	if !reflect.DeepEqual(a.Power, b.Power) {
		t.Errorf("  power integrals: %v vs %v", a.Power, b.Power)
	}
	if !reflect.DeepEqual(a.Mem, b.Mem) {
		t.Errorf("  memory-system state diverged")
	}
}

// FuzzCheckpoint fuzzes the determinism property over workload,
// policy and input size.
func FuzzCheckpoint(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(2))
	f.Add(uint8(1), uint8(2), uint8(0))
	f.Add(uint8(2), uint8(3), uint8(1))
	cfg := machine.DefaultConfig()
	f.Fuzz(func(t *testing.T, wi, pi, size uint8) {
		scale := 1 + int(size%3) // 1..3
		var factory core.Factory
		switch wi % 3 {
		case 0:
			factory = func(m *machine.Machine) core.Workload {
				return workloads.NewPageMine(m, workloads.PageMineParams{
					Pages: 16 * scale, PageBytes: 660, WorkPerCharInstr: 2, MergePerBinInstr: 6,
				})
			}
		case 1:
			factory = func(m *machine.Machine) core.Workload {
				return workloads.NewED(m, workloads.EDParams{N: 16 << 10 * scale, Block: 1024, MulAddInstr: 4})
			}
		default:
			factory = func(m *machine.Machine) core.Workload {
				return workloads.NewMTwister(m, workloads.MTwisterParams{
					N: 4 << 10 * scale, BlockLen: 256, GenInstr: 260, BoxMullerInstr: 40,
				})
			}
		}
		pol := ckptPolicies[int(pi)%len(ckptPolicies)]
		want, wantCp := runSecondLeg(cfg, factory, pol.mk, false)
		got, gotCp := runSecondLeg(cfg, factory, pol.mk, true)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("restored continuation diverged for w=%d p=%s scale=%d", wi%3, pol.name, scale)
		}
		if !reflect.DeepEqual(wantCp, gotCp) {
			t.Errorf("final state diverged for w=%d p=%s scale=%d", wi%3, pol.name, scale)
		}
	})
}
