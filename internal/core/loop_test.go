package core

import (
	"testing"

	"fdt/internal/machine"
	"fdt/internal/thread"
)

func TestParallelForComputeBoundScales(t *testing.T) {
	res := ParallelFor(machine.DefaultConfig(), "compute", 2000, func(tc *thread.Ctx, i int) {
		tc.Exec(800)
	})
	if got := res.Kernels[0].Decision.Threads; got != 32 {
		t.Errorf("compute-bound loop got %d threads, want 32", got)
	}
	if res.Workload != "compute" {
		t.Errorf("workload name = %q", res.Workload)
	}
}

func TestParallelForCSBoundLimited(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	lock := thread.NewLock(m)
	k := NewLoopKernel("cs", 2000, func(tc *thread.Ctx, i int) {
		tc.Exec(1600)
		tc.Critical(lock, func() { tc.Exec(120) })
	})
	res := NewController(Combined{}).Run(m, NewLoopWorkload(k))
	got := res.Kernels[0].Decision.Threads
	if got < 2 || got > 12 {
		t.Errorf("CS-bound loop got %d threads, want a synchronization-limited count", got)
	}
}

func TestLoopKernelCoversAllIterations(t *testing.T) {
	seen := make([]int, 500)
	m := machine.MustNew(machine.DefaultConfig())
	k := NewLoopKernel("cover", 500, func(tc *thread.Ctx, i int) {
		seen[i]++
		tc.Exec(100)
	})
	NewController(Combined{}).Run(m, NewLoopWorkload(k))
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("iteration %d ran %d times", i, n)
		}
	}
}

func TestLoopKernelBandwidthBound(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	base := m.Alloc(64 << 20)
	k := NewLoopKernel("stream", 4096, func(tc *thread.Ctx, i int) {
		tc.Load(base + uint64(64*i)) // one fresh line per iteration
		tc.Exec(16)
	})
	res := NewController(Combined{}).Run(m, NewLoopWorkload(k))
	got := res.Kernels[0].Decision.Threads
	if got < 2 || got > 16 {
		t.Errorf("streaming loop got %d threads, want a bandwidth-limited count", got)
	}
	if res.Kernels[0].Decision.PBW == 0 {
		t.Error("BAT did not detect the bandwidth limit")
	}
}
