package core

import (
	"fmt"
	"reflect"
	"testing"

	"fdt/internal/counters"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// This file pins the pipeline refactor to the seed controller:
// seedRunKernel below is the pre-pipeline runKernel, kept verbatim as
// a reference implementation. With monitoring disabled, the staged
// Sample -> Estimate -> Execute pipeline must reproduce its behaviour
// bit for bit — same chunk sequence, same decisions, same cycles.

// seedRun is the seed controller's Run loop over seedRunKernel.
func seedRun(ctl *Controller, m *machine.Machine, w Workload) RunResult {
	res := RunResult{Workload: w.Name(), Policy: ctl.Policy.Name()}
	thread.Run(m, func(c *thread.Ctx) {
		if sw, ok := w.(SetupWorkload); ok {
			sw.Setup(c)
		}
		for _, k := range w.Kernels() {
			res.Kernels = append(res.Kernels, seedRunKernel(ctl, c, k))
		}
	})
	res.TotalCycles = m.Eng.Now()
	res.AvgActiveCores = m.Power.AverageActiveCores(res.TotalCycles)
	res.BusBusyCycles = m.Ctrs.Counter(counters.BusBusyCycles).Read()
	return res
}

// seedRunKernel is the seed's monolithic training/estimation/execution
// flow, copied unchanged (modulo being a free function).
func seedRunKernel(ctl *Controller, c *thread.Ctx, k Kernel) KernelResult {
	m := c.Machine()
	cores := m.Contexts()
	n := k.Iterations()
	start := c.CPU.CycleCount()

	if !ctl.Policy.NeedsTraining() || n < ctl.Params.MinIterations {
		d := Decision{Threads: ctl.Policy.StaticThreads(cores)}
		if n > 0 {
			k.RunChunk(c, d.Threads, 0, n)
		}
		return KernelResult{
			Kernel:   k.Name(),
			Decision: d,
			Cycles:   c.CPU.CycleCount() - start,
		}
	}

	maxTrain := int(float64(n) * ctl.Params.MaxTrainFraction)
	if maxTrain < 2 {
		maxTrain = 2
	}
	if maxTrain > n {
		maxTrain = n
	}

	csCtr := m.Ctrs.Counter(thread.CtrCSCycles)
	busCtr := m.Ctrs.Counter(counters.BusBusyCycles)

	var tr TrainResult
	var ratios []float64
	type iterSample struct{ dt, dcs, db uint64 }
	var samples []iterSample
	satDone := !ctl.Policy.WantsSAT()
	batDone := !ctl.Policy.WantsBAT()

	iter := 0
	for iter < maxTrain && !(satDone && batDone) {
		t0 := c.CPU.CycleCount()
		cs0 := csCtr.Sample()
		b0 := busCtr.Sample()
		k.RunChunk(c, 1, iter, iter+1)
		iter++
		dt := c.CPU.CycleCount() - t0
		dcs := csCtr.DeltaSince(cs0)
		db := busCtr.DeltaSince(b0)
		tr.TotalCycles += dt
		tr.CSCycles += dcs
		tr.BusBusyCycles += db
		samples = append(samples, iterSample{dt, dcs, db})

		if !satDone {
			ratios = append(ratios, csRatio(dt, dcs))
			if stableWindow(ratios, ctl.Params.StabilityWindow, ctl.Params.StabilityTol) {
				satDone = true
				tr.SATStable = true
			}
		}
		if !batDone && tr.TotalCycles >= ctl.Params.BATEarlyOutCycles && len(samples) >= 2 {
			var wt, wb uint64
			for _, s := range samples[1:] {
				wt += s.dt
				wb += s.db
			}
			if wt > 0 && float64(wb)/float64(wt)*float64(cores) < 1 {
				batDone = true
				tr.BWExcluded = true
			}
		}
	}
	tr.Iters = iter

	if len(samples) > 1 {
		est := samples[1:]
		if w := ctl.Params.StabilityWindow; w > 0 && len(est) > w {
			est = est[len(est)-w:]
		}
		var wt, wcs, wb uint64
		for _, s := range est {
			wt += s.dt
			wcs += s.dcs
			wb += s.db
		}
		if wt > 0 {
			tr.TotalCycles, tr.CSCycles, tr.BusBusyCycles = wt, wcs, wb
		}
	}

	d := ctl.Policy.Estimate(tr, cores)
	trainCycles := c.CPU.CycleCount() - start
	if iter < n {
		k.RunChunk(c, d.Threads, iter, n)
	}
	return KernelResult{
		Kernel:      k.Name(),
		Decision:    d,
		TrainIters:  iter,
		TrainCycles: trainCycles,
		Cycles:      c.CPU.CycleCount() - start,
	}
}

// TestPipelineReproducesSeedController sweeps synthetic kernels across
// the policy and shape space and demands the monitoring-disabled
// pipeline match the seed reference exactly: identical RunResult
// (decisions, cycle counts, power) and the identical RunChunk call
// sequence — the property that makes every train-once figure
// bit-identical across the refactor.
func TestPipelineReproducesSeedController(t *testing.T) {
	policies := []Policy{SAT{}, BAT{}, Combined{}, Static{N: 5}, Static{}}
	shapes := []struct {
		iters    int
		compute  uint64
		cs       uint64
		memLines int
	}{
		{5, 1000, 0, 0},     // below MinIterations: static fallback
		{10, 1000, 50, 0},   // tiny kernel, trains at floor
		{400, 800, 40, 0},   // CS-limited
		{400, 500, 0, 24},   // bandwidth-limited
		{1000, 900, 5, 4},   // mixed, mild
		{2000, 200, 0, 0},   // scalable, fast iterations
		{64, 12000, 600, 8}, // slow iterations, CS + bus
	}
	for _, pol := range policies {
		for _, sh := range shapes {
			name := fmt.Sprintf("%s/it%d-c%d-cs%d-m%d", pol.Name(), sh.iters, sh.compute, sh.cs, sh.memLines)
			f := newSynthFactory(sh.iters, sh.compute, sh.cs, sh.memLines)

			mSeed := machine.MustNew(machine.DefaultConfig())
			wSeed := f(mSeed)
			rSeed := seedRun(NewController(pol), mSeed, wSeed)

			mNew := machine.MustNew(machine.DefaultConfig())
			wNew := f(mNew)
			rNew := NewController(pol).Run(mNew, wNew)

			if !reflect.DeepEqual(rSeed, rNew) {
				t.Errorf("%s: results diverge\nseed: %+v\npipe: %+v", name, rSeed, rNew)
			}
			kSeed := wSeed.Kernels()[0].(*synthKernel)
			kNew := wNew.Kernels()[0].(*synthKernel)
			if !reflect.DeepEqual(kSeed.chunkTeams, kNew.chunkTeams) ||
				!reflect.DeepEqual(kSeed.ranges, kNew.ranges) {
				t.Errorf("%s: chunk sequences diverge\nseed: %v %v\npipe: %v %v",
					name, kSeed.chunkTeams, kSeed.ranges, kNew.chunkTeams, kNew.ranges)
			}
		}
	}
}

func TestCSRatioEdgeCases(t *testing.T) {
	cases := []struct {
		total, cs uint64
		want      float64
	}{
		{100, 20, 0.25}, // 20 / 80
		{100, 100, 1},   // cs == total: all time in the CS
		{100, 150, 1},   // cs > total (counter skew): clamp, don't blow up
		{0, 0, 1},       // degenerate zero-cycle iteration
		{100, 0, 0},     // no critical section
		{1, 0, 0},
	}
	for _, c := range cases {
		if got := csRatio(c.total, c.cs); got != c.want {
			t.Errorf("csRatio(%d, %d) = %v, want %v", c.total, c.cs, got, c.want)
		}
	}
}

func TestStableWindowEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		ratios []float64
		w      int
		tol    float64
		want   bool
	}{
		{"window longer than samples", []float64{1, 1}, 3, 0.05, false},
		{"w=0 never stabilizes", []float64{1, 1, 1, 1}, 0, 0.05, false},
		{"w=1 never stabilizes", []float64{1, 1, 1, 1}, 1, 0.05, false},
		{"all-zero window is stable", []float64{0.5, 0, 0, 0}, 3, 0.05, true},
		{"agreeing window", []float64{9, 1.00, 1.02, 0.99}, 3, 0.05, true},
		{"spread beyond tol", []float64{1.0, 1.2, 1.0}, 3, 0.05, false},
		{"only trailing window judged", []float64{50, 2, 2, 2}, 3, 0.05, true},
		{"zero among nonzero busts the spread", []float64{0, 1, 1}, 3, 0.05, false},
	}
	for _, c := range cases {
		if got := stableWindow(c.ratios, c.w, c.tol); got != c.want {
			t.Errorf("%s: stableWindow(%v, %d, %v) = %v, want %v",
				c.name, c.ratios, c.w, c.tol, got, c.want)
		}
	}
}
