// Package core implements the paper's contribution: Feedback-Driven
// Threading (FDT), a runtime framework that samples a few iterations
// of a parallel kernel, reads performance counters, and chooses the
// number of threads for the remaining iterations.
//
// The package contains the analytic models of Sections 4.1 and 5.1 as
// pure functions (model.go), the training loop of Sections 4.2/5.2
// (controller.go), and the threading policies built on them: SAT,
// BAT, their combination (Section 6), and static baselines
// (policy.go).
package core

import "math"

// ExecTimeCS evaluates Equation 1: the execution time of a kernel
// with serial critical-section time tCS and parallelizable time tNoCS
// when run on p threads,
//
//	T_P = T_NoCS/P + P*T_CS.
//
// Times are in arbitrary units; the result shares them.
func ExecTimeCS(tNoCS, tCS float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	return tNoCS/float64(p) + float64(p)*tCS
}

// OptimalThreadsCS evaluates Equation 3: the real-valued thread count
// minimizing Equation 1,
//
//	P_CS = sqrt(T_NoCS / T_CS).
//
// A kernel with no critical section (tCS = 0) returns +Inf — it is
// never synchronization-limited.
func OptimalThreadsCS(tNoCS, tCS float64) float64 {
	if tCS <= 0 {
		return math.Inf(1)
	}
	if tNoCS < 0 {
		tNoCS = 0
	}
	return math.Sqrt(tNoCS / tCS)
}

// BusUtilAtP evaluates Equation 4 with the physical cap: utilization
// grows linearly in the thread count until it saturates at 1.
// bu1 is the fractional bus utilization of a single thread (0..1).
func BusUtilAtP(bu1 float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	u := bu1 * float64(p)
	if u > 1 {
		return 1
	}
	if u < 0 {
		return 0
	}
	return u
}

// SaturationThreads evaluates Equation 5: the real-valued minimum
// thread count that saturates the off-chip bus,
//
//	P_BW = 100 / BU_1  (with BU_1 in percent; here fractional: 1/bu1).
//
// A kernel that does not touch the bus (bu1 = 0) returns +Inf.
func SaturationThreads(bu1 float64) float64 {
	if bu1 <= 0 {
		return math.Inf(1)
	}
	return 1 / bu1
}

// ExecTimeBW evaluates Equation 6: with t1 the single-thread time of
// the parallel part and pbw the bus-saturation thread count, execution
// time scales as t1/p until saturation and is flat beyond it.
func ExecTimeBW(t1 float64, p int, pbw float64) float64 {
	if p < 1 {
		p = 1
	}
	if float64(p) <= pbw {
		return t1 / float64(p)
	}
	return t1 / pbw
}

// RoundSAT converts the real P_CS of Equation 3 into SAT's thread
// count: rounded to the nearest integer (Section 4.2.2), clamped to
// [1, cores].
func RoundSAT(pcs float64, cores int) int {
	if math.IsInf(pcs, 1) {
		return cores
	}
	n := int(pcs + 0.5)
	return clampThreads(n, cores)
}

// RoundBAT converts the real P_BW of Equation 5 into BAT's thread
// count: rounded up (Section 5.2: "a higher number of threads may not
// hurt performance while a smaller number can"), clamped to
// [1, cores].
func RoundBAT(pbw float64, cores int) int {
	if math.IsInf(pbw, 1) {
		return cores
	}
	n := int(math.Ceil(pbw - 1e-9))
	return clampThreads(n, cores)
}

// CombinedThreads evaluates Equation 7:
//
//	P_FDT = MIN(P_BW, P_CS, num_available_cores).
//
// Zero-valued pcs/pbw mean "unlimited" (the corresponding limiter was
// not detected).
func CombinedThreads(pcs, pbw, cores int) int {
	p := cores
	if pcs > 0 && pcs < p {
		p = pcs
	}
	if pbw > 0 && pbw < p {
		p = pbw
	}
	return clampThreads(p, cores)
}

func clampThreads(n, cores int) int {
	if n < 1 {
		return 1
	}
	if n > cores {
		return cores
	}
	return n
}
