package core

import (
	"fdt/internal/counters"
	"fdt/internal/machine"
	"fdt/internal/power"
	"fdt/internal/sampled"
	"fdt/internal/thread"
	"fdt/internal/trace"
)

// TrainingParams tunes the FDT training loop. Defaults reproduce the
// paper's settings (Sections 4.2.1 and 5.2).
type TrainingParams struct {
	// MaxTrainFraction caps training at this fraction of the kernel's
	// iterations (paper: 1%). At least one iteration always trains.
	MaxTrainFraction float64
	// StabilityWindow is the number of consecutive iterations whose
	// T_CS/T_NoCS ratio must agree for SAT training to stop early
	// (paper: 3).
	StabilityWindow int
	// StabilityTol is the allowed relative spread within the window
	// (paper: 5%).
	StabilityTol float64
	// BATEarlyOutCycles is the training time after which BAT may
	// conclude the kernel cannot be bandwidth-limited (paper: 10000).
	BATEarlyOutCycles uint64
	// MinIterations is the smallest kernel (in iterations) worth
	// training on: peeling a meaningful sample from a shorter loop
	// would consume most of it single-threaded, so such kernels run
	// with the policy's static fallback. The paper's Section 9 notes
	// non-iterative kernels need "a specialized training loop"; until
	// a kernel provides one, not training is the safe default.
	MinIterations int
}

// DefaultTrainingParams returns the paper's training configuration.
func DefaultTrainingParams() TrainingParams {
	return TrainingParams{
		MaxTrainFraction:  0.01,
		StabilityWindow:   3,
		StabilityTol:      0.05,
		BATEarlyOutCycles: 10000,
		MinIterations:     8,
	}
}

// PhaseDecision records one phase of an adaptively-executed kernel:
// the decision that governed it, the training that produced the
// decision, and what ended the previous phase.
type PhaseDecision struct {
	// StartIter is the first iteration of the phase (its training
	// iterations included).
	StartIter int
	// Decision is the thread count (and model estimates) the phase
	// executed with.
	Decision Decision
	// TrainIters and TrainCycles are this phase's re-training cost.
	TrainIters  int
	TrainCycles uint64
	// Cycles is the phase's total time, training included.
	Cycles uint64
	// Trigger names the drift signal that caused this phase's
	// re-training ("cs" or "bus"); empty for the kernel's first phase.
	// Hybrid executions add "fallback" (the residual crossed its high
	// threshold), "recover" (it decayed below the low threshold) and
	// "measure" (a measured-state re-climb).
	Trigger string
	// Mode records which hybrid state ran the phase ("model" or
	// "measured"); empty for non-hybrid runs, so exact-mode JSON stays
	// bit-identical to pre-hybrid releases.
	Mode string `json:",omitempty"`
}

// KernelResult records how one kernel executed under a policy.
type KernelResult struct {
	Kernel      string
	Decision    Decision
	TrainIters  int
	TrainCycles uint64
	// Cycles is the kernel's total execution time including training.
	Cycles uint64
	// Phases holds the per-phase decisions of a monitored (adaptive)
	// execution, in order; nil for train-once runs. Decision above is
	// the first phase's decision, TrainIters/TrainCycles the totals
	// across phases.
	Phases []PhaseDecision
	// Retrains counts the Monitor-triggered re-trainings (always
	// len(Phases)-1 when Phases is set).
	Retrains int
	// Fallbacks and Recoveries count the hybrid controller's state
	// transitions: model -> measured when the residual crossed its high
	// threshold, and measured -> model when it decayed below the low
	// one. Zero for every other controller (and omitted from JSON, so
	// exact-mode output stays bit-identical to pre-hybrid releases).
	Fallbacks  int `json:",omitempty"`
	Recoveries int `json:",omitempty"`
}

// RunResult records a complete workload execution on one machine.
type RunResult struct {
	Workload string
	Policy   string
	// TotalCycles is the program's execution time.
	TotalCycles uint64
	// AvgActiveCores is the paper's power metric over the whole run.
	AvgActiveCores float64
	// BusBusyCycles is the off-chip data-bus occupancy over the run.
	BusBusyCycles uint64
	Kernels       []KernelResult
	// Sampled holds sampled-execution statistics when the run executed
	// in sampled mode; nil for exact runs (and omitted from JSON, so
	// exact-mode output stays bit-identical to pre-sampling releases).
	Sampled *sampled.Stats `json:",omitempty"`
	// Energy holds the table-driven energy accounting when the run
	// executed on a machine with a P-state ladder; nil on
	// single-frequency machines (and omitted from JSON, so their
	// output stays bit-identical to pre-DVFS releases). Energy.AvgPower
	// is the budget-comparable chip power including idle draw;
	// AvgActiveCores above remains the paper's flat metric.
	Energy *power.Energy `json:",omitempty"`
}

// AvgThreads reports the cycle-weighted average team size across
// kernels — the quantity behind MTwister's "average number of threads
// reduces to 21" observation (Section 5.3). Adaptive kernels weight
// each phase by its own cycles.
func (r RunResult) AvgThreads() float64 {
	var wsum, cyc uint64
	for _, k := range r.Kernels {
		if len(k.Phases) > 0 {
			for _, p := range k.Phases {
				wsum += uint64(p.Decision.Threads) * p.Cycles
				cyc += p.Cycles
			}
			continue
		}
		wsum += uint64(k.Decision.Threads) * k.Cycles
		cyc += k.Cycles
	}
	if cyc == 0 {
		return 0
	}
	return float64(wsum) / float64(cyc)
}

// Controller runs workloads under a threading policy using the FDT
// pipeline: Sample (peeled-iteration instrumentation) -> Estimate
// (the policy's model) -> Execute (chunked team execution) ->
// Monitor (per-interval counter deltas during execution). With
// Monitor nil the pipeline degenerates to Fig 5's train-once flow —
// the seed controller, bit-identical.
type Controller struct {
	Policy Policy
	Params TrainingParams
	// Monitor enables phase-adaptive re-training: execution proceeds
	// in Interval-sized chunks and drifting counter deltas send the
	// pipeline back to the Sample stage. nil (the default) reproduces
	// the paper's train-once controller exactly.
	Monitor *MonitorParams
	// Mode selects exact or sampled execution (see Mode). The zero
	// value is exact mode — bit-identical to the pre-sampling
	// controller.
	Mode Mode
	// Power arms the budget-constrained (threads, frequency) co-search
	// in the Estimate stage (see PowerParams and EstimateDVFS). nil
	// defaults to the unconstrained full-ladder search on machines
	// with a P-state ladder and to the plain Estimate stage otherwise.
	Power *PowerParams

	// st accumulates sampled-execution statistics for the current run;
	// set by Run when Mode.Sampled, nil otherwise.
	st *sampled.Stats
}

// NewController builds a train-once controller with the paper's
// training parameters.
func NewController(p Policy) *Controller {
	return &Controller{Policy: p, Params: DefaultTrainingParams()}
}

// NewAdaptiveController builds a controller with phase-adaptive
// monitoring enabled.
func NewAdaptiveController(p Policy, mp MonitorParams) *Controller {
	c := NewController(p)
	c.Monitor = &mp
	return c
}

// Run executes the workload on the machine under the controller's
// policy and reports the run's timing, power and per-kernel decisions.
// The machine must be fresh (one Machine simulates one execution).
func (ctl *Controller) Run(m *machine.Machine, w Workload) RunResult {
	res := RunResult{Workload: w.Name(), Policy: ctl.Policy.Name()}
	if ctl.Power != nil && ctl.Power.Budget > 0 {
		m.SetPowerBudget(ctl.Power.Budget)
	}
	thread.Run(m, ctl.runBody(w, &res))
	m.FinishCheck()
	res.TotalCycles = m.Eng.Now()
	res.AvgActiveCores = m.Power.AverageActiveCores(res.TotalCycles)
	res.BusBusyCycles = m.Ctrs.Counter(counters.BusBusyCycles).Read()
	if m.Power.Tracked() {
		e := m.Power.Energy(res.TotalCycles)
		res.Energy = &e
		addSimEnergy(e.Total)
	} else {
		addSimEnergy(float64(m.Power.ActiveCoreCycles()))
	}
	return res
}

// dvfsOn reports whether the Estimate stage searches the (threads,
// frequency) plane / enforces a budget on machine m: armed by a
// non-trivial ladder or explicit PowerParams, off otherwise — the
// bit-identical legacy pipeline.
func (ctl *Controller) dvfsOn(m *machine.Machine) bool {
	return !m.Cfg.Freq.Trivial() || ctl.Power != nil
}

// powerParams resolves the controller's power parameters (nil means
// the unconstrained full-ladder search).
func (ctl *Controller) powerParams() PowerParams {
	if ctl.Power != nil {
		return *ctl.Power
	}
	return DefaultPowerParams()
}

// trainState picks the ladder state training runs at: the locked
// state when one is pinned — a fixed-frequency run trains at its own
// frequency, so the Eq. 3/5/7 models apply to it unscaled — else
// nominal.
func (ctl *Controller) trainState(m *machine.Machine) int {
	if m.Cfg.Freq.Trivial() {
		return 0
	}
	if pp := ctl.powerParams(); pp.LockState >= 0 {
		s := pp.LockState
		if s >= len(m.Cfg.Freq.States) {
			s = len(m.Cfg.Freq.States) - 1
		}
		return s
	}
	return 0
}

// setFreq moves the whole chip to ladder state idx at the current
// cycle; no-op on single-frequency machines.
func (ctl *Controller) setFreq(c *thread.Ctx, idx int) {
	m := c.Machine()
	if m.Cfg.Freq.Trivial() {
		return
	}
	m.SetFreq(idx, c.CPU.CycleCount())
}

// runBody builds the master function for one workload execution,
// filling res as kernels complete. Extracted from Run so a co-run can
// hand each team's controller pipeline to thread.RunTeams: every team
// runs its own Sample -> Estimate -> Execute -> Monitor loop
// concurrently against the shared memory system.
func (ctl *Controller) runBody(w Workload, res *RunResult) func(c *thread.Ctx) {
	if ctl.Mode.Sampled {
		ctl.st = &sampled.Stats{}
		res.Sampled = ctl.st
	}
	return func(c *thread.Ctx) {
		if sw, ok := w.(SetupWorkload); ok {
			sw.Setup(c)
		}
		for _, k := range w.Kernels() {
			res.Kernels = append(res.Kernels, ctl.runKernel(c, k))
		}
	}
}

// ctlTrace emits the controller's pipeline onto the trace's
// "controller" track: sample and execute spans, decision instants,
// and retrain instants carrying the counter deltas that triggered
// them. The zero value (no tracer, or one without trace.CatCtl) is a
// no-op, so the pipeline code calls it unconditionally.
type ctlTrace struct {
	tr    *trace.Tracer
	track trace.TrackID
	on    bool
}

// newCtlTrace builds the controller's trace handle for one machine.
func newCtlTrace(m *machine.Machine) ctlTrace {
	t := m.Trace
	if !t.Wants(trace.CatCtl) {
		return ctlTrace{}
	}
	return ctlTrace{tr: t, track: t.Track(trace.ControllerTrack), on: true}
}

// span emits a Complete stage span.
func (ct ctlTrace) span(name, kernel string, start, end uint64, a0, a1, a2 uint64) {
	if !ct.on || end < start {
		return
	}
	ct.tr.Emit(trace.CatCtl, trace.Event{
		Cycle: start, Dur: end - start, Track: ct.track, Kind: trace.Complete,
		Name: name, Label: kernel, A0: a0, A1: a1, A2: a2,
	})
}

// decision emits the Estimate stage's output as an instant.
func (ct ctlTrace) decision(kernel string, cycle uint64, d Decision) {
	if !ct.on {
		return
	}
	ct.tr.Emit(trace.CatCtl, trace.Event{
		Cycle: cycle, Track: ct.track, Kind: trace.Instant, Name: "decision",
		Label: kernel, A0: uint64(d.Threads), A1: uint64(d.PCS), A2: uint64(d.PBW),
	})
}

// retrain emits a Monitor-triggered phase change: the drifted signal
// and the observed/expected per-iteration cycle values that tripped
// the tolerance — the audit trail for "why did it retrain here".
func (ct ctlTrace) retrain(cycle uint64, dr *Drift) {
	if !ct.on {
		return
	}
	ct.tr.Emit(trace.CatCtl, trace.Event{
		Cycle: cycle, Track: ct.track, Kind: trace.Instant, Name: "retrain",
		Label: dr.Signal, A0: uint64(dr.Iter),
		A1: uint64(dr.Observed + 0.5), A2: uint64(dr.Expected + 0.5),
	})
}

// runKernel drives one kernel through the pipeline. Policies that do
// not train (and kernels too small to peel) take the static path;
// training policies sample, estimate and execute — once when
// monitoring is off, per phase when it is on.
func (ctl *Controller) runKernel(c *thread.Ctx, k Kernel) KernelResult {
	m := c.Machine()
	cores := c.TeamSize()
	n := k.Iterations()
	start := c.CPU.CycleCount()
	ct := newCtlTrace(m)

	if !ctl.Policy.NeedsTraining() || n < ctl.Params.MinIterations {
		d := Decision{Threads: ctl.Policy.StaticThreads(cores)}
		if ctl.dvfsOn(m) {
			pp := ctl.powerParams()
			idx := ctl.trainState(m)
			d.Threads = budgetStaticThreads(d.Threads, m.Cfg.Freq, idx, cores, pp.Budget)
			if !m.Cfg.Freq.Trivial() {
				d.FreqIndex = idx
				d.Freq = m.Cfg.Freq.States[idx].Name
				d.PredPower = m.Cfg.Freq.Table().ChipPower(idx, d.Threads, cores)
				ctl.setFreq(c, idx)
			} else if pp.Budget > 0 {
				d.PredPower = float64(d.Threads)
			}
		}
		ct.decision(k.Name(), start, d)
		ctl.execute(c, k, d.Threads, 0, n)
		ct.span("execute", k.Name(), start, c.CPU.CycleCount(), uint64(d.Threads), 0, uint64(n))
		return KernelResult{
			Kernel:   k.Name(),
			Decision: d,
			Cycles:   c.CPU.CycleCount() - start,
		}
	}

	if ctl.Monitor == nil {
		return ctl.runTrainOnce(c, k, n, cores, start, ct)
	}
	return ctl.runAdaptive(c, k, n, cores, start, ct)
}

// runTrainOnce is Fig 7's three-stage flow: train on a peeled prefix,
// estimate once, execute the remainder as a single chunk.
func (ctl *Controller) runTrainOnce(c *thread.Ctx, k Kernel, n, cores int, start uint64, ct ctlTrace) KernelResult {
	m := c.Machine()
	dvfs := ctl.dvfsOn(m)
	cc := newCtlCheck(m)
	cc.atDecision(c, start)
	if dvfs {
		ctl.setFreq(c, ctl.trainState(m))
	}
	out := Sampler{Params: ctl.Params}.Sample(c, k, ctl.Policy, 0, n)
	ctl.countTraining(out.Train.Iters)
	var d Decision
	var tr TrainResult
	if dvfs {
		d, tr = Estimator{Params: ctl.Params}.EstimateDVFS(ctl.Policy, out, cores, m.Cfg.Freq, ctl.powerParams(), ctl.trainState(m))
	} else {
		d, tr = Estimator{Params: ctl.Params}.Estimate(ctl.Policy, out, cores)
	}
	trainCycles := c.CPU.CycleCount() - start
	ct.span("sample", k.Name(), start, c.CPU.CycleCount(), uint64(out.Train.Iters), 0, 0)
	ct.decision(k.Name(), c.CPU.CycleCount(), d)
	if !dvfs {
		// The checker re-derives the Eq. 3/5/7 decision, which assumes
		// the unconstrained nominal-frequency Estimate stage; the DVFS
		// search is covered by its own estimator tests instead.
		cc.decision(ctl.Policy, tr, cores, d, c.CPU.CycleCount())
	}
	if dvfs {
		ctl.setFreq(c, d.FreqIndex)
	}
	execStart := c.CPU.CycleCount()
	ctl.execute(c, k, d.Threads, out.Next, n)
	ct.span("execute", k.Name(), execStart, c.CPU.CycleCount(), uint64(d.Threads), uint64(out.Next), uint64(n))
	return KernelResult{
		Kernel:      k.Name(),
		Decision:    d,
		TrainIters:  out.Train.Iters,
		TrainCycles: trainCycles,
		Cycles:      c.CPU.CycleCount() - start,
	}
}

// runAdaptive is the phase-adaptive flow: the pipeline loops
// Sample -> Estimate -> Execute-with-Monitor until the kernel's
// iterations are exhausted, re-entering the Sample stage at every
// detected phase change (up to MaxRetrains). Tails too short to
// re-train on, and the remainder after the retrain budget is spent,
// execute unmonitored with the current decision.
func (ctl *Controller) runAdaptive(c *thread.Ctx, k Kernel, n, cores int, start uint64, ct ctlTrace) KernelResult {
	mp := *ctl.Monitor
	sampler := Sampler{Params: ctl.Params}
	estimator := Estimator{Params: ctl.Params}
	m := c.Machine()
	dvfs := ctl.dvfsOn(m)

	cc := newCtlCheck(m)
	kr := KernelResult{Kernel: k.Name()}
	iter := 0
	trigger := ""
	for iter < n {
		phaseStart := c.CPU.CycleCount()
		cc.atDecision(c, phaseStart)
		if dvfs {
			ctl.setFreq(c, ctl.trainState(m))
		}
		out := sampler.Sample(c, k, ctl.Policy, iter, n)
		ctl.countTraining(out.Train.Iters)
		var d Decision
		var tr TrainResult
		if dvfs {
			d, tr = estimator.EstimateDVFS(ctl.Policy, out, cores, m.Cfg.Freq, ctl.powerParams(), ctl.trainState(m))
		} else {
			d, tr = estimator.Estimate(ctl.Policy, out, cores)
		}
		trainCycles := c.CPU.CycleCount() - phaseStart
		ct.span("sample", k.Name(), phaseStart, c.CPU.CycleCount(), uint64(out.Train.Iters), uint64(iter), 0)
		ct.decision(k.Name(), c.CPU.CycleCount(), d)
		if !dvfs {
			cc.decision(ctl.Policy, tr, cores, d, c.CPU.CycleCount())
		}
		if dvfs {
			// The Monitor's calibration interval rebases its
			// expectations on the first executed interval, absorbing
			// the frequency shift between training and execution.
			ctl.setFreq(c, d.FreqIndex)
		}

		var stop int
		var dr *Drift
		execStart := c.CPU.CycleCount()
		if kr.Retrains >= mp.MaxRetrains {
			ctl.execute(c, k, d.Threads, out.Next, n)
			stop = n
		} else {
			mo := NewMonitor(mp, estimator.Steady(out))
			if ctl.Mode.Sampled {
				stop, dr = Executor{}.ExecuteSampled(c, k, d.Threads, out.Next, n, ctl.Mode.Params, ctl.st, mo)
			} else {
				stop, dr = Executor{}.ExecuteMonitored(c, k, d.Threads, out.Next, n, mo)
			}
		}
		ct.span("execute", k.Name(), execStart, c.CPU.CycleCount(), uint64(d.Threads), uint64(out.Next), uint64(stop))
		if dr != nil {
			ct.retrain(c.CPU.CycleCount(), dr)
		}

		kr.TrainIters += out.Train.Iters
		kr.TrainCycles += trainCycles
		kr.Phases = append(kr.Phases, PhaseDecision{
			StartIter:   iter,
			Decision:    d,
			TrainIters:  out.Train.Iters,
			TrainCycles: trainCycles,
			Cycles:      c.CPU.CycleCount() - phaseStart,
			Trigger:     trigger,
		})
		iter = stop
		if dr == nil {
			break
		}
		if n-iter < ctl.Params.MinIterations {
			// Tail too short to re-train on: finish with the current
			// decision and account it to the last phase.
			tailStart := c.CPU.CycleCount()
			ctl.execute(c, k, d.Threads, iter, n)
			kr.Phases[len(kr.Phases)-1].Cycles += c.CPU.CycleCount() - tailStart
			iter = n
			break
		}
		trigger = dr.Signal
		kr.Retrains++
	}
	kr.Decision = kr.Phases[0].Decision
	kr.Cycles = c.CPU.CycleCount() - start
	return kr
}

// execute runs one unmonitored chunk in the controller's mode: a
// single exact chunk, or windowed sampled execution with steady-state
// fast-forward.
func (ctl *Controller) execute(c *thread.Ctx, k Kernel, threads, lo, hi int) {
	if ctl.Mode.Sampled {
		Executor{}.ExecuteSampled(c, k, threads, lo, hi, ctl.Mode.Params, ctl.st, nil)
		return
	}
	Executor{}.Execute(c, k, threads, lo, hi)
}

// countTraining folds a training sample's iterations into the sampled
// stats (training always cycle-simulates).
func (ctl *Controller) countTraining(iters int) {
	if ctl.st != nil {
		ctl.st.DetailedIters += iters
	}
}
