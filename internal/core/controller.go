package core

import (
	"fdt/internal/counters"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// TrainingParams tunes the FDT training loop. Defaults reproduce the
// paper's settings (Sections 4.2.1 and 5.2).
type TrainingParams struct {
	// MaxTrainFraction caps training at this fraction of the kernel's
	// iterations (paper: 1%). At least one iteration always trains.
	MaxTrainFraction float64
	// StabilityWindow is the number of consecutive iterations whose
	// T_CS/T_NoCS ratio must agree for SAT training to stop early
	// (paper: 3).
	StabilityWindow int
	// StabilityTol is the allowed relative spread within the window
	// (paper: 5%).
	StabilityTol float64
	// BATEarlyOutCycles is the training time after which BAT may
	// conclude the kernel cannot be bandwidth-limited (paper: 10000).
	BATEarlyOutCycles uint64
	// MinIterations is the smallest kernel (in iterations) worth
	// training on: peeling a meaningful sample from a shorter loop
	// would consume most of it single-threaded, so such kernels run
	// with the policy's static fallback. The paper's Section 9 notes
	// non-iterative kernels need "a specialized training loop"; until
	// a kernel provides one, not training is the safe default.
	MinIterations int
}

// DefaultTrainingParams returns the paper's training configuration.
func DefaultTrainingParams() TrainingParams {
	return TrainingParams{
		MaxTrainFraction:  0.01,
		StabilityWindow:   3,
		StabilityTol:      0.05,
		BATEarlyOutCycles: 10000,
		MinIterations:     8,
	}
}

// KernelResult records how one kernel executed under a policy.
type KernelResult struct {
	Kernel      string
	Decision    Decision
	TrainIters  int
	TrainCycles uint64
	// Cycles is the kernel's total execution time including training.
	Cycles uint64
}

// RunResult records a complete workload execution on one machine.
type RunResult struct {
	Workload string
	Policy   string
	// TotalCycles is the program's execution time.
	TotalCycles uint64
	// AvgActiveCores is the paper's power metric over the whole run.
	AvgActiveCores float64
	// BusBusyCycles is the off-chip data-bus occupancy over the run.
	BusBusyCycles uint64
	Kernels       []KernelResult
}

// AvgThreads reports the cycle-weighted average team size across
// kernels — the quantity behind MTwister's "average number of threads
// reduces to 21" observation (Section 5.3).
func (r RunResult) AvgThreads() float64 {
	var wsum, cyc uint64
	for _, k := range r.Kernels {
		wsum += uint64(k.Decision.Threads) * k.Cycles
		cyc += k.Cycles
	}
	if cyc == 0 {
		return 0
	}
	return float64(wsum) / float64(cyc)
}

// Controller runs workloads under a threading policy using the FDT
// framework of Fig 5: train on a sampled prefix, estimate, execute
// the remainder with the chosen team size.
type Controller struct {
	Policy Policy
	Params TrainingParams
}

// NewController builds a controller with the paper's training
// parameters.
func NewController(p Policy) *Controller {
	return &Controller{Policy: p, Params: DefaultTrainingParams()}
}

// Run executes the workload on the machine under the controller's
// policy and reports the run's timing, power and per-kernel decisions.
// The machine must be fresh (one Machine simulates one execution).
func (ctl *Controller) Run(m *machine.Machine, w Workload) RunResult {
	res := RunResult{Workload: w.Name(), Policy: ctl.Policy.Name()}
	thread.Run(m, func(c *thread.Ctx) {
		if sw, ok := w.(SetupWorkload); ok {
			sw.Setup(c)
		}
		for _, k := range w.Kernels() {
			res.Kernels = append(res.Kernels, ctl.runKernel(c, k))
		}
	})
	res.TotalCycles = m.Eng.Now()
	res.AvgActiveCores = m.Power.AverageActiveCores(res.TotalCycles)
	res.BusBusyCycles = m.Ctrs.Counter(counters.BusBusyCycles).Read()
	return res
}

// runKernel implements Fig 7's three stages for one kernel: training
// (peeled iterations, single-threaded, instrumented), estimation
// (the policy's model), and execution (remaining iterations on the
// chosen team).
func (ctl *Controller) runKernel(c *thread.Ctx, k Kernel) KernelResult {
	m := c.Machine()
	cores := m.Contexts()
	n := k.Iterations()
	start := c.CPU.CycleCount()

	if !ctl.Policy.NeedsTraining() || n < ctl.Params.MinIterations {
		d := Decision{Threads: ctl.Policy.StaticThreads(cores)}
		if n > 0 {
			k.RunChunk(c, d.Threads, 0, n)
		}
		return KernelResult{
			Kernel:   k.Name(),
			Decision: d,
			Cycles:   c.CPU.CycleCount() - start,
		}
	}

	// Train up to 1% of the iterations (paper, Section 4.2.1), but at
	// least two when the kernel has them: the first iteration runs
	// against cold caches and serves as warmup (see below).
	maxTrain := int(float64(n) * ctl.Params.MaxTrainFraction)
	if maxTrain < 2 {
		maxTrain = 2
	}
	if maxTrain > n {
		maxTrain = n
	}

	csCtr := m.Ctrs.Counter(thread.CtrCSCycles)
	busCtr := m.Ctrs.Counter(counters.BusBusyCycles)

	var tr TrainResult
	var ratios []float64
	type iterSample struct{ dt, dcs, db uint64 }
	var samples []iterSample
	satDone := !ctl.Policy.WantsSAT()
	batDone := !ctl.Policy.WantsBAT()

	iter := 0
	for iter < maxTrain && !(satDone && batDone) {
		t0 := c.CPU.CycleCount()
		cs0 := csCtr.Sample()
		b0 := busCtr.Sample()
		k.RunChunk(c, 1, iter, iter+1)
		iter++
		dt := c.CPU.CycleCount() - t0
		dcs := csCtr.DeltaSince(cs0)
		db := busCtr.DeltaSince(b0)
		tr.TotalCycles += dt
		tr.CSCycles += dcs
		tr.BusBusyCycles += db
		samples = append(samples, iterSample{dt, dcs, db})

		if !satDone {
			ratios = append(ratios, csRatio(dt, dcs))
			if stableWindow(ratios, ctl.Params.StabilityWindow, ctl.Params.StabilityTol) {
				satDone = true
				tr.SATStable = true
			}
		}
		if !batDone && tr.TotalCycles >= ctl.Params.BATEarlyOutCycles && len(samples) >= 2 {
			// Judge bandwidth on warm iterations only (drop the cold
			// first sample): a kernel whose steady state cannot
			// saturate the bus even with every core running will
			// never be bandwidth-limited, and training may stop.
			var wt, wb uint64
			for _, s := range samples[1:] {
				wt += s.dt
				wb += s.db
			}
			if wt > 0 && float64(wb)/float64(wt)*float64(cores) < 1 {
				batDone = true
				tr.BWExcluded = true
			}
		}
	}
	tr.Iters = iter

	// Estimate from the steady state. The first training iteration
	// runs against cold caches, so its T_CS/T_NoCS ratio and bus
	// utilization misrepresent the kernel's stable behaviour; on the
	// paper's full-size inputs thousands of training iterations
	// dilute this, but on scaled inputs it must be excluded
	// explicitly (DESIGN.md, "Known deviations"). When the stability
	// window is available beyond that, keep only the trailing window
	// — the measurements the stability criterion actually accepted.
	if len(samples) > 1 {
		est := samples[1:]
		if w := ctl.Params.StabilityWindow; w > 0 && len(est) > w {
			est = est[len(est)-w:]
		}
		var wt, wcs, wb uint64
		for _, s := range est {
			wt += s.dt
			wcs += s.dcs
			wb += s.db
		}
		if wt > 0 {
			tr.TotalCycles, tr.CSCycles, tr.BusBusyCycles = wt, wcs, wb
		}
	}

	d := ctl.Policy.Estimate(tr, cores)
	trainCycles := c.CPU.CycleCount() - start
	if iter < n {
		k.RunChunk(c, d.Threads, iter, n)
	}
	return KernelResult{
		Kernel:      k.Name(),
		Decision:    d,
		TrainIters:  iter,
		TrainCycles: trainCycles,
		Cycles:      c.CPU.CycleCount() - start,
	}
}

// csRatio computes one iteration's T_CS / T_NoCS.
func csRatio(total, cs uint64) float64 {
	if cs >= total {
		return 1
	}
	noCS := total - cs
	if noCS == 0 {
		return 0
	}
	return float64(cs) / float64(noCS)
}

// stableWindow reports whether the last w ratios agree within tol:
// the relative spread (max-min over mean) is at most tol. An all-zero
// window (no critical section observed) counts as stable.
func stableWindow(ratios []float64, w int, tol float64) bool {
	if w < 2 || len(ratios) < w {
		return false
	}
	win := ratios[len(ratios)-w:]
	lo, hi, sum := win[0], win[0], 0.0
	for _, r := range win {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
		sum += r
	}
	if hi == 0 {
		return true // no critical section anywhere in the window
	}
	mean := sum / float64(w)
	return (hi-lo)/mean <= tol
}
