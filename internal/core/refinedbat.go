package core

import (
	"math"

	"fdt/internal/counters"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// RefinedBAT implements the paper's future-work suggestion (Section
// 9): "Our model for bandwidth utilization assumes that bandwidth
// requirement increases linearly with the number of threads ... More
// comprehensive models that take these effects into account can be
// developed."
//
// Under queueing, per-thread demand grows slightly sub-linearly, so
// Equation 5's P_BW = 100/BU_1 lands a little below the real knee.
// RefinedBAT starts from BAT's single-threaded estimate and then
// confirms it: it executes a probe chunk at the predicted size,
// measures the achieved utilization, and — if the bus is not yet
// saturated — rescales the prediction by the measured shortfall
// (P' = P * target/BU(P)), up to Rounds times. Each probe does real
// work, so the confirmation costs iterations; experiments quantify
// the trade against plain BAT.
type RefinedBAT struct {
	// Rounds bounds the confirmation probes (default 2).
	Rounds int
	// TargetUtil is the saturation threshold (default 0.95).
	TargetUtil float64
	// ProbeIters is the per-probe chunk length; zero means
	// max(1, iterations/100).
	ProbeIters int
}

// Name identifies the policy in reports.
func (RefinedBAT) Name() string { return "BAT-refined" }

// Run executes the workload under refined BAT. Mirrors
// Controller.Run's contract.
func (r RefinedBAT) Run(m *machine.Machine, w Workload) RunResult {
	res := RunResult{Workload: w.Name(), Policy: r.Name()}
	thread.Run(m, func(c *thread.Ctx) {
		if sw, ok := w.(SetupWorkload); ok {
			sw.Setup(c)
		}
		for _, k := range w.Kernels() {
			res.Kernels = append(res.Kernels, r.runKernel(c, k))
		}
	})
	res.TotalCycles = m.Eng.Now()
	res.AvgActiveCores = m.Power.AverageActiveCores(res.TotalCycles)
	res.BusBusyCycles = m.Ctrs.Counter(counters.BusBusyCycles).Read()
	return res
}

func (r RefinedBAT) runKernel(c *thread.Ctx, k Kernel) KernelResult {
	m := c.Machine()
	cores := m.Contexts()
	n := k.Iterations()
	start := c.CPU.CycleCount()
	busCtr := m.Ctrs.Counter(counters.BusBusyCycles)

	rounds := r.Rounds
	if rounds <= 0 {
		rounds = 2
	}
	target := r.TargetUtil
	if target <= 0 || target > 1 {
		target = 0.95
	}
	probe := r.ProbeIters
	if probe <= 0 {
		probe = n / 100
		if probe < 1 {
			probe = 1
		}
	}

	// Stage 1: BAT's own training — single-threaded, first iteration
	// is warmup (cf. Controller).
	measure := func(size, iters int, iter *int) float64 {
		t0 := c.CPU.CycleCount()
		b0 := busCtr.Sample()
		k.RunChunk(c, size, *iter, *iter+iters)
		*iter += iters
		dt := c.CPU.CycleCount() - t0
		if dt == 0 {
			return 0
		}
		u := float64(busCtr.DeltaSince(b0)) / float64(dt)
		if u > 1 {
			u = 1
		}
		return u
	}

	iter := 0
	if n >= 2 {
		measure(1, 1, &iter) // warmup
	}
	bu1 := 0.0
	if iter < n {
		bu1 = measure(1, min(probe, n-iter), &iter)
	}

	d := Decision{BusUtil1: bu1}
	if bu1 <= 0 || bu1*float64(cores) < 1 {
		d.Threads = cores
	} else {
		p := RoundBAT(SaturationThreads(bu1), cores)
		// Stage 2: confirmation probes. A probe must give every
		// thread several iterations, or the fork/join ramp drowns the
		// steady-state utilization and the correction overshoots.
		for round := 0; round < rounds && p < cores; round++ {
			confIters := probe
			if minIters := 6 * p; confIters < minIters {
				confIters = minIters
			}
			if iter+confIters > n {
				break
			}
			u := measure(p, confIters, &iter)
			if u >= target || u <= 0 {
				break
			}
			next := int(math.Ceil(float64(p) * target / u))
			if next <= p {
				break
			}
			if next > cores {
				next = cores
			}
			p = next
		}
		d.PBW = p
		d.Threads = p
	}

	trainCycles := c.CPU.CycleCount() - start
	if iter < n {
		k.RunChunk(c, d.Threads, iter, n)
	}
	return KernelResult{
		Kernel:      k.Name(),
		Decision:    d,
		TrainIters:  iter,
		TrainCycles: trainCycles,
		Cycles:      c.CPU.CycleCount() - start,
	}
}
