package core

import (
	"encoding/json"
	"sync"

	"fdt/internal/store"
)

// RunStoreSchema versions the persisted RunResult wire format (JSON of
// RunResult). Bump it whenever RunResult or anything it embeds changes
// shape in a way old payloads must not be decoded into — stale entries
// then read as misses and are recomputed, never misparsed.
const RunStoreSchema = 1

var (
	runStoreMu sync.Mutex
	runStore   *store.Store
)

// AttachRunStore backs the process-wide run cache with a disk store:
// cache misses consult the store before simulating, and every freshly
// simulated run is written through. Keys are the same content
// addresses the in-memory cache uses, so a CLI report run warms the
// daemon's store and vice versa. Passing nil detaches (equivalent to
// DetachRunStore).
//
// Values are persisted as JSON. encoding/json round-trips every
// RunResult field bit-exactly (shortest-float encoding), so a run
// served from the store is byte-identical, when re-marshaled, to the
// run that was stored — the property the daemon's restart-resilience
// test pins.
func AttachRunStore(s *store.Store) {
	runStoreMu.Lock()
	defer runStoreMu.Unlock()
	runStore = s
	if s == nil {
		runCache.SetBacking(nil, nil)
		return
	}
	runCache.SetBacking(
		func(key string) (RunResult, bool) {
			blob, ok := s.Get(key)
			if !ok {
				return RunResult{}, false
			}
			var r RunResult
			if err := json.Unmarshal(blob, &r); err != nil {
				// A payload that passed the store's CRC but does not
				// decode means the schema changed without a
				// RunStoreSchema bump; treat as a miss and overwrite.
				return RunResult{}, false
			}
			return r, true
		},
		func(key string, r RunResult) {
			blob, err := json.Marshal(r)
			if err != nil {
				return // unmarshalable results are simply not persisted
			}
			s.Put(key, blob) // best effort; Put counts its own errors
		},
	)
}

// DetachRunStore disconnects the run cache from any attached store.
// Tests use it to restore the process-global default.
func DetachRunStore() { AttachRunStore(nil) }

// OpenRunStore opens (creating if needed) a disk run store at dir
// under the current RunStoreSchema and attaches it to the run cache.
func OpenRunStore(dir string) (*store.Store, error) {
	s, err := store.Open(dir, RunStoreSchema)
	if err != nil {
		return nil, err
	}
	AttachRunStore(s)
	return s, nil
}

// RunStore returns the attached disk store, or nil.
func RunStore() *store.Store {
	runStoreMu.Lock()
	defer runStoreMu.Unlock()
	return runStore
}

// RunStoreStats reports the attached store's counters; ok is false
// when no store is attached.
func RunStoreStats() (st store.Stats, ok bool) {
	s := RunStore()
	if s == nil {
		return store.Stats{}, false
	}
	return s.Stats(), true
}

// RunCacheComputes reports how many cache misses actually simulated
// (as opposed to loading from an attached store). Zero computes over a
// warm store is the restart-resilience acceptance criterion.
func RunCacheComputes() uint64 { return runCache.Computes() }

// RunCacheBackingHits reports how many cache misses the attached disk
// store satisfied.
func RunCacheBackingHits() uint64 { return runCache.BackingHits() }
