package core

import (
	"fmt"

	"fdt/internal/machine"
)

// This file extends the Estimate stage from a one-dimensional thread
// count to the (threads, frequency) plane. For a machine with a
// P-state ladder (machine.FreqConfig), the search predicts each
// state's training profile from the nominal one — compute scales with
// the cycle-time multiplier, memory-stall and bus time stay
// wall-anchored — re-evaluates the policy's Eq. 3/5/7 models per
// state, clamps each state's thread count to its power budget, and
// picks the point with the minimum predicted execution time.
//
// The frequency/bus interaction falls out of the model rather than
// being bolted on: at a lower state the predicted single-thread time
// T_1(s) dilates while BusBusy does not, so BU_1(s) = BusBusy/T_1(s)
// drops and Eq. 5's saturation width P_BW(s) = 1/BU_1(s) widens. A
// bandwidth-limited kernel can therefore trade frequency for threads
// under a budget — the FDT+DVFS point the Pareto experiments chart.

// dvfsModelMargin is the model-trust margin of the frequency search: a
// lower-frequency candidate replaces the incumbent only when it
// predicts at least this much relatively faster. The scaled profile a
// candidate is judged on is a model extrapolation (compute dilates,
// memory does not), while the incumbent — scanned in descending-MHz
// order starting from the trained state's neighborhood — is closer to
// what was actually measured. Without the margin, a ~2% predicted edge
// for a lower state can hide a double-digit measured regression on
// synchronization-limited kernels (serialization costs grow faster
// than the linear Eq. 1 term), and the search would leave the nominal
// state for noise. With it, frequency only drops when the predicted
// gain clearly exceeds the extrapolation's error bar, which also makes
// FDT+DVFS weakly dominate fixed-frequency FDT by construction on
// near-ties: when no state clears the margin the search returns
// exactly the fixed-frequency decision.
const dvfsModelMargin = 0.05

// PowerParams arms the budget-constrained (threads, frequency)
// co-search in a controller's Estimate stage.
type PowerParams struct {
	// Budget caps predicted average chip power, in
	// nominal-active-core units (commensurate with the paper's
	// AvgActiveCores metric and the tracked meter's AvgPower, idle
	// draw included). <= 0 is unconstrained.
	Budget float64
	// LockState pins the P-state: < 0 searches the whole ladder
	// (FDT+DVFS); s >= 0 restricts the search to ladder state s — the
	// fixed-frequency FDT comparator of the Pareto experiments.
	LockState int
}

// DefaultPowerParams returns the unconstrained full-ladder search.
func DefaultPowerParams() PowerParams { return PowerParams{Budget: 0, LockState: -1} }

// key is the run-cache fragment for budget-constrained runs; empty
// for the default (unconstrained, unlocked) search, mirroring the
// exact-mode and trivial-ladder key rules.
func (pp PowerParams) key() string {
	if pp.Budget <= 0 && pp.LockState < 0 {
		return ""
	}
	return fmt.Sprintf("|power/b=%g,lock=%d", pp.Budget, pp.LockState)
}

// scaleTrain predicts the training profile at ladder state s from the
// nominal-state measurements: the compute component (total minus
// memory stalls) and the critical-section time dilate by the state's
// cycle-time multiplier k = MHz_0/MHz_s; memory-stall and bus-busy
// time are wall-anchored and carry over unscaled.
func scaleTrain(tr TrainResult, k float64) TrainResult {
	tmem := tr.MemStallCycles
	if tmem > tr.TotalCycles {
		tmem = tr.TotalCycles
	}
	tcomp := tr.TotalCycles - tmem
	out := tr
	out.TotalCycles = uint64(float64(tcomp)*k+0.5) + tmem
	cs := float64(tr.CSCycles) * k
	if csMax := float64(out.TotalCycles); cs > csMax {
		cs = csMax
	}
	out.CSCycles = uint64(cs + 0.5)
	return out
}

// predictTime evaluates the blended Eq. 1 + Eq. 6 execution-time
// model on a (scaled) training profile at p threads: the parallel
// part speeds up by p until the bus saturates (effective parallelism
// capped at P_BW), and serialized critical-section time grows
// linearly in p.
func predictTime(tr TrainResult, p int) float64 {
	if p < 1 {
		p = 1
	}
	t := float64(tr.TotalCycles)
	cs := float64(tr.CSCycles)
	if cs > t {
		cs = t
	}
	pe := float64(p)
	if bu1 := tr.BusUtil1(); !tr.BWExcluded && bu1 > 0 {
		if pbw := SaturationThreads(bu1); pbw < pe {
			pe = pbw
		}
	}
	return (t-cs)/pe + float64(p)*cs
}

// EstimateDVFS is the Estimate stage over the (threads, frequency)
// plane. It condenses the sample like Estimate, then for every
// allowed ladder state predicts the scaled training profile, asks the
// policy for that state's thread count, clamps it to the budget's
// occupancy headroom, and returns the decision minimizing predicted
// time. States scan in descending-MHz order and a lower-frequency
// candidate wins only by clearing dvfsModelMargin — near-ties resolve
// to the higher frequency, where the scaled model is most trustworthy.
// trained names the ladder state the sample was
// measured at (the controller trains at the locked state when one is
// pinned, else nominal), so scaling is relative to it. When no state
// admits even one thread within the budget, the search degenerates to
// one thread in the lowest-power admissible configuration.
func (e Estimator) EstimateDVFS(pol Policy, out SampleOutcome, cores int, fc machine.FreqConfig, pp PowerParams, trained int) (Decision, TrainResult) {
	if fc.Trivial() {
		// No ladder: the plane is one-dimensional. Apply only the
		// budget clamp against the implicit flat table (Active 1,
		// Idle 0): at most floor(Budget) cores may be active.
		d, tr := e.Estimate(pol, out, cores)
		if pp.Budget > 0 {
			if pmax := int(pp.Budget + 1e-9); d.Threads > pmax {
				if pmax < 1 {
					pmax = 1
				}
				d.Threads = pmax
			}
			d.PredPower = float64(d.Threads)
		}
		return d, tr
	}

	d0, tr := e.Estimate(pol, out, cores)
	table := fc.Table()
	if trained < 0 || trained >= len(fc.States) {
		trained = 0
	}
	trainedMHz := float64(fc.States[trained].MHz)

	states := make([]int, 0, len(fc.States))
	if pp.LockState >= 0 {
		s := pp.LockState
		if s >= len(fc.States) {
			s = len(fc.States) - 1
		}
		states = append(states, s)
	} else {
		for s := range fc.States {
			states = append(states, s)
		}
	}

	best := Decision{}
	bestTime := 0.0
	found := false
	for _, s := range states {
		k := trainedMHz / float64(fc.States[s].MHz)
		trS := scaleTrain(tr, k)
		dS := pol.Estimate(trS, cores)
		p := dS.Threads
		pmax := table.MaxActiveWithinBudget(s, cores, pp.Budget)
		if pmax < 1 {
			continue // budget below this state's idle floor
		}
		if p > pmax {
			p = pmax
		}
		t := predictTime(trS, p)
		pw := table.ChipPower(s, p, cores)
		if !found || t < bestTime*(1-dvfsModelMargin) {
			best = dS
			best.Threads = p
			best.FreqIndex = s
			best.Freq = fc.States[s].Name
			best.PredPower = pw
			bestTime = t
			found = true
		}
	}
	if !found {
		// Budget below every allowed state's idle floor: nothing is
		// admissible, so run minimally — one thread in the
		// lowest-power allowed state. The run will overshoot the
		// budget; the caller's invariant checker reports it.
		s := states[len(states)-1]
		minPow := table.ChipPower(s, 1, cores)
		for _, cand := range states {
			if pw := table.ChipPower(cand, 1, cores); pw < minPow {
				s, minPow = cand, pw
			}
		}
		best = d0
		best.Threads = 1
		best.FreqIndex = s
		best.Freq = fc.States[s].Name
		best.PredPower = minPow
	}
	// Echo the nominal-state measurements in the report fields: the
	// per-state scaled values are internal to the search.
	best.CSFraction = tr.CSFraction()
	best.BusUtil1 = tr.BusUtil1()
	return best, tr
}

// budgetStaticThreads clamps a static thread count to the budget's
// occupancy headroom at ladder state s (the static path's budget
// enforcement; no frequency search, because static policies by
// definition do not adapt).
func budgetStaticThreads(n int, fc machine.FreqConfig, s int, cores int, budget float64) int {
	if budget <= 0 {
		return n
	}
	var pmax int
	if fc.Trivial() {
		pmax = int(budget + 1e-9)
	} else {
		pmax = fc.Table().MaxActiveWithinBudget(s, cores, budget)
	}
	if pmax < 1 {
		pmax = 1
	}
	if n > pmax {
		return pmax
	}
	return n
}
