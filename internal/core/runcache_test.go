package core_test

// Determinism regression: the host-parallel executor must be
// invisible in the results. A sweep fanned out over 8 workers has to
// produce byte-identical RunResults — cycles, bus-busy, power, every
// per-kernel decision — to the legacy serial loop, because each point
// simulates on its own fresh machine and the engine admits no host
// nondeterminism.

import (
	"fmt"
	"testing"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/runner"
	"fdt/internal/workloads"
)

// testFactory resolves a registered workload (the workloads package
// cannot be imported from core's internal tests — it imports core —
// so this lives in the external test package).
func testFactory(t *testing.T, name string) core.Factory {
	t.Helper()
	info, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	return func(m *machine.Machine) core.Workload { return info.Factory(m) }
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep comparison")
	}
	cfg := machine.DefaultConfig()
	threads := []int{1, 2, 4, 8, 16, 32}
	// One synchronization-limited and one bandwidth-limited workload:
	// between them they exercise locks, barriers, the coherence
	// directory, the off-chip bus and DRAM banks.
	for _, name := range []string{"pagemine", "ed"} {
		fac := testFactory(t, name)

		runner.SetWorkers(1)
		serial := core.Sweep(cfg, fac, threads)

		runner.SetWorkers(8)
		parallel := core.Sweep(cfg, fac, threads)
		runner.SetWorkers(0)

		if len(serial) != len(parallel) {
			t.Fatalf("%s: %d serial points vs %d parallel", name, len(serial), len(parallel))
		}
		for i := range serial {
			want := fmt.Sprintf("%#v", serial[i])
			got := fmt.Sprintf("%#v", parallel[i])
			if want != got {
				t.Errorf("%s @ %d threads: parallel run diverged\nserial:   %s\nparallel: %s",
					name, threads[i], want, got)
			}
		}
	}
}

func TestRunPolicyKeyedMatchesUncachedAndMemoizes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a full run")
	}
	core.ResetRunCache()
	defer core.ResetRunCache()
	cfg := machine.DefaultConfig()
	fac := testFactory(t, "pagemine")

	direct := core.RunPolicy(cfg, fac, core.SAT{})
	first := core.RunPolicyKeyed(cfg, "pagemine", fac, core.SAT{})
	again := core.RunPolicyKeyed(cfg, "pagemine", fac, core.SAT{})

	if fmt.Sprintf("%#v", direct) != fmt.Sprintf("%#v", first) {
		t.Errorf("keyed run diverged from direct run:\n%#v\nvs\n%#v", direct, first)
	}
	if fmt.Sprintf("%#v", first) != fmt.Sprintf("%#v", again) {
		t.Errorf("cache returned a different result on the second call")
	}
	hits, misses := core.RunCacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d hits / %d misses, want 1 / 1", hits, misses)
	}
}

func TestStaticPolicyKeyNormalization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a full run")
	}
	core.ResetRunCache()
	defer core.ResetRunCache()
	cfg := machine.DefaultConfig()
	fac := testFactory(t, "ep")

	// Static{} ("as many threads as cores") and Static{N: cores} are
	// the same execution; the cache must address them identically so
	// figure baselines share the sweep's all-cores point.
	all := core.RunPolicyKeyed(cfg, "ep", fac, core.Static{})
	n32 := core.RunPolicyKeyed(cfg, "ep", fac, core.Static{N: cfg.Mem.Cores})
	if hits, misses := core.RunCacheStats(); hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d hits / %d misses, want 1 / 1", hits, misses)
	}
	if all.TotalCycles != n32.TotalCycles {
		t.Errorf("static-all and static-32 diverged: %d vs %d cycles",
			all.TotalCycles, n32.TotalCycles)
	}
}
