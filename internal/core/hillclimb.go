package core

import (
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// HillClimb is the self-tuning processor-allocation baseline from the
// paper's related work (Nguyen et al. [27], Corbalan et al. [6][7]):
// instead of modeling the kernel from single-threaded counters, it
// measures efficiency directly by executing probe chunks at
// increasing team sizes and keeps growing while throughput improves.
//
// The paper's critique — which this implementation lets experiments
// quantify — is that such search "increases with the number of
// possible processor allocations": every probed size executes real
// iterations at a possibly-bad allocation, whereas FDT's single
// single-threaded training loop predicts all sizes at once.
type HillClimb struct {
	// ProbeIters is the number of iterations per probe chunk; zero
	// means max(1, iterations/100).
	ProbeIters int
	// MinGain is the fractional per-iteration speedup a larger team
	// must deliver to keep climbing (default 5%).
	MinGain float64
}

// Name identifies the policy in reports.
func (HillClimb) Name() string { return "hill-climb" }

// Run executes the workload under hill-climbing allocation. It
// mirrors Controller.Run's contract: fresh machine, returns timing,
// power and per-kernel decisions (TrainIters counts the probed
// iterations).
func (h HillClimb) Run(m *machine.Machine, w Workload) RunResult {
	res := RunResult{Workload: w.Name(), Policy: h.Name()}
	thread.Run(m, func(c *thread.Ctx) {
		if sw, ok := w.(SetupWorkload); ok {
			sw.Setup(c)
		}
		for _, k := range w.Kernels() {
			res.Kernels = append(res.Kernels, h.runKernel(c, k))
		}
	})
	res.TotalCycles = m.Eng.Now()
	res.AvgActiveCores = m.Power.AverageActiveCores(res.TotalCycles)
	return res
}

func (h HillClimb) runKernel(c *thread.Ctx, k Kernel) KernelResult {
	m := c.Machine()
	cores := m.Contexts()
	n := k.Iterations()
	start := c.CPU.CycleCount()

	probe := h.ProbeIters
	if probe <= 0 {
		probe = n / 100
		if probe < 1 {
			probe = 1
		}
	}
	minGain := h.MinGain
	if minGain <= 0 {
		minGain = 0.05
	}

	best := 1
	bestPerIter := 0.0
	iter := 0
	first := true
	for size := 1; size <= cores; size *= 2 {
		if iter+probe > n {
			break
		}
		t0 := c.CPU.CycleCount()
		k.RunChunk(c, size, iter, iter+probe)
		iter += probe
		perIter := float64(c.CPU.CycleCount()-t0) / float64(probe)
		if first || improves(perIter, bestPerIter, minGain) {
			best = size
			bestPerIter = perIter
			first = false
			continue
		}
		// Throughput stopped improving: stop climbing.
		break
	}

	trainCycles := c.CPU.CycleCount() - start
	if iter < n {
		k.RunChunk(c, best, iter, n)
	}
	return KernelResult{
		Kernel:      k.Name(),
		Decision:    Decision{Threads: best},
		TrainIters:  iter,
		TrainCycles: trainCycles,
		Cycles:      c.CPU.CycleCount() - start,
	}
}
