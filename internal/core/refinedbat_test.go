package core

import (
	"testing"

	"fdt/internal/machine"
)

func TestRefinedBATUnlimitedForComputeBound(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(2000, 2000, 0, 0)
	res := RefinedBAT{}.Run(m, f(m))
	if got := res.Kernels[0].Decision.Threads; got != 32 {
		t.Errorf("compute-bound kernel got %d threads, want 32", got)
	}
}

func TestRefinedBATAtLeastPlainBAT(t *testing.T) {
	// The refinement corrects sub-linear utilization upward: its
	// prediction must never fall below plain BAT's.
	f := newSynthFactory(2000, 50, 0, 16)
	mPlain := machine.MustNew(machine.DefaultConfig())
	plain := NewController(BAT{}).Run(mPlain, f(mPlain))
	mRef := machine.MustNew(machine.DefaultConfig())
	refined := RefinedBAT{}.Run(mRef, f(mRef))
	p, r := plain.Kernels[0].Decision.Threads, refined.Kernels[0].Decision.Threads
	if r < p {
		t.Errorf("refined BAT chose %d threads below plain BAT's %d", r, p)
	}
	if r > 24 {
		t.Errorf("refined BAT overshot to %d threads for a bandwidth-bound kernel", r)
	}
}

func TestRefinedBATTrainsMoreThanPlain(t *testing.T) {
	f := newSynthFactory(2000, 50, 0, 16)
	mPlain := machine.MustNew(machine.DefaultConfig())
	plain := NewController(BAT{}).Run(mPlain, f(mPlain))
	mRef := machine.MustNew(machine.DefaultConfig())
	refined := RefinedBAT{}.Run(mRef, f(mRef))
	if refined.Kernels[0].TrainIters <= plain.Kernels[0].TrainIters {
		t.Errorf("refined BAT trained %d iters, plain %d — confirmation probes missing",
			refined.Kernels[0].TrainIters, plain.Kernels[0].TrainIters)
	}
}

func TestRefinedBATName(t *testing.T) {
	if (RefinedBAT{}).Name() != "BAT-refined" {
		t.Error("name changed")
	}
}

func TestRefinedBATCompletesWork(t *testing.T) {
	// The probes execute real iterations; the run must still cover
	// all of them exactly once (verified by the workload itself in
	// the workloads package; here check chunk accounting).
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(500, 100, 0, 4)
	w := f(m)
	RefinedBAT{}.Run(m, w)
	k := w.Kernels()[0].(*synthKernel)
	if len(k.chunkTeams) < 2 {
		t.Errorf("only %d chunks ran", len(k.chunkTeams))
	}
}
