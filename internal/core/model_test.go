package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExecTimeCSReproducesFig6Example(t *testing.T) {
	// The paper's Fig 6: a program spending 2 units in the critical
	// section and 8 units in the parallel part takes 10, 8, 10 and 17
	// units on 1, 2, 4 and 8 threads.
	cases := []struct {
		p    int
		want float64
	}{{1, 10}, {2, 8}, {4, 10}, {8, 17}}
	for _, c := range cases {
		if got := ExecTimeCS(8, 2, c.p); got != c.want {
			t.Errorf("ExecTimeCS(8,2,%d) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestOptimalThreadsCSOnePercentExample(t *testing.T) {
	// Section 4.1: "if the critical section accounts for only 1% of
	// the overall execution time, the system becomes critical section
	// limited with just 10 threads" — sqrt(99/1) ~ 9.95.
	got := OptimalThreadsCS(99, 1)
	if math.Abs(got-9.949) > 0.01 {
		t.Errorf("OptimalThreadsCS(99,1) = %v, want ~9.95", got)
	}
}

func TestOptimalThreadsCSNoCriticalSection(t *testing.T) {
	if !math.IsInf(OptimalThreadsCS(100, 0), 1) {
		t.Error("tCS=0 must yield +Inf (never synchronization-limited)")
	}
}

func TestPropertyOptimalThreadsCSMinimizesEq1(t *testing.T) {
	// P_CS (rounded either way) must beat every other integer thread
	// count under Equation 1.
	f := func(noCSRaw, csRaw uint16) bool {
		tNoCS := float64(noCSRaw%5000) + 1
		tCS := float64(csRaw%100) + 1
		pcs := OptimalThreadsCS(tNoCS, tCS)
		lo, hi := int(pcs), int(pcs)+1
		if lo < 1 {
			lo = 1
		}
		best := math.Min(ExecTimeCS(tNoCS, tCS, lo), ExecTimeCS(tNoCS, tCS, hi))
		for p := 1; p <= 64; p++ {
			if ExecTimeCS(tNoCS, tCS, p) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBusUtilAtPLinearThenSaturates(t *testing.T) {
	// Fig 11: 25% single-thread utilization doubles with 2 threads,
	// saturates at 4, stays saturated at 8.
	if got := BusUtilAtP(0.25, 2); got != 0.5 {
		t.Errorf("BU at 2 threads = %v, want 0.5", got)
	}
	if got := BusUtilAtP(0.25, 4); got != 1.0 {
		t.Errorf("BU at 4 threads = %v, want 1.0", got)
	}
	if got := BusUtilAtP(0.25, 8); got != 1.0 {
		t.Errorf("BU at 8 threads = %v, want 1.0 (saturated)", got)
	}
}

func TestSaturationThreadsTenPercentExample(t *testing.T) {
	// Section 5.1: "if a single thread utilizes the off-chip bus for
	// 10% of the time, then the system will become off-chip bandwidth
	// limited for more than 10 threads."
	if got := SaturationThreads(0.10); math.Abs(got-10) > 1e-9 {
		t.Errorf("SaturationThreads(0.10) = %v, want 10", got)
	}
	if !math.IsInf(SaturationThreads(0), 1) {
		t.Error("bu1=0 must yield +Inf")
	}
}

func TestExecTimeBWFlatBeyondSaturation(t *testing.T) {
	// Eq 6 with t1=100, pbw=4: halves until 4 threads, flat after.
	if got := ExecTimeBW(100, 2, 4); got != 50 {
		t.Errorf("T(2) = %v, want 50", got)
	}
	if got := ExecTimeBW(100, 4, 4); got != 25 {
		t.Errorf("T(4) = %v, want 25", got)
	}
	if got := ExecTimeBW(100, 16, 4); got != 25 {
		t.Errorf("T(16) = %v, want 25 (flat)", got)
	}
}

func TestRoundSAT(t *testing.T) {
	if got := RoundSAT(6.53, 32); got != 7 {
		t.Errorf("RoundSAT(6.53) = %d, want 7 (PageMine, Section 4.3)", got)
	}
	if got := RoundSAT(6.46, 32); got != 6 {
		t.Errorf("RoundSAT(6.46) = %d, want 6", got)
	}
	if got := RoundSAT(100, 32); got != 32 {
		t.Errorf("RoundSAT clamps to cores, got %d", got)
	}
	if got := RoundSAT(0.2, 32); got != 1 {
		t.Errorf("RoundSAT floors at 1, got %d", got)
	}
	if got := RoundSAT(math.Inf(1), 32); got != 32 {
		t.Errorf("RoundSAT(+Inf) = %d, want 32", got)
	}
}

func TestRoundBAT(t *testing.T) {
	// BAT rounds up: "a higher number of threads may not hurt
	// performance while a smaller number can" (Section 5.2).
	if got := RoundBAT(6.99, 32); got != 7 {
		t.Errorf("RoundBAT(6.99) = %d, want 7 (ED)", got)
	}
	if got := RoundBAT(6.01, 32); got != 7 {
		t.Errorf("RoundBAT(6.01) = %d, want 7", got)
	}
	if got := RoundBAT(7.0, 32); got != 7 {
		t.Errorf("RoundBAT(7.0) = %d, want 7 (exact values stay)", got)
	}
	if got := RoundBAT(50, 32); got != 32 {
		t.Errorf("RoundBAT clamps to cores, got %d", got)
	}
}

func TestCombinedThreadsEq7(t *testing.T) {
	cases := []struct {
		pcs, pbw, cores, want int
	}{
		{7, 15, 32, 7},   // CS-limited: Fig 16's case
		{15, 7, 32, 7},   // BW-limited: Fig 17's case
		{0, 12, 32, 12},  // no CS limit detected
		{5, 0, 32, 5},    // no BW limit detected
		{0, 0, 32, 32},   // scalable: all cores
		{40, 50, 32, 32}, // both above core count
	}
	for _, c := range cases {
		if got := CombinedThreads(c.pcs, c.pbw, c.cores); got != c.want {
			t.Errorf("CombinedThreads(%d,%d,%d) = %d, want %d", c.pcs, c.pbw, c.cores, got, c.want)
		}
	}
}

func TestPropertyCombinedNeverExceedsInputs(t *testing.T) {
	f := func(a, b uint8, coresRaw uint8) bool {
		cores := int(coresRaw%32) + 1
		pcs, pbw := int(a%64), int(b%64)
		got := CombinedThreads(pcs, pbw, cores)
		if got < 1 || got > cores {
			return false
		}
		if pcs > 0 && got > pcs {
			return false
		}
		if pbw > 0 && got > pbw {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMinRuleOptimalUnderCompositeModel(t *testing.T) {
	// Appendix proof: under the composite model where the parallel
	// part stops scaling beyond P_BW and the CS grows linearly,
	// min(P_CS, P_BW) minimizes execution time over all integer P.
	composite := func(tNoCS, tCS, pbw float64, p int) float64 {
		eff := float64(p)
		if eff > pbw {
			eff = pbw
		}
		return tNoCS/eff + float64(p)*tCS
	}
	f := func(noCSRaw, csRaw, pbwRaw uint16) bool {
		tNoCS := float64(noCSRaw%4000) + 100
		tCS := float64(csRaw%50) + 1
		pbwReal := float64(pbwRaw%20) + 1
		cores := 32
		pcs := RoundSAT(OptimalThreadsCS(tNoCS, tCS), cores)
		pbw := RoundBAT(pbwReal, cores)
		chosen := CombinedThreads(pcs, pbw, cores)
		chosenTime := composite(tNoCS, tCS, pbwReal, chosen)
		for p := 1; p <= cores; p++ {
			// Allow the slack introduced by integer rounding of the
			// two estimates: a neighbour may be marginally better.
			if composite(tNoCS, tCS, pbwReal, p) < chosenTime*0.93 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
