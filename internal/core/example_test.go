package core_test

import (
	"fmt"

	"fdt/internal/core"
)

// The paper's Fig 6 example: a program that spends 2 time units in
// its critical section and 8 in parallel work takes 10, 8, 10 and 17
// units on 1, 2, 4 and 8 threads — more threads eventually hurt.
func ExampleExecTimeCS() {
	for _, p := range []int{1, 2, 4, 8} {
		fmt.Printf("P=%d T=%v\n", p, core.ExecTimeCS(8, 2, p))
	}
	// Output:
	// P=1 T=10
	// P=2 T=8
	// P=4 T=10
	// P=8 T=17
}

// Equation 3: with a critical section taking 1% of single-threaded
// time, the kernel is synchronization-limited at ~10 threads.
func ExampleOptimalThreadsCS() {
	fmt.Printf("%.2f\n", core.OptimalThreadsCS(99, 1))
	// Output:
	// 9.95
}

// Equation 5: a thread using 12.5% of the bus saturates it with 8.
func ExampleSaturationThreads() {
	fmt.Println(core.SaturationThreads(0.125))
	// Output:
	// 8
}

// Equation 7: the combined policy takes the tighter of the two limits
// (zero means a limiter was not detected).
func ExampleCombinedThreads() {
	fmt.Println(core.CombinedThreads(7, 15, 32)) // CS binds
	fmt.Println(core.CombinedThreads(0, 12, 32)) // only BW detected
	fmt.Println(core.CombinedThreads(0, 0, 32))  // scalable
	// Output:
	// 7
	// 12
	// 32
}

// BAT rounds up ("a higher number of threads may not hurt performance
// while a smaller number can"); SAT rounds to nearest.
func ExampleRoundBAT() {
	fmt.Println(core.RoundBAT(6.01, 32), core.RoundSAT(6.01, 32))
	fmt.Println(core.RoundBAT(6.99, 32), core.RoundSAT(6.99, 32))
	// Output:
	// 7 6
	// 7 7
}
