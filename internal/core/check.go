package core

import (
	"fdt/internal/invariant"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// ctlCheck verifies the controller's pipeline against the paper's
// model equations: every Estimate decision must be re-derivable from
// the condensed training measurements that produced it (Eq. 3 for
// P_CS, Eq. 5 for P_BW, Eq. 7 for their combination), and the pipeline
// may only (re-)decide the team size at a decision point — on the
// master thread with no team forked. The zero value (no checker
// attached) is a no-op, mirroring ctlTrace.
type ctlCheck struct {
	ck *invariant.Checker
	on bool
}

// newCtlCheck builds the controller's check handle for one machine.
func newCtlCheck(m *machine.Machine) ctlCheck {
	if !m.Check.Enabled() {
		return ctlCheck{}
	}
	return ctlCheck{ck: m.Check, on: true}
}

// atDecision asserts the pipeline sits at a safe re-decision point
// before it trains or changes the team size.
func (cc ctlCheck) atDecision(c *thread.Ctx, cycle uint64) {
	if !cc.on {
		return
	}
	cc.ck.Pass(1)
	if !c.AtDecisionPoint() {
		cc.ck.Failf("ctl-decision-point", cycle,
			"pipeline (re-)deciding outside a decision point: thread %d of team %d", c.ID, c.Size)
	}
}

// hybridState asserts the legality of a hybrid controller state
// transition: a fallback (model -> measured) is only legal when the
// residual sits at or above the high threshold, and a recovery
// (measured -> model) only when it has decayed to or below the low
// one. Together with ResidualHigh > ResidualLow this is the hysteresis
// guarantee — no residual value permits both transitions, so the
// state machine cannot oscillate on one reading.
func (cc ctlCheck) hybridState(c *thread.Ctx, from, to string, res float64, hp HybridParams, cycle uint64) {
	if !cc.on {
		return
	}
	cc.ck.Pass(1)
	if !c.AtDecisionPoint() {
		cc.ck.Failf("ctl-hybrid-state", cycle,
			"hybrid %s->%s transition outside a decision point: thread %d of team %d",
			from, to, c.ID, c.Size)
		return
	}
	switch {
	case from == "model" && to == "measured":
		if res < hp.ResidualHigh {
			cc.ck.Failf("ctl-hybrid-state", cycle,
				"illegal fallback: residual %.4f below high threshold %.4f", res, hp.ResidualHigh)
		}
	case from == "measured" && to == "model":
		if res > hp.ResidualLow {
			cc.ck.Failf("ctl-hybrid-state", cycle,
				"illegal recovery: residual %.4f above low threshold %.4f", res, hp.ResidualLow)
		}
	default:
		cc.ck.Failf("ctl-hybrid-state", cycle, "unknown hybrid transition %s->%s", from, to)
	}
}

// decision re-derives the policy's decision from the condensed
// training measurements and checks the Estimate stage's output against
// it, component by component.
func (cc ctlCheck) decision(pol Policy, tr TrainResult, cores int, d Decision, cycle uint64) {
	if !cc.on {
		return
	}
	wantPCS := 0
	if pol.WantsSAT() && tr.CSCycles > 0 {
		tNoCS := float64(tr.TotalCycles - tr.CSCycles)
		wantPCS = RoundSAT(OptimalThreadsCS(tNoCS, float64(tr.CSCycles)), cores)
	}
	wantPBW := 0
	if pol.WantsBAT() {
		if bu1 := tr.BusUtil1(); !tr.BWExcluded && bu1 > 0 && bu1*float64(cores) >= 1 {
			wantPBW = RoundBAT(SaturationThreads(bu1), cores)
		}
	}

	cc.ck.Pass(1)
	if d.PCS != wantPCS {
		cc.ck.Failf("ctl-eq3", cycle,
			"policy %s: P_CS = %d but Eq. 3 on (T_total %d, T_CS %d) gives %d",
			pol.Name(), d.PCS, tr.TotalCycles, tr.CSCycles, wantPCS)
	}
	cc.ck.Pass(1)
	if d.PBW != wantPBW {
		cc.ck.Failf("ctl-eq5", cycle,
			"policy %s: P_BW = %d but Eq. 5 on (BU_1 %.4f, excluded %v) gives %d",
			pol.Name(), d.PBW, tr.BusUtil1(), tr.BWExcluded, wantPBW)
	}

	want := cores
	switch {
	case pol.WantsSAT() && pol.WantsBAT():
		want = CombinedThreads(wantPCS, wantPBW, cores)
	case pol.WantsSAT():
		if wantPCS > 0 {
			want = wantPCS
		}
	case pol.WantsBAT():
		if wantPBW > 0 {
			want = wantPBW
		}
	}
	cc.ck.Pass(1)
	if d.Threads != want {
		cc.ck.Failf("ctl-eq7", cycle,
			"policy %s: decided %d threads but MIN(P_CS %d, P_BW %d, cores %d) re-derives %d",
			pol.Name(), d.Threads, wantPCS, wantPBW, cores, want)
	}
}
