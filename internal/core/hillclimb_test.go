package core

import (
	"testing"

	"fdt/internal/machine"
)

func TestHillClimbStopsAtCSKnee(t *testing.T) {
	// CS-heavy kernel: throughput stops improving a little past the
	// sqrt knee, so the climb must stop well below the core count.
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(2000, 960, 60, 0)
	res := HillClimb{}.Run(m, f(m))
	got := res.Kernels[0].Decision.Threads
	if got > 8 {
		t.Errorf("hill-climb chose %d threads for a CS-bound kernel, want <= 8", got)
	}
	if got < 2 {
		t.Errorf("hill-climb never climbed: %d threads", got)
	}
}

func TestHillClimbScalesComputeBoundKernel(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(4000, 2000, 0, 0)
	res := HillClimb{}.Run(m, f(m))
	if got := res.Kernels[0].Decision.Threads; got < 16 {
		t.Errorf("hill-climb chose %d threads for a scalable kernel, want >= 16", got)
	}
}

func TestHillClimbProbesMultipleSizes(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(4000, 2000, 0, 0)
	w := f(m)
	res := HillClimb{ProbeIters: 10}.Run(m, w)
	k := w.Kernels()[0].(*synthKernel)
	// The probe chunks must appear in doubling order before the final
	// execution chunk.
	var sizes []int
	for _, n := range k.chunkTeams {
		sizes = append(sizes, n)
	}
	if len(sizes) < 3 {
		t.Fatalf("only %d chunks ran: %v", len(sizes), sizes)
	}
	for i := 0; i < len(sizes)-2; i++ {
		if sizes[i+1] != sizes[i]*2 {
			t.Errorf("probe sizes not doubling: %v", sizes)
			break
		}
	}
	if res.Kernels[0].TrainIters < 20 {
		t.Errorf("probe iterations = %d, want >= 2 probes x 10", res.Kernels[0].TrainIters)
	}
}

func TestHillClimbCompletesAllIterations(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(500, 300, 20, 0)
	w := f(m)
	HillClimb{}.Run(m, w)
	k := w.Kernels()[0].(*synthKernel)
	total := 0
	for range k.chunkTeams {
		total++
	}
	// All 500 iterations must execute exactly once: the sum of chunk
	// ranges is checked indirectly by the workload-level verifiers;
	// here just assert the final chunk exists.
	if total < 2 {
		t.Errorf("hill-climb ran %d chunks, want probes + execution", total)
	}
}

func TestHillClimbName(t *testing.T) {
	if (HillClimb{}).Name() != "hill-climb" {
		t.Error("name changed")
	}
}
