package core

import (
	"testing"

	"fdt/internal/machine"
	"fdt/internal/thread"
)

func TestHillClimbStopsAtCSKnee(t *testing.T) {
	// CS-heavy kernel: throughput stops improving a little past the
	// sqrt knee, so the climb must stop well below the core count.
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(2000, 960, 60, 0)
	res := HillClimb{}.Run(m, f(m))
	got := res.Kernels[0].Decision.Threads
	if got > 8 {
		t.Errorf("hill-climb chose %d threads for a CS-bound kernel, want <= 8", got)
	}
	if got < 2 {
		t.Errorf("hill-climb never climbed: %d threads", got)
	}
}

func TestHillClimbScalesComputeBoundKernel(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(4000, 2000, 0, 0)
	res := HillClimb{}.Run(m, f(m))
	if got := res.Kernels[0].Decision.Threads; got < 16 {
		t.Errorf("hill-climb chose %d threads for a scalable kernel, want >= 16", got)
	}
}

func TestHillClimbProbesMultipleSizes(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(4000, 2000, 0, 0)
	w := f(m)
	res := HillClimb{ProbeIters: 10}.Run(m, w)
	k := w.Kernels()[0].(*synthKernel)
	// The probe chunks must appear in doubling order before the final
	// execution chunk.
	var sizes []int
	for _, n := range k.chunkTeams {
		sizes = append(sizes, n)
	}
	if len(sizes) < 3 {
		t.Fatalf("only %d chunks ran: %v", len(sizes), sizes)
	}
	for i := 0; i < len(sizes)-2; i++ {
		if sizes[i+1] != sizes[i]*2 {
			t.Errorf("probe sizes not doubling: %v", sizes)
			break
		}
	}
	if res.Kernels[0].TrainIters < 20 {
		t.Errorf("probe iterations = %d, want >= 2 probes x 10", res.Kernels[0].TrainIters)
	}
}

func TestHillClimbCompletesAllIterations(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(500, 300, 20, 0)
	w := f(m)
	HillClimb{}.Run(m, w)
	k := w.Kernels()[0].(*synthKernel)
	total := 0
	for range k.chunkTeams {
		total++
	}
	// All 500 iterations must execute exactly once: the sum of chunk
	// ranges is checked indirectly by the workload-level verifiers;
	// here just assert the final chunk exists.
	if total < 2 {
		t.Errorf("hill-climb ran %d chunks, want probes + execution", total)
	}
}

func TestHillClimbName(t *testing.T) {
	if (HillClimb{}).Name() != "hill-climb" {
		t.Error("name changed")
	}
}

// TestHillClimbOneIterationKernel: the degenerate kernel. The single
// iteration doubles as the size-1 probe; no further probes fit, and
// nothing remains for a tail chunk.
func TestHillClimbOneIterationKernel(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(1, 300, 20, 0)
	w := f(m)
	res := HillClimb{}.Run(m, w)
	k := w.Kernels()[0].(*synthKernel)
	if got := res.Kernels[0].Decision.Threads; got != 1 {
		t.Errorf("one-iteration kernel decided %d threads, want 1", got)
	}
	if !k.coveredExactly(1) {
		t.Errorf("chunk ranges do not partition [0, 1): %v", k.ranges)
	}
	if len(k.chunkTeams) != 1 || k.chunkTeams[0] != 1 {
		t.Errorf("chunk teams = %v, want a single size-1 probe", k.chunkTeams)
	}
}

// TestHillClimbProbeExceedsRemaining: a probe longer than the whole
// kernel means no probe ever fits — the climber must settle on one
// thread and still execute every iteration exactly once.
func TestHillClimbProbeExceedsRemaining(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(500, 300, 20, 0)
	w := f(m)
	res := HillClimb{ProbeIters: 1000}.Run(m, w)
	k := w.Kernels()[0].(*synthKernel)
	kr := res.Kernels[0]
	if kr.Decision.Threads != 1 {
		t.Errorf("probe-starved climb decided %d threads, want 1", kr.Decision.Threads)
	}
	if kr.TrainIters != 0 {
		t.Errorf("probe-starved climb counted %d probe iterations, want 0", kr.TrainIters)
	}
	if !k.coveredExactly(500) {
		t.Errorf("chunk ranges do not partition [0, 500): %v", k.ranges)
	}
	if len(k.chunkTeams) != 1 || k.chunkTeams[0] != 1 {
		t.Errorf("chunk teams = %v, want a single size-1 execution chunk", k.chunkTeams)
	}
}

// TestHillClimbMonotoneDegrading: a kernel that is pure critical
// section scales negatively with every added thread, so the very first
// doubling probe must already lose and the climb settles at one.
func TestHillClimbMonotoneDegrading(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(2000, 64, 2000, 0)
	w := f(m)
	res := HillClimb{}.Run(m, w)
	k := w.Kernels()[0].(*synthKernel)
	if got := res.Kernels[0].Decision.Threads; got != 1 {
		t.Errorf("monotone-degrading kernel decided %d threads, want 1", got)
	}
	for i, team := range k.chunkTeams {
		if i >= 2 && team != 1 {
			t.Errorf("chunk %d ran at %d threads after the climb should have stopped: %v", i, team, k.chunkTeams)
			break
		}
	}
	if !k.coveredExactly(2000) {
		t.Errorf("chunk ranges do not partition [0, 2000): %v", k.ranges)
	}
}

// nonScalingKernel gives every thread the full per-iteration compute
// instead of a share: a doubled team finishes the chunk in the same
// wall-clock time, so the candidate ties the incumbent on useful work
// and only the fork overhead separates them. The tie must not displace
// the incumbent (improves is strict about MinGain).
type nonScalingKernel struct {
	iters  int
	teams  []int
	ranges [][2]int
}

func (k *nonScalingKernel) Name() string    { return "non-scaling" }
func (k *nonScalingKernel) Iterations() int { return k.iters }

func (k *nonScalingKernel) RunChunk(master *thread.Ctx, n, lo, hi int) {
	k.teams = append(k.teams, n)
	k.ranges = append(k.ranges, [2]int{lo, hi})
	master.Fork(n, func(tc *thread.Ctx) {
		for it := lo; it < hi; it++ {
			tc.Compute(800)
		}
	})
}

func TestHillClimbTieKeepsIncumbent(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	k := &nonScalingKernel{iters: 1000}
	w := &synthWorkload{name: "non-scaling", kernels: []Kernel{k}}
	res := HillClimb{}.Run(m, w)
	if got := res.Kernels[0].Decision.Threads; got != 1 {
		t.Errorf("tied throughput displaced the incumbent: decided %d threads, want 1", got)
	}
	next := 0
	for _, r := range k.ranges {
		if r[0] != next {
			t.Fatalf("chunk ranges do not partition [0, 1000): %v", k.ranges)
		}
		next = r[1]
	}
	if next != 1000 {
		t.Errorf("kernel ended at iteration %d, want 1000", next)
	}
}
