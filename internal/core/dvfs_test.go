package core

import (
	"math"
	"testing"

	"fdt/internal/machine"
)

// synthetic training outcomes for the estimator-level tests: the DVFS
// search is a pure function of the sample, so no simulation is needed.

func computeBound(total uint64) SampleOutcome {
	return SampleOutcome{Train: TrainResult{
		Iters: 4, TotalCycles: total, SATStable: true, BWExcluded: true,
	}}
}

func TestScaleTrain(t *testing.T) {
	tr := TrainResult{TotalCycles: 1000, CSCycles: 100, BusBusyCycles: 300, MemStallCycles: 400}

	if got := scaleTrain(tr, 1); got != tr {
		t.Fatalf("k=1 must be the identity: %+v", got)
	}

	got := scaleTrain(tr, 2)
	// compute (1000-400) dilates ×2, memory carries over unscaled
	if want := uint64(600*2 + 400); got.TotalCycles != want {
		t.Errorf("TotalCycles = %d, want %d", got.TotalCycles, want)
	}
	if want := uint64(200); got.CSCycles != want {
		t.Errorf("CSCycles = %d, want %d", got.CSCycles, want)
	}
	if got.BusBusyCycles != tr.BusBusyCycles {
		t.Errorf("BusBusyCycles scaled: %d", got.BusBusyCycles)
	}

	// memory stall reported above total (counter overlap) is clamped,
	// not underflowed
	weird := TrainResult{TotalCycles: 100, MemStallCycles: 250}
	if got := scaleTrain(weird, 3); got.TotalCycles != 100 {
		t.Errorf("clamped memory: TotalCycles = %d, want 100", got.TotalCycles)
	}
}

func TestScaleTrainWidensBandwidthBound(t *testing.T) {
	// A bus-bound profile: half the single-thread time is bus busy.
	tr := TrainResult{TotalCycles: 1000, BusBusyCycles: 500}
	bu0 := tr.BusUtil1()
	bu1 := scaleTrain(tr, 1.25).BusUtil1()
	if !(bu1 < bu0) {
		t.Fatalf("BU_1 did not drop at lower frequency: %g -> %g", bu0, bu1)
	}
	// Eq. 5: P_BW = 1/BU_1 widens with the dilation.
	if p0, p1 := SaturationThreads(bu0), SaturationThreads(bu1); !(p1 > p0) {
		t.Fatalf("P_BW did not widen: %g -> %g", p0, p1)
	}
}

func TestEstimateDVFSTrivialLadderBudgetClamp(t *testing.T) {
	e := Estimator{Params: DefaultTrainingParams()}
	pp := PowerParams{Budget: 3, LockState: -1}
	d, _ := e.EstimateDVFS(Combined{}, computeBound(1000), 8, machine.FreqConfig{}, pp, 0)
	if d.Threads != 3 {
		t.Fatalf("flat-table clamp: threads = %d, want 3", d.Threads)
	}
	if d.PredPower != 3 {
		t.Fatalf("flat-table PredPower = %g, want 3", d.PredPower)
	}
	if d.FreqIndex != 0 || d.Freq != "" {
		t.Fatalf("trivial ladder produced a frequency: %+v", d)
	}

	// Budget below one core still runs one thread.
	d, _ = e.EstimateDVFS(Combined{}, computeBound(1000), 8, machine.FreqConfig{}, PowerParams{Budget: 0.5, LockState: -1}, 0)
	if d.Threads != 1 {
		t.Fatalf("sub-core budget: threads = %d, want 1", d.Threads)
	}
}

func TestEstimateDVFSUnconstrainedPicksNominal(t *testing.T) {
	e := Estimator{Params: DefaultTrainingParams()}
	fc := machine.DefaultLadder()
	d, _ := e.EstimateDVFS(Combined{}, computeBound(1000), 8, fc, DefaultPowerParams(), 0)
	if d.FreqIndex != 0 || d.Freq != "f2000" {
		t.Fatalf("compute-bound unconstrained run left nominal: %+v", d)
	}
	if d.Threads != 8 {
		t.Fatalf("threads = %d, want 8", d.Threads)
	}
	if want := fc.Table().ChipPower(0, 8, 8); d.PredPower != want {
		t.Fatalf("PredPower = %g, want %g", d.PredPower, want)
	}
}

func TestEstimateDVFSBudgetTradesFrequencyForThreads(t *testing.T) {
	e := Estimator{Params: DefaultTrainingParams()}
	fc := machine.DefaultLadder()
	// Budget 5 on 8 cores: nominal admits 4 active cores
	// ((5-0.8)/0.9), state f1600 admits all 8 ((5-0.64)/0.432 = 10).
	// For pure compute, 8 threads at 1600 MHz (time 1.25t/8) beats 4 at
	// 2000 (t/4).
	pp := PowerParams{Budget: 5, LockState: -1}
	d, _ := e.EstimateDVFS(Combined{}, computeBound(1000), 8, fc, pp, 0)
	if d.Freq != "f1600" || d.Threads != 8 {
		t.Fatalf("budgeted compute-bound: got %d threads at %q, want 8 at f1600", d.Threads, d.Freq)
	}
	if d.PredPower > pp.Budget {
		t.Fatalf("PredPower %g exceeds budget %g", d.PredPower, pp.Budget)
	}
}

func TestEstimateDVFSLockedStateRestrictsSearch(t *testing.T) {
	e := Estimator{Params: DefaultTrainingParams()}
	fc := machine.DefaultLadder()
	for lock := 0; lock < len(fc.States); lock++ {
		pp := PowerParams{Budget: 0, LockState: lock}
		d, _ := e.EstimateDVFS(Combined{}, computeBound(1000), 8, fc, pp, lock)
		if d.FreqIndex != lock {
			t.Fatalf("lock=%d: decision at state %d", lock, d.FreqIndex)
		}
	}
	// An out-of-range lock clamps to the lowest state rather than
	// panicking (the CLI validates, the library stays total).
	d, _ := e.EstimateDVFS(Combined{}, computeBound(1000), 8, fc, PowerParams{LockState: 99}, 0)
	if d.FreqIndex != len(fc.States)-1 {
		t.Fatalf("out-of-range lock landed on state %d", d.FreqIndex)
	}
}

func TestEstimateDVFSInfeasibleBudgetDegenerates(t *testing.T) {
	e := Estimator{Params: DefaultTrainingParams()}
	fc := machine.DefaultLadder()
	// Idle floors on 8 cores: 0.8 / 0.64 / 0.48 / 0.32 — a budget of
	// 0.1 admits no state at all. The search must degenerate to one
	// thread in the lowest-power state instead of returning garbage.
	pp := PowerParams{Budget: 0.1, LockState: -1}
	d, _ := e.EstimateDVFS(Combined{}, computeBound(1000), 8, fc, pp, 0)
	if d.Threads != 1 {
		t.Fatalf("infeasible budget: threads = %d, want 1", d.Threads)
	}
	if d.FreqIndex != len(fc.States)-1 {
		t.Fatalf("infeasible budget: state %d, want lowest-power state %d", d.FreqIndex, len(fc.States)-1)
	}
	if want := fc.Table().ChipPower(d.FreqIndex, 1, 8); d.PredPower != want {
		t.Fatalf("PredPower = %g, want %g", d.PredPower, want)
	}
}

func TestEstimateDVFSEchoesNominalMeasurements(t *testing.T) {
	e := Estimator{Params: DefaultTrainingParams()}
	out := SampleOutcome{Train: TrainResult{
		Iters: 4, TotalCycles: 1000, CSCycles: 100, BusBusyCycles: 200,
		MemStallCycles: 300, SATStable: true,
	}}
	d, tr := e.EstimateDVFS(Combined{}, out, 8, machine.DefaultLadder(), PowerParams{Budget: 5, LockState: -1}, 0)
	if math.Abs(d.CSFraction-tr.CSFraction()) > 1e-12 || math.Abs(d.BusUtil1-tr.BusUtil1()) > 1e-12 {
		t.Fatalf("decision does not echo the nominal measurements: %+v vs %+v", d, tr)
	}
}

func TestBudgetStaticThreads(t *testing.T) {
	fc := machine.DefaultLadder()
	cases := []struct {
		name   string
		n      int
		fc     machine.FreqConfig
		s      int
		budget float64
		want   int
	}{
		{name: "unconstrained", n: 8, fc: fc, s: 0, budget: 0, want: 8},
		{name: "nominal clamp", n: 8, fc: fc, s: 0, budget: 5, want: 4},
		{name: "low state headroom", n: 8, fc: fc, s: 2, budget: 5, want: 8},
		{name: "floor of one", n: 8, fc: fc, s: 0, budget: 0.1, want: 1},
		{name: "trivial ladder flat table", n: 8, fc: machine.FreqConfig{}, s: 0, budget: 3, want: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := budgetStaticThreads(tc.n, tc.fc, tc.s, 8, tc.budget); got != tc.want {
				t.Fatalf("budgetStaticThreads = %d, want %d", got, tc.want)
			}
		})
	}
}
