package core

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"fdt/internal/machine"
)

// goldenKeys regenerates the run-cache content addresses that
// testdata/identity_keys_pr9.txt captured from the pre-DVFS tree: a
// spread of machine configs × policies × modes plus the monitor,
// hill-climb and hybrid key forms. The golden file is a hard identity
// pin — if any key changes, previously cached/persisted runs would be
// silently resimulated (or worse, collide), so a diff here is a
// compatibility break, not a test to update casually.
func goldenKeys() []string {
	cfgs := []machine.Config{
		machine.DefaultConfig(),
		machine.DefaultConfig().WithCores(16),
		machine.DefaultConfig().WithCores(8).WithBandwidth(0.5),
		machine.DefaultConfig().WithSMT(2),
	}
	pols := []Policy{Static{}, Static{N: 4}, SAT{}, BAT{}, Combined{}}
	var keys []string
	for _, cfg := range cfgs {
		for _, pol := range pols {
			for _, md := range []Mode{ExactMode(), SampledMode()} {
				keys = append(keys, runKey(cfg, "pagemine", pol)+md.key())
			}
		}
		mp := DefaultMonitorParams()
		keys = append(keys, runKey(cfg, "ed", Combined{})+fmt.Sprintf("|monitor/%+v", mp))
		hc := HillClimb{}
		keys = append(keys, ConfigKey(cfg)+"|ed"+fmt.Sprintf("|policy/hill-climb/%+v", hc))
		h := Hybrid{}
		keys = append(keys, ConfigKey(cfg)+"|ed"+
			fmt.Sprintf("|policy/hybrid/seed=combined/%+v|train/%+v", h.HP, h.Params))
	}
	return keys
}

// TestRunCacheKeysIdentityPR9 pins every single-frequency run-cache
// key byte-identical to the pre-DVFS release: the trivial ladder must
// contribute nothing to ConfigKey and default PowerParams nothing to
// the run key (satellite 1's cache-key half; the counters half lives
// in internal/experiments).
func TestRunCacheKeysIdentityPR9(t *testing.T) {
	data, err := os.ReadFile("../../testdata/identity_keys_pr9.txt")
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	got := goldenKeys()
	if len(got) != len(want) {
		t.Fatalf("key count drifted: got %d, golden file has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("key %d drifted from PR 9:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	// Default power parameters must be invisible in run keys, so
	// budget-keyed entry points share cache entries with the legacy
	// ones.
	if frag := DefaultPowerParams().key(); frag != "" {
		t.Errorf("DefaultPowerParams().key() = %q, want empty", frag)
	}
}

// TestRunCacheKeysFreqFragment is the counterpart: once the ladder or
// the power parameters are non-default they MUST appear in the key,
// so DVFS runs never collide with single-frequency ones.
func TestRunCacheKeysFreqFragment(t *testing.T) {
	base := machine.DefaultConfig()
	cfg := base.WithFreq(machine.DefaultLadder())
	key := ConfigKey(cfg)
	if !strings.HasPrefix(key, ConfigKey(base)) {
		t.Errorf("ladder key does not extend the flat key:\n%s", key)
	}
	wantFrag := "|freq/" + machine.DefaultLadder().Key()
	if !strings.HasSuffix(key, wantFrag) {
		t.Errorf("ladder key %q missing fragment %q", key, wantFrag)
	}
	if k2 := ConfigKey(base.WithFreq(machine.FreqConfig{})); k2 != ConfigKey(base) {
		t.Errorf("explicit trivial ladder changed the key: %q", k2)
	}

	pp := PowerParams{Budget: 4, LockState: -1}
	if got, want := pp.key(), "|power/b=4,lock=-1"; got != want {
		t.Errorf("PowerParams.key() = %q, want %q", got, want)
	}
	lock := PowerParams{Budget: 0, LockState: 2}
	if got, want := lock.key(), "|power/b=0,lock=2"; got != want {
		t.Errorf("lock-only key = %q, want %q", got, want)
	}
}
