package core

import (
	"fmt"
	"unsafe"

	"fdt/internal/machine"
	"fdt/internal/mem"
	"fdt/internal/runner"
)

// The run cache memoizes deterministic simulated executions for the
// lifetime of the process. Every run is a pure function of (machine
// config, workload identity, policy) — the simulator admits no host
// nondeterminism — so figures that sweep the same baselines (Fig 8,
// 14 and 15 all run the twelve workloads over the same static thread
// counts) share one simulation per distinct run instead of
// re-simulating it per figure.
//
// Cache keys are content-addressed: the machine config's printed
// fields, the caller-supplied workload key, and the policy's resolved
// identity. A run is cacheable only when the caller can name the
// workload (including any non-default parameters) — closures carry no
// identity of their own, so an empty workload key bypasses the cache.
var runCache runner.Cache[RunResult]

func init() {
	runCache.SetSizer(runResultBytes)
}

// runResultBytes estimates a memoized RunResult's heap footprint for
// the cache's byte accounting: the structs plus their string and
// slice payloads.
func runResultBytes(r RunResult) uint64 {
	size := uint64(unsafe.Sizeof(r))
	size += uint64(len(r.Workload) + len(r.Policy))
	for _, k := range r.Kernels {
		size += uint64(unsafe.Sizeof(k))
		size += uint64(len(k.Kernel))
		for _, p := range k.Phases {
			size += uint64(unsafe.Sizeof(p))
			size += uint64(len(p.Trigger))
		}
	}
	if r.Sampled != nil {
		size += uint64(unsafe.Sizeof(*r.Sampled))
	}
	return size
}

// RunCacheStats reports process-lifetime run-cache hits and misses.
func RunCacheStats() (hits, misses uint64) { return runCache.Stats() }

// RunCacheUsage reports the run cache's population: entry count,
// estimated bytes, and entries evicted by the cap.
func RunCacheUsage() (entries int, bytes, evictions uint64) {
	return runCache.Len(), runCache.Bytes(), runCache.Evictions()
}

// SetRunCacheLimit caps the memoized run count (0 = unlimited): large
// batch sweeps can bound their memory at the cost of re-simulating
// whatever they revisit after eviction.
func SetRunCacheLimit(n int) { runCache.SetLimit(n) }

// ResetRunCache drops every memoized run and zeroes the statistics.
// Tests and benchmarks use it to measure cold-cache behaviour.
func ResetRunCache() { runCache.Reset() }

// ConfigKey fingerprints a machine configuration for cache keying.
// machine.Config is a tree of value types, so the printed form is a
// complete content address. The print goes through a view struct
// holding the pre-DVFS fields so that a trivial ladder contributes
// nothing — single-frequency keys are byte-identical to pre-DVFS
// releases, mirroring the exact-mode rule for Mode.key — while a
// non-trivial ladder appends its own fragment.
func ConfigKey(cfg machine.Config) string {
	legacy := struct {
		Mem         mem.Config
		IssueWidth  int
		ForkCost    uint64
		SMTContexts int
	}{cfg.Mem, cfg.IssueWidth, cfg.ForkCost, cfg.SMTContexts}
	key := fmt.Sprintf("%+v", legacy)
	if !cfg.Freq.Trivial() {
		key += "|freq/" + cfg.Freq.Key()
	}
	return key
}

// policyKey resolves a policy to its cache identity on a machine with
// the given core count. Static counts are normalized (Static{} and
// Static{N: cores} are the same run); trained policies are identified
// by name, which is sufficient because RunPolicy always trains with
// DefaultTrainingParams. Custom controllers must not use the cache.
//
// A memoized RunResult carries the Policy label of whichever
// equivalent policy simulated first ("static-all" vs "static-32");
// the label is display-only, every measured quantity is identical.
func policyKey(pol Policy, cores int) string {
	if s, ok := pol.(Static); ok {
		return fmt.Sprintf("static/%d", s.StaticThreads(cores))
	}
	return "policy/" + pol.Name()
}

// runKey composes the full content address for one simulated run.
func runKey(cfg machine.Config, wkey string, pol Policy) string {
	return ConfigKey(cfg) + "|" + wkey + "|" + policyKey(pol, machineContexts(cfg))
}

// machineContexts mirrors machine.Machine.Contexts for a config.
func machineContexts(cfg machine.Config) int {
	return cfg.Mem.Cores * cfg.SMTContexts
}

// RunPolicyKeyed is RunPolicy with a workload cache key: wkey names
// the workload and its parameters (e.g. "pagemine" or
// "pagemine/pb=2560"). The first call per (config, wkey, policy)
// simulates; later calls — from any figure, on any worker — return
// the memoized result. An empty wkey disables caching and is
// equivalent to RunPolicy.
func RunPolicyKeyed(cfg machine.Config, wkey string, f Factory, pol Policy) RunResult {
	return RunPolicyKeyedMode(cfg, wkey, f, pol, ExactMode())
}

// RunPolicyKeyedMode is RunPolicyKeyed in an explicit execution mode.
// Sampled runs append the mode's parameters to the content address, so
// they never collide with exact runs (whose keys are unchanged).
func RunPolicyKeyedMode(cfg machine.Config, wkey string, f Factory, pol Policy, md Mode) RunResult {
	if wkey == "" {
		return RunPolicyMode(cfg, f, pol, md)
	}
	return runCache.Do(runKey(cfg, wkey, pol)+md.key(), func() RunResult {
		return RunPolicyMode(cfg, f, pol, md)
	})
}

// RunPolicyBudget is RunPolicy under explicit power parameters: the
// controller's Estimate stage searches the (threads, frequency) plane
// within pp's budget (and lock) on cfg's ladder.
func RunPolicyBudget(cfg machine.Config, f Factory, pol Policy, pp PowerParams) RunResult {
	return RunPolicyBudgetMode(cfg, f, pol, pp, ExactMode())
}

// RunPolicyBudgetMode is RunPolicyBudget in an explicit execution
// mode.
func RunPolicyBudgetMode(cfg machine.Config, f Factory, pol Policy, pp PowerParams, md Mode) RunResult {
	m := machine.MustNew(cfg)
	ctl := NewController(pol)
	ctl.Mode = md
	ctl.Power = &pp
	return ctl.Run(m, f(m))
}

// RunPolicyBudgetKeyed is RunPolicyBudget through the run cache. The
// power parameters join the content address (default parameters
// contribute nothing, so unconstrained runs share entries with
// RunPolicyKeyed).
func RunPolicyBudgetKeyed(cfg machine.Config, wkey string, f Factory, pol Policy, pp PowerParams) RunResult {
	return RunPolicyBudgetKeyedMode(cfg, wkey, f, pol, pp, ExactMode())
}

// RunPolicyBudgetKeyedMode is RunPolicyBudgetKeyed in an explicit
// execution mode.
func RunPolicyBudgetKeyedMode(cfg machine.Config, wkey string, f Factory, pol Policy, pp PowerParams, md Mode) RunResult {
	if wkey == "" {
		return RunPolicyBudgetMode(cfg, f, pol, pp, md)
	}
	return runCache.Do(runKey(cfg, wkey, pol)+pp.key()+md.key(), func() RunResult {
		return RunPolicyBudgetMode(cfg, f, pol, pp, md)
	})
}

// RunAdaptiveBudgetKeyed is RunAdaptiveKeyed under explicit power
// parameters: the adaptive pipeline re-runs the (threads, frequency)
// search at every phase change.
func RunAdaptiveBudgetKeyed(cfg machine.Config, wkey string, f Factory, pol Policy, mp MonitorParams, pp PowerParams) RunResult {
	run := func() RunResult {
		m := machine.MustNew(cfg)
		ctl := NewAdaptiveController(pol, mp)
		ctl.Power = &pp
		return ctl.Run(m, f(m))
	}
	if wkey == "" {
		return run()
	}
	key := runKey(cfg, wkey, pol) + fmt.Sprintf("|monitor/%+v", mp) + pp.key()
	return runCache.Do(key, run)
}

// RunAdaptive runs the workload on a fresh machine under a
// phase-adaptive (monitored) controller.
func RunAdaptive(cfg machine.Config, f Factory, pol Policy, mp MonitorParams) RunResult {
	return RunAdaptiveMode(cfg, f, pol, mp, ExactMode())
}

// RunAdaptiveMode is RunAdaptive in an explicit execution mode.
func RunAdaptiveMode(cfg machine.Config, f Factory, pol Policy, mp MonitorParams, md Mode) RunResult {
	m := machine.MustNew(cfg)
	ctl := NewAdaptiveController(pol, mp)
	ctl.Mode = md
	return ctl.Run(m, f(m))
}

// RunAdaptiveKeyed is RunAdaptive through the run cache. The monitor
// configuration joins the content address, so an adaptive run never
// collides with the train-once run of the same (config, workload,
// policy) triple — or with an adaptive run under different monitoring.
func RunAdaptiveKeyed(cfg machine.Config, wkey string, f Factory, pol Policy, mp MonitorParams) RunResult {
	return RunAdaptiveKeyedMode(cfg, wkey, f, pol, mp, ExactMode())
}

// RunAdaptiveKeyedMode is RunAdaptiveKeyed in an explicit execution
// mode.
func RunAdaptiveKeyedMode(cfg machine.Config, wkey string, f Factory, pol Policy, mp MonitorParams, md Mode) RunResult {
	if wkey == "" {
		return RunAdaptiveMode(cfg, f, pol, mp, md)
	}
	key := runKey(cfg, wkey, pol) + fmt.Sprintf("|monitor/%+v", mp) + md.key()
	return runCache.Do(key, func() RunResult {
		return RunAdaptiveMode(cfg, f, pol, mp, md)
	})
}

// SweepKeyed runs the workload once per requested static thread count,
// fanning the independent simulations out over the runner's worker
// pool and memoizing each point under wkey. Results are ordered by
// thread count exactly as a serial sweep would produce them.
func SweepKeyed(cfg machine.Config, wkey string, f Factory, threadCounts []int) []RunResult {
	return SweepKeyedMode(cfg, wkey, f, threadCounts, ExactMode())
}

// SweepKeyedMode is SweepKeyed in an explicit execution mode.
func SweepKeyedMode(cfg machine.Config, wkey string, f Factory, threadCounts []int, md Mode) []RunResult {
	out := make([]RunResult, len(threadCounts))
	runner.Map(len(threadCounts), func(i int) {
		out[i] = RunPolicyKeyedMode(cfg, wkey, f, Static{N: threadCounts[i]}, md)
	})
	return out
}

// SweepBudgetKeyedMode is SweepKeyedMode under explicit power
// parameters: every static point runs budget-clamped on cfg's ladder
// (budgetStaticThreads), so a sweep's curve stays comparable to the
// budgeted policy placements drawn onto it.
func SweepBudgetKeyedMode(cfg machine.Config, wkey string, f Factory, threadCounts []int, pp PowerParams, md Mode) []RunResult {
	out := make([]RunResult, len(threadCounts))
	runner.Map(len(threadCounts), func(i int) {
		out[i] = RunPolicyBudgetKeyedMode(cfg, wkey, f, Static{N: threadCounts[i]}, pp, md)
	})
	return out
}

// RunHillClimb executes the workload under the hill-climbing
// allocation baseline (see HillClimb). Hill-climbing measures real
// probe chunks, so it always runs exact — sampling would falsify the
// very measurements it climbs on.
func RunHillClimb(cfg machine.Config, f Factory, hc HillClimb) RunResult {
	m := machine.MustNew(cfg)
	return hc.Run(m, f(m))
}

// RunHillClimbKeyed is RunHillClimb through the run cache. The
// climber's tuning joins the content address, so runs with different
// probe lengths or gain thresholds never collide.
func RunHillClimbKeyed(cfg machine.Config, wkey string, f Factory, hc HillClimb) RunResult {
	if wkey == "" {
		return RunHillClimb(cfg, f, hc)
	}
	key := ConfigKey(cfg) + "|" + wkey + fmt.Sprintf("|policy/hill-climb/%+v", hc)
	return runCache.Do(key, func() RunResult {
		return RunHillClimb(cfg, f, hc)
	})
}

// RunHybrid executes the workload under the hybrid model+measurement
// controller. Like hill-climbing it always runs exact: the refinement
// probes time real chunks.
func RunHybrid(cfg machine.Config, f Factory, h Hybrid) RunResult {
	m := machine.MustNew(cfg)
	return h.Run(m, f(m))
}

// RunHybridKeyed is RunHybrid through the run cache. The hybrid tuning
// (probe budget, residual thresholds, monitor cadence) joins the
// content address.
func RunHybridKeyed(cfg machine.Config, wkey string, f Factory, h Hybrid) RunResult {
	if wkey == "" {
		return RunHybrid(cfg, f, h)
	}
	seed := "combined"
	if h.Policy != nil {
		seed = h.Policy.Name()
	}
	key := ConfigKey(cfg) + "|" + wkey +
		fmt.Sprintf("|policy/hybrid/seed=%s/%+v|train/%+v", seed, h.HP, h.Params)
	return runCache.Do(key, func() RunResult {
		return RunHybrid(cfg, f, h)
	})
}
