package core

import (
	"fdt/internal/counters"
	"fdt/internal/thread"
	"fdt/internal/trace"
)

// This file implements the Monitor stage of the FDT pipeline — the
// deviation from the paper's train-once design (Section 9 flags the
// locked decision as fragile for kernels whose behaviour shifts
// mid-execution). During chunked execution the monitor keeps reading
// per-interval counter deltas and compares the kernel's observed
// per-iteration critical-section time and bus occupancy against the
// trained steady-state estimate; when either drifts beyond tolerance,
// the kernel has changed phase and the controller re-enters the
// Sample stage at the current iteration.

// MonitorParams tunes the Monitor stage.
type MonitorParams struct {
	// Interval is the execution chunk length in iterations; the
	// monitor reads counter deltas at every chunk boundary (the only
	// safe re-decision points — between chunks the team has joined).
	Interval int
	// DriftTol is the relative tolerance on the per-iteration signals:
	// an interval drifts when |observed - expected| exceeds
	// DriftTol x min(observed, expected) and the absolute floor. The
	// min makes the test symmetric for onsets (expected ~0) and
	// drop-offs (observed ~0), both of which mark phase boundaries.
	DriftTol float64
	// CSFloorCycles / BusFloorCycles are absolute per-iteration floors
	// (in cycles) below which a difference is measurement noise, not a
	// phase change.
	CSFloorCycles  float64
	BusFloorCycles float64
	// MaxRetrains caps re-trainings per kernel; past it the remainder
	// executes unmonitored with the last decision, bounding training
	// overhead on pathologically unstable kernels.
	MaxRetrains int
}

// DefaultMonitorParams returns the monitoring configuration used by
// the adaptive ablation: re-check every 64 iterations, tolerate 100%
// relative drift (single-threaded training underestimates contended
// critical-section cost, so execution-mode readings sit above the
// trained estimate even within one phase), floors at a few tens of
// cycles per iteration.
func DefaultMonitorParams() MonitorParams {
	return MonitorParams{
		Interval:       64,
		DriftTol:       1.0,
		CSFloorCycles:  16,
		BusFloorCycles: 24,
		MaxRetrains:    8,
	}
}

// Drift describes one detected phase change.
type Drift struct {
	// Iter is the first iteration not yet executed when the drift was
	// detected — where re-training starts.
	Iter int
	// Signal names the drifted quantity: "cs" (per-iteration critical-
	// section cycles) or "bus" (per-iteration bus busy cycles).
	Signal string
	// Observed and Expected are the per-iteration cycle values that
	// tripped the tolerance.
	Observed, Expected float64
}

// SteadyState is the per-iteration steady-state view of a training
// run — the reference the monitor measures execution intervals
// against.
type SteadyState struct {
	// Iters is the number of steady (post-warmup, in-window) samples.
	Iters int
	// CyclesPerIter, CSPerIter and BusPerIter are per-iteration
	// steady-state averages.
	CyclesPerIter, CSPerIter, BusPerIter float64
}

// Residual integrates the evidence stream behind the hybrid
// controller's fallback decision: an exponentially weighted moving
// average of relative deviations between observed per-interval signals
// and the model's (calibrated) expectations, plus the misprediction
// penalties the refinement probes feed it. Deviations are clamped at
// residualDevCap so one pathological interval cannot pin the average
// beyond recovery.
type Residual struct {
	// Decay is each new observation's EWMA weight; zero or
	// out-of-range values fall back to 0.25.
	Decay float64

	v float64
	n int
}

// residualDevCap bounds a single deviation observation.
const residualDevCap = 2.0

// Observe folds one (non-negative) deviation into the average.
func (r *Residual) Observe(dev float64) {
	if dev < 0 {
		dev = -dev
	}
	if dev > residualDevCap {
		dev = residualDevCap
	}
	a := r.Decay
	if a <= 0 || a > 1 {
		a = 0.25
	}
	r.v = (1-a)*r.v + a*dev
	r.n++
}

// Value reports the current EWMA.
func (r *Residual) Value() float64 { return r.v }

// Samples reports how many observations have been folded in.
func (r *Residual) Samples() int { return r.n }

// relDev is the continuous form of the drift test: the absolute
// difference over the smaller signal. Differences under the noise
// floor contribute zero, and the denominator is floored so a
// near-zero expectation cannot blow the ratio up.
func relDev(obs, exp, floor float64) float64 {
	diff := obs - exp
	if diff < 0 {
		diff = -diff
	}
	if diff <= floor {
		return 0
	}
	lo := obs
	if exp < obs {
		lo = exp
	}
	if lo < floor {
		lo = floor
	}
	return diff / lo
}

// Monitor watches one kernel's execution against its trained
// estimate. Arm it after estimation, then Observe after every chunk.
type Monitor struct {
	Params MonitorParams

	// Res, when non-nil, receives the continuous deviation of every
	// post-calibration interval (one observation per interval: the
	// worse of the CS and bus signals) — the hybrid controller's
	// residual plumbing. The binary drift verdict is unaffected.
	Res *Residual

	expCS, expBus float64
	calibrated    bool

	// csCtr is the team's private critical-section counter; busCtr the
	// machine-global bus counter (same scoping rationale as the
	// Sampler: locks are program-private, the bus PMU counter is
	// socket-wide — which is exactly how the monitor sees a co-runner's
	// onset as "bus" drift).
	csCtr, busCtr   *counters.Counter
	csSnap, busSnap counters.Sample
	t0              uint64

	// tr/track emit one "monitor" instant per interval reading —
	// the audit trail behind every retrain (and every non-retrain).
	tr     *trace.Tracer
	track  trace.TrackID
	traced bool
}

// NewMonitor builds a monitor expecting the trained steady state.
func NewMonitor(p MonitorParams, ref SteadyState) *Monitor {
	return &Monitor{Params: p, expCS: ref.CSPerIter, expBus: ref.BusPerIter}
}

// Arm snapshots the counters at the start of monitored execution.
func (mo *Monitor) Arm(c *thread.Ctx) {
	mo.csCtr = c.TeamCounter(thread.CtrCSCycles)
	mo.busCtr = c.Machine().Ctrs.Counter(counters.BusBusyCycles)
	mo.csSnap = mo.csCtr.Sample()
	mo.busSnap = mo.busCtr.Sample()
	mo.t0 = c.CPU.CycleCount()
	if t := c.Machine().Trace; t.Wants(trace.CatCtl) {
		mo.tr = t
		mo.track = t.Track(trace.ControllerTrack)
		mo.traced = true
	}
}

// Observe reads the counter deltas for the interval that just
// executed (iters iterations, ending just before iteration nextIter),
// re-arms for the next interval, and reports a Drift if the observed
// per-iteration bus or critical-section cycles left the tolerance
// band around the expectation.
//
// The first interval after each (re)training is a calibration
// interval: it rebases the trained expectations to team-execution
// values and never reports drift. Training runs single-threaded, so
// its per-iteration readings are systematically skewed against
// execution mode — kernels that merge per thread per iteration
// multiply their critical-section cycles by the team size (Eq 1's
// model), and contended critical sections pay lock-line ping-pong the
// training run never sees. Calibrating on the first executed interval
// makes every subsequent comparison like-for-like while the trained
// estimate remains the basis of the thread-count decision itself.
func (mo *Monitor) Observe(c *thread.Ctx, iters, nextIter int) *Drift {
	if iters <= 0 {
		return nil
	}
	dcs := mo.csCtr.DeltaSince(mo.csSnap)
	dbus := mo.busCtr.DeltaSince(mo.busSnap)
	mo.csSnap = mo.csCtr.Sample()
	mo.busSnap = mo.busCtr.Sample()
	mo.t0 = c.CPU.CycleCount()
	obsCS := float64(dcs) / float64(iters)
	obsBus := float64(dbus) / float64(iters)

	if mo.traced {
		mo.tr.Emit(trace.CatCtl, trace.Event{
			Cycle: mo.t0, Track: mo.track, Kind: trace.Instant, Name: "monitor",
			A0: uint64(obsCS + 0.5), A1: uint64(obsBus + 0.5), A2: uint64(nextIter),
		})
	}

	if !mo.calibrated {
		mo.expCS, mo.expBus = obsCS, obsBus
		mo.calibrated = true
		return nil
	}
	if mo.Res != nil {
		// One observation per interval: the worse of the two signals.
		// Folding both would dilute a drifting signal with the quiet
		// one's zeros.
		dev := relDev(obsCS, mo.expCS, mo.Params.CSFloorCycles)
		if b := relDev(obsBus, mo.expBus, mo.Params.BusFloorCycles); b > dev {
			dev = b
		}
		mo.Res.Observe(dev)
	}
	// Bus first: a phase that both saturates the bus and synchronizes
	// more is bandwidth-limited first (Section 6.3's interaction).
	if mo.drifted(obsBus, mo.expBus, mo.Params.BusFloorCycles) {
		return &Drift{Iter: nextIter, Signal: "bus", Observed: obsBus, Expected: mo.expBus}
	}
	if mo.drifted(obsCS, mo.expCS, mo.Params.CSFloorCycles) {
		return &Drift{Iter: nextIter, Signal: "cs", Observed: obsCS, Expected: mo.expCS}
	}
	return nil
}

// drifted applies the tolerance test: the absolute difference must
// exceed both the noise floor and DriftTol times the smaller of the
// two values (symmetric for onsets and drop-offs).
func (mo *Monitor) drifted(obs, exp, floor float64) bool {
	diff := obs - exp
	if diff < 0 {
		diff = -diff
	}
	if diff <= floor {
		return false
	}
	lo := obs
	if exp < obs {
		lo = exp
	}
	return diff > mo.Params.DriftTol*lo
}
