package core

import (
	"testing"
	"testing/quick"

	"fdt/internal/machine"
	"fdt/internal/thread"
)

// synthKernel is a configurable kernel for controller tests: each
// iteration does computeCycles of parallel work (split across the
// team) and optionally csCycles inside a critical section per thread.
type synthKernel struct {
	name          string
	iters         int
	computeCycles uint64
	csCycles      uint64
	memLines      int // cold lines streamed per iteration (bus demand)
	base          uint64
	nextLine      int

	lock thread.Lock

	// chunkTeams records the team size of every RunChunk call;
	// ranges records the iteration ranges, in call order.
	chunkTeams []int
	ranges     [][2]int
}

// coveredExactly reports whether the recorded chunk ranges partition
// [0, n) in order without gaps or overlaps.
func (k *synthKernel) coveredExactly(n int) bool {
	next := 0
	for _, r := range k.ranges {
		if r[0] != next || r[1] < r[0] {
			return false
		}
		next = r[1]
	}
	return next == n
}

func (k *synthKernel) Name() string    { return k.name }
func (k *synthKernel) Iterations() int { return k.iters }

func (k *synthKernel) RunChunk(master *thread.Ctx, n, lo, hi int) {
	k.chunkTeams = append(k.chunkTeams, n)
	k.ranges = append(k.ranges, [2]int{lo, hi})
	master.Fork(n, func(tc *thread.Ctx) {
		for it := lo; it < hi; it++ {
			myLo, myHi := tc.Range(0, 64)
			share := uint64(myHi - myLo)
			tc.Compute(k.computeCycles * share / 64)
			// Each thread streams its share of fresh lines, so the
			// kernel's bus demand scales with the team like a real
			// data-parallel loop's. The shared cursor is safe: the
			// sim kernel runs one process at a time.
			lines := k.memLines * (myHi - myLo) / 64
			for l := 0; l < lines; l++ {
				tc.Load(k.base + uint64(k.nextLine)*64)
				k.nextLine++
			}
			if k.csCycles > 0 {
				tc.Critical(&k.lock, func() { tc.Compute(k.csCycles) })
			}
		}
	})
}

type synthWorkload struct {
	name    string
	kernels []Kernel
}

func (w *synthWorkload) Name() string      { return w.name }
func (w *synthWorkload) Kernels() []Kernel { return w.kernels }

func newSynthFactory(iters int, compute, cs uint64, memLines int) Factory {
	return func(m *machine.Machine) Workload {
		k := &synthKernel{
			name:          "synth",
			iters:         iters,
			computeCycles: compute,
			csCycles:      cs,
			memLines:      memLines,
			base:          m.Alloc(64 << 20),
		}
		return &synthWorkload{name: "synth", kernels: []Kernel{k}}
	}
}

func TestStaticPolicySkipsTraining(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(10, 1000, 0, 0)
	w := f(m)
	res := NewController(Static{N: 4}).Run(m, w)
	k := w.Kernels()[0].(*synthKernel)
	if len(k.chunkTeams) != 1 || k.chunkTeams[0] != 4 {
		t.Errorf("chunk teams = %v, want single chunk at 4 threads", k.chunkTeams)
	}
	if res.Kernels[0].TrainIters != 0 {
		t.Errorf("static policy trained %d iterations", res.Kernels[0].TrainIters)
	}
}

func TestTrainingRunsSingleThreaded(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(1000, 500, 25, 0)
	w := f(m)
	res := NewController(SAT{}).Run(m, w)
	k := w.Kernels()[0].(*synthKernel)
	ti := res.Kernels[0].TrainIters
	if ti < 3 {
		t.Fatalf("trained %d iterations, want >= stability window", ti)
	}
	for i := 0; i < ti; i++ {
		if k.chunkTeams[i] != 1 {
			t.Errorf("training chunk %d used %d threads, want 1", i, k.chunkTeams[i])
		}
	}
}

func TestSATStopsAtStability(t *testing.T) {
	// A perfectly regular kernel stabilizes in exactly the window.
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(10000, 500, 25, 0)
	w := f(m)
	res := NewController(SAT{}).Run(m, w)
	ti := res.Kernels[0].TrainIters
	if ti != 3 {
		t.Errorf("trained %d iterations, want 3 (stability window)", ti)
	}
	if ti > 100 {
		t.Errorf("training exceeded 1%% cap: %d", ti)
	}
}

func TestSATPredictsSqrtRule(t *testing.T) {
	// compute=960 split over... per iteration single-threaded:
	// T_NoCS ~ 960, T_CS = 60 -> P_CS = sqrt(16) = 4.
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(1000, 960, 60, 0)
	w := f(m)
	res := NewController(SAT{}).Run(m, w)
	d := res.Kernels[0].Decision
	if d.PCS != 4 {
		t.Errorf("PCS = %d (csfrac %.4f), want 4", d.PCS, d.CSFraction)
	}
	k := w.Kernels()[0].(*synthKernel)
	last := k.chunkTeams[len(k.chunkTeams)-1]
	if last != 4 {
		t.Errorf("execution used %d threads, want 4", last)
	}
}

func TestSATUnlimitedWithoutCriticalSection(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(1000, 500, 0, 0)
	w := f(m)
	res := NewController(SAT{}).Run(m, w)
	d := res.Kernels[0].Decision
	if d.Threads != 32 || d.PCS != 0 {
		t.Errorf("no-CS kernel: threads=%d pcs=%d, want 32/0", d.Threads, d.PCS)
	}
}

func TestBATEarlyOutForComputeBoundKernel(t *testing.T) {
	// A kernel that never touches the bus cannot be BW-limited: BAT
	// must early-out after 10000 cycles instead of training 1% of a
	// huge loop.
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(100000, 5000, 0, 0)
	w := f(m)
	res := NewController(BAT{}).Run(m, w)
	kr := res.Kernels[0]
	if kr.TrainIters >= 1000 {
		t.Errorf("BAT trained %d iterations, early-out should have fired", kr.TrainIters)
	}
	if kr.Decision.Threads != 32 {
		t.Errorf("threads = %d, want 32 for unlimited kernel", kr.Decision.Threads)
	}
}

func TestBATDetectsBandwidthLimit(t *testing.T) {
	// Iterations streaming cold lines: single-thread bus utilization
	// is meaningful and BAT must pick a finite thread count well
	// below the core count.
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(2000, 50, 0, 16)
	w := f(m)
	res := NewController(BAT{}).Run(m, w)
	d := res.Kernels[0].Decision
	if d.PBW == 0 || d.PBW > 16 {
		t.Errorf("PBW = %d (bu1 %.3f), want a finite saturation count <= 16", d.PBW, d.BusUtil1)
	}
	if d.Threads != d.PBW {
		t.Errorf("threads = %d, want PBW = %d", d.Threads, d.PBW)
	}
}

func TestCombinedTakesMin(t *testing.T) {
	// CS-heavy kernel with modest memory traffic: SAT's limit is the
	// binding one and Combined must agree with SAT.
	m1 := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(1000, 960, 60, 2)
	resSAT := NewController(SAT{}).Run(m1, f(m1))

	m2 := machine.MustNew(machine.DefaultConfig())
	resComb := NewController(Combined{}).Run(m2, f(m2))

	if resComb.Kernels[0].Decision.Threads > resSAT.Kernels[0].Decision.Threads {
		t.Errorf("combined chose %d threads > SAT's %d",
			resComb.Kernels[0].Decision.Threads, resSAT.Kernels[0].Decision.Threads)
	}
	if resComb.Kernels[0].Decision.PCS == 0 {
		t.Error("combined did not evaluate SAT")
	}
}

func TestPerKernelDecisions(t *testing.T) {
	// A two-kernel workload gets independent decisions (the MTwister
	// property).
	f := func(m *machine.Machine) Workload {
		k1 := &synthKernel{name: "k1", iters: 500, computeCycles: 400, csCycles: 0, base: m.Alloc(1 << 20)}
		k2 := &synthKernel{name: "k2", iters: 500, computeCycles: 400, csCycles: 100, base: m.Alloc(1 << 20)}
		return &synthWorkload{name: "two", kernels: []Kernel{k1, k2}}
	}
	m := machine.MustNew(machine.DefaultConfig())
	res := NewController(Combined{}).Run(m, f(m))
	if len(res.Kernels) != 2 {
		t.Fatalf("got %d kernel results, want 2", len(res.Kernels))
	}
	if res.Kernels[0].Decision.Threads <= res.Kernels[1].Decision.Threads {
		t.Errorf("k1 (no CS) got %d threads, k2 (heavy CS) got %d — want k1 > k2",
			res.Kernels[0].Decision.Threads, res.Kernels[1].Decision.Threads)
	}
}

func TestAvgThreadsWeighted(t *testing.T) {
	r := RunResult{Kernels: []KernelResult{
		{Decision: Decision{Threads: 32}, Cycles: 100},
		{Decision: Decision{Threads: 12}, Cycles: 300},
	}}
	want := (32.0*100 + 12.0*300) / 400
	if got := r.AvgThreads(); got != want {
		t.Errorf("AvgThreads = %v, want %v", got, want)
	}
}

func TestOracleFindsBestStatic(t *testing.T) {
	// CS-heavy kernel on a small machine: the oracle's pick must be
	// near the analytic optimum and its time must be minimal.
	cfg := machine.DefaultConfig().WithCores(8)
	f := newSynthFactory(60, 960, 60, 0)
	or := Oracle(cfg, f, 0.01)
	if or.Threads < 3 || or.Threads > 5 {
		t.Errorf("oracle picked %d threads, want ~4", or.Threads)
	}
	for i, r := range or.Sweep {
		if r.TotalCycles < or.Run.TotalCycles*99/100 {
			t.Errorf("sweep[%d] beats oracle by >1%%: %d vs %d", i, r.TotalCycles, or.Run.TotalCycles)
		}
	}
}

func TestTinyKernelSkipsTraining(t *testing.T) {
	// A kernel with fewer iterations than MinIterations cannot be
	// peeled meaningfully: it must run at the static fallback instead
	// of being eaten by single-threaded training.
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(4, 1000, 50, 0)
	w := f(m)
	res := NewController(Combined{}).Run(m, w)
	kr := res.Kernels[0]
	if kr.TrainIters != 0 {
		t.Errorf("tiny kernel trained %d iterations", kr.TrainIters)
	}
	if kr.Decision.Threads != 32 {
		t.Errorf("tiny kernel got %d threads, want the static fallback (32)", kr.Decision.Threads)
	}
	k := w.Kernels()[0].(*synthKernel)
	if len(k.chunkTeams) != 1 || k.chunkTeams[0] != 32 {
		t.Errorf("chunks = %v, want one 32-thread chunk", k.chunkTeams)
	}
}

func TestEmptyKernelIsNoop(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	f := newSynthFactory(0, 100, 0, 0)
	w := f(m)
	res := NewController(Combined{}).Run(m, w)
	if res.Kernels[0].Cycles != 0 {
		t.Errorf("empty kernel took %d cycles", res.Kernels[0].Cycles)
	}
}

func TestPropertyChunksPartitionIterations(t *testing.T) {
	// Whatever the policy does, the union of executed chunk ranges
	// must be exactly [0, N): every iteration once, in order.
	f := func(itersRaw uint16, csRaw uint8) bool {
		iters := int(itersRaw%300) + 8
		cs := uint64(csRaw % 50)
		m := machine.MustNew(machine.DefaultConfig())
		k := &synthKernel{
			name: "synth", iters: iters, computeCycles: 400, csCycles: cs,
			base: m.Alloc(1 << 20),
		}
		w := &synthWorkload{name: "synth", kernels: []Kernel{k}}
		NewController(Combined{}).Run(m, w)
		return k.coveredExactly(iters)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestStableWindow(t *testing.T) {
	if stableWindow([]float64{0.1, 0.1}, 3, 0.05) {
		t.Error("short history reported stable")
	}
	if !stableWindow([]float64{0.5, 0.100, 0.101, 0.102}, 3, 0.05) {
		t.Error("tight window not stable")
	}
	if stableWindow([]float64{0.10, 0.20, 0.10}, 3, 0.05) {
		t.Error("wild window reported stable")
	}
	if !stableWindow([]float64{0, 0, 0}, 3, 0.05) {
		t.Error("all-zero window (no CS) must be stable")
	}
}

func TestCSRatio(t *testing.T) {
	if got := csRatio(100, 20); got != 0.25 {
		t.Errorf("csRatio(100,20) = %v, want 0.25 (20/80)", got)
	}
	if got := csRatio(100, 100); got != 1 {
		t.Errorf("csRatio all-CS = %v, want 1", got)
	}
	if got := csRatio(100, 0); got != 0 {
		t.Errorf("csRatio no-CS = %v, want 0", got)
	}
}
