package core

import (
	"strings"
	"testing"

	"fdt/internal/invariant"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// waveKernel is a synthetic kernel whose critical-section cost is a
// function of the iteration index — the knob the hybrid tests use to
// script exactly when the model's trained expectations break.
type waveKernel struct {
	name    string
	iters   int
	compute uint64
	cs      func(it int) uint64

	lock   thread.Lock
	ranges [][2]int
}

func (k *waveKernel) Name() string    { return k.name }
func (k *waveKernel) Iterations() int { return k.iters }

func (k *waveKernel) RunChunk(master *thread.Ctx, n, lo, hi int) {
	k.ranges = append(k.ranges, [2]int{lo, hi})
	master.Fork(n, func(tc *thread.Ctx) {
		for it := lo; it < hi; it++ {
			myLo, myHi := tc.Range(0, 64)
			share := uint64(myHi - myLo)
			tc.Compute(k.compute * share / 64)
			if c := k.cs(it); c > 0 {
				tc.Critical(&k.lock, func() { tc.Compute(c) })
			}
		}
	})
}

func (k *waveKernel) coveredExactly(n int) bool {
	next := 0
	for _, r := range k.ranges {
		if r[0] != next || r[1] < r[0] {
			return false
		}
		next = r[1]
	}
	return next == n
}

func runHybridOn(t *testing.T, h Hybrid, k *waveKernel, cores int) (RunResult, *invariant.Checker) {
	t.Helper()
	m := machine.MustNew(machine.DefaultConfig().WithCores(cores))
	ck := invariant.New()
	m.AttachChecker(ck)
	w := &synthWorkload{name: k.name, kernels: []Kernel{k}}
	return h.Run(m, w), ck
}

func TestHybridParamsWithDefaults(t *testing.T) {
	got := HybridParams{}.WithDefaults()
	if got != DefaultHybridParams() {
		t.Errorf("zero params resolve to %+v, want defaults %+v", got, DefaultHybridParams())
	}
	p := HybridParams{ProbeIters: 7, ResidualLow: 0.01}
	p = p.WithDefaults()
	if p.ProbeIters != 7 || p.ResidualLow != 0.01 {
		t.Errorf("explicit fields overwritten: %+v", p)
	}
	if p.Monitor.Interval == 0 || p.MaxProbes == 0 || p.ResidualHigh == 0 {
		t.Errorf("zero fields not filled: %+v", p)
	}
	if err := DefaultHybridParams().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
}

func TestHybridParamsValidate(t *testing.T) {
	mod := func(f func(*HybridParams)) HybridParams {
		p := DefaultHybridParams()
		f(&p)
		return p
	}
	cases := []struct {
		name string
		p    HybridParams
		want string
	}{
		{"negative probe iters", mod(func(p *HybridParams) { p.ProbeIters = -1 }), "ProbeIters"},
		{"min gain one", mod(func(p *HybridParams) { p.MinGain = 1.0 }), "MinGain"},
		{"negative min gain", mod(func(p *HybridParams) { p.MinGain = -0.1 }), "MinGain"},
		{"no probes", mod(func(p *HybridParams) { p.MaxProbes = -2 }), "MaxProbes"},
		{"inverted hysteresis", mod(func(p *HybridParams) { p.ResidualHigh = 0.05 }), "hysteresis"},
		{"zero low threshold", mod(func(p *HybridParams) { p.ResidualLow = -1 }), "hysteresis"},
		{"decay above one", mod(func(p *HybridParams) { p.ResidualDecay = 1.5 }), "ResidualDecay"},
		{"negative recheck", mod(func(p *HybridParams) { p.RecheckIntervals = -1 }), "RecheckIntervals"},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
}

// TestHybridStableKernelStaysModel: on a kernel whose behaviour never
// departs from its training, the hybrid is the adaptive pipeline plus
// an audit — it must stay in model mode for the whole run.
func TestHybridStableKernelStaysModel(t *testing.T) {
	k := &waveKernel{name: "stable", iters: 1000, compute: 2000,
		cs: func(int) uint64 { return 50 }}
	res, ck := runHybridOn(t, Hybrid{}, k, 8)
	if err := ck.Err(); err != nil {
		t.Fatalf("invariants violated on a stable kernel: %v", err)
	}
	kr := res.Kernels[0]
	if kr.Fallbacks != 0 || kr.Recoveries != 0 {
		t.Errorf("stable kernel: %d fallbacks / %d recoveries, want 0 / 0", kr.Fallbacks, kr.Recoveries)
	}
	for i, ph := range kr.Phases {
		if ph.Mode != "model" {
			t.Errorf("phase %d mode %q, want model", i, ph.Mode)
		}
	}
	if kr.TrainIters == 0 {
		t.Error("hybrid did not train (sampling + probes should both count)")
	}
	if !k.coveredExactly(1000) {
		t.Errorf("iteration ranges do not partition [0, 1000): %v", k.ranges)
	}
	if d := kr.Decision.Threads; d < 1 || d > 8 {
		t.Errorf("decided %d threads on an 8-core machine", d)
	}
}

// TestHybridShortKernelStatic: a kernel shorter than the minimum
// training window cannot be sampled; the hybrid must fall through to
// the policy's static decision without training or probing.
func TestHybridShortKernelStatic(t *testing.T) {
	k := &waveKernel{name: "tiny", iters: 4, compute: 1000,
		cs: func(int) uint64 { return 0 }}
	res, ck := runHybridOn(t, Hybrid{}, k, 8)
	if err := ck.Err(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
	kr := res.Kernels[0]
	if kr.TrainIters != 0 {
		t.Errorf("short kernel trained %d iterations", kr.TrainIters)
	}
	if len(kr.Phases) != 0 {
		t.Errorf("short kernel recorded %d phases, want none (static path)", len(kr.Phases))
	}
	if !k.coveredExactly(4) {
		t.Errorf("iteration ranges do not partition [0, 4): %v", k.ranges)
	}
}

// TestHybridFallbackAndRecovery scripts the full state-machine arc.
// The kernel's critical-section cost flips between cheap and ruinous
// every monitor interval for the first stretch — each interval drifts
// against the last calibration and pumps the residual EWMA over the
// fallback threshold — then settles to a constant cost for a long
// tail, which decays the residual below the recovery threshold. The
// hybrid must fall back to measured mode during the storm, recover to
// model mode in the calm, and do each at most twice (hysteresis).
func TestHybridFallbackAndRecovery(t *testing.T) {
	iv := DefaultHybridParams().Monitor.Interval
	k := &waveKernel{name: "storm-then-calm", iters: 1920, compute: 2000,
		cs: func(it int) uint64 {
			if it >= 576 {
				// Calm: pure compute, perfectly uniform intervals, so the
				// residual's deviation stream is exactly zero and decays.
				return 0
			}
			if (it/iv)%2 == 0 {
				return 30
			}
			return 3000
		}}
	res, ck := runHybridOn(t, Hybrid{}, k, 8)
	if err := ck.Err(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
	kr := res.Kernels[0]
	if kr.Fallbacks < 1 {
		t.Errorf("model-breaking storm never caused a fallback (%d retrains)", kr.Retrains)
	}
	if kr.Recoveries < 1 {
		t.Errorf("stable tail never recovered to model mode (%d fallbacks, residual stuck?)", kr.Fallbacks)
	}
	if kr.Fallbacks > 2 || kr.Recoveries > 2 {
		t.Errorf("state machine thrashed: %d fallbacks / %d recoveries", kr.Fallbacks, kr.Recoveries)
	}
	var sawMeasured, sawFallback, sawRecover bool
	for _, ph := range kr.Phases {
		if ph.Mode == "measured" {
			sawMeasured = true
		}
		switch ph.Trigger {
		case "fallback":
			sawFallback = true
		case "recover":
			sawRecover = true
		}
	}
	if !sawMeasured || !sawFallback || !sawRecover {
		t.Errorf("phase log misses the arc: measured=%v fallback=%v recover=%v (phases %+v)",
			sawMeasured, sawFallback, sawRecover, kr.Phases)
	}
	if !k.coveredExactly(1920) {
		t.Errorf("iteration ranges do not partition [0, 1920): %v", k.ranges)
	}
}

// stepKernel builds the illegal-fallback scenario: one modest sustained
// step in critical-section cost, big enough to trip the binary drift
// test but integrating to a residual well under the raised high
// threshold the test configures — so a fallback at that drift is
// illegal, and only the armed fault takes it.
func stepKernel() *waveKernel {
	return &waveKernel{name: "step", iters: 900, compute: 4000,
		cs: func(it int) uint64 {
			if it < 300 {
				return 200
			}
			return 420
		}}
}

// stepHP raises the fallback threshold far above anything the single
// benign step can integrate to (the straddling interval plus the
// drifting one observe ~0.44), so the forced fallback is unambiguously
// residual-unjustified while the clean controller still retrains
// normally.
func stepHP() HybridParams {
	hp := DefaultHybridParams()
	hp.ResidualHigh = 0.8
	return hp
}

// TestHybridIllegalFallbackCaught proves the ctl-hybrid-state
// invariant has teeth: a deliberately buggy controller that falls back
// without residual evidence must be named by the checker, while the
// clean controller on the identical kernel stays silent.
func TestHybridIllegalFallbackCaught(t *testing.T) {
	res, control := runHybridOn(t, Hybrid{HP: stepHP()}, stepKernel(), 8)
	if err := control.Err(); err != nil {
		t.Fatalf("control run not clean: %v", err)
	}
	if res.Kernels[0].Fallbacks != 0 {
		t.Fatalf("control fell back %d times on a single benign step — the mutation scenario is wrong",
			res.Kernels[0].Fallbacks)
	}
	if res.Kernels[0].Retrains < 1 {
		t.Fatal("step never drifted — the fault path would not execute")
	}

	resF, ck := runHybridOn(t, Hybrid{HP: stepHP(), FaultIllegalFallback: true}, stepKernel(), 8)
	if resF.Kernels[0].Fallbacks < 1 {
		t.Fatal("fault armed but no fallback happened")
	}
	if !ck.Violated("ctl-hybrid-state") {
		t.Fatalf("illegal fallback not caught by ctl-hybrid-state; checker: %s", ck.Report())
	}
}

// TestRunHybridKeyedMemoizes: identical (config, wkey, tuning) calls
// must simulate once; different tunings and empty keys must not
// collide.
func TestRunHybridKeyedMemoizes(t *testing.T) {
	cfg := machine.DefaultConfig().WithCores(8)
	f := newSynthFactory(400, 2000, 50, 0)

	h0, _ := RunCacheStats()
	r1 := RunHybridKeyed(cfg, "synth/hybrid-memo", f, Hybrid{})
	r2 := RunHybridKeyed(cfg, "synth/hybrid-memo", f, Hybrid{})
	h1, _ := RunCacheStats()
	if h1 == h0 {
		t.Error("second identical call did not hit the cache")
	}
	if r1.TotalCycles != r2.TotalCycles || r1.Policy != r2.Policy {
		t.Errorf("memoized result differs: %d vs %d cycles", r1.TotalCycles, r2.TotalCycles)
	}

	// A different tuning is a different run.
	hp := DefaultHybridParams()
	hp.ProbeIters = 12
	r3 := RunHybridKeyed(cfg, "synth/hybrid-memo", f, Hybrid{HP: hp})
	if r3.Kernels[0].TrainIters == r1.Kernels[0].TrainIters && r3.TotalCycles == r1.TotalCycles {
		t.Log("different tuning produced identical run (possible, but suspicious)")
	}
	h2, m2 := RunCacheStats()
	_ = h2
	r4 := RunHybridKeyed(cfg, "synth/hybrid-memo", f, Hybrid{HP: hp})
	h3, m3 := RunCacheStats()
	if m3 != m2 {
		t.Error("repeated tuned call re-simulated (tuning not in the content address?)")
	}
	if h3 == h2 {
		t.Error("repeated tuned call did not hit the cache")
	}
	if r4.TotalCycles != r3.TotalCycles {
		t.Errorf("memoized tuned result differs: %d vs %d", r3.TotalCycles, r4.TotalCycles)
	}

	// Empty workload key bypasses the cache entirely.
	_, mBefore := RunCacheStats()
	RunHybridKeyed(cfg, "", f, Hybrid{})
	_, mAfter := RunCacheStats()
	if mAfter != mBefore {
		t.Error("empty wkey touched the cache")
	}
}

// TestRunHillClimbKeyedMemoizes: same contract for the measured
// baseline's cache entry point.
func TestRunHillClimbKeyedMemoizes(t *testing.T) {
	cfg := machine.DefaultConfig().WithCores(8)
	f := newSynthFactory(400, 2000, 50, 0)

	h0, _ := RunCacheStats()
	r1 := RunHillClimbKeyed(cfg, "synth/hc-memo", f, HillClimb{})
	r2 := RunHillClimbKeyed(cfg, "synth/hc-memo", f, HillClimb{})
	h1, _ := RunCacheStats()
	if h1 == h0 {
		t.Error("second identical call did not hit the cache")
	}
	if r1.TotalCycles != r2.TotalCycles {
		t.Errorf("memoized result differs: %d vs %d cycles", r1.TotalCycles, r2.TotalCycles)
	}

	_, m0 := RunCacheStats()
	RunHillClimbKeyed(cfg, "synth/hc-memo", f, HillClimb{ProbeIters: 16})
	_, m1 := RunCacheStats()
	if m1 == m0 {
		t.Error("different tuning hit the same cache entry")
	}

	_, mBefore := RunCacheStats()
	RunHillClimbKeyed(cfg, "", f, HillClimb{})
	_, mAfter := RunCacheStats()
	if mAfter != mBefore {
		t.Error("empty wkey touched the cache")
	}
}

// TestImprovesBoundary pins the strictness of the probe comparison:
// landing exactly on the MinGain boundary must NOT displace the
// incumbent.
func TestImprovesBoundary(t *testing.T) {
	if improves(95, 100, 0.05) {
		t.Error("exactly on the boundary counted as an improvement (must be strict)")
	}
	if !improves(94.999, 100, 0.05) {
		t.Error("clearly past the boundary not counted")
	}
	if improves(100, 100, 0) {
		t.Error("equality with zero MinGain counted as an improvement")
	}
	if !improves(99, 100, 0) {
		t.Error("any strict win with zero MinGain must count")
	}
}

// TestDisagreement pins the model-vs-measurement distance metric.
func TestDisagreement(t *testing.T) {
	cases := []struct {
		model, meas int
		want        float64
	}{
		{4, 4, 0},
		{8, 4, 0.5},
		{4, 8, 0.5},
		{0, 0, 0},
		{1, 32, 31.0 / 32.0},
	}
	for _, tc := range cases {
		if got := disagreement(tc.model, tc.meas); got != tc.want {
			t.Errorf("disagreement(%d, %d) = %g, want %g", tc.model, tc.meas, got, tc.want)
		}
	}
}
