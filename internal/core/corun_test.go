package core

import (
	"testing"

	"fdt/internal/counters"
	"fdt/internal/machine"
)

// corunSpecs builds two contrasting synthetic tenants: a CS-heavy
// kernel and a bandwidth-heavy one.
func corunSpecs() []TeamSpec {
	return []TeamSpec{
		{Workload: "cs-synth", Factory: newSynthFactory(40, 2000, 600, 0), Policy: Combined{}},
		{Workload: "bw-synth", Factory: newSynthFactory(40, 400, 0, 48), Policy: Combined{}},
	}
}

func TestCorunTwoTeams(t *testing.T) {
	cfg := machine.DefaultConfig().WithCores(8)
	m := machine.MustNew(cfg)
	res, err := RunCorunOn(m, machine.MapPacked, corunSpecs(), ExactMode())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Teams) != 2 {
		t.Fatalf("%d teams, want 2", len(res.Teams))
	}
	if res.TotalCycles == 0 {
		t.Fatal("zero makespan")
	}
	var busSum uint64
	var shareSum float64
	for _, tr := range res.Teams {
		if tr.TotalCycles == 0 || tr.TotalCycles > res.TotalCycles {
			t.Errorf("%s: cycles %d outside (0, makespan %d]", tr.Team, tr.TotalCycles, res.TotalCycles)
		}
		if len(tr.Kernels) != 1 {
			t.Errorf("%s: %d kernels, want 1", tr.Team, len(tr.Kernels))
		}
		busSum += tr.BusBusyCycles
		shareSum += tr.BusShare
	}
	// Per-team bus attribution partitions the global counter exactly
	// (the "team-bus-partition" invariant, re-checked here end to end).
	if global := m.Ctrs.Counter(counters.BusBusyCycles).Read(); busSum != global {
		t.Errorf("team bus cycles sum %d != global %d", busSum, global)
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Errorf("bus shares sum to %v, want 1", shareSum)
	}
	// The attribution must discriminate: nearly all traffic is the
	// bandwidth-heavy tenant's.
	if res.Teams[1].BusShare < 0.9 {
		t.Errorf("bw-synth bus share %.3f, want >= 0.9", res.Teams[1].BusShare)
	}
	// Each tenant's controller decided independently from its own
	// counters: the CS-heavy tenant throttles below the bandwidth-heavy
	// tenant's team size.
	csN := res.Teams[0].Kernels[0].Decision.Threads
	bwN := res.Teams[1].Kernels[0].Decision.Threads
	if csN >= bwN {
		t.Errorf("cs-synth chose %d threads, bw-synth %d; want cs < bw", csN, bwN)
	}
}

func TestCorunCacheHit(t *testing.T) {
	cfg := machine.DefaultConfig().WithCores(8)
	a, err := RunCorun(cfg, machine.MapScattered, corunSpecs(), ExactMode())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCorun(cfg, machine.MapScattered, corunSpecs(), ExactMode())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles || len(a.Teams) != len(b.Teams) {
		t.Fatalf("memoized corun differs: %+v vs %+v", a, b)
	}
}

func TestSoloOnPartitionControl(t *testing.T) {
	cfg := machine.DefaultConfig().WithCores(8)
	specs := corunSpecs()
	solo, err := RunSolo(cfg, machine.MapPacked, 2, 1, specs[1], ExactMode())
	if err != nil {
		t.Fatal(err)
	}
	if solo.TotalCycles == 0 {
		t.Fatal("zero solo cycles")
	}
	// Alone on the machine, the tenant owns all bus traffic.
	if solo.BusShare < 0.999 {
		t.Errorf("solo bus share %.3f, want ~1", solo.BusShare)
	}
	co, err := RunCorun(cfg, machine.MapPacked, specs, ExactMode())
	if err != nil {
		t.Fatal(err)
	}
	// A co-runner can only add contention on the shared bus: the
	// bandwidth-heavy tenant must not run faster co-scheduled.
	if co.Teams[1].TotalCycles < solo.TotalCycles {
		t.Errorf("bw-synth co-run %d cycles faster than solo %d", co.Teams[1].TotalCycles, solo.TotalCycles)
	}
}

func TestCorunMappingError(t *testing.T) {
	// SMT-aware mapping needs a plane per tenant; a 1-context machine
	// cannot host two teams.
	cfg := machine.DefaultConfig().WithCores(8)
	if cfg.SMTContexts > 1 {
		t.Skip("default config has SMT planes")
	}
	_, err := RunCorunOn(machine.MustNew(cfg), machine.MapSMT, corunSpecs(), ExactMode())
	if err == nil {
		t.Fatal("smt mapping on 1-context machine: want error")
	}
}
