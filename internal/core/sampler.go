package core

import (
	"fdt/internal/counters"
	"fdt/internal/thread"
)

// This file implements the Sample stage of the FDT pipeline (Fig 7's
// "training" box): peel iterations off the kernel's front, run them
// single-threaded with the counters instrumented, and stop as soon as
// every measurement the policy asked for is complete.

// IterSample is one peeled iteration's counter deltas: wall cycles,
// cycles inside critical sections, off-chip bus busy cycles, and
// memory-port stall cycles (the wall-anchored component the DVFS
// search must not scale).
type IterSample struct {
	Cycles   uint64
	CS       uint64
	BusBusy  uint64
	MemStall uint64
}

// SampleOutcome is what the Sample stage hands the Estimator: the raw
// aggregate over every peeled iteration (Train), the per-iteration
// series (Samples), and the first iteration left unexecuted (Next).
type SampleOutcome struct {
	Train   TrainResult
	Samples []IterSample
	Next    int
}

// Sampler runs peeled training iterations. It is a pure pipeline
// stage: all state lives in the outcome, so the controller can re-run
// it mid-kernel when the Monitor detects a phase change.
type Sampler struct {
	Params TrainingParams
}

// Sample peels training iterations from [lo, hi) for pol, at most the
// params' fraction of the span (but at least two when available: the
// first iteration runs against cold caches and serves as warmup).
// Training stops early once every measurement the policy wants is
// stable or excluded — SAT's stability window, BAT's early-out.
func (s Sampler) Sample(c *thread.Ctx, k Kernel, pol Policy, lo, hi int) SampleOutcome {
	m := c.Machine()
	cores := c.TeamSize()
	span := hi - lo

	maxTrain := int(float64(span) * s.Params.MaxTrainFraction)
	if maxTrain < 2 {
		maxTrain = 2
	}
	if maxTrain > span {
		maxTrain = span
	}

	// CS cycles come from the team's private counter file — a real
	// runtime's lock instrumentation only sees its own program, and
	// training must not absorb a co-runner's synchronization. The bus
	// observable is deliberately the machine-global counter: a
	// socket-wide PMU counter (BUS_DRDY_CLOCKS) cannot filter by
	// requestor, so a co-runner's traffic raises observed utilization —
	// which is correct, because shared bandwidth IS scarcer (Eq. 5's
	// BU_1 should reflect the bus the kernel will actually run on).
	csCtr := c.TeamCounter(thread.CtrCSCycles)
	busCtr := m.Ctrs.Counter(counters.BusBusyCycles)
	// Memory-port stalls are machine-global like the bus counter
	// (stall PMU events are per-core but training runs one thread, so
	// a single-tenant run's deltas are its own; a co-runner's stalls
	// bleed in, which only matters to the DVFS compute/memory split).
	ldCtr := m.Ctrs.Counter(counters.LoadStallCycles)
	stCtr := m.Ctrs.Counter(counters.StoreStallCycles)

	var out SampleOutcome
	var ratios []float64
	satDone := !pol.WantsSAT()
	batDone := !pol.WantsBAT()

	iter := 0
	for iter < maxTrain && !(satDone && batDone) {
		t0 := c.CPU.CycleCount()
		cs0 := csCtr.Sample()
		b0 := busCtr.Sample()
		ld0 := ldCtr.Sample()
		st0 := stCtr.Sample()
		k.RunChunk(c, 1, lo+iter, lo+iter+1)
		iter++
		dt := c.CPU.CycleCount() - t0
		dcs := csCtr.DeltaSince(cs0)
		db := busCtr.DeltaSince(b0)
		dms := ldCtr.DeltaSince(ld0) + stCtr.DeltaSince(st0)
		out.Train.TotalCycles += dt
		out.Train.CSCycles += dcs
		out.Train.BusBusyCycles += db
		out.Train.MemStallCycles += dms
		out.Samples = append(out.Samples, IterSample{Cycles: dt, CS: dcs, BusBusy: db, MemStall: dms})

		if !satDone {
			ratios = append(ratios, csRatio(dt, dcs))
			if stableWindow(ratios, s.Params.StabilityWindow, s.Params.StabilityTol) {
				satDone = true
				out.Train.SATStable = true
			}
		}
		if !batDone && out.Train.TotalCycles >= s.Params.BATEarlyOutCycles && len(out.Samples) >= 2 {
			// Judge bandwidth on warm iterations only (drop the cold
			// first sample): a kernel whose steady state cannot
			// saturate the bus even with every core running will
			// never be bandwidth-limited, and training may stop.
			var wt, wb uint64
			for _, sm := range out.Samples[1:] {
				wt += sm.Cycles
				wb += sm.BusBusy
			}
			if wt > 0 && float64(wb)/float64(wt)*float64(cores) < 1 {
				batDone = true
				out.Train.BWExcluded = true
			}
		}
	}
	out.Train.Iters = iter
	out.Next = lo + iter
	return out
}

// csRatio computes one iteration's T_CS / T_NoCS.
func csRatio(total, cs uint64) float64 {
	if cs >= total {
		return 1
	}
	noCS := total - cs
	if noCS == 0 {
		return 0
	}
	return float64(cs) / float64(noCS)
}

// stableWindow reports whether the last w ratios agree within tol:
// the relative spread (max-min over mean) is at most tol. An all-zero
// window (no critical section observed) counts as stable.
func stableWindow(ratios []float64, w int, tol float64) bool {
	if w < 2 || len(ratios) < w {
		return false
	}
	win := ratios[len(ratios)-w:]
	lo, hi, sum := win[0], win[0], 0.0
	for _, r := range win {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
		sum += r
	}
	if hi == 0 {
		return true // no critical section anywhere in the window
	}
	mean := sum / float64(w)
	return (hi-lo)/mean <= tol
}
