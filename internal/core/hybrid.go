package core

import (
	"fmt"

	"fdt/internal/counters"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// This file implements the hybrid model+measurement controller: the
// FDT pipeline's analytic Estimate stage (Eq. 3/5/7) seeds the
// decision, bounded hill-climb probes around that seed refine it with
// live measurement, and a residual tracker arbitrates between the two
// sources of truth. While the model's assumptions hold (stationary
// critical-section cost, linear bus scaling) the controller behaves
// like the adaptive FDT pipeline with a cheap local search bolted on;
// when observed counter deltas and probe outcomes diverge from the
// model's predictions beyond a threshold, it falls back to pure
// measured hill-climbing (Katarzyński & Cytowski's autotuning stance),
// and returns to model-driven control once the residual decays —
// with hysteresis between the two thresholds so the state machine
// cannot thrash.

// HybridParams tunes the hybrid controller's refinement probes and its
// model/measured fallback state machine.
type HybridParams struct {
	// Monitor supplies the execution-interval cadence, drift
	// tolerances and the retrain cap shared with the adaptive pipeline.
	Monitor MonitorParams
	// ProbeIters is the per-candidate sample length, in iterations, of
	// each probe comparison. A comparison interleaves the two team
	// sizes across four half-chunks (A-B-A-B), so it consumes
	// 2 x ProbeIters iterations in total.
	ProbeIters int
	// MinGain is the fractional per-iteration speedup a probed
	// neighbor must deliver to displace the current choice (the same
	// meaning as HillClimb.MinGain).
	MinGain float64
	// MaxProbes bounds the probe comparisons one refinement or climb
	// may execute — the "bounded" in bounded hill-climb.
	MaxProbes int
	// ResidualHigh and ResidualLow are the hysteresis thresholds on
	// the residual EWMA: the controller falls back to measured mode at
	// or above High and returns to model mode at or below Low. High
	// must exceed Low strictly.
	ResidualHigh, ResidualLow float64
	// ResidualDecay is the residual EWMA's per-observation weight.
	ResidualDecay float64
	// RecheckIntervals is the measured state's recovery cadence: every
	// this many monitor intervals the controller re-evaluates the
	// residual (and the windowed throughput) at a safe decision point.
	RecheckIntervals int
}

// DefaultHybridParams returns the hybrid controller's tuning. The
// monitor cadence is three quarters of the adaptive pipeline's: a
// shorter interval gives the residual more observations per phase to
// integrate and keeps the per-interval fork-and-rewarm cost paid at
// every chunk boundary amortized.
func DefaultHybridParams() HybridParams {
	mon := DefaultMonitorParams()
	mon.Interval = 48
	return HybridParams{
		Monitor:          mon,
		ProbeIters:       24,
		MinGain:          0.03,
		MaxProbes:        4,
		ResidualHigh:     0.30,
		ResidualLow:      0.10,
		ResidualDecay:    0.25,
		RecheckIntervals: 4,
	}
}

// WithDefaults fills zero fields from DefaultHybridParams.
func (p HybridParams) WithDefaults() HybridParams {
	d := DefaultHybridParams()
	if p.Monitor.Interval == 0 {
		p.Monitor = d.Monitor
	}
	if p.ProbeIters == 0 {
		p.ProbeIters = d.ProbeIters
	}
	if p.MinGain == 0 {
		p.MinGain = d.MinGain
	}
	if p.MaxProbes == 0 {
		p.MaxProbes = d.MaxProbes
	}
	if p.ResidualHigh == 0 {
		p.ResidualHigh = d.ResidualHigh
	}
	if p.ResidualLow == 0 {
		p.ResidualLow = d.ResidualLow
	}
	if p.ResidualDecay == 0 {
		p.ResidualDecay = d.ResidualDecay
	}
	if p.RecheckIntervals == 0 {
		p.RecheckIntervals = d.RecheckIntervals
	}
	return p
}

// Validate rejects nonsense tunings (after WithDefaults resolution).
func (p HybridParams) Validate() error {
	if p.ProbeIters < 1 {
		return fmt.Errorf("hybrid: ProbeIters %d, want >= 1", p.ProbeIters)
	}
	if p.MinGain < 0 || p.MinGain >= 1 {
		return fmt.Errorf("hybrid: MinGain %g, want in [0, 1)", p.MinGain)
	}
	if p.MaxProbes < 1 {
		return fmt.Errorf("hybrid: MaxProbes %d, want >= 1", p.MaxProbes)
	}
	if p.ResidualLow <= 0 || p.ResidualHigh <= p.ResidualLow {
		return fmt.Errorf("hybrid: residual thresholds high %g / low %g, want high > low > 0 (hysteresis)",
			p.ResidualHigh, p.ResidualLow)
	}
	if p.ResidualDecay <= 0 || p.ResidualDecay > 1 {
		return fmt.Errorf("hybrid: ResidualDecay %g, want in (0, 1]", p.ResidualDecay)
	}
	if p.RecheckIntervals < 1 {
		return fmt.Errorf("hybrid: RecheckIntervals %d, want >= 1", p.RecheckIntervals)
	}
	return nil
}

// Hybrid is the model+measurement controller. Like HillClimb it is not
// a model-driven Policy — its probes time real chunks, so it always
// executes exactly.
type Hybrid struct {
	// Policy is the analytic model seeding each decision (nil =
	// Combined, the full Eq. 7 FDT policy).
	Policy Policy
	// Params tunes the Sample stage; the zero value means the paper's
	// defaults.
	Params TrainingParams
	// HP tunes the probes and the fallback state machine; zero fields
	// mean DefaultHybridParams.
	HP HybridParams

	// FaultIllegalFallback forces a fallback at the first re-decision
	// point regardless of the residual — a deliberate controller bug
	// that must trip the ctl-hybrid-state invariant. Mutation tests
	// use it to prove the rule has teeth.
	FaultIllegalFallback bool
}

// Name identifies the controller in reports.
func (Hybrid) Name() string { return "hybrid" }

// Run executes the workload under hybrid control. It mirrors
// Controller.Run's contract: fresh machine, returns timing, power, bus
// occupancy and per-kernel decisions (TrainIters counts sampling and
// probe iterations; Fallbacks/Recoveries count state transitions).
func (h Hybrid) Run(m *machine.Machine, w Workload) RunResult {
	res := RunResult{Workload: w.Name(), Policy: h.Name()}
	thread.Run(m, func(c *thread.Ctx) {
		if sw, ok := w.(SetupWorkload); ok {
			sw.Setup(c)
		}
		for _, k := range w.Kernels() {
			res.Kernels = append(res.Kernels, h.runKernel(c, k))
		}
	})
	m.FinishCheck()
	res.TotalCycles = m.Eng.Now()
	res.AvgActiveCores = m.Power.AverageActiveCores(res.TotalCycles)
	res.BusBusyCycles = m.Ctrs.Counter(counters.BusBusyCycles).Read()
	return res
}

// runKernel drives one kernel through the hybrid state machine. Each
// phase starts at a safe decision point with the Sample stage (both
// states keep training: the model state needs its seed, the measured
// state needs fresh expectations to measure the residual against),
// chooses a team size — model seed plus bounded refinement probes, or
// a pure measured climb — and executes until the kernel ends or a
// drift/recheck returns control to the decision point, where the
// residual arbitrates state transitions.
func (h Hybrid) runKernel(c *thread.Ctx, k Kernel) KernelResult {
	m := c.Machine()
	cores := c.TeamSize()
	n := k.Iterations()
	start := c.CPU.CycleCount()
	ct := newCtlTrace(m)
	cc := newCtlCheck(m)

	pol := h.Policy
	if pol == nil {
		pol = Combined{}
	}
	params := h.Params
	if params == (TrainingParams{}) {
		// The hybrid leans on probes, not on estimate precision: the
		// seed only has to land near the optimum, because the bounded
		// walk corrects it against live measurement. Half the paper's
		// training budget buys back most of the sampling cost on
		// kernels whose training window is expensive (a serial,
		// bandwidth-saturated prefix trains at the worst possible
		// per-iteration rate).
		params = DefaultTrainingParams()
		params.MaxTrainFraction /= 2
	}
	hp := h.HP.WithDefaults()

	if n < params.MinIterations {
		d := Decision{Threads: pol.StaticThreads(cores)}
		ct.decision(k.Name(), start, d)
		Executor{}.Execute(c, k, d.Threads, 0, n)
		ct.span("execute", k.Name(), start, c.CPU.CycleCount(), uint64(d.Threads), 0, uint64(n))
		return KernelResult{Kernel: k.Name(), Decision: d, Cycles: c.CPU.CycleCount() - start}
	}

	sampler := Sampler{Params: params}
	estimator := Estimator{Params: params}
	res := &Residual{Decay: hp.ResidualDecay}
	kr := KernelResult{Kernel: k.Name()}
	measured := false
	// lastModel is the model's most recent decision — the reference the
	// measured state audits its climbs against. lastSS is the most
	// recent training steady state (measured phases do not retrain).
	lastModel := 0
	var lastSS SteadyState
	// driftStreak counts consecutive model-state phases ended by binary
	// drift. One drift is a phase boundary — the model deserves a
	// retrain; a streak with a high residual is a model that keeps
	// failing, and only that falls back.
	driftStreak := 0
	threads := 0
	iter := 0
	trigger := ""
	for iter < n {
		phaseStart := c.CPU.CycleCount()
		phaseIter := iter
		cc.atDecision(c, phaseStart)

		var d Decision
		probed, trainIters := 0, 0
		if !measured {
			out := sampler.Sample(c, k, pol, iter, n)
			var tr TrainResult
			d, tr = estimator.Estimate(pol, out, cores)
			lastSS = estimator.Steady(out)
			trainIters = out.Train.Iters
			ct.span("sample", k.Name(), phaseStart, c.CPU.CycleCount(), uint64(trainIters), uint64(iter), 0)
			ct.decision(k.Name(), c.CPU.CycleCount(), d)
			cc.decision(pol, tr, cores, d, c.CPU.CycleCount())
			iter = out.Next
			// When a retrain reproduces the previous seed, the previous
			// refinement already audited it: the walk resumes from its
			// conclusion instead of re-descending from the seed, so a
			// model that keeps repeating the same misprediction pays for
			// the full correction once, not once per retrain.
			wstart := d.Threads
			if d.Threads == lastModel && threads > 0 {
				wstart = threads
			}
			lastModel = d.Threads

			probeStart := c.CPU.CycleCount()
			threads, probed = h.refine(c, k, d, wstart, iter, n, cores, hp, res)
			ct.span("probe", k.Name(), probeStart, c.CPU.CycleCount(), uint64(threads), uint64(probed), 0)
			d.Threads = threads
		} else {
			// Pure measured mode: no training loop, no model — climb
			// from scratch, then audit how far the model's last word
			// sits from what measurement chose (agreement is how the
			// model earns its trust back).
			probeStart := c.CPU.CycleCount()
			threads, probed = h.climb(c, k, threads, iter, n, cores, hp)
			res.Observe(disagreement(lastModel, threads))
			ct.span("probe", k.Name(), probeStart, c.CPU.CycleCount(), uint64(threads), uint64(probed), 0)
			d = Decision{Threads: threads}
		}
		iter += probed
		trainCycles := c.CPU.CycleCount() - phaseStart

		var stop int
		var dr *Drift
		execStart := c.CPU.CycleCount()
		if kr.Retrains >= hp.Monitor.MaxRetrains {
			Executor{}.Execute(c, k, threads, iter, n)
			stop = n
		} else if !measured {
			stop, dr = h.executeModel(c, k, threads, iter, n, hp, lastSS, res)
		} else {
			stop, dr = h.executeMeasured(c, k, threads, iter, n, hp, lastSS, res)
		}
		ct.span("execute", k.Name(), execStart, c.CPU.CycleCount(), uint64(threads), uint64(iter), uint64(stop))
		if dr != nil {
			ct.retrain(c.CPU.CycleCount(), dr)
		}

		mode := "model"
		if measured {
			mode = "measured"
		}
		kr.TrainIters += trainIters + probed
		kr.TrainCycles += trainCycles
		kr.Phases = append(kr.Phases, PhaseDecision{
			StartIter:   phaseIter,
			Decision:    d,
			TrainIters:  trainIters + probed,
			TrainCycles: trainCycles,
			Cycles:      c.CPU.CycleCount() - phaseStart,
			Trigger:     trigger,
			Mode:        mode,
		})
		iter = stop
		if dr == nil {
			break
		}
		// Settle before re-deciding: the event that tripped the drift is
		// often a short transient (a burst onset drifts the bus signal
		// the moment it starts), and retraining on top of it poisons the
		// sample and every probe after it. One interval at the incumbent
		// size debounces the edge; a real phase change is still there
		// when the interval ends, one interval later.
		if settle := hp.Monitor.Interval; n-iter >= settle+params.MinIterations {
			sT := c.CPU.CycleCount()
			k.RunChunk(c, threads, iter, iter+settle)
			kr.Phases[len(kr.Phases)-1].Cycles += c.CPU.CycleCount() - sT
			iter += settle
		}
		if n-iter < params.MinIterations {
			// Tail too short to re-decide on: finish with the current
			// decision and account it to the last phase.
			tailStart := c.CPU.CycleCount()
			Executor{}.Execute(c, k, threads, iter, n)
			kr.Phases[len(kr.Phases)-1].Cycles += c.CPU.CycleCount() - tailStart
			iter = n
			break
		}

		// State transitions happen here — at a decision point, with the
		// residual's verdict in hand. A model phase falls back when the
		// residual path asked for it outright ("fallback"), or when a
		// binary drift extends a streak while the residual sits high.
		now := c.CPU.CycleCount()
		switch {
		case !measured && (dr.Signal == "fallback" ||
			(res.Value() >= hp.ResidualHigh && driftStreak >= 1) ||
			h.FaultIllegalFallback):
			cc.hybridState(c, "model", "measured", res.Value(), hp, now)
			measured = true
			kr.Fallbacks++
			trigger = "fallback"
			driftStreak = 0
		case measured && dr.Signal == "recover":
			cc.hybridState(c, "measured", "model", res.Value(), hp, now)
			measured = false
			kr.Recoveries++
			trigger = "recover"
			driftStreak = 0
		default:
			trigger = dr.Signal
			if !measured {
				driftStreak++
			}
		}
		kr.Retrains++
	}
	kr.Decision = kr.Phases[0].Decision
	kr.Cycles = c.CPU.CycleCount() - start
	return kr
}

// walk is the shared probing primitive behind refine and climb: a
// bounded hill walk over team sizes, starting from start, where every
// comparison is an interleaved A-B-A-B design — four half-chunks of
// ProbeIters/2 iterations, alternating between the incumbent and the
// candidate, each size scored on its two samples' average. The design
// balances two pressures that pull the chunk length in opposite
// directions. Chunks must be long enough to amortize the fixed cost of
// each probe (a fresh fork plus cold caches), which at short chunks
// swamps the per-iteration signal and systematically penalizes larger
// teams. And the two candidates' samples must interleave finely enough
// that a kernel whose behaviour varies across the probed stretch — a
// sub-phase flip, a burst edge — contributes the same mixture to both
// sides: each size's two samples sit two half-chunks apart, so
// periodic composition and linear drift cancel to first order instead
// of deciding the comparison by alignment luck.
//
// The walk halves first — every way the model's assumptions break
// (contention blow-up, thread-scaled critical sections, convoying)
// pushes the true optimum below the seed — then doubles if the start
// survived. Unit-neighbor polishing runs only when a geometric step
// moved: the geometric rungs land at most a factor of two from the
// optimum but never between rungs (halving from 21 visits 10, 5, 2 —
// never 4), so a moved walk must check its neighborhood, while a start
// that survived both 2x tests keeps its ±1 neighborhood on the
// starting authority — polishing a flat landscape buys nothing and
// costs two comparisons. MaxProbes counts comparisons; each consumes
// 2 x ProbeIters iterations. Returns the chosen size, the iterations
// consumed, and the compounded per-iteration speedup over the start.
// minSize bounds the halving phase from below: the model can prove a
// floor (a bandwidth-binding decision means fewer threads cannot
// saturate the bus), and probing below it buys an expensive
// confirmation of something already measured. Pass 1 for no floor.
func (h Hybrid) walk(c *thread.Ctx, k Kernel, start, minSize, lo, hi, cores int, hp HybridParams) (best, used int, gain float64) {
	half := hp.ProbeIters / 2
	if half < 1 {
		half = 1
	}
	budget := hp.MaxProbes
	compare := func(a, b int) (perA, perB float64, ok bool) {
		if budget < 1 || lo+used+4*half > hi {
			return 0, 0, false
		}
		budget--
		run := func(size int) float64 {
			t0 := c.CPU.CycleCount()
			k.RunChunk(c, size, lo+used, lo+used+half)
			used += half
			return float64(c.CPU.CycleCount() - t0)
		}
		a1 := run(a)
		b1 := run(b)
		a2 := run(a)
		b2 := run(b)
		return (a1 + a2) / float64(2*half), (b1 + b2) / float64(2*half), true
	}
	if minSize < 1 {
		minSize = 1
	}
	best = start
	gain = 1.0
	for best > 1 {
		next := best / 2
		if next < minSize {
			break
		}
		pa, pb, ok := compare(best, next)
		if !ok || !improves(pb, pa, hp.MinGain) {
			break
		}
		gain *= pa / pb
		best = next
	}
	if best == start {
		for best < cores {
			next := best * 2
			if next > cores {
				next = cores
			}
			pa, pb, ok := compare(best, next)
			if !ok || !improves(pb, pa, hp.MinGain) {
				break
			}
			gain *= pa / pb
			best = next
		}
	}
	if best == start {
		return best, used, gain
	}
	for _, dir := range []int{-1, 1} {
		moved := false
		for best+dir >= 1 && best+dir <= cores {
			pa, pb, ok := compare(best, best+dir)
			if !ok || !improves(pb, pa, hp.MinGain) {
				break
			}
			gain *= pa / pb
			best += dir
			moved = true
		}
		if moved {
			break
		}
	}
	return best, used, gain
}

// refine is the model state's bounded local search around the
// analytic seed. The walk starts from wstart — the seed itself, or the
// previous refinement's conclusion when the model repeated itself. The
// model's misprediction feeds the residual: the compounded
// per-iteration gain the walk found, or the normalized distance
// between the seed and the walk's conclusion when the walk started
// elsewhere (a repeated seed the probes again refuse to return to is
// a repeated misprediction, even though the re-walk itself found no
// new gain). A seed that survives its probes feeds zero and decays
// the residual. Returns the chosen team size and the iterations the
// probes consumed.
func (h Hybrid) refine(c *thread.Ctx, k Kernel, d Decision, wstart, lo, hi, cores int, hp HybridParams, res *Residual) (int, int) {
	seed := d.Threads
	// When the decision is bandwidth-binding (Eq. 5 chose it), the bus
	// measurement already proves smaller teams cannot saturate the bus:
	// halving below the seed would spend probes in the most expensive
	// place a bandwidth-limited kernel has (starved of its bandwidth),
	// to confirm the one part of the model grounded in a direct
	// measurement.
	minSize := 1
	if d.PBW > 0 && seed == d.PBW {
		minSize = d.PBW
	}
	best, used, gain := h.walk(c, k, wstart, minSize, lo, hi, cores, hp)
	if best != seed {
		// Misprediction evidence, capped and halved — the probes
		// already corrected this mistake, so it counts as attenuated
		// evidence against the model, not a full-strength deviation.
		// Only repeated misprediction accumulates to the threshold.
		miss := gain - 1
		if d := disagreement(seed, best); d > miss {
			miss = d
		}
		if miss > 1 {
			miss = 1
		}
		res.Observe(miss / 2)
	} else if used > 0 {
		res.Observe(0)
	}
	return best, used
}

// climb is the measured state's decision procedure: the same bounded
// hill walk, started from the current team size instead of a model
// seed — no model input, this is the pure-measurement fallback. An
// optimum far from the start is reached by re-climbs, each
// re-centered on the previous winner. Returns prev untouched when the
// remaining iterations cannot fit a single comparison.
func (h Hybrid) climb(c *thread.Ctx, k Kernel, prev, lo, hi, cores int, hp HybridParams) (int, int) {
	if prev < 1 {
		prev = cores
	}
	best, used, _ := h.walk(c, k, prev, 1, lo, hi, cores, hp)
	return best, used
}

// executeModel is the model state's monitored execution: interval
// chunks with the Monitor's binary drift test deciding retrains, like
// the adaptive pipeline — plus a residual watch. A kernel can violate
// the model persistently but smoothly (oscillation inside the drift
// tolerance band, say), so an execution whose every interval deviates
// moderately never trips the binary test and would lock the model
// state in forever; when the residual EWMA reaches the high threshold
// the execution returns to the decision point with a "fallback"
// drift instead.
func (h Hybrid) executeModel(c *thread.Ctx, k Kernel, threads, lo, hi int, hp HybridParams, ss SteadyState, res *Residual) (int, *Drift) {
	if !c.AtDecisionPoint() {
		panic("core: executeModel outside a decision point")
	}
	step := hp.Monitor.Interval
	if step < 1 {
		step = 1
	}
	mo := NewMonitor(hp.Monitor, ss)
	mo.Res = res
	mo.Arm(c)
	// The residual trigger requires evidence gathered in THIS phase: a
	// residual that starts above the threshold and only decays is a
	// stale spike from the previous phase's boundary interval, and
	// falling back on it would abandon a retrained model that is
	// currently predicting well.
	resStart := res.Value()
	for lo < hi {
		end := lo + step
		if end > hi {
			end = hi
		}
		k.RunChunk(c, threads, lo, end)
		iters := end - lo
		lo = end
		if dr := mo.Observe(c, iters, lo); dr != nil {
			return lo, dr
		}
		if res.Value() >= hp.ResidualHigh && res.Value() > resStart && lo < hi {
			return lo, &Drift{Iter: lo, Signal: "fallback", Observed: res.Value(), Expected: hp.ResidualHigh}
		}
	}
	return hi, nil
}

// executeMeasured runs [lo, hi) at the climbed team size in
// monitor-interval chunks. Binary drift is deliberately ignored — the
// measured state exists because the model's expectations proved
// untrustworthy, and reacting to every drifting interval is exactly
// the thrash the fallback escapes — but the residual keeps integrating
// observed-vs-expected deviations against the freshest training, and
// every RecheckIntervals intervals the state machine gets a chance to
// act at a safe point: a residual back at or under ResidualLow returns
// control to the model ("recover"), while a shift in the windowed mean
// throughput beyond the drift tolerance triggers a re-climb
// ("measure"). Oscillation faster than the window averages out of both
// triggers instead of thrashing them. The monitor is rebuilt at every
// recheck so each window's deviations measure local stationarity, not
// distance from a stale snapshot.
func (h Hybrid) executeMeasured(c *thread.Ctx, k Kernel, threads, lo, hi int, hp HybridParams, ss SteadyState, res *Residual) (int, *Drift) {
	if !c.AtDecisionPoint() {
		panic("core: executeMeasured outside a decision point")
	}
	step := hp.Monitor.Interval
	if step < 1 {
		step = 1
	}
	mo := NewMonitor(hp.Monitor, ss)
	mo.Res = res
	mo.Arm(c)
	basePer := 0.0
	winIters, intervals := 0, 0
	var winCycles uint64
	for lo < hi {
		end := lo + step
		if end > hi {
			end = hi
		}
		t0 := c.CPU.CycleCount()
		k.RunChunk(c, threads, lo, end)
		iters := end - lo
		lo = end
		mo.Observe(c, iters, lo)
		winIters += iters
		winCycles += c.CPU.CycleCount() - t0
		intervals++
		if intervals%hp.RecheckIntervals != 0 || lo >= hi {
			continue
		}
		if res.Value() <= hp.ResidualLow {
			return lo, &Drift{Iter: lo, Signal: "recover", Observed: res.Value(), Expected: hp.ResidualLow}
		}
		per := float64(winCycles) / float64(winIters)
		if basePer > 0 {
			diff := per - basePer
			if diff < 0 {
				diff = -diff
			}
			small := per
			if basePer < per {
				small = basePer
			}
			if diff > hp.Monitor.DriftTol*small {
				return lo, &Drift{Iter: lo, Signal: "measure", Observed: per, Expected: basePer}
			}
		}
		basePer = per
		winIters, winCycles = 0, 0
		mo = NewMonitor(hp.Monitor, ss)
		mo.Res = res
		mo.Arm(c)
	}
	return hi, nil
}

// improves reports whether a probed per-iteration time beats the best
// one by at least the minimum gain. The comparison is strict, so a
// probe landing exactly on the boundary does not displace the
// incumbent.
func improves(perIter, bestPerIter, minGain float64) bool {
	return perIter < bestPerIter*(1-minGain)
}

// disagreement scores how far the model's decision sits from the
// measured one: 0 when they agree, approaching 1 as they diverge.
func disagreement(model, meas int) float64 {
	if model == meas {
		return 0
	}
	hi, lo := model, meas
	if lo > hi {
		hi, lo = lo, hi
	}
	if hi <= 0 {
		return 0
	}
	return float64(hi-lo) / float64(hi)
}
