package core

import "sync"

// Process-wide simulated-energy accumulator. Every Controller.Run
// folds its run's energy in — the table-driven Energy.Total on
// P-state machines, the flat active-core-cycles equivalent otherwise
// (the two agree on a trivial ladder, where Active = 1 and Idle = 0)
// — so long-lived frontends (fdtreport's footer, the daemon's
// /v1/stats) can report total simulated energy alongside run counts.
var (
	simEnergyMu    sync.Mutex
	simEnergyTotal float64
)

// addSimEnergy folds one run's energy into the process-wide total.
func addSimEnergy(e float64) {
	simEnergyMu.Lock()
	simEnergyTotal += e
	simEnergyMu.Unlock()
}

// SimEnergyTotal reports the total simulated energy accumulated by
// every Controller.Run in this process, in nominal-active-core cycle
// units.
func SimEnergyTotal() float64 {
	simEnergyMu.Lock()
	defer simEnergyMu.Unlock()
	return simEnergyTotal
}
