package core

import (
	"fdt/internal/machine"
)

// Factory builds a fresh workload instance on a fresh machine. Every
// simulated execution needs its own machine and workload state, so
// sweeps and the oracle take factories rather than instances.
type Factory func(m *machine.Machine) Workload

// RunPolicy builds a fresh machine and workload and executes it under
// the given policy — the one-call entry point used by sweeps,
// examples and benchmarks.
func RunPolicy(cfg machine.Config, f Factory, pol Policy) RunResult {
	return RunPolicyMode(cfg, f, pol, ExactMode())
}

// RunPolicyMode is RunPolicy in an explicit execution mode (exact or
// sampled; see Mode).
func RunPolicyMode(cfg machine.Config, f Factory, pol Policy, md Mode) RunResult {
	m := machine.MustNew(cfg)
	ctl := NewController(pol)
	ctl.Mode = md
	return ctl.Run(m, f(m))
}

// Sweep runs the workload once per requested static thread count and
// returns the results in the same order — the baseline curves of
// Figs 2, 4, 8, 10, 12 and 13. The independent simulations fan out
// over the runner's worker pool; results are identical to a serial
// sweep because each point runs on its own fresh machine.
func Sweep(cfg machine.Config, f Factory, threadCounts []int) []RunResult {
	return SweepKeyed(cfg, "", f, threadCounts)
}

// SweepAll sweeps static thread counts 1..cores.
func SweepAll(cfg machine.Config, f Factory) []RunResult {
	counts := make([]int, cfg.Mem.Cores)
	for i := range counts {
		counts[i] = i + 1
	}
	return Sweep(cfg, f, counts)
}

// OracleResult is the best static configuration found by exhaustive
// offline search.
type OracleResult struct {
	// Threads is the fewest static threads within the tolerance of
	// the minimum execution time (Section 6.3 uses 1%).
	Threads int
	// Run is the execution with that static count.
	Run RunResult
	// Sweep holds every static run, indexed by thread count - 1.
	Sweep []RunResult
}

// Oracle implements the paper's best-static-policy comparison
// (Section 6.3): simulate the application for every possible thread
// count and select the fewest threads within tolerance (fractional,
// e.g. 0.01) of the minimum execution time. This requires offline
// knowledge FDT does not need — it is the upper bound FDT is compared
// against in Fig 15.
func Oracle(cfg machine.Config, f Factory, tolerance float64) OracleResult {
	sweep := SweepAll(cfg, f)
	best := sweep[0].TotalCycles
	for _, r := range sweep[1:] {
		if r.TotalCycles < best {
			best = r.TotalCycles
		}
	}
	limit := float64(best) * (1 + tolerance)
	for i, r := range sweep {
		if float64(r.TotalCycles) <= limit {
			return OracleResult{Threads: i + 1, Run: r, Sweep: sweep}
		}
	}
	// Unreachable: the minimum itself is always within tolerance.
	return OracleResult{Threads: len(sweep), Run: sweep[len(sweep)-1], Sweep: sweep}
}
