package core

import "fdt/internal/sampled"

// Mode selects how the controller executes a kernel's iterations:
// exact (cycle-simulate everything — the oracle, bit-identical to the
// pre-sampling simulator) or sampled (cycle-simulate detailed windows,
// detect steady state, and extrapolate across homogeneous regions;
// see internal/sampled and DESIGN.md Section 11).
//
// Training always runs exact — the peeled single-threaded sample is
// at most 1% of the kernel and its counters feed Eq. 3/5/7 directly —
// and every controller decision point lands on detailed execution, so
// policy decisions read real counters in both modes.
type Mode struct {
	// Sampled enables steady-state sampled execution.
	Sampled bool
	// Params tunes the sampler; zero fields take sampled.DefaultParams.
	Params sampled.Params
}

// ExactMode returns the exact (default) execution mode.
func ExactMode() Mode { return Mode{} }

// SampledMode returns sampled execution with default parameters.
func SampledMode() Mode {
	return Mode{Sampled: true, Params: sampled.DefaultParams()}
}

// key renders the mode's cache-key suffix. Exact mode contributes
// nothing, keeping exact-run cache keys (and therefore exact results)
// bit-identical to releases that predate sampling.
func (md Mode) key() string {
	if !md.Sampled {
		return ""
	}
	return "|sampled/" + md.Params.Key()
}
