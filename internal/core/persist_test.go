package core

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"fdt/internal/machine"
)

// damage truncates every store entry under dir, simulating a crashed
// or bit-rotted store.
func damage(t *testing.T, dir string) {
	t.Helper()
	n := 0
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".run" {
			return nil
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		n++
		return nil
	})
	if n == 0 {
		t.Fatal("no store entries found to damage")
	}
}

// withRunStore attaches a fresh store at dir for the test's duration
// and restores the pristine global state afterwards.
func withRunStore(t *testing.T, dir string) {
	t.Helper()
	ResetRunCache()
	if _, err := OpenRunStore(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		DetachRunStore()
		ResetRunCache()
	})
}

func persistTestRun(t *testing.T) RunResult {
	t.Helper()
	cfg := machine.DefaultConfig().WithCores(8)
	return RunPolicyKeyed(cfg, "synth/persist", newSynthFactory(40, 900, 60, 2), Static{N: 4})
}

// A run simulated in one "process" must be served from the store —
// zero computes — after a simulated restart (cache reset), and must
// re-marshal to byte-identical JSON.
func TestRunStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	withRunStore(t, dir)

	cold := persistTestRun(t)
	if got := RunCacheComputes(); got != 1 {
		t.Fatalf("cold computes = %d, want 1", got)
	}
	coldJSON, err := json.Marshal(cold)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := RunStoreStats(); st.Puts != 1 {
		t.Fatalf("store puts = %d, want 1", st.Puts)
	}

	// "Restart": drop the in-memory cache and re-open the store, as a
	// new daemon process would.
	DetachRunStore()
	ResetRunCache()
	if _, err := OpenRunStore(dir); err != nil {
		t.Fatal(err)
	}

	warm := persistTestRun(t)
	if got := RunCacheComputes(); got != 0 {
		t.Fatalf("warm computes = %d, want 0 (store should satisfy the miss)", got)
	}
	if got := RunCacheBackingHits(); got != 1 {
		t.Fatalf("backing hits = %d, want 1", got)
	}
	warmJSON, err := json.Marshal(warm)
	if err != nil {
		t.Fatal(err)
	}
	if string(warmJSON) != string(coldJSON) {
		t.Errorf("restored run not byte-identical:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
}

// A corrupted store entry must fall back to recompute and self-repair.
func TestRunStoreCorruptionRecomputes(t *testing.T) {
	dir := t.TempDir()
	withRunStore(t, dir)

	cold := persistTestRun(t)
	damage(t, dir)

	DetachRunStore()
	ResetRunCache()
	if _, err := OpenRunStore(dir); err != nil {
		t.Fatal(err)
	}
	warm := persistTestRun(t)
	if RunCacheComputes() != 1 {
		t.Fatalf("computes = %d, want 1 (corrupt entry must recompute)", RunCacheComputes())
	}
	if warm.TotalCycles != cold.TotalCycles {
		t.Errorf("recomputed run differs: %d vs %d cycles", warm.TotalCycles, cold.TotalCycles)
	}
	if st, _ := RunStoreStats(); st.Corrupt == 0 {
		t.Errorf("store stats = %+v, want corrupt > 0", st)
	}
}
