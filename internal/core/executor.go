package core

import "fdt/internal/thread"

// This file implements the Execute stage of the FDT pipeline: run the
// kernel's remaining iterations on the decided team. The train-once
// path executes the whole remainder as one chunk — exactly the seed
// controller's behaviour. The monitored path executes interval-sized
// chunks so the Monitor can read counter deltas (and the controller
// can change the team) at the chunk boundaries, where every worker
// has joined and the master is at a safe re-decision point.

// Executor runs execution chunks on behalf of the controller.
type Executor struct{}

// Execute runs iterations [lo, hi) at the decided team size in a
// single chunk.
func (Executor) Execute(c *thread.Ctx, k Kernel, threads, lo, hi int) {
	if !c.AtDecisionPoint() {
		panic("core: Execute outside a decision point")
	}
	if lo < hi {
		k.RunChunk(c, threads, lo, hi)
	}
}

// ExecuteMonitored runs iterations [lo, hi) at the decided team size
// in chunks of mo.Params.Interval, consulting the monitor after each.
// It returns the first iteration not executed and the drift that
// stopped it — (hi, nil) when the kernel's remainder completed
// without a phase change.
func (ex Executor) ExecuteMonitored(c *thread.Ctx, k Kernel, threads, lo, hi int, mo *Monitor) (int, *Drift) {
	if !c.AtDecisionPoint() {
		panic("core: ExecuteMonitored outside a decision point")
	}
	step := mo.Params.Interval
	if step < 1 {
		step = 1
	}
	mo.Arm(c)
	for lo < hi {
		end := lo + step
		if end > hi {
			end = hi
		}
		k.RunChunk(c, threads, lo, end)
		iters := end - lo
		lo = end
		if dr := mo.Observe(c, iters, lo); dr != nil {
			return lo, dr
		}
	}
	return hi, nil
}
