package core

import (
	"fmt"
	"os"

	"fdt/internal/sampled"
	"fdt/internal/thread"
)

var sampleDebug = os.Getenv("FDT_SAMPLE_DEBUG") != ""

// This file implements the Execute stage of the FDT pipeline: run the
// kernel's remaining iterations on the decided team. The train-once
// path executes the whole remainder as one chunk — exactly the seed
// controller's behaviour. The monitored path executes interval-sized
// chunks so the Monitor can read counter deltas (and the controller
// can change the team) at the chunk boundaries, where every worker
// has joined and the master is at a safe re-decision point.

// Executor runs execution chunks on behalf of the controller.
type Executor struct{}

// Execute runs iterations [lo, hi) at the decided team size in a
// single chunk.
func (Executor) Execute(c *thread.Ctx, k Kernel, threads, lo, hi int) {
	if !c.AtDecisionPoint() {
		panic("core: Execute outside a decision point")
	}
	if lo < hi {
		k.RunChunk(c, threads, lo, hi)
	}
}

// ExecuteMonitored runs iterations [lo, hi) at the decided team size
// in chunks of mo.Params.Interval, consulting the monitor after each.
// It returns the first iteration not executed and the drift that
// stopped it — (hi, nil) when the kernel's remainder completed
// without a phase change.
func (ex Executor) ExecuteMonitored(c *thread.Ctx, k Kernel, threads, lo, hi int, mo *Monitor) (int, *Drift) {
	if !c.AtDecisionPoint() {
		panic("core: ExecuteMonitored outside a decision point")
	}
	step := mo.Params.Interval
	if step < 1 {
		step = 1
	}
	mo.Arm(c)
	for lo < hi {
		end := lo + step
		if end > hi {
			end = hi
		}
		k.RunChunk(c, threads, lo, end)
		iters := end - lo
		lo = end
		if dr := mo.Observe(c, iters, lo); dr != nil {
			return lo, dr
		}
	}
	return hi, nil
}

// ExecuteSampled runs iterations [lo, hi) at the decided team size in
// sampled mode: detailed windows cycle-simulate normally while a
// steady-state detector watches their counter profiles; once K
// consecutive windows agree, the executor extrapolates the last
// window's profile across a growing number of skipped iterations
// (counters, power and clock advance analytically via
// thread.Ctx.FastForward) and returns to detailed mode for the next
// window. A window that falls out of steady state resets the skip
// length, so phase boundaries are always observed in detail.
//
// With a non-nil monitor the executor also drives the adaptive
// pipeline's drift detection: windows widen to the monitor interval
// (preserving the exact-mode observation cadence on detailed
// regions), the monitor observes every detailed window, and it is
// re-armed after each fast-forward so extrapolated counter deltas are
// never misread as drift. Returns like ExecuteMonitored: the first
// iteration not executed and the drift that stopped it, or (hi, nil).
func (ex Executor) ExecuteSampled(c *thread.Ctx, k Kernel, threads, lo, hi int, p sampled.Params, st *sampled.Stats, mo *Monitor) (int, *Drift) {
	if !c.AtDecisionPoint() {
		panic("core: ExecuteSampled outside a decision point")
	}
	if eo, ok := k.(ExactOnlyKernel); ok && eo.SampleExactOnly() {
		// The kernel's stores warm a later kernel's working set;
		// fast-forwarding it would poison every downstream measurement
		// (see ExactOnlyKernel). Fall back to exact execution.
		if mo != nil {
			end, dr := ex.ExecuteMonitored(c, k, threads, lo, hi, mo)
			st.DetailedIters += end - lo
			return end, dr
		}
		k.RunChunk(c, threads, lo, hi)
		st.DetailedIters += hi - lo
		return hi, nil
	}
	p = p.WithDefaults()
	m := c.Machine()
	det := sampled.NewDetector(p)
	w := p.WindowIters
	if mo != nil && mo.Params.Interval > w {
		w = mo.Params.Interval
	}
	// Periodic kernels (SampleUnitKernel) sample whole periods;
	// otherwise, iteration-parallel kernels split [lo, hi) across the
	// team (thread.Ctx.Range), so a window shorter than the team leaves
	// threads idle and the measured profile models a smaller machine.
	// Round the window up to a period or team multiple so every
	// detailed window measures the behaviour it extrapolates.
	unit := 1
	if su, ok := k.(SampleUnitKernel); ok && su.SampleUnit() > 1 {
		unit = su.SampleUnit()
	} else if threads > 1 {
		unit = threads
	}
	w = (w + unit - 1) / unit * unit
	// Measure the fixed fork/join cost of one chunk with an empty
	// RunChunk (the team forks and joins without doing work). The
	// detector subtracts it from every window's per-iteration model and
	// compensates each fast-forward for the extra chunk boundary, so
	// detailed windows can stay small without their boundary overhead
	// being extrapolated as bias.
	t0 := m.Eng.Now()
	k.RunChunk(c, threads, lo, lo)
	oh := m.Eng.Now() - t0
	det.SetOverhead(oh)
	minWindow := p.MinWindowCycles
	if 8*oh > minWindow {
		minWindow = 8 * oh
	}
	skip := p.SkipStartWindows
	unsteady := 0
	dropWin := false
	wins := 0
	start := lo
	if mo != nil {
		mo.Arm(c)
	}
	for lo < hi {
		// Fast-forward through the steady region. Monitored runs always
		// leave at least one final detailed window so the region's tail
		// — and the next decision point — reads real counters;
		// unmonitored runs may extrapolate through the tail entirely,
		// since nothing reads the boundary state before the next
		// kernel's (always detailed) training.
		room := hi - lo - w
		if mo == nil {
			room = hi - lo
		}
		if det.Steady() && room > unit {
			n := skip * w
			capped := false
			if ms := det.MaxSkipIters(); ms > 0 && n > ms {
				// The region is drifting: bound each skip to where the
				// linear model stays trustworthy, and hold the skip
				// length down so every projection gets re-verified.
				n = ms / unit * unit
				if n < unit {
					n = unit
				}
				capped = true
				skip = p.SkipStartWindows
			}
			if n > room {
				// Keep the tail skip period-aligned so any remaining
				// detailed windows measure whole periods.
				n = room / unit * unit
			}
			ff := det.Extrapolate(m, n)
			if sampleDebug {
				fmt.Fprintf(os.Stderr, "  [skip] %s lo=%d n=%d ff=%d capped=%v\n", k.Name(), lo, n, ff, capped)
			}
			c.FastForward(ff)
			lo += n
			st.SkippedIters += n
			st.SkippedCycles += ff
			st.FastForwards++
			if mo != nil {
				mo.Arm(c)
			}
			if !capped && skip < p.SkipMaxWindows {
				skip *= 4
				if skip > p.SkipMaxWindows {
					skip = p.SkipMaxWindows
				}
			}
		}
		end := lo + w
		if end > hi {
			end = hi
		}
		pr := sampled.Begin(m)
		k.RunChunk(c, threads, lo, end)
		iters := end - lo
		win := pr.End(m, iters)
		win.Start = lo
		lo = end
		if sampleDebug {
			fmt.Fprintf(os.Stderr, "  [win]  %s start=%d iters=%d cyc=%d cpi=%.0f\n",
				k.Name(), win.Start, win.Iters, win.Cycles, float64(win.Cycles)/float64(win.Iters))
		}
		st.DetailedIters += iters
		wins++
		resized := false
		if dropWin {
			// The first window after a resize measures the geometry
			// transition (the team re-tiles its data); it is neither a
			// fair baseline nor comparable to what follows, so it is
			// simulated but not fed to the detector.
			dropWin = false
		} else {
			wasSteady := det.Steady()
			det.Observe(win)
			if wasSteady && !det.Steady() {
				st.Reentries++
				skip = p.SkipStartWindows
			}
			// Persistent comparison failures mean the window is too
			// short for the kernel's noise floor: double it so
			// per-window variation averages down, instead of simulating
			// everything in detail. A window that merely hasn't
			// finished building its stable run does not count, and the
			// threshold sits above the trend fit's evidence floor so a
			// noisy-but-linear region gets its fit-steady chance before
			// the resize wipes the history.
			if det.Steady() || det.StableRun() > 0 {
				unsteady = 0
			} else if unsteady++; unsteady >= 6 && mo == nil {
				unsteady = 0
				w = (2*w + unit - 1) / unit * unit
				resized = true
			}
		}
		// Grow windows that are too cheap: overhead subtraction handles
		// the first-order chunk-boundary bias, but a window within a
		// small multiple of the fork/join cost measures mostly noise.
		// Monitored runs never resize: the Monitor's drift expectations
		// were trained at the interval cadence, and a window of a
		// different length amortizes its fork/join overhead differently
		// — the monitor would read the geometry change as counter drift
		// and retrain on it. Exact monitored execution always observes
		// interval-sized chunks; sampled execution must preserve that
		// cadence on its detailed windows.
		if mo == nil && iters == w && win.Cycles > 0 && win.Cycles < minWindow {
			f := int((minWindow + win.Cycles - 1) / win.Cycles)
			if f > 8 {
				f = 8
			}
			w = (w*f + unit - 1) / unit * unit
			resized = true
		}
		// Chunk geometry is part of what a window measures: the team
		// splits each chunk by ranges, so windows of different lengths
		// map iterations to threads (and data to caches) differently,
		// and their profiles are not comparable. A resize restarts
		// detection so the trend model only ever fits like-sized
		// windows — mixing sizes poisons the slope and can hold the
		// detector off for the rest of the region.
		if resized {
			det.Reset()
			dropWin = true
		}
		if mo != nil {
			if dr := mo.Observe(c, iters, lo); dr != nil {
				return lo, dr
			}
		}
		// Bail out of sampling when it isn't going to pay: either the
		// projected remainder is too cheap to be worth modeling (the
		// fork/join overhead of further windows would rival the
		// extrapolation itself), or half the region has run in detail
		// without the detector ever declaring steady state — a region
		// that noisy gains nothing from more windows, while every extra
		// chunk boundary perturbs the simulated state. The remainder
		// runs as one exact chunk. Only regions that never engaged
		// bail; once a skip has happened, extrapolation is strictly
		// cheaper than running the tail. Monitored runs keep their
		// interval cadence either way — the Monitor needs its
		// per-interval deltas.
		// The half-region give-up waits out the trend fit's evidence
		// floor: a wide-windowed kernel (unit = team at n=32) crosses
		// half its region in four windows, and bailing there would deny
		// noisy-but-linear regions the fit that lets them engage at all.
		if mo == nil && st.FastForwards == 0 && !det.Steady() && det.StableRun() == 0 && lo < hi && win.Iters > 0 {
			cpi := win.Cycles / uint64(win.Iters)
			if uint64(hi-lo)*cpi < p.BailCycles || (wins > 4 && 2*(lo-start) >= hi-start) {
				if sampleDebug {
					fmt.Fprintf(os.Stderr, "  [bail] %s lo=%d hi=%d\n", k.Name(), lo, hi)
				}
				k.RunChunk(c, threads, lo, hi)
				st.DetailedIters += hi - lo
				return hi, nil
			}
		}
	}
	return hi, nil
}
