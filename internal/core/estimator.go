package core

// This file implements the Estimate stage of the FDT pipeline: it
// condenses the Sample stage's per-iteration series to the kernel's
// steady state and asks the policy's analytic model for a decision.

// Estimator turns sampling measurements into a thread-count decision.
type Estimator struct {
	Params TrainingParams
}

// Estimate condenses the sampled iterations to their steady state and
// evaluates the policy's model. The returned TrainResult is the
// steady-state view that actually fed the model — the reference the
// Monitor stage later compares execution intervals against.
//
// The first training iteration runs against cold caches, so its
// T_CS/T_NoCS ratio and bus utilization misrepresent the kernel's
// stable behaviour; on the paper's full-size inputs thousands of
// training iterations dilute this, but on scaled inputs it must be
// excluded explicitly (DESIGN.md, "Known deviations"). When the
// stability window is available beyond that, keep only the trailing
// window — the measurements the stability criterion actually accepted.
func (e Estimator) Estimate(pol Policy, out SampleOutcome, cores int) (Decision, TrainResult) {
	tr := out.Train
	if est := e.steadySamples(out.Samples); est != nil {
		var wt, wcs, wb, wms uint64
		for _, s := range est {
			wt += s.Cycles
			wcs += s.CS
			wb += s.BusBusy
			wms += s.MemStall
		}
		if wt > 0 {
			tr.TotalCycles, tr.CSCycles, tr.BusBusyCycles = wt, wcs, wb
			tr.MemStallCycles = wms
		}
	}
	return pol.Estimate(tr, cores), tr
}

// Steady reports the per-iteration steady-state averages over the
// same sample window Estimate condenses to — the Monitor stage's
// reference expectations. When only the cold first iteration exists,
// it falls back to the raw aggregate.
func (e Estimator) Steady(out SampleOutcome) SteadyState {
	est := e.steadySamples(out.Samples)
	if est == nil {
		est = out.Samples
	}
	var ss SteadyState
	if len(est) == 0 {
		return ss
	}
	var wt, wcs, wb uint64
	for _, s := range est {
		wt += s.Cycles
		wcs += s.CS
		wb += s.BusBusy
	}
	n := float64(len(est))
	ss.Iters = len(est)
	ss.CyclesPerIter = float64(wt) / n
	ss.CSPerIter = float64(wcs) / n
	ss.BusPerIter = float64(wb) / n
	return ss
}

// steadySamples selects the steady window: drop the cold first
// sample, then keep only the trailing stability window when one is
// available. Returns nil when no warm samples exist.
func (e Estimator) steadySamples(samples []IterSample) []IterSample {
	if len(samples) <= 1 {
		return nil
	}
	est := samples[1:]
	if w := e.Params.StabilityWindow; w > 0 && len(est) > w {
		est = est[len(est)-w:]
	}
	return est
}
