package core

import "fmt"

// TrainResult aggregates what the FDT training loop measured while
// executing a kernel's peeled iterations single-threaded.
type TrainResult struct {
	// Iters is the number of training iterations executed.
	Iters int
	// TotalCycles is the wall-clock cycles the training iterations took.
	TotalCycles uint64
	// CSCycles is the cycles spent inside critical sections.
	CSCycles uint64
	// BusBusyCycles is the cycles the off-chip data bus was busy.
	BusBusyCycles uint64
	// MemStallCycles is the cycles the training thread spent stalled
	// on memory accesses (load + store port stalls). The DVFS search
	// uses it to split TotalCycles into frequency-scaled compute and
	// wall-anchored memory time; the single-frequency policies ignore
	// it.
	MemStallCycles uint64
	// SATStable reports whether the T_CS/T_NoCS ratio met the
	// stability criterion (within 5% for three consecutive
	// iterations) before the iteration cap.
	SATStable bool
	// BWExcluded reports whether BAT's early-out fired: after 10000
	// cycles of training, projected utilization at full occupancy
	// (BU_1 x cores) stayed below 100%, so the kernel cannot become
	// bandwidth-limited on this machine.
	BWExcluded bool
}

// CSFraction reports T_CS / T_total measured in training.
func (tr TrainResult) CSFraction() float64 {
	if tr.TotalCycles == 0 {
		return 0
	}
	return float64(tr.CSCycles) / float64(tr.TotalCycles)
}

// BusUtil1 reports the single-thread bus utilization BU_1 measured in
// training (fractional, 0..1).
func (tr TrainResult) BusUtil1() float64 {
	if tr.TotalCycles == 0 {
		return 0
	}
	u := float64(tr.BusBusyCycles) / float64(tr.TotalCycles)
	if u > 1 {
		u = 1
	}
	return u
}

// Decision is a policy's verdict for one kernel.
type Decision struct {
	// Threads is the team size for the kernel's remaining iterations.
	Threads int
	// PCS is SAT's estimate (0 = not synchronization-limited / not
	// evaluated).
	PCS int
	// PBW is BAT's estimate (0 = not bandwidth-limited / not
	// evaluated).
	PBW int
	// CSFraction and BusUtil1 echo the training measurements behind
	// the estimates, for reports.
	CSFraction float64
	BusUtil1   float64
	// FreqIndex and Freq record the P-state the DVFS-aware Estimate
	// stage chose (see EstimateDVFS); zero/empty on single-frequency
	// machines — and omitted from JSON, so exact-mode output stays
	// bit-identical to pre-DVFS releases.
	FreqIndex int    `json:",omitempty"`
	Freq      string `json:",omitempty"`
	// PredPower is the chip power the chosen (threads, freq) point
	// was predicted to draw (nominal-active-core units; the budget
	// the clamp enforced). Zero when no DVFS search ran.
	PredPower float64 `json:",omitempty"`
}

// Policy chooses thread counts for kernels. Policies that train
// (NeedsTraining true) receive the training measurements; static
// policies are asked directly.
type Policy interface {
	// Name identifies the policy in reports ("SAT", "BAT", "SAT+BAT",
	// "static-32").
	Name() string
	// NeedsTraining reports whether the controller should run the FDT
	// training loop for this policy.
	NeedsTraining() bool
	// WantsSAT and WantsBAT select which measurements the training
	// loop must finish collecting before it may stop early.
	WantsSAT() bool
	WantsBAT() bool
	// Estimate converts training measurements into a decision.
	// cores is the machine's available core count.
	Estimate(tr TrainResult, cores int) Decision
	// StaticThreads is consulted when NeedsTraining is false.
	StaticThreads(cores int) int
}

// --- SAT -------------------------------------------------------------

// SAT is Synchronization-Aware Threading (Section 4): it predicts
// P_CS = sqrt(T_NoCS/T_CS) from training and uses min(P_CS, cores).
type SAT struct{}

func (SAT) Name() string            { return "SAT" }
func (SAT) NeedsTraining() bool     { return true }
func (SAT) WantsSAT() bool          { return true }
func (SAT) WantsBAT() bool          { return false }
func (SAT) StaticThreads(c int) int { return c }

// Estimate implements Section 4.2.2: round P_CS to the nearest
// integer, clamp to the available cores.
func (SAT) Estimate(tr TrainResult, cores int) Decision {
	d := Decision{CSFraction: tr.CSFraction(), BusUtil1: tr.BusUtil1()}
	if tr.CSCycles == 0 {
		d.Threads = cores
		return d
	}
	tNoCS := float64(tr.TotalCycles - tr.CSCycles)
	pcs := OptimalThreadsCS(tNoCS, float64(tr.CSCycles))
	d.PCS = RoundSAT(pcs, cores)
	d.Threads = d.PCS
	return d
}

// --- BAT -------------------------------------------------------------

// BAT is Bandwidth-Aware Threading (Section 5): it predicts
// P_BW = ceil(100/BU_1) from training and uses min(P_BW, cores).
type BAT struct{}

func (BAT) Name() string            { return "BAT" }
func (BAT) NeedsTraining() bool     { return true }
func (BAT) WantsSAT() bool          { return false }
func (BAT) WantsBAT() bool          { return true }
func (BAT) StaticThreads(c int) int { return c }

// Estimate implements Section 5.2's estimation stage.
func (BAT) Estimate(tr TrainResult, cores int) Decision {
	d := Decision{CSFraction: tr.CSFraction(), BusUtil1: tr.BusUtil1()}
	bu1 := d.BusUtil1
	if tr.BWExcluded || bu1 <= 0 || bu1*float64(cores) < 1 {
		// The bus cannot saturate even with every core running.
		d.Threads = cores
		return d
	}
	d.PBW = RoundBAT(SaturationThreads(bu1), cores)
	d.Threads = d.PBW
	return d
}

// --- SAT+BAT ---------------------------------------------------------

// Combined is (SAT+BAT) of Section 6: both trainings run, and the
// thread count is MIN(P_CS, P_BW, cores) — Equation 7, optimal per
// the Appendix proof.
type Combined struct{}

func (Combined) Name() string            { return "SAT+BAT" }
func (Combined) NeedsTraining() bool     { return true }
func (Combined) WantsSAT() bool          { return true }
func (Combined) WantsBAT() bool          { return true }
func (Combined) StaticThreads(c int) int { return c }

// Estimate combines both models per Equation 7.
func (Combined) Estimate(tr TrainResult, cores int) Decision {
	sat := SAT{}.Estimate(tr, cores)
	bat := BAT{}.Estimate(tr, cores)
	d := Decision{
		PCS:        sat.PCS,
		PBW:        bat.PBW,
		CSFraction: tr.CSFraction(),
		BusUtil1:   tr.BusUtil1(),
	}
	d.Threads = CombinedThreads(d.PCS, d.PBW, cores)
	return d
}

// --- Static ----------------------------------------------------------

// Static always uses a fixed thread count (clamped to the core
// count). Static{N: 0} means "as many threads as cores" — the
// conventional threading the paper's baselines use (Section 2).
type Static struct {
	N int
}

// Name reports "static-N" or "static-all".
func (s Static) Name() string {
	if s.N <= 0 {
		return "static-all"
	}
	return fmt.Sprintf("static-%d", s.N)
}

func (s Static) NeedsTraining() bool { return false }
func (s Static) WantsSAT() bool      { return false }
func (s Static) WantsBAT() bool      { return false }

// StaticThreads reports the fixed count, clamped to cores.
func (s Static) StaticThreads(cores int) int {
	if s.N <= 0 || s.N > cores {
		return cores
	}
	return s.N
}

// Estimate returns the static decision (never called by the
// controller, provided for interface completeness).
func (s Static) Estimate(_ TrainResult, cores int) Decision {
	return Decision{Threads: s.StaticThreads(cores)}
}
