package core

import (
	"fmt"

	"fdt/internal/counters"
	"fdt/internal/machine"
	"fdt/internal/runner"
	"fdt/internal/thread"
)

// This file implements co-scheduled execution: N workloads running
// concurrently on one machine, each as its own thread team with its
// own controller pipeline, contending for the shared L3, bus and
// DRAM. This is the multiprogrammed scenario the paper leaves open —
// SAT/BAT decisions made while a co-runner occupies part of the
// socket — and the substrate of the interference experiment family.

// TeamSpec describes one tenant of a co-scheduled run: a registered
// workload (Workload doubles as the cache key, so it must name the
// workload and any non-default parameters) and the policy its private
// controller runs. A non-nil Monitor makes the tenant's controller
// phase-adaptive.
type TeamSpec struct {
	Workload string
	Factory  Factory
	Policy   Policy
	Monitor  *MonitorParams
}

// TeamResult is one tenant's outcome inside a co-scheduled run. The
// embedded RunResult is tenant-scoped: TotalCycles is this program's
// own completion time, AvgActiveCores its occupancy-attributed share
// of active cores, BusBusyCycles its attributed bus traffic.
type TeamResult struct {
	// Team is the tenant's label ("t0:pagemine").
	Team string
	RunResult
	// BusShare is the tenant's fraction of all bus busy cycles —
	// the attribution the "team-bus-partition" invariant audits.
	BusShare float64
}

// CorunResult is a complete co-scheduled execution: machine-global
// totals plus each tenant's own result.
type CorunResult struct {
	// Mapping names the thread-to-core mapping the run used.
	Mapping string
	// TotalCycles is the makespan (the slowest tenant's completion).
	TotalCycles uint64
	// AvgActiveCores is the machine-global power metric over the
	// makespan.
	AvgActiveCores float64
	// BusBusyCycles is total off-chip bus occupancy.
	BusBusyCycles uint64
	Teams         []TeamResult
}

// teamName labels tenant i of a co-run ("t0:pagemine").
func teamName(i int, workload string) string {
	return fmt.Sprintf("t%d:%s", i, workload)
}

// buildController assembles one tenant's controller from its spec.
func (s TeamSpec) buildController(md Mode) *Controller {
	ctl := NewController(s.Policy)
	if s.Monitor != nil {
		mp := *s.Monitor
		ctl.Monitor = &mp
	}
	ctl.Mode = md
	return ctl
}

// RunCorunOn co-schedules the specs on m — tenant i on partition i of
// len(specs) under the mapping — and runs all programs to completion.
// Each tenant gets an independent controller sampling its own team
// counters; the memory system sees their combined traffic. The
// machine must be fresh.
func RunCorunOn(m *machine.Machine, mp machine.Mapping, specs []TeamSpec, md Mode) (CorunResult, error) {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = teamName(i, s.Workload)
	}
	teams, err := m.SplitTeams(mp, names)
	if err != nil {
		return CorunResult{}, err
	}
	start := m.Eng.Now()

	results := make([]RunResult, len(specs))
	mains := make([]thread.TeamMain, len(specs))
	for i, s := range specs {
		ctl := s.buildController(md)
		results[i] = RunResult{Workload: s.Workload, Policy: ctl.Policy.Name()}
		w := s.Factory(m)
		mains[i] = thread.TeamMain{Team: teams[i], Main: ctl.runBody(w, &results[i])}
	}
	done := thread.RunTeams(m, mains)
	m.FinishCheck()

	out := CorunResult{
		Mapping:       mp.String(),
		TotalCycles:   m.Eng.Now() - start,
		BusBusyCycles: m.Ctrs.Counter(counters.BusBusyCycles).Read(),
	}
	out.AvgActiveCores = m.Power.AverageActiveCores(out.TotalCycles)
	for i, t := range teams {
		r := results[i]
		r.TotalCycles = done[i] - start
		if r.TotalCycles > 0 {
			r.AvgActiveCores = float64(t.ContextActiveCycles()) / float64(r.TotalCycles)
		}
		r.BusBusyCycles = t.Ctrs.Counter(counters.BusBusyCycles).Read()
		tr := TeamResult{Team: t.Name, RunResult: r}
		if out.BusBusyCycles > 0 {
			tr.BusShare = float64(r.BusBusyCycles) / float64(out.BusBusyCycles)
		}
		out.Teams = append(out.Teams, tr)
	}
	return out, nil
}

// corunCache memoizes co-scheduled runs (deterministic like all
// simulated executions; see runCache).
var corunCache runner.Cache[CorunResult]

// specKey renders one tenant's contribution to a co-run content
// address.
func (s TeamSpec) specKey(cfg machine.Config) string {
	k := s.Workload + "/" + policyKey(s.Policy, machineContexts(cfg))
	if s.Monitor != nil {
		k += fmt.Sprintf("/monitor/%+v", *s.Monitor)
	}
	return k
}

// RunCorun co-schedules the specs on a fresh machine of the given
// configuration, memoizing by (config, mapping, specs, mode).
func RunCorun(cfg machine.Config, mp machine.Mapping, specs []TeamSpec, md Mode) (CorunResult, error) {
	key := ConfigKey(cfg) + "|corun/" + mp.String()
	for _, s := range specs {
		key += "|" + s.specKey(cfg)
	}
	var err error
	res := corunCache.Do(key+md.key(), func() CorunResult {
		var r CorunResult
		r, err = RunCorunOn(machine.MustNew(cfg), mp, specs, md)
		return r
	})
	return res, err
}

// RunSoloOn is the co-run's control experiment: the machine is
// partitioned for nTeams tenants under the mapping exactly as a
// co-run would be, but only the tenant in the given slot runs — same
// core budget, same placement, empty machine otherwise. The
// difference between a tenant's solo and co-run results is pure
// interference.
func RunSoloOn(m *machine.Machine, mp machine.Mapping, nTeams, slot int, spec TeamSpec, md Mode) (TeamResult, error) {
	names := make([]string, nTeams)
	for i := range names {
		names[i] = teamName(i, "idle")
	}
	names[slot] = teamName(slot, spec.Workload)
	teams, err := m.SplitTeams(mp, names)
	if err != nil {
		return TeamResult{}, err
	}
	start := m.Eng.Now()

	ctl := spec.buildController(md)
	res := RunResult{Workload: spec.Workload, Policy: ctl.Policy.Name()}
	w := spec.Factory(m)
	done := thread.RunTeams(m, []thread.TeamMain{
		{Team: teams[slot], Main: ctl.runBody(w, &res)},
	})
	m.FinishCheck()

	t := teams[slot]
	res.TotalCycles = done[0] - start
	if res.TotalCycles > 0 {
		res.AvgActiveCores = float64(t.ContextActiveCycles()) / float64(res.TotalCycles)
	}
	res.BusBusyCycles = t.Ctrs.Counter(counters.BusBusyCycles).Read()
	tr := TeamResult{Team: t.Name, RunResult: res}
	if global := m.Ctrs.Counter(counters.BusBusyCycles).Read(); global > 0 {
		tr.BusShare = float64(res.BusBusyCycles) / float64(global)
	}
	return tr, nil
}

// soloCache memoizes solo-on-partition control runs.
var soloCache runner.Cache[TeamResult]

// RunSolo is RunSoloOn on a fresh machine, memoized by (config,
// mapping, partition geometry, spec, mode).
func RunSolo(cfg machine.Config, mp machine.Mapping, nTeams, slot int, spec TeamSpec, md Mode) (TeamResult, error) {
	key := fmt.Sprintf("%s|solo/%s/%d-of-%d|%s%s",
		ConfigKey(cfg), mp.String(), slot, nTeams, spec.specKey(cfg), md.key())
	var err error
	res := soloCache.Do(key, func() TeamResult {
		var r TeamResult
		r, err = RunSoloOn(machine.MustNew(cfg), mp, nTeams, slot, spec, md)
		return r
	})
	return res, err
}
