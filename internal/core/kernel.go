package core

import "fdt/internal/thread"

// Kernel is a parallelized loop kernel — the unit FDT trains on and
// controls (the paper performs its techniques "only on loop kernels
// that have been parallelized by the programmer", Section 4.2).
//
// Iterations defines the kernel's schedulable units: for a kernel
// whose parallelism lives inside each iteration (PageMine's
// page-at-a-time structure) an iteration is one outer-loop pass; for a
// data-parallel loop (ED) an iteration is a block of the loop's index
// space. FDT peels a prefix of iterations for training and executes
// the rest with the chosen team size.
type Kernel interface {
	// Name identifies the kernel in reports ("pagemine", "mtwister/boxmuller").
	Name() string
	// Iterations reports the total number of schedulable units.
	Iterations() int
	// RunChunk executes iterations [lo, hi) using a team of n threads
	// forked from the master context. Implementations must be safe to
	// call repeatedly with adjacent ranges and varying n.
	RunChunk(master *thread.Ctx, n, lo, hi int)
}

// SampleUnitKernel is optionally implemented by kernels whose
// per-iteration cost is periodic rather than homogeneous — e.g. a
// stencil whose FDT iterations are the slabs of a repeating
// fine/coarse phase sequence. SampleUnit returns the period in
// iterations; sampled execution sizes and aligns its detailed windows
// and skips to whole periods, so every window measures the same phase
// mix it extrapolates. Exact execution ignores it.
type SampleUnitKernel interface {
	SampleUnit() int
}

// ExactOnlyKernel is optionally implemented by kernels that must not
// be fast-forwarded even in sampled mode: producers whose stores warm
// the cache working set a later kernel consumes. Skipping their
// iterations would hand the consumer a cold, never-simulated working
// set — a microarchitectural state the exact run can never reach — and
// the consumer's measured windows would inherit that bias even when
// fully detailed (the classic functional-warming gap of sampled
// simulation). The sampled executor runs such kernels exactly.
type ExactOnlyKernel interface {
	SampleExactOnly() bool
}

// SetupWorkload is implemented by workloads with an initialization
// phase that runs on the master thread before the first kernel — the
// serial array-initialization code every real benchmark has. Besides
// fidelity, setup warms the caches with the program's working set, so
// kernels whose data lives on chip start training from their steady
// state.
type SetupWorkload interface {
	// Setup initializes the workload's simulated memory (serial, on
	// the master context).
	Setup(c *thread.Ctx)
}

// Workload is a complete program: an ordered sequence of kernels.
// Kernels run back to back; FDT retrains for each (the property that
// lets it pick 32 threads for MTwister's generator kernel and 12 for
// its Box-Muller kernel, Section 5.3).
type Workload interface {
	// Name identifies the workload ("pagemine", "ed", ...).
	Name() string
	// Kernels returns the kernels in execution order. The slice is
	// valid for one run on the machine the workload was built for.
	Kernels() []Kernel
}
