package stats

// Table-driven edge cases: empty and single-sample inputs, and
// tie-breaking in the min/argmin family — the oracle's "fewest
// threads" rule depends on first-on-ties being stable.

import "testing"

func TestEmptySeriesIsValid(t *testing.T) {
	s, err := NewSeries("empty", nil, nil)
	if err != nil {
		t.Fatalf("empty series rejected: %v", err)
	}
	if len(s.X) != 0 || len(s.Y) != 0 {
		t.Fatal("empty series has points")
	}
}

func TestEmptyInputsPanic(t *testing.T) {
	cases := []struct {
		name string
		call func()
	}{
		{"Gmean", func() { Gmean(nil) }},
		{"ArgMin", func() { ArgMin(nil) }},
		{"ArgMinUint", func() { ArgMinUint(nil) }},
		{"MinMax", func() { MinMax(nil) }},
		{"FewestWithin", func() { FewestWithin(nil, 0.01) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(empty) did not panic", tc.name)
				}
			}()
			tc.call()
		})
	}
}

func TestSingleSample(t *testing.T) {
	if got := Gmean([]float64{7}); got != 7 {
		t.Errorf("Gmean([7]) = %g", got)
	}
	if i, v := ArgMin([]float64{3.5}); i != 0 || v != 3.5 {
		t.Errorf("ArgMin([3.5]) = (%d, %g)", i, v)
	}
	if i, v := ArgMinUint([]uint64{9}); i != 0 || v != 9 {
		t.Errorf("ArgMinUint([9]) = (%d, %d)", i, v)
	}
	if got := FewestWithin([]uint64{42}, 0.01); got != 0 {
		t.Errorf("FewestWithin([42]) = %d", got)
	}
	if lo, hi := MinMax([]float64{2}); lo != 2 || hi != 2 {
		t.Errorf("MinMax([2]) = (%g, %g)", lo, hi)
	}
}

func TestArgMinTieBreaking(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		want int
	}{
		{"tie picks first", []float64{3, 1, 1, 2}, 1},
		{"all equal picks first", []float64{5, 5, 5}, 0},
		{"later strict min wins", []float64{2, 2, 1}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if i, _ := ArgMin(tc.vals); i != tc.want {
				t.Errorf("ArgMin(%v) = %d, want %d", tc.vals, i, tc.want)
			}
			u := make([]uint64, len(tc.vals))
			for j, v := range tc.vals {
				u[j] = uint64(v)
			}
			if i, _ := ArgMinUint(u); i != tc.want {
				t.Errorf("ArgMinUint(%v) = %d, want %d", u, i, tc.want)
			}
		})
	}
}

func TestFewestWithinTieBreaking(t *testing.T) {
	cases := []struct {
		name string
		vals []uint64
		tol  float64
		want int
	}{
		{"earlier value inside tolerance wins", []uint64{101, 100, 99}, 0.05, 0},
		{"tight tolerance finds the min", []uint64{200, 100, 101}, 0, 1},
		{"exact ties pick first", []uint64{100, 100, 100}, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := FewestWithin(tc.vals, tc.tol); got != tc.want {
				t.Errorf("FewestWithin(%v, %g) = %d, want %d", tc.vals, tc.tol, got, tc.want)
			}
		})
	}
}

func TestWithinPctZeroWant(t *testing.T) {
	if !WithinPct(0, 0, 1) {
		t.Error("WithinPct(0, 0) = false")
	}
	if WithinPct(0.001, 0, 50) {
		t.Error("WithinPct(nonzero, 0) = true")
	}
}
