// Package stats provides the small numeric helpers the experiment
// harness uses to turn raw simulation results into the paper's
// normalized series: normalization, geometric means, argmin and
// tolerance checks.
package stats

import (
	"fmt"
	"math"
)

// Series is an (x, y) series, e.g. thread count versus normalized
// execution time.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// NewSeries builds a series after validating matching lengths.
func NewSeries(label string, x, y []float64) (Series, error) {
	if len(x) != len(y) {
		return Series{}, fmt.Errorf("stats: series %q: len(x)=%d len(y)=%d", label, len(x), len(y))
	}
	return Series{Label: label, X: x, Y: y}, nil
}

// Normalize returns ys divided by base. A zero base panics: a
// normalized figure against a zero baseline is meaningless.
func Normalize(ys []float64, base float64) []float64 {
	if base == 0 {
		panic("stats: normalizing by zero")
	}
	out := make([]float64, len(ys))
	for i, y := range ys {
		out[i] = y / base
	}
	return out
}

// NormalizeUint converts cycle counts to float and normalizes by base.
func NormalizeUint(ys []uint64, base uint64) []float64 {
	if base == 0 {
		panic("stats: normalizing by zero")
	}
	out := make([]float64, len(ys))
	for i, y := range ys {
		out[i] = float64(y) / float64(base)
	}
	return out
}

// Gmean computes the geometric mean of positive values (the paper's
// gmean bar in Figs 14/15). Panics on empty input or non-positive
// values.
func Gmean(vals []float64) float64 {
	if len(vals) == 0 {
		panic("stats: gmean of empty slice")
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			panic(fmt.Sprintf("stats: gmean of non-positive value %v", v))
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// ArgMin reports the index of the smallest value (first on ties) and
// the value itself. Panics on empty input.
func ArgMin(vals []float64) (int, float64) {
	if len(vals) == 0 {
		panic("stats: argmin of empty slice")
	}
	bi, bv := 0, vals[0]
	for i, v := range vals[1:] {
		if v < bv {
			bi, bv = i+1, v
		}
	}
	return bi, bv
}

// ArgMinUint is ArgMin over cycle counts.
func ArgMinUint(vals []uint64) (int, uint64) {
	if len(vals) == 0 {
		panic("stats: argmin of empty slice")
	}
	bi, bv := 0, vals[0]
	for i, v := range vals[1:] {
		if v < bv {
			bi, bv = i+1, v
		}
	}
	return bi, bv
}

// WithinPct reports whether got is within pct percent of want
// (pct=1 means 1%).
func WithinPct(got, want, pct float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want)*100 <= pct
}

// FewestWithin reports the smallest index i such that vals[i] is
// within tolerance (fractional) of the minimum — the oracle's
// "fewest threads within 1% of the minimum execution time" rule.
func FewestWithin(vals []uint64, tolerance float64) int {
	_, best := ArgMinUint(vals)
	limit := float64(best) * (1 + tolerance)
	for i, v := range vals {
		if float64(v) <= limit {
			return i
		}
	}
	return len(vals) - 1
}

// MinMax reports the extrema of vals. Panics on empty input.
func MinMax(vals []float64) (lo, hi float64) {
	if len(vals) == 0 {
		panic("stats: minmax of empty slice")
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
