package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewSeriesLengthMismatch(t *testing.T) {
	if _, err := NewSeries("x", []float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	s, err := NewSeries("ok", []float64{1}, []float64{2})
	if err != nil || s.Label != "ok" {
		t.Errorf("valid series rejected: %v", err)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{10, 20, 5}, 10)
	want := []float64{1, 2, 0.5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNormalizeZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero base did not panic")
		}
	}()
	Normalize([]float64{1}, 0)
}

func TestNormalizeUint(t *testing.T) {
	got := NormalizeUint([]uint64{100, 50}, 100)
	if got[0] != 1.0 || got[1] != 0.5 {
		t.Errorf("NormalizeUint = %v", got)
	}
}

func TestGmean(t *testing.T) {
	if got := Gmean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Gmean(1,4) = %v, want 2", got)
	}
	if got := Gmean([]float64{3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("Gmean(3) = %v, want 3", got)
	}
}

func TestGmeanRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive value did not panic")
		}
	}()
	Gmean([]float64{1, 0})
}

func TestArgMin(t *testing.T) {
	i, v := ArgMin([]float64{3, 1, 2, 1})
	if i != 1 || v != 1 {
		t.Errorf("ArgMin = (%d,%v), want (1,1) — first on ties", i, v)
	}
	iu, vu := ArgMinUint([]uint64{9, 7, 8})
	if iu != 1 || vu != 7 {
		t.Errorf("ArgMinUint = (%d,%d), want (1,7)", iu, vu)
	}
}

func TestWithinPct(t *testing.T) {
	if !WithinPct(101, 100, 1) {
		t.Error("101 not within 1% of 100")
	}
	if WithinPct(102, 100, 1) {
		t.Error("102 within 1% of 100")
	}
	if !WithinPct(0, 0, 1) {
		t.Error("0 not within 1% of 0")
	}
}

func TestFewestWithin(t *testing.T) {
	// Times by thread count: min at index 4 but index 2 is within 1%.
	vals := []uint64{1000, 500, 303, 302, 300, 310, 350}
	if got := FewestWithin(vals, 0.01); got != 2 {
		t.Errorf("FewestWithin = %d, want 2", got)
	}
	if got := FewestWithin(vals, 0.0); got != 4 {
		t.Errorf("FewestWithin(tol=0) = %d, want 4", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v,%v), want (-1,7)", lo, hi)
	}
}

func TestPropertyGmeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r%1000) + 1
		}
		g := Gmean(vals)
		lo, hi := MinMax(vals)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyFewestWithinIsWithin(t *testing.T) {
	f := func(raw []uint16, tolRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]uint64, len(raw))
		for i, r := range raw {
			vals[i] = uint64(r) + 1
		}
		tol := float64(tolRaw%20) / 100
		i := FewestWithin(vals, tol)
		_, best := ArgMinUint(vals)
		return float64(vals[i]) <= float64(best)*(1+tol)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
