// Package sampled implements steady-state sampled simulation in the
// style of Pac-Sim (arXiv:2310.17089): cycle-simulate a warmup plus
// detailed windows of each kernel region, detect steady state from
// per-window counter deltas (cycles per iteration, critical-section
// fraction, bus utilization, DRAM row-hit rate stable within a
// tolerance for K consecutive windows), then analytically extrapolate
// cycles, power and counters across the homogeneous iterations in
// between. Exact simulation remains the oracle: sampling is an opt-in
// execution mode, and any run that needs cycle-exact state (invariant
// checking, golden traces) uses exact mode.
//
// The package knows nothing about policies or kernels; it provides
// the measurement (Probe/Window), decision (Detector) and
// fast-forward arithmetic (Window.Extrapolate) that the FDT
// controller's sampled executor composes.
package sampled

import (
	"fmt"
	"math"

	"fdt/internal/counters"
	"fdt/internal/machine"
)

// csCyclesCounter mirrors thread.CtrCSCycles (the threading runtime's
// critical-section occupancy counter) without importing the runtime:
// sampled sits below internal/thread in the layer order.
const csCyclesCounter = "sync.cs_cycles"

// Params tunes sampled execution.
type Params struct {
	// WindowIters is the detailed-window length in kernel iterations.
	// The first window of each region doubles as cache/row-buffer
	// warmup and is never compared against a predecessor.
	WindowIters int
	// Tol is the stability tolerance: relative for cycles/iteration,
	// absolute for the fractional signals (CS fraction, bus
	// utilization, row-hit rate).
	Tol float64
	// StableWindows is K, the consecutive stable windows required
	// before the region is declared steady and fast-forwarding may
	// begin.
	StableWindows int
	// SkipStartWindows is the first fast-forward length, in windows.
	// Each subsequent skip doubles up to SkipMaxWindows; a window that
	// falls out of steady state resets the length.
	SkipStartWindows int
	// SkipMaxWindows caps the geometric skip growth.
	SkipMaxWindows int
	// MinWindowCycles is the smallest useful detailed-window cost.
	// Every detailed window pays a fixed chunk-boundary overhead
	// (fork/join of the team) the single-chunk exact run does not;
	// windows are grown until they cost at least this many cycles so
	// that overhead stays a sub-percent fraction of the profile being
	// extrapolated.
	MinWindowCycles uint64
	// BailCycles is the remaining-work floor below which sampling
	// stops paying: once a kernel's projected remainder (remaining
	// iterations at the measured cycles/iteration) falls under it, the
	// executor runs the remainder as one exact chunk. Short, cheap
	// kernels gain nothing from extrapolation but would still pay the
	// per-window fork/join overhead as modeling error.
	BailCycles uint64
}

// DefaultParams returns the tuning used by the sampled CLIs and
// benchmarks: 8-iteration windows, 4% tolerance, steady after 1
// confirming window, skips growing 4 -> 512 windows. The short first
// skip is the counterweight to the single confirming window: an
// engagement on flukish agreement is re-verified four windows later,
// before the ramp reaches consequential skip lengths.
func DefaultParams() Params {
	return Params{
		WindowIters:      8,
		Tol:              0.04,
		StableWindows:    1,
		SkipStartWindows: 4,
		SkipMaxWindows:   512,
		MinWindowCycles:  40_000,
		BailCycles:       250_000,
	}
}

// WithDefaults fills zero fields from DefaultParams so partially
// specified parameters (a CLI that sets only -sample-window) behave.
func (p Params) WithDefaults() Params {
	d := DefaultParams()
	if p.WindowIters <= 0 {
		p.WindowIters = d.WindowIters
	}
	if p.Tol <= 0 {
		p.Tol = d.Tol
	}
	if p.StableWindows <= 0 {
		p.StableWindows = d.StableWindows
	}
	if p.SkipStartWindows <= 0 {
		p.SkipStartWindows = d.SkipStartWindows
	}
	if p.SkipMaxWindows < p.SkipStartWindows {
		p.SkipMaxWindows = d.SkipMaxWindows
		if p.SkipMaxWindows < p.SkipStartWindows {
			p.SkipMaxWindows = p.SkipStartWindows
		}
	}
	if p.MinWindowCycles == 0 {
		p.MinWindowCycles = d.MinWindowCycles
	}
	if p.BailCycles == 0 {
		p.BailCycles = d.BailCycles
	}
	return p
}

// Key renders the parameters as a stable cache-key fragment.
func (p Params) Key() string {
	p = p.WithDefaults()
	return fmt.Sprintf("w=%d,tol=%g,k=%d,s0=%d,smax=%d,minwc=%d,bail=%d",
		p.WindowIters, p.Tol, p.StableWindows, p.SkipStartWindows, p.SkipMaxWindows, p.MinWindowCycles, p.BailCycles)
}

// Stats summarizes one sampled run: how much was cycle-simulated, how
// much was extrapolated, and how often the detector bounced back to
// detailed mode.
type Stats struct {
	// DetailedIters is the iterations executed cycle-by-cycle
	// (training iterations included).
	DetailedIters int `json:"detailed_iters"`
	// SkippedIters is the iterations covered by extrapolation.
	SkippedIters int `json:"skipped_iters"`
	// SkippedCycles is the simulated time covered by extrapolation.
	SkippedCycles uint64 `json:"skipped_cycles"`
	// FastForwards counts extrapolation events.
	FastForwards int `json:"fast_forwards"`
	// Reentries counts returns to detailed mode forced by a window
	// that fell out of steady state after a skip.
	Reentries int `json:"reentries"`
}

// SkippedFrac reports the fraction of kernel iterations that were
// extrapolated rather than simulated.
func (s Stats) SkippedFrac() float64 {
	total := s.DetailedIters + s.SkippedIters
	if total == 0 {
		return 0
	}
	return float64(s.SkippedIters) / float64(total)
}

// String renders the stats for CLI footers.
func (s Stats) String() string {
	return fmt.Sprintf("%d iters detailed, %d extrapolated (%.1f%%), %d fast-forwards, %d re-entries",
		s.DetailedIters, s.SkippedIters, 100*s.SkippedFrac(), s.FastForwards, s.Reentries)
}

// Probe is a point-in-time capture of the machine's observable state:
// the clock, every performance counter, and the power meter's
// per-core integrals. Begin one before a detailed window and End it
// after to obtain the window's profile.
type Probe struct {
	cycles uint64
	ctrs   map[string]uint64
	power  []uint64
}

// Begin captures the machine's counters at a window's start.
func Begin(m *machine.Machine) Probe {
	return Probe{
		cycles: m.Eng.Now(),
		ctrs:   m.Ctrs.Checkpoint(),
		power:  m.Power.PerCore(),
	}
}

// Window is one detailed window's measured profile: what iters
// cycle-simulated iterations cost in wall cycles, counter events and
// per-core active cycles. It is both the detector's observation and
// the extrapolation's per-iteration model.
type Window struct {
	// Start is the window's first kernel iteration index. The detector
	// uses it to measure the iteration distance between detailed
	// windows (which are separated by skipped regions once sampling
	// engages) when fitting the drift trend.
	Start   int
	Iters   int
	Cycles  uint64
	Ctrs    map[string]uint64
	PerCore []uint64
}

// End closes the probe, returning the deltas accumulated since Begin.
// Counters created mid-window (absent from the probe) delta from
// zero.
func (pr Probe) End(m *machine.Machine, iters int) Window {
	w := Window{
		Iters:   iters,
		Cycles:  m.Eng.Now() - pr.cycles,
		Ctrs:    make(map[string]uint64),
		PerCore: m.Power.PerCore(),
	}
	for name, v := range m.Ctrs.Checkpoint() {
		if d := v - pr.ctrs[name]; d != 0 {
			w.Ctrs[name] = d
		}
	}
	for core := range w.PerCore {
		if core < len(pr.power) {
			w.PerCore[core] -= pr.power[core]
		}
	}
	return w
}

// scale rounds v*ratio to the nearest integer.
func scale(v uint64, ratio float64) uint64 {
	return uint64(float64(v)*ratio + 0.5)
}

// Extrapolate applies this window's per-iteration profile to the
// machine for iters analytically-skipped iterations: every counter
// that moved during the window and every core's power integral
// advance by the scaled window delta. It returns the cycles the
// skipped iterations are modeled to take; the caller advances the
// clock (thread.Ctx.FastForward) by that amount.
//
// The master core's (core 0) window delta is always zero mid-kernel —
// its occupancy span folds into the power meter only when the run
// ends — so the master's activity across the skip is accounted by
// that final fold, not here.
func (w Window) Extrapolate(m *machine.Machine, iters int) uint64 {
	if w.Iters <= 0 || iters <= 0 {
		return 0
	}
	ratio := float64(iters) / float64(w.Iters)
	for name, d := range w.Ctrs {
		m.Ctrs.Counter(name).Add(scale(d, ratio))
	}
	for core, d := range w.PerCore {
		if d != 0 {
			m.Power.AddActiveCycles(core, scale(d, ratio))
		}
	}
	return scale(w.Cycles, ratio)
}

// signals is the detector's per-window view: the rates whose
// stability defines steady state.
type signals struct {
	cyclesPerIter float64
	csFrac        float64
	busUtil       float64
	rowHitRate    float64
	hasRowAccess  bool
}

// measure derives the detector signals from a window profile. The
// cycles/iteration signal is net of the per-chunk fork/join overhead
// (see SetOverhead); the fractional rates keep the raw window as
// denominator.
func (d *Detector) measure(w Window) signals {
	s := signals{}
	if w.Iters > 0 {
		s.cyclesPerIter = float64(d.net(w)) / float64(w.Iters)
	}
	if w.Cycles > 0 {
		s.csFrac = float64(w.Ctrs[csCyclesCounter]) / float64(w.Cycles)
		s.busUtil = float64(w.Ctrs[counters.BusBusyCycles]) / float64(w.Cycles)
	}
	hits := w.Ctrs[counters.DRAMRowHits]
	misses := w.Ctrs[counters.DRAMRowMisses]
	if hits+misses > 0 {
		s.hasRowAccess = true
		s.rowHitRate = float64(hits) / float64(hits+misses)
	}
	return s
}

// Detector decides when a kernel region has reached steady state. Feed
// it every detailed window in execution order; Steady reports whether
// the region is currently homogeneous enough to extrapolate, and Last
// is the reference window for that extrapolation.
type Detector struct {
	p        Params
	oh       uint64
	have     bool
	prev     signals
	last     Window
	prevWin  Window
	havePrev bool
	stable   int
	steady   bool

	// Least-squares fallback for regions too noisy for pairwise window
	// comparison but well described by a linear trend (Transpose's
	// store-pressure ramp jitters several percent window to window
	// around a clean rise). hist collects same-length windows' (center,
	// cycles/iteration) points; when enough accumulate and a fitted
	// line explains them within tolerance, the region is "fit-steady":
	// extrapolation follows the fitted line, but only as far as the
	// span of the evidence.
	hist      []fitPoint
	histIters int
	fitOK     bool
	fitSlope  float64
	fitAt     float64 // fitted cpi at the last window's center
	fitSpan   float64 // iteration span covered by the fitted points
}

// fitPoint is one window's contribution to the trend fit.
type fitPoint struct {
	center float64
	cpi    float64
}

// SetOverhead records the fixed fork/join cost of one detailed chunk,
// measured by the executor with an empty RunChunk before the first
// window. Every detailed window pays this cost once; the exact run,
// which executes the region as a single chunk, pays it once total. The
// detector subtracts it from each window's cycles/iteration model and
// from each fast-forward (which is always followed by one detailed
// window), so chunking overhead neither biases the extrapolation nor
// accumulates across windows.
func (d *Detector) SetOverhead(oh uint64) { d.oh = oh }

// net is a window's cycle cost with the chunk overhead removed,
// clamped to half the window so a degenerate (overhead-dominated)
// window never underflows.
func (d *Detector) net(w Window) uint64 {
	if d.oh < w.Cycles/2 {
		return w.Cycles - d.oh
	}
	return w.Cycles / 2
}

// NewDetector builds a detector with the given (default-filled)
// parameters.
func NewDetector(p Params) *Detector {
	return &Detector{p: p.WithDefaults()}
}

// Observe feeds one detailed window. The first window is warmup (it
// only establishes the baseline); each later window counts toward the
// StableWindows run when all four signals match its predecessor
// within tolerance, and resets the run when any does not.
func (d *Detector) Observe(w Window) {
	sig := d.measure(w)
	if d.have && d.close(w, sig, d.prev) {
		d.stable++
	} else {
		d.stable = 0
	}
	d.steady = d.stable >= d.p.StableWindows
	d.prev = sig
	if d.have {
		d.prevWin = d.last
		d.havePrev = true
	}
	d.last = w
	d.have = true
	d.observeFit(w)
}

// fitMinPoints is the evidence floor for the trend fit; fitMaxPoints
// keeps the fit local so an old phase cannot drag the line.
const (
	fitMinPoints = 4
	fitMaxPoints = 8
)

// observeFit feeds the window to the least-squares trend model and
// revalidates the fit. The model accepts the region as fit-steady when
// a line through the recent windows' cycles/iteration explains them
// with an RMS residual inside the tolerance — a criterion that, unlike
// the pairwise comparison, averages window-to-window noise away
// instead of being defeated by it.
func (d *Detector) observeFit(w Window) {
	d.fitOK = false
	if w.Iters <= 0 {
		return
	}
	if d.histIters == 0 {
		d.histIters = w.Iters
	}
	if w.Iters != d.histIters {
		// A partial tail window measures a different chunk geometry;
		// excluding it keeps the fit on like-for-like points.
		return
	}
	d.hist = append(d.hist, fitPoint{
		center: float64(w.Start) + float64(w.Iters)/2,
		cpi:    float64(d.net(w)) / float64(w.Iters),
	})
	if len(d.hist) > fitMaxPoints {
		d.hist = d.hist[len(d.hist)-fitMaxPoints:]
	}
	if len(d.hist) < fitMinPoints {
		return
	}
	n := float64(len(d.hist))
	var sx, sy, sxx, sxy float64
	for _, p := range d.hist {
		sx += p.center
		sy += p.cpi
		sxx += p.center * p.center
		sxy += p.center * p.cpi
	}
	den := n*sxx - sx*sx
	mean := sy / n
	if den == 0 || mean <= 0 {
		return
	}
	slope := (n*sxy - sx*sy) / den
	icept := (sy - slope*sx) / n
	var rss float64
	for _, p := range d.hist {
		r := p.cpi - (icept + slope*p.center)
		rss += r * r
	}
	if math.Sqrt(rss/n)/mean > d.p.Tol {
		return
	}
	d.fitOK = true
	d.fitSlope = slope
	last := d.hist[len(d.hist)-1]
	d.fitAt = icept + slope*last.center
	d.fitSpan = last.center - d.hist[0].center
}

// close reports whether the new window agrees with the region's model
// within tolerance on every signal. The fractional signals (CS
// fraction, bus utilization, row-hit rate) compare absolutely against
// the previous window; the row-hit rate only when both windows
// actually accessed DRAM — an idle DRAM is steady.
//
// Cycles/iteration compares against the *linear model*, not the raw
// predecessor: with three windows in hand the expected value is the
// previous window's cost plus the fitted slope. A region with a
// constant drift (Transpose's store pressure ramps the whole kernel)
// is then steady — the extrapolator projects the same line — while
// curvature (GSearch's steep warmup decay) and noise both show up as
// model residual and hold the detector off.
func (d *Detector) close(w Window, a, b signals) bool {
	expected := b.cyclesPerIter
	if d.havePrev {
		expected += d.slope() * d.centerGap(d.last, w)
	}
	if relDiff(a.cyclesPerIter, expected) > d.p.Tol {
		return false
	}
	// The fractional signals exist to catch phase changes (a kernel
	// entering a critical-section-heavy or bandwidth-bound regime), not
	// fine noise — a saturated bus jitters a few points window to
	// window without the region being any less steady. Give them 1.5x
	// the cycle tolerance.
	frac := 1.5 * d.p.Tol
	if absDiff(a.csFrac, b.csFrac) > frac {
		return false
	}
	if absDiff(a.busUtil, b.busUtil) > frac {
		return false
	}
	if a.hasRowAccess && b.hasRowAccess && absDiff(a.rowHitRate, b.rowHitRate) > frac {
		return false
	}
	return true
}

// centerGap is the iteration distance between two windows' midpoints.
func (d *Detector) centerGap(from, to Window) float64 {
	return float64(to.Start) + float64(to.Iters)/2 - (float64(from.Start) + float64(from.Iters)/2)
}

// slope is the fitted cycles/iteration drift per iteration across the
// last two windows (zero when unavailable).
func (d *Detector) slope() float64 {
	if !d.havePrev || d.prevWin.Iters <= 0 || d.last.Iters <= 0 {
		return 0
	}
	gap := d.centerGap(d.prevWin, d.last)
	if gap <= 0 {
		return 0
	}
	cpiLast := float64(d.net(d.last)) / float64(d.last.Iters)
	cpiPrev := float64(d.net(d.prevWin)) / float64(d.prevWin.Iters)
	return (cpiLast - cpiPrev) / gap
}

// Steady reports whether the region is in detected steady state —
// either the pairwise stable run reached StableWindows, or the
// least-squares trend fit explains the recent windows within
// tolerance (fit-steady; see observeFit).
func (d *Detector) Steady() bool { return d.steady || d.fitOK }

// StableRun reports the current run of consecutive stable windows —
// nonzero while stability is building toward StableWindows.
func (d *Detector) StableRun() int { return d.stable }

// MaxSkipIters bounds a single fast-forward: the linear drift model is
// trusted only as far as it predicts the per-iteration cost moving by a
// quarter of the tolerance. A steep fitted slope usually means curvature the
// detector cannot see inside one window (GSearch's cache-warming decay
// ratchets a few percent per window, each step inside tolerance), and
// the extrapolation error of a line through a curve grows with the
// square of the projection distance — so drifting regions take many
// short verified skips while flat regions skip without bound (0 means
// unbounded).
func (d *Detector) MaxSkipIters() int {
	if d.fitOK {
		// With a validated trend fit, the fitted line is trusted no
		// farther than the span of the evidence it was fitted through.
		// Each verified post-skip window extends the span, so skips
		// grow organically as the trend keeps holding.
		return int(d.fitSpan)
	}
	w := d.last
	if w.Iters <= 0 || !d.havePrev || d.prevWin.Iters <= 0 {
		return 0
	}
	cpi := float64(d.net(w)) / float64(w.Iters)
	if cpi <= 0 {
		return 0
	}
	// A slope fitted through two windows of a flat region measures
	// noise, and capping skips by it would throttle exactly the regions
	// that are safest to skip. Only a window-to-window move outside the
	// noise band (half the tolerance) is treated as real drift.
	cpiPrev := float64(d.net(d.prevWin)) / float64(d.prevWin.Iters)
	if absDiff(cpi, cpiPrev) <= d.p.Tol/2*cpi {
		return 0
	}
	sl := d.slope()
	if sl < 0 {
		sl = -sl
	}
	if sl == 0 {
		return 0
	}
	lim := d.p.Tol / 4 * cpi / sl
	if lim > 1e9 {
		return 0
	}
	return int(lim)
}

// Last returns the most recent window profile — the extrapolation
// reference while steady.
func (d *Detector) Last() Window { return d.last }

// Extrapolate advances the machine analytically across iters skipped
// iterations and returns the cycles they are modeled to take.
//
// The cycle estimate is trend-corrected: regions can drift slowly —
// each window within tolerance of its predecessor while the
// per-iteration cost ratchets monotonically (GSearch's queue drains,
// so later iterations are cheaper) — and flat extrapolation of the
// last window would integrate that bias over every skipped iteration.
// Fitting a line through the last two windows' cycles/iteration
// (centers measured in iteration space, so skip gaps are handled) and
// projecting it to the skipped region's midpoint cancels the
// first-order drift. The projected mean cost is clamped to ±50% of
// the last window's — a trend strong enough to leave that band is a
// phase change, which the next detailed window will catch.
//
// Counters and per-core power scale by modeled-cycles ratio rather
// than iteration ratio: under drift, event counts track the work per
// iteration, so scaling by time keeps rates (bus utilization, CS
// fraction) consistent with the cycle estimate.
func (d *Detector) Extrapolate(m *machine.Machine, iters int) uint64 {
	w := d.last
	if w.Iters <= 0 || iters <= 0 || w.Cycles == 0 {
		return 0
	}
	cpi := float64(d.net(w)) / float64(w.Iters)
	// Project the fitted line to the skipped region's midpoint. A
	// fit-steady region projects the least-squares line (anchored at
	// the fitted — noise-smoothed — value for the last window); a
	// pairwise-steady region projects the two-point slope.
	var est float64
	if d.fitOK {
		// Half-weight rising projections beyond the last fitted point:
		// cost ramps (Transpose's store pressure) saturate, and a line
		// through a saturating curve overshoots upward — shrinking the
		// extension toward flat halves that overshoot. Falling trends
		// (GSearch's queue drain) persist to the region's end, so they
		// project at full weight.
		sl := d.fitSlope
		if sl > 0 {
			sl *= 0.5
		}
		est = d.fitAt + sl*(float64(w.Iters)/2+float64(iters)/2)
	} else {
		est = cpi + d.slope()*(float64(w.Iters)/2+float64(iters)/2)
	}
	if est < 0.5*cpi {
		est = 0.5 * cpi
	}
	if est > 1.5*cpi {
		est = 1.5 * cpi
	}
	ff := float64(iters) * est
	// Every fast-forward is followed by one detailed window whose
	// fork/join overhead the contiguous exact run would not pay; fold
	// the compensation into the skip so totals stay unbiased.
	if ff > float64(d.oh) {
		ff -= float64(d.oh)
	}
	ratio := ff / float64(d.net(w))
	for name, delta := range w.Ctrs {
		m.Ctrs.Counter(name).Add(scale(delta, ratio))
	}
	for core, delta := range w.PerCore {
		if delta != 0 {
			m.Power.AddActiveCycles(core, scale(delta, ratio))
		}
	}
	return uint64(ff + 0.5)
}

// Reset clears all detector state (a new region begins).
func (d *Detector) Reset() {
	d.have = false
	d.prev = signals{}
	d.last = Window{}
	d.prevWin = Window{}
	d.havePrev = false
	d.stable = 0
	d.steady = false
	d.hist = nil
	d.histIters = 0
	d.fitOK = false
	d.fitSlope = 0
	d.fitAt = 0
	d.fitSpan = 0
}

func relDiff(a, b float64) float64 {
	diff := absDiff(a, b)
	base := b
	if a > b {
		base = a
	}
	if base == 0 {
		return 0
	}
	return diff / base
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
