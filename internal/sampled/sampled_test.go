package sampled

import (
	"strings"
	"testing"

	"fdt/internal/machine"
)

// win builds a synthetic window profile with no counter deltas.
func win(start, iters int, cycles uint64) Window {
	return Window{Start: start, Iters: iters, Cycles: cycles, Ctrs: map[string]uint64{}}
}

func TestParamsWithDefaults(t *testing.T) {
	if got, want := (Params{}).WithDefaults(), DefaultParams(); got != want {
		t.Errorf("zero params filled to %+v, want %+v", got, want)
	}
	p := Params{WindowIters: 16}.WithDefaults()
	if p.WindowIters != 16 {
		t.Errorf("explicit WindowIters overwritten: %d", p.WindowIters)
	}
	if p.Tol != DefaultParams().Tol || p.SkipMaxWindows != DefaultParams().SkipMaxWindows {
		t.Errorf("unset fields not defaulted: %+v", p)
	}
	if !strings.Contains(p.Key(), "w=16") {
		t.Errorf("Key missing window setting: %q", p.Key())
	}
}

func TestStatsSkippedFrac(t *testing.T) {
	if f := (Stats{}).SkippedFrac(); f != 0 {
		t.Errorf("empty stats frac = %v", f)
	}
	s := Stats{DetailedIters: 25, SkippedIters: 75}
	if f := s.SkippedFrac(); f != 0.75 {
		t.Errorf("frac = %v, want 0.75", f)
	}
	if !strings.Contains(s.String(), "75.0%") {
		t.Errorf("String() = %q", s)
	}
}

// A flat region becomes steady after warmup plus StableWindows
// confirming windows, and an off-profile window knocks it back out.
func TestDetectorPairwiseSteady(t *testing.T) {
	d := NewDetector(DefaultParams())
	d.Observe(win(0, 8, 8000)) // warmup: establishes the baseline
	if d.Steady() {
		t.Fatal("steady after warmup window alone")
	}
	d.Observe(win(8, 8, 8000))
	if !d.Steady() {
		t.Fatal("flat region not steady after confirming window")
	}
	if d.StableRun() != 1 {
		t.Errorf("StableRun = %d, want 1", d.StableRun())
	}
	d.Observe(win(16, 8, 16000)) // phase change: cost doubles
	if d.steady {
		t.Fatal("pairwise-steady survived a 2x cost step")
	}
}

// A slow monotone drift — each window within tolerance of the linear
// model — stays steady: the detector compares against the projected
// trend, not the raw predecessor.
func TestDetectorLinearDriftSteady(t *testing.T) {
	d := NewDetector(DefaultParams())
	cpi := []uint64{1000, 1010, 1020, 1030, 1040}
	for i, c := range cpi {
		d.Observe(win(8*i, 8, 8*c))
	}
	if !d.Steady() {
		t.Fatal("linear drift of 1% per window not steady")
	}
}

// A region too noisy for pairwise comparison but well described by a
// line goes fit-steady once fitMinPoints same-length windows
// accumulate, and the skip bound equals the evidence span.
func TestDetectorFitSteady(t *testing.T) {
	d := NewDetector(DefaultParams())
	// +-3.5% alternation around 1000: every pairwise step is ~7%,
	// beyond the 4% tolerance, but the RMS residual of a fitted line
	// stays within it.
	cpi := []uint64{1035, 965, 1035, 965}
	for i, c := range cpi {
		d.Observe(win(8*i, 8, 8*c))
		if d.StableRun() != 0 {
			t.Fatalf("window %d: pairwise comparison accepted a 7%% jump", i)
		}
	}
	if !d.Steady() {
		t.Fatal("noisy-but-linear region not fit-steady after 4 windows")
	}
	// Evidence spans window centers 4..28.
	if got := d.MaxSkipIters(); got != 24 {
		t.Errorf("fit-steady MaxSkipIters = %d, want evidence span 24", got)
	}
	d.Reset()
	if d.Steady() || d.StableRun() != 0 || d.MaxSkipIters() != 0 {
		t.Error("Reset left detector state behind")
	}
}

// A partial tail window (different length) must not enter the fit
// history: its chunk geometry is not comparable.
func TestDetectorFitSkipsPartialWindows(t *testing.T) {
	d := NewDetector(DefaultParams())
	cpi := []uint64{1035, 965, 1035}
	for i, c := range cpi {
		d.Observe(win(8*i, 8, 8*c))
	}
	d.Observe(win(24, 3, 3*965)) // partial tail, fourth point
	if d.Steady() {
		t.Fatal("fit accepted a partial window as evidence")
	}
}

func TestMaxSkipItersDriftBound(t *testing.T) {
	d := NewDetector(DefaultParams())
	d.Observe(win(0, 8, 8000))
	d.Observe(win(8, 8, 8000))
	if got := d.MaxSkipIters(); got != 0 {
		t.Errorf("flat region bound = %d, want 0 (unbounded)", got)
	}
	d = NewDetector(DefaultParams())
	d.Observe(win(0, 8, 8000))
	d.Observe(win(8, 8, 7680)) // cpi 1000 -> 960: real drift, just inside tol
	if !d.Steady() {
		t.Fatal("4% drift should still be steady")
	}
	got := d.MaxSkipIters()
	if got < 1 || got > 4 {
		// slope -5/iter at cpi 960: trusted for Tol/4*cpi/|slope| ~ 2.
		t.Errorf("drifting region bound = %d, want a short leash (1..4)", got)
	}
}

// Extrapolate projects the two-window trend to the skipped region's
// midpoint and scales counters by modeled-cycle ratio.
func TestExtrapolateTrendAndCounters(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	d := NewDetector(DefaultParams())
	d.Observe(win(0, 8, 8000))
	last := win(8, 8, 7680)
	last.Ctrs["x"] = 100
	d.Observe(last)
	if !d.Steady() {
		t.Fatal("not steady")
	}
	ff := d.Extrapolate(m, 8)
	// cpi 960, slope -5: projected midpoint cost 960 - 5*(4+4) = 920,
	// so 8 iterations model to 7360 cycles.
	if ff != 7360 {
		t.Errorf("ff = %d, want 7360", ff)
	}
	// Counters scale by cycle ratio 7360/7680.
	if got := m.Ctrs.Counter("x").Read(); got != 96 {
		t.Errorf("counter x advanced by %d, want 96", got)
	}
}

// The measured fork/join overhead is subtracted from the model (net
// cycles) and refunded once per fast-forward.
func TestOverheadCompensation(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	d := NewDetector(DefaultParams())
	d.SetOverhead(100)
	d.Observe(win(0, 8, 8100))
	d.Observe(win(8, 8, 8100)) // net 8000 each: flat at cpi 1000
	if !d.Steady() {
		t.Fatal("not steady")
	}
	if ff := d.Extrapolate(m, 8); ff != 7900 {
		t.Errorf("ff = %d, want 8*1000 - 100 = 7900", ff)
	}
}

func TestWindowExtrapolateScales(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	w := win(0, 8, 1000)
	w.Ctrs["y"] = 10
	if ff := w.Extrapolate(m, 16); ff != 2000 {
		t.Errorf("ff = %d, want 2000", ff)
	}
	if got := m.Ctrs.Counter("y").Read(); got != 20 {
		t.Errorf("counter y advanced by %d, want 20", got)
	}
	if ff := w.Extrapolate(m, 0); ff != 0 {
		t.Errorf("zero-iteration extrapolation returned %d", ff)
	}
}

// Probe End reports counter deltas since Begin, including counters
// created mid-window.
func TestProbeDeltas(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	m.Ctrs.Counter("pre").Add(7)
	pr := Begin(m)
	m.Ctrs.Counter("pre").Add(5)
	m.Ctrs.Counter("fresh").Add(3)
	w := pr.End(m, 4)
	if w.Iters != 4 {
		t.Errorf("iters = %d", w.Iters)
	}
	if w.Ctrs["pre"] != 5 || w.Ctrs["fresh"] != 3 {
		t.Errorf("deltas = %v, want pre:5 fresh:3", w.Ctrs)
	}
	if _, ok := w.Ctrs["sim.events"]; ok && w.Ctrs["sim.events"] == 0 {
		t.Errorf("zero delta recorded")
	}
}
