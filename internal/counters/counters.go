// Package counters implements the performance-monitoring counters the
// paper's techniques read: monotonically increasing event counters
// (cycles a bus was busy, cache misses) sampled by software with a
// read-at-entry / read-at-exit pattern, exactly like the Core2Duo
// BUS_DRDY_CLOCKS or Itanium2 BUS_DATA_CYCLE counters cited in
// Section 5.2 of the paper.
package counters

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotone event counter. Hardware counters never run
// backwards; Reset models the privileged clear operation.
type Counter struct {
	v uint64
}

// Add increments the counter by n events.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increments the counter by one event.
func (c *Counter) Inc() { c.v++ }

// Read samples the counter.
func (c *Counter) Read() uint64 { return c.v }

// Reset clears the counter to zero.
func (c *Counter) Reset() { c.v = 0 }

// Sample is a point-in-time reading used for entry/exit deltas.
type Sample uint64

// Sample captures the current value.
func (c *Counter) Sample() Sample { return Sample(c.v) }

// DeltaSince reports the events accumulated since the sample was
// taken.
func (c *Counter) DeltaSince(s Sample) uint64 { return c.v - uint64(s) }

// Snapshot is a point-in-time reading of several counters at once —
// the software idiom for interval-based monitoring: snapshot at the
// interval's start, ask for the deltas at its end, carry the new
// snapshot into the next interval.
type Snapshot map[string]Sample

// Delta holds the events each counter accumulated over one interval.
type Delta map[string]uint64

// Snapshot samples the named counters (creating absent ones, which
// read zero) and returns the readings keyed by name.
func (s *Set) Snapshot(names ...string) Snapshot {
	snap := make(Snapshot, len(names))
	for _, n := range names {
		snap[n] = s.Counter(n).Sample()
	}
	return snap
}

// DeltaSince reports, for every counter in the snapshot, the events
// accumulated since the snapshot was taken.
func (s *Set) DeltaSince(snap Snapshot) Delta {
	d := make(Delta, len(snap))
	for n, v := range snap {
		d[n] = s.Counter(n).DeltaSince(v)
	}
	return d
}

// Advance reports the deltas since snap and moves snap forward to the
// current readings in one step — the per-interval monitoring loop's
// read-and-rearm operation.
func (s *Set) Advance(snap Snapshot) Delta {
	d := make(Delta, len(snap))
	for n := range snap {
		c := s.Counter(n)
		d[n] = c.DeltaSince(snap[n])
		snap[n] = c.Sample()
	}
	return d
}

// Checkpoint captures every counter's current value by name — the
// counter file's contribution to a machine state summary.
func (s *Set) Checkpoint() map[string]uint64 {
	cp := make(map[string]uint64, len(s.byName))
	for n, c := range s.byName {
		cp[n] = c.v
	}
	return cp
}

// Restore sets the named counters to the checkpointed values,
// creating absent ones. Counters in the set but not in the checkpoint
// are cleared, so the set's state after Restore equals the state at
// Checkpoint. Existing Counter pointers stay valid: restoration
// mutates counters in place.
func (s *Set) Restore(cp map[string]uint64) {
	for n, c := range s.byName {
		if _, ok := cp[n]; !ok {
			c.v = 0
		}
	}
	for n, v := range cp {
		s.Counter(n).v = v
	}
}

// Set is a named collection of counters, the moral equivalent of a
// performance-monitoring unit's register file.
type Set struct {
	byName map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{byName: make(map[string]*Counter)} }

// Counter returns the counter with the given name, creating it on
// first use.
func (s *Set) Counter(name string) *Counter {
	c, ok := s.byName[name]
	if !ok {
		c = &Counter{}
		s.byName[name] = c
	}
	return c
}

// Names lists the counters in the set in sorted order.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ResetAll clears every counter in the set.
func (s *Set) ResetAll() {
	for _, c := range s.byName {
		c.Reset()
	}
}

// String renders the set as "name=value" pairs for reports.
func (s *Set) String() string {
	var b strings.Builder
	for i, n := range s.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, s.byName[n].v)
	}
	return b.String()
}

// Canonical counter names used across the machine model.
const (
	// BusBusyCycles counts cycles the off-chip data bus carried data —
	// the paper's BUS_DRDY_CLOCKS analogue, read by BAT training.
	BusBusyCycles = "bus.busy_cycles"
	// BusTransactions counts completed off-chip line transfers.
	BusTransactions = "bus.transactions"
	// L3Misses counts demand misses leaving the chip.
	L3Misses = "l3.misses"
	// L3Hits counts demand accesses served by the shared L3.
	L3Hits = "l3.hits"
	// BusWaitCycles accumulates demand-transfer queueing delay at the
	// data bus.
	BusWaitCycles = "bus.wait_cycles"
	// DRAMRowHits / DRAMRowMisses split DRAM accesses by row-buffer
	// outcome.
	DRAMRowHits   = "dram.row_hits"
	DRAMRowMisses = "dram.row_misses"
	// DRAMBankWaitCycles accumulates demand-access queueing delay at
	// DRAM banks.
	DRAMBankWaitCycles = "dram.bank_wait_cycles"
	// LoadStallCycles accumulates cycles cores spent stalled in
	// demand loads (beyond the L1 hit latency).
	LoadStallCycles = "port.load_stall_cycles"
	// StoreStallCycles accumulates cycles cores spent stalled in
	// stores (blocking stores' walks and full-store-buffer waits).
	StoreStallCycles = "port.store_stall_cycles"
	// L2Prefetches counts next-line prefetches issued (when the
	// prefetcher is enabled).
	L2Prefetches = "l2.prefetches"
	// CoherenceInvalidations counts directory-initiated invalidations.
	CoherenceInvalidations = "coherence.invalidations"
	// CoherenceWritebacks counts dirty-owner writebacks forced by the
	// directory.
	CoherenceWritebacks = "coherence.writebacks"
)
