package counters

import (
	"testing"
	"testing/quick"
)

func TestCounterAddAndRead(t *testing.T) {
	var c Counter
	if c.Read() != 0 {
		t.Fatal("new counter not zero")
	}
	c.Add(5)
	c.Inc()
	if got := c.Read(); got != 6 {
		t.Errorf("Read = %d, want 6", got)
	}
	c.Reset()
	if c.Read() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestSampleDelta(t *testing.T) {
	var c Counter
	c.Add(100)
	s := c.Sample()
	c.Add(42)
	if d := c.DeltaSince(s); d != 42 {
		t.Errorf("DeltaSince = %d, want 42", d)
	}
}

func TestSetCreatesOnFirstUse(t *testing.T) {
	s := NewSet()
	a := s.Counter("x")
	b := s.Counter("x")
	if a != b {
		t.Error("Counter(\"x\") returned distinct counters")
	}
	a.Add(3)
	if s.Counter("x").Read() != 3 {
		t.Error("counter state not shared")
	}
}

func TestSetNamesSorted(t *testing.T) {
	s := NewSet()
	s.Counter("zeta")
	s.Counter("alpha")
	s.Counter("mid")
	names := s.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestSetResetAll(t *testing.T) {
	s := NewSet()
	s.Counter("a").Add(1)
	s.Counter("b").Add(2)
	s.ResetAll()
	if s.Counter("a").Read() != 0 || s.Counter("b").Read() != 0 {
		t.Error("ResetAll left nonzero counters")
	}
}

func TestSetString(t *testing.T) {
	s := NewSet()
	s.Counter("b").Add(2)
	s.Counter("a").Add(1)
	if got, want := s.String(), "a=1 b=2"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSnapshotDeltaSince(t *testing.T) {
	s := NewSet()
	s.Counter("cs").Add(10)
	s.Counter("bus").Add(5)
	snap := s.Snapshot("cs", "bus", "fresh")
	s.Counter("cs").Add(7)
	s.Counter("fresh").Add(3)
	d := s.DeltaSince(snap)
	if d["cs"] != 7 || d["bus"] != 0 || d["fresh"] != 3 {
		t.Errorf("DeltaSince = %v, want cs=7 bus=0 fresh=3", d)
	}
	// DeltaSince does not re-arm: the same snapshot keeps measuring
	// from the original point.
	s.Counter("cs").Add(1)
	if d := s.DeltaSince(snap); d["cs"] != 8 {
		t.Errorf("second DeltaSince cs = %d, want 8", d["cs"])
	}
}

func TestSnapshotAdvanceReArms(t *testing.T) {
	s := NewSet()
	snap := s.Snapshot("cs")
	s.Counter("cs").Add(4)
	if d := s.Advance(snap); d["cs"] != 4 {
		t.Errorf("first interval = %v, want cs=4", d)
	}
	s.Counter("cs").Add(9)
	if d := s.Advance(snap); d["cs"] != 9 {
		t.Errorf("second interval = %v, want cs=9 (re-armed)", d)
	}
	if d := s.Advance(snap); d["cs"] != 0 {
		t.Errorf("empty interval = %v, want cs=0", d)
	}
}

func TestPropertyDeltaMatchesSumOfAdds(t *testing.T) {
	f := func(adds []uint16) bool {
		var c Counter
		c.Add(7)
		s := c.Sample()
		var want uint64
		for _, a := range adds {
			c.Add(uint64(a))
			want += uint64(a)
		}
		return c.DeltaSince(s) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
