// Package store implements a disk-persistent content-addressed blob
// store: the durable half of the run cache. Keys are the same content
// addresses internal/core composes for its in-memory run cache
// (machine config x workload x policy x mode); values are opaque
// payloads the caller serializes (core persists JSON-encoded
// RunResults).
//
// Design constraints, in order:
//
//   - Never serve garbage. Every entry carries a fixed header (magic,
//     format version, caller schema version, key and payload lengths,
//     payload CRC) plus the full key; any mismatch — truncation, stale
//     version, hash collision, bit rot — reads as a miss and the
//     caller recomputes. A corrupt file is deleted best-effort so the
//     recompute's Put repairs it.
//   - Never tear. Writes go to a private temp file in the store
//     directory, are synced, and are published with os.Rename, which
//     is atomic on POSIX filesystems: readers (including other
//     processes sharing the directory) observe either the old complete
//     entry or the new complete entry, nothing in between. Concurrent
//     writers of the same key race benignly — both write identical
//     content-addressed payloads and the last rename wins.
//   - Stay cheap. One file per entry under a 256-way fan-out keeps
//     directories small; Get is a single ReadFile; no global index
//     exists to corrupt or lock.
//
// Eviction is intentionally absent here: bounded memory is the
// in-memory cache's job (runner.Cache.SetLimit); bounded disk is the
// operator's (the store directory can be deleted wholesale at any
// time, it is only ever a cache).
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Format is the on-disk container version. Bump it when the header
// layout changes; entries written under another format read as misses.
const Format = 1

// magic brands every entry file. Files that do not start with it are
// treated as corrupt, whatever their extension.
const magic = "FDTSTORE"

// headerLen is the fixed prefix before the key and payload:
// magic(8) + format(4) + schema(4) + keyLen(4) + crc(4) + payloadLen(8).
const headerLen = 32

// entryExt marks entry files; temp files use a ".tmp-*" prefix and are
// never picked up by Len or Get.
const entryExt = ".run"

// Stats counts store outcomes since Open.
type Stats struct {
	// Hits and Misses count Get outcomes. Misses include stale and
	// corrupt entries — every miss means the caller recomputes.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Stale counts entries skipped because their format or schema
	// version did not match (a software upgrade, not damage).
	Stale uint64 `json:"stale"`
	// Corrupt counts entries rejected by structural checks: short
	// file, bad magic, length mismatch, key mismatch, CRC mismatch.
	Corrupt uint64 `json:"corrupt"`
	// Puts and PutErrors count writes and failed writes.
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"put_errors"`
}

// Store is a disk-backed content-addressed blob store rooted at one
// directory. All methods are safe for concurrent use by multiple
// goroutines and cooperating processes.
type Store struct {
	dir    string
	schema uint32

	hits, misses, stale, corrupt atomic.Uint64
	puts, putErrors              atomic.Uint64
}

// Open roots a store at dir (created if absent). schema is the
// caller's payload schema version: entries written under a different
// schema are misses, so a payload-format change only costs a
// recompute, never a misparse.
func Open(dir string, schema uint32) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, schema: schema}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its entry file: sha256 hex under a 256-way
// fan-out ("ab/ab12...run"). The full key is stored inside the entry,
// so a hash collision reads as corruption, not as the wrong value.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, name[:2], name+entryExt)
}

// Get returns the payload stored under key, or (nil, false) on any
// miss: absent, stale format or schema, or corrupt. Corrupt entries
// are removed best-effort so the caller's recompute repairs them.
func (s *Store) Get(key string) ([]byte, bool) {
	path := s.path(key)
	blob, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, ok, stale := decode(blob, key, s.schema)
	if !ok {
		if stale {
			s.stale.Add(1)
		} else {
			s.corrupt.Add(1)
			os.Remove(path) // best effort; Put will rewrite it
		}
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// decode validates one entry file against the expected key and schema.
// It reports (payload, ok, stale); stale distinguishes version skew
// (benign) from structural damage.
func decode(blob []byte, key string, schema uint32) (payload []byte, ok, stale bool) {
	if len(blob) < headerLen || string(blob[:8]) != magic {
		return nil, false, false
	}
	format := binary.BigEndian.Uint32(blob[8:12])
	gotSchema := binary.BigEndian.Uint32(blob[12:16])
	keyLen := binary.BigEndian.Uint32(blob[16:20])
	crc := binary.BigEndian.Uint32(blob[20:24])
	payloadLen := binary.BigEndian.Uint64(blob[24:32])
	if format != Format || gotSchema != schema {
		return nil, false, true
	}
	if uint64(len(blob)) != headerLen+uint64(keyLen)+payloadLen {
		return nil, false, false
	}
	if string(blob[headerLen:headerLen+keyLen]) != key {
		return nil, false, false
	}
	payload = blob[headerLen+keyLen:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, false, false
	}
	return payload, true, false
}

// Put stores payload under key, atomically replacing any previous
// entry. A failed Put leaves the previous entry (if any) intact.
func (s *Store) Put(key string, payload []byte) error {
	err := s.put(key, payload)
	if err != nil {
		s.putErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	s.puts.Add(1)
	return nil
}

func (s *Store) put(key string, payload []byte) error {
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}

	var hdr [headerLen]byte
	copy(hdr[:8], magic)
	binary.BigEndian.PutUint32(hdr[8:12], Format)
	binary.BigEndian.PutUint32(hdr[12:16], s.schema)
	binary.BigEndian.PutUint32(hdr[16:20], uint32(len(key)))
	binary.BigEndian.PutUint32(hdr[20:24], crc32.ChecksumIEEE(payload))
	binary.BigEndian.PutUint64(hdr[24:32], uint64(len(payload)))

	// The temp file lives beside the fan-out directories so the rename
	// never crosses a filesystem boundary.
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	for _, chunk := range [][]byte{hdr[:], []byte(key), payload} {
		if _, err := tmp.Write(chunk); err != nil {
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// Len walks the store and reports the entry count and their total size
// on disk (headers included). It is a directory scan — cheap for the
// thousands-of-entries scale this store serves, but not free; stats
// endpoints should call it, hot paths should not.
func (s *Store) Len() (entries int, bytes int64) {
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != entryExt {
			return nil //nolint:nilerr // skip unreadable paths; this is accounting
		}
		if info, err := d.Info(); err == nil {
			entries++
			bytes += info.Size()
		}
		return nil
	})
	return entries, bytes
}

// Stats reports the store's counters since Open.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Stale:     s.stale.Load(),
		Corrupt:   s.corrupt.Load(),
		Puts:      s.puts.Load(),
		PutErrors: s.putErrors.Load(),
	}
}
