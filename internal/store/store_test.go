package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func open(t *testing.T, schema uint32) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), schema)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := open(t, 1)
	key := "cfg|workload|policy/static-7"
	payload := []byte(`{"TotalCycles":12345}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit before any Put")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = (%q, %v), want (%q, true)", got, ok, payload)
	}
	// Overwrite is atomic replacement, not append.
	if err := s.Put(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || string(got) != "v2" {
		t.Fatalf("after overwrite Get = (%q, %v)", got, ok)
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 2 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss / 2 puts", st)
	}
	if n, b := s.Len(); n != 1 || b <= 0 {
		t.Errorf("Len = (%d, %d), want one sized entry", n, b)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", 1); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

func TestEmptyPayloadAndBigKey(t *testing.T) {
	s := open(t, 1)
	key := string(bytes.Repeat([]byte("k"), 4096))
	if err := s.Put(key, nil); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || len(got) != 0 {
		t.Fatalf("Get = (%q, %v), want empty hit", got, ok)
	}
}

// corrupt rewrites the single entry file under s.dir via mutate.
func corruptEntry(t *testing.T, s *Store, mutate func([]byte) []byte) {
	t.Helper()
	var path string
	filepath.WalkDir(s.dir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(p) == entryExt {
			path = p
		}
		return nil
	})
	if path == "" {
		t.Fatal("no entry file found")
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(blob), 0o644); err != nil {
		t.Fatal(err)
	}
}

// Every corruption mode must read as a miss (recompute), never as a
// payload, and structural damage must be counted and cleaned up.
func TestCorruptionReadsAsMiss(t *testing.T) {
	cases := []struct {
		name      string
		mutate    func([]byte) []byte
		wantStale bool // version skew, not damage
	}{
		{"truncated-header", func(b []byte) []byte { return b[:headerLen-5] }, false},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-3] }, false},
		{"empty-file", func(b []byte) []byte { return nil }, false},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, false},
		{"bad-format-version", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[8:12], Format+7)
			return b
		}, true},
		{"bad-schema-version", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[12:16], 99)
			return b
		}, true},
		{"flipped-payload-bit", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, false},
		{"key-mismatch", func(b []byte) []byte {
			// Flip a key byte: the CRC still matches the payload, but
			// the stored key no longer matches the requested one (the
			// shape of a hash collision).
			b[headerLen] ^= 0xff
			return b
		}, false},
		{"appended-junk", func(b []byte) []byte { return append(b, "junk"...) }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := open(t, 1)
			if err := s.Put("the-key", []byte("the-payload")); err != nil {
				t.Fatal(err)
			}
			corruptEntry(t, s, tc.mutate)
			if got, ok := s.Get("the-key"); ok {
				t.Fatalf("corrupt entry served as a hit: %q", got)
			}
			st := s.Stats()
			if st.Misses != 1 {
				t.Errorf("misses = %d, want 1", st.Misses)
			}
			if tc.wantStale {
				if st.Stale != 1 || st.Corrupt != 0 {
					t.Errorf("stats = %+v, want stale=1 corrupt=0", st)
				}
			} else {
				if st.Corrupt != 1 {
					t.Errorf("stats = %+v, want corrupt=1", st)
				}
				// Structural damage is cleaned up so the next Put
				// repairs it and the next Get is a plain miss.
				if n, _ := s.Len(); n != 0 {
					t.Errorf("corrupt entry not removed (%d entries)", n)
				}
			}
			// Recompute-and-Put repairs every mode.
			if err := s.Put("the-key", []byte("the-payload")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("the-key"); !ok || string(got) != "the-payload" {
				t.Fatalf("after repair Get = (%q, %v)", got, ok)
			}
		})
	}
}

// A schema bump must invalidate old entries without touching files
// written under the new schema.
func TestSchemaUpgradeInvalidates(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("k"); ok {
		t.Fatal("schema-1 entry served under schema 2")
	}
	if st := s2.Stats(); st.Stale != 1 {
		t.Errorf("stats = %+v, want stale=1", st)
	}
	if err := s2.Put("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("k"); !ok || string(got) != "new" {
		t.Fatalf("Get = (%q, %v) after rewrite", got, ok)
	}
}

// Concurrent writers to overlapping keys must never produce a torn or
// mixed read: every Get observes one writer's complete payload.
func TestConcurrentWriters(t *testing.T) {
	s := open(t, 1)
	const writers, rounds, keys = 8, 50, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("key-%d", r%keys)
				payload := bytes.Repeat([]byte{byte('a' + w)}, 256)
				if err := s.Put(key, payload); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if got, ok := s.Get(key); ok {
					for _, b := range got[1:] {
						if b != got[0] {
							t.Errorf("torn read: mixed payload %q...", got[:8])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 || st.PutErrors != 0 {
		t.Errorf("stats = %+v, want zero corrupt/putErrors", st)
	}
	// No temp files may survive.
	matches, _ := filepath.Glob(filepath.Join(s.Dir(), ".tmp-*"))
	if len(matches) != 0 {
		t.Errorf("leftover temp files: %v", matches)
	}
	if n, _ := s.Len(); n != keys {
		t.Errorf("Len = %d entries, want %d", n, keys)
	}
}

// Fan-out must place entries under two-hex-digit subdirectories.
func TestFanOutLayout(t *testing.T) {
	s := open(t, 1)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	sub, _ := filepath.Glob(filepath.Join(s.Dir(), "??", "*"+entryExt))
	if len(sub) != 1 {
		t.Fatalf("entry not under fan-out dir: %v", sub)
	}
}
