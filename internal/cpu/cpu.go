// Package cpu models one in-order core of the simulated CMP. Table 1
// specifies two-wide in-order five-stage pipelines; we model such a
// core as a compute server that retires issue-width instructions per
// cycle and stalls for the full latency of every memory access (an
// in-order core without speculation cannot hide misses). This is the
// standard abstraction for studying throughput-level phenomena — and
// both of the paper's limiters (critical-section serialization and
// bus bandwidth) are throughput phenomena.
package cpu

import (
	"fdt/internal/invariant"
	"fdt/internal/mem"
	"fdt/internal/sim"
)

// CPU is a thread's execution context on a specific core.
type CPU struct {
	core  int
	width uint64
	proc  *sim.Proc
	port  *mem.Port
	// load, when set, reports how many hardware contexts currently
	// share this core (SMT): co-resident contexts divide the issue
	// width, so compute slows by that factor.
	load func() int

	// fscale, when set, reports the core's current cycle-time
	// multiplier as an exact rational (nominal MHz / current MHz):
	// compute work is dilated by num/den while memory timing stays
	// wall-clock-anchored. Nil — the default — is the fixed-frequency
	// machine, with zero overhead on the compute path. facc carries
	// the division remainder between calls so dilation loses no
	// cycles to rounding (Σ dilated == Σ exact·num/den, truncated
	// once at the end rather than per call).
	fscale func() (num, den uint64)
	facc   uint64

	// led, when set, charges every cycle the CPU advances to the
	// context's conservation ledger: compute to Busy, memory-access
	// stalls to Stall. Nil is the disabled harness.
	led *invariant.Ledger

	// attr is this thread's team bus-attribution handle. The port is
	// shared per-core, so under SMT another team's context may have
	// installed its own handle between this CPU's accesses — re-install
	// before every port call.
	attr *mem.TeamCtrs

	instret uint64
	loads   uint64
	stores  uint64
}

// New binds a CPU façade to a core, its simulation process, and its
// memory port.
func New(core int, width int, proc *sim.Proc, port *mem.Port) *CPU {
	if width <= 0 {
		width = 1
	}
	return &CPU{core: core, width: uint64(width), proc: proc, port: port}
}

// Core reports the core index this CPU occupies.
func (c *CPU) Core() int { return c.core }

// Proc exposes the simulation process (used by the threading runtime
// for parking and waking).
func (c *CPU) Proc() *sim.Proc { return c.proc }

// CycleCount reads the core's cycle counter — the paper's "read the
// cycle counter at entry and exit" instrumentation primitive.
func (c *CPU) CycleCount() uint64 { return c.proc.Now() }

// Instret reports instructions retired (diagnostics).
func (c *CPU) Instret() uint64 { return c.instret }

// SetContention installs the SMT co-residency probe (see the load
// field). A nil probe — the default — models a dedicated core.
func (c *CPU) SetContention(load func() int) { c.load = load }

// SetFreqScale installs the DVFS cycle-time probe (see the fscale
// field). A nil probe — the default — models a fixed-frequency core.
func (c *CPU) SetFreqScale(f func() (num, den uint64)) { c.fscale = f }

// dilate converts d nominal compute cycles into wall cycles at the
// core's current frequency, carrying the remainder across calls.
func (c *CPU) dilate(d uint64) uint64 {
	if c.fscale == nil {
		return d
	}
	num, den := c.fscale()
	if num == den {
		return d
	}
	t := d*num + c.facc
	c.facc = t % den
	return t / den
}

// SetLedger installs the context's conservation ledger (see the led
// field). Nil — the default — disables the accounting.
func (c *CPU) SetLedger(l *invariant.Ledger) { c.led = l }

// SetTeamCtrs installs the thread's team bus-attribution handle (see
// the attr field). Nil — the default — leaves traffic un-attributed.
func (c *CPU) SetTeamCtrs(tc *mem.TeamCtrs) { c.attr = tc }

// slowdown reports the current compute derating from SMT sharing.
func (c *CPU) slowdown() uint64 {
	if c.load == nil {
		return 1
	}
	if l := c.load(); l > 1 {
		return uint64(l)
	}
	return 1
}

// Compute advances the core through cycles of pure ALU work.
func (c *CPU) Compute(cycles uint64) {
	if cycles == 0 {
		return
	}
	c.instret += cycles * c.width
	d := c.dilate(cycles * c.slowdown())
	c.proc.Advance(d)
	if c.led != nil {
		c.led.Busy += d
	}
}

// Exec retires instrs ALU instructions at the pipeline's issue width.
func (c *CPU) Exec(instrs uint64) {
	if instrs == 0 {
		return
	}
	c.instret += instrs
	d := c.dilate((instrs*c.slowdown() + c.width - 1) / c.width)
	c.proc.Advance(d)
	if c.led != nil {
		c.led.Busy += d
	}
}

// Load performs a data load from addr, stalling for the full access.
func (c *CPU) Load(addr uint64) {
	c.loads++
	c.port.SetTeamCtrs(c.attr)
	if c.led != nil {
		t0 := c.proc.Now()
		c.port.Load(c.proc, addr)
		c.led.Stall += c.proc.Now() - t0
		return
	}
	c.port.Load(c.proc, addr)
}

// Store performs a data store to addr.
func (c *CPU) Store(addr uint64) {
	c.stores++
	c.port.SetTeamCtrs(c.attr)
	if c.led != nil {
		t0 := c.proc.Now()
		c.port.Store(c.proc, addr)
		c.led.Stall += c.proc.Now() - t0
		return
	}
	c.port.Store(c.proc, addr)
}

// LoadRange touches every line in [base, base+bytes) once with a
// load — the access pattern of a streaming read. It issues one load
// per line; per-element ALU work should be added with Compute/Exec by
// the caller, which keeps workload tuning explicit.
func (c *CPU) LoadRange(base uint64, bytes int) {
	if bytes <= 0 {
		return
	}
	line := uint64(c.port.LineBytes())
	first := base &^ (line - 1)
	last := (base + uint64(bytes) - 1) &^ (line - 1)
	for a := first; a <= last; a += line {
		c.Load(a)
	}
}

// StoreRange touches every line in [base, base+bytes) once with a
// streaming store: the writes retire through the store buffer
// (mem.Port.StoreStream), so they consume bandwidth without stalling
// the core unless the buffer fills — the behaviour of a real write
// stream.
func (c *CPU) StoreRange(base uint64, bytes int) {
	if bytes <= 0 {
		return
	}
	line := uint64(c.port.LineBytes())
	first := base &^ (line - 1)
	last := (base + uint64(bytes) - 1) &^ (line - 1)
	if c.led != nil {
		t0 := c.proc.Now()
		for a := first; a <= last; a += line {
			c.stores++
			c.port.SetTeamCtrs(c.attr)
			c.port.StoreStream(c.proc, a)
		}
		c.led.Stall += c.proc.Now() - t0
		return
	}
	for a := first; a <= last; a += line {
		c.stores++
		c.port.SetTeamCtrs(c.attr)
		c.port.StoreStream(c.proc, a)
	}
}
