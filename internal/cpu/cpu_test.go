package cpu

import (
	"testing"

	"fdt/internal/counters"
	"fdt/internal/mem"
	"fdt/internal/sim"
)

func testCPU(t *testing.T) (*CPU, *sim.Engine, *mem.System, func(body func(c *CPU))) {
	t.Helper()
	ctrs := counters.NewSet()
	sys, err := mem.NewSystem(mem.DefaultConfig(), ctrs)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	var c *CPU
	run := func(body func(c *CPU)) {
		e.Spawn("t", func(p *sim.Proc) {
			c = New(0, 2, p, sys.Port(0))
			body(c)
		})
		e.Run()
	}
	return c, e, sys, run
}

func TestComputeAdvancesCycles(t *testing.T) {
	_, e, _, run := testCPU(t)
	run(func(c *CPU) { c.Compute(123) })
	if e.Now() != 123 {
		t.Errorf("elapsed = %d, want 123", e.Now())
	}
}

func TestExecUsesIssueWidth(t *testing.T) {
	_, e, _, run := testCPU(t)
	run(func(c *CPU) {
		c.Exec(100) // 2-wide: 50 cycles
		c.Exec(101) // odd count rounds up: 51 cycles
	})
	if e.Now() != 101 {
		t.Errorf("elapsed = %d, want 101", e.Now())
	}
}

func TestExecZeroWidthDefaultsToOne(t *testing.T) {
	e := sim.NewEngine()
	ctrs := counters.NewSet()
	sys := mem.MustNewSystem(mem.DefaultConfig(), ctrs)
	e.Spawn("t", func(p *sim.Proc) {
		c := New(0, 0, p, sys.Port(0))
		c.Exec(10)
	})
	e.Run()
	if e.Now() != 10 {
		t.Errorf("elapsed = %d, want 10 at width 1", e.Now())
	}
}

func TestCycleCountMatchesClock(t *testing.T) {
	_, _, _, run := testCPU(t)
	run(func(c *CPU) {
		c.Compute(10)
		if c.CycleCount() != 10 {
			t.Errorf("CycleCount = %d, want 10", c.CycleCount())
		}
	})
}

func TestLoadRangeTouchesEveryLineOnce(t *testing.T) {
	_, _, sys, run := testCPU(t)
	base := sys.Alloc(1024)
	ctr := sys.Ctrs.Counter(counters.BusTransactions)
	run(func(c *CPU) {
		c.LoadRange(base, 1024) // 16 lines, all cold misses
	})
	if got := ctr.Read(); got != 16 {
		t.Errorf("bus transactions = %d, want 16", got)
	}
}

func TestLoadRangeUnalignedSpansBoundary(t *testing.T) {
	_, _, sys, run := testCPU(t)
	base := sys.Alloc(256)
	ctr := sys.Ctrs.Counter(counters.BusTransactions)
	run(func(c *CPU) {
		// 64 bytes starting 32 bytes into a line touches two lines.
		c.LoadRange(base+32, 64)
	})
	if got := ctr.Read(); got != 2 {
		t.Errorf("bus transactions = %d, want 2 for straddling range", got)
	}
}

func TestStoreRangeDirtiesLines(t *testing.T) {
	_, _, sys, run := testCPU(t)
	base := sys.Alloc(128)
	run(func(c *CPU) { c.StoreRange(base, 128) })
	line := base / 64
	if mod, owner := sys.Dir.IsModified(line); !mod || owner != 0 {
		t.Errorf("line not owned-modified after StoreRange: (%v,%d)", mod, owner)
	}
}

func TestEmptyRangesAreNoops(t *testing.T) {
	_, e, sys, run := testCPU(t)
	base := sys.Alloc(64)
	run(func(c *CPU) {
		c.LoadRange(base, 0)
		c.StoreRange(base, -5)
		c.Compute(0)
		c.Exec(0)
	})
	if e.Now() != 0 {
		t.Errorf("no-ops advanced clock to %d", e.Now())
	}
}

func TestInstretCounts(t *testing.T) {
	_, _, _, run := testCPU(t)
	run(func(c *CPU) {
		c.Exec(10)
		c.Compute(5) // 5 cycles * width 2 = 10 instrs
		if c.Instret() != 20 {
			t.Errorf("instret = %d, want 20", c.Instret())
		}
	})
}
