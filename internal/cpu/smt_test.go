package cpu

import (
	"testing"

	"fdt/internal/counters"
	"fdt/internal/mem"
	"fdt/internal/sim"
)

func TestContentionSlowsCompute(t *testing.T) {
	ctrs := counters.NewSet()
	sys := mem.MustNewSystem(mem.DefaultConfig(), ctrs)
	e := sim.NewEngine()
	load := 1
	e.Spawn("t", func(p *sim.Proc) {
		c := New(0, 2, p, sys.Port(0))
		c.SetContention(func() int { return load })
		c.Compute(100)
		solo := p.Now()
		load = 2
		c.Compute(100)
		if shared := p.Now() - solo; shared != 200 {
			t.Errorf("co-resident compute took %d, want 200 (2x derate)", shared)
		}
		if solo != 100 {
			t.Errorf("solo compute took %d, want 100", solo)
		}
	})
	e.Run()
}

func TestContentionAffectsExec(t *testing.T) {
	ctrs := counters.NewSet()
	sys := mem.MustNewSystem(mem.DefaultConfig(), ctrs)
	e := sim.NewEngine()
	e.Spawn("t", func(p *sim.Proc) {
		c := New(0, 2, p, sys.Port(0))
		c.SetContention(func() int { return 2 })
		c.Exec(100) // 100 instrs, width 2, derate 2 -> 100 cycles
		if p.Now() != 100 {
			t.Errorf("Exec under contention took %d, want 100", p.Now())
		}
	})
	e.Run()
}

func TestNilContentionIsDedicated(t *testing.T) {
	ctrs := counters.NewSet()
	sys := mem.MustNewSystem(mem.DefaultConfig(), ctrs)
	e := sim.NewEngine()
	e.Spawn("t", func(p *sim.Proc) {
		c := New(0, 2, p, sys.Port(0))
		c.Compute(50)
		if p.Now() != 50 {
			t.Errorf("dedicated compute took %d, want 50", p.Now())
		}
	})
	e.Run()
}
