package service

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"fdt/internal/core"
	"fdt/internal/experiments"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

// Spec is a submitted job: workload x machine config x policy x mode
// x sweep range, or a whole named experiment from the report registry.
type Spec struct {
	// Client identifies the submitter for admission fairness; empty
	// means "anon". It is an accounting label, not authentication.
	Client string `json:"client,omitempty"`
	// Kind selects the job shape: "sweep" (default when Workload is
	// set) or "experiment" (default when Experiment is set).
	Kind string `json:"kind,omitempty"`
	// Workload names a registered workload for sweep jobs.
	Workload string `json:"workload,omitempty"`
	// Threads are the static thread counts to sweep; may be empty
	// when Policies is not.
	Threads []int `json:"threads,omitempty"`
	// Policies are placed on the curve after the sweep: sat, bat,
	// sat+bat, serial, static:N, adaptive, hillclimb, hybrid.
	Policies []string `json:"policies,omitempty"`
	// Experiment names a report-registry experiment ("fig2" ...
	// "gauntlet") for experiment jobs.
	Experiment string `json:"experiment,omitempty"`
	// Cores and Bandwidth shape the simulated machine (default 32
	// cores, 1.0 bandwidth).
	Cores     int     `json:"cores,omitempty"`
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// Mode is "exact" (default) or "sampled".
	Mode string `json:"mode,omitempty"`
	// PowerBudget caps average chip power in nominal-active-core
	// units (0 = unconstrained). A positive budget with no explicit
	// ladder implies the default four-state ladder.
	PowerBudget float64 `json:"power_budget,omitempty"`
	// FreqLadderMHz is the P-state ladder as a strictly descending
	// MHz list, nominal first (empty = single-frequency machine).
	FreqLadderMHz []int `json:"freq_ladder_mhz,omitempty"`
}

const (
	KindSweep      = "sweep"
	KindExperiment = "experiment"
)

// normalize fills defaults and validates everything that can be
// checked without simulating; the HTTP layer maps an error to 400.
func (s *Spec) normalize() error {
	if s.Client == "" {
		s.Client = "anon"
	}
	if s.Kind == "" {
		if s.Experiment != "" {
			s.Kind = KindExperiment
		} else {
			s.Kind = KindSweep
		}
	}
	if s.Cores == 0 {
		s.Cores = machine.DefaultConfig().Mem.Cores
	}
	if s.Cores < 1 {
		return fmt.Errorf("bad cores %d", s.Cores)
	}
	if s.Bandwidth == 0 {
		s.Bandwidth = 1.0
	}
	if s.Bandwidth < 0 {
		return fmt.Errorf("bad bandwidth %g", s.Bandwidth)
	}
	switch s.Mode {
	case "", "exact":
		s.Mode = "exact"
	case "sampled":
	default:
		return fmt.Errorf("bad mode %q (want exact or sampled)", s.Mode)
	}
	if _, err := s.freq(); err != nil {
		return err
	}
	for _, n := range s.Threads {
		if n < 1 || n > s.Cores*machine.DefaultConfig().SMTContexts {
			return fmt.Errorf("bad thread count %d for %d cores", n, s.Cores)
		}
	}
	switch s.Kind {
	case KindSweep:
		if s.Experiment != "" {
			return fmt.Errorf("sweep job must not name an experiment")
		}
		if _, ok := workloads.ByName(s.Workload); !ok {
			return fmt.Errorf("unknown workload %q", s.Workload)
		}
		if len(s.Threads) == 0 && len(s.Policies) == 0 {
			return fmt.Errorf("empty job: no threads and no policies")
		}
		for _, p := range s.Policies {
			if !experiments.ValidPolicyName(p) {
				return fmt.Errorf("unknown policy %q", p)
			}
			if s.dvfs() {
				switch strings.ToLower(strings.TrimSpace(p)) {
				case "hillclimb", "hill-climb", "hybrid":
					return fmt.Errorf("policy %q does not support a power budget or P-state ladder (its probes time real chunks at nominal frequency)", p)
				}
			}
		}
	case KindExperiment:
		if s.Workload != "" || len(s.Policies) != 0 {
			return fmt.Errorf("experiment job carries only an experiment name")
		}
		if _, ok := experiments.LookupExperiment(experiments.DefaultOptions(), s.Experiment); !ok {
			return fmt.Errorf("unknown experiment %q", s.Experiment)
		}
	default:
		return fmt.Errorf("bad kind %q (want sweep or experiment)", s.Kind)
	}
	return nil
}

// dvfs reports whether the spec asks for the power-aware path at
// all; false keeps jobs on the bit-identical single-frequency path.
func (s Spec) dvfs() bool { return s.PowerBudget > 0 || len(s.FreqLadderMHz) > 0 }

// freq resolves the spec's (budget, ladder) pair, mirroring the
// CLIs' machine.ResolveDVFS: the budget must be non-negative, the
// MHz list must form a valid ladder, and a positive budget with no
// explicit ladder implies the default ladder.
func (s Spec) freq() (machine.FreqConfig, error) {
	if s.PowerBudget < 0 {
		return machine.FreqConfig{}, fmt.Errorf("bad power budget %g (want >= 0; 0 = unconstrained)", s.PowerBudget)
	}
	fc, err := machine.LadderFromMHz(s.FreqLadderMHz)
	if err != nil {
		return machine.FreqConfig{}, err
	}
	if s.PowerBudget > 0 && fc.Trivial() {
		fc = machine.DefaultLadder()
	}
	return fc, nil
}

// options builds the experiment options a job executes under.
func (s Spec) options() experiments.Options {
	o := experiments.Options{
		Cfg: machine.DefaultConfig().WithCores(s.Cores).WithBandwidth(s.Bandwidth),
	}
	if s.Mode == "sampled" {
		o.Mode = core.SampledMode()
	}
	if s.Kind == KindExperiment && len(s.Threads) > 0 {
		o.SweepThreads = s.Threads
	}
	if s.dvfs() {
		fc, err := s.freq() // validated by normalize
		if err == nil {
			o.Cfg = o.Cfg.WithFreq(fc)
			o.Power = &core.PowerParams{Budget: s.PowerBudget, LockState: -1}
		}
	}
	return o
}

// Job statuses, in lifecycle order.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Event is one progress notification on a job's stream.
type Event struct {
	// Type: "queued", "running", "point" (one sweep point or policy
	// placement finished), "done", "error".
	Type string `json:"type"`
	Job  string `json:"job"`
	// Point payload (Type "point").
	Workload string `json:"workload,omitempty"`
	Policy   string `json:"policy,omitempty"`
	Threads  int    `json:"threads,omitempty"`
	Cycles   uint64 `json:"cycles,omitempty"`
	Index    int    `json:"index,omitempty"`
	Total    int    `json:"total,omitempty"`
	// Err carries the failure message (Type "error").
	Err string `json:"error,omitempty"`
}

// Job is one admitted submission and its lifecycle state.
type Job struct {
	ID   string
	Spec Spec

	mu        sync.Mutex
	status    string
	errMsg    string
	result    json.RawMessage
	submitted time.Time
	started   time.Time
	finished  time.Time
	events    []Event
	subs      map[int]chan Event
	nextSub   int
	dropped   uint64
}

func newJob(id string, spec Spec) *Job {
	j := &Job{
		ID: id, Spec: spec,
		status:    StatusQueued,
		submitted: time.Now(),
		subs:      map[int]chan Event{},
	}
	j.events = append(j.events, Event{Type: StatusQueued, Job: id})
	return j
}

// publish appends an event to the job's history and fans it out to
// live subscribers. Sends never block the dispatcher: a subscriber
// that stops draining loses intermediate events (counted), but the
// terminal state is always observable because completion closes every
// subscriber channel and the final snapshot holds the result.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
			j.dropped++
		}
	}
}

// terminal state transitions; close all subscriber channels.
func (j *Job) finish(result json.RawMessage, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	var ev Event
	if err != nil {
		j.status = StatusFailed
		j.errMsg = err.Error()
		ev = Event{Type: "error", Job: j.ID, Err: j.errMsg}
	} else {
		j.status = StatusDone
		j.result = result
		ev = Event{Type: "done", Job: j.ID}
	}
	j.events = append(j.events, ev)
	subs := j.subs
	j.subs = map[int]chan Event{}
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
			j.dropped++
		}
		close(ch)
	}
	j.mu.Unlock()
}

func (j *Job) start() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.publish(Event{Type: StatusRunning, Job: j.ID})
}

// Subscribe returns a channel that replays the job's full event
// history and then carries live events; it is closed when the job
// reaches a terminal state (or immediately after replay if it already
// has). cancel detaches early.
func (j *Job) Subscribe() (ch <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Replay capacity plus live headroom; the SSE writer drains
	// promptly, and terminal delivery is guaranteed by channel close +
	// snapshot regardless of drops.
	c := make(chan Event, len(j.events)+256)
	for _, ev := range j.events {
		c <- ev
	}
	if j.status == StatusDone || j.status == StatusFailed {
		close(c)
		return c, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = c
	return c, func() {
		j.mu.Lock()
		if ch, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// View is a job's externally visible snapshot.
type View struct {
	ID        string          `json:"id"`
	Spec      Spec            `json:"spec"`
	Status    string          `json:"status"`
	Error     string          `json:"error,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Events    int             `json:"events"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// Snapshot captures the job's current state. withResult=false elides
// the (potentially large) result payload for listings.
func (j *Job) Snapshot(withResult bool) View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID: j.ID, Spec: j.Spec, Status: j.status, Error: j.errMsg,
		Submitted: j.submitted, Events: len(j.events),
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

// Status reports the job's current lifecycle state.
func (j *Job) Status() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the terminal result payload (nil until done).
func (j *Job) Result() json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}
