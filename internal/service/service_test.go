package service

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"fdt/internal/core"
	"fdt/internal/experiments"
)

// resetCache gives each test a cold, detached run cache and restores
// the pristine global state afterwards.
func resetCache(t *testing.T) {
	t.Helper()
	core.DetachRunStore()
	core.ResetRunCache()
	t.Cleanup(func() {
		core.DetachRunStore()
		core.ResetRunCache()
	})
}

// smallSweep is the cheap canonical job used throughout these tests:
// a two-point static sweep of pagemine on an 8-core machine
// (sub-second on any host).
func smallSweep(client string) Spec {
	return Spec{Client: client, Workload: "pagemine", Threads: []int{2, 4}, Cores: 8}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		switch j.Status() {
		case StatusDone:
			return
		case StatusFailed:
			t.Fatalf("job %s failed: %s", j.ID, j.Snapshot(false).Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", j.ID)
}

func drain(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestSweepJobLifecycle(t *testing.T) {
	resetCache(t)
	s := New(Config{Workers: 1})
	defer drain(t, s)

	j, err := s.Submit(smallSweep("t"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	var res experiments.SweepJobResult
	if err := json.Unmarshal(j.Result(), &res); err != nil {
		t.Fatalf("result not a SweepJobResult: %v", err)
	}
	if len(res.Sweep) != 2 || res.Sweep[0].TotalCycles == 0 {
		t.Fatalf("sweep result malformed: %+v", res)
	}
	if res.MinThreads != 2 && res.MinThreads != 4 {
		t.Errorf("min_threads = %d, want 2 or 4", res.MinThreads)
	}

	// The event history must be a complete lifecycle: queued, running,
	// one point per sweep entry, done.
	ch, cancel := j.Subscribe()
	defer cancel()
	var types []string
	points := 0
	for ev := range ch {
		types = append(types, ev.Type)
		if ev.Type == "point" {
			points++
			if ev.Workload != "pagemine" || ev.Cycles == 0 || ev.Total != 2 {
				t.Errorf("malformed point event: %+v", ev)
			}
		}
	}
	if points != 2 {
		t.Errorf("saw %d point events, want 2 (history: %v)", points, types)
	}
	if types[0] != "queued" || types[len(types)-1] != "done" {
		t.Errorf("lifecycle = %v, want queued...done", types)
	}
}

func TestSpecValidation(t *testing.T) {
	resetCache(t)
	s := New(Config{Workers: 1})
	defer drain(t, s)

	bad := []Spec{
		{}, // no workload, no experiment
		{Workload: "nosuch", Threads: []int{1}},
		{Workload: "pagemine"}, // no threads, no policies
		{Workload: "pagemine", Threads: []int{0}},
		{Workload: "pagemine", Threads: []int{1}, Cores: -3},
		{Workload: "pagemine", Threads: []int{1}, Mode: "warp"},
		{Workload: "pagemine", Threads: []int{1}, Policies: []string{"nosuch"}},
		{Workload: "pagemine", Threads: []int{99}, Cores: 8},
		{Experiment: "nosuchfig"},
		{Experiment: "fig2", Workload: "pagemine"},
		{Kind: "weird", Workload: "pagemine", Threads: []int{1}},
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("bad spec %d (%+v) accepted", i, spec)
		}
	}
}

// Concurrent identical submissions must collapse into one simulation
// per distinct run via the cache's single-flight keys. Under -race
// this is the dedup half of the PR's race gauntlet.
func TestConcurrentIdenticalSubmissionsDedup(t *testing.T) {
	resetCache(t)
	s := New(Config{Workers: 4})
	defer drain(t, s)

	const clients = 8
	jobs := make([]*Job, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(smallSweep("c" + string(rune('a'+i))))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	var first json.RawMessage
	for i, j := range jobs {
		if j == nil {
			t.Fatal("missing job")
		}
		waitDone(t, j)
		if i == 0 {
			first = j.Result()
			continue
		}
		if string(j.Result()) != string(first) {
			t.Errorf("job %d result differs from job 0", i)
		}
	}
	// 8 jobs x 2 points, but only 2 distinct runs exist.
	if got := core.RunCacheComputes(); got != 2 {
		t.Errorf("computes = %d, want 2 (single-flight dedup)", got)
	}
	hits, misses := core.RunCacheStats()
	if misses != 2 || hits != clients*2-2 {
		t.Errorf("cache = %d hits / %d misses, want %d / 2", hits, misses, clients*2-2)
	}
}

func TestSubmitWhileDrainingRejected(t *testing.T) {
	resetCache(t)
	s := New(Config{Workers: 1})
	drain(t, s)
	if _, err := s.Submit(smallSweep("t")); err != ErrDraining {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}
}

// Drain must finish queued work: a job admitted before drain begins
// still completes.
func TestDrainFinishesAdmittedJobs(t *testing.T) {
	resetCache(t)
	s := New(Config{Workers: 1})
	j1, err := s.Submit(smallSweep("a"))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(smallSweep("b"))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, s)
	for _, j := range []*Job{j1, j2} {
		if j.Status() != StatusDone {
			t.Errorf("job %s = %s after drain, want done", j.ID, j.Status())
		}
	}
}

func TestQueueFullMapsToSubmitError(t *testing.T) {
	resetCache(t)
	// One worker, capacity 1: the first job occupies the worker, the
	// second fills the queue, the third must be rejected.
	s := New(Config{Workers: 1, QueueCap: 1})
	defer drain(t, s)

	j1, err := s.Submit(smallSweep("a"))
	if err != nil {
		t.Fatal(err)
	}
	// Ensure the worker picked j1 up so the queue is empty for j2.
	deadline := time.Now().Add(time.Minute)
	for j1.Status() == StatusQueued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(smallSweep("b")); err != nil {
		t.Fatalf("second submit: %v", err)
	}
	_, err = s.Submit(smallSweep("c"))
	if err != ErrQueueFull {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	// The rejected job must not linger in the registry.
	if _, ok := s.Job("job-3"); ok {
		t.Error("rejected job left registered")
	}
}

// A policy-only job (no sweep) must work and carry policy placements.
func TestPolicyOnlyJob(t *testing.T) {
	resetCache(t)
	s := New(Config{Workers: 1})
	defer drain(t, s)

	j, err := s.Submit(Spec{
		Workload: "pagemine", Cores: 8,
		Policies: []string{"sat+bat", "static:4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	var res experiments.SweepJobResult
	if err := json.Unmarshal(j.Result(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 2 || len(res.Sweep) != 0 {
		t.Fatalf("policies=%d sweep=%d, want 2/0", len(res.Policies), len(res.Sweep))
	}
	if res.Policies[0].Policy != "SAT+BAT" {
		t.Errorf("policy label = %q, want SAT+BAT", res.Policies[0].Policy)
	}
}
