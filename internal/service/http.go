package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs            submit a Spec; 202 + job view, 400 bad
//	                         spec, 429 queue full, 503 draining
//	GET  /v1/jobs/{id}       poll a job (result included when done)
//	GET  /v1/jobs/{id}/stream  SSE progress stream; one event per
//	                         lifecycle step and sweep point, ends
//	                         after "done"/"error"
//	GET  /v1/stats           queue, cache, and store counters
//	GET  /v1/healthz         liveness ("ok", or 503 while draining)
//
// All responses are JSON except the SSE stream (text/event-stream).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	j, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, j.Snapshot(false))
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueClosed):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot(true))
}

// handleStream serves a job's lifecycle as server-sent events. The
// stream replays history (so a late subscriber still sees every
// point), follows live progress, and terminates cleanly after the
// terminal "done"/"error" event — the client's EOF is its completion
// signal. The result payload itself is fetched via GET /v1/jobs/{id};
// keeping it off the stream keeps events small.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, cancel := j.Subscribe()
	defer cancel()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // terminal event delivered; end the stream
			}
			blob, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, blob)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
