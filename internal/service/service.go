package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fdt/internal/core"
	"fdt/internal/experiments"
	"fdt/internal/runner"
	"fdt/internal/store"
)

// ErrDraining rejects submissions once shutdown has begun.
var ErrDraining = errors.New("service: draining")

// Config sizes the service.
type Config struct {
	// Workers is the number of jobs executed concurrently (default 2).
	// Each job may itself fan sweep points out over the runner pool;
	// identical in-flight runs across jobs collapse into one
	// simulation via the run cache's single-flight keys.
	Workers int
	// QueueCap bounds the admission queue (default 64, <0 unbounded).
	QueueCap int
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.QueueCap < 0 {
		c.QueueCap = 0 // queue treats 0 as unbounded
	}
	return c
}

// Service owns the job registry, the admission queue, and the worker
// pool that dispatches jobs through the experiments layer.
type Service struct {
	cfg Config
	q   *queue

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID uint64

	wg       sync.WaitGroup
	draining atomic.Bool

	done   atomic.Uint64
	failed atomic.Uint64
}

// New starts a service with cfg.Workers dispatcher goroutines.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{cfg: cfg, q: newQueue(cfg.QueueCap), jobs: map[string]*Job{}}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				j, ok := s.q.pop()
				if !ok {
					return
				}
				s.runJob(j)
			}
		}()
	}
	return s
}

// Submit validates, registers, and enqueues a job. The returned job is
// live: poll Snapshot or Subscribe to its stream.
func (s *Service) Submit(spec Spec) (*Job, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	j := newJob(id, spec)
	s.jobs[id] = j
	s.mu.Unlock()

	if err := s.q.push(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		return nil, err
	}
	return j, nil
}

// Job looks a registered job up by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runJob executes one job and publishes its lifecycle.
func (s *Service) runJob(j *Job) {
	j.start()
	o := j.Spec.options()
	o.Progress = func(ev experiments.ProgressEvent) {
		j.publish(Event{
			Type: "point", Job: j.ID,
			Workload: ev.Workload, Policy: ev.Policy, Threads: ev.Threads,
			Cycles: ev.Cycles, Index: ev.Index, Total: ev.Total,
		})
	}

	result, err := s.execute(j, o)
	var blob json.RawMessage
	if err == nil {
		blob, err = json.Marshal(result)
	}
	j.finish(blob, err)
	if err != nil {
		s.failed.Add(1)
	} else {
		s.done.Add(1)
	}
}

// execute runs the job body (panics from the simulator surface as
// job failures, not daemon crashes).
func (s *Service) execute(j *Job, o experiments.Options) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	switch j.Spec.Kind {
	case KindSweep:
		return experiments.RunSweepJob(o, j.Spec.Workload, j.Spec.Threads, j.Spec.Policies)
	case KindExperiment:
		entry, ok := experiments.LookupExperiment(o, j.Spec.Experiment)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", j.Spec.Experiment)
		}
		text, csv, data := entry.Run()
		return map[string]any{
			"experiment": entry.Name,
			"text":       text,
			"csv":        csv,
			"data":       data,
		}, nil
	default:
		return nil, fmt.Errorf("bad kind %q", j.Spec.Kind)
	}
}

// Drain stops admission, lets the queue empty, and waits for every
// worker to finish its current job (or ctx to expire). Safe to call
// more than once.
func (s *Service) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.q.close()
	doneCh := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(doneCh)
	}()
	select {
	case <-doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether shutdown has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// Stats is the /v1/stats payload: queue and job counters plus the
// full cache/store picture, the observability the load generator uses
// to compute cold-vs-warm ratios.
type Stats struct {
	Workers  int `json:"workers"`
	QueueCap int `json:"queue_cap"`
	Queued   int `json:"queued"`
	// Jobs* count terminal jobs since process start.
	JobsDone   uint64 `json:"jobs_done"`
	JobsFailed uint64 `json:"jobs_failed"`
	Draining   bool   `json:"draining"`

	// In-memory run cache (process lifetime).
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheComputes  uint64 `json:"cache_computes"`
	CacheEntries   int    `json:"cache_entries"`
	CacheBytes     uint64 `json:"cache_bytes"`
	CacheEvictions uint64 `json:"cache_evictions"`
	// Disk store (nil-safe zeros when no store is attached).
	StoreAttached bool         `json:"store_attached"`
	StoreDir      string       `json:"store_dir,omitempty"`
	Store         *store.Stats `json:"store,omitempty"`
	StoreEntries  int          `json:"store_entries,omitempty"`
	StoreBytes    int64        `json:"store_bytes,omitempty"`

	RunnerWorkers int `json:"runner_workers"`

	// SimEnergyTotal is the process-wide simulated energy, in
	// core-cycle units, summed over every uncached run: table-driven
	// Energy.Total on laddered machines, active core-cycles on the
	// flat path.
	SimEnergyTotal float64 `json:"sim_energy_total"`
}

// Stats snapshots the service and cache counters.
func (s *Service) Stats() Stats {
	hits, misses := core.RunCacheStats()
	entries, bytes, evictions := core.RunCacheUsage()
	st := Stats{
		Workers:        s.cfg.Workers,
		QueueCap:       s.cfg.QueueCap,
		Queued:         s.q.depth(),
		JobsDone:       s.done.Load(),
		JobsFailed:     s.failed.Load(),
		Draining:       s.draining.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheComputes:  core.RunCacheComputes(),
		CacheEntries:   entries,
		CacheBytes:     bytes,
		CacheEvictions: evictions,
		RunnerWorkers:  runner.Workers(),
		SimEnergyTotal: core.SimEnergyTotal(),
	}
	if rs := core.RunStore(); rs != nil {
		st.StoreAttached = true
		st.StoreDir = rs.Dir()
		stats := rs.Stats()
		st.Store = &stats
		st.StoreEntries, st.StoreBytes = rs.Len()
	}
	return st
}
