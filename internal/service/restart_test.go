package service

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"fdt/internal/core"
)

// TestRestartServedFromStore is the PR's restart-resilience
// acceptance test: run a sweep through the service backed by a disk
// store, tear the whole process state down (service drained, run
// cache reset — the in-process equivalent of killing the daemon),
// bring a fresh service up on the same store directory, and resubmit.
// Every run must be a store hit: zero recomputes, and the result
// bytes must be identical to the first incarnation's.
func TestRestartServedFromStore(t *testing.T) {
	resetCache(t)
	dir := t.TempDir()

	// --- first incarnation: cold, computes and persists ---
	if _, err := core.OpenRunStore(dir); err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 2})
	ts1 := httptest.NewServer(s1.Handler())

	v, resp := postJob(t, ts1, smallSweep("restart"))
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	cold := pollDone(t, ts1, v.ID)
	if len(cold.Result) == 0 {
		t.Fatal("cold run has no result")
	}
	if got := core.RunCacheComputes(); got != 2 {
		t.Fatalf("cold computes = %d, want 2", got)
	}
	st := getStats(t, ts1)
	if !st.StoreAttached || st.Store == nil || st.Store.Puts != 2 {
		t.Fatalf("store did not persist the runs: %+v", st)
	}
	if st.StoreEntries != 2 {
		t.Fatalf("store entries = %d, want 2", st.StoreEntries)
	}

	drain(t, s1)
	ts1.Close()

	// --- simulated restart: wipe in-process state, reopen same dir ---
	core.DetachRunStore()
	core.ResetRunCache()
	if _, err := core.OpenRunStore(dir); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{Workers: 2})
	defer drain(t, s2)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	v2, _ := postJob(t, ts2, smallSweep("restart"))
	warm := pollDone(t, ts2, v2.ID)

	if got := core.RunCacheComputes(); got != 0 {
		t.Fatalf("warm incarnation recomputed %d runs, want 0 (all store hits)", got)
	}
	if got := core.RunCacheBackingHits(); got != 2 {
		t.Fatalf("backing hits = %d, want 2", got)
	}
	st2 := getStats(t, ts2)
	if st2.Store == nil || st2.Store.Hits != 2 || st2.Store.Misses != 0 {
		t.Fatalf("store stats after restart = %+v, want 2 hits / 0 misses", st2.Store)
	}
	if !bytes.Equal(cold.Result, warm.Result) {
		t.Fatalf("restart broke byte-identity:\ncold: %s\nwarm: %s", cold.Result, warm.Result)
	}
}

// TestStoreSharedAcrossDistinctJobs: two different clients submitting
// the same sweep against a store-backed service compute once and hit
// the store/memory cache afterwards — the daemon's whole reason to
// exist.
func TestStoreSharedAcrossDistinctJobs(t *testing.T) {
	resetCache(t)
	if _, err := core.OpenRunStore(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	va, _ := postJob(t, ts, smallSweep("alice"))
	a := pollDone(t, ts, va.ID)
	vb, _ := postJob(t, ts, smallSweep("bob"))
	b := pollDone(t, ts, vb.ID)

	if got := core.RunCacheComputes(); got != 2 {
		t.Fatalf("computes = %d, want 2 (second job fully cached)", got)
	}
	if !bytes.Equal(a.Result, b.Result) {
		t.Fatal("identical specs produced different results")
	}
}
