package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJob(t *testing.T, ts *httptest.Server, spec Spec) (View, *http.Response) {
	t.Helper()
	blob, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	json.NewDecoder(resp.Body).Decode(&v)
	return v, resp
}

func getJob(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: %d", id, resp.StatusCode)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func pollDone(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if v.Status == StatusDone {
			return v
		}
		if v.Status == StatusFailed {
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return View{}
}

func getStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHTTPSubmitPollResult(t *testing.T) {
	resetCache(t)
	s := New(Config{Workers: 1})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, resp := postJob(t, ts, smallSweep("http"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if v.ID == "" || (v.Status != StatusQueued && v.Status != StatusRunning) {
		t.Fatalf("submit view = %+v", v)
	}

	final := pollDone(t, ts, v.ID)
	if len(final.Result) == 0 {
		t.Fatal("done job has no result")
	}
	var res struct {
		Sweep []struct{ TotalCycles uint64 } `json:"sweep"`
	}
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Sweep) != 2 {
		t.Fatalf("result sweep has %d points, want 2", len(res.Sweep))
	}

	st := getStats(t, ts)
	if st.JobsDone != 1 || st.CacheComputes != 2 {
		t.Errorf("stats = done %d computes %d, want 1 / 2", st.JobsDone, st.CacheComputes)
	}
}

func TestHTTPErrors(t *testing.T) {
	resetCache(t)
	s := New(Config{Workers: 1})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Bad spec -> 400.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"nosuch","threads":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec status = %d, want 400", resp.StatusCode)
	}

	// Unknown field -> 400 (spec typos must not silently no-op).
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"pagemine","treads":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d, want 400", resp.StatusCode)
	}

	// Unknown job -> 404.
	resp, err = http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}

	// Healthz flips to 503 on drain.
	resp, _ = http.Get(ts.URL + "/v1/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
	drain(t, s)
	resp, _ = http.Get(ts.URL + "/v1/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	v, resp2 := postJob(t, ts, smallSweep("late"))
	_ = v
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", resp2.StatusCode)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	Name string
	Data Event
}

// readSSE consumes a stream to EOF, which must arrive on its own
// (clean termination after the terminal event).
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	defer resp.Body.Close()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.Data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		case line == "":
			if cur.Name != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return events
}

func TestSSEStreamTerminatesCleanly(t *testing.T) {
	resetCache(t)
	s := New(Config{Workers: 1})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, _ := postJob(t, ts, smallSweep("sse"))

	// Subscribe immediately — the stream must replay whatever already
	// happened and then follow the job live to termination.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}
	events := readSSE(t, resp) // returns only on clean EOF

	var names []string
	points := 0
	for _, ev := range events {
		names = append(names, ev.Name)
		if ev.Name == "point" {
			points++
			if ev.Data.Cycles == 0 || ev.Data.Workload != "pagemine" {
				t.Errorf("malformed point event: %+v", ev.Data)
			}
		}
	}
	if len(names) == 0 || names[0] != "queued" || names[len(names)-1] != "done" {
		t.Fatalf("SSE lifecycle = %v, want queued...done", names)
	}
	if points != 2 {
		t.Errorf("SSE carried %d points, want 2 (events %v)", points, names)
	}

	// A subscriber arriving after completion still gets the full
	// replay and immediate termination.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	replay := readSSE(t, resp)
	if len(replay) != len(events) {
		t.Errorf("late replay has %d events, live stream had %d", len(replay), len(events))
	}
}

// Per-client fairness end to end: with one worker, a flood from
// client A must not delay client B's single job behind the whole
// flood. We assert on completion order: B finishes before A's last
// job.
func TestHTTPFairnessAcrossClients(t *testing.T) {
	resetCache(t)
	s := New(Config{Workers: 1})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	flood := make([]View, 6)
	for i := range flood {
		flood[i], _ = postJob(t, ts, smallSweep("flood"))
		if flood[i].ID == "" {
			t.Fatal("flood submit failed")
		}
	}
	single, _ := postJob(t, ts, Spec{Client: "single", Workload: "pagemine", Threads: []int{6}, Cores: 8})
	if single.ID == "" {
		t.Fatal("single submit failed")
	}

	singleDone := pollDone(t, ts, single.ID)
	lastFlood := pollDone(t, ts, flood[len(flood)-1].ID)
	if singleDone.Finished == nil || lastFlood.Finished == nil {
		t.Fatal("missing finish timestamps")
	}
	if singleDone.Finished.After(*lastFlood.Finished) {
		t.Errorf("fairness violated: single client's job finished %v, after the flood's last job %v",
			singleDone.Finished, lastFlood.Finished)
	}
}

func TestStatsEndpointShape(t *testing.T) {
	resetCache(t)
	s := New(Config{Workers: 3, QueueCap: 17})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := getStats(t, ts)
	if st.Workers != 3 || st.QueueCap != 17 || st.StoreAttached {
		t.Errorf("stats = %+v, want workers 3, cap 17, no store", st)
	}
	if st.RunnerWorkers < 1 {
		t.Errorf("runner workers = %d", st.RunnerWorkers)
	}
}

func TestHTTPPowerSpecValidation(t *testing.T) {
	resetCache(t)
	s := New(Config{Workers: 1})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Malformed budgets and ladders -> 400 before any simulation.
	for _, body := range []string{
		`{"workload":"ed","threads":[1],"power_budget":-2}`,
		`{"workload":"ed","threads":[1],"freq_ladder_mhz":[800,1600]}`,
		`{"workload":"ed","threads":[1],"freq_ladder_mhz":[2000,2000]}`,
		`{"workload":"ed","threads":[1],"freq_ladder_mhz":[2000,-1]}`,
		`{"workload":"ed","power_budget":5,"policies":["hillclimb"]}`,
		`{"workload":"ed","power_budget":5,"policies":["hybrid"]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s status = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestHTTPPowerSweepJob(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulated sweep")
	}
	resetCache(t)
	s := New(Config{Workers: 1})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, resp := postJob(t, ts, Spec{
		Workload: "ed", Threads: []int{4}, Policies: []string{"sat+bat"},
		Cores: 16, PowerBudget: 5.6,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	final := pollDone(t, ts, v.ID)
	var res struct {
		Sweep []struct {
			Energy *struct {
				Total    float64 `json:"Total"`
				AvgPower float64 `json:"AvgPower"`
			} `json:",omitempty"`
		} `json:"sweep"`
		Policies []struct {
			Kernels []struct {
				Decision struct {
					Freq string `json:"Freq"`
				} `json:"Decision"`
			} `json:"Kernels"`
		} `json:"policies"`
	}
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Sweep) != 1 || res.Sweep[0].Energy == nil || res.Sweep[0].Energy.Total <= 0 {
		t.Errorf("budgeted sweep point carries no energy accounting: %s", final.Result[:min(len(final.Result), 400)])
	}
	if len(res.Policies) != 1 || len(res.Policies[0].Kernels) == 0 ||
		!strings.HasPrefix(res.Policies[0].Kernels[0].Decision.Freq, "f") {
		t.Error("budgeted policy decision carries no P-state name")
	}
	if st := getStats(t, ts); st.SimEnergyTotal <= 0 {
		t.Errorf("stats sim_energy_total = %g, want > 0", st.SimEnergyTotal)
	}
}
