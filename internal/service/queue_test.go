package service

import (
	"fmt"
	"sync"
	"testing"
)

func qjob(client string, n int) *Job {
	return newJob(fmt.Sprintf("%s-%d", client, n), Spec{Client: client})
}

// A flooding client must not starve another client's single job:
// round-robin serves B's first job second, not eleventh.
func TestQueueFairness(t *testing.T) {
	q := newQueue(0)
	for i := 0; i < 10; i++ {
		if err := q.push(qjob("flood", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.push(qjob("small", 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("small", 1)); err != nil {
		t.Fatal(err)
	}

	var order []string
	for i := 0; i < 12; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue closed early", i)
		}
		order = append(order, j.ID)
	}
	// Interleave while both clients have backlog, then flood drains.
	want := []string{
		"flood-0", "small-0", "flood-1", "small-1",
		"flood-2", "flood-3", "flood-4", "flood-5",
		"flood-6", "flood-7", "flood-8", "flood-9",
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", order, want)
		}
	}
}

// Per-client FIFO order must hold inside each client's backlog even
// as the ring rotates across three clients.
func TestQueuePerClientFIFO(t *testing.T) {
	q := newQueue(0)
	for i := 0; i < 4; i++ {
		for _, c := range []string{"a", "b", "c"} {
			if err := q.push(qjob(c, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	seen := map[string]int{}
	for i := 0; i < 12; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		var n int
		fmt.Sscanf(j.ID, j.Spec.Client+"-%d", &n)
		if n != seen[j.Spec.Client] {
			t.Fatalf("client %s served out of order: got %d, want %d",
				j.Spec.Client, n, seen[j.Spec.Client])
		}
		seen[j.Spec.Client]++
	}
}

func TestQueueBoundedAdmission(t *testing.T) {
	q := newQueue(3)
	for i := 0; i < 3; i++ {
		if err := q.push(qjob("c", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.push(qjob("c", 3)); err != ErrQueueFull {
		t.Fatalf("push over cap = %v, want ErrQueueFull", err)
	}
	// Popping one frees one admission slot.
	if _, ok := q.pop(); !ok {
		t.Fatal("pop failed")
	}
	if err := q.push(qjob("c", 4)); err != nil {
		t.Fatalf("push after pop = %v, want nil", err)
	}
}

// close drains the backlog before reporting closed, and rejects new
// pushes immediately.
func TestQueueCloseDrains(t *testing.T) {
	q := newQueue(0)
	q.push(qjob("c", 0))
	q.push(qjob("c", 1))
	q.close()
	if err := q.push(qjob("c", 2)); err != ErrQueueClosed {
		t.Fatalf("push after close = %v, want ErrQueueClosed", err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatalf("pop %d: backlog not drained", i)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop after drain reported a job")
	}
}

// Concurrent producers and consumers: every pushed job is popped
// exactly once, blocked pops wake on close. Run under -race this is
// the admission-queue half of the PR's race gauntlet.
func TestQueueConcurrent(t *testing.T) {
	q := newQueue(0)
	const producers, perProducer, consumers = 8, 50, 4

	var popped sync.Map
	var wg sync.WaitGroup
	var consumed sync.WaitGroup
	for c := 0; c < consumers; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				j, ok := q.pop()
				if !ok {
					return
				}
				if _, dup := popped.LoadOrStore(j.ID, true); dup {
					t.Errorf("job %s popped twice", j.ID)
				}
			}
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.push(qjob(fmt.Sprintf("p%d", p), i)); err != nil {
					t.Errorf("push: %v", err)
				}
			}
		}(p)
	}
	wg.Wait()
	q.close()
	consumed.Wait()

	n := 0
	popped.Range(func(_, _ any) bool { n++; return true })
	if n != producers*perProducer {
		t.Fatalf("popped %d jobs, want %d", n, producers*perProducer)
	}
}
