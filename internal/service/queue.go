// Package service is the simulation-as-a-service layer: a job model,
// a bounded admission queue with per-client fairness, a dispatcher
// that executes jobs through internal/experiments (and therefore
// through internal/runner's single-flight run cache and any attached
// disk store), and an HTTP/JSON front end with SSE progress
// streaming. cmd/fdtd wraps it in a daemon.
package service

import (
	"errors"
	"sync"
)

// ErrQueueFull rejects a submission that would exceed the queue's
// bound. Admission control is explicit back-pressure: the HTTP layer
// maps it to 429 so clients retry with delay instead of piling jobs
// onto an overloaded daemon.
var ErrQueueFull = errors.New("service: admission queue full")

// ErrQueueClosed rejects submissions after drain has begun.
var ErrQueueClosed = errors.New("service: queue closed (draining)")

// queue is a bounded multi-client FIFO with round-robin fairness:
// jobs are queued per client and dequeued one client at a time in
// rotation, so a client that floods the queue cannot starve another
// client's single job — B's first job is served after at most one job
// from every other active client, regardless of how many jobs A has
// ahead of it in arrival order.
//
// The capacity bound is global (total queued jobs across clients);
// fairness governs ordering, admission governs volume.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	n      int
	closed bool
	// perClient holds each client's FIFO backlog; ring rotates the
	// client names that currently have backlog.
	perClient map[string][]*Job
	ring      []string
	next      int
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity, perClient: map[string][]*Job{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits a job under its spec's client, or rejects it.
func (q *queue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.cap > 0 && q.n >= q.cap {
		return ErrQueueFull
	}
	client := j.Spec.Client
	if len(q.perClient[client]) == 0 {
		q.ring = append(q.ring, client)
	}
	q.perClient[client] = append(q.perClient[client], j)
	q.n++
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available and returns it, rotating across
// clients. After close it drains the backlog, then reports ok=false.
func (q *queue) pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
	client := q.ring[q.next]
	fifo := q.perClient[client]
	j, fifo = fifo[0], fifo[1:]
	q.n--
	if len(fifo) == 0 {
		delete(q.perClient, client)
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		// q.next now already points at the following client.
	} else {
		q.perClient[client] = fifo
		q.next++
	}
	return j, true
}

// close stops admission; waiting pops drain the backlog then return
// ok=false. Idempotent.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth reports the queued-job count.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
