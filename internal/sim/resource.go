package sim

// Resource models a single server with deterministic service times —
// an off-chip bus, a DRAM bank, an L3 bank port. Callers reserve the
// resource for a number of cycles; if it is busy the caller's process
// waits until the earliest free cycle. Reservation order is
// first-come-first-served in simulated time.
//
// The reservation protocol is "reserve then wait": the requester
// immediately extends the resource's horizon and then sleeps until its
// own slot begins. Because only one process runs at a time, this is
// race-free and serves requests in arrival order.
type Resource struct {
	name string
	// nextFree is the first cycle at which the resource is idle.
	nextFree uint64
	// busy accumulates total occupied cycles (the basis for
	// utilization counters such as the paper's BUS_DRDY_CLOCKS).
	busy uint64
	// grants counts completed reservations.
	grants uint64
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name reports the diagnostic name.
func (r *Resource) Name() string { return r.name }

// BusyCycles reports the cumulative cycles the resource has been
// reserved for. This includes reservations whose slot lies in the
// future of the current clock; sample it only at points where the
// model guarantees no in-flight reservations, or treat it as the
// monotone counter hardware would expose.
func (r *Resource) BusyCycles() uint64 { return r.busy }

// Grants reports the number of reservations made so far.
func (r *Resource) Grants() uint64 { return r.grants }

// NextFree reports the first cycle at which the resource is idle.
func (r *Resource) NextFree() uint64 { return r.nextFree }

// Acquire reserves the resource for occupancy cycles and blocks p
// until the reserved slot begins. It returns the cycle at which the
// slot begins; when Acquire returns, the clock equals that cycle and
// the caller owns the resource until start+occupancy.
func (r *Resource) Acquire(p *Proc, occupancy uint64) (start uint64) {
	now := p.Now()
	start = r.nextFree
	if start < now {
		start = now
	}
	r.nextFree = start + occupancy
	r.busy += occupancy
	r.grants++
	if start > now {
		p.WaitUntil(start)
	}
	return start
}

// AcquireAndHold reserves the resource for occupancy cycles and blocks
// p until the reservation completes (start+occupancy). This is the
// common pattern for a requester that cannot proceed until its
// transfer finishes.
func (r *Resource) AcquireAndHold(p *Proc, occupancy uint64) (start uint64) {
	start = r.Acquire(p, occupancy)
	p.WaitUntil(start + occupancy)
	return start
}

// ReserveAt makes a fire-and-forget reservation: the slot starts no
// earlier than now, extends the horizon, and accrues busy cycles, but
// the caller does not block. Used for posted writebacks that consume
// bandwidth without stalling the evicting core.
func (r *Resource) ReserveAt(now, occupancy uint64) (start uint64) {
	start = r.nextFree
	if start < now {
		start = now
	}
	r.nextFree = start + occupancy
	r.busy += occupancy
	r.grants++
	return start
}

// ResourceState is a resource's complete checkpointable state: the
// reservation horizon plus the utilization counters.
type ResourceState struct {
	NextFree uint64
	Busy     uint64
	Grants   uint64
}

// State captures the resource's current state. Meaningful at any
// time; for checkpoint/restore use it only at quiescent points, where
// no process is sleeping on an in-flight reservation.
func (r *Resource) State() ResourceState {
	return ResourceState{NextFree: r.nextFree, Busy: r.busy, Grants: r.grants}
}

// Restore overwrites the resource's state from a checkpoint.
func (r *Resource) Restore(st ResourceState) {
	r.nextFree = st.NextFree
	r.busy = st.Busy
	r.grants = st.Grants
}

// Reset clears utilization counters but keeps the reservation horizon,
// so resetting mid-simulation does not retroactively free the
// resource.
func (r *Resource) Reset() {
	r.busy = 0
	r.grants = 0
}
