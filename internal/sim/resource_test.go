package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceUncontended(t *testing.T) {
	e := NewEngine()
	r := NewResource("bus")
	e.Spawn("a", func(p *Proc) {
		start := r.Acquire(p, 32)
		if start != 0 {
			t.Errorf("start = %d, want 0", start)
		}
		if p.Now() != 0 {
			t.Errorf("acquire moved clock to %d", p.Now())
		}
	})
	e.Run()
	if r.BusyCycles() != 32 {
		t.Errorf("busy = %d, want 32", r.BusyCycles())
	}
	if r.Grants() != 1 {
		t.Errorf("grants = %d, want 1", r.Grants())
	}
}

func TestResourceSerializesContenders(t *testing.T) {
	e := NewEngine()
	r := NewResource("bus")
	starts := map[string]uint64{}
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			starts[name] = r.Acquire(p, 10)
		})
	}
	e.Run()
	// All three request at cycle 0; FIFO slots are 0, 10, 20.
	if starts["a"] != 0 || starts["b"] != 10 || starts["c"] != 20 {
		t.Errorf("starts = %v, want a:0 b:10 c:20", starts)
	}
	if r.BusyCycles() != 30 {
		t.Errorf("busy = %d, want 30", r.BusyCycles())
	}
}

func TestResourceAcquireAndHoldBlocksFullSlot(t *testing.T) {
	e := NewEngine()
	r := NewResource("bank")
	var end uint64
	e.Spawn("a", func(p *Proc) {
		r.AcquireAndHold(p, 200)
		end = p.Now()
	})
	e.Run()
	if end != 200 {
		t.Errorf("hold ended at %d, want 200", end)
	}
}

func TestResourceIdleGapNotCounted(t *testing.T) {
	e := NewEngine()
	r := NewResource("bus")
	e.Spawn("a", func(p *Proc) {
		r.AcquireAndHold(p, 10)
		p.Advance(100) // idle gap
		r.AcquireAndHold(p, 10)
	})
	e.Run()
	if r.BusyCycles() != 20 {
		t.Errorf("busy = %d, want 20 (idle gap must not count)", r.BusyCycles())
	}
	if e.Now() != 120 {
		t.Errorf("clock = %d, want 120", e.Now())
	}
}

func TestResourceResetKeepsHorizon(t *testing.T) {
	e := NewEngine()
	r := NewResource("bus")
	e.Spawn("a", func(p *Proc) {
		r.Acquire(p, 50) // occupied until cycle 50
		r.Reset()
		start := r.Acquire(p, 10)
		if start != 50 {
			t.Errorf("post-reset start = %d, want 50 (horizon kept)", start)
		}
	})
	e.Run()
	if r.BusyCycles() != 10 {
		t.Errorf("busy = %d, want 10 after reset", r.BusyCycles())
	}
}

func TestPropertyResourceBusyEqualsSumOfOccupancies(t *testing.T) {
	f := func(occs []uint8) bool {
		e := NewEngine()
		r := NewResource("x")
		var want uint64
		for i, o := range occs {
			if i >= 32 {
				break
			}
			o := uint64(o%64 + 1)
			want += o
			e.Spawn("p", func(p *Proc) { r.AcquireAndHold(p, o) })
		}
		e.Run()
		return r.BusyCycles() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyResourceNeverOverlaps(t *testing.T) {
	// Slots granted by a resource must be disjoint: with N requests of
	// equal occupancy arriving at cycle 0, the k-th start is k*occ.
	f := func(n uint8, occ uint8) bool {
		count := int(n%16) + 1
		o := uint64(occ%32) + 1
		e := NewEngine()
		r := NewResource("x")
		var starts []uint64
		for i := 0; i < count; i++ {
			e.Spawn("p", func(p *Proc) {
				starts = append(starts, r.Acquire(p, o))
			})
		}
		e.Run()
		if len(starts) != count {
			return false
		}
		for k, s := range starts {
			if s != uint64(k)*o {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
