package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestSingleProcAdvances(t *testing.T) {
	e := NewEngine()
	var at []uint64
	e.Spawn("a", func(p *Proc) {
		at = append(at, p.Now())
		p.Advance(10)
		at = append(at, p.Now())
		p.Advance(5)
		at = append(at, p.Now())
	})
	e.Run()
	want := []uint64{0, 10, 15}
	if len(at) != len(want) {
		t.Fatalf("got %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("step %d: at cycle %d, want %d", i, at[i], want[i])
		}
	}
	if e.Now() != 15 {
		t.Errorf("final clock %d, want 15", e.Now())
	}
}

func TestProcsInterleaveByTime(t *testing.T) {
	e := NewEngine()
	var order []string
	log := func(s string, p *Proc) { order = append(order, fmt.Sprintf("%s@%d", s, p.Now())) }
	e.Spawn("a", func(p *Proc) {
		log("a", p)
		p.Advance(10)
		log("a", p)
	})
	e.Spawn("b", func(p *Proc) {
		log("b", p)
		p.Advance(3)
		log("b", p)
		p.Advance(20)
		log("b", p)
	})
	e.Run()
	want := []string{"a@0", "b@0", "b@3", "a@10", "b@23"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestFIFOTieBreakAtSameCycle(t *testing.T) {
	// Processes scheduled for the same cycle run in scheduling order.
	e := NewEngine()
	var order []string
	for _, name := range []string{"p0", "p1", "p2"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			order = append(order, name)
			p.Advance(7)
			order = append(order, name)
		})
	}
	e.Run()
	want := []string{"p0", "p1", "p2", "p0", "p1", "p2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestParkAndWake(t *testing.T) {
	e := NewEngine()
	var consumer *Proc
	var got uint64
	consumer = e.Spawn("consumer", func(p *Proc) {
		p.Park()
		got = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Advance(42)
		p.Wake(consumer)
	})
	e.Run()
	if got != 42 {
		t.Errorf("consumer woke at %d, want 42", got)
	}
}

func TestWaitUntilPastClampsToNow(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		p.Advance(10)
		p.WaitUntil(3) // in the past: must not move time backwards
		if p.Now() != 10 {
			t.Errorf("clock went backwards to %d", p.Now())
		}
	})
	e.Run()
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected deadlock panic, got none")
		}
	}()
	e := NewEngine()
	e.Spawn("stuck", func(p *Proc) { p.Park() })
	e.Run()
}

func TestWakeUnparkedPanics(t *testing.T) {
	e := NewEngine()
	a := e.Spawn("a", func(p *Proc) { p.Advance(100) })
	e.Spawn("b", func(p *Proc) {
		defer func() {
			if r := recover(); r == nil {
				t.Error("expected panic waking unparked process")
			}
		}()
		p.Wake(a) // a is queued, not parked
	})
	e.Run()
}

func TestSpawnFromWithinProc(t *testing.T) {
	e := NewEngine()
	var childAt uint64
	e.Spawn("parent", func(p *Proc) {
		p.Advance(5)
		p.eng.Spawn("child", func(c *Proc) {
			childAt = c.Now()
			c.Advance(1)
		})
		p.Advance(10)
	})
	e.Run()
	if childAt != 5 {
		t.Errorf("child first ran at %d, want 5", childAt)
	}
	if e.Now() != 15 {
		t.Errorf("final clock %d, want 15", e.Now())
	}
}

func TestYieldGivesWayToSameCycleEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	var b *Proc
	e.Spawn("a", func(p *Proc) {
		p.Yield() // b's initial event is pending at cycle 0
		order = append(order, "a")
	})
	b = e.Spawn("b", func(p *Proc) {
		order = append(order, "b")
	})
	_ = b
	e.Run()
	if fmt.Sprint(order) != fmt.Sprint([]string{"b", "a"}) {
		t.Errorf("order = %v, want [b a]", order)
	}
}

func TestProcPanicPropagatesToRun(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected Run to re-raise the process panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "boom") || !strings.Contains(msg, "faulty") {
			t.Errorf("panic message %q missing process name or cause", msg)
		}
	}()
	e := NewEngine()
	e.Spawn("faulty", func(p *Proc) {
		p.Advance(5)
		panic("boom")
	})
	e.Run()
}

func TestLiveCount(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) { p.Advance(1) })
	e.Spawn("b", func(p *Proc) { p.Advance(2) })
	if e.Live() != 2 {
		t.Fatalf("live = %d before run, want 2", e.Live())
	}
	e.Run()
	if e.Live() != 0 {
		t.Fatalf("live = %d after run, want 0", e.Live())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	// The same model must produce an identical event trace on every
	// run, regardless of host goroutine scheduling.
	trace := func() []string {
		e := NewEngine()
		var tr []string
		e.stepHook = func(tm uint64, p *Proc) {
			tr = append(tr, fmt.Sprintf("%d:%s", tm, p.Name()))
		}
		r := NewResource("bus")
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("w%d", i)
			delay := uint64(i % 3)
			e.Spawn(name, func(p *Proc) {
				p.Advance(delay)
				for j := 0; j < 4; j++ {
					r.AcquireAndHold(p, 10)
					p.Advance(uint64(j))
				}
			})
		}
		e.Run()
		return tr
	}
	first := fmt.Sprint(trace())
	for i := 0; i < 5; i++ {
		if got := fmt.Sprint(trace()); got != first {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, got, first)
		}
	}
}

func TestPropertyClockMonotone(t *testing.T) {
	// Property: for any set of random process schedules the observed
	// dispatch times are non-decreasing.
	f := func(delays []uint16) bool {
		if len(delays) > 64 {
			delays = delays[:64]
		}
		e := NewEngine()
		var last uint64
		ok := true
		e.stepHook = func(tm uint64, p *Proc) {
			if tm < last {
				ok = false
			}
			last = tm
		}
		for i, d := range delays {
			d := uint64(d % 1000)
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Advance(d)
				p.Advance(d / 2)
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
