// Package sim implements a deterministic, process-oriented
// discrete-event simulation kernel.
//
// A simulation is a set of processes (Proc) that advance a shared
// simulated clock by waiting: WaitUntil schedules the process at an
// absolute cycle, Park suspends it until another process Wakes it.
// The engine resumes exactly one process at a time — the one with the
// smallest pending event time, FIFO among ties — so simulations are
// fully deterministic regardless of host goroutine scheduling.
//
// The kernel knows nothing about CPUs, caches or buses; those live in
// higher layers (internal/mem, internal/cpu) and are expressed purely
// in terms of WaitUntil/Park/Wake.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Engine owns the simulated clock and the pending-event queue.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now    uint64
	seq    uint64
	events eventHeap
	live   map[*Proc]struct{}
	fault  *procFault
	// stepHook, when non-nil, is invoked before each event dispatch.
	// Used by tests to observe scheduling order.
	stepHook func(t uint64, p *Proc)
}

// procFault records a panic raised inside a process body so Run can
// re-raise it on the caller's goroutine.
type procFault struct {
	proc  *Proc
	value any
}

// NewEngine returns an engine with the clock at cycle 0 and no
// processes.
func NewEngine() *Engine {
	return &Engine{live: make(map[*Proc]struct{})}
}

// Now reports the current simulated cycle. It is only meaningful while
// the engine is running or after Run returns.
func (e *Engine) Now() uint64 { return e.now }

// Live reports the number of processes that have been spawned and have
// not yet finished.
func (e *Engine) Live() int { return len(e.live) }

type event struct {
	t   uint64
	seq uint64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); ev := old[n-1]; *h = old[:n-1]; return ev }
func (e *Engine) schedule(t uint64, p *Proc) {
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, p: p})
}

// Proc is a simulated process: a goroutine that cooperates with the
// engine through WaitUntil, Advance, Park and Wake. All Proc methods
// must be called from the process's own body function, except Wake,
// which is called by whichever process is currently running.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	parked bool
	done   bool
	// waking guards against double-wake while an event is already
	// queued for this process.
	waking bool
}

// Name reports the diagnostic name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Now reports the current simulated cycle.
func (p *Proc) Now() uint64 { return p.eng.now }

// Spawn creates a process that will first run at the current simulated
// time. The body runs on its own goroutine but only while the engine
// has handed it the baton, so body code may freely touch shared model
// state without host-level locking.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.live[p] = struct{}{}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				// Surface model-code panics from the engine's Run so
				// they carry the process name and reach the caller's
				// goroutine instead of crashing the host process.
				e.fault = &procFault{proc: p, value: r}
			}
			p.done = true
			delete(e.live, p)
			p.yield <- struct{}{}
		}()
		body(p)
	}()
	e.schedule(e.now, p)
	return p
}

// WaitUntil blocks the process until the simulated clock reaches t.
// Waiting for a time in the past (t <= now) re-queues the process at
// the current time, which still yields to any already-pending events
// at this cycle.
func (p *Proc) WaitUntil(t uint64) {
	if t < p.eng.now {
		t = p.eng.now
	}
	p.eng.schedule(t, p)
	p.yield <- struct{}{}
	<-p.resume
}

// Advance blocks the process for d cycles.
func (p *Proc) Advance(d uint64) { p.WaitUntil(p.eng.now + d) }

// Yield re-queues the process at the current cycle, letting any other
// process scheduled for this cycle run first.
func (p *Proc) Yield() { p.WaitUntil(p.eng.now) }

// Park suspends the process indefinitely. It returns when another
// process calls Wake on it. A parked process holds no queue entry, so
// a simulation in which every live process is parked is deadlocked and
// Run panics with a diagnostic.
func (p *Proc) Park() {
	p.parked = true
	p.yield <- struct{}{}
	<-p.resume
}

// Wake schedules a parked process q to resume at the current simulated
// time. Waking a process that is not parked is a programming error in
// the model layer and panics. Wake must be called by the currently
// running process (or before Run starts).
func (p *Proc) Wake(q *Proc) {
	p.eng.wake(q)
}

func (e *Engine) wake(q *Proc) {
	if !q.parked {
		panic(fmt.Sprintf("sim: Wake(%s): process is not parked", q.name))
	}
	q.parked = false
	e.schedule(e.now, q)
}

// Run dispatches events until none remain. It panics if live processes
// remain parked with an empty event queue (model deadlock), naming the
// stuck processes.
func (e *Engine) Run() {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.t < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = ev.t
		if ev.p.done {
			continue
		}
		if e.stepHook != nil {
			e.stepHook(ev.t, ev.p)
		}
		ev.p.resume <- struct{}{}
		<-ev.p.yield
		if e.fault != nil {
			f := e.fault
			e.fault = nil
			panic(fmt.Sprintf("sim: process %q panicked: %v", f.proc.name, f.value))
		}
	}
	if len(e.live) > 0 {
		names := make([]string, 0, len(e.live))
		for p := range e.live {
			names = append(names, p.name)
		}
		sort.Strings(names)
		panic(fmt.Sprintf("sim: deadlock: %d processes parked forever: %v", len(names), names))
	}
}
