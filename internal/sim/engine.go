// Package sim implements a deterministic, process-oriented
// discrete-event simulation kernel.
//
// A simulation is a set of processes (Proc) that advance a shared
// simulated clock by waiting: WaitUntil schedules the process at an
// absolute cycle, Park suspends it until another process Wakes it.
// The engine resumes exactly one process at a time — the one with the
// smallest pending event time, FIFO among ties — so simulations are
// fully deterministic regardless of host goroutine scheduling.
//
// The kernel knows nothing about CPUs, caches or buses; those live in
// higher layers (internal/mem, internal/cpu) and are expressed purely
// in terms of WaitUntil/Park/Wake.
//
// One Engine simulates one execution on one host goroutine chain; it
// is not safe for concurrent use. Host-level parallelism belongs one
// layer up (internal/runner), across independent engines.
package sim

import (
	"fmt"
	"sort"

	"fdt/internal/trace"
)

// initialHeapCap pre-sizes the future-event heap so steady-state
// simulations (a few hundred live processes in the full machine
// model) never grow it.
const initialHeapCap = 1024

// Engine owns the simulated clock and the pending-event queue.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now uint64
	seq uint64
	// events holds future events only (t > now) ordered by (t, seq);
	// events at the current cycle live in the cur FIFO. Keeping the
	// same-cycle events out of the heap gives the dominant
	// schedule-at-now case (Yield, Wake, resource handoff) an O(1)
	// fast path instead of an O(log n) sift.
	events eventHeap
	// cur is the FIFO of processes runnable at the current cycle;
	// curHead indexes the next one to dispatch.
	cur     []*Proc
	curHead int
	// dispatched counts events delivered to processes over the
	// engine's lifetime — the "simulator throughput" numerator.
	dispatched uint64
	live       map[*Proc]struct{}
	fault      *procFault
	// stepHook, when non-nil, is invoked before each event dispatch.
	// Used by tests to observe scheduling order.
	stepHook func(t uint64, p *Proc)
	// tracer receives kernel-level trace events (dispatches, blocked
	// spans) when simTrace is set; the cached boolean keeps the
	// disabled case a single predictable branch in the dispatch loop.
	tracer   *trace.Tracer
	simTrace bool
}

// procFault records a panic raised inside a process body so Run can
// re-raise it on the caller's goroutine.
type procFault struct {
	proc  *Proc
	value any
}

// NewEngine returns an engine with the clock at cycle 0 and no
// processes.
func NewEngine() *Engine {
	return &Engine{
		events: make(eventHeap, 0, initialHeapCap),
		cur:    make([]*Proc, 0, 64),
		live:   make(map[*Proc]struct{}),
	}
}

// NewEngineAt returns an engine whose clock starts at cycle now — the
// restore half of the checkpoint protocol. A restored simulation's
// processes are spawned fresh (goroutine stacks cannot be
// checkpointed), which is why checkpoints are only taken at quiescent
// points where no process is mid-flight.
func NewEngineAt(now uint64) *Engine {
	e := NewEngine()
	e.now = now
	return e
}

// Now reports the current simulated cycle. It is only meaningful while
// the engine is running or after Run returns.
func (e *Engine) Now() uint64 { return e.now }

// Live reports the number of processes that have been spawned and have
// not yet finished.
func (e *Engine) Live() int { return len(e.live) }

// Events reports the number of events the engine has dispatched so
// far — the basis for events/second throughput metrics.
func (e *Engine) Events() uint64 { return e.dispatched }

// SetTracer attaches a tracer to the engine. With trace.CatSim in the
// tracer's mask the engine emits a "dispatch" instant per delivered
// event and a "blocked" span per Park/Wake pair, each on a track named
// after the process. A nil tracer (or a mask without CatSim) keeps
// the dispatch loop's tracing cost at one always-false branch.
func (e *Engine) SetTracer(t *trace.Tracer) {
	e.tracer = t
	e.simTrace = t.Wants(trace.CatSim)
	if e.simTrace {
		for p := range e.live {
			p.track = t.Track(p.name)
		}
	}
}

type event struct {
	t   uint64
	seq uint64
	p   *Proc
}

// eventHeap is a binary min-heap ordered by (t, seq). The sift
// routines are hand-rolled rather than going through container/heap:
// the interface-based API boxes every pushed event into an `any`,
// which costs an allocation per scheduled event on the hottest path
// of the whole simulator.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && h.less(r, l) {
			least = r
		}
		if !h.less(least, i) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() event {
	old := *h
	ev := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{} // release the Proc pointer
	*h = old[:n]
	if n > 0 {
		old[:n].down(0)
	}
	return ev
}

// schedule queues p to run at cycle t. Events at the current cycle
// take the FIFO fast path; only genuinely future events pay for heap
// maintenance. Spawn-before-Run schedules (now == 0, nothing
// dispatched yet) also take the FIFO path, preserving spawn order.
func (e *Engine) schedule(t uint64, p *Proc) {
	if t == e.now {
		e.cur = append(e.cur, p)
		return
	}
	e.seq++
	e.events.push(event{t: t, seq: e.seq, p: p})
}

// next pops the earliest pending process, advancing the clock when the
// current cycle drains. It returns nil when no events remain.
func (e *Engine) next() *Proc {
	for {
		if e.curHead < len(e.cur) {
			p := e.cur[e.curHead]
			e.cur[e.curHead] = nil // release for GC
			e.curHead++
			return p
		}
		if len(e.events) == 0 {
			return nil
		}
		// The current cycle is exhausted: advance to the earliest
		// future time and move every event at that time into the FIFO
		// (heap pops yield them in seq order, preserving the global
		// (t, seq) dispatch order of the original design).
		e.cur = e.cur[:0]
		e.curHead = 0
		t := e.events[0].t
		if t < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = t
		for len(e.events) > 0 && e.events[0].t == t {
			e.cur = append(e.cur, e.events.pop().p)
		}
	}
}

// Proc is a simulated process: a goroutine that cooperates with the
// engine through WaitUntil, Advance, Park and Wake. All Proc methods
// must be called from the process's own body function, except Wake,
// which is called by whichever process is currently running.
type Proc struct {
	eng  *Engine
	name string
	// baton is the single rendezvous channel between the engine and
	// the process. Exactly one side holds the baton at a time and the
	// two strictly alternate — engine sends to resume the process,
	// process sends to yield back — so one unbuffered channel replaces
	// the previous resume/yield pair and halves the channel operations
	// per handoff.
	baton  chan struct{}
	parked bool
	done   bool
	// track and parkedAt support kernel-level tracing; both are
	// maintained only while the engine's simTrace flag is set.
	track    trace.TrackID
	parkedAt uint64
}

// Name reports the diagnostic name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Now reports the current simulated cycle.
func (p *Proc) Now() uint64 { return p.eng.now }

// Spawn creates a process that will first run at the current simulated
// time. The body runs on its own goroutine but only while the engine
// has handed it the baton, so body code may freely touch shared model
// state without host-level locking.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:   e,
		name:  name,
		baton: make(chan struct{}),
	}
	if e.simTrace {
		p.track = e.tracer.Track(name)
	}
	e.live[p] = struct{}{}
	go func() {
		<-p.baton
		defer func() {
			if r := recover(); r != nil {
				// Surface model-code panics from the engine's Run so
				// they carry the process name and reach the caller's
				// goroutine instead of crashing the host process.
				e.fault = &procFault{proc: p, value: r}
			}
			p.done = true
			delete(e.live, p)
			p.baton <- struct{}{}
		}()
		body(p)
	}()
	e.schedule(e.now, p)
	return p
}

// yield hands the baton back to the engine and blocks until the
// engine resumes this process.
func (p *Proc) yield() {
	p.baton <- struct{}{}
	<-p.baton
}

// WaitUntil blocks the process until the simulated clock reaches t.
// Waiting for a time in the past (t <= now) re-queues the process at
// the current time, which still yields to any already-pending events
// at this cycle.
func (p *Proc) WaitUntil(t uint64) {
	if t < p.eng.now {
		t = p.eng.now
	}
	p.eng.schedule(t, p)
	p.yield()
}

// Advance blocks the process for d cycles.
func (p *Proc) Advance(d uint64) { p.WaitUntil(p.eng.now + d) }

// Yield re-queues the process at the current cycle, letting any other
// process scheduled for this cycle run first.
func (p *Proc) Yield() { p.WaitUntil(p.eng.now) }

// Park suspends the process indefinitely. It returns when another
// process calls Wake on it. A parked process holds no queue entry, so
// a simulation in which every live process is parked is deadlocked and
// Run panics with a diagnostic.
func (p *Proc) Park() {
	p.parked = true
	if p.eng.simTrace {
		p.parkedAt = p.eng.now
	}
	p.yield()
}

// Wake schedules a parked process q to resume at the current simulated
// time. Waking a process that is not parked is a programming error in
// the model layer and panics. Wake must be called by the currently
// running process (or before Run starts).
func (p *Proc) Wake(q *Proc) {
	p.eng.wake(q)
}

func (e *Engine) wake(q *Proc) {
	if !q.parked {
		panic(fmt.Sprintf("sim: Wake(%s): process is not parked", q.name))
	}
	q.parked = false
	if e.simTrace {
		e.tracer.Emit(trace.CatSim, trace.Event{
			Cycle: q.parkedAt,
			Dur:   e.now - q.parkedAt,
			Track: q.track,
			Kind:  trace.Complete,
			Name:  "blocked",
		})
	}
	e.schedule(e.now, q)
}

// Run dispatches events until none remain. It panics if live processes
// remain parked with an empty event queue (model deadlock), naming the
// stuck processes.
func (e *Engine) Run() {
	for {
		p := e.next()
		if p == nil {
			break
		}
		if p.done {
			continue
		}
		e.dispatched++
		if e.stepHook != nil {
			e.stepHook(e.now, p)
		}
		if e.simTrace {
			e.tracer.Emit(trace.CatSim, trace.Event{
				Cycle: e.now, Track: p.track, Kind: trace.Instant, Name: "dispatch",
			})
		}
		p.baton <- struct{}{}
		<-p.baton
		if e.fault != nil {
			f := e.fault
			e.fault = nil
			panic(fmt.Sprintf("sim: process %q panicked: %v", f.proc.name, f.value))
		}
	}
	if len(e.live) > 0 {
		names := make([]string, 0, len(e.live))
		for p := range e.live {
			names = append(names, p.name)
		}
		sort.Strings(names)
		panic(fmt.Sprintf("sim: deadlock: %d processes parked forever: %v", len(names), names))
	}
}
