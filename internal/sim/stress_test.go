package sim

import (
	"fmt"
	"testing"
)

// TestStressManyProcsAndResources runs a few hundred processes over
// shared resources with producer/consumer park-wake chains — a
// smoke-scale version of what a 32-core workload simulation does —
// and checks global invariants: the clock is monotone, every process
// finishes, and resource accounting balances.
func TestStressManyProcsAndResources(t *testing.T) {
	e := NewEngine()
	resources := []*Resource{
		NewResource("r0"), NewResource("r1"), NewResource("r2"),
	}
	var wantBusy [3]uint64
	const procs = 300

	// A chain of parked consumers, each woken by its predecessor.
	var chain []*Proc
	for i := 0; i < procs/3; i++ {
		i := i
		p := e.Spawn(fmt.Sprintf("consumer-%d", i), func(p *Proc) {
			p.Park()
			r := resources[i%3]
			r.AcquireAndHold(p, uint64(5+i%7))
			if i+1 < procs/3 {
				p.Wake(chain[i+1])
			}
		})
		chain = append(chain, p)
		wantBusy[i%3] += uint64(5 + i%7)
	}
	// Producers contend on the resources, then the first wakes the chain.
	for i := 0; i < procs; i++ {
		i := i
		e.Spawn(fmt.Sprintf("producer-%d", i), func(p *Proc) {
			p.Advance(uint64(i % 13))
			r := resources[(i*7)%3]
			r.AcquireAndHold(p, uint64(1+i%5))
			if i == 0 {
				p.Wake(chain[0])
			}
		})
		wantBusy[(i*7)%3] += uint64(1 + i%5)
	}

	e.Run()
	if e.Live() != 0 {
		t.Fatalf("%d processes still live", e.Live())
	}
	for i, r := range resources {
		if r.BusyCycles() != wantBusy[i] {
			t.Errorf("resource %d busy = %d, want %d", i, r.BusyCycles(), wantBusy[i])
		}
	}
}

// TestStressDeterministicUnderGoMaxprocs repeats a contended
// simulation and demands bit-identical end times — the determinism
// guarantee cannot depend on host parallelism.
func TestStressDeterministicUnderContention(t *testing.T) {
	run := func() uint64 {
		e := NewEngine()
		r := NewResource("bus")
		for i := 0; i < 64; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Advance(uint64(i % 9))
				for j := 0; j < 5; j++ {
					r.AcquireAndHold(p, 8)
					p.Advance(uint64((i + j) % 11))
				}
			})
		}
		e.Run()
		return e.Now()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d ended at %d, first at %d", i, got, first)
		}
	}
}
