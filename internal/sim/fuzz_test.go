package sim

// FuzzEngine drives the event kernel with arbitrary interleavings of
// Advance/Yield/Park decoded from the fuzz input. The program is
// deadlock-free by construction: workers that park first enqueue
// themselves on a wake list, and a master process that never parks
// drains that list until every worker has finished — so any panic or
// stuck run the fuzzer finds is an engine bug, not a bad program. The
// kernel's contracts are then checked directly: dispatch times never
// go backwards, and the same program replayed gives the identical
// event count and final clock (determinism).

import (
	"testing"
)

// fuzzProgram is one decoded worker schedule: op codes 0..3.
type fuzzProgram struct {
	workers int
	ops     [][]byte
}

func decodeProgram(data []byte) fuzzProgram {
	if len(data) == 0 {
		return fuzzProgram{workers: 1, ops: make([][]byte, 1)}
	}
	if len(data) > 256 {
		data = data[:256]
	}
	p := fuzzProgram{workers: 1 + int(data[0]%8)}
	p.ops = make([][]byte, p.workers)
	for i, b := range data[1:] {
		w := i % p.workers
		p.ops[w] = append(p.ops[w], b)
	}
	return p
}

// runProgram executes the decoded program on a fresh engine and
// returns (events dispatched, final clock).
func runProgram(t *testing.T, p fuzzProgram) (uint64, uint64) {
	t.Helper()
	e := NewEngine()

	var lastDispatch uint64
	e.stepHook = func(now uint64, _ *Proc) {
		if now < lastDispatch {
			t.Fatalf("dispatch time went backwards: %d after %d", now, lastDispatch)
		}
		lastDispatch = now
	}

	done := 0
	var wantWake []*Proc
	for w := 0; w < p.workers; w++ {
		ops := p.ops[w]
		e.Spawn("worker", func(proc *Proc) {
			for _, b := range ops {
				switch b % 4 {
				case 0:
					proc.Advance(1 + uint64(b)/4)
				case 1:
					proc.Yield()
				case 2:
					// Enqueue-then-park is atomic w.r.t. the
					// single-threaded scheduler: the master can only
					// observe the queue entry once this worker has
					// actually parked.
					wantWake = append(wantWake, proc)
					proc.Park()
				case 3:
					proc.Advance(uint64(b) * 97)
				}
			}
			done++
		})
	}
	e.Spawn("master", func(proc *Proc) {
		for done < p.workers {
			if len(wantWake) > 0 {
				q := wantWake[0]
				wantWake = wantWake[1:]
				proc.Wake(q)
				proc.Yield()
				continue
			}
			proc.Advance(1)
		}
	})
	e.Run()

	if done != p.workers {
		t.Fatalf("%d of %d workers finished", done, p.workers)
	}
	if e.Live() != 0 {
		t.Fatalf("%d processes still live after Run", e.Live())
	}
	return e.Events(), e.Now()
}

func FuzzEngine(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2})
	f.Add([]byte{7, 2, 2, 2, 2, 2, 2, 2, 2})
	f.Add([]byte{1, 0, 4, 8, 12, 255, 251, 2, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeProgram(data)
		events1, now1 := runProgram(t, p)
		events2, now2 := runProgram(t, p)
		if events1 != events2 || now1 != now2 {
			t.Fatalf("non-deterministic replay: (%d events, clock %d) then (%d events, clock %d)",
				events1, now1, events2, now2)
		}
	})
}
