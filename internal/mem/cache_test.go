package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterInsert(t *testing.T) {
	c := NewCache(1024, 2, 64) // 16 lines, 8 sets
	if c.Lookup(5, false) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(5, false)
	if !c.Lookup(5, false) {
		t.Fatal("miss after insert")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache: lines mapping to the same set evict in LRU order.
	c := NewCache(2*64, 2, 64) // 1 set, 2 ways
	c.Insert(10, false)
	c.Insert(20, false)
	c.Lookup(10, false) // 10 is now MRU
	victim, _, evicted := c.Insert(30, false)
	if !evicted || victim != 20 {
		t.Errorf("victim = %d (evicted=%v), want 20", victim, evicted)
	}
	if !c.Contains(10) || !c.Contains(30) || c.Contains(20) {
		t.Error("cache contents wrong after LRU eviction")
	}
}

func TestCacheDirtyVictim(t *testing.T) {
	c := NewCache(2*64, 2, 64)
	c.Insert(1, true)
	c.Insert(2, false)
	victim, dirty, evicted := c.Insert(3, false)
	if !evicted || victim != 1 || !dirty {
		t.Errorf("victim=%d dirty=%v evicted=%v, want 1/true/true", victim, dirty, evicted)
	}
}

func TestCacheInsertExistingRefreshes(t *testing.T) {
	c := NewCache(2*64, 2, 64)
	c.Insert(1, false)
	c.Insert(2, false)
	c.Insert(1, false) // refresh, no eviction
	victim, _, evicted := c.Insert(3, false)
	if !evicted || victim != 2 {
		t.Errorf("victim = %d, want 2 (LRU after refresh)", victim)
	}
}

func TestCacheLookupMarkDirty(t *testing.T) {
	c := NewCache(1024, 2, 64)
	c.Insert(7, false)
	c.Lookup(7, true)
	_, wasDirty := c.Invalidate(7)
	if !wasDirty {
		t.Error("markDirty lookup did not set dirty bit")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(1024, 2, 64)
	c.Insert(9, true)
	present, dirty := c.Invalidate(9)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(9) {
		t.Error("line still present after invalidate")
	}
	present, _ = c.Invalidate(9)
	if present {
		t.Error("second invalidate reported present")
	}
}

func TestCacheClean(t *testing.T) {
	c := NewCache(1024, 2, 64)
	c.Insert(3, true)
	c.Clean(3)
	_, dirty := c.Invalidate(3)
	if dirty {
		t.Error("Clean did not clear dirty bit")
	}
}

func TestCacheMarkDirty(t *testing.T) {
	c := NewCache(1024, 2, 64)
	if c.MarkDirty(4) {
		t.Error("MarkDirty on absent line reported present")
	}
	c.Insert(4, false)
	if !c.MarkDirty(4) {
		t.Error("MarkDirty on present line reported absent")
	}
	_, dirty := c.Invalidate(4)
	if !dirty {
		t.Error("MarkDirty did not set dirty bit")
	}
}

func TestCacheSetIndexSpreadsLines(t *testing.T) {
	// Sequential lines must land in distinct sets: filling twice the
	// way count of sequential lines in an 8-set cache must not evict.
	c := NewCache(16*64, 2, 64) // 8 sets, 2 ways
	for l := uint64(0); l < 16; l++ {
		if _, _, evicted := c.Insert(l, false); evicted {
			t.Fatalf("evicted while inserting line %d into non-full cache", l)
		}
	}
	if c.ValidLines() != 16 {
		t.Errorf("valid = %d, want 16", c.ValidLines())
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two set count")
		}
	}()
	NewCache(3*64, 1, 64)
}

func TestPropertyCacheNeverExceedsCapacity(t *testing.T) {
	f := func(lines []uint16) bool {
		c := NewCache(8*64, 2, 64)
		for _, l := range lines {
			c.Insert(uint64(l), l%2 == 0)
		}
		return c.ValidLines() <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInsertedLineIsPresentUntilEvicted(t *testing.T) {
	// After inserting L, either L is present, or some later insert to
	// L's set evicted it — checked by tracking the victim stream.
	f := func(lines []uint16) bool {
		c := NewCache(8*64, 2, 64)
		present := map[uint64]bool{}
		for _, raw := range lines {
			l := uint64(raw % 64)
			victim, _, evicted := c.Insert(l, false)
			if evicted {
				delete(present, victim)
			}
			present[l] = true
			for want := range present {
				if !c.Contains(want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
