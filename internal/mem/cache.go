package mem

// Cache is a set-associative, LRU, line-addressed cache tag array.
// It tracks only tags and state bits — data values live in the
// workload's own Go memory; the simulator needs timing, not contents.
//
// All methods take line addresses (byte address / line size). A cache
// used as an L3 bank shard receives bank-local line addresses (line /
// banks) so sets spread correctly.
type Cache struct {
	sets int
	ways int
	tick uint64
	arr  []cacheLine // sets*ways, row-major

	// Statistics.
	Hits   uint64
	Misses uint64
	Evicts uint64
}

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// NewCache builds a cache of the given capacity in bytes with the
// given associativity and line size. Capacity must be an exact
// multiple of ways*lineBytes and the resulting set count a power of
// two.
func NewCache(capacityBytes, ways, lineBytes int) *Cache {
	lines := capacityBytes / lineBytes
	sets := lines / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("mem: cache set count must be a positive power of two")
	}
	return &Cache{
		sets: sets,
		ways: ways,
		arr:  make([]cacheLine, sets*ways),
	}
}

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways reports the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) set(lineAddr uint64) []cacheLine {
	s := int(lineAddr) & (c.sets - 1)
	return c.arr[s*c.ways : (s+1)*c.ways]
}

// Lookup probes for the line. On a hit it refreshes LRU state, sets
// the dirty bit when markDirty is true, and returns true.
func (c *Cache) Lookup(lineAddr uint64, markDirty bool) bool {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			c.tick++
			set[i].lru = c.tick
			if markDirty {
				set[i].dirty = true
			}
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Contains probes for the line without touching LRU or statistics.
func (c *Cache) Contains(lineAddr uint64) bool {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// Insert places the line (overwriting any stale copy) and reports the
// victim if a valid line had to be evicted.
func (c *Cache) Insert(lineAddr uint64, dirty bool) (victim uint64, victimDirty, evicted bool) {
	set := c.set(lineAddr)
	c.tick++
	// Refresh an existing copy in place.
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].lru = c.tick
			if dirty {
				set[i].dirty = true
			}
			return 0, false, false
		}
	}
	// Prefer an invalid way.
	for i := range set {
		if !set[i].valid {
			set[i] = cacheLine{tag: lineAddr, valid: true, dirty: dirty, lru: c.tick}
			return 0, false, false
		}
	}
	// Evict the LRU way.
	vi := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	victim, victimDirty = set[vi].tag, set[vi].dirty
	set[vi] = cacheLine{tag: lineAddr, valid: true, dirty: dirty, lru: c.tick}
	c.Evicts++
	return victim, victimDirty, true
}

// Invalidate drops the line if present, reporting whether it was
// present and whether it was dirty (the caller owes a writeback for
// dirty invalidations).
func (c *Cache) Invalidate(lineAddr uint64) (present, wasDirty bool) {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			present, wasDirty = true, set[i].dirty
			set[i] = cacheLine{}
			return present, wasDirty
		}
	}
	return false, false
}

// MarkDirty sets the dirty bit of the line if present, without
// touching LRU order or statistics, and reports whether the line was
// present (used for posted writebacks from a private L2 into the L3).
func (c *Cache) MarkDirty(lineAddr uint64) bool {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].dirty = true
			return true
		}
	}
	return false
}

// Clean clears the dirty bit of the line if present (used when the
// directory forces a writeback from a remote owner).
func (c *Cache) Clean(lineAddr uint64) {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].dirty = false
			return
		}
	}
}

// Dirty reports whether the line is present with its dirty bit set,
// without touching LRU order or statistics.
func (c *Cache) Dirty(lineAddr uint64) bool {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return set[i].dirty
		}
	}
	return false
}

// ForEachLine visits every valid line (used by the quiescent
// coherence walk).
func (c *Cache) ForEachLine(fn func(lineAddr uint64, dirty bool)) {
	for i := range c.arr {
		if c.arr[i].valid {
			fn(c.arr[i].tag, c.arr[i].dirty)
		}
	}
}

// ValidLines reports how many lines are currently valid (test aid).
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.arr {
		if c.arr[i].valid {
			n++
		}
	}
	return n
}

// ResetStats clears hit/miss/evict counters without touching contents.
func (c *Cache) ResetStats() {
	c.Hits, c.Misses, c.Evicts = 0, 0, 0
}
