package mem

import (
	"testing"

	"fdt/internal/counters"
	"fdt/internal/sim"
)

// teamCtrs builds a standalone attribution handle over a private set.
func teamCtrs() *TeamCtrs {
	cs := counters.NewSet()
	return &TeamCtrs{
		BusBusy: cs.Counter("team.bus_busy"),
		BusTxns: cs.Counter("team.bus_txns"),
	}
}

func TestBusAttributesTransfersToTeam(t *testing.T) {
	s, e, ctrs := testSystem(t)
	tc := teamCtrs()
	perL := s.Bus.CyclesPerLine()
	run(e, func(p *sim.Proc) {
		s.Bus.TransferLine(p, tc)
		s.Bus.TransferLine(p, tc)
		s.Bus.TransferLine(p, nil) // legacy un-attributed traffic
	})
	if got := tc.BusTxns.Read(); got != 2 {
		t.Errorf("team transactions = %d, want 2", got)
	}
	if got, want := tc.BusBusy.Read(), 2*perL; got != want {
		t.Errorf("team busy cycles = %d, want %d", got, want)
	}
	// The global counters see all three transfers: per-team sets
	// decompose the global ones, they never replace them.
	if got := ctrs.Counter(counters.BusTransactions).Read(); got != 3 {
		t.Errorf("global transactions = %d, want 3", got)
	}
	if got, want := s.Bus.BusyCycles(), 3*perL; got != want {
		t.Errorf("global busy cycles = %d, want %d", got, want)
	}
}

func TestBusPostedAttribution(t *testing.T) {
	s, _, ctrs := testSystem(t)
	tc := teamCtrs()
	perL := s.Bus.CyclesPerLine()
	if done := s.Bus.PostTransfer(100, tc); done < 100+perL {
		t.Errorf("posted transfer done at %d, want >= %d", done, 100+perL)
	}
	s.Bus.PostWriteback(0, tc)
	if got := tc.BusTxns.Read(); got != 2 {
		t.Errorf("team transactions = %d, want 2 (posted + writeback)", got)
	}
	if got, want := tc.BusBusy.Read(), 2*perL; got != want {
		t.Errorf("team busy cycles = %d, want %d", got, want)
	}
	if got := ctrs.Counter(counters.BusTransactions).Read(); got != 2 {
		t.Errorf("global transactions = %d, want 2", got)
	}
}

// TestBusFaultTeamAttrSkew pins the mutation-test hook itself: the
// fault under-charges the team, never the global counter — that gap
// is exactly what the "team-bus-partition" invariant exists to catch.
func TestBusFaultTeamAttrSkew(t *testing.T) {
	s, e, _ := testSystem(t)
	tc := teamCtrs()
	perL := s.Bus.CyclesPerLine()
	s.Bus.FaultTeamAttrSkew(1)
	run(e, func(p *sim.Proc) {
		s.Bus.TransferLine(p, tc)
	})
	if got := tc.BusBusy.Read(); got != perL-1 {
		t.Errorf("skewed team busy = %d, want %d", got, perL-1)
	}
	if got := s.Bus.BusyCycles(); got != perL {
		t.Errorf("global busy = %d, want %d (fault must not touch it)", got, perL)
	}
}

// TestPortTeamAttribution drives real accesses through a port: a cold
// miss goes off-chip and is charged to the installed handle; after
// SetTeamCtrs(nil) further misses are un-attributed legacy traffic.
func TestPortTeamAttribution(t *testing.T) {
	s, e, ctrs := testSystem(t)
	tc := teamCtrs()
	a := s.Alloc(64)
	b := s.Alloc(64)
	pt := s.Port(0)
	pt.SetTeamCtrs(tc)
	run(e, func(p *sim.Proc) {
		pt.Load(p, a) // cold: fetch charged to the team
		pt.Load(p, a) // hot: no bus traffic at all
		pt.SetTeamCtrs(nil)
		pt.Load(p, b) // cold again, un-attributed
	})
	teamTx := tc.BusTxns.Read()
	if teamTx == 0 {
		t.Fatal("cold miss charged nothing to the team")
	}
	globalTx := ctrs.Counter(counters.BusTransactions).Read()
	if teamTx >= globalTx {
		t.Errorf("team saw %d of %d transactions; the un-attributed miss leaked into the team",
			teamTx, globalTx)
	}
	if got, want := tc.BusBusy.Read(), teamTx*s.Bus.CyclesPerLine(); got != want {
		t.Errorf("team busy %d != txns x cycles/line = %d", got, want)
	}
	// The geometry the attribution math leans on.
	if pt.LineBytes() != s.Cfg.LineBytes {
		t.Errorf("port line bytes %d != config %d", pt.LineBytes(), s.Cfg.LineBytes)
	}
	if s.Bus.Latency() != s.Cfg.BusLat {
		t.Errorf("bus latency %d != config %d", s.Bus.Latency(), s.Cfg.BusLat)
	}
	if pt.L1().Sets()*pt.L1().Ways() == 0 {
		t.Error("L1 geometry degenerate")
	}
	if s.L3BankCache(0) == nil {
		t.Error("L3 bank 0 missing")
	}
}
