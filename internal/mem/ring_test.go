package mem

import (
	"testing"
	"testing/quick"
)

func TestRingHopsShorterDirection(t *testing.T) {
	r := NewRing(32, 8, 1)
	cases := []struct {
		a, b int
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 16, 16}, // exactly opposite
		{0, 31, 1},  // wraps
		{5, 29, 8},
		{29, 5, 8}, // symmetric
	}
	for _, c := range cases {
		if got := r.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRingBankPlacement(t *testing.T) {
	r := NewRing(32, 8, 1)
	// Banks at stops 0,4,8,...,28.
	for b := 0; b < 8; b++ {
		if got, want := r.BankStop(b), b*4; got != want {
			t.Errorf("BankStop(%d) = %d, want %d", b, got, want)
		}
	}
}

func TestRingLatencyScalesWithHopLat(t *testing.T) {
	r := NewRing(32, 8, 3)
	if got := r.CoreToBank(2, 0); got != 6 {
		t.Errorf("CoreToBank(2,0) = %d, want 6 (2 hops x 3)", got)
	}
	if got := r.CoreToCore(0, 10); got != 30 {
		t.Errorf("CoreToCore = %d, want 30", got)
	}
}

func TestPropertyRingSymmetricAndBounded(t *testing.T) {
	f := func(a, b uint8) bool {
		r := NewRing(32, 8, 1)
		x, y := int(a%32), int(b%32)
		h := r.Hops(x, y)
		return h == r.Hops(y, x) && h <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyRingTriangleInequality(t *testing.T) {
	f := func(a, b, c uint8) bool {
		r := NewRing(32, 8, 1)
		x, y, z := int(a%32), int(b%32), int(c%32)
		return r.Hops(x, z) <= r.Hops(x, y)+r.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
