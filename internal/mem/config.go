// Package mem implements the memory-system substrate of the simulated
// CMP: private L1/L2 caches, a shared banked L3, a bidirectional ring
// interconnect, a directory-based MESI coherence protocol, a
// split-transaction off-chip bus, and a banked DRAM with row buffers.
// The default configuration reproduces Table 1 of the paper.
package mem

import "fmt"

// Config describes the machine's memory system. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Cores is the number of cores on the chip (Table 1: 32).
	Cores int
	// LineBytes is the cache-line size everywhere (Table 1: 64).
	LineBytes int

	// L1: 8KB write-through private data cache.
	L1Bytes int
	L1Ways  int
	L1Lat   uint64

	// L2: 64KB 4-way inclusive private cache.
	L2Bytes int
	L2Ways  int
	L2Lat   uint64

	// L3: 8MB 8-way shared, 8 banks, 20-cycle, LRU.
	L3Bytes         int
	L3Ways          int
	L3Banks         int
	L3Lat           uint64
	L3PortOccupancy uint64

	// RingHopLat is the per-hop latency of the bidirectional ring
	// (Table 1: 1 cycle).
	RingHopLat uint64

	// BusLat is the one-way latency of the split-transaction off-chip
	// bus (Table 1: 40 cycles).
	BusLat uint64
	// BusCyclesPerLine is the data-bus occupancy of one cache-line
	// transfer. Table 1's 64-bit bus at a 4:1 cpu/bus ratio moves 8
	// bytes per 4 cpu cycles, i.e. one 64-byte line per 32 cycles —
	// the paper's stated peak. Fig 13 halves/doubles bandwidth by
	// scaling this value.
	BusCyclesPerLine uint64

	// DRAM: 32 banks, ~200-cycle bank access, open rows modeled.
	DRAMBanks      int
	DRAMRowHitLat  uint64
	DRAMRowMissLat uint64
	DRAMRowBytes   int

	// StoreBufferEntries bounds the outstanding posted (streaming)
	// stores per core: a streaming store retires into the store
	// buffer at L1 latency, and the core stalls only when the buffer
	// is full.
	StoreBufferEntries int

	// PrefetchNextLine enables a simple next-line L2 prefetcher: a
	// demand miss also fetches the following line in the background.
	// The paper's machine has no prefetcher (the default); the knob
	// exists for machine-variation experiments — prefetching changes
	// the per-thread latency/bandwidth balance BAT measures.
	PrefetchNextLine bool

	// ModelCoherence disables the MESI directory when false (an
	// ablation knob; the default machine models it).
	ModelCoherence bool
	// ModelRowBuffer disables open-row tracking when false, making
	// every DRAM access pay the row-miss latency (ablation knob).
	ModelRowBuffer bool
}

// DefaultConfig returns the Table-1 machine.
func DefaultConfig() Config {
	return Config{
		Cores:     32,
		LineBytes: 64,

		L1Bytes: 8 << 10,
		L1Ways:  2,
		L1Lat:   1,

		L2Bytes: 64 << 10,
		L2Ways:  4,
		L2Lat:   6,

		L3Bytes:         8 << 20,
		L3Ways:          8,
		L3Banks:         8,
		L3Lat:           20,
		L3PortOccupancy: 2,

		RingHopLat: 1,

		BusLat:           40,
		BusCyclesPerLine: 32,

		// Bank latencies are calibrated so the end-to-end demand-miss
		// latency (L1+L2+ring+L3+bus command+bank+transfer+ring)
		// lands at Table 1's "memory is 200 cycles away" — about 215
		// cycles load-to-use, matching the paper's observation that
		// ED "incurs a miss every 225 cycles".
		DRAMBanks:      32,
		DRAMRowHitLat:  50,
		DRAMRowMissLat: 100,
		DRAMRowBytes:   4 << 10,

		StoreBufferEntries: 8,

		ModelCoherence: true,
		ModelRowBuffer: true,
	}
}

// Validate reports configuration errors (non-power-of-two geometries,
// impossible bank counts) before they surface as subtle mis-indexing.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("mem: Cores = %d, want > 0", c.Cores)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mem: LineBytes = %d, want power of two", c.LineBytes)
	case c.L1Bytes < c.LineBytes*c.L1Ways || c.L1Ways <= 0:
		return fmt.Errorf("mem: L1 geometry %dB/%d-way invalid", c.L1Bytes, c.L1Ways)
	case c.L2Bytes < c.LineBytes*c.L2Ways || c.L2Ways <= 0:
		return fmt.Errorf("mem: L2 geometry %dB/%d-way invalid", c.L2Bytes, c.L2Ways)
	case c.L3Bytes < c.LineBytes*c.L3Ways*c.L3Banks || c.L3Ways <= 0:
		return fmt.Errorf("mem: L3 geometry %dB/%d-way/%d-bank invalid", c.L3Bytes, c.L3Ways, c.L3Banks)
	case c.L3Banks <= 0 || c.L3Banks&(c.L3Banks-1) != 0:
		return fmt.Errorf("mem: L3Banks = %d, want power of two", c.L3Banks)
	case c.DRAMBanks <= 0:
		return fmt.Errorf("mem: DRAMBanks = %d, want > 0", c.DRAMBanks)
	case c.DRAMRowBytes < c.LineBytes:
		return fmt.Errorf("mem: DRAMRowBytes = %d, want >= line size", c.DRAMRowBytes)
	case c.BusCyclesPerLine == 0:
		return fmt.Errorf("mem: BusCyclesPerLine = 0")
	case c.StoreBufferEntries <= 0:
		return fmt.Errorf("mem: StoreBufferEntries = %d, want > 0", c.StoreBufferEntries)
	case c.DRAMBanks&(c.DRAMBanks-1) != 0:
		return fmt.Errorf("mem: DRAMBanks = %d, want power of two", c.DRAMBanks)
	case c.Cores%c.L3Banks != 0:
		return fmt.Errorf("mem: Cores (%d) must be a multiple of L3Banks (%d) for ring placement", c.Cores, c.L3Banks)
	}
	return nil
}

// ScaleBandwidth returns a copy of the config with off-chip bandwidth
// multiplied by factor (Fig 13's 0.5x and 2x machines). Factor must be
// positive.
func (c Config) ScaleBandwidth(factor float64) Config {
	if factor <= 0 {
		panic("mem: bandwidth factor must be positive")
	}
	out := c
	scaled := float64(c.BusCyclesPerLine) / factor
	if scaled < 1 {
		scaled = 1
	}
	out.BusCyclesPerLine = uint64(scaled + 0.5)
	return out
}

// LineAddr converts a byte address to a line address.
func (c Config) LineAddr(addr uint64) uint64 {
	return addr / uint64(c.LineBytes)
}
