package mem

import (
	"testing"

	"fdt/internal/counters"
	"fdt/internal/sim"
)

func prefetchSystem(t *testing.T) (*System, *sim.Engine, *counters.Set) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PrefetchNextLine = true
	ctrs := counters.NewSet()
	s, err := NewSystem(cfg, ctrs)
	if err != nil {
		t.Fatal(err)
	}
	return s, sim.NewEngine(), ctrs
}

func TestPrefetchNextLineHitsL2(t *testing.T) {
	s, e, ctrs := prefetchSystem(t)
	base := s.Alloc(256)
	var secondCost uint64
	run(e, func(p *sim.Proc) {
		s.Port(0).Load(p, base) // miss; prefetches base+64
		t0 := p.Now()
		s.Port(0).Load(p, base+64) // must hit L2
		secondCost = p.Now() - t0
	})
	if secondCost > s.Cfg.L1Lat+s.Cfg.L2Lat {
		t.Errorf("prefetched line cost %d cycles, want an L2 hit", secondCost)
	}
	if got := ctrs.Counter(counters.L2Prefetches).Read(); got == 0 {
		t.Error("no prefetches counted")
	}
}

func TestPrefetchConsumesBandwidth(t *testing.T) {
	s, e, ctrs := prefetchSystem(t)
	base := s.Alloc(256)
	run(e, func(p *sim.Proc) {
		s.Port(0).Load(p, base)
		p.Advance(10000)
	})
	// One demand fetch + one prefetch: two line transfers.
	if got := ctrs.Counter(counters.BusTransactions).Read(); got != 2 {
		t.Errorf("bus transactions = %d, want 2 (demand + prefetch)", got)
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	s, e, ctrs := testSystem(t)
	base := s.Alloc(256)
	run(e, func(p *sim.Proc) { s.Port(0).Load(p, base) })
	if got := ctrs.Counter(counters.L2Prefetches).Read(); got != 0 {
		t.Errorf("prefetches = %d on the paper's machine, want 0", got)
	}
	if got := ctrs.Counter(counters.BusTransactions).Read(); got != 1 {
		t.Errorf("bus transactions = %d, want 1", got)
	}
}

func TestPrefetchSkipsResidentLines(t *testing.T) {
	s, e, ctrs := prefetchSystem(t)
	base := s.Alloc(256)
	run(e, func(p *sim.Proc) {
		s.Port(0).Load(p, base)    // prefetches base+64
		s.Port(0).Load(p, base+64) // L2 hit: no walk, no new prefetch
		p.Advance(10000)
	})
	if got := ctrs.Counter(counters.L2Prefetches).Read(); got != 1 {
		t.Errorf("prefetches = %d, want 1 (resident line not re-prefetched)", got)
	}
}

func TestPrefetchMaintainsDirectoryState(t *testing.T) {
	s, e, _ := prefetchSystem(t)
	base := s.Alloc(256)
	run(e, func(p *sim.Proc) {
		s.Port(0).Load(p, base) // prefetch pulls base+64 for core 0
	})
	line := (base + 64) / uint64(s.Cfg.LineBytes)
	found := false
	for _, h := range s.Dir.Sharers(line) {
		if h == 0 {
			found = true
		}
	}
	if !found {
		t.Error("directory does not record the prefetched copy")
	}
}
