package mem

import (
	"math/bits"

	"fdt/internal/counters"
	"fdt/internal/invariant"
)

// Directory implements the distributed directory-based MESI protocol
// of Table 1. Each L3 bank owns the directory slice for its lines; the
// System layer charges ring latency to reach the slice, so the
// Directory itself is pure bookkeeping: who caches each line and in
// what state.
//
// States are tracked per line as either Shared (any number of clean
// copies) or Modified (exactly one owner whose private copy is
// authoritative). Exclusive is folded into Modified-clean: the timing
// consequences the paper's limiters depend on — invalidation
// round-trips and forced writebacks — are identical.
type Directory struct {
	entries map[uint64]dirEntry

	invals *counters.Counter
	wbs    *counters.Counter

	// ck/checked arm the continuous single-writer check after every
	// state transition.
	ck      *invariant.Checker
	checked bool

	// faultDropDowngrade is a mutation-test hook (see DESIGN.md
	// Section 10): when set, a read miss that hits a remote Modified
	// line still triggers the writeback but forgets to downgrade the
	// owner — a protocol bug the "dir-single-writer" invariant must
	// catch. Never set outside tests.
	faultDropDowngrade bool
}

type dirEntry struct {
	sharers  uint64 // bitmask of cores with a copy
	owner    int    // meaningful when modified
	modified bool
}

// NewDirectory builds an empty directory and registers its counters.
func NewDirectory(ctrs *counters.Set) *Directory {
	return &Directory{
		entries: make(map[uint64]dirEntry),
		invals:  ctrs.Counter(counters.CoherenceInvalidations),
		wbs:     ctrs.Counter(counters.CoherenceWritebacks),
	}
}

// ReadMiss records core obtaining a shared copy of line. If another
// core held the line modified, that owner is returned with
// needWriteback=true: the caller must charge the ownership-transfer
// latency and clean the owner's private copy.
func (d *Directory) ReadMiss(line uint64, core int) (needWriteback bool, owner int) {
	e := d.entries[line]
	if e.modified && e.owner != core {
		needWriteback = true
		owner = e.owner
		d.wbs.Inc()
		if !d.faultDropDowngrade {
			e.modified = false
		}
	}
	e.sharers |= 1 << uint(core)
	d.entries[line] = e
	d.checkEntry(line)
	return needWriteback, owner
}

// WriteMiss records core obtaining exclusive ownership of line. It
// returns the set of other cores whose copies must be invalidated and,
// if a different core held the line modified, that owner with
// needWriteback=true.
func (d *Directory) WriteMiss(line uint64, core int) (invalidate []int, needWriteback bool, owner int) {
	e := d.entries[line]
	self := uint64(1) << uint(core)
	others := e.sharers &^ self
	if others != 0 {
		for c := 0; others != 0; {
			tz := bits.TrailingZeros64(others)
			c = tz
			invalidate = append(invalidate, c)
			others &^= 1 << uint(tz)
		}
		d.invals.Add(uint64(len(invalidate)))
	}
	if e.modified && e.owner != core {
		needWriteback = true
		owner = e.owner
		d.wbs.Inc()
	}
	d.entries[line] = dirEntry{sharers: self, owner: core, modified: true}
	d.checkEntry(line)
	return invalidate, needWriteback, owner
}

// Evict records that core no longer caches line (private-hierarchy
// eviction). When the last sharer leaves, the entry is dropped.
func (d *Directory) Evict(line uint64, core int) {
	e, ok := d.entries[line]
	if !ok {
		return
	}
	e.sharers &^= 1 << uint(core)
	if e.sharers == 0 {
		delete(d.entries, line)
		return
	}
	if e.modified && e.owner == core {
		e.modified = false
	}
	d.entries[line] = e
	d.checkEntry(line)
}

// Drop removes the directory entry entirely (L3 back-invalidation) and
// returns the cores that held copies so the caller can invalidate
// their private caches.
func (d *Directory) Drop(line uint64) (holders []int) {
	e, ok := d.entries[line]
	if !ok {
		return nil
	}
	s := e.sharers
	for s != 0 {
		tz := bits.TrailingZeros64(s)
		holders = append(holders, tz)
		s &^= 1 << uint(tz)
	}
	delete(d.entries, line)
	return holders
}

// setChecker arms the continuous single-writer check (called via
// System.SetChecker).
func (d *Directory) setChecker(ck *invariant.Checker) {
	d.ck = ck
	d.checked = true
}

// FaultDropDowngrade arms a mutation-test hook: read misses that force
// a remote writeback no longer downgrade the owner to Shared. The
// "dir-single-writer" invariant must catch it.
func (d *Directory) FaultDropDowngrade() { d.faultDropDowngrade = true }

// checkEntry verifies the MESI single-writer/multi-reader rule for one
// line after a state transition: a Modified line has exactly its owner
// as sharer. The directory has no clock, so violations carry cycle 0.
func (d *Directory) checkEntry(line uint64) {
	if !d.checked {
		return
	}
	d.ck.Pass(1)
	e := d.entries[line]
	if e.modified && e.sharers != 1<<uint(e.owner) {
		d.ck.Failf("dir-single-writer", 0,
			"line %#x modified by core %d but sharer mask is %#b (must be exactly the owner)",
			line, e.owner, e.sharers)
	}
}

// ForEach visits every directory entry (used by the quiescent
// directory-vs-cache coherence walk).
func (d *Directory) ForEach(fn func(line uint64, sharers uint64, owner int, modified bool)) {
	for line, e := range d.entries {
		fn(line, e.sharers, e.owner, e.modified)
	}
}

// Sharers reports the cores currently recorded as caching line
// (test aid).
func (d *Directory) Sharers(line uint64) []int {
	e, ok := d.entries[line]
	if !ok {
		return nil
	}
	var out []int
	s := e.sharers
	for s != 0 {
		tz := bits.TrailingZeros64(s)
		out = append(out, tz)
		s &^= 1 << uint(tz)
	}
	return out
}

// IsModified reports whether line is in Modified state and by whom
// (test aid).
func (d *Directory) IsModified(line uint64) (bool, int) {
	e, ok := d.entries[line]
	if !ok || !e.modified {
		return false, -1
	}
	return true, e.owner
}

// Entries reports how many lines the directory currently tracks.
func (d *Directory) Entries() int { return len(d.entries) }
