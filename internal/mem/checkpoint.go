package mem

import (
	"fmt"

	"fdt/internal/sim"
)

// This file implements the memory system's state-summary API: a deep,
// self-contained snapshot of every stateful structure — cache tag
// arrays, directory entries, DRAM row buffers and bank schedules, the
// bus schedule, store buffers and the heap cursor — taken at a
// quiescent point (no simulation process mid-access) and restorable
// into a fresh System built from the same Config. Together with the
// engine clock, the counter file and the power meter (composed one
// layer up in machine.Checkpoint) it lets a simulation resume
// warm: restored regions see the caches, open rows and reservation
// horizons the original run had, with no cold-start error.

// CacheLineState is one tag-array entry.
type CacheLineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
	LRU   uint64
}

// CacheState is a cache's complete state: the tag array plus the LRU
// clock and statistics.
type CacheState struct {
	Tick   uint64
	Hits   uint64
	Misses uint64
	Evicts uint64
	Lines  []CacheLineState
}

// State captures the cache's state.
func (c *Cache) State() CacheState {
	st := CacheState{
		Tick: c.tick, Hits: c.Hits, Misses: c.Misses, Evicts: c.Evicts,
		Lines: make([]CacheLineState, len(c.arr)),
	}
	for i, l := range c.arr {
		st.Lines[i] = CacheLineState{Tag: l.tag, Valid: l.valid, Dirty: l.dirty, LRU: l.lru}
	}
	return st
}

// Restore overwrites the cache's state from a checkpoint taken on a
// cache of identical geometry.
func (c *Cache) Restore(st CacheState) {
	if len(st.Lines) != len(c.arr) {
		panic(fmt.Sprintf("mem: restoring %d cache lines into a %d-line cache", len(st.Lines), len(c.arr)))
	}
	c.tick, c.Hits, c.Misses, c.Evicts = st.Tick, st.Hits, st.Misses, st.Evicts
	for i, l := range st.Lines {
		c.arr[i] = cacheLine{tag: l.Tag, valid: l.Valid, dirty: l.Dirty, lru: l.LRU}
	}
}

// DirEntryState is one directory entry.
type DirEntryState struct {
	Sharers  uint64
	Owner    int
	Modified bool
}

// State captures the directory's entry table.
func (d *Directory) State() map[uint64]DirEntryState {
	st := make(map[uint64]DirEntryState, len(d.entries))
	for line, e := range d.entries {
		st[line] = DirEntryState{Sharers: e.sharers, Owner: e.owner, Modified: e.modified}
	}
	return st
}

// Restore overwrites the directory's entry table from a checkpoint.
func (d *Directory) Restore(st map[uint64]DirEntryState) {
	d.entries = make(map[uint64]dirEntry, len(st))
	for line, e := range st {
		d.entries[line] = dirEntry{sharers: e.Sharers, owner: e.Owner, modified: e.Modified}
	}
}

// DRAMBankState is one bank's schedule and row buffer. The row-hit
// counters live in the shared counter set and restore with it.
type DRAMBankState struct {
	Res     sim.ResourceState
	OpenRow uint64
	HasOpen bool
}

// State captures every bank.
func (d *DRAM) State() []DRAMBankState {
	st := make([]DRAMBankState, len(d.banks))
	for i, b := range d.banks {
		st[i] = DRAMBankState{Res: b.res.State(), OpenRow: b.openRow, HasOpen: b.hasOpen}
	}
	return st
}

// Restore overwrites every bank from a checkpoint.
func (d *DRAM) Restore(st []DRAMBankState) {
	if len(st) != len(d.banks) {
		panic(fmt.Sprintf("mem: restoring %d DRAM banks into %d", len(st), len(d.banks)))
	}
	for i, b := range d.banks {
		b.res.Restore(st[i].Res)
		b.openRow, b.hasOpen = st[i].OpenRow, st[i].HasOpen
	}
}

// PortState is one core's private-hierarchy state.
type PortState struct {
	L1 CacheState
	L2 CacheState
	// StoreBuffer holds the completion times of outstanding posted
	// stores; empty at true quiescence, preserved for completeness.
	StoreBuffer []uint64
}

// L3BankState is one shared-cache bank's state.
type L3BankState struct {
	Cache CacheState
	Port  sim.ResourceState
}

// State is the memory system's complete checkpointable state.
type State struct {
	Heap      uint64
	Ports     []PortState
	L3        []L3BankState
	Directory map[uint64]DirEntryState
	DRAM      []DRAMBankState
	Bus       sim.ResourceState
}

// Checkpoint captures the system's state. Call it only at quiescence
// (between thread.Run invocations, or after a run completes): the
// snapshot cannot represent a process mid-access.
func (s *System) Checkpoint() *State {
	st := &State{
		Heap:      s.heap,
		Ports:     make([]PortState, len(s.ports)),
		L3:        make([]L3BankState, len(s.l3)),
		Directory: s.Dir.State(),
		DRAM:      s.DRAM.State(),
		Bus:       s.Bus.data.State(),
	}
	for i, pt := range s.ports {
		st.Ports[i] = PortState{
			L1:          pt.l1.State(),
			L2:          pt.l2.State(),
			StoreBuffer: append([]uint64(nil), pt.sb...),
		}
	}
	for i, b := range s.l3 {
		st.L3[i] = L3BankState{Cache: b.cache.State(), Port: b.port.State()}
	}
	return st
}

// Restore overwrites the system's state from a checkpoint taken on a
// system with an identical configuration.
func (s *System) Restore(st *State) {
	if len(st.Ports) != len(s.ports) || len(st.L3) != len(s.l3) {
		panic(fmt.Sprintf("mem: restoring %d ports/%d L3 banks into %d/%d — config mismatch",
			len(st.Ports), len(st.L3), len(s.ports), len(s.l3)))
	}
	s.heap = st.Heap
	for i, pt := range s.ports {
		pt.l1.Restore(st.Ports[i].L1)
		pt.l2.Restore(st.Ports[i].L2)
		pt.sb = append(pt.sb[:0], st.Ports[i].StoreBuffer...)
	}
	for i, b := range s.l3 {
		b.cache.Restore(st.L3[i].Cache)
		b.port.Restore(st.L3[i].Port)
	}
	s.Dir.Restore(st.Directory)
	s.DRAM.Restore(st.DRAM)
	s.Bus.data.Restore(st.Bus)
}
