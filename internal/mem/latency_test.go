package mem

import (
	"testing"

	"fdt/internal/counters"
	"fdt/internal/sim"
)

// TestEndToEndMissLatencyCalibration pins the demand-miss latency to
// Table 1's "memory is 200 cycles away": a cold load from core 0 must
// land in the 180-260 cycle band (the exact value depends on the ring
// distance to the line's bank).
func TestEndToEndMissLatencyCalibration(t *testing.T) {
	s, e, _ := testSystem(t)
	// Sample several lines to average over ring distances.
	var total uint64
	const n = 16
	base := s.Alloc(n * 4096)
	e.Spawn("t", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			t0 := p.Now()
			s.Port(0).Load(p, base+uint64(i*4096))
			total += p.Now() - t0
			p.Advance(1000) // drain
		}
	})
	e.Run()
	avg := total / n
	if avg < 180 || avg > 260 {
		t.Errorf("average cold-miss latency = %d cycles, want ~215 (Table 1: 200 away)", avg)
	}
}

// TestL3HitLatencyBand checks the on-chip shared-cache hit cost.
func TestL3HitLatencyBand(t *testing.T) {
	s, e, _ := testSystem(t)
	addr := s.Alloc(64)
	var hit uint64
	e.Spawn("t", func(p *sim.Proc) {
		s.Port(0).Load(p, addr) // core 0 fetches: line now in L3 (and core 0's L1/L2)
		s.Port(1).Load(p, addr) // core 1: L3 hit
		t0 := p.Now()
		s.Port(2).Load(p, addr) // core 2: clean L3 hit, no writeback
		hit = p.Now() - t0
	})
	e.Run()
	// L1 + L2 + ring + port + L3 + ring: tens of cycles, far below a
	// memory access.
	if hit < 25 || hit > 80 {
		t.Errorf("L3 hit cost %d cycles, want on-chip band 25-80", hit)
	}
}

// TestPeakBusBandwidth saturates the bus from many cores and checks
// the machine delivers exactly one line per BusCyclesPerLine cycles.
func TestPeakBusBandwidth(t *testing.T) {
	s, e, ctrs := testSystem(t)
	const lines = 64
	for c := 0; c < 16; c++ {
		base := s.Alloc(lines * 64)
		port := s.Port(c)
		e.Spawn("c", func(p *sim.Proc) {
			for l := 0; l < lines; l++ {
				port.Load(p, base+uint64(l*64))
			}
		})
	}
	e.Run()
	got := ctrs.Counter(counters.BusTransactions).Read()
	minCycles := got * s.Cfg.BusCyclesPerLine
	if e.Now() < minCycles {
		t.Errorf("transferred %d lines in %d cycles — exceeds peak bandwidth (min %d)",
			got, e.Now(), minCycles)
	}
	if float64(e.Now()) > 1.2*float64(minCycles) {
		t.Errorf("16-way streaming took %d cycles for %d lines, want near peak %d",
			e.Now(), got, minCycles)
	}
}

// TestBandwidthScalingKnob checks ScaleBandwidth actually changes the
// delivered rate.
func TestBandwidthScalingKnob(t *testing.T) {
	elapsed := func(factor float64) uint64 {
		cfg := DefaultConfig().ScaleBandwidth(factor)
		ctrs := counters.NewSet()
		s := MustNewSystem(cfg, ctrs)
		e := sim.NewEngine()
		for c := 0; c < 8; c++ {
			base := s.Alloc(64 * 64)
			port := s.Port(c)
			e.Spawn("c", func(p *sim.Proc) {
				for l := 0; l < 64; l++ {
					port.Load(p, base+uint64(l*64))
				}
			})
		}
		e.Run()
		return e.Now()
	}
	slow, fast := elapsed(0.5), elapsed(2)
	if fast >= slow {
		t.Errorf("2x-bandwidth machine (%d cycles) not faster than 0.5x (%d)", fast, slow)
	}
}
