package mem

import (
	"testing"

	"fdt/internal/counters"
	"fdt/internal/sim"
)

func TestStoreStreamDoesNotBlockUntilBufferFull(t *testing.T) {
	s, e, _ := testSystem(t)
	base := s.Alloc(64 << 10)
	var afterFirstBurst uint64
	run(e, func(p *sim.Proc) {
		// The store buffer holds 8 entries: the first 8 streaming
		// stores to distinct lines retire at L1 latency each.
		for l := uint64(0); l < 8; l++ {
			s.Port(0).StoreStream(p, base+l*64)
		}
		afterFirstBurst = p.Now()
	})
	want := 8 * s.Cfg.L1Lat
	if afterFirstBurst != want {
		t.Errorf("8 posted stores took %d cycles, want %d (no stalls)", afterFirstBurst, want)
	}
}

func TestStoreStreamBackpressure(t *testing.T) {
	s, e, _ := testSystem(t)
	base := s.Alloc(64 << 10)
	var elapsed uint64
	run(e, func(p *sim.Proc) {
		for l := uint64(0); l < 20; l++ {
			s.Port(0).StoreStream(p, base+l*64)
		}
		elapsed = p.Now()
	})
	// Stores beyond the buffer capacity must wait for older ones.
	if elapsed < s.Cfg.DRAMRowMissLat {
		t.Errorf("20 posted stores took %d cycles — no backpressure", elapsed)
	}
}

func TestStoreStreamConsumesBandwidth(t *testing.T) {
	s, e, ctrs := testSystem(t)
	base := s.Alloc(64 << 10)
	run(e, func(p *sim.Proc) {
		for l := uint64(0); l < 16; l++ {
			s.Port(0).StoreStream(p, base+l*64)
		}
		// Wait for the buffer to drain before sampling.
		p.Advance(10000)
	})
	if got := ctrs.Counter(counters.BusBusyCycles).Read(); got != 16*s.Cfg.BusCyclesPerLine {
		t.Errorf("bus busy = %d, want %d (every posted store fetches its line)",
			got, 16*s.Cfg.BusCyclesPerLine)
	}
}

func TestStoreStreamOwnedLineIsFastPath(t *testing.T) {
	s, e, _ := testSystem(t)
	addr := s.Alloc(64)
	var second uint64
	run(e, func(p *sim.Proc) {
		s.Port(0).StoreStream(p, addr)
		t0 := p.Now()
		s.Port(0).StoreStream(p, addr) // owned: write-buffer hit
		second = p.Now() - t0
	})
	if second != s.Cfg.L1Lat {
		t.Errorf("owned streaming store took %d, want %d", second, s.Cfg.L1Lat)
	}
}

func TestStoreStreamMaintainsCoherence(t *testing.T) {
	s, e, ctrs := testSystem(t)
	addr := s.Alloc(64)
	run(e, func(p *sim.Proc) {
		s.Port(1).Load(p, addr) // core 1 caches the line shared
		s.Port(0).StoreStream(p, addr)
	})
	if got := ctrs.Counter(counters.CoherenceInvalidations).Read(); got != 1 {
		t.Errorf("invalidations = %d, want 1 (posted RFO must invalidate sharers)", got)
	}
	line := addr / uint64(s.Cfg.LineBytes)
	if s.Port(1).L2().Contains(line) {
		t.Error("remote copy survived a posted RFO")
	}
	if mod, owner := s.Dir.IsModified(line); !mod || owner != 0 {
		t.Errorf("line ownership = (%v,%d), want (true,0)", mod, owner)
	}
}

func TestStoreBufferDrains(t *testing.T) {
	s, e, _ := testSystem(t)
	base := s.Alloc(4 << 10)
	run(e, func(p *sim.Proc) {
		for l := uint64(0); l < 4; l++ {
			s.Port(0).StoreStream(p, base+l*64)
		}
		p.Advance(100000)
		s.Port(0).StoreStream(p, base+63*64)
		if got := s.Port(0).StoreBufferOccupancy(); got != 1 {
			t.Errorf("store buffer holds %d entries after long drain, want 1", got)
		}
	})
}

func TestLoadStallCountersAccumulate(t *testing.T) {
	s, e, ctrs := testSystem(t)
	addr := s.Alloc(64)
	run(e, func(p *sim.Proc) { s.Port(0).Load(p, addr) })
	stall := ctrs.Counter(counters.LoadStallCycles).Read()
	if stall == 0 {
		t.Error("cold miss recorded no load stall")
	}
	if stall >= e.Now() {
		t.Errorf("load stall %d not below total %d", stall, e.Now())
	}
}
