package mem

import (
	"testing"

	"fdt/internal/counters"
	"fdt/internal/sim"
)

// testSystem builds a default-config system plus an engine.
func testSystem(t *testing.T) (*System, *sim.Engine, *counters.Set) {
	t.Helper()
	ctrs := counters.NewSet()
	s, err := NewSystem(DefaultConfig(), ctrs)
	if err != nil {
		t.Fatal(err)
	}
	return s, sim.NewEngine(), ctrs
}

// run executes body as a single simulated process and returns total cycles.
func run(e *sim.Engine, body func(p *sim.Proc)) uint64 {
	e.Spawn("t", body)
	e.Run()
	return e.Now()
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.L3Banks = 3
	if bad.Validate() == nil {
		t.Error("non-power-of-two banks accepted")
	}
	bad = DefaultConfig()
	bad.LineBytes = 48
	if bad.Validate() == nil {
		t.Error("non-power-of-two line size accepted")
	}
}

func TestScaleBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.ScaleBandwidth(2).BusCyclesPerLine; got != 16 {
		t.Errorf("2x bandwidth: cycles/line = %d, want 16", got)
	}
	if got := cfg.ScaleBandwidth(0.5).BusCyclesPerLine; got != 64 {
		t.Errorf("0.5x bandwidth: cycles/line = %d, want 64", got)
	}
}

func TestLoadHitCostsL1Latency(t *testing.T) {
	s, e, _ := testSystem(t)
	addr := s.Alloc(64)
	var coldDone, hot uint64
	run(e, func(p *sim.Proc) {
		s.Port(0).Load(p, addr) // cold miss
		coldDone = p.Now()
		s.Port(0).Load(p, addr) // L1 hit
		hot = p.Now() - coldDone
	})
	if hot != s.Cfg.L1Lat {
		t.Errorf("L1 hit cost %d, want %d", hot, s.Cfg.L1Lat)
	}
	if coldDone < s.Cfg.BusLat+s.Cfg.DRAMRowMissLat+s.Cfg.BusCyclesPerLine {
		t.Errorf("cold miss cost %d, implausibly below off-chip minimum", coldDone)
	}
}

func TestColdMissTouchesAllLevels(t *testing.T) {
	s, e, ctrs := testSystem(t)
	addr := s.Alloc(64)
	run(e, func(p *sim.Proc) { s.Port(0).Load(p, addr) })
	if got := ctrs.Counter(counters.L3Misses).Read(); got != 1 {
		t.Errorf("l3 misses = %d, want 1", got)
	}
	if got := ctrs.Counter(counters.BusTransactions).Read(); got != 1 {
		t.Errorf("bus txns = %d, want 1", got)
	}
	if got := ctrs.Counter(counters.BusBusyCycles).Read(); got != s.Cfg.BusCyclesPerLine {
		t.Errorf("bus busy = %d, want %d", got, s.Cfg.BusCyclesPerLine)
	}
}

func TestSecondCoreHitsL3(t *testing.T) {
	s, e, ctrs := testSystem(t)
	addr := s.Alloc(64)
	run(e, func(p *sim.Proc) {
		s.Port(0).Load(p, addr)
		s.Port(1).Load(p, addr)
	})
	if got := ctrs.Counter(counters.L3Hits).Read(); got != 1 {
		t.Errorf("l3 hits = %d, want 1 (second core served on-chip)", got)
	}
	if got := ctrs.Counter(counters.BusTransactions).Read(); got != 1 {
		t.Errorf("bus txns = %d, want 1 (no second off-chip fetch)", got)
	}
}

func TestStoreThenRemoteLoadForcesWriteback(t *testing.T) {
	s, e, ctrs := testSystem(t)
	addr := s.Alloc(64)
	run(e, func(p *sim.Proc) {
		s.Port(0).Load(p, addr)
		s.Port(0).Store(p, addr) // core 0 takes M
		s.Port(1).Load(p, addr)  // must force a writeback from core 0
	})
	if got := ctrs.Counter(counters.CoherenceWritebacks).Read(); got != 1 {
		t.Errorf("writebacks = %d, want 1", got)
	}
	line := addr / uint64(s.Cfg.LineBytes)
	if mod, _ := s.Dir.IsModified(line); mod {
		t.Error("line still modified after remote read")
	}
}

func TestStoreInvalidatesRemoteCopies(t *testing.T) {
	s, e, ctrs := testSystem(t)
	addr := s.Alloc(64)
	run(e, func(p *sim.Proc) {
		s.Port(0).Load(p, addr)
		s.Port(1).Load(p, addr)
		s.Port(2).Load(p, addr)
		s.Port(0).Store(p, addr)
	})
	if got := ctrs.Counter(counters.CoherenceInvalidations).Read(); got != 2 {
		t.Errorf("invalidations = %d, want 2", got)
	}
	line := addr / uint64(s.Cfg.LineBytes)
	if s.Port(1).L2().Contains(line) || s.Port(2).L2().Contains(line) {
		t.Error("remote L2 copies survived invalidation")
	}
}

func TestExclusiveStoreIsCheapAfterOwnership(t *testing.T) {
	s, e, _ := testSystem(t)
	addr := s.Alloc(64)
	var before, cost uint64
	run(e, func(p *sim.Proc) {
		s.Port(0).Store(p, addr) // RFO walk
		before = p.Now()
		s.Port(0).Store(p, addr) // silent: owner in M
		cost = p.Now() - before
	})
	if cost != s.Cfg.L1Lat {
		t.Errorf("owned store cost %d, want %d (write-buffer latency)", cost, s.Cfg.L1Lat)
	}
}

func TestPingPongStoresAreExpensive(t *testing.T) {
	// Alternating writers must each pay an ownership transfer.
	s, e, ctrs := testSystem(t)
	addr := s.Alloc(64)
	run(e, func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			s.Port(0).Store(p, addr)
			s.Port(1).Store(p, addr)
		}
	})
	if got := ctrs.Counter(counters.CoherenceWritebacks).Read(); got < 7 {
		t.Errorf("writebacks = %d, want >= 7 for 8 alternating stores", got)
	}
}

func TestBusSerializesDistinctCoresMisses(t *testing.T) {
	// Two cores missing simultaneously share the data bus: total bus
	// busy cycles is twice the per-line occupancy and the second
	// transfer cannot overlap the first.
	s, e, ctrs := testSystem(t)
	a := s.Alloc(64 << 10) // distinct DRAM rows
	b := a + 512<<10
	e.Spawn("c0", func(p *sim.Proc) { s.Port(0).Load(p, a) })
	e.Spawn("c1", func(p *sim.Proc) { s.Port(1).Load(p, b) })
	e.Run()
	if got := ctrs.Counter(counters.BusBusyCycles).Read(); got != 2*s.Cfg.BusCyclesPerLine {
		t.Errorf("bus busy = %d, want %d", got, 2*s.Cfg.BusCyclesPerLine)
	}
}

func TestStreamingLoadsApproachPeakBandwidth(t *testing.T) {
	// Many cores streaming disjoint data must drive bus utilization
	// toward 100%: elapsed ~ lines * cyclesPerLine.
	s, e, ctrs := testSystem(t)
	const coresUsed = 16
	const linesPer = 64
	for c := 0; c < coresUsed; c++ {
		base := s.Alloc(linesPer * 64)
		port := s.Port(c)
		e.Spawn("c", func(p *sim.Proc) {
			for l := 0; l < linesPer; l++ {
				port.Load(p, base+uint64(l*64))
			}
		})
	}
	e.Run()
	busy := ctrs.Counter(counters.BusBusyCycles).Read()
	util := float64(busy) / float64(e.Now())
	if util < 0.90 {
		t.Errorf("bus utilization = %.2f, want >= 0.90 under 16-way streaming", util)
	}
}

func TestL1WriteThroughVictimsSilent(t *testing.T) {
	// Filling far more lines than L1 capacity must not corrupt state;
	// L1 victims are clean so no writebacks originate from L1.
	s, e, _ := testSystem(t)
	base := s.Alloc(1 << 20)
	run(e, func(p *sim.Proc) {
		for l := uint64(0); l < 512; l++ { // 32KB > 8KB L1
			s.Port(0).Load(p, base+l*64)
		}
	})
	if got := s.Port(0).L1().ValidLines(); got > s.Cfg.L1Bytes/s.Cfg.LineBytes {
		t.Errorf("L1 valid lines = %d exceeds capacity", got)
	}
}

func TestL2EvictionUpdatesDirectory(t *testing.T) {
	s, e, _ := testSystem(t)
	// Stream enough distinct lines through core 0's L2 (64KB = 1024
	// lines) to force evictions, then confirm the directory no longer
	// lists core 0 for the earliest line.
	base := s.Alloc(1 << 20)
	run(e, func(p *sim.Proc) {
		for l := uint64(0); l < 4096; l++ {
			s.Port(0).Load(p, base+l*64)
		}
	})
	firstLine := base / uint64(s.Cfg.LineBytes)
	for _, h := range s.Dir.Sharers(firstLine) {
		if h == 0 {
			t.Error("directory still lists core 0 after L2 eviction")
		}
	}
}

func TestAllocReturnsLineAlignedDisjointRegions(t *testing.T) {
	s, _, _ := testSystem(t)
	a := s.Alloc(100)
	b := s.Alloc(100)
	if a%64 != 0 || b%64 != 0 {
		t.Errorf("allocations not line-aligned: %d %d", a, b)
	}
	if b < a+100 {
		t.Errorf("allocations overlap: a=%d b=%d", a, b)
	}
}

func TestCoherenceDisabledSkipsDirectory(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ModelCoherence = false
	ctrs := counters.NewSet()
	s := MustNewSystem(cfg, ctrs)
	e := sim.NewEngine()
	addr := s.Alloc(64)
	run(e, func(p *sim.Proc) {
		s.Port(0).Store(p, addr)
		s.Port(1).Load(p, addr)
	})
	if got := ctrs.Counter(counters.CoherenceWritebacks).Read(); got != 0 {
		t.Errorf("writebacks = %d with coherence off, want 0", got)
	}
	if s.Dir.Entries() != 0 {
		t.Error("directory populated with coherence off")
	}
}

func TestTooManyCoresRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 128
	cfg.L3Banks = 8
	if _, err := NewSystem(cfg, counters.NewSet()); err == nil {
		t.Error("128-core config accepted despite 64-bit sharer mask")
	}
}
