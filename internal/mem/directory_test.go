package mem

import (
	"reflect"
	"testing"
	"testing/quick"

	"fdt/internal/counters"
)

func newDir() (*Directory, *counters.Set) {
	ctrs := counters.NewSet()
	return NewDirectory(ctrs), ctrs
}

func TestDirectoryReadThenRead(t *testing.T) {
	d, _ := newDir()
	if wb, _ := d.ReadMiss(100, 0); wb {
		t.Error("first read demanded writeback")
	}
	if wb, _ := d.ReadMiss(100, 1); wb {
		t.Error("second clean read demanded writeback")
	}
	if got := d.Sharers(100); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("sharers = %v, want [0 1]", got)
	}
}

func TestDirectoryWriteInvalidatesSharers(t *testing.T) {
	d, ctrs := newDir()
	d.ReadMiss(7, 0)
	d.ReadMiss(7, 1)
	d.ReadMiss(7, 2)
	inval, wb, _ := d.WriteMiss(7, 1)
	if wb {
		t.Error("write over clean sharers demanded writeback")
	}
	if !reflect.DeepEqual(inval, []int{0, 2}) {
		t.Errorf("invalidate = %v, want [0 2]", inval)
	}
	if mod, owner := d.IsModified(7); !mod || owner != 1 {
		t.Errorf("IsModified = (%v,%d), want (true,1)", mod, owner)
	}
	if got := ctrs.Counter(counters.CoherenceInvalidations).Read(); got != 2 {
		t.Errorf("invalidation counter = %d, want 2", got)
	}
}

func TestDirectoryReadAfterWriteForcesWriteback(t *testing.T) {
	d, ctrs := newDir()
	d.WriteMiss(9, 3)
	wb, owner := d.ReadMiss(9, 5)
	if !wb || owner != 3 {
		t.Errorf("ReadMiss = (%v,%d), want (true,3)", wb, owner)
	}
	if mod, _ := d.IsModified(9); mod {
		t.Error("line still modified after downgrade")
	}
	if got := ctrs.Counter(counters.CoherenceWritebacks).Read(); got != 1 {
		t.Errorf("writeback counter = %d, want 1", got)
	}
}

func TestDirectoryWriteAfterWriteTransfersOwnership(t *testing.T) {
	d, _ := newDir()
	d.WriteMiss(4, 0)
	inval, wb, owner := d.WriteMiss(4, 1)
	if !wb || owner != 0 {
		t.Errorf("writeback = (%v,%d), want (true,0)", wb, owner)
	}
	if !reflect.DeepEqual(inval, []int{0}) {
		t.Errorf("invalidate = %v, want [0]", inval)
	}
	if mod, o := d.IsModified(4); !mod || o != 1 {
		t.Errorf("new owner = (%v,%d), want (true,1)", mod, o)
	}
}

func TestDirectoryOwnerRewrites(t *testing.T) {
	d, _ := newDir()
	d.WriteMiss(4, 2)
	inval, wb, _ := d.WriteMiss(4, 2)
	if wb || len(inval) != 0 {
		t.Errorf("owner re-write produced inval=%v wb=%v", inval, wb)
	}
}

func TestDirectoryEvictLastSharerDropsEntry(t *testing.T) {
	d, _ := newDir()
	d.ReadMiss(1, 0)
	d.ReadMiss(1, 1)
	d.Evict(1, 0)
	if got := d.Sharers(1); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("sharers = %v, want [1]", got)
	}
	d.Evict(1, 1)
	if d.Entries() != 0 {
		t.Errorf("entries = %d after all evictions, want 0", d.Entries())
	}
}

func TestDirectoryEvictOwnerDropsModifiedEntry(t *testing.T) {
	// Modified implies exactly one sharer, so the owner's eviction is
	// the last sharer's eviction and must drop the entry entirely.
	d, _ := newDir()
	d.WriteMiss(2, 0)
	d.Evict(2, 0)
	if d.Entries() != 0 {
		t.Error("owner eviction left a directory entry")
	}
	if mod, _ := d.IsModified(2); mod {
		t.Error("owner eviction left modified state")
	}
}

func TestDirectoryNonSharerEvictIsNoop(t *testing.T) {
	d, _ := newDir()
	d.WriteMiss(2, 0)
	d.Evict(2, 1) // core 1 holds nothing
	if mod, owner := d.IsModified(2); !mod || owner != 0 {
		t.Errorf("non-sharer eviction disturbed state: (%v,%d)", mod, owner)
	}
}

func TestDirectoryDropReturnsHolders(t *testing.T) {
	d, _ := newDir()
	d.ReadMiss(6, 2)
	d.ReadMiss(6, 5)
	holders := d.Drop(6)
	if !reflect.DeepEqual(holders, []int{2, 5}) {
		t.Errorf("holders = %v, want [2 5]", holders)
	}
	if d.Entries() != 0 {
		t.Error("entry survived Drop")
	}
	if d.Drop(6) != nil {
		t.Error("second Drop returned holders")
	}
}

func TestDirectoryEvictUnknownLineIsNoop(t *testing.T) {
	d, _ := newDir()
	d.Evict(99, 0) // must not panic or create entries
	if d.Entries() != 0 {
		t.Error("Evict created an entry")
	}
}

func TestPropertyDirectoryAtMostOneModifiedOwner(t *testing.T) {
	// Random op sequences never leave a line modified with more than
	// one recorded sharer unless reads joined after the write.
	f := func(ops []uint16) bool {
		d, _ := newDir()
		const line = 42
		for _, op := range ops {
			core := int(op % 8)
			switch (op / 8) % 3 {
			case 0:
				d.ReadMiss(line, core)
			case 1:
				d.WriteMiss(line, core)
				// Invariant: immediately after a write, exactly one sharer.
				if s := d.Sharers(line); len(s) != 1 || s[0] != core {
					return false
				}
				if mod, owner := d.IsModified(line); !mod || owner != core {
					return false
				}
			case 2:
				d.Evict(line, core)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
