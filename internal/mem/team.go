package mem

import "fdt/internal/counters"

// TeamCtrs is a tenant's bus-attribution handle: the memory system
// charges every off-chip line transfer a thread causes — demand
// fetches, posted ownership fetches, prefetches, and the writebacks
// its fills force — to the counters of the team that thread belongs
// to, alongside the machine-global counters the shared bus always
// accumulates. A nil handle is the un-attributed (single-tenant
// legacy) path and charges nothing.
//
// Attribution follows the requester: a victim writeback forced by
// team A's fill is charged to team A even when the victim line was
// dirtied by team B — the transfer happens because of A's access,
// which is the accounting a bandwidth-partitioning scheduler needs.
type TeamCtrs struct {
	// BusBusy mirrors counters.BusBusyCycles for one team.
	BusBusy *counters.Counter
	// BusTxns mirrors counters.BusTransactions for one team.
	BusTxns *counters.Counter
}
