package mem

import (
	"fdt/internal/counters"
	"fdt/internal/invariant"
	"fdt/internal/sim"
	"fdt/internal/trace"
)

// Bus models the split-transaction, pipelined off-chip bus of Table 1.
// The address/command phase costs a fixed latency and is assumed
// pipelined (it never becomes the bottleneck); the data phase occupies
// the shared data bus for BusCyclesPerLine cycles per line, which
// caps peak bandwidth at one line per BusCyclesPerLine cycles — the
// quantity the paper's BAT saturates.
type Bus struct {
	data *sim.Resource
	lat  uint64
	perL uint64

	busy *counters.Counter
	txns *counters.Counter
	wait *counters.Counter

	// tr/track emit one span per data-phase occupancy onto the "bus"
	// trace track; traced caches the category check.
	tr     *trace.Tracer
	track  trace.TrackID
	traced bool

	// audit records per-transfer service intervals for the invariant
	// harness; checked caches the nil test off the hot path.
	audit   *invariant.QueueAudit
	checked bool

	// faultAccountingSkew and faultOccupancySkew are mutation-test
	// hooks (see DESIGN.md Section 10): the first under-accounts every
	// transfer's busy cycles without changing its occupancy, the second
	// stretches the occupancy without changing the accounting. Both are
	// deliberate bookkeeping bugs that the queueing invariants must
	// catch; they are never set outside tests. faultTeamAttrSkew
	// likewise under-charges every transfer's per-team attribution
	// without touching the global counter, which "team-bus-partition"
	// must catch.
	faultAccountingSkew uint64
	faultOccupancySkew  uint64
	faultTeamAttrSkew   uint64
}

// NewBus builds the off-chip bus and registers its counters
// (counters.BusBusyCycles, counters.BusTransactions) in the set.
func NewBus(cfg Config, ctrs *counters.Set) *Bus {
	return &Bus{
		data: sim.NewResource("offchip-bus"),
		lat:  cfg.BusLat,
		perL: cfg.BusCyclesPerLine,
		busy: ctrs.Counter(counters.BusBusyCycles),
		txns: ctrs.Counter(counters.BusTransactions),
		wait: ctrs.Counter(counters.BusWaitCycles),
	}
}

// setTracer arms bus tracing (called via System.SetTracer).
func (b *Bus) setTracer(t *trace.Tracer) {
	if !t.Wants(trace.CatMem) {
		return
	}
	b.tr = t
	b.track = t.Track("bus")
	b.traced = true
}

// setChecker arms the bus's invariant audit (called via
// System.SetChecker).
func (b *Bus) setChecker() {
	b.audit = invariant.NewQueueAudit("bus")
	b.checked = true
}

// finishCheck runs the bus's end-of-run invariants: the conservation
// identity every transfer maintains — busy cycles == transactions x
// cycles-per-line — plus the queue audit against the recorded
// schedule.
func (b *Bus) finishCheck(ck *invariant.Checker, now uint64) {
	if !b.checked {
		return
	}
	busy, txns := b.busy.Read(), b.txns.Read()
	ck.Pass(1)
	if busy != txns*b.perL {
		ck.Failf("bus-conservation", now,
			"busy cycles %d != %d transfers x %d cycles/line = %d",
			busy, txns, b.perL, txns*b.perL)
	}
	ck.Pass(1)
	if got := b.wait.Read(); got != b.audit.WaitSum() {
		ck.Failf("bus-wait-audit", now,
			"accounted wait cycles %d != observed queueing delay %d", got, b.audit.WaitSum())
	}
	b.audit.Check(ck, now, busy)
}

// FaultAccountingSkew arms a mutation-test hook: every transfer
// accounts skew fewer busy cycles than it occupies. The
// "bus-conservation" invariant must catch it.
func (b *Bus) FaultAccountingSkew(skew uint64) { b.faultAccountingSkew = skew }

// FaultOccupancySkew arms a mutation-test hook: every transfer
// occupies the bus for extra cycles beyond what it accounts. The
// "bus-busy-audit" invariant must catch it — and, because occupancy
// shapes timing, the figure-shape suite must notice the bent curve.
func (b *Bus) FaultOccupancySkew(extra uint64) { b.faultOccupancySkew = extra }

// FaultTeamAttrSkew arms a mutation-test hook: every transfer charges
// skew fewer busy cycles to its team than to the machine-global
// counter. The "team-bus-partition" invariant must catch it.
func (b *Bus) FaultTeamAttrSkew(skew uint64) { b.faultTeamAttrSkew = skew }

// chargeTeam attributes one transfer to the requesting tenant (nil tc
// is the un-attributed legacy path).
func (b *Bus) chargeTeam(tc *TeamCtrs) {
	if tc != nil {
		tc.BusBusy.Add(b.perL - b.faultTeamAttrSkew)
		tc.BusTxns.Inc()
	}
}

// Latency reports the one-way command latency.
func (b *Bus) Latency() uint64 { return b.lat }

// CyclesPerLine reports the data-phase occupancy of one line.
func (b *Bus) CyclesPerLine() uint64 { return b.perL }

// TransferLine performs the data phase of one line transfer on behalf
// of process p: it waits for the data bus, holds it for the line's
// occupancy, and accounts the busy cycles globally and to the
// requesting tenant (tc, nil for un-attributed traffic).
func (b *Bus) TransferLine(p *sim.Proc, tc *TeamCtrs) {
	t0 := p.Now()
	occ := b.perL + b.faultOccupancySkew
	start := b.data.Acquire(p, occ)
	b.wait.Add(start - t0)
	p.WaitUntil(start + occ)
	b.busy.Add(b.perL - b.faultAccountingSkew)
	b.txns.Inc()
	b.chargeTeam(tc)
	if b.traced {
		b.tr.Emit(trace.CatMem, trace.Event{
			Cycle: start, Dur: b.perL, Track: b.track, Kind: trace.Complete, Name: "xfer",
		})
	}
	if b.checked {
		b.audit.Record(t0, start, start+occ, false)
	}
}

// PostTransfer schedules one line's data phase without blocking the
// caller, starting no earlier than `earliest`, and returns the cycle
// at which the transfer completes. Posted transfers still consume
// bandwidth, delaying later demand transfers, and are attributed to
// the posting tenant (tc, nil for un-attributed traffic).
func (b *Bus) PostTransfer(earliest uint64, tc *TeamCtrs) (done uint64) {
	occ := b.perL + b.faultOccupancySkew
	start := b.data.ReserveAt(earliest, occ)
	b.busy.Add(b.perL - b.faultAccountingSkew)
	b.txns.Inc()
	b.chargeTeam(tc)
	if b.traced {
		b.tr.Emit(trace.CatMem, trace.Event{
			Cycle: start, Dur: b.perL, Track: b.track, Kind: trace.Complete, Name: "posted-xfer",
		})
	}
	if b.checked {
		b.audit.Record(earliest, start, start+occ, true)
	}
	return start + occ
}

// PostWriteback schedules a line writeback on the data bus without
// blocking the caller: evictions are fire-and-forget from the core's
// point of view. The writeback is attributed to the tenant whose fill
// forced it.
func (b *Bus) PostWriteback(now uint64, tc *TeamCtrs) {
	b.PostTransfer(now, tc)
}

// BusyCycles reports cumulative data-bus busy cycles (the counter BAT
// samples).
func (b *Bus) BusyCycles() uint64 { return b.busy.Read() }
