package mem

import (
	"fdt/internal/counters"
	"fdt/internal/sim"
	"fdt/internal/trace"
)

// Bus models the split-transaction, pipelined off-chip bus of Table 1.
// The address/command phase costs a fixed latency and is assumed
// pipelined (it never becomes the bottleneck); the data phase occupies
// the shared data bus for BusCyclesPerLine cycles per line, which
// caps peak bandwidth at one line per BusCyclesPerLine cycles — the
// quantity the paper's BAT saturates.
type Bus struct {
	data *sim.Resource
	lat  uint64
	perL uint64

	busy *counters.Counter
	txns *counters.Counter
	wait *counters.Counter

	// tr/track emit one span per data-phase occupancy onto the "bus"
	// trace track; traced caches the category check.
	tr     *trace.Tracer
	track  trace.TrackID
	traced bool
}

// NewBus builds the off-chip bus and registers its counters
// (counters.BusBusyCycles, counters.BusTransactions) in the set.
func NewBus(cfg Config, ctrs *counters.Set) *Bus {
	return &Bus{
		data: sim.NewResource("offchip-bus"),
		lat:  cfg.BusLat,
		perL: cfg.BusCyclesPerLine,
		busy: ctrs.Counter(counters.BusBusyCycles),
		txns: ctrs.Counter(counters.BusTransactions),
		wait: ctrs.Counter(counters.BusWaitCycles),
	}
}

// setTracer arms bus tracing (called via System.SetTracer).
func (b *Bus) setTracer(t *trace.Tracer) {
	if !t.Wants(trace.CatMem) {
		return
	}
	b.tr = t
	b.track = t.Track("bus")
	b.traced = true
}

// Latency reports the one-way command latency.
func (b *Bus) Latency() uint64 { return b.lat }

// CyclesPerLine reports the data-phase occupancy of one line.
func (b *Bus) CyclesPerLine() uint64 { return b.perL }

// TransferLine performs the data phase of one line transfer on behalf
// of process p: it waits for the data bus, holds it for the line's
// occupancy, and accounts the busy cycles.
func (b *Bus) TransferLine(p *sim.Proc) {
	t0 := p.Now()
	start := b.data.Acquire(p, b.perL)
	b.wait.Add(start - t0)
	p.WaitUntil(start + b.perL)
	b.busy.Add(b.perL)
	b.txns.Inc()
	if b.traced {
		b.tr.Emit(trace.CatMem, trace.Event{
			Cycle: start, Dur: b.perL, Track: b.track, Kind: trace.Complete, Name: "xfer",
		})
	}
}

// PostTransfer schedules one line's data phase without blocking the
// caller, starting no earlier than `earliest`, and returns the cycle
// at which the transfer completes. Posted transfers still consume
// bandwidth, delaying later demand transfers.
func (b *Bus) PostTransfer(earliest uint64) (done uint64) {
	start := b.data.ReserveAt(earliest, b.perL)
	b.busy.Add(b.perL)
	b.txns.Inc()
	if b.traced {
		b.tr.Emit(trace.CatMem, trace.Event{
			Cycle: start, Dur: b.perL, Track: b.track, Kind: trace.Complete, Name: "posted-xfer",
		})
	}
	return start + b.perL
}

// PostWriteback schedules a line writeback on the data bus without
// blocking the caller: evictions are fire-and-forget from the core's
// point of view.
func (b *Bus) PostWriteback(now uint64) {
	b.PostTransfer(now)
}

// BusyCycles reports cumulative data-bus busy cycles (the counter BAT
// samples).
func (b *Bus) BusyCycles() uint64 { return b.busy.Read() }
