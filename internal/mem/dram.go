package mem

import (
	"fmt"

	"fdt/internal/counters"
	"fdt/internal/invariant"
	"fdt/internal/sim"
	"fdt/internal/trace"
)

// DRAM models the Table-1 main memory: 32 banks, roughly 200-cycle
// bank access, with open rows (row buffers) and bank conflicts.
// Lines are interleaved across banks with an XOR-folded hash (the
// standard bank-hashing scheme real memory controllers use), so both
// sequential streams and power-of-two strides spread across banks and
// extract bank-level parallelism; the row buffer tracks the 4KB row
// most recently touched in each bank, giving streams row hits and
// conflicting access patterns the row-miss penalty.
type DRAM struct {
	banks    []*dramBank
	bankBits uint
	lineSz   uint64
	linesRow uint64
	hitLat   uint64
	missLat  uint64
	modelRow bool

	rowHits   *counters.Counter
	rowMisses *counters.Counter
	bankWait  *counters.Counter

	// tr/tracks emit one span per bank access (named by row-buffer
	// outcome) onto per-bank trace tracks; traced caches the check.
	tr     *trace.Tracer
	tracks []trace.TrackID
	traced bool

	// audits records per-bank service intervals for the invariant
	// harness; checked caches the nil test off the hot path.
	audits  []*invariant.QueueAudit
	checked bool
}

type dramBank struct {
	res     *sim.Resource
	openRow uint64
	hasOpen bool
}

// NewDRAM builds main memory from the configuration and registers its
// row-buffer counters in the set. The bank count must be a power of
// two for the XOR fold (Table 1's 32 is).
func NewDRAM(cfg Config, ctrs *counters.Set) *DRAM {
	if cfg.DRAMBanks&(cfg.DRAMBanks-1) != 0 {
		panic("mem: DRAM bank count must be a power of two")
	}
	bits := uint(0)
	for 1<<bits < cfg.DRAMBanks {
		bits++
	}
	d := &DRAM{
		banks:     make([]*dramBank, cfg.DRAMBanks),
		bankBits:  bits,
		lineSz:    uint64(cfg.LineBytes),
		linesRow:  uint64(cfg.DRAMRowBytes / cfg.LineBytes),
		hitLat:    cfg.DRAMRowHitLat,
		missLat:   cfg.DRAMRowMissLat,
		modelRow:  cfg.ModelRowBuffer,
		rowHits:   ctrs.Counter(counters.DRAMRowHits),
		rowMisses: ctrs.Counter(counters.DRAMRowMisses),
		bankWait:  ctrs.Counter(counters.DRAMBankWaitCycles),
	}
	for i := range d.banks {
		d.banks[i] = &dramBank{res: sim.NewResource("dram-bank")}
	}
	return d
}

// setTracer arms per-bank tracing (called via System.SetTracer).
func (d *DRAM) setTracer(t *trace.Tracer) {
	if !t.Wants(trace.CatMem) {
		return
	}
	d.tr = t
	d.tracks = make([]trace.TrackID, len(d.banks))
	for i := range d.banks {
		d.tracks[i] = t.Track(fmt.Sprintf("dram-bank-%d", i))
	}
	d.traced = true
}

// setChecker arms per-bank invariant audits (called via
// System.SetChecker).
func (d *DRAM) setChecker() {
	d.audits = make([]*invariant.QueueAudit, len(d.banks))
	for i := range d.audits {
		d.audits[i] = invariant.NewQueueAudit(fmt.Sprintf("dram-bank-%d", i))
	}
	d.checked = true
}

// finishCheck runs the DRAM invariants: each bank's queue audit is
// compared against its sim.Resource's own busy accounting (two
// independent bookkeepers of the same schedule), the row-buffer
// counters must partition the accesses, and the bank-wait counter must
// equal the observed queueing delay.
func (d *DRAM) finishCheck(ck *invariant.Checker, now uint64) {
	if !d.checked {
		return
	}
	var accesses, waits uint64
	for i, b := range d.banks {
		d.audits[i].Check(ck, now, b.res.BusyCycles())
		accesses += d.audits[i].Count()
		waits += d.audits[i].WaitSum()
	}
	ck.Pass(1)
	if hits, misses := d.rowHits.Read(), d.rowMisses.Read(); hits+misses != accesses {
		ck.Failf("dram-access-accounting", now,
			"row hits %d + row misses %d = %d != %d bank accesses", hits, misses, hits+misses, accesses)
	}
	ck.Pass(1)
	if got := d.bankWait.Read(); got != waits {
		ck.Failf("dram-wait-audit", now,
			"accounted bank-wait cycles %d != observed queueing delay %d", got, waits)
	}
}

// traceAccess emits one bank-occupancy span, named by row outcome.
func (d *DRAM) traceAccess(bank int, start, lat uint64, hit bool) {
	name := "row-miss"
	if hit {
		name = "row-hit"
	}
	d.tr.Emit(trace.CatMem, trace.Event{
		Cycle: start, Dur: lat, Track: d.tracks[bank], Kind: trace.Complete, Name: name,
	})
}

// bankAndRow maps a byte address to its bank and row. The bank is an
// XOR fold of the line address (bank hashing); the row is the 4KB
// region the line belongs to. Tracking the global row per bank is the
// usual simulator simplification: it preserves the behaviour that
// matters — streams get row hits, conflicting patterns get the
// row-miss penalty.
func (d *DRAM) bankAndRow(addr uint64) (int, uint64) {
	line := addr / d.lineSz
	row := line / d.linesRow
	return int(BankHash(line, d.bankBits)), row
}

// BankHash XOR-folds a line address down to bankBits bits. Exported
// so tests and the L3 bank mapping share one hashing definition.
func BankHash(line uint64, bankBits uint) uint64 {
	h := line ^ line>>bankBits ^ line>>(2*bankBits) ^ line>>(3*bankBits)
	return h & (1<<bankBits - 1)
}

// Access performs one line access on behalf of process p: it waits for
// the addressed bank, pays the row-hit or row-miss latency, and leaves
// the row open. The caller is blocked for queueing plus access time.
func (d *DRAM) Access(p *sim.Proc, addr uint64) {
	bank, row := d.bankAndRow(addr)
	b := d.banks[bank]
	lat := d.missLat
	hit := d.modelRow && b.hasOpen && b.openRow == row
	if hit {
		lat = d.hitLat
		d.rowHits.Inc()
	} else {
		d.rowMisses.Inc()
	}
	b.hasOpen, b.openRow = d.modelRow, row
	t0 := p.Now()
	start := b.res.Acquire(p, lat)
	d.bankWait.Add(start - t0)
	p.WaitUntil(start + lat)
	if d.traced {
		d.traceAccess(bank, start, lat, hit)
	}
	if d.checked {
		d.audits[bank].Record(t0, start, start+lat, false)
	}
}

// PostAccess performs a posted (non-blocking) access starting no
// earlier than `earliest` and returns its completion cycle. Used for
// writebacks and store-buffer fills, which occupy the bank without
// stalling a core.
func (d *DRAM) PostAccess(earliest, addr uint64) (done uint64) {
	bank, row := d.bankAndRow(addr)
	b := d.banks[bank]
	lat := d.missLat
	hit := d.modelRow && b.hasOpen && b.openRow == row
	if hit {
		lat = d.hitLat
		d.rowHits.Inc()
	} else {
		d.rowMisses.Inc()
	}
	b.hasOpen, b.openRow = d.modelRow, row
	start := b.res.ReserveAt(earliest, lat)
	if d.traced {
		d.traceAccess(bank, start, lat, hit)
	}
	if d.checked {
		d.audits[bank].Record(earliest, start, start+lat, true)
	}
	return start + lat
}

// PostWrite is PostAccess for callers that do not need the
// completion time.
func (d *DRAM) PostWrite(now, addr uint64) {
	d.PostAccess(now, addr)
}

// Banks reports the number of banks.
func (d *DRAM) Banks() int { return len(d.banks) }
