package mem

import (
	"testing"

	"fdt/internal/counters"
	"fdt/internal/sim"
)

func dramUnderTest(modelRow bool) (*DRAM, *counters.Set, Config) {
	cfg := DefaultConfig()
	cfg.ModelRowBuffer = modelRow
	ctrs := counters.NewSet()
	return NewDRAM(cfg, ctrs), ctrs, cfg
}

// Lines 0 and 33 hash to the same bank (BankHash(33,5) == 0) and sit
// in the same 4KB row (row 0); lines 0 and 66 share the bank but not
// the row. The tests below use these fixed points of the hash.
func TestBankHashFixedPoints(t *testing.T) {
	if BankHash(0, 5) != 0 || BankHash(33, 5) != 0 || BankHash(66, 5) != 0 {
		t.Fatalf("hash fixed points moved: %d %d %d",
			BankHash(0, 5), BankHash(33, 5), BankHash(66, 5))
	}
	if 33/64 != 0 || 66/64 != 1 {
		t.Fatal("row arithmetic changed")
	}
}

func TestDRAMRowMissThenHit(t *testing.T) {
	d, ctrs, cfg := dramUnderTest(true)
	e := sim.NewEngine()
	var t1, t2 uint64
	e.Spawn("a", func(p *sim.Proc) {
		d.Access(p, 0) // cold: row miss
		t1 = p.Now()
		d.Access(p, 33*64) // same bank, same 4KB row: row hit
		t2 = p.Now() - t1
	})
	e.Run()
	if t1 != cfg.DRAMRowMissLat {
		t.Errorf("first access took %d, want row-miss %d", t1, cfg.DRAMRowMissLat)
	}
	if t2 != cfg.DRAMRowHitLat {
		t.Errorf("second access took %d, want row-hit %d", t2, cfg.DRAMRowHitLat)
	}
	if ctrs.Counter(counters.DRAMRowHits).Read() != 1 || ctrs.Counter(counters.DRAMRowMisses).Read() != 1 {
		t.Errorf("row counters = %s", ctrs)
	}
}

func TestDRAMRowConflict(t *testing.T) {
	d, _, cfg := dramUnderTest(true)
	e := sim.NewEngine()
	var second uint64
	e.Spawn("a", func(p *sim.Proc) {
		d.Access(p, 0)
		start := p.Now()
		// Line 66: same bank as line 0, different row: conflict.
		d.Access(p, 66*64)
		second = p.Now() - start
	})
	e.Run()
	if second != cfg.DRAMRowMissLat {
		t.Errorf("conflicting row took %d, want %d", second, cfg.DRAMRowMissLat)
	}
}

func TestDRAMBanksOperateInParallel(t *testing.T) {
	d, _, cfg := dramUnderTest(true)
	e := sim.NewEngine()
	var done []uint64
	for i := 0; i < 4; i++ {
		addr := uint64(i) * 64 // lines 0..3 hash to distinct banks
		e.Spawn("p", func(p *sim.Proc) {
			d.Access(p, addr)
			done = append(done, p.Now())
		})
	}
	e.Run()
	for _, fin := range done {
		if fin != cfg.DRAMRowMissLat {
			t.Errorf("parallel bank access finished at %d, want %d (no serialization)", fin, cfg.DRAMRowMissLat)
		}
	}
}

func TestDRAMSameBankSerializes(t *testing.T) {
	d, _, cfg := dramUnderTest(true)
	e := sim.NewEngine()
	var done []uint64
	for i := 0; i < 2; i++ {
		addr := uint64(i) * 33 * 64 // lines 0 and 33: same bank, same row
		e.Spawn("p", func(p *sim.Proc) {
			d.Access(p, addr)
			done = append(done, p.Now())
		})
	}
	e.Run()
	want0 := cfg.DRAMRowMissLat
	want1 := cfg.DRAMRowMissLat + cfg.DRAMRowHitLat
	if done[0] != want0 || done[1] != want1 {
		t.Errorf("done = %v, want [%d %d]", done, want0, want1)
	}
}

func TestDRAMRowBufferDisabled(t *testing.T) {
	d, ctrs, cfg := dramUnderTest(false)
	e := sim.NewEngine()
	e.Spawn("a", func(p *sim.Proc) {
		d.Access(p, 0)
		d.Access(p, 64) // would be a hit with row buffers on
	})
	e.Run()
	if e.Now() != 2*cfg.DRAMRowMissLat {
		t.Errorf("elapsed = %d, want %d (all misses)", e.Now(), 2*cfg.DRAMRowMissLat)
	}
	if ctrs.Counter(counters.DRAMRowHits).Read() != 0 {
		t.Error("row hits recorded with row buffer disabled")
	}
}

func TestDRAMPostWriteDelaysLaterAccess(t *testing.T) {
	d, _, cfg := dramUnderTest(true)
	e := sim.NewEngine()
	var elapsed uint64
	e.Spawn("a", func(p *sim.Proc) {
		d.PostWrite(p.Now(), 0) // occupies the bank without blocking
		if p.Now() != 0 {
			t.Error("PostWrite blocked the caller")
		}
		d.Access(p, 0) // must queue behind the posted write
		elapsed = p.Now()
	})
	e.Run()
	want := cfg.DRAMRowMissLat + cfg.DRAMRowHitLat
	if elapsed != want {
		t.Errorf("access after posted write finished at %d, want %d", elapsed, want)
	}
}
