package mem

import (
	"fmt"

	"fdt/internal/counters"
	"fdt/internal/invariant"
	"fdt/internal/sim"
	"fdt/internal/trace"
)

// System is the complete memory system of the simulated CMP: one
// private L1+L2 pair per core (exposed as a Port), a shared banked L3
// with its directory, the ring, the off-chip bus and DRAM. All shared
// structures are safe to touch from simulation processes because the
// sim kernel runs exactly one process at a time.
type System struct {
	Cfg  Config
	Ctrs *counters.Set
	Ring *Ring
	Bus  *Bus
	DRAM *DRAM
	Dir  *Directory

	l3         []*l3Bank
	l3BankBits uint
	ports      []*Port

	l3Hits     *counters.Counter
	l3Misses   *counters.Counter
	loadStall  *counters.Counter
	storeStall *counters.Counter
	prefetches *counters.Counter

	// heap is the bump allocator cursor for workload address space.
	heap uint64

	// tr/coreTracks emit L3-miss instants onto per-core trace tracks;
	// memTrace caches the category check.
	tr         *trace.Tracer
	coreTracks []trace.TrackID
	memTrace   bool

	// ck holds the armed invariant checker (nil when disabled); the
	// subsystems cache their own enabled flags off the hot paths.
	ck *invariant.Checker
}

type l3Bank struct {
	cache *Cache
	port  *sim.Resource
}

// Port is one core's window into the memory system: its private L1
// and L2 plus the shared structures behind them.
type Port struct {
	sys  *System
	core int
	l1   *Cache
	l2   *Cache
	// sb holds completion times of outstanding posted stores (the
	// store buffer). StoreStream stalls only when it is full.
	sb []uint64
	// attr is the bus-attribution handle of the tenant currently
	// issuing through this port (nil when un-attributed). Under SMT,
	// contexts of different teams share one core's port, so the CPU
	// layer re-installs its team's handle before every access; each
	// access captures the handle at entry so a parked access keeps
	// charging its own team while another context interleaves.
	attr *TeamCtrs
}

// NewSystem builds the memory system for the given configuration.
func NewSystem(cfg Config, ctrs *counters.Set) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cores > 64 {
		return nil, fmt.Errorf("mem: directory sharer bitmask supports at most 64 cores, got %d", cfg.Cores)
	}
	s := &System{
		Cfg:        cfg,
		Ctrs:       ctrs,
		Ring:       NewRing(cfg.Cores, cfg.L3Banks, cfg.RingHopLat),
		Bus:        NewBus(cfg, ctrs),
		DRAM:       NewDRAM(cfg, ctrs),
		Dir:        NewDirectory(ctrs),
		l3Hits:     ctrs.Counter(counters.L3Hits),
		l3Misses:   ctrs.Counter(counters.L3Misses),
		loadStall:  ctrs.Counter(counters.LoadStallCycles),
		storeStall: ctrs.Counter(counters.StoreStallCycles),
		prefetches: ctrs.Counter(counters.L2Prefetches),
		heap:       1 << 20, // leave page zero and low memory unused
	}
	for 1<<s.l3BankBits < cfg.L3Banks {
		s.l3BankBits++
	}
	bankBytes := cfg.L3Bytes / cfg.L3Banks
	for b := 0; b < cfg.L3Banks; b++ {
		s.l3 = append(s.l3, &l3Bank{
			cache: NewCache(bankBytes, cfg.L3Ways, cfg.LineBytes),
			port:  sim.NewResource(fmt.Sprintf("l3-bank-%d", b)),
		})
	}
	for c := 0; c < cfg.Cores; c++ {
		s.ports = append(s.ports, &Port{
			sys:  s,
			core: c,
			l1:   NewCache(cfg.L1Bytes, cfg.L1Ways, cfg.LineBytes),
			l2:   NewCache(cfg.L2Bytes, cfg.L2Ways, cfg.LineBytes),
		})
	}
	return s, nil
}

// MustNewSystem is NewSystem for known-good configurations.
func MustNewSystem(cfg Config, ctrs *counters.Set) *System {
	s, err := NewSystem(cfg, ctrs)
	if err != nil {
		panic(err)
	}
	return s
}

// SetTracer arms memory-system tracing: bus data-phase spans, DRAM
// bank-access spans, and per-core L3-miss instants. A nil tracer, or
// one without trace.CatMem, leaves every memory hot path untraced.
func (s *System) SetTracer(t *trace.Tracer) {
	if !t.Wants(trace.CatMem) {
		return
	}
	s.tr = t
	s.memTrace = true
	s.Bus.setTracer(t)
	s.DRAM.setTracer(t)
	s.coreTracks = make([]trace.TrackID, s.Cfg.Cores)
	for c := range s.coreTracks {
		s.coreTracks[c] = t.Track(fmt.Sprintf("core-%d", c))
	}
}

// SetChecker arms the memory system's invariant harness: queue audits
// on the bus and every DRAM bank, plus the continuous directory
// single-writer check. A nil or disabled checker leaves every hot path
// unchecked.
func (s *System) SetChecker(ck *invariant.Checker) {
	if !ck.Enabled() {
		return
	}
	s.ck = ck
	s.Bus.setChecker()
	s.DRAM.setChecker()
	s.Dir.setChecker(ck)
}

// FinishCheck runs the memory system's end-of-run invariants: the bus
// and DRAM conservation/queueing checks and the quiescent coherence
// walk comparing directory state against the actual cache contents.
func (s *System) FinishCheck(now uint64) {
	if s.ck == nil {
		return
	}
	s.Bus.finishCheck(s.ck, now)
	s.DRAM.finishCheck(s.ck, now)
	s.checkCoherence()
}

// checkCoherence cross-checks the directory against the caches at
// quiescence (no simulation processes in flight):
//
//   - "dir-single-writer": re-asserts the MESI rule over every entry;
//   - "dir-sharer-cached": every recorded sharer actually holds the
//     line in its private L2 (the directory never over-approximates on
//     the clean side: sharer bits are cleared on evict/invalidate);
//   - "dir-dirty-owned": a dirty private L2 line whose core is listed
//     as a sharer must be the Modified owner. A dirty copy whose core
//     is absent from the sharer mask is tolerated: a concurrent
//     write miss by another core invalidates directory state before the
//     first writer's blocking fill completes, leaving a transient stale
//     copy that the next access cleans up;
//   - "cache-l1-subset": every valid L1 line is present in the same
//     core's L2 (the hierarchy maintains strict inclusion).
func (s *System) checkCoherence() {
	if !s.Cfg.ModelCoherence {
		return
	}
	ck := s.ck
	s.Dir.ForEach(func(line uint64, sharers uint64, owner int, modified bool) {
		ck.Pass(1)
		if modified && sharers != 1<<uint(owner) {
			ck.Failf("dir-single-writer", 0,
				"quiescent: line %#x modified by core %d but sharer mask is %#b",
				line, owner, sharers)
		}
		for c := 0; sharers != 0; c++ {
			if sharers&1 != 0 {
				ck.Pass(1)
				if !s.ports[c].l2.Contains(line) {
					ck.Failf("dir-sharer-cached", 0,
						"quiescent: directory lists core %d as sharer of line %#x but its L2 does not hold it",
						c, line)
				}
			}
			sharers >>= 1
		}
	})
	for c, pt := range s.ports {
		pt.l2.ForEachLine(func(line uint64, dirty bool) {
			if !dirty {
				return
			}
			mod, owner := s.Dir.IsModified(line)
			listed := false
			for _, sc := range s.Dir.Sharers(line) {
				if sc == c {
					listed = true
					break
				}
			}
			if !listed {
				// Transient stale copy from a concurrent write miss —
				// tolerated (see doc comment above).
				return
			}
			ck.Pass(1)
			if !mod || owner != c {
				ck.Failf("dir-dirty-owned", 0,
					"quiescent: core %d holds line %#x dirty and is a sharer, but directory says modified=%v owner=%d",
					c, line, mod, owner)
			}
		})
		pt.l1.ForEachLine(func(line uint64, dirty bool) {
			ck.Pass(1)
			if !pt.l2.Contains(line) {
				ck.Failf("cache-l1-subset", 0,
					"quiescent: core %d L1 holds line %#x but its L2 does not (inclusion broken)",
					c, line)
			}
		})
	}
}

// traceL3Miss emits an L3-miss instant on the requesting core's track.
func (s *System) traceL3Miss(now uint64, core, bank int) {
	if !s.memTrace {
		return
	}
	s.tr.Emit(trace.CatMem, trace.Event{
		Cycle: now, Track: s.coreTracks[core], Kind: trace.Instant,
		Name: "l3-miss", A0: uint64(bank),
	})
}

// Port returns core's memory port.
func (s *System) Port(core int) *Port {
	return s.ports[core]
}

// Alloc reserves size bytes of simulated address space, line-aligned,
// and returns the base address. Workloads use it to lay out their
// arrays; the data itself lives in the workload's Go values.
func (s *System) Alloc(size int) uint64 {
	line := uint64(s.Cfg.LineBytes)
	base := (s.heap + line - 1) / line * line
	s.heap = base + uint64(size)
	return base
}

// bankOf maps a line to its L3 bank with the same XOR-fold hashing
// DRAM uses, so power-of-two strides spread across banks instead of
// pounding one port. Bank shards index their sets with the global
// line address directly.
func (s *System) bankOf(line uint64) int {
	return int(BankHash(line, s.l3BankBits))
}

// SetTeamCtrs installs the bus-attribution handle for subsequent
// accesses through this port (nil disables attribution). The CPU
// layer calls it before every access; see the attr field for why.
func (pt *Port) SetTeamCtrs(tc *TeamCtrs) { pt.attr = tc }

// Load performs a data load of the line containing addr on behalf of
// process p running on this port's core, advancing p through every
// stall the access incurs.
func (pt *Port) Load(p *sim.Proc, addr uint64) {
	tc := pt.attr
	cfg := &pt.sys.Cfg
	line := addr / uint64(cfg.LineBytes)
	p.Advance(cfg.L1Lat)
	if pt.l1.Lookup(line, false) {
		return
	}
	t0 := p.Now()
	p.Advance(cfg.L2Lat)
	if pt.l2.Lookup(line, false) {
		pt.fillL1(line)
		pt.sys.loadStall.Add(p.Now() - t0)
		return
	}
	pt.sys.sharedAccess(p, pt, addr, line, false, tc)
	pt.fillL2(p.Now(), line, false, tc)
	pt.fillL1(line)
	pt.sys.loadStall.Add(p.Now() - t0)
	if cfg.PrefetchNextLine {
		pt.sys.postPrefetch(p.Now(), pt, addr+uint64(cfg.LineBytes), tc)
	}
}

// postPrefetch fetches the line containing addr into this core's L2
// in the background: it performs the coherence bookkeeping, consumes
// bus and DRAM bandwidth like any fetch, but never stalls the core.
// (The line is installed immediately — slightly optimistic on the
// prefetch's own timeliness, honest on the bandwidth it consumes.)
func (s *System) postPrefetch(now uint64, pt *Port, addr uint64, tc *TeamCtrs) {
	cfg := &s.Cfg
	line := addr / uint64(cfg.LineBytes)
	if pt.l2.Contains(line) {
		return
	}
	s.prefetches.Inc()
	bank := s.bankOf(line)
	dirty := false
	if cfg.ModelCoherence {
		needWB, owner := s.Dir.ReadMiss(line, pt.core)
		if needWB {
			s.ports[owner].l2.Clean(line)
			dirty = true
		}
	}
	if s.l3[bank].cache.Lookup(line, dirty) {
		s.l3Hits.Inc()
	} else {
		s.l3Misses.Inc()
		s.traceL3Miss(now, pt.core, bank)
		s.DRAM.PostAccess(now+cfg.BusLat, addr)
		s.Bus.PostTransfer(now, tc)
		s.insertL3(now, bank, line, dirty, tc)
	}
	pt.fillL2(now, line, false, tc)
}

// Store performs a data store to the line containing addr. The L1 is
// write-through (Table 1), so L1 copies stay clean and the L2 holds
// the dirty data. A store to a line this core already owns exclusively
// retires through the write buffer at L1 latency; stores to shared or
// absent lines pay the read-for-ownership walk including invalidation
// round-trips.
func (pt *Port) Store(p *sim.Proc, addr uint64) {
	tc := pt.attr
	cfg := &pt.sys.Cfg
	line := addr / uint64(cfg.LineBytes)
	p.Advance(cfg.L1Lat)
	if pt.l2.Contains(line) && pt.ownsExclusive(line) {
		pt.l2.Lookup(line, true) // refresh LRU, set dirty
		if pt.l1.Contains(line) {
			pt.l1.Lookup(line, false) // write-through keeps L1 clean
		}
		return
	}
	t0 := p.Now()
	p.Advance(cfg.L2Lat)
	pt.sys.sharedAccess(p, pt, addr, line, true, tc)
	pt.fillL2(p.Now(), line, true, tc)
	pt.fillL1(line)
	pt.sys.storeStall.Add(p.Now() - t0)
}

// StoreStream performs a streaming (write-buffered) store: the store
// retires at L1 latency into the store buffer and the line fetch it
// may require proceeds in the background, consuming bus and DRAM
// bandwidth without stalling the core — unless the store buffer is
// full, in which case the core waits for the oldest entry. This is
// how write streams (convert's output image, transpose's output
// matrix) exert bus pressure in real machines.
func (pt *Port) StoreStream(p *sim.Proc, addr uint64) {
	tc := pt.attr
	cfg := &pt.sys.Cfg
	line := addr / uint64(cfg.LineBytes)
	p.Advance(cfg.L1Lat)
	if pt.l2.Contains(line) && pt.ownsExclusive(line) {
		pt.l2.Lookup(line, true)
		if pt.l1.Contains(line) {
			pt.l1.Lookup(line, false)
		}
		return
	}
	pt.drainStoreBuffer(p.Now())
	if len(pt.sb) >= cfg.StoreBufferEntries {
		t0 := p.Now()
		p.WaitUntil(pt.sb[0])
		pt.sys.storeStall.Add(p.Now() - t0)
		pt.drainStoreBuffer(p.Now())
	}
	done := pt.sys.postOwnership(p.Now(), pt, addr, line, tc)
	pt.sb = append(pt.sb, done)
	pt.fillL2(p.Now(), line, true, tc)
	pt.fillL1(line)
}

// drainStoreBuffer retires completed posted stores.
func (pt *Port) drainStoreBuffer(now uint64) {
	i := 0
	for i < len(pt.sb) && pt.sb[i] <= now {
		i++
	}
	if i > 0 {
		pt.sb = append(pt.sb[:0], pt.sb[i:]...)
	}
}

// StoreBufferOccupancy reports outstanding posted stores (test aid).
func (pt *Port) StoreBufferOccupancy() int { return len(pt.sb) }

// postOwnership performs the shared-side work of a posted RFO without
// blocking: directory bookkeeping and invalidations take effect
// immediately (the sim kernel's run-to-completion step makes this
// atomic), the latencies accumulate into the returned completion
// time, and any off-chip fetch is posted onto the DRAM bank and data
// bus.
func (s *System) postOwnership(now uint64, pt *Port, addr, line uint64, tc *TeamCtrs) (done uint64) {
	cfg := &s.Cfg
	bank := s.bankOf(line)
	b := s.l3[bank]
	done = now + s.Ring.CoreToBank(pt.core, bank) + cfg.L3PortOccupancy

	lineDirtyInL3 := false
	if cfg.ModelCoherence {
		invalidate, needWB, owner := s.Dir.WriteMiss(line, pt.core)
		var worst uint64
		for _, c := range invalidate {
			if d := 2 * s.Ring.CoreToBank(c, bank); d > worst {
				worst = d
			}
			op := s.ports[c]
			op.l1.Invalidate(line)
			if _, wasDirty := op.l2.Invalidate(line); wasDirty {
				lineDirtyInL3 = true
			}
		}
		if needWB {
			if d := 2*s.Ring.CoreToBank(owner, bank) + cfg.L2Lat; d > worst {
				worst = d
			}
			lineDirtyInL3 = true
		}
		done += worst
	}

	done += cfg.L3Lat
	if b.cache.Lookup(line, lineDirtyInL3) {
		s.l3Hits.Inc()
		return done
	}
	s.l3Misses.Inc()
	s.traceL3Miss(now, pt.core, bank)
	// The data-bus slot is reserved work-conservingly at the current
	// cycle: a split-transaction bus backfills its schedule from the
	// pending-transaction queue, so it never idles while transactions
	// are outstanding. (Reserving at the future command-ready time
	// instead would pin unfillable holes into the reservation
	// timeline — an artifact, since real arbiters reorder around
	// unready transactions.) The store completes when both its bus
	// slot and its DRAM access have finished.
	dramDone := s.DRAM.PostAccess(now+cfg.BusLat, addr)
	busDone := s.Bus.PostTransfer(now, tc)
	if dramDone > busDone {
		busDone = dramDone
	}
	s.insertL3(now, bank, line, lineDirtyInL3, tc)
	return busDone
}

// ownsExclusive reports whether this core may silently write the line.
func (pt *Port) ownsExclusive(line uint64) bool {
	if !pt.sys.Cfg.ModelCoherence {
		return true
	}
	mod, owner := pt.sys.Dir.IsModified(line)
	return mod && owner == pt.core
}

// sharedAccess walks the shared side of the hierarchy: ring to the L3
// bank, directory actions, L3 lookup, and on a miss the off-chip
// fetch. On return the line is present in the bank and p has been
// charged the full round trip.
func (s *System) sharedAccess(p *sim.Proc, pt *Port, addr, line uint64, write bool, tc *TeamCtrs) {
	cfg := &s.Cfg
	bank := s.bankOf(line)
	b := s.l3[bank]

	p.Advance(s.Ring.CoreToBank(pt.core, bank))
	b.port.Acquire(p, cfg.L3PortOccupancy)

	lineDirtyInL3 := false
	if cfg.ModelCoherence {
		if write {
			invalidate, needWB, owner := s.Dir.WriteMiss(line, pt.core)
			var worst uint64
			for _, c := range invalidate {
				if d := 2 * s.Ring.CoreToBank(c, bank); d > worst {
					worst = d
				}
				op := s.ports[c]
				op.l1.Invalidate(line)
				if _, wasDirty := op.l2.Invalidate(line); wasDirty {
					lineDirtyInL3 = true
				}
			}
			if needWB {
				if d := 2*s.Ring.CoreToBank(owner, bank) + cfg.L2Lat; d > worst {
					worst = d
				}
				lineDirtyInL3 = true
			}
			p.Advance(worst)
		} else {
			needWB, owner := s.Dir.ReadMiss(line, pt.core)
			if needWB {
				p.Advance(2*s.Ring.CoreToBank(owner, bank) + cfg.L2Lat)
				op := s.ports[owner]
				op.l2.Clean(line)
				lineDirtyInL3 = true
			}
		}
	}

	p.Advance(cfg.L3Lat)
	if b.cache.Lookup(line, lineDirtyInL3) {
		s.l3Hits.Inc()
	} else {
		s.l3Misses.Inc()
		s.traceL3Miss(p.Now(), pt.core, bank)
		s.fetchFromMemory(p, addr, tc)
		s.insertL3(p.Now(), bank, line, lineDirtyInL3, tc)
	}

	p.Advance(s.Ring.CoreToBank(pt.core, bank))
}

// fetchFromMemory performs the off-chip portion of a miss: command
// phase, DRAM bank access, and the data phase that occupies the shared
// bus — the paper's bandwidth bottleneck.
func (s *System) fetchFromMemory(p *sim.Proc, addr uint64, tc *TeamCtrs) {
	p.Advance(s.Cfg.BusLat)
	s.DRAM.Access(p, addr)
	s.Bus.TransferLine(p, tc)
}

// insertL3 places the fetched line into its bank, handling inclusion:
// an evicted victim is dropped from every private cache that holds it,
// and dirty victims are written back off-chip as posted transfers.
func (s *System) insertL3(now uint64, bank int, line uint64, dirty bool, tc *TeamCtrs) {
	victim, victimDirty, evicted := s.l3[bank].cache.Insert(line, dirty)
	if !evicted {
		return
	}
	if s.Cfg.ModelCoherence {
		for _, h := range s.Dir.Drop(victim) {
			op := s.ports[h]
			op.l1.Invalidate(victim)
			if _, wasDirty := op.l2.Invalidate(victim); wasDirty {
				victimDirty = true
			}
		}
	}
	if victimDirty {
		s.Bus.PostWriteback(now, tc)
		s.DRAM.PostWrite(now, victim*uint64(s.Cfg.LineBytes))
	}
}

// fillL2 installs the line in this core's L2, handling the victim:
// directory bookkeeping plus a writeback of dirty data into the L3.
func (pt *Port) fillL2(now uint64, line uint64, dirty bool, tc *TeamCtrs) {
	victim, victimDirty, evicted := pt.l2.Insert(line, dirty)
	if !evicted {
		return
	}
	pt.l1.Invalidate(victim) // keep L1 subset of L2
	if pt.sys.Cfg.ModelCoherence {
		pt.sys.Dir.Evict(victim, pt.core)
	}
	if victimDirty {
		// Posted writeback into the inclusive L3: mark the line dirty
		// there; if inclusion was somehow broken, write it off-chip.
		s := pt.sys
		vb := s.bankOf(victim)
		if !s.l3[vb].cache.MarkDirty(victim) {
			s.Bus.PostWriteback(now, tc)
			s.DRAM.PostWrite(now, victim*uint64(s.Cfg.LineBytes))
		}
	}
}

// fillL1 installs the line in the write-through L1; victims are always
// clean and vanish silently.
func (pt *Port) fillL1(line uint64) {
	pt.l1.Insert(line, false)
}

// LineBytes reports the machine's cache-line size.
func (pt *Port) LineBytes() int { return pt.sys.Cfg.LineBytes }

// L1 exposes the private L1 (test aid).
func (pt *Port) L1() *Cache { return pt.l1 }

// L2 exposes the private L2 (test aid).
func (pt *Port) L2() *Cache { return pt.l2 }

// L3BankCache exposes a bank's cache shard (test aid).
func (s *System) L3BankCache(bank int) *Cache { return s.l3[bank].cache }
