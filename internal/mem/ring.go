package mem

// Ring models the bidirectional on-chip ring of Table 1. Each core
// occupies one ring stop; the eight L3 banks (with their directory
// slices) sit at evenly spaced stops. Messages take the shorter
// direction; latency is hops times the per-hop latency. Link
// contention is not modeled — the paper's ring is 64 bytes wide with
// separate control and data rings, so queueing there is negligible
// next to the off-chip bus, which is the bottleneck under study.
type Ring struct {
	stops  int
	hopLat uint64
	banks  int
}

// NewRing builds a ring with one stop per core and L3 banks placed at
// stops bank*(cores/banks).
func NewRing(cores, l3Banks int, hopLat uint64) *Ring {
	return &Ring{stops: cores, hopLat: hopLat, banks: l3Banks}
}

// BankStop reports the ring stop of an L3 bank.
func (r *Ring) BankStop(bank int) int {
	return bank * (r.stops / r.banks)
}

// Hops reports the minimum hop count between two stops on the
// bidirectional ring.
func (r *Ring) Hops(a, b int) uint64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if other := r.stops - d; other < d {
		d = other
	}
	return uint64(d)
}

// CoreToBank reports the one-way latency from a core's stop to an L3
// bank's stop.
func (r *Ring) CoreToBank(core, bank int) uint64 {
	return r.Hops(core, r.BankStop(bank)) * r.hopLat
}

// CoreToCore reports the one-way latency between two cores' stops
// (used for invalidation and ownership-transfer messages).
func (r *Ring) CoreToCore(a, b int) uint64 {
	return r.Hops(a, b) * r.hopLat
}
