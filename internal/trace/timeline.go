package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file implements the plain-text utilization-timeline exporter:
// the captured span events, folded into fixed-width intervals of
// simulated cycles, rendered as one row of per-resource utilization
// percentages per interval. It is the quick, diffable view of the
// same queueing phenomena the Chrome export shows visually — bus
// saturation (Eq 5's regime) and critical-section serialization
// (Eq 3's regime) over the run.

// Timeline is the computed per-interval utilization series.
type Timeline struct {
	// Interval is the bin width in cycles.
	Interval uint64
	// Bins holds one entry per interval, in time order.
	Bins []TimelineBin
	// DRAMBanks is the number of DRAM-bank tracks seen (the divisor
	// for aggregate DRAM utilization).
	DRAMBanks int
	// Dropped and Emitted mirror the tracer's accounting so a
	// truncated timeline is never mistaken for a quiet one.
	Dropped, Emitted uint64
}

// TimelineBin aggregates one interval.
type TimelineBin struct {
	// End is the bin's closing cycle (bin i covers [End-Interval, End)).
	End uint64
	// BusBusy, CSHeld, CSWait and DRAMBusy are occupied cycles within
	// the bin: data-bus transfer cycles, critical-section hold cycles
	// summed over threads, critical-section wait cycles summed over
	// threads, and DRAM bank-access cycles summed over banks.
	BusBusy, CSHeld, CSWait, DRAMBusy uint64
	// Events counts events whose start cycle lies in the bin.
	Events int
}

// ComputeTimeline folds the tracer's captured events into
// interval-sized bins. interval 0 defaults to 10000 cycles.
func ComputeTimeline(t *Tracer, interval uint64) Timeline {
	if interval == 0 {
		interval = 10000
	}
	tl := Timeline{Interval: interval, Dropped: t.Dropped(), Emitted: t.Emitted()}

	tracks := t.Tracks()
	isBus := make([]bool, len(tracks))
	isDRAM := make([]bool, len(tracks))
	for id, name := range tracks {
		switch {
		case name == "bus":
			isBus[id] = true
		case strings.HasPrefix(name, "dram-bank-"):
			isDRAM[id] = true
			tl.DRAMBanks++
		}
	}

	evs := t.Events()
	var maxCycle uint64
	for _, ev := range evs {
		if end := ev.Cycle + ev.Dur; end > maxCycle {
			maxCycle = end
		}
	}
	if maxCycle == 0 {
		return tl
	}
	nbins := int((maxCycle + interval - 1) / interval)
	tl.Bins = make([]TimelineBin, nbins)
	for i := range tl.Bins {
		tl.Bins[i].End = uint64(i+1) * interval
	}

	for _, ev := range evs {
		tl.Bins[int(ev.Cycle/interval)].Events++
		if ev.Kind == Complete && ev.Dur > 0 {
			addSpan(&tl, ev, interval, isBus, isDRAM)
		}
	}
	return tl
}

// addSpan distributes a Complete event's duration across the bins it
// overlaps.
func addSpan(tl *Timeline, ev Event, interval uint64, isBus, isDRAM []bool) {
	start, end := ev.Cycle, ev.Cycle+ev.Dur
	for b := start / interval; b*interval < end; b++ {
		lo, hi := b*interval, (b+1)*interval
		if start > lo {
			lo = start
		}
		if end < hi {
			hi = end
		}
		bin := &tl.Bins[int(b)]
		switch {
		case int(ev.Track) < len(isBus) && isBus[ev.Track]:
			bin.BusBusy += hi - lo
		case int(ev.Track) < len(isDRAM) && isDRAM[ev.Track]:
			bin.DRAMBusy += hi - lo
		case ev.Name == "cs":
			bin.CSHeld += hi - lo
		case ev.Name == "cs-wait":
			bin.CSWait += hi - lo
		}
	}
}

// WriteTimeline renders the tracer's utilization timeline as plain
// text: a commented header (with the drop accounting) and one row per
// interval. cs% can exceed 100 when threads serialize on more than
// one lock; bus% is a true single-server utilization.
func WriteTimeline(w io.Writer, t *Tracer, interval uint64) error {
	tl := ComputeTimeline(t, interval)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# fdt utilization timeline: interval=%d cycles, %d intervals\n",
		tl.Interval, len(tl.Bins))
	fmt.Fprintf(bw, "# events: %d emitted, %d dropped (ring capacity %d)\n",
		tl.Emitted, tl.Dropped, t.Cap())
	fmt.Fprintf(bw, "# bus%% = data-bus occupancy; cs%%/cswait%% = critical-section hold/wait cycles\n")
	fmt.Fprintf(bw, "# summed over threads; dram%% = bank occupancy averaged over %d banks\n", tl.DRAMBanks)
	fmt.Fprintf(bw, "#%11s %7s %7s %8s %7s %8s\n", "cycle", "bus%", "cs%", "cswait%", "dram%", "events")
	for _, b := range tl.Bins {
		iv := float64(tl.Interval)
		dram := 0.0
		if tl.DRAMBanks > 0 {
			dram = 100 * float64(b.DRAMBusy) / (iv * float64(tl.DRAMBanks))
		}
		fmt.Fprintf(bw, "%12d %7.1f %7.1f %8.1f %7.1f %8d\n",
			b.End,
			100*float64(b.BusBusy)/iv,
			100*float64(b.CSHeld)/iv,
			100*float64(b.CSWait)/iv,
			dram,
			b.Events)
	}
	return bw.Flush()
}

// BusUtil reports a bin's bus utilization in [0, 1].
func (b TimelineBin) BusUtil(interval uint64) float64 {
	if interval == 0 {
		return 0
	}
	u := float64(b.BusBusy) / float64(interval)
	if u > 1 {
		u = 1
	}
	return u
}

// PeakBusBins returns the indices of the n busiest bus bins — a quick
// programmatic answer to "where did the bus saturate".
func (tl Timeline) PeakBusBins(n int) []int {
	idx := make([]int, len(tl.Bins))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return tl.Bins[idx[i]].BusBusy > tl.Bins[idx[j]].BusBusy
	})
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}
