// Package trace implements a low-overhead, cycle-stamped tracing
// subsystem for the simulated CMP and the FDT controller. Model code
// emits Events — instants and spans stamped with the simulated cycle —
// onto named tracks (one per core, the off-chip bus, each DRAM bank,
// the controller); a fixed-capacity ring buffer bounds memory, keeping
// the most recent events and counting what it dropped.
//
// The subsystem is built to cost nothing when off: every emit site
// guards on a nil *Tracer (or a cached boolean derived from one), so a
// disabled trace is a single always-false branch on the simulator's
// hot paths. Event categories (sim kernel, memory system,
// synchronization, controller) can be masked independently, so a
// controller-only trace of a long run stays small.
//
// Two exporters turn a captured trace into artifacts: WriteChrome
// emits Chrome trace-event JSON loadable in Perfetto (chrome.go), and
// WriteTimeline renders per-interval resource-utilization percentages
// as plain text (timeline.go). Both surface the ring's drop count in
// their metadata — an overflowed trace is never silently truncated.
//
// The package sits below every model layer (it imports only the
// standard library); internal/sim, internal/mem, internal/machine,
// internal/thread and internal/core all emit into it.
package trace

// ControllerTrack is the reserved track name for FDT-controller
// events — the "controller-decision track" exporters and tests key on.
const ControllerTrack = "controller"

// Category classifies events by the subsystem that emitted them.
// Tracers are built with a mask of interesting categories; events in
// other categories are filtered at the emit site before touching the
// ring.
type Category uint8

const (
	// CatSim marks simulation-kernel events: event dispatch and
	// process block/wake. The highest-volume category by far.
	CatSim Category = 1 << iota
	// CatMem marks memory-system events: bus data-phase occupancy,
	// DRAM bank row hits/conflicts, L3 misses.
	CatMem
	// CatSync marks threading-runtime events: critical-section wait
	// and hold spans, barrier waits.
	CatSync
	// CatCtl marks FDT-controller events: pipeline stage spans,
	// decisions, per-interval monitor readings, retrain triggers.
	CatCtl

	// CatAll enables every category.
	CatAll = CatSim | CatMem | CatSync | CatCtl
)

// String names the categories in the mask ("mem|sync|ctl").
func (c Category) String() string {
	names := []struct {
		bit  Category
		name string
	}{{CatSim, "sim"}, {CatMem, "mem"}, {CatSync, "sync"}, {CatCtl, "ctl"}}
	out := ""
	for _, n := range names {
		if c&n.bit == 0 {
			continue
		}
		if out != "" {
			out += "|"
		}
		out += n.name
	}
	if out == "" {
		return "none"
	}
	return out
}

// Kind is an event's shape.
type Kind uint8

const (
	// Instant is a point event at Cycle.
	Instant Kind = iota
	// Complete is a span [Cycle, Cycle+Dur).
	Complete
)

// TrackID identifies a named track (a Perfetto "thread"): one per
// core, the bus, each DRAM bank, the controller. IDs are dense,
// starting at 0, in registration order.
type TrackID int32

// Event is one trace record. Events are plain data — fixed-size value
// types with interned-constant strings — so emitting one allocates
// nothing.
type Event struct {
	// Cycle is the event's simulated-cycle timestamp; for Complete
	// events it is the span's start.
	Cycle uint64
	// Dur is a Complete event's length in cycles.
	Dur uint64
	// A0..A2 are numeric arguments; their meaning is per-Name (see
	// chrome.go's argNames).
	A0, A1, A2 uint64
	// Name identifies the event type ("cs", "xfer", "retrain", ...).
	Name string
	// Label carries an optional detail string: the kernel name on
	// controller events, the drift signal on retrains.
	Label string
	// Track is the track the event belongs to.
	Track TrackID
	// Kind is the event's shape.
	Kind Kind
	// Cat records the category the event was emitted under.
	Cat Category
}

// Tracer collects events into a bounded ring. The zero value is not
// usable; call New. A nil *Tracer is a valid disabled tracer: Wants
// reports false, Emit is a no-op, and accessors return zero values —
// model code holds a possibly-nil pointer and never branches on a
// separate flag.
//
// A Tracer is not safe for concurrent use; like the simulation engine
// it serves, it belongs to one run on one goroutine chain.
type Tracer struct {
	mask    Category
	ring    ring
	tracks  []string
	trackIx map[string]TrackID
}

// New returns a tracer capturing the given categories into a ring of
// capacity events. Capacity 0 disables capture entirely: every
// accepted emit is counted as dropped.
func New(capacity int, mask Category) *Tracer {
	if capacity < 0 {
		capacity = 0
	}
	return &Tracer{
		mask:    mask,
		ring:    newRing(capacity),
		trackIx: make(map[string]TrackID),
	}
}

// Wants reports whether events in cat would be captured. Emit sites
// use it (or a boolean cached from it at setup) to skip argument
// construction; it is the designated nil check.
func (t *Tracer) Wants(cat Category) bool {
	return t != nil && t.mask&cat != 0
}

// Mask reports the tracer's category mask.
func (t *Tracer) Mask() Category {
	if t == nil {
		return 0
	}
	return t.mask
}

// Track interns a track name and returns its stable ID. Repeated
// registrations of one name return the same ID, so independent layers
// (the memory system and the threading runtime both register
// "core-N") share tracks without coordination.
func (t *Tracer) Track(name string) TrackID {
	if id, ok := t.trackIx[name]; ok {
		return id
	}
	id := TrackID(len(t.tracks))
	t.tracks = append(t.tracks, name)
	t.trackIx[name] = id
	return id
}

// Tracks lists the registered track names indexed by TrackID.
func (t *Tracer) Tracks() []string {
	if t == nil {
		return nil
	}
	return t.tracks
}

// Emit records ev if the tracer is non-nil and cat is in the mask.
// ev.Cat is stamped from cat.
func (t *Tracer) Emit(cat Category, ev Event) {
	if t == nil || t.mask&cat == 0 {
		return
	}
	ev.Cat = cat
	t.ring.push(ev)
}

// Events returns the captured events oldest-first. The slice is a
// copy; the tracer may keep capturing.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// Len reports the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.ring.len()
}

// Cap reports the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.ring.buf)
}

// Emitted reports the total events accepted past the category mask —
// held plus dropped.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return uint64(t.ring.len()) + t.ring.dropped
}

// Dropped reports how many accepted events the ring has discarded
// (overwritten oldest-first on overflow, or refused outright at
// capacity 0). Exporters surface this in their metadata.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.dropped
}
