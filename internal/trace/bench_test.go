package trace

import "testing"

// The Emit benchmarks pin the per-event costs the overhead budget is
// built on: a captured emit is a mask test plus a ring store (no
// allocation), a masked emit is two compares, and a nil-tracer emit is
// one compare — the cost every instrumented hot path pays when tracing
// is off.

func BenchmarkEmitEnabled(b *testing.B) {
	tr := New(1<<16, CatAll)
	tk := tr.Track("bus")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(CatMem, Event{Cycle: uint64(i), Dur: 16, Track: tk, Kind: Complete, Name: "xfer"})
	}
}

func BenchmarkEmitMasked(b *testing.B) {
	tr := New(1<<16, CatCtl)
	tk := tr.Track("bus")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(CatMem, Event{Cycle: uint64(i), Dur: 16, Track: tk, Kind: Complete, Name: "xfer"})
	}
}

func BenchmarkEmitNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(CatMem, Event{Cycle: uint64(i), Dur: 16, Kind: Complete, Name: "xfer"})
	}
}

func BenchmarkWantsNil(b *testing.B) {
	var tr *Tracer
	n := 0
	for i := 0; i < b.N; i++ {
		if tr.Wants(CatSync) {
			n++
		}
	}
	if n != 0 {
		b.Fatal("nil tracer wanted events")
	}
}
