package trace

// Fuzz targets for the trace subsystem's two trust boundaries: the
// ring buffer's bookkeeping under arbitrary capacity/volume mixes, and
// the Chrome exporter's promise to emit valid JSON for any event and
// metadata content (jsonString must escape whatever the model layer
// puts in names and labels).

import (
	"bytes"
	"encoding/json"
	"testing"
)

func FuzzRing(f *testing.F) {
	f.Add(4, []byte{1, 2, 3, 4, 5, 6, 7})
	f.Add(0, []byte{9})
	f.Add(1, []byte{})
	f.Add(-3, []byte{1, 1, 1})
	f.Fuzz(func(t *testing.T, capacity int, cycles []byte) {
		if capacity > 1<<12 {
			capacity = 1 << 12
		}
		tr := New(capacity, CatAll)
		id := tr.Track("fuzz")
		var last uint64
		for i, b := range cycles {
			// Cycles drift upward but may repeat; Emit must not care.
			last += uint64(b % 16)
			tr.Emit(CatAll, Event{Cycle: last, A0: uint64(i), Name: "ev", Track: id})
		}

		if tr.Len() > tr.Cap() {
			t.Fatalf("Len %d exceeds Cap %d", tr.Len(), tr.Cap())
		}
		if tr.Emitted() != uint64(len(cycles)) {
			t.Fatalf("Emitted %d, want %d", tr.Emitted(), len(cycles))
		}
		if tr.Dropped() != tr.Emitted()-uint64(tr.Len()) {
			t.Fatalf("Dropped %d != Emitted %d - Len %d", tr.Dropped(), tr.Emitted(), tr.Len())
		}
		evs := tr.Events()
		if len(evs) != tr.Len() {
			t.Fatalf("Events() has %d entries, Len says %d", len(evs), tr.Len())
		}
		// The ring keeps the newest events in emit order: A0 is the
		// emit index, so the survivors are the last Len() indices.
		for i, ev := range evs {
			want := uint64(len(cycles) - tr.Len() + i)
			if ev.A0 != want {
				t.Fatalf("event %d has emit index %d, want %d (oldest-first order broken)", i, ev.A0, want)
			}
		}
	})
}

func FuzzChromeExport(f *testing.F) {
	f.Add("xfer", "label", []byte{1, 2, 3})
	f.Add("a\"b\\c", "newline\nquote\"", []byte{0})
	f.Add("", "\x00\x1f\x7f", []byte{255, 128, 7})
	f.Add("unicode sep", "<script>", []byte{4, 4, 4, 4})
	f.Fuzz(func(t *testing.T, name, label string, data []byte) {
		tr := New(64, CatAll)
		id := tr.Track("t:" + name)
		var cyc uint64
		for i, b := range data {
			cyc += uint64(b)
			kind := Instant
			if b%2 == 1 {
				kind = Complete
			}
			tr.Emit(CatAll, Event{
				Cycle: cyc, Dur: uint64(b) * 3, A0: uint64(i),
				Name: name, Label: label, Track: id, Kind: kind, Cat: CatMem,
			})
		}
		meta := map[string]string{"k" + name: label, "workload": name}

		var buf bytes.Buffer
		if err := WriteChrome(&buf, tr, meta); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		var doc struct {
			TraceEvents []map[string]any  `json:"traceEvents"`
			OtherData   map[string]string `json:"otherData"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
		}
		if len(doc.TraceEvents) < tr.Len() {
			t.Fatalf("%d JSON events for %d captured (plus metadata)", len(doc.TraceEvents), tr.Len())
		}
	})
}
