package trace

import (
	"bytes"
	"strings"
	"testing"
)

func timelineTracer() *Tracer {
	tr := New(64, CatAll)
	bus := tr.Track("bus")
	b0 := tr.Track("dram-bank-0")
	b1 := tr.Track("dram-bank-1")
	core0 := tr.Track("core-0")

	// Bus span crossing the 100-cycle bin boundary: 60 cycles in bin 0,
	// 40 in bin 1.
	tr.Emit(CatMem, Event{Cycle: 40, Dur: 100, Track: bus, Kind: Complete, Name: "xfer"})
	// One DRAM access per bank, both inside bin 0.
	tr.Emit(CatMem, Event{Cycle: 10, Dur: 30, Track: b0, Kind: Complete, Name: "row-miss"})
	tr.Emit(CatMem, Event{Cycle: 20, Dur: 10, Track: b1, Kind: Complete, Name: "row-hit"})
	// CS hold and wait spans in bin 2.
	tr.Emit(CatSync, Event{Cycle: 210, Dur: 50, Track: core0, Kind: Complete, Name: "cs", A0: 1})
	tr.Emit(CatSync, Event{Cycle: 200, Dur: 10, Track: core0, Kind: Complete, Name: "cs-wait", A0: 1})
	// Instants never contribute occupancy, only event counts.
	tr.Emit(CatMem, Event{Cycle: 250, Track: core0, Kind: Instant, Name: "l3-miss", A0: 0})
	return tr
}

func TestComputeTimeline(t *testing.T) {
	tl := ComputeTimeline(timelineTracer(), 100)
	if tl.Interval != 100 {
		t.Fatalf("Interval = %d", tl.Interval)
	}
	if tl.DRAMBanks != 2 {
		t.Fatalf("DRAMBanks = %d, want 2", tl.DRAMBanks)
	}
	if len(tl.Bins) != 3 {
		t.Fatalf("len(Bins) = %d, want 3 (max span end 260)", len(tl.Bins))
	}

	b := tl.Bins
	if b[0].End != 100 || b[1].End != 200 || b[2].End != 300 {
		t.Fatalf("bin ends = %d,%d,%d", b[0].End, b[1].End, b[2].End)
	}
	if b[0].BusBusy != 60 || b[1].BusBusy != 40 || b[2].BusBusy != 0 {
		t.Errorf("BusBusy = %d,%d,%d; want 60,40,0 (span split across bins)",
			b[0].BusBusy, b[1].BusBusy, b[2].BusBusy)
	}
	if b[0].DRAMBusy != 40 {
		t.Errorf("bin0 DRAMBusy = %d, want 40 (30+10 summed over banks)", b[0].DRAMBusy)
	}
	if b[2].CSHeld != 50 || b[2].CSWait != 10 {
		t.Errorf("bin2 CS = held %d wait %d; want 50, 10", b[2].CSHeld, b[2].CSWait)
	}
	if b[0].Events != 3 || b[1].Events != 0 || b[2].Events != 3 {
		t.Errorf("Events = %d,%d,%d; want 3,0,3 (counted at start cycle)",
			b[0].Events, b[1].Events, b[2].Events)
	}
	if u := b[0].BusUtil(100); u != 0.6 {
		t.Errorf("bin0 BusUtil = %v, want 0.6", u)
	}
	if peaks := tl.PeakBusBins(1); len(peaks) != 1 || peaks[0] != 0 {
		t.Errorf("PeakBusBins(1) = %v, want [0]", peaks)
	}
}

func TestComputeTimelineDefaults(t *testing.T) {
	tl := ComputeTimeline(timelineTracer(), 0)
	if tl.Interval != 10000 {
		t.Fatalf("default interval = %d, want 10000", tl.Interval)
	}
	if len(tl.Bins) != 1 {
		t.Fatalf("len(Bins) = %d, want 1", len(tl.Bins))
	}
	empty := ComputeTimeline(New(4, CatAll), 100)
	if len(empty.Bins) != 0 {
		t.Fatalf("empty tracer produced %d bins", len(empty.Bins))
	}
}

func TestWriteTimelineSurfacesDrops(t *testing.T) {
	tr := New(2, CatAll)
	tr.Track("bus")
	for i := 0; i < 5; i++ {
		tr.Emit(CatMem, Event{Cycle: uint64(i * 10), Dur: 5, Track: 0, Kind: Complete, Name: "xfer"})
	}
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, tr, 100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "5 emitted, 3 dropped (ring capacity 2)") {
		t.Errorf("timeline header does not surface drop accounting:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines < 6 {
		t.Errorf("timeline too short:\n%s", out)
	}
}
