package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file implements the Chrome trace-event JSON exporter. The
// output is the "JSON object format" of the trace-event spec —
// {"traceEvents": [...], "otherData": {...}} — which Perfetto and
// chrome://tracing both load: one process ("fdt-sim"), one named
// thread per track, Complete ("X") events for spans and Instant ("i")
// events for points. Timestamps are simulated cycles written into the
// ts/dur microsecond fields; absolute wall time is meaningless in a
// simulation, so one displayed microsecond reads as one cycle.
//
// The writer is hand-rolled line-per-event JSON rather than
// encoding/json over a struct tree: field order is fixed and map
// iteration never occurs, so the same captured trace always exports
// byte-identically — the property the determinism golden test pins.

// chromePID is the single synthetic process id all tracks live under.
const chromePID = 1

// argNames maps an event name to the semantic names of its numeric
// arguments A0..A2; n is how many are meaningful. Unlisted events
// export no numeric args.
var argNames = map[string]struct {
	names [3]string
	n     int
}{
	"cs":           {[3]string{"thread"}, 1},
	"cs-wait":      {[3]string{"thread"}, 1},
	"barrier-wait": {[3]string{"thread"}, 1},
	"l3-miss":      {[3]string{"bank"}, 1},
	"sample":       {[3]string{"iters", "start_iter"}, 2},
	"decision":     {[3]string{"threads", "p_cs", "p_bw"}, 3},
	"execute":      {[3]string{"threads", "from_iter", "to_iter"}, 3},
	"monitor":      {[3]string{"cs_per_iter", "bus_per_iter", "next_iter"}, 3},
	"retrain":      {[3]string{"iter", "observed_per_iter", "expected_per_iter"}, 3},
}

// WriteChrome exports the tracer's events as Chrome trace-event JSON.
// meta entries are copied into otherData (sorted by key) alongside
// the exporter's own fields: the clock domain, the ring capacity, and
// the emitted/dropped accounting — a truncated trace always says so.
func WriteChrome(w io.Writer, t *Tracer, meta map[string]string) error {
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\n\"otherData\":{")
	fmt.Fprintf(bw, "\"clock\":\"simulated-cycles\"")
	fmt.Fprintf(bw, ",\"categories\":%s", jsonString(t.Mask().String()))
	fmt.Fprintf(bw, ",\"ring_capacity\":\"%d\"", t.Cap())
	fmt.Fprintf(bw, ",\"events_emitted\":\"%d\"", t.Emitted())
	fmt.Fprintf(bw, ",\"events_dropped\":\"%d\"", t.Dropped())
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(bw, ",%s:%s", jsonString(k), jsonString(meta[k]))
	}
	fmt.Fprintf(bw, "},\n\"traceEvents\":[\n")

	fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"fdt-sim\"}}", chromePID)
	for id, name := range t.Tracks() {
		fmt.Fprintf(bw, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}",
			chromePID, id, jsonString(name))
		// sort_index keeps Perfetto's track order equal to
		// registration order instead of alphabetical.
		fmt.Fprintf(bw, ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"sort_index\":%d}}",
			chromePID, id, id)
	}

	for _, ev := range sortedEvents(t) {
		bw.WriteString(",\n")
		writeChromeEvent(bw, ev)
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}

// sortedEvents returns the captured events ordered by (cycle,
// emission order). Complete events are emitted at span end but
// stamped with their start cycle, so capture order alone is not
// time-ordered; the stable sort restores it while keeping equal-cycle
// events in their deterministic emission order.
func sortedEvents(t *Tracer) []Event {
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })
	return evs
}

func writeChromeEvent(bw *bufio.Writer, ev Event) {
	switch ev.Kind {
	case Complete:
		fmt.Fprintf(bw, "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{",
			jsonString(ev.Name), jsonString(ev.Cat.String()), ev.Cycle, ev.Dur, chromePID, ev.Track)
	default:
		fmt.Fprintf(bw, "{\"name\":%s,\"cat\":%s,\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\"args\":{",
			jsonString(ev.Name), jsonString(ev.Cat.String()), ev.Cycle, chromePID, ev.Track)
	}
	sep := ""
	if ev.Label != "" {
		fmt.Fprintf(bw, "\"label\":%s", jsonString(ev.Label))
		sep = ","
	}
	if an, ok := argNames[ev.Name]; ok {
		for i, v := range [3]uint64{ev.A0, ev.A1, ev.A2} {
			if i >= an.n {
				break
			}
			fmt.Fprintf(bw, "%s%s:%d", sep, jsonString(an.names[i]), v)
			sep = ","
		}
	}
	bw.WriteString("}}")
}

// jsonString renders s as a JSON string literal. encoding/json's
// string encoding is deterministic, so golden outputs stay stable.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// A Go string always marshals; keep the exporter total anyway.
		return "\"\""
	}
	return string(b)
}
