package trace_test

// Integration tests exercising the tracer against the real simulator:
// run the phaseshift workload under the adaptive controller with a
// tracer attached, export, and check the artifacts. These live in an
// external test package because internal/trace sits below internal/core
// in the import DAG.

import (
	"bytes"
	"encoding/json"
	"testing"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/trace"
	"fdt/internal/workloads"
)

// runPhaseShift runs phaseshift under the adaptive controller on a
// fresh machine with a tracer of the given mask and capacity attached.
func runPhaseShift(p workloads.PhaseShiftParams, mask trace.Category, capacity int) (*trace.Tracer, core.RunResult) {
	m := machine.MustNew(machine.DefaultConfig())
	tr := trace.New(capacity, mask)
	m.AttachTracer(tr)
	w := workloads.NewPhaseShift(m, p)
	res := core.NewAdaptiveController(core.Combined{}, core.DefaultMonitorParams()).Run(m, w)
	return tr, res
}

func exportChrome(t *testing.T, tr *trace.Tracer, res core.RunResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := trace.WriteChrome(&buf, tr, map[string]string{
		"workload": res.Workload,
		"policy":   res.Policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestExportDeterminism pins the byte-determinism contract: the same
// seed and policy produce byte-identical exported traces across runs.
func TestExportDeterminism(t *testing.T) {
	p := workloads.DefaultPhaseShiftParams()
	p.ItersPerPhase = 80
	p.Elems = 512

	tr1, res1 := runPhaseShift(p, trace.CatMem|trace.CatSync|trace.CatCtl, 1<<16)
	tr2, res2 := runPhaseShift(p, trace.CatMem|trace.CatSync|trace.CatCtl, 1<<16)
	if res1.TotalCycles != res2.TotalCycles {
		t.Fatalf("simulation not deterministic: %d vs %d cycles", res1.TotalCycles, res2.TotalCycles)
	}
	if tr1.Emitted() == 0 {
		t.Fatal("no events captured")
	}

	a, b := exportChrome(t, tr1, res1), exportChrome(t, tr2, res2)
	if !bytes.Equal(a, b) {
		t.Fatalf("exports differ across identical runs (len %d vs %d)", len(a), len(b))
	}

	var tl1, tl2 bytes.Buffer
	if err := trace.WriteTimeline(&tl1, tr1, 10000); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTimeline(&tl2, tr2, 10000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tl1.Bytes(), tl2.Bytes()) {
		t.Fatal("timeline exports differ across identical runs")
	}
}

// retrainEvent is the decoded controller-track retrain instant.
type retrainEvent struct {
	Label string
	Iter  int
}

// controllerRetrains parses exported Chrome JSON and returns the
// retrain events on the controller track, in export (time) order.
func controllerRetrains(t *testing.T, data []byte) []retrainEvent {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	ctlTid := -1
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Args["name"] == trace.ControllerTrack {
			ctlTid = ev.Tid
		}
	}
	if ctlTid < 0 {
		t.Fatal("no controller track in export")
	}

	var out []retrainEvent
	for _, ev := range doc.TraceEvents {
		if ev.Tid != ctlTid || ev.Name != "retrain" || ev.Ph != "i" {
			continue
		}
		label, _ := ev.Args["label"].(string)
		iter, ok := ev.Args["iter"].(float64)
		if !ok {
			t.Fatalf("retrain event without iter arg: %v", ev.Args)
		}
		out = append(out, retrainEvent{Label: label, Iter: int(iter)})
	}
	return out
}

// TestPhaseShiftAdaptiveRetrainTrace is the acceptance check: the
// default phaseshift run under the adaptive controller exports a trace
// whose controller track shows exactly two retrains — the CS onset
// near iteration 400 and the bandwidth onset near iteration 800 (each
// detected within the monitor's interval granularity past the
// boundary).
func TestPhaseShiftAdaptiveRetrainTrace(t *testing.T) {
	tr, res := runPhaseShift(workloads.DefaultPhaseShiftParams(), trace.CatCtl, 1<<12)
	if len(res.Kernels) != 1 || res.Kernels[0].Retrains != 2 {
		t.Fatalf("expected 2 retrains in the run result, got %+v", res.Kernels)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("controller-only trace overflowed: %d dropped", tr.Dropped())
	}

	retrains := controllerRetrains(t, exportChrome(t, tr, res))
	if len(retrains) != 2 {
		t.Fatalf("controller track shows %d retrain events, want 2: %+v", len(retrains), retrains)
	}
	if retrains[0].Label != "cs" {
		t.Errorf("first retrain signal = %q, want \"cs\"", retrains[0].Label)
	}
	if retrains[0].Iter < 380 || retrains[0].Iter > 560 {
		t.Errorf("first retrain at iter %d, want near the A->B boundary (400)", retrains[0].Iter)
	}
	if retrains[1].Label != "bus" {
		t.Errorf("second retrain signal = %q, want \"bus\"", retrains[1].Label)
	}
	if retrains[1].Iter < 780 || retrains[1].Iter > 960 {
		t.Errorf("second retrain at iter %d, want near the B->C boundary (800)", retrains[1].Iter)
	}
}
