package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTracer builds a small fixed trace exercising every exporter
// feature: both event kinds, labels, named args, track interning and
// drop accounting (capacity 6 against 7 accepted events).
func goldenTracer() *Tracer {
	tr := New(6, CatMem|CatSync|CatCtl)
	bus := tr.Track("bus")
	core0 := tr.Track("core-0")
	ctl := tr.Track(ControllerTrack)

	tr.Emit(CatCtl, Event{Cycle: 0, Dur: 90, Track: ctl, Kind: Complete,
		Name: "sample", Label: "kern", A0: 4, A1: 0})
	tr.Emit(CatSim, Event{Cycle: 5, Track: core0, Kind: Instant, Name: "dispatch"}) // masked out
	tr.Emit(CatCtl, Event{Cycle: 90, Track: ctl, Kind: Instant,
		Name: "decision", Label: "kern", A0: 8, A1: 8, A2: 0})
	tr.Emit(CatMem, Event{Cycle: 100, Dur: 16, Track: bus, Kind: Complete, Name: "xfer"})
	tr.Emit(CatSync, Event{Cycle: 104, Dur: 40, Track: core0, Kind: Complete, Name: "cs", A0: 3})
	tr.Emit(CatSync, Event{Cycle: 96, Dur: 8, Track: core0, Kind: Complete, Name: "cs-wait", A0: 3})
	tr.Emit(CatCtl, Event{Cycle: 900, Track: ctl, Kind: Instant,
		Name: "retrain", Label: "cs", A0: 452, A1: 7392, A2: 33})
	tr.Emit(CatMem, Event{Cycle: 950, Track: core0, Kind: Instant, Name: "l3-miss", A0: 17})
	return tr
}

func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChrome(&buf, goldenTracer(), map[string]string{
		"workload": "golden",
		"policy":   "static",
	})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update ./internal/trace` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export differs from golden file %s:\ngot:\n%s\nwant:\n%s", path, buf.Bytes(), want)
	}
}

// chromeDoc is the subset of the trace-event JSON object format the
// shape test checks.
type chromeDoc struct {
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
	TraceEvents     []map[string]any  `json:"traceEvents"`
}

func TestWriteChromeShape(t *testing.T) {
	tr := goldenTracer()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr, map[string]string{"workload": "golden"}); err != nil {
		t.Fatal(err)
	}

	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	for _, k := range []string{"clock", "categories", "ring_capacity", "events_emitted", "events_dropped", "workload"} {
		if _, ok := doc.OtherData[k]; !ok {
			t.Errorf("otherData missing %q", k)
		}
	}
	if got, want := doc.OtherData["events_dropped"], "1"; got != want {
		t.Errorf("events_dropped = %q, want %q (7 accepted into capacity 6)", got, want)
	}

	var procNamed bool
	named := map[float64]string{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
		if _, ok := ev["tid"]; !ok {
			t.Fatalf("event missing tid: %v", ev)
		}
		switch ph {
		case "M":
			if ev["name"] == "process_name" {
				procNamed = true
			}
			if ev["name"] == "thread_name" {
				args := ev["args"].(map[string]any)
				named[ev["tid"].(float64)] = args["name"].(string)
			}
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Errorf("Complete event missing dur: %v", ev)
			}
		case "i":
			if s, _ := ev["s"].(string); s != "t" {
				t.Errorf("Instant event scope = %q, want \"t\"", s)
			}
		default:
			t.Errorf("unexpected ph %q", ph)
		}
	}
	if !procNamed {
		t.Error("no process_name metadata event")
	}
	// Every registered track must be named, and event tids must
	// resolve to registered tracks.
	for id, name := range tr.Tracks() {
		if named[float64(id)] != name {
			t.Errorf("tid %d named %q, want %q", id, named[float64(id)], name)
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			continue
		}
		if _, ok := named[ev["tid"].(float64)]; !ok {
			t.Errorf("event on unregistered tid %v", ev["tid"])
		}
	}
}

func TestWriteChromeEventsSortedByCycle(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenTracer(), nil); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	last := -1.0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			continue
		}
		ts := ev["ts"].(float64)
		if ts < last {
			t.Fatalf("events not sorted: ts %v after %v", ts, last)
		}
		last = ts
	}
}
