package trace

// ring is a fixed-capacity circular event buffer. When full, each
// push overwrites the oldest event and increments dropped; a
// zero-capacity ring drops everything. Keeping the newest events is
// the right policy for a trace: the interesting window is almost
// always the end of the run (or the ring is sized to hold all of it).
type ring struct {
	buf  []Event
	head int // next write position
	full bool
	// dropped counts events discarded: overwritten on wraparound, or
	// refused outright at capacity 0.
	dropped uint64
}

func newRing(capacity int) ring {
	if capacity <= 0 {
		return ring{}
	}
	return ring{buf: make([]Event, capacity)}
}

func (r *ring) push(ev Event) {
	if len(r.buf) == 0 {
		r.dropped++
		return
	}
	if r.full {
		r.dropped++
	}
	r.buf[r.head] = ev
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
		r.full = true
	}
}

func (r *ring) len() int {
	if r.full {
		return len(r.buf)
	}
	return r.head
}

// snapshot copies the held events out oldest-first.
func (r *ring) snapshot() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.head]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}
