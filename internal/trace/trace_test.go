package trace

import "testing"

func TestRingWraparound(t *testing.T) {
	tr := New(4, CatAll)
	for i := 0; i < 10; i++ {
		tr.Emit(CatSim, Event{Cycle: uint64(i), Name: "e"})
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	if got := tr.Emitted(); got != 10 {
		t.Fatalf("Emitted = %d, want 10", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	// Overflow keeps the newest events, oldest-first in the snapshot.
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Cycle != want {
			t.Errorf("Events[%d].Cycle = %d, want %d", i, ev.Cycle, want)
		}
	}
}

func TestRingExactFit(t *testing.T) {
	tr := New(3, CatAll)
	for i := 0; i < 3; i++ {
		tr.Emit(CatSim, Event{Cycle: uint64(i)})
	}
	if tr.Len() != 3 || tr.Dropped() != 0 {
		t.Fatalf("Len = %d Dropped = %d, want 3, 0", tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if ev.Cycle != uint64(i) {
			t.Errorf("Events[%d].Cycle = %d, want %d", i, ev.Cycle, i)
		}
	}
}

func TestCapacityZeroDisablesCapture(t *testing.T) {
	tr := New(0, CatAll)
	for i := 0; i < 3; i++ {
		tr.Emit(CatMem, Event{Cycle: uint64(i)})
	}
	if tr.Len() != 0 || tr.Cap() != 0 {
		t.Fatalf("Len = %d Cap = %d, want 0, 0", tr.Len(), tr.Cap())
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3 (capacity-0 counts every accepted emit)", got)
	}
	if got := tr.Emitted(); got != 3 {
		t.Fatalf("Emitted = %d, want 3", got)
	}
	if evs := tr.Events(); len(evs) != 0 {
		t.Fatalf("Events returned %d events from a capacity-0 ring", len(evs))
	}
}

func TestNegativeCapacityClampsToZero(t *testing.T) {
	tr := New(-7, CatAll)
	tr.Emit(CatSim, Event{})
	if tr.Cap() != 0 || tr.Dropped() != 1 {
		t.Fatalf("Cap = %d Dropped = %d, want 0, 1", tr.Cap(), tr.Dropped())
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Wants(CatAll) {
		t.Error("nil.Wants(CatAll) = true, want false")
	}
	tr.Emit(CatSim, Event{Cycle: 1}) // must not panic
	if tr.Len() != 0 || tr.Cap() != 0 || tr.Dropped() != 0 || tr.Emitted() != 0 {
		t.Error("nil tracer accessors returned non-zero")
	}
	if tr.Events() != nil || tr.Tracks() != nil {
		t.Error("nil tracer snapshots returned non-nil")
	}
	if tr.Mask() != 0 {
		t.Error("nil.Mask() != 0")
	}
}

func TestCategoryMaskFilters(t *testing.T) {
	tr := New(8, CatMem|CatCtl)
	tr.Emit(CatSim, Event{Cycle: 1})  // filtered
	tr.Emit(CatSync, Event{Cycle: 2}) // filtered
	tr.Emit(CatMem, Event{Cycle: 3})
	tr.Emit(CatCtl, Event{Cycle: 4})
	if got := tr.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	// Masked-out events are rejected, not dropped: Dropped counts only
	// ring overflow.
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	if got := tr.Emitted(); got != 2 {
		t.Fatalf("Emitted = %d, want 2", got)
	}
	evs := tr.Events()
	if evs[0].Cat != CatMem || evs[1].Cat != CatCtl {
		t.Errorf("Cat not stamped from the emit category: %v, %v", evs[0].Cat, evs[1].Cat)
	}
}

func TestWantsRespectsMask(t *testing.T) {
	tr := New(8, CatCtl)
	if !tr.Wants(CatCtl) {
		t.Error("Wants(CatCtl) = false with CatCtl in mask")
	}
	if tr.Wants(CatSim) {
		t.Error("Wants(CatSim) = true with CatSim not in mask")
	}
	if !tr.Wants(CatAll) {
		t.Error("Wants(CatAll) = false; any overlap should report true")
	}
}

func TestTrackInterning(t *testing.T) {
	tr := New(8, CatAll)
	a := tr.Track("bus")
	b := tr.Track("core-0")
	c := tr.Track("bus") // re-registration from another layer
	if a != c {
		t.Errorf("Track(\"bus\") twice = %d, %d; want interned", a, c)
	}
	if a != 0 || b != 1 {
		t.Errorf("track IDs = %d, %d; want dense from 0 in registration order", a, b)
	}
	got := tr.Tracks()
	if len(got) != 2 || got[0] != "bus" || got[1] != "core-0" {
		t.Errorf("Tracks() = %v, want [bus core-0]", got)
	}
}

func TestCategoryString(t *testing.T) {
	cases := []struct {
		c    Category
		want string
	}{
		{CatSim, "sim"},
		{CatMem | CatCtl, "mem|ctl"},
		{CatAll, "sim|mem|sync|ctl"},
		{0, "none"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("Category(%#x).String() = %q, want %q", uint8(tc.c), got, tc.want)
		}
	}
}
