package power

import (
	"fmt"
	"math"
)

// This file extends the meter from active-core counting to a
// table-driven energy model: a machine with an explicit P-state
// ladder meters per-(core, state) residencies, and energy is the sum
// over states of residency times the state's table power. Powers are
// expressed in nominal-active-core units — the unit of the paper's
// AvgActiveCores metric — so a flat table (Active 1, Idle 0) makes
// total energy coincide exactly with ActiveCoreCycles.

// Row is one P-state's power-table entry.
type Row struct {
	// Name labels the state in reports ("perf", "eco", "f1600").
	Name string
	// Active is the power an active core draws in this state, in
	// nominal-active-core units (the nominal state's Active is 1 by
	// convention; a cubic DVFS law makes lower states cheaper).
	Active float64
	// Idle is the power an unoccupied (clock-gated) core draws in this
	// state. The legacy single-frequency meter models power-gated idle
	// cores (zero draw); an explicit table may charge leakage.
	Idle float64
}

// Table is a P-state power table, one row per ladder state, indexed
// by state. Row 0 is the nominal state.
type Table struct {
	Rows []Row
}

// Validate checks the physical sanity of the table: at least one row,
// positive active power, non-negative idle power, idle at or below
// active.
func (t Table) Validate() error {
	if len(t.Rows) == 0 {
		return fmt.Errorf("power: table has no rows")
	}
	for i, r := range t.Rows {
		if !(r.Active > 0) || math.IsInf(r.Active, 0) || math.IsNaN(r.Active) {
			return fmt.Errorf("power: row %d (%q): Active = %v, want finite > 0", i, r.Name, r.Active)
		}
		if r.Idle < 0 || math.IsInf(r.Idle, 0) || math.IsNaN(r.Idle) {
			return fmt.Errorf("power: row %d (%q): Idle = %v, want finite >= 0", i, r.Name, r.Idle)
		}
		if r.Idle > r.Active {
			return fmt.Errorf("power: row %d (%q): Idle %v exceeds Active %v", i, r.Name, r.Idle, r.Active)
		}
	}
	return nil
}

// StateEnergy is one P-state's contribution to a run's energy.
type StateEnergy struct {
	// Name is the state's table row name.
	Name string `json:"name"`
	// ActiveCycles is the total core-cycles cores spent occupied in
	// this state; WallCycles the total core-cycles cores resided in it
	// (occupied or not). ActiveCycles <= WallCycles.
	ActiveCycles uint64 `json:"active_cycles"`
	WallCycles   uint64 `json:"wall_cycles"`
	// Energy is the state's energy: active residency times the row's
	// Active power plus idle residency times its Idle power.
	Energy float64 `json:"energy"`
}

// Energy is a tracked meter's end-of-run energy accounting, in
// nominal-core-cycle units (1 unit = one core active for one cycle in
// the nominal state).
type Energy struct {
	// Total is the run's energy; AvgPower is Total over the execution
	// window — the budget-comparable chip power, including idle draw.
	Total    float64 `json:"total"`
	AvgPower float64 `json:"avg_power"`
	// Window is the execution window the meter was sealed at.
	Window uint64 `json:"window"`
	// States itemizes per-state residencies and energies.
	States []StateEnergy `json:"states"`
}

// Snapshot is a tracked meter's checkpointable state-residency view
// (the legacy per-core integrals travel separately, see Meter.PerCore).
type Snapshot struct {
	ActiveByState [][]uint64
	WallByState   [][]uint64
	State         []int
	StateSince    []uint64
}

// ChipPower evaluates the table's chip power with active of cores
// cores occupied in state s and the rest idle in the same state — the
// quantity a power budget constrains.
func (t Table) ChipPower(s, active, cores int) float64 {
	r := t.Rows[s]
	return float64(active)*r.Active + float64(cores-active)*r.Idle
}

// MaxActiveWithinBudget reports the largest number of occupied cores
// p such that ChipPower(s, p, cores) stays within budget, clamped to
// [0, cores]; 0 means even an idle chip in this state busts the
// budget's active headroom (budget below the idle floor). A budget
// <= 0 is unconstrained and reports cores.
func (t Table) MaxActiveWithinBudget(s, cores int, budget float64) int {
	if budget <= 0 {
		return cores
	}
	r := t.Rows[s]
	head := budget - float64(cores)*r.Idle
	if head < 0 {
		return 0
	}
	den := r.Active - r.Idle
	if den <= 0 {
		// Idle == Active: occupancy is free once the floor is paid.
		return cores
	}
	p := int(head/den + 1e-9)
	if p > cores {
		p = cores
	}
	if p < 0 {
		p = 0
	}
	return p
}
