package power

// Table-driven edge cases: machines with no threads placed, a single
// core, and every core pinned for the whole window (the saturated
// case the paper's all-cores baseline produces).

import "testing"

func TestMeterEdges(t *testing.T) {
	cases := []struct {
		name    string
		cores   int
		fill    func(m *Meter)
		window  uint64
		wantSum uint64
		wantAvg float64
	}{
		{
			name:  "zero threads placed",
			cores: 32, fill: func(m *Meter) {},
			window: 1000, wantSum: 0, wantAvg: 0,
		},
		{
			name:  "single core fully active",
			cores: 1,
			fill: func(m *Meter) {
				m.AddActive(0, 0, 500)
			},
			window: 500, wantSum: 500, wantAvg: 1,
		},
		{
			name:  "all cores pinned for the whole window",
			cores: 4,
			fill: func(m *Meter) {
				for c := 0; c < 4; c++ {
					m.AddActive(c, 0, 250)
				}
			},
			window: 250, wantSum: 1000, wantAvg: 4,
		},
		{
			name:  "empty interval adds nothing",
			cores: 2,
			fill: func(m *Meter) {
				m.AddActive(1, 100, 100)
			},
			window: 100, wantSum: 0, wantAvg: 0,
		},
		{
			name:  "split intervals accumulate",
			cores: 2,
			fill: func(m *Meter) {
				m.AddActive(0, 0, 10)
				m.AddActive(0, 50, 60)
				m.AddActive(1, 0, 20)
			},
			window: 100, wantSum: 40, wantAvg: 0.4,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMeter(tc.cores)
			tc.fill(m)
			if got := m.ActiveCoreCycles(); got != tc.wantSum {
				t.Errorf("ActiveCoreCycles = %d, want %d", got, tc.wantSum)
			}
			if got := m.AverageActiveCores(tc.window); got != tc.wantAvg {
				t.Errorf("AverageActiveCores(%d) = %g, want %g", tc.window, got, tc.wantAvg)
			}
			if got := len(m.PerCore()); got != tc.cores {
				t.Errorf("len(PerCore) = %d, want %d", got, tc.cores)
			}
		})
	}
}

func TestZeroCoreMeter(t *testing.T) {
	m := NewMeter(0)
	if m.Cores() != 0 || m.ActiveCoreCycles() != 0 || len(m.PerCore()) != 0 {
		t.Fatal("zero-core meter accumulated state")
	}
	if got := m.AverageActiveCores(100); got != 0 {
		t.Errorf("AverageActiveCores = %g, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("AddActive on a zero-core meter did not panic")
		}
	}()
	m.AddActive(0, 0, 1)
}
