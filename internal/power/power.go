// Package power implements the paper's on-chip power metric
// (Section 3.1): "we count the number of cores that are active in a
// given cycle and the power is computed as the average of this value
// over the entire execution time."
//
// A core is active from the moment a thread is placed on it until the
// thread leaves it — spinning at a lock or barrier counts as active,
// which is what makes extraneous threads expensive. Cores with no
// thread are power-gated and contribute nothing.
package power

import "fmt"

// Meter integrates active-core time per core. A meter built with
// NewMeter is the paper's flat metric exactly; NewMeterTable
// additionally tracks per-(core, P-state) residencies against a power
// table (see table.go), from which Energy derives a table-driven
// energy accounting.
type Meter struct {
	perCore []uint64
	cores   int

	// Tracked-mode state (all nil/zero on a flat meter).
	table         []Row
	activeByState [][]uint64
	wallByState   [][]uint64
	state         []int
	stateSince    []uint64

	// Fault knobs for the mutation tests: faultTableSkew multiplies
	// the table's Active rows inside Energy's accounting (a "skewed
	// power table" bug the energy-conservation invariant must catch);
	// faultDropTransition makes SetState lose the closing of the
	// outgoing state's residency interval (a "dropped P-state
	// transition" the state-residency invariant must catch).
	faultTableSkew      float64
	faultDropTransition bool
}

// NewMeter returns a meter for a machine with the given core count.
func NewMeter(cores int) *Meter {
	return &Meter{perCore: make([]uint64, cores), cores: cores}
}

// NewMeterTable returns a meter tracking residencies against a
// validated power table. Every core starts in state 0 (nominal).
func NewMeterTable(cores int, t Table) (*Meter, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	m := NewMeter(cores)
	m.table = append([]Row(nil), t.Rows...)
	m.activeByState = make([][]uint64, cores)
	m.wallByState = make([][]uint64, cores)
	m.state = make([]int, cores)
	m.stateSince = make([]uint64, cores)
	for c := 0; c < cores; c++ {
		m.activeByState[c] = make([]uint64, len(t.Rows))
		m.wallByState[c] = make([]uint64, len(t.Rows))
	}
	return m, nil
}

// Tracked reports whether the meter tracks per-state residencies
// (built by NewMeterTable).
func (m *Meter) Tracked() bool { return m.table != nil }

// Table reports the tracked meter's power table (nil rows when flat).
func (m *Meter) Table() Table { return Table{Rows: append([]Row(nil), m.table...)} }

// States reports the number of P-states tracked (0 when flat).
func (m *Meter) States() int { return len(m.table) }

// State reports a core's current P-state (0 when flat).
func (m *Meter) State(core int) int {
	if m.state == nil {
		return 0
	}
	return m.state[core]
}

// SetState moves a core to a new P-state at cycle now, closing the
// outgoing state's wall-residency interval. The caller (the machine)
// must flush any open active interval on the core first, so active
// residency never spans a transition. No-op on flat meters and on
// transitions to the current state.
func (m *Meter) SetState(core, state int, now uint64) {
	if m.table == nil {
		if state == 0 {
			return
		}
		panic(fmt.Sprintf("power: SetState(%d) on a flat meter", state))
	}
	if state < 0 || state >= len(m.table) {
		panic(fmt.Sprintf("power: state %d out of range [0,%d)", state, len(m.table)))
	}
	cur := m.state[core]
	if state == cur {
		return
	}
	if now < m.stateSince[core] {
		panic(fmt.Sprintf("power: SetState at %d before core %d state start %d", now, core, m.stateSince[core]))
	}
	if !m.faultDropTransition {
		m.wallByState[core][cur] += now - m.stateSince[core]
	}
	m.stateSince[core] = now
	m.state[core] = state
}

// Seal closes every core's open wall-residency interval at cycle now,
// making the per-state residencies complete over [0, now). Idempotent
// and monotone: sealing again at the same or a later time extends the
// current state's residency, so end-of-run checks and reports may
// both seal. No-op on flat meters.
func (m *Meter) Seal(now uint64) {
	if m.table == nil {
		return
	}
	for c := 0; c < m.cores; c++ {
		if now < m.stateSince[c] {
			panic(fmt.Sprintf("power: Seal at %d before core %d state start %d", now, c, m.stateSince[c]))
		}
		m.wallByState[c][m.state[c]] += now - m.stateSince[c]
		m.stateSince[c] = now
	}
}

// ActiveByState reports per-core, per-state active-cycle residencies
// (a deep copy; nil on flat meters).
func (m *Meter) ActiveByState() [][]uint64 { return copy2d(m.activeByState) }

// WallByState reports per-core, per-state wall-cycle residencies as
// of the last Seal (a deep copy; nil on flat meters).
func (m *Meter) WallByState() [][]uint64 { return copy2d(m.wallByState) }

func copy2d(src [][]uint64) [][]uint64 {
	if src == nil {
		return nil
	}
	out := make([][]uint64, len(src))
	for i, row := range src {
		out[i] = append([]uint64(nil), row...)
	}
	return out
}

// Energy seals the meter at window and reports the table-driven
// energy accounting: for every state, active residency times the
// row's Active power plus idle (wall minus active) residency times
// its Idle power. Only meaningful on tracked meters; a flat meter
// reports the flat-table equivalence (Total == ActiveCoreCycles).
func (m *Meter) Energy(window uint64) Energy {
	if m.table == nil {
		total := float64(m.ActiveCoreCycles())
		e := Energy{Total: total, Window: window}
		if window > 0 {
			e.AvgPower = total / float64(window)
		}
		return e
	}
	m.Seal(window)
	e := Energy{Window: window, States: make([]StateEnergy, len(m.table))}
	for s, r := range m.table {
		active := r.Active
		if m.faultTableSkew != 0 {
			active *= 1 + m.faultTableSkew
		}
		se := StateEnergy{Name: r.Name}
		for c := 0; c < m.cores; c++ {
			se.ActiveCycles += m.activeByState[c][s]
			se.WallCycles += m.wallByState[c][s]
		}
		idle := uint64(0)
		if se.WallCycles > se.ActiveCycles {
			idle = se.WallCycles - se.ActiveCycles
		}
		se.Energy = float64(se.ActiveCycles)*active + float64(idle)*r.Idle
		e.Total += se.Energy
		e.States[s] = se
	}
	if window > 0 {
		e.AvgPower = e.Total / float64(window)
	}
	return e
}

// FaultTableSkew arms a deliberate energy-accounting fault for the
// mutation tests: Energy computes with Active rows scaled by (1+f).
func (m *Meter) FaultTableSkew(f float64) { m.faultTableSkew = f }

// FaultDropTransition arms a deliberate residency-accounting fault
// for the mutation tests: SetState forgets to close the outgoing
// state's wall interval, losing residency.
func (m *Meter) FaultDropTransition() { m.faultDropTransition = true }

// Snapshot captures the tracked meter's residency state for a machine
// checkpoint; nil on flat meters (whose whole state is PerCore).
func (m *Meter) Snapshot() *Snapshot {
	if m.table == nil {
		return nil
	}
	return &Snapshot{
		ActiveByState: copy2d(m.activeByState),
		WallByState:   copy2d(m.wallByState),
		State:         append([]int(nil), m.state...),
		StateSince:    append([]uint64(nil), m.stateSince...),
	}
}

// RestoreSnapshot overwrites the tracked residency state from a
// checkpoint taken on a meter with an identical table.
func (m *Meter) RestoreSnapshot(s *Snapshot) {
	if s == nil || m.table == nil {
		return
	}
	if len(s.State) != m.cores {
		panic(fmt.Sprintf("power: restoring %d-core snapshot into a %d-core meter", len(s.State), m.cores))
	}
	m.activeByState = copy2d(s.ActiveByState)
	m.wallByState = copy2d(s.WallByState)
	m.state = append([]int(nil), s.State...)
	m.stateSince = append([]uint64(nil), s.StateSince...)
}

// Cores reports the number of cores metered.
func (m *Meter) Cores() int { return m.cores }

// AddActive records that core was active for the half-open cycle
// interval [from, to). Intervals on the same core must not overlap;
// the threading runtime guarantees one thread per core (no SMT, as in
// the paper).
func (m *Meter) AddActive(core int, from, to uint64) {
	if core < 0 || core >= m.cores {
		panic(fmt.Sprintf("power: core %d out of range [0,%d)", core, m.cores))
	}
	if to < from {
		panic(fmt.Sprintf("power: negative interval [%d,%d) on core %d", from, to, core))
	}
	m.perCore[core] += to - from
	if m.activeByState != nil {
		m.activeByState[core][m.state[core]] += to - from
	}
}

// AddActiveCycles credits core with cycles of activity without an
// interval: the sampled-execution runtime's analytic extrapolation,
// which knows how many active cycles a skipped region contributes but
// not a concrete [from, to) span.
func (m *Meter) AddActiveCycles(core int, cycles uint64) {
	if core < 0 || core >= m.cores {
		panic(fmt.Sprintf("power: core %d out of range [0,%d)", core, m.cores))
	}
	m.perCore[core] += cycles
	if m.activeByState != nil {
		m.activeByState[core][m.state[core]] += cycles
	}
}

// Restore overwrites the per-core integrals from a checkpoint. The
// slice must have exactly one entry per core.
func (m *Meter) Restore(perCore []uint64) {
	if len(perCore) != m.cores {
		panic(fmt.Sprintf("power: restoring %d cores into a %d-core meter", len(perCore), m.cores))
	}
	copy(m.perCore, perCore)
}

// ActiveCoreCycles reports the total core-cycles of activity.
func (m *Meter) ActiveCoreCycles() uint64 {
	var sum uint64
	for _, v := range m.perCore {
		sum += v
	}
	return sum
}

// PerCore reports per-core active cycles (a copy).
func (m *Meter) PerCore() []uint64 {
	out := make([]uint64, len(m.perCore))
	copy(out, m.perCore)
	return out
}

// AverageActiveCores reports the paper's power figure: active core
// cycles divided by the execution window. A window of zero yields 0.
func (m *Meter) AverageActiveCores(window uint64) float64 {
	if window == 0 {
		return 0
	}
	return float64(m.ActiveCoreCycles()) / float64(window)
}

// Reset clears all accumulated activity (and, on tracked meters, all
// state residencies; cores return to the nominal state at cycle 0).
func (m *Meter) Reset() {
	for i := range m.perCore {
		m.perCore[i] = 0
	}
	for c := range m.activeByState {
		for s := range m.activeByState[c] {
			m.activeByState[c][s] = 0
			m.wallByState[c][s] = 0
		}
		m.state[c] = 0
		m.stateSince[c] = 0
	}
}
