// Package power implements the paper's on-chip power metric
// (Section 3.1): "we count the number of cores that are active in a
// given cycle and the power is computed as the average of this value
// over the entire execution time."
//
// A core is active from the moment a thread is placed on it until the
// thread leaves it — spinning at a lock or barrier counts as active,
// which is what makes extraneous threads expensive. Cores with no
// thread are power-gated and contribute nothing.
package power

import "fmt"

// Meter integrates active-core time per core.
type Meter struct {
	perCore []uint64
	cores   int
}

// NewMeter returns a meter for a machine with the given core count.
func NewMeter(cores int) *Meter {
	return &Meter{perCore: make([]uint64, cores), cores: cores}
}

// Cores reports the number of cores metered.
func (m *Meter) Cores() int { return m.cores }

// AddActive records that core was active for the half-open cycle
// interval [from, to). Intervals on the same core must not overlap;
// the threading runtime guarantees one thread per core (no SMT, as in
// the paper).
func (m *Meter) AddActive(core int, from, to uint64) {
	if core < 0 || core >= m.cores {
		panic(fmt.Sprintf("power: core %d out of range [0,%d)", core, m.cores))
	}
	if to < from {
		panic(fmt.Sprintf("power: negative interval [%d,%d) on core %d", from, to, core))
	}
	m.perCore[core] += to - from
}

// AddActiveCycles credits core with cycles of activity without an
// interval: the sampled-execution runtime's analytic extrapolation,
// which knows how many active cycles a skipped region contributes but
// not a concrete [from, to) span.
func (m *Meter) AddActiveCycles(core int, cycles uint64) {
	if core < 0 || core >= m.cores {
		panic(fmt.Sprintf("power: core %d out of range [0,%d)", core, m.cores))
	}
	m.perCore[core] += cycles
}

// Restore overwrites the per-core integrals from a checkpoint. The
// slice must have exactly one entry per core.
func (m *Meter) Restore(perCore []uint64) {
	if len(perCore) != m.cores {
		panic(fmt.Sprintf("power: restoring %d cores into a %d-core meter", len(perCore), m.cores))
	}
	copy(m.perCore, perCore)
}

// ActiveCoreCycles reports the total core-cycles of activity.
func (m *Meter) ActiveCoreCycles() uint64 {
	var sum uint64
	for _, v := range m.perCore {
		sum += v
	}
	return sum
}

// PerCore reports per-core active cycles (a copy).
func (m *Meter) PerCore() []uint64 {
	out := make([]uint64, len(m.perCore))
	copy(out, m.perCore)
	return out
}

// AverageActiveCores reports the paper's power figure: active core
// cycles divided by the execution window. A window of zero yields 0.
func (m *Meter) AverageActiveCores(window uint64) float64 {
	if window == 0 {
		return 0
	}
	return float64(m.ActiveCoreCycles()) / float64(window)
}

// Reset clears all accumulated activity.
func (m *Meter) Reset() {
	for i := range m.perCore {
		m.perCore[i] = 0
	}
}
