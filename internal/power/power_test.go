package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSingleCoreFullyActive(t *testing.T) {
	m := NewMeter(4)
	m.AddActive(0, 0, 1000)
	if got := m.AverageActiveCores(1000); got != 1.0 {
		t.Errorf("avg = %v, want 1.0", got)
	}
}

func TestAllCoresActive(t *testing.T) {
	m := NewMeter(32)
	for c := 0; c < 32; c++ {
		m.AddActive(c, 0, 500)
	}
	if got := m.AverageActiveCores(500); got != 32.0 {
		t.Errorf("avg = %v, want 32.0", got)
	}
}

func TestPartialActivity(t *testing.T) {
	// Two cores active for half the window each: average = 1 core.
	m := NewMeter(2)
	m.AddActive(0, 0, 50)
	m.AddActive(1, 50, 100)
	if got := m.AverageActiveCores(100); got != 1.0 {
		t.Errorf("avg = %v, want 1.0", got)
	}
}

func TestPerCoreAccounting(t *testing.T) {
	m := NewMeter(3)
	m.AddActive(1, 10, 30)
	m.AddActive(1, 40, 50)
	per := m.PerCore()
	if per[0] != 0 || per[1] != 30 || per[2] != 0 {
		t.Errorf("PerCore = %v, want [0 30 0]", per)
	}
	if m.ActiveCoreCycles() != 30 {
		t.Errorf("total = %d, want 30", m.ActiveCoreCycles())
	}
}

func TestZeroWindow(t *testing.T) {
	m := NewMeter(1)
	if m.AverageActiveCores(0) != 0 {
		t.Error("zero window must yield 0, not NaN")
	}
}

func TestOutOfRangeCorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range core")
		}
	}()
	NewMeter(2).AddActive(2, 0, 1)
}

func TestNegativeIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative interval")
		}
	}()
	NewMeter(1).AddActive(0, 10, 5)
}

func TestReset(t *testing.T) {
	m := NewMeter(2)
	m.AddActive(0, 0, 10)
	m.Reset()
	if m.ActiveCoreCycles() != 0 {
		t.Error("Reset left activity")
	}
}

func TestPropertyAverageNeverExceedsCoreCount(t *testing.T) {
	f := func(iv []uint16) bool {
		const cores = 8
		m := NewMeter(cores)
		var window uint64 = 1
		// Build non-overlapping per-core intervals within [0, 1000).
		cursor := make([]uint64, cores)
		for i, d := range iv {
			core := i % cores
			d := uint64(d % 100)
			m.AddActive(core, cursor[core], cursor[core]+d)
			cursor[core] += d
			if cursor[core] > window {
				window = cursor[core]
			}
		}
		avg := m.AverageActiveCores(window)
		return avg <= cores+1e-9 && !math.IsNaN(avg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
