package power

// Table-driven edge cases for the P-state energy model, extending the
// flat meter's edge suite: degenerate ladders, budgets at and below
// the idle floor, and transitions that split residency intervals
// mid-window.

import (
	"math"
	"strings"
	"testing"
)

func TestTableValidateEdges(t *testing.T) {
	cases := []struct {
		name    string
		table   Table
		wantErr string // substring; empty = valid
	}{
		{name: "empty ladder", table: Table{}, wantErr: "no rows"},
		{name: "one-state ladder", table: Table{Rows: []Row{{Name: "nom", Active: 1, Idle: 0}}}},
		{
			name:    "zero active power",
			table:   Table{Rows: []Row{{Name: "x", Active: 0, Idle: 0}}},
			wantErr: "Active",
		},
		{
			name:    "NaN active power",
			table:   Table{Rows: []Row{{Name: "x", Active: math.NaN(), Idle: 0}}},
			wantErr: "Active",
		},
		{
			name:    "negative idle power",
			table:   Table{Rows: []Row{{Name: "x", Active: 1, Idle: -0.1}}},
			wantErr: "Idle",
		},
		{
			name:    "idle above active",
			table:   Table{Rows: []Row{{Name: "x", Active: 0.5, Idle: 0.6}}},
			wantErr: "exceeds",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.table.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestMaxActiveWithinBudgetEdges(t *testing.T) {
	tbl := Table{Rows: []Row{
		{Name: "nom", Active: 1, Idle: 0.1},
		{Name: "eco", Active: 0.216, Idle: 0.06},
	}}
	cases := []struct {
		name   string
		s      int
		cores  int
		budget float64
		want   int
	}{
		{name: "zero budget is unconstrained", s: 0, cores: 8, budget: 0, want: 8},
		{name: "negative budget is unconstrained", s: 0, cores: 8, budget: -3, want: 8},
		{name: "budget below idle floor", s: 0, cores: 8, budget: 0.5, want: 0},
		{name: "budget exactly the idle floor", s: 0, cores: 8, budget: 0.8, want: 0},
		{name: "one core of headroom", s: 0, cores: 8, budget: 1.7, want: 1},
		{name: "headroom rounds down", s: 0, cores: 8, budget: 2.5, want: 1},
		{name: "ample budget clamps to cores", s: 0, cores: 8, budget: 100, want: 8},
		{name: "low state stretches the budget", s: 1, cores: 8, budget: 1.7, want: 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tbl.MaxActiveWithinBudget(tc.s, tc.cores, tc.budget)
			if got != tc.want {
				t.Fatalf("MaxActiveWithinBudget(%d, %d, %g) = %d, want %d",
					tc.s, tc.cores, tc.budget, got, tc.want)
			}
			// The report must be self-consistent: the admitted occupancy
			// fits the budget, and one more core would bust it.
			if tc.budget > 0 && got > 0 {
				if pw := tbl.ChipPower(tc.s, got, tc.cores); pw > tc.budget+1e-12 {
					t.Fatalf("admitted occupancy %d draws %g > budget %g", got, pw, tc.budget)
				}
			}
			if tc.budget > 0 && got < tc.cores {
				if pw := tbl.ChipPower(tc.s, got+1, tc.cores); pw <= tc.budget {
					t.Fatalf("occupancy %d draws %g within budget %g but was rejected", got+1, pw, tc.budget)
				}
			}
		})
	}
}

// TestMeterTableEdges exercises the tracked meter's residency and
// energy accounting on degenerate and boundary scenarios.
func TestMeterTableEdges(t *testing.T) {
	flat := []Row{{Name: "nom", Active: 1, Idle: 0}}
	two := []Row{{Name: "nom", Active: 1, Idle: 0.1}, {Name: "eco", Active: 0.216, Idle: 0.06}}

	t.Run("empty ladder is rejected", func(t *testing.T) {
		if _, err := NewMeterTable(4, Table{}); err == nil {
			t.Fatal("NewMeterTable accepted an empty table")
		}
	})

	t.Run("one-state ladder matches the flat meter", func(t *testing.T) {
		m, err := NewMeterTable(2, Table{Rows: flat})
		if err != nil {
			t.Fatal(err)
		}
		m.AddActive(0, 0, 100)
		m.AddActive(1, 40, 60)
		e := m.Energy(100)
		if e.Total != float64(m.ActiveCoreCycles()) {
			t.Fatalf("flat one-state table: Energy %.6f != ActiveCoreCycles %d", e.Total, m.ActiveCoreCycles())
		}
		if want := 1.2; e.AvgPower != want {
			t.Fatalf("AvgPower = %g, want %g", e.AvgPower, want)
		}
	})

	t.Run("mid-window transition splits a residency interval", func(t *testing.T) {
		m, err := NewMeterTable(1, Table{Rows: two})
		if err != nil {
			t.Fatal(err)
		}
		// The core is occupied across the whole window; the machine
		// flushes the open active interval at the transition, so the
		// occupancy splits into per-state halves.
		m.AddActive(0, 0, 60)
		m.SetState(0, 1, 60)
		m.AddActive(0, 60, 100)
		e := m.Energy(100)
		if got := m.ActiveByState(); got[0][0] != 60 || got[0][1] != 40 {
			t.Fatalf("active residency = %v, want [60 40]", got[0])
		}
		if got := m.WallByState(); got[0][0] != 60 || got[0][1] != 40 {
			t.Fatalf("wall residency = %v, want [60 40]", got[0])
		}
		want := 60*1.0 + 40*0.216
		if math.Abs(e.Total-want) > 1e-12 {
			t.Fatalf("Energy = %.6f, want %.6f", e.Total, want)
		}
	})

	t.Run("idle residency draws idle power", func(t *testing.T) {
		m, err := NewMeterTable(2, Table{Rows: two})
		if err != nil {
			t.Fatal(err)
		}
		m.AddActive(0, 0, 50) // core 1 idle throughout
		e := m.Energy(100)
		want := 50*1.0 + 50*0.1 + 100*0.1
		if math.Abs(e.Total-want) > 1e-12 {
			t.Fatalf("Energy = %.6f, want %.6f", e.Total, want)
		}
	})

	t.Run("zero-length window", func(t *testing.T) {
		m, err := NewMeterTable(1, Table{Rows: two})
		if err != nil {
			t.Fatal(err)
		}
		e := m.Energy(0)
		if e.Total != 0 || e.AvgPower != 0 {
			t.Fatalf("empty window: Energy = %+v, want zero", e)
		}
	})

	t.Run("seal is idempotent", func(t *testing.T) {
		m, err := NewMeterTable(1, Table{Rows: two})
		if err != nil {
			t.Fatal(err)
		}
		m.AddActive(0, 0, 30)
		m.Seal(50)
		m.Seal(50)
		e := m.Energy(50)
		want := 30*1.0 + 20*0.1
		if math.Abs(e.Total-want) > 1e-12 {
			t.Fatalf("double seal: Energy = %.6f, want %.6f", e.Total, want)
		}
		if w := m.WallByState(); w[0][0] != 50 {
			t.Fatalf("double seal: wall residency %d, want 50", w[0][0])
		}
	})

	t.Run("snapshot restore resumes residency", func(t *testing.T) {
		m, err := NewMeterTable(1, Table{Rows: two})
		if err != nil {
			t.Fatal(err)
		}
		m.AddActive(0, 0, 20)
		m.SetState(0, 1, 20)
		snap := m.Snapshot()
		m.AddActive(0, 20, 80) // diverging tail, to be discarded
		m.RestoreSnapshot(snap)
		m.AddActive(0, 20, 40)
		e := m.Energy(40)
		want := 20*1.0 + 20*0.216
		if math.Abs(e.Total-want) > 1e-12 {
			t.Fatalf("restored Energy = %.6f, want %.6f", e.Total, want)
		}
	})

	t.Run("flat meter rejects state changes", func(t *testing.T) {
		m := NewMeter(2)
		m.SetState(0, 0, 10) // no-op, allowed
		defer func() {
			if recover() == nil {
				t.Fatal("SetState(1) on a flat meter did not panic")
			}
		}()
		m.SetState(0, 1, 10)
	})
}
