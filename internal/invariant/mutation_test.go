package invariant_test

// Mutation tests: deliberately broken builds, injected through test
// hooks on the model structures, must each be caught by the NAMED
// invariant that guards the broken bookkeeping (DESIGN.md Section 10).
// Each test also runs an un-mutated control on the identical
// configuration to prove the catch is the mutation's doing, not noise.
//
// These machines are built directly — never through the experiment run
// cache — because a mutated machine's results must not be memoized for
// clean runs (the fault knobs are not part of any cache key).

import (
	"testing"

	"fdt/internal/core"
	"fdt/internal/invariant"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

// mutationRun builds a checker-armed machine, lets mutate install a
// fault on it, runs the workload under static threading, and returns
// the checker.
func mutationRun(t *testing.T, workload string, threads int, mutate func(m *machine.Machine)) *invariant.Checker {
	t.Helper()
	info, ok := workloads.ByName(workload)
	if !ok {
		t.Fatalf("unknown workload %q", workload)
	}
	m := machine.MustNew(machine.DefaultConfig().WithCores(8))
	ck := invariant.New()
	m.AttachChecker(ck)
	if mutate != nil {
		mutate(m)
	}
	core.NewController(core.Static{N: threads}).Run(m, info.Factory(m))
	return ck
}

// TestMutationBusAccountingSkew under-accounts every bus transfer by
// one cycle — the "transfer accounting off by one" regression. The
// bus conservation identity (busy == transfers x cycles/line) must
// name it.
func TestMutationBusAccountingSkew(t *testing.T) {
	control := mutationRun(t, "convert", 8, nil)
	if err := control.Err(); err != nil {
		t.Fatalf("control run not clean: %v", err)
	}

	ck := mutationRun(t, "convert", 8, func(m *machine.Machine) {
		m.Mem.Bus.FaultAccountingSkew(1)
	})
	if !ck.Violated("bus-conservation") {
		t.Fatalf("bus accounting skew not caught by bus-conservation; checker: %s", ck.Report())
	}
	if !ck.Violated("bus-busy-audit") {
		t.Fatalf("bus accounting skew not caught by bus-busy-audit; checker: %s", ck.Report())
	}
}

// TestMutationBusOccupancySkew stretches every transfer's bus
// occupancy without changing what it accounts: the counter no longer
// matches the observed schedule, so the queue audit must name it.
// (This mutation also bends timing — the shape suite's companion test
// lives in internal/experiments.)
func TestMutationBusOccupancySkew(t *testing.T) {
	ck := mutationRun(t, "convert", 8, func(m *machine.Machine) {
		m.Mem.Bus.FaultOccupancySkew(4)
	})
	if !ck.Violated("bus-busy-audit") {
		t.Fatalf("bus occupancy skew not caught by bus-busy-audit; checker: %s", ck.Report())
	}
}

// TestMutationDirectoryDropDowngrade makes read misses forget to
// downgrade a remote Modified owner — a coherence-protocol bug that
// leaves a line Modified while other cores hold "shared" copies. The
// MESI single-writer invariant must name it.
func TestMutationDirectoryDropDowngrade(t *testing.T) {
	// pagemine's threads share the histogram under a lock: cross-core
	// read-after-write traffic guarantees remote-owner read misses.
	control := mutationRun(t, "pagemine", 8, nil)
	if err := control.Err(); err != nil {
		t.Fatalf("control run not clean: %v", err)
	}

	ck := mutationRun(t, "pagemine", 8, func(m *machine.Machine) {
		m.Mem.Dir.FaultDropDowngrade()
	})
	if !ck.Violated("dir-single-writer") {
		t.Fatalf("dropped downgrade not caught by dir-single-writer; checker: %s", ck.Report())
	}
}

// teamMutationRun co-schedules two workloads as teams on a
// checker-armed machine with an optional fault installed, and returns
// the checker. The multi-tenant invariants (team-conservation,
// team-bus-partition) only arm when teams exist, so these mutations
// must run through the co-run path.
func teamMutationRun(t *testing.T, mutate func(m *machine.Machine)) *invariant.Checker {
	t.Helper()
	pm, ok := workloads.ByName("pagemine")
	if !ok {
		t.Fatal("pagemine not registered")
	}
	cv, ok := workloads.ByName("convert")
	if !ok {
		t.Fatal("convert not registered")
	}
	m := machine.MustNew(machine.DefaultConfig().WithCores(8))
	ck := invariant.New()
	m.AttachChecker(ck)
	if mutate != nil {
		mutate(m)
	}
	specs := []core.TeamSpec{
		{Workload: pm.Name, Factory: pm.Factory, Policy: core.Static{N: 2}},
		{Workload: cv.Name, Factory: cv.Factory, Policy: core.Static{N: 2}},
	}
	if _, err := core.RunCorunOn(m, machine.MapPacked, specs, core.ExactMode()); err != nil {
		t.Fatal(err)
	}
	return ck
}

// TestMutationTeamBusAttributionSkew under-charges one cycle of every
// bus transfer to the requesting team's private counter while the
// machine-global counter stays correct — the "attribution leak" a
// per-team accounting refactor can introduce silently, because no
// single-tenant test ever sums team counters. The bus-partition
// identity (sum of team bus busy == global bus busy) must name it.
func TestMutationTeamBusAttributionSkew(t *testing.T) {
	control := teamMutationRun(t, nil)
	if err := control.Err(); err != nil {
		t.Fatalf("control co-run not clean: %v", err)
	}

	ck := teamMutationRun(t, func(m *machine.Machine) {
		m.Mem.Bus.FaultTeamAttrSkew(1)
	})
	if !ck.Violated("team-bus-partition") {
		t.Fatalf("team attribution skew not caught by team-bus-partition; checker: %s", ck.Report())
	}
}

// TestMutationTeamLedgerFoldSkew drops one busy cycle each time a
// released context's ledger folds into its team's — the team ledger
// no longer balances against the team's occupied window, and the
// per-team conservation identity must name it.
func TestMutationTeamLedgerFoldSkew(t *testing.T) {
	ck := teamMutationRun(t, func(m *machine.Machine) {
		m.FaultTeamFoldSkew(1)
	})
	if !ck.Violated("team-conservation") {
		t.Fatalf("team fold skew not caught by team-conservation; checker: %s", ck.Report())
	}
}

// powerMutationRun builds a checker-armed machine with the default
// P-state ladder, lets mutate install a fault on its power meter,
// runs the workload through the full DVFS pipeline under pp, and
// returns the checker. The power invariants only arm on tracked
// (ladder) meters, so these mutations must run on a DVFS machine.
func powerMutationRun(t *testing.T, workload string, pol core.Policy, pp core.PowerParams, mutate func(m *machine.Machine)) *invariant.Checker {
	t.Helper()
	info, ok := workloads.ByName(workload)
	if !ok {
		t.Fatalf("unknown workload %q", workload)
	}
	cfg := machine.DefaultConfig().WithCores(8).WithFreq(machine.DefaultLadder())
	m := machine.MustNew(cfg)
	ck := invariant.New()
	m.AttachChecker(ck)
	if mutate != nil {
		mutate(m)
	}
	ctl := core.NewController(pol)
	ctl.Power = &pp
	ctl.Run(m, info.Factory(m))
	return ck
}

// TestMutationPowerTableSkew inflates the meter's active-power
// accounting by 5% while the machine config's ladder rows stay
// correct — the "energy model drifted from the hardware table"
// regression a power-model refactor can introduce silently, because
// every relative comparison still looks plausible. The independent
// re-derivation of Σ state-residency × table power must name it.
func TestMutationPowerTableSkew(t *testing.T) {
	pp := core.PowerParams{Budget: 0, LockState: -1}
	control := powerMutationRun(t, "pagemine", core.Combined{}, pp, nil)
	if err := control.Err(); err != nil {
		t.Fatalf("control run not clean: %v", err)
	}

	ck := powerMutationRun(t, "pagemine", core.Combined{}, pp, func(m *machine.Machine) {
		m.Power.FaultTableSkew(0.05)
	})
	if !ck.Violated("power-energy-conservation") {
		t.Fatalf("power table skew not caught by power-energy-conservation; checker: %s", ck.Report())
	}
}

// TestMutationDropPStateTransition makes the meter forget to close
// the outgoing state's wall interval on a P-state transition — the
// residency bookkeeping bug of a DVFS driver that switches frequency
// without flushing accounting. The run must transition mid-execution
// for the fault to lose residency (a transition at cycle 0 drops a
// zero-length interval), so it uses a tight budget with the full
// search: training raises the chip to nominal, the budgeted decision
// drops it to a lower state, every kernel. The per-core residency
// partition must name the loss.
func TestMutationDropPStateTransition(t *testing.T) {
	pp := core.PowerParams{Budget: 5, LockState: -1}
	control := powerMutationRun(t, "ed", core.Combined{}, pp, nil)
	if err := control.Err(); err != nil {
		t.Fatalf("control run not clean: %v", err)
	}

	ck := powerMutationRun(t, "ed", core.Combined{}, pp, func(m *machine.Machine) {
		m.Power.FaultDropTransition()
	})
	if !ck.Violated("power-state-residency") {
		t.Fatalf("dropped P-state transition not caught by power-state-residency; checker: %s", ck.Report())
	}
}
