package invariant_test

// Mutation tests: deliberately broken builds, injected through test
// hooks on the model structures, must each be caught by the NAMED
// invariant that guards the broken bookkeeping (DESIGN.md Section 10).
// Each test also runs an un-mutated control on the identical
// configuration to prove the catch is the mutation's doing, not noise.
//
// These machines are built directly — never through the experiment run
// cache — because a mutated machine's results must not be memoized for
// clean runs (the fault knobs are not part of any cache key).

import (
	"testing"

	"fdt/internal/core"
	"fdt/internal/invariant"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

// mutationRun builds a checker-armed machine, lets mutate install a
// fault on it, runs the workload under static threading, and returns
// the checker.
func mutationRun(t *testing.T, workload string, threads int, mutate func(m *machine.Machine)) *invariant.Checker {
	t.Helper()
	info, ok := workloads.ByName(workload)
	if !ok {
		t.Fatalf("unknown workload %q", workload)
	}
	m := machine.MustNew(machine.DefaultConfig().WithCores(8))
	ck := invariant.New()
	m.AttachChecker(ck)
	if mutate != nil {
		mutate(m)
	}
	core.NewController(core.Static{N: threads}).Run(m, info.Factory(m))
	return ck
}

// TestMutationBusAccountingSkew under-accounts every bus transfer by
// one cycle — the "transfer accounting off by one" regression. The
// bus conservation identity (busy == transfers x cycles/line) must
// name it.
func TestMutationBusAccountingSkew(t *testing.T) {
	control := mutationRun(t, "convert", 8, nil)
	if err := control.Err(); err != nil {
		t.Fatalf("control run not clean: %v", err)
	}

	ck := mutationRun(t, "convert", 8, func(m *machine.Machine) {
		m.Mem.Bus.FaultAccountingSkew(1)
	})
	if !ck.Violated("bus-conservation") {
		t.Fatalf("bus accounting skew not caught by bus-conservation; checker: %s", ck.Report())
	}
	if !ck.Violated("bus-busy-audit") {
		t.Fatalf("bus accounting skew not caught by bus-busy-audit; checker: %s", ck.Report())
	}
}

// TestMutationBusOccupancySkew stretches every transfer's bus
// occupancy without changing what it accounts: the counter no longer
// matches the observed schedule, so the queue audit must name it.
// (This mutation also bends timing — the shape suite's companion test
// lives in internal/experiments.)
func TestMutationBusOccupancySkew(t *testing.T) {
	ck := mutationRun(t, "convert", 8, func(m *machine.Machine) {
		m.Mem.Bus.FaultOccupancySkew(4)
	})
	if !ck.Violated("bus-busy-audit") {
		t.Fatalf("bus occupancy skew not caught by bus-busy-audit; checker: %s", ck.Report())
	}
}

// TestMutationDirectoryDropDowngrade makes read misses forget to
// downgrade a remote Modified owner — a coherence-protocol bug that
// leaves a line Modified while other cores hold "shared" copies. The
// MESI single-writer invariant must name it.
func TestMutationDirectoryDropDowngrade(t *testing.T) {
	// pagemine's threads share the histogram under a lock: cross-core
	// read-after-write traffic guarantees remote-owner read misses.
	control := mutationRun(t, "pagemine", 8, nil)
	if err := control.Err(); err != nil {
		t.Fatalf("control run not clean: %v", err)
	}

	ck := mutationRun(t, "pagemine", 8, func(m *machine.Machine) {
		m.Mem.Dir.FaultDropDowngrade()
	})
	if !ck.Violated("dir-single-writer") {
		t.Fatalf("dropped downgrade not caught by dir-single-writer; checker: %s", ck.Report())
	}
}
