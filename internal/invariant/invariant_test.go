package invariant

import (
	"strings"
	"testing"
)

func TestNilCheckerIsSafeAndDisabled(t *testing.T) {
	var ck *Checker
	if ck.Enabled() {
		t.Fatal("nil checker reports enabled")
	}
	ck.Pass(3)
	ck.Failf("rule", 1, "boom %d", 7)
	if ck.Checks() != 0 || ck.Violations() != nil || ck.Truncated() != 0 {
		t.Fatal("nil checker accumulated state")
	}
	if ck.Violated("rule") {
		t.Fatal("nil checker reports a violation")
	}
	if ck.Err() != nil {
		t.Fatal("nil checker reports an error")
	}
	if got := ck.Report(); got != "disabled" {
		t.Fatalf("Report() = %q, want \"disabled\"", got)
	}
}

func TestCheckerPassFailProtocol(t *testing.T) {
	ck := New()
	if !ck.Enabled() {
		t.Fatal("armed checker reports disabled")
	}
	ck.Pass(2)
	if ck.Checks() != 2 {
		t.Fatalf("Checks() = %d, want 2", ck.Checks())
	}
	if ck.Err() != nil {
		t.Fatalf("clean checker Err() = %v", ck.Err())
	}
	if !strings.HasPrefix(ck.Report(), "ok (") {
		t.Fatalf("clean Report() = %q", ck.Report())
	}

	ck.Failf("bus-conservation", 42, "off by %d", 1)
	if ck.Checks() != 2 {
		t.Fatalf("Failf changed the check count: %d", ck.Checks())
	}
	if !ck.Violated("bus-conservation") {
		t.Fatal("Violated misses the recorded rule")
	}
	if ck.Violated("other-rule") {
		t.Fatal("Violated matches an unrecorded rule")
	}
	err := ck.Err()
	if err == nil {
		t.Fatal("Err() = nil after a violation")
	}
	for _, want := range []string{"bus-conservation", "@42", "off by 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Err() = %q, missing %q", err.Error(), want)
		}
	}
	if !strings.Contains(ck.Report(), "VIOLATION") {
		t.Fatalf("Report() = %q after a violation", ck.Report())
	}
}

func TestCheckerViolationCap(t *testing.T) {
	ck := New()
	for i := 0; i < maxViolations+10; i++ {
		ck.Failf("r", uint64(i), "x")
	}
	if got := len(ck.Violations()); got != maxViolations {
		t.Fatalf("stored %d violations, want cap %d", got, maxViolations)
	}
	if ck.Truncated() != 10 {
		t.Fatalf("Truncated() = %d, want 10", ck.Truncated())
	}
	if !strings.Contains(ck.Err().Error(), "truncated") {
		t.Fatalf("Err() does not mention truncation: %v", ck.Err())
	}
}

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	l.AddBusy(1)
	l.AddStall(2)
	l.AddSync(3)
	l.AddIdle(4)
	l.Reset()
	if l.Total() != 0 {
		t.Fatal("nil ledger accumulated cycles")
	}
	ck := New()
	l.CheckConservation(ck, 0, 0, 100) // must not fail on nil
	if ck.Err() != nil {
		t.Fatalf("nil ledger produced a violation: %v", ck.Err())
	}
}

func TestLedgerConservation(t *testing.T) {
	l := &Ledger{}
	l.AddBusy(10)
	l.AddStall(20)
	l.AddSync(5)
	l.AddIdle(15)
	if l.Total() != 50 {
		t.Fatalf("Total() = %d, want 50", l.Total())
	}

	ck := New()
	l.CheckConservation(ck, 3, 100, 150)
	if ck.Err() != nil {
		t.Fatalf("balanced ledger flagged: %v", ck.Err())
	}

	l.CheckConservation(ck, 3, 100, 151) // window 51 != total 50
	if !ck.Violated("core-conservation") {
		t.Fatal("unbalanced ledger not flagged")
	}

	l.Reset()
	if l.Total() != 0 {
		t.Fatal("Reset left cycles behind")
	}
}

func TestQueueAuditCleanSchedule(t *testing.T) {
	q := NewQueueAudit("q")
	// Two back-to-back demand transfers and one posted one.
	q.Record(0, 0, 10, false)
	q.Record(5, 10, 20, false)
	q.Record(12, 20, 30, true)
	if q.Count() != 3 || q.ServiceSum() != 30 || q.WaitSum() != 5 {
		t.Fatalf("sums = (%d, %d, %d), want (3, 30, 5)", q.Count(), q.ServiceSum(), q.WaitSum())
	}
	if q.Horizon() != 30 {
		t.Fatalf("Horizon() = %d, want 30", q.Horizon())
	}
	ck := New()
	q.Check(ck, 25, 30)
	if ck.Err() != nil {
		t.Fatalf("clean schedule flagged: %v", ck.Err())
	}
}

func TestQueueAuditBusyMismatch(t *testing.T) {
	q := NewQueueAudit("q")
	q.Record(0, 0, 10, false)
	ck := New()
	q.Check(ck, 10, 9) // counter says 9, schedule says 10
	if !ck.Violated("q-busy-audit") {
		t.Fatal("busy mismatch not flagged")
	}
}

func TestQueueAuditOverlap(t *testing.T) {
	q := NewQueueAudit("q")
	q.Record(0, 0, 10, false)
	q.Record(0, 5, 15, false) // starts before the first finishes
	ck := New()
	q.Check(ck, 15, 20)
	if !ck.Violated("q-exclusive") {
		t.Fatal("overlapping service intervals not flagged")
	}
}

func TestQueueAuditCapacity(t *testing.T) {
	q := NewQueueAudit("q")
	q.Record(0, 0, 10, false)
	ck := New()
	q.Check(ck, 8, 10) // fine: horizon extends past now
	if ck.Violated("q-capacity") {
		t.Fatal("work extending past the run end flagged")
	}
	ck2 := New()
	q2 := NewQueueAudit("q")
	q2.Record(0, 0, 5, false)
	q2.Check(ck2, 8, 9) // 9 busy cycles cannot fit in horizon 8
	if !ck2.Violated("q-capacity") {
		t.Fatal("over-capacity accounting not flagged")
	}
}

func TestQueueAuditLittleOrdering(t *testing.T) {
	q := NewQueueAudit("q")
	q.Record(10, 5, 20, false) // start before arrival: corrupt tuple
	ck := New()
	q.Check(ck, 20, 15)
	if !ck.Violated("q-littles-law") {
		t.Fatal("out-of-order transaction timeline not flagged")
	}
}

func TestQueueAuditOverflowKeepsSums(t *testing.T) {
	q := NewQueueAudit("q")
	var serviceSum uint64
	for i := uint64(0); i < auditCap+5; i++ {
		q.Record(i*10, i*10, i*10+2, false)
		serviceSum += 2
	}
	if q.Count() != auditCap+5 || q.ServiceSum() != serviceSum {
		t.Fatalf("overflowed sums drifted: count %d service %d", q.Count(), q.ServiceSum())
	}
	// Shape checks are skipped past overflow, but the busy audit still
	// runs on the exact sums.
	ck := New()
	q.Check(ck, (auditCap+5)*10, serviceSum+1)
	if !ck.Violated("q-busy-audit") {
		t.Fatal("busy audit stopped running after overflow")
	}
}

func TestNilQueueAuditIsSafe(t *testing.T) {
	var q *QueueAudit
	q.Record(0, 0, 1, false)
	if q.Count() != 0 || q.ServiceSum() != 0 || q.WaitSum() != 0 || q.Horizon() != 0 {
		t.Fatal("nil audit accumulated state")
	}
	q.Check(New(), 10, 10) // must not panic
}
