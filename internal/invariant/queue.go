package invariant

import "sort"

// auditCap bounds the stored service intervals per queue. Runs that
// overflow it keep exact counts (Count, ServiceSum, WaitSum keep
// accumulating) but skip the interval-shape checks, and say so.
const auditCap = 1 << 20

// ServiceInterval is one transaction's life on a single-server queue:
// it arrived (issued its request), started service when the server
// freed up, and departed at Done.
type ServiceInterval struct {
	Arrival uint64
	Start   uint64
	Done    uint64
	// Posted marks fire-and-forget reservations (posted writebacks,
	// store-buffer fills), which never charge wait counters.
	Posted bool
}

// QueueAudit records every service interval of one single-server
// resource — the off-chip data bus or a DRAM bank — so the end-of-run
// check can compare the actual schedule against the model's counters.
// Record is nil-safe; hot paths additionally cache the enabled test.
type QueueAudit struct {
	name string
	iv   []ServiceInterval

	count      uint64 // all recorded transactions, stored or not
	serviceSum uint64 // sum of Done-Start
	waitSum    uint64 // sum of Start-Arrival over demand transactions
	overflow   uint64 // intervals dropped past auditCap
}

// NewQueueAudit returns an audit for the named queue.
func NewQueueAudit(name string) *QueueAudit {
	return &QueueAudit{name: name}
}

// Record logs one service interval.
func (q *QueueAudit) Record(arrival, start, done uint64, posted bool) {
	if q == nil {
		return
	}
	q.count++
	q.serviceSum += done - start
	if !posted {
		q.waitSum += start - arrival
	}
	if len(q.iv) >= auditCap {
		q.overflow++
		return
	}
	q.iv = append(q.iv, ServiceInterval{Arrival: arrival, Start: start, Done: done, Posted: posted})
}

// Count reports recorded transactions (including overflowed ones).
func (q *QueueAudit) Count() uint64 {
	if q == nil {
		return 0
	}
	return q.count
}

// ServiceSum reports total service cycles across all transactions.
func (q *QueueAudit) ServiceSum() uint64 {
	if q == nil {
		return 0
	}
	return q.serviceSum
}

// WaitSum reports total queueing-delay cycles across demand
// transactions.
func (q *QueueAudit) WaitSum() uint64 {
	if q == nil {
		return 0
	}
	return q.waitSum
}

// Horizon reports the latest departure recorded — the queue's busy
// horizon, which may extend past the run's end for posted work.
func (q *QueueAudit) Horizon() uint64 {
	if q == nil {
		return 0
	}
	var h uint64
	for _, s := range q.iv {
		if s.Done > h {
			h = s.Done
		}
	}
	return h
}

// Check runs the queueing invariants against the model's busy-cycle
// counter for this queue:
//
//   - "<name>-busy-audit": the counter equals the sum of actual
//     service durations — catches accounting that diverges from the
//     schedule (cycles charged but not occupied, or vice versa);
//   - "<name>-exclusive": service intervals never overlap — a single
//     server serves one transaction at a time;
//   - "<name>-capacity": accounted busy cycles fit inside the busy
//     horizon — utilization cannot exceed 1;
//   - "<name>-littles-law": the time-average number in system L equals
//     the arrival rate λ times the mean residence W (computed from an
//     occupancy sweep of the recorded intervals vs. the residence sum,
//     within floating-point tolerance) — the queueing-theory identity
//     any consistent (arrival, start, done) bookkeeping must satisfy.
//
// Interval-shape checks are skipped (with a note) when the audit
// overflowed; the count-based busy audit always runs.
func (q *QueueAudit) Check(ck *Checker, now, busyCtr uint64) {
	if q == nil || !ck.Enabled() {
		return
	}
	ck.Pass(1)
	if q.serviceSum != busyCtr {
		ck.Failf(q.name+"-busy-audit", now,
			"accounted busy cycles %d != observed service cycles %d over %d transactions",
			busyCtr, q.serviceSum, q.count)
	}
	if q.overflow > 0 {
		// Exact sums above still ran; the per-interval checks below
		// would see a truncated schedule, so skip them honestly.
		return
	}
	if len(q.iv) == 0 {
		return
	}

	iv := make([]ServiceInterval, len(q.iv))
	copy(iv, q.iv)
	sort.Slice(iv, func(i, j int) bool { return iv[i].Start < iv[j].Start })

	ck.Pass(1)
	for i := 1; i < len(iv); i++ {
		if iv[i].Start < iv[i-1].Done {
			ck.Failf(q.name+"-exclusive", now,
				"service intervals overlap: [%d,%d) then [%d,%d)",
				iv[i-1].Start, iv[i-1].Done, iv[i].Start, iv[i].Done)
			break
		}
	}

	horizon := q.Horizon()
	if horizon < now {
		horizon = now
	}
	ck.Pass(1)
	if busyCtr > horizon {
		ck.Failf(q.name+"-capacity", now,
			"accounted busy cycles %d exceed the busy horizon %d (utilization > 1)",
			busyCtr, horizon)
	}

	q.checkLittle(ck, now, iv, horizon)
}

// checkLittle verifies Little's law L = λW on the recorded schedule.
// L is computed by sweeping the in-system step function (+1 at each
// arrival, -1 at each departure) and integrating it over the window;
// λW·T reduces to the residence sum Σ(done-arrival). The two are the
// same quantity obtained through two independent computations, so any
// corruption of the recorded tuples (departures before arrivals,
// drift between the sweep and the sums) breaks the equality.
func (q *QueueAudit) checkLittle(ck *Checker, now uint64, iv []ServiceInterval, horizon uint64) {
	var residence float64
	type edge struct {
		t     uint64
		delta int
	}
	edges := make([]edge, 0, 2*len(iv))
	for _, s := range iv {
		ck.Pass(1)
		if s.Arrival > s.Start || s.Start > s.Done {
			ck.Failf(q.name+"-littles-law", now,
				"transaction timeline out of order: arrival %d, start %d, done %d",
				s.Arrival, s.Start, s.Done)
			return
		}
		residence += float64(s.Done - s.Arrival)
		edges = append(edges, edge{s.Arrival, +1}, edge{s.Done, -1})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })

	var integral float64
	inSystem := 0
	prev := edges[0].t
	for _, e := range edges {
		integral += float64(inSystem) * float64(e.t-prev)
		inSystem += e.delta
		prev = e.t
	}

	// L·T (occupancy integral) must equal λ·W·T (residence sum).
	ck.Pass(1)
	diff := integral - residence
	if diff < 0 {
		diff = -diff
	}
	tol := 1e-9 * (residence + 1)
	if diff > tol {
		lambdaW := residence / float64(horizon)
		ck.Failf(q.name+"-littles-law", now,
			"occupancy integral %.0f != residence sum %.0f (L %.4f vs λW %.4f over horizon %d)",
			integral, residence, integral/float64(horizon), lambdaW, horizon)
	}
}
