// Package invariant implements the simulator's runtime self-checking
// harness: a pluggable Checker that model layers consult at their
// bookkeeping boundaries, using the same nil-safe, off-by-default
// pattern as internal/trace — a machine without a checker attached
// pays one predictable branch per check site.
//
// Checks are grouped by the phenomenon they guard:
//
//   - conservation: per-context busy + stall + sync + idle cycles must
//     equal the context's occupancy window (ledger.go);
//   - queueing: single-server resources (the off-chip bus, each DRAM
//     bank) must account exactly the cycles they occupied, serve
//     non-overlapping intervals, and satisfy Little's law (queue.go);
//   - coherence: the MESI directory's single-writer/multi-reader rule,
//     continuously, plus a quiescent directory-vs-cache walk;
//   - sync: lock ownership and barrier generation monotonicity;
//   - controller: every Estimate decision must satisfy Eq. 3/5/7 given
//     its sampled counters, and re-decisions happen only at decision
//     points.
//
// Each rule has a stable name ("bus-conservation", "dir-single-writer",
// "ctl-eq7", ...) so mutation tests can assert that a specific injected
// bug is caught by a specific invariant. Rule names are documented in
// DESIGN.md Section 10.
package invariant

import (
	"fmt"
	"strings"
)

// maxViolations caps stored violations: a systematically broken
// invariant would otherwise record one violation per event. Further
// failures are counted but not stored.
const maxViolations = 64

// Violation records one failed invariant check.
type Violation struct {
	// Rule is the stable invariant name (e.g. "bus-conservation").
	Rule string
	// Cycle is the simulated cycle at which the check ran (0 for
	// checks that run outside the clock, e.g. directory transitions).
	Cycle uint64
	// Detail is the human-readable account of the discrepancy.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] @%d: %s", v.Rule, v.Cycle, v.Detail)
}

// Checker collects invariant check results for one simulation run.
// All methods are nil-safe: a nil *Checker is the disabled harness and
// every call on it is a no-op, so model code can hold and call one
// unconditionally.
type Checker struct {
	checks     uint64
	violations []Violation
	truncated  uint64
}

// New returns an armed checker.
func New() *Checker { return &Checker{} }

// Enabled reports whether the harness is armed. Hot paths cache this
// (or the derived audit pointers) the way trace emit sites cache their
// category check.
func (c *Checker) Enabled() bool { return c != nil }

// Pass records n successful checks. Call it where a check ran and
// held, so Checks() reflects coverage, not just failures.
func (c *Checker) Pass(n uint64) {
	if c != nil {
		c.checks += n
	}
}

// Failf records a violation of the named rule. It does not count a
// check — call Pass for the check itself and Failf when it fails.
func (c *Checker) Failf(rule string, cycle uint64, format string, args ...any) {
	if c == nil {
		return
	}
	if len(c.violations) >= maxViolations {
		c.truncated++
		return
	}
	c.violations = append(c.violations, Violation{
		Rule:   rule,
		Cycle:  cycle,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Checks reports how many invariant checks ran.
func (c *Checker) Checks() uint64 {
	if c == nil {
		return 0
	}
	return c.checks
}

// Violations returns the recorded violations (at most maxViolations;
// see Truncated for overflow).
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return c.violations
}

// Truncated reports violations dropped past the storage cap.
func (c *Checker) Truncated() uint64 {
	if c == nil {
		return 0
	}
	return c.truncated
}

// Violated reports whether rule has at least one recorded violation.
func (c *Checker) Violated(rule string) bool {
	if c == nil {
		return false
	}
	for _, v := range c.violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// Err returns nil when every check passed, or an error summarizing the
// recorded violations.
func (c *Checker) Err() error {
	if c == nil || len(c.violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariant: %d violation(s) in %d checks", len(c.violations), c.checks)
	if c.truncated > 0 {
		fmt.Fprintf(&b, " (+%d truncated)", c.truncated)
	}
	for _, v := range c.violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}

// Report renders a one-line status for CLI output: "ok (N checks)" or
// the violation count.
func (c *Checker) Report() string {
	if c == nil {
		return "disabled"
	}
	if len(c.violations) == 0 {
		return fmt.Sprintf("ok (%d checks)", c.checks)
	}
	return fmt.Sprintf("%d VIOLATION(S) in %d checks", len(c.violations)+int(c.truncated), c.checks)
}
