package invariant

// Ledger partitions one hardware context's occupancy window into the
// four ways a thread can spend cycles. The conservation invariant —
// checked when the context is released — is
//
//	Busy + Stall + Sync + Idle == release cycle - occupy cycle.
//
// Every code path that advances a thread's clock must charge exactly
// one bucket: compute charges Busy (internal/cpu), memory accesses
// charge Stall (internal/cpu around its port calls), lock and barrier
// waits charge Sync (internal/thread), and the master's park at a join
// charges Idle. A path that advances time without charging a bucket —
// the classic way simulators silently lose or double-count cycles —
// breaks the equation and is caught at the next context release.
//
// All adders are nil-safe: a nil *Ledger is the disabled harness.
type Ledger struct {
	// Busy is compute time: cycles the pipeline retired instructions
	// (including the SMT-contention derating, which is real occupancy).
	Busy uint64
	// Stall is memory time: cycles spent inside loads and stores, from
	// L1 latency through ring, L3, bus and DRAM queueing.
	Stall uint64
	// Sync is synchronization time: cycles parked on a lock or barrier
	// plus any wait for a resource grant inside Critical.
	Sync uint64
	// Idle is join time: cycles the master spends parked waiting for
	// its workers at the end of a parallel region.
	Idle uint64
}

// AddBusy charges compute cycles.
func (l *Ledger) AddBusy(d uint64) {
	if l != nil {
		l.Busy += d
	}
}

// AddStall charges memory-access cycles.
func (l *Ledger) AddStall(d uint64) {
	if l != nil {
		l.Stall += d
	}
}

// AddSync charges lock/barrier wait cycles.
func (l *Ledger) AddSync(d uint64) {
	if l != nil {
		l.Sync += d
	}
}

// AddIdle charges join-wait cycles.
func (l *Ledger) AddIdle(d uint64) {
	if l != nil {
		l.Idle += d
	}
}

// Total sums the four buckets.
func (l *Ledger) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.Busy + l.Stall + l.Sync + l.Idle
}

// Reset zeroes the ledger for a context's next occupancy.
func (l *Ledger) Reset() {
	if l != nil {
		*l = Ledger{}
	}
}

// CheckConservation verifies the ledger against the context's
// occupancy window and records the result on ck under the
// "core-conservation" rule.
func (l *Ledger) CheckConservation(ck *Checker, ctx int, occupied, released uint64) {
	if l == nil || !ck.Enabled() {
		return
	}
	window := released - occupied
	ck.Pass(1)
	if l.Total() != window {
		ck.Failf("core-conservation", released,
			"context %d: busy %d + stall %d + sync %d + idle %d = %d != occupancy window %d (occupied @%d)",
			ctx, l.Busy, l.Stall, l.Sync, l.Idle, l.Total(), window, occupied)
	}
}
