package invariant_test

// The harness matrix: every Table-2 workload under every policy class
// must complete with zero invariant violations. These runs bypass the
// experiment run cache deliberately — a checker-armed machine must
// never share cached results with unchecked runs — and use scaled-down
// machines so the whole matrix stays inside tier-1 budgets while still
// exercising contention (SMT=1, shared L3, coherence, the off-chip
// bus).

import (
	"testing"

	"fdt/internal/core"
	"fdt/internal/invariant"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

// runChecked executes one workload under one controller on a fresh
// checker-armed machine and returns the checker.
func runChecked(t *testing.T, cores int, ctl *core.Controller, workload string) *invariant.Checker {
	t.Helper()
	info, ok := workloads.ByName(workload)
	if !ok {
		t.Fatalf("unknown workload %q", workload)
	}
	m := machine.MustNew(machine.DefaultConfig().WithCores(cores))
	ck := invariant.New()
	m.AttachChecker(ck)
	ctl.Run(m, info.Factory(m))
	return ck
}

func policies() map[string]func() *core.Controller {
	return map[string]func() *core.Controller{
		"serial":  func() *core.Controller { return core.NewController(core.Static{N: 1}) },
		"SAT":     func() *core.Controller { return core.NewController(core.SAT{}) },
		"BAT":     func() *core.Controller { return core.NewController(core.BAT{}) },
		"SAT+BAT": func() *core.Controller { return core.NewController(core.Combined{}) },
		"adaptive": func() *core.Controller {
			return core.NewAdaptiveController(core.Combined{}, core.DefaultMonitorParams())
		},
	}
}

// TestMatrixZeroViolations is the acceptance matrix: 12 workloads x
// {serial, SAT, BAT, SAT+BAT, adaptive}, zero violations everywhere.
func TestMatrixZeroViolations(t *testing.T) {
	pols := policies()
	for _, info := range workloads.All() {
		for name, mk := range pols {
			info, name, mk := info, name, mk
			t.Run(info.Name+"/"+name, func(t *testing.T) {
				ck := runChecked(t, 16, mk(), info.Name)
				if err := ck.Err(); err != nil {
					t.Fatal(err)
				}
				if ck.Checks() == 0 {
					t.Fatal("checker armed but no checks ran")
				}
			})
		}
	}
}

// TestMatrixAdaptivePhaseShift runs the phase-change stress workload
// (beyond Table 2) under the adaptive controller: retraining must not
// unbalance any ledger or queue audit.
func TestMatrixAdaptivePhaseShift(t *testing.T) {
	ck := runChecked(t, 16,
		core.NewAdaptiveController(core.Combined{}, core.DefaultMonitorParams()), "phaseshift")
	if err := ck.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestMatrixSMT arms the harness on an SMT-2 machine, where contexts
// share cores and the compute derating must still conserve cycles.
func TestMatrixSMT(t *testing.T) {
	info, _ := workloads.ByName("ed")
	m := machine.MustNew(machine.Config{
		Mem:         machine.DefaultConfig().WithCores(8).Mem,
		IssueWidth:  2,
		ForkCost:    100,
		SMTContexts: 2,
	})
	ck := invariant.New()
	m.AttachChecker(ck)
	core.NewController(core.Static{}).Run(m, info.Factory(m))
	if err := ck.Err(); err != nil {
		t.Fatal(err)
	}
}
