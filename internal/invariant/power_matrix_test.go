package invariant_test

import (
	"testing"

	"fdt/internal/core"
	"fdt/internal/invariant"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

// TestPowerInvariantMatrix runs the power/energy invariants across the
// full workload × policy matrix on a DVFS machine: every Table-2
// workload under static-all and the combined FDT policy, with the
// budget-constrained search engaged, must finish with the residency
// partition, energy re-derivation and budget-compliance rules all
// clean. This is the blanket guarantee behind the Pareto experiments:
// whatever (threads, frequency) point the search picks, the energy it
// reports is exactly Σ state-residency × table power.
func TestPowerInvariantMatrix(t *testing.T) {
	all := workloads.All()
	if testing.Short() {
		all = all[:4]
	}
	pols := []core.Policy{core.Static{}, core.Combined{}}
	pps := []core.PowerParams{
		{Budget: 0, LockState: -1}, // unconstrained full-ladder search
		{Budget: 5, LockState: -1}, // tight budget on 8 cores (peak 8)
	}
	for _, info := range all {
		for _, pol := range pols {
			for _, pp := range pps {
				cfg := machine.DefaultConfig().WithCores(8).WithFreq(machine.DefaultLadder())
				m := machine.MustNew(cfg)
				ck := invariant.New()
				m.AttachChecker(ck)
				ctl := core.NewController(pol)
				ctl.Power = &pp
				res := ctl.Run(m, info.Factory(m))
				if err := ck.Err(); err != nil {
					t.Errorf("%s/%s budget=%g: %v", info.Name, pol.Name(), pp.Budget, err)
				}
				if res.Energy == nil {
					t.Fatalf("%s/%s: no energy report on a ladder machine", info.Name, pol.Name())
				}
				if pp.Budget > 0 && res.Energy.AvgPower > pp.Budget*1.02 {
					t.Errorf("%s/%s: average power %.4f exceeds budget %g",
						info.Name, pol.Name(), res.Energy.AvgPower, pp.Budget)
				}
			}
		}
	}
}
