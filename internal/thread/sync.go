package thread

import (
	"fdt/internal/machine"
	"fdt/internal/sim"
	"fdt/internal/trace"
)

// Lock is a FIFO mutual-exclusion lock guarding a critical section.
// The zero value is an unlocked lock with no memory footprint.
//
// FIFO grant order matches a fair ticket/queue lock; it also makes the
// serialized critical-section stream deterministic, which the paper's
// Fig 6 analysis implicitly assumes (total CS time grows linearly with
// the number of threads executing the CS).
//
// A Lock built with NewLock additionally owns a cache line for the
// lock word: every acquisition and release performs a real store to
// it, so a contended lock pays the MESI ownership ping-pong between
// the previous and next holder — the physical cost that makes
// critical sections more expensive under contention than the
// single-threaded training run observes.
type Lock struct {
	// Addr is the lock word's line address; zero means the lock is
	// simulated without memory traffic.
	Addr uint64

	held    bool
	waiters []*sim.Proc
	// owner is the process currently holding the lock (nil when free).
	// Maintained unconditionally — it is one pointer write per
	// transition — and verified by the "sync-lock-ownership" invariant
	// when the harness is armed: direct acquisition requires a free
	// lock, a woken waiter must have been handed ownership, and only
	// the owner may release.
	owner *sim.Proc
}

// NewLock allocates a lock with a backing cache line on m.
func NewLock(m *machine.Machine) *Lock {
	return &Lock{Addr: m.Alloc(64)}
}

// Critical executes body under the lock, charging the thread the wait
// time (if the lock is held) and accumulating the runtime's CS
// instrumentation counters.
func (c *Ctx) Critical(l *Lock, body func()) {
	p := c.CPU.Proc()
	ctrs := c.m.Ctrs

	ck := c.m.Check
	waitStart := p.Now()
	if l.held {
		l.waiters = append(l.waiters, p)
		p.Park()
		if ck.Enabled() {
			ck.Pass(1)
			if l.owner != p {
				ck.Failf("sync-lock-ownership", p.Now(),
					"thread %d woke inside a critical section without being handed the lock", c.ID)
			}
		}
	} else {
		if ck.Enabled() {
			ck.Pass(1)
			if l.owner != nil {
				ck.Failf("sync-lock-ownership", p.Now(),
					"thread %d acquired a free-looking lock that still has an owner", c.ID)
			}
		}
		l.held = true
		l.owner = p
	}
	entered := p.Now()
	ctrs.Counter(CtrCSWaitCycles).Add(entered - waitStart)
	ctrs.Counter(CtrCSEntries).Inc()
	c.team.ChargeCSWait(entered - waitStart)
	c.team.ChargeCSEntry()
	c.led.AddSync(entered - waitStart)

	if l.Addr != 0 {
		// Take ownership of the lock word (the atomic RMW that
		// acquired the lock).
		c.CPU.Store(l.Addr)
	}

	body()

	if l.Addr != 0 {
		// Release store on the lock word.
		c.CPU.Store(l.Addr)
	}

	exited := p.Now()
	ctrs.Counter(CtrCSCycles).Add(exited - entered)
	c.team.ChargeCS(exited - entered)

	// One span per acquisition (plus one for any wait) on the thread's
	// core track — the serialized critical-section stream of Eq 3,
	// visible per thread in Perfetto.
	if tr := c.m.Trace; tr.Wants(trace.CatSync) {
		tk := c.m.CoreTrack(c.CPU.Core())
		if entered > waitStart {
			tr.Emit(trace.CatSync, trace.Event{
				Cycle: waitStart, Dur: entered - waitStart, Track: tk,
				Kind: trace.Complete, Name: "cs-wait", A0: uint64(c.ID),
			})
		}
		tr.Emit(trace.CatSync, trace.Event{
			Cycle: entered, Dur: exited - entered, Track: tk,
			Kind: trace.Complete, Name: "cs", A0: uint64(c.ID),
		})
	}

	// Hand the lock to the next waiter in FIFO order, or free it.
	if ck.Enabled() {
		ck.Pass(1)
		if l.owner != p {
			ck.Failf("sync-lock-ownership", p.Now(),
				"thread %d releasing a lock it does not own", c.ID)
		}
	}
	if len(l.waiters) > 0 {
		next := l.waiters[0]
		l.waiters = l.waiters[1:]
		l.owner = next
		p.Wake(next) // next resumes holding the lock
	} else {
		l.held = false
		l.owner = nil
	}
}

// Barrier synchronizes a team: every arriving thread blocks until
// Size threads have arrived. A Barrier is reusable across iterations
// (the arrival count resets when the last thread arrives). The zero
// value is ready to use.
type Barrier struct {
	arrived int
	waiters []*sim.Proc
	// gen counts completed barrier episodes. Maintained
	// unconditionally; the "sync-barrier-generation" invariant uses it
	// to verify that a parked thread wakes in exactly the next
	// generation — no lost wakeups, no wake-ahead.
	gen uint64
}

// Barrier blocks the thread at b until all c.Size team members arrive,
// charging barrier wait time to the runtime's counters.
func (c *Ctx) Barrier(b *Barrier) {
	p := c.CPU.Proc()
	ck := c.m.Check
	start := p.Now()
	b.arrived++
	if ck.Enabled() {
		ck.Pass(1)
		if b.arrived > c.Size {
			ck.Failf("sync-barrier-overflow", start,
				"barrier has %d arrivals for a team of %d", b.arrived, c.Size)
		}
	}
	if b.arrived < c.Size {
		g0 := b.gen
		b.waiters = append(b.waiters, p)
		p.Park()
		if ck.Enabled() {
			ck.Pass(1)
			if b.gen != g0+1 {
				ck.Failf("sync-barrier-generation", p.Now(),
					"thread %d parked in barrier generation %d but woke in %d (want %d)",
					c.ID, g0, b.gen, g0+1)
			}
		}
	} else {
		// Last arriver releases everyone and resets for reuse.
		b.gen++
		for _, w := range b.waiters {
			p.Wake(w)
		}
		b.waiters = b.waiters[:0]
		b.arrived = 0
	}
	if now := p.Now(); now > start {
		c.m.Ctrs.Counter(CtrBarrierWaitCycles).Add(now - start)
		c.team.ChargeBarrierWait(now - start)
		c.led.AddSync(now - start)
		if tr := c.m.Trace; tr.Wants(trace.CatSync) {
			tr.Emit(trace.CatSync, trace.Event{
				Cycle: start, Dur: now - start, Track: c.m.CoreTrack(c.CPU.Core()),
				Kind: trace.Complete, Name: "barrier-wait", A0: uint64(c.ID),
			})
		}
	}
}
