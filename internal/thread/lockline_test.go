package thread

import (
	"testing"

	"fdt/internal/counters"
)

func TestNewLockHasBackingLine(t *testing.T) {
	m := testMachine(t)
	l := NewLock(m)
	if l.Addr == 0 {
		t.Fatal("NewLock allocated no line")
	}
	l2 := NewLock(m)
	if l2.Addr == l.Addr {
		t.Fatal("two locks share one line")
	}
}

func TestZeroLockGeneratesNoTraffic(t *testing.T) {
	m := testMachine(t)
	var l Lock
	Run(m, func(c *Ctx) {
		c.Critical(&l, func() { c.Compute(10) })
	})
	if got := m.Ctrs.Counter(counters.BusTransactions).Read(); got != 0 {
		t.Errorf("zero-value lock generated %d bus transactions", got)
	}
}

func TestContendedLockCostsMoreThanPrivate(t *testing.T) {
	// The same critical section executed by alternating cores must be
	// slower than executed repeatedly by one core: each handoff
	// transfers the lock line between private caches.
	run := func(alternate bool) uint64 {
		m := testMachine(t)
		l := NewLock(m)
		var total uint64
		Run(m, func(c *Ctx) {
			c.Critical(l, func() {}) // warm the lock line
			n := 2
			if !alternate {
				n = 1
			}
			start := c.CPU.CycleCount()
			c.Fork(n, func(tc *Ctx) {
				for i := 0; i < 8; i++ {
					tc.Critical(l, func() { tc.Compute(5) })
				}
			})
			total = c.CPU.CycleCount() - start
		})
		return total
	}
	private := run(false)
	contended := run(true)
	// Two threads do twice the CS executions; if handoffs were free
	// the serialized time would be exactly 2x. Demand strictly more.
	if contended <= 2*private {
		t.Errorf("contended 16 CS = %d cycles vs private 8 CS = %d — no ping-pong cost", contended, private)
	}
}

func TestLockCSCyclesIncludeLockWordAccess(t *testing.T) {
	m := testMachine(t)
	l := NewLock(m)
	Run(m, func(c *Ctx) {
		c.Critical(l, func() { c.Compute(10) })
	})
	cs := m.Ctrs.Counter(CtrCSCycles).Read()
	if cs <= 10 {
		t.Errorf("cs cycles = %d, want > 10 (lock-word stores included)", cs)
	}
}
