package thread

import (
	"testing"

	"fdt/internal/machine"
)

func smtMachine(t *testing.T) *machine.Machine {
	t.Helper()
	return machine.MustNew(machine.DefaultConfig().WithCores(8).WithSMT(2))
}

func TestSMTForkUsesAllContexts(t *testing.T) {
	m := smtMachine(t)
	cores := map[int]int{}
	Run(m, func(c *Ctx) {
		c.Fork(16, func(tc *Ctx) {
			cores[tc.CPU.Core()]++
			tc.Compute(10)
		})
	})
	if len(cores) != 8 {
		t.Fatalf("used %d cores, want all 8", len(cores))
	}
	for core, n := range cores {
		if n != 2 {
			t.Errorf("core %d hosted %d threads, want 2", core, n)
		}
	}
}

func TestSMTSpreadsBeforeStacking(t *testing.T) {
	// With a team no larger than the core count, every thread gets a
	// dedicated core even on an SMT machine.
	m := smtMachine(t)
	cores := map[int]int{}
	Run(m, func(c *Ctx) {
		c.Fork(8, func(tc *Ctx) {
			cores[tc.CPU.Core()]++
			tc.Compute(10)
		})
	})
	for core, n := range cores {
		if n != 1 {
			t.Errorf("core %d hosted %d threads at team size 8", core, n)
		}
	}
}

func TestSMTCoResidentComputeSlower(t *testing.T) {
	// Two compute-bound threads on one core must take about twice as
	// long as two threads on two cores.
	elapsed := func(teamOf int, cfg machine.Config) uint64 {
		m := machine.MustNew(cfg)
		Run(m, func(c *Ctx) {
			c.Fork(teamOf, func(tc *Ctx) { tc.Compute(10000) })
		})
		return m.Eng.Now()
	}
	dedicated := elapsed(2, machine.DefaultConfig().WithCores(8).WithSMT(1))
	// Construct true sharing: a team of 9 on 8 cores x 2 SMT puts
	// thread 8 on core 0 beside thread 0's context.
	m := machine.MustNew(machine.DefaultConfig().WithCores(8).WithSMT(2))
	var t0busy uint64
	Run(m, func(c *Ctx) {
		c.Fork(9, func(tc *Ctx) {
			start := tc.CPU.CycleCount()
			tc.Compute(10000)
			if tc.ID == 8 { // shares core 0 with thread 0
				t0busy = tc.CPU.CycleCount() - start
			}
		})
	})
	if t0busy < 2*10000 {
		t.Errorf("co-resident thread computed 10000 cycles in %d, want ~2x slowdown", t0busy)
	}
	if dedicated > 10200 {
		t.Errorf("dedicated threads took %d, want ~10000", dedicated)
	}
}

func TestSMTForkClampsToContexts(t *testing.T) {
	m := smtMachine(t)
	var size int
	Run(m, func(c *Ctx) {
		c.Fork(64, func(tc *Ctx) { size = tc.Size })
	})
	if size != 16 {
		t.Errorf("team size = %d, want 16 contexts", size)
	}
}

func TestSMTPowerCountsCoresNotContexts(t *testing.T) {
	m := smtMachine(t)
	Run(m, func(c *Ctx) {
		c.Fork(16, func(tc *Ctx) { tc.Compute(1000) })
	})
	avg := m.Power.AverageActiveCores(m.Eng.Now())
	if avg > 8.01 {
		t.Errorf("avg active cores = %.2f on an 8-core machine", avg)
	}
	if avg < 6 {
		t.Errorf("avg active cores = %.2f, want near 8 during a 16-thread region", avg)
	}
}
