// Package thread implements the threading runtime of the simulated
// machine: fork-join parallel regions with a runtime-variable team
// size (OpenMP's num_threads clause), FIFO critical-section locks and
// barriers — the "minimal support from the threading library" the
// paper's techniques require.
//
// The runtime also provides the instrumentation FDT leans on: every
// critical section's occupancy is accumulated into a machine counter
// (the moral equivalent of the paper's compiler-inserted cycle-counter
// reads at critical-section entry and exit), so the training phase
// can compute T_CS and T_NoCS without touching workload code.
package thread

import (
	"fmt"

	"fdt/internal/counters"
	"fdt/internal/cpu"
	"fdt/internal/invariant"
	"fdt/internal/machine"
	"fdt/internal/sim"
)

// Counter names exported by the runtime into the machine counter set.
const (
	// CtrCSCycles accumulates cycles spent inside critical sections
	// (lock held), across all threads.
	CtrCSCycles = "sync.cs_cycles"
	// CtrCSWaitCycles accumulates cycles spent waiting to enter
	// critical sections.
	CtrCSWaitCycles = "sync.cs_wait_cycles"
	// CtrCSEntries counts critical-section executions.
	CtrCSEntries = "sync.cs_entries"
	// CtrBarrierWaitCycles accumulates cycles spent waiting at
	// barriers.
	CtrBarrierWaitCycles = "sync.barrier_wait_cycles"
)

// Ctx is a thread's execution context inside a parallel region (or
// the master's context outside one, where ID=0 and Size=1).
type Ctx struct {
	// ID is the thread's index within its team.
	ID int
	// Size is the team size.
	Size int
	// CPU executes this thread's work.
	CPU *cpu.CPU

	m *machine.Machine
	// team is the thread's tenant: the contexts it may fork onto and
	// the private counter file its synchronization and bus traffic
	// accumulate into. Always set (single-tenant programs run on the
	// machine's default whole-machine team).
	team *machine.Team
	// led is the hardware context's conservation ledger (nil when the
	// invariant harness is disabled): sync waits charge Sync, the
	// master's join park charges Idle.
	led *invariant.Ledger
}

// Machine exposes the machine the thread runs on.
func (c *Ctx) Machine() *machine.Machine { return c.m }

// Team exposes the thread's tenant.
func (c *Ctx) Team() *machine.Team { return c.team }

// TeamSize reports the thread capacity of this thread's team — the
// clamp Fork applies and the "cores" a tenant's controller may choose
// among (the whole machine for a single-tenant program).
func (c *Ctx) TeamSize() int { return c.team.Size() }

// TeamCounter reads a counter from the team's private counter file —
// the per-tenant view a controller samples (e.g. its own threads'
// critical-section cycles, not a co-runner's).
func (c *Ctx) TeamCounter(name string) *counters.Counter {
	return c.team.Ctrs.Counter(name)
}

// Compute advances this thread through cycles of ALU work.
func (c *Ctx) Compute(cycles uint64) { c.CPU.Compute(cycles) }

// Exec retires instrs instructions.
func (c *Ctx) Exec(instrs uint64) { c.CPU.Exec(instrs) }

// Load reads the line containing addr.
func (c *Ctx) Load(addr uint64) { c.CPU.Load(addr) }

// Store writes the line containing addr.
func (c *Ctx) Store(addr uint64) { c.CPU.Store(addr) }

// LoadRange streams loads over [base, base+bytes).
func (c *Ctx) LoadRange(base uint64, bytes int) { c.CPU.LoadRange(base, bytes) }

// StoreRange streams stores over [base, base+bytes).
func (c *Ctx) StoreRange(base uint64, bytes int) { c.CPU.StoreRange(base, bytes) }

// AtDecisionPoint reports whether the context is at a safe
// re-decision point: on the master thread with no team forked. Only
// here may a controller change the team size — between chunks, every
// worker has joined and the next Fork is free to pick a new n. The
// FDT pipeline's executor asserts this before every chunk.
func (c *Ctx) AtDecisionPoint() bool { return c.ID == 0 && c.Size == 1 }

// FastForward advances the master's clock by d cycles without
// executing work — the sampled-execution runtime's analytic skip
// across a steady-state region. Only legal at a decision point: with
// no team forked, warping the master's clock cannot desynchronize
// in-flight workers. The skipped span counts as active occupancy for
// the power metric (the master context stays occupied throughout) and
// as Idle in the conservation ledger — though in practice the ledger
// never sees a fast-forward, because invariant-checked runs force
// exact mode.
func (c *Ctx) FastForward(d uint64) {
	if !c.AtDecisionPoint() {
		panic("thread: FastForward outside a decision point")
	}
	if d == 0 {
		return
	}
	c.CPU.Proc().Advance(d)
	c.led.AddIdle(d)
}

// Range block-distributes the half-open interval [lo, hi) across the
// team and returns this thread's sub-interval — OpenMP's static
// schedule.
func (c *Ctx) Range(lo, hi int) (myLo, myHi int) {
	n := hi - lo
	if n <= 0 {
		return lo, lo
	}
	per := n / c.Size
	rem := n % c.Size
	myLo = lo + c.ID*per + min(c.ID, rem)
	myHi = myLo + per
	if c.ID < rem {
		myHi++
	}
	return myLo, myHi
}

// newCtx builds a thread context on its team's slot-th hardware
// context: the CPU sits on that context's core, shares that core's
// memory port (attributing its bus traffic to the team), and — under
// SMT — derates its compute by the core's current context load.
func newCtx(m *machine.Machine, team *machine.Team, id, size, slot int, p *sim.Proc) *Ctx {
	hwCtx := team.Ctx(slot)
	core := m.CoreOf(hwCtx)
	c := cpu.New(core, m.Cfg.IssueWidth, p, m.Mem.Port(core))
	c.SetTeamCtrs(team.MemAttr())
	if m.Cfg.SMTContexts > 1 {
		c.SetContention(func() int { return m.CoreLoad(core) })
	}
	if !m.Cfg.Freq.Trivial() {
		c.SetFreqScale(func() (uint64, uint64) { return m.FreqScale(core) })
	}
	led := m.ContextLedger(hwCtx)
	c.SetLedger(led)
	return &Ctx{ID: id, Size: size, CPU: c, m: m, team: team, led: led}
}

// TeamMain is one tenant's program: a master function to run on the
// team's first context.
type TeamMain struct {
	Team *machine.Team
	Main func(c *Ctx)
}

// RunTeams co-schedules one master thread per team — each on its
// team's first hardware context, spawned in slice order (which fixes
// the deterministic interleaving) — runs the simulation until every
// program completes, and accounts each master's occupancy. It returns
// each master's completion cycle, in input order. This is the
// multi-tenant generalization of Run: the engine interleaves all
// teams' processes against the shared memory system while each team
// forks, synchronizes and accounts only within itself.
func RunTeams(m *machine.Machine, mains []TeamMain) []uint64 {
	// Occupy from the engine's current time, not 0: on a fresh machine
	// they are the same, and on a checkpoint-restored machine (clock
	// warped forward) the masters' active spans must start at the
	// restore point.
	done := make([]uint64, len(mains))
	for i := range mains {
		tm := mains[i]
		m.OccupyContext(tm.Team.Ctx(0), m.Eng.Now())
		i := i
		m.Eng.Spawn(tm.Team.ProcName("master"), func(p *sim.Proc) {
			tm.Main(newCtx(m, tm.Team, 0, 1, 0, p))
			done[i] = p.Now()
		})
	}
	m.Eng.Run()
	// Auxiliary processes (the sampler) may keep the engine alive past
	// a master's last action, and co-runners past a faster program's
	// completion; each master's tail is idle occupancy.
	end := m.Eng.Now()
	for i := range mains {
		ctx0 := mains[i].Team.Ctx(0)
		m.ContextLedger(ctx0).AddIdle(end - done[i])
		m.ReleaseContext(ctx0, end)
	}
	return done
}

// Run starts the program's master thread on hardware context 0 (core
// 0), runs the simulation to completion, and accounts the master's
// power. The master is active for the whole execution, like the
// initial thread of an OpenMP program. The program runs on the
// machine's default whole-machine team.
func Run(m *machine.Machine, main func(c *Ctx)) {
	RunTeams(m, []TeamMain{{Team: m.DefaultTeam(), Main: main}})
}

// Fork runs body on a team of n threads — thread i on the team's i-th
// context, which spreads one thread per owned core before any core
// hosts two (SMT) — and returns when every team member has finished
// (the implicit join of a parallel region). The caller becomes thread
// 0. n is clamped to [1, TeamSize]. Nested parallel regions are not
// supported, as in the paper's OpenMP setup: only the master (ID 0 of
// a size-1 context) may fork.
func (c *Ctx) Fork(n int, body func(tc *Ctx)) {
	if !c.AtDecisionPoint() {
		panic("thread: nested Fork is not supported")
	}
	m, t := c.m, c.team
	if n < 1 {
		n = 1
	}
	if n > t.Size() {
		n = t.Size()
	}
	p := c.CPU.Proc()
	if n > 1 {
		c.Compute(m.Cfg.ForkCost)
	}

	join := &joinState{remaining: n - 1, master: p}
	for i := 1; i < n; i++ {
		i := i
		hw := t.Ctx(i)
		m.OccupyContext(hw, p.Now())
		m.Eng.Spawn(t.ProcName(fmt.Sprintf("worker-%d", i)), func(wp *sim.Proc) {
			tc := newCtx(m, t, i, n, i, wp)
			body(tc)
			m.ReleaseContext(hw, wp.Now())
			join.remaining--
			if join.remaining == 0 && join.masterParked {
				wp.Wake(join.master)
			}
		})
	}

	masterCtx := &Ctx{ID: 0, Size: n, CPU: c.CPU, m: m, team: t, led: c.led}
	body(masterCtx)
	if join.remaining > 0 {
		join.masterParked = true
		t0 := p.Now()
		p.Park()
		c.led.AddIdle(p.Now() - t0)
	}
}

type joinState struct {
	remaining    int
	masterParked bool
	master       *sim.Proc
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
