package thread

import (
	"testing"

	"fdt/internal/machine"
)

func testMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunExecutesMaster(t *testing.T) {
	m := testMachine(t)
	var ran bool
	Run(m, func(c *Ctx) {
		ran = true
		if c.ID != 0 || c.Size != 1 {
			t.Errorf("master ctx = (%d,%d), want (0,1)", c.ID, c.Size)
		}
		c.Compute(100)
	})
	if !ran {
		t.Fatal("master body never ran")
	}
	if m.Eng.Now() != 100 {
		t.Errorf("execution took %d cycles, want 100", m.Eng.Now())
	}
}

func TestForkRunsAllThreads(t *testing.T) {
	m := testMachine(t)
	seen := make(map[int]int)
	Run(m, func(c *Ctx) {
		c.Fork(8, func(tc *Ctx) {
			seen[tc.ID] = tc.Size
			tc.Compute(10)
		})
	})
	if len(seen) != 8 {
		t.Fatalf("saw %d threads, want 8", len(seen))
	}
	for id, size := range seen {
		if size != 8 {
			t.Errorf("thread %d saw team size %d, want 8", id, size)
		}
	}
}

func TestForkJoinWaitsForSlowestThread(t *testing.T) {
	m := testMachine(t)
	var joinAt uint64
	Run(m, func(c *Ctx) {
		c.Fork(4, func(tc *Ctx) {
			tc.Compute(uint64(100 * (tc.ID + 1))) // thread 3 takes 400
		})
		joinAt = c.CPU.CycleCount()
	})
	want := m.Cfg.ForkCost + 400
	if joinAt != want {
		t.Errorf("join at %d, want %d", joinAt, want)
	}
}

func TestForkClampsToCoreCount(t *testing.T) {
	m := testMachine(t)
	var size int
	Run(m, func(c *Ctx) {
		c.Fork(1000, func(tc *Ctx) { size = tc.Size })
	})
	if size != m.Cores() {
		t.Errorf("team size = %d, want %d", size, m.Cores())
	}
}

func TestNestedForkPanics(t *testing.T) {
	m := testMachine(t)
	defer func() {
		if recover() == nil {
			t.Error("nested fork did not panic")
		}
	}()
	Run(m, func(c *Ctx) {
		c.Fork(2, func(tc *Ctx) {
			tc.Fork(2, func(*Ctx) {})
		})
	})
}

func TestSerialForkHasNoOverhead(t *testing.T) {
	m := testMachine(t)
	Run(m, func(c *Ctx) {
		c.Fork(1, func(tc *Ctx) { tc.Compute(10) })
	})
	if m.Eng.Now() != 10 {
		t.Errorf("n=1 fork took %d cycles, want 10 (no fork cost)", m.Eng.Now())
	}
}

func TestRangeBlockDistribution(t *testing.T) {
	covered := make([]int, 103)
	for id := 0; id < 7; id++ {
		c := &Ctx{ID: id, Size: 7}
		lo, hi := c.Range(0, 103)
		for i := lo; i < hi; i++ {
			covered[i]++
		}
	}
	for i, n := range covered {
		if n != 1 {
			t.Fatalf("index %d covered %d times, want exactly once", i, n)
		}
	}
}

func TestRangeEmptyAndSmall(t *testing.T) {
	c := &Ctx{ID: 3, Size: 8}
	if lo, hi := c.Range(5, 5); lo != hi {
		t.Errorf("empty range returned [%d,%d)", lo, hi)
	}
	// 2 items across 8 threads: threads 0,1 get one each, rest empty.
	total := 0
	for id := 0; id < 8; id++ {
		c := &Ctx{ID: id, Size: 8}
		lo, hi := c.Range(0, 2)
		total += hi - lo
	}
	if total != 2 {
		t.Errorf("total items distributed = %d, want 2", total)
	}
}

func TestPowerAccountsActiveCores(t *testing.T) {
	m := testMachine(t)
	Run(m, func(c *Ctx) {
		c.Fork(4, func(tc *Ctx) { tc.Compute(1000) })
	})
	total := m.Eng.Now()
	avg := m.Power.AverageActiveCores(total)
	// Master active the whole run; 3 workers for ~1000 of ~1100
	// cycles: average must be close to 4 and definitely > 3.
	if avg < 3.0 || avg > 4.0 {
		t.Errorf("avg active cores = %.2f, want in (3,4]", avg)
	}
}

func TestForkPlacementOneThreadPerCore(t *testing.T) {
	m := testMachine(t)
	cores := make(map[int]bool)
	Run(m, func(c *Ctx) {
		c.Fork(6, func(tc *Ctx) {
			if cores[tc.CPU.Core()] {
				t.Errorf("core %d used twice", tc.CPU.Core())
			}
			cores[tc.CPU.Core()] = true
		})
	})
	if len(cores) != 6 {
		t.Errorf("used %d cores, want 6", len(cores))
	}
}

func TestSequentialForksReuseCores(t *testing.T) {
	m := testMachine(t)
	Run(m, func(c *Ctx) {
		for i := 0; i < 3; i++ {
			c.Fork(4, func(tc *Ctx) { tc.Compute(10) })
		}
	})
	// No panic from AcquireCore means release/acquire balanced.
}
