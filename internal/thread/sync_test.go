package thread

import (
	"testing"
	"testing/quick"

	"fdt/internal/machine"
)

func TestCriticalSerializes(t *testing.T) {
	m := testMachine(t)
	var intervals [][2]uint64
	var lock Lock
	Run(m, func(c *Ctx) {
		c.Fork(8, func(tc *Ctx) {
			tc.Critical(&lock, func() {
				start := tc.CPU.CycleCount()
				tc.Compute(50)
				intervals = append(intervals, [2]uint64{start, tc.CPU.CycleCount()})
			})
		})
	})
	if len(intervals) != 8 {
		t.Fatalf("got %d critical executions, want 8", len(intervals))
	}
	for i := 1; i < len(intervals); i++ {
		if intervals[i][0] < intervals[i-1][1] {
			t.Errorf("critical sections overlap: %v then %v", intervals[i-1], intervals[i])
		}
	}
}

func TestCriticalFIFOOrder(t *testing.T) {
	m := testMachine(t)
	var order []int
	var lock Lock
	Run(m, func(c *Ctx) {
		c.Fork(6, func(tc *Ctx) {
			// Stagger arrivals by ID so the queue order is knowable.
			tc.Compute(uint64(10 * tc.ID))
			tc.Critical(&lock, func() {
				tc.Compute(100) // long CS so all later arrivals queue
				order = append(order, tc.ID)
			})
		})
	})
	for i, id := range order {
		if id != i {
			t.Fatalf("grant order = %v, want FIFO by arrival [0 1 2 3 4 5]", order)
		}
	}
}

func TestCriticalAccountsCycles(t *testing.T) {
	m := testMachine(t)
	var lock Lock
	Run(m, func(c *Ctx) {
		c.Fork(4, func(tc *Ctx) {
			tc.Critical(&lock, func() { tc.Compute(25) })
		})
	})
	cs := m.Ctrs.Counter(CtrCSCycles).Read()
	if cs != 4*25 {
		t.Errorf("cs cycles = %d, want 100", cs)
	}
	if got := m.Ctrs.Counter(CtrCSEntries).Read(); got != 4 {
		t.Errorf("cs entries = %d, want 4", got)
	}
	// All four arrive together; they serialize, so total wait is
	// 0 + 25 + 50 + 75 = 150.
	if wait := m.Ctrs.Counter(CtrCSWaitCycles).Read(); wait != 150 {
		t.Errorf("cs wait = %d, want 150", wait)
	}
}

func TestCriticalUncontendedNoWait(t *testing.T) {
	m := testMachine(t)
	var lock Lock
	Run(m, func(c *Ctx) {
		c.Critical(&lock, func() { c.Compute(10) })
		c.Critical(&lock, func() { c.Compute(10) })
	})
	if wait := m.Ctrs.Counter(CtrCSWaitCycles).Read(); wait != 0 {
		t.Errorf("uncontended wait = %d, want 0", wait)
	}
	if cs := m.Ctrs.Counter(CtrCSCycles).Read(); cs != 20 {
		t.Errorf("cs cycles = %d, want 20", cs)
	}
}

func TestBarrierReleasesAllTogether(t *testing.T) {
	m := testMachine(t)
	var b Barrier
	var releaseTimes []uint64
	Run(m, func(c *Ctx) {
		c.Fork(5, func(tc *Ctx) {
			tc.Compute(uint64(100 * tc.ID)) // staggered arrivals
			tc.Barrier(&b)
			releaseTimes = append(releaseTimes, tc.CPU.CycleCount())
		})
	})
	if len(releaseTimes) != 5 {
		t.Fatalf("got %d releases, want 5", len(releaseTimes))
	}
	for _, rt := range releaseTimes {
		if rt != releaseTimes[0] {
			t.Errorf("release times differ: %v", releaseTimes)
		}
	}
}

func TestBarrierReusableAcrossPhases(t *testing.T) {
	m := testMachine(t)
	var b Barrier
	phase := make(map[int][]uint64)
	Run(m, func(c *Ctx) {
		c.Fork(3, func(tc *Ctx) {
			for it := 0; it < 3; it++ {
				tc.Compute(uint64(10 * (tc.ID + 1)))
				tc.Barrier(&b)
				phase[tc.ID] = append(phase[tc.ID], tc.CPU.CycleCount())
			}
		})
	})
	// Each phase releases all threads at the same cycle, and phases
	// are strictly increasing.
	for it := 0; it < 3; it++ {
		t0 := phase[0][it]
		for id := 1; id < 3; id++ {
			if phase[id][it] != t0 {
				t.Errorf("phase %d: thread %d released at %d, thread 0 at %d", it, id, phase[id][it], t0)
			}
		}
		if it > 0 && phase[0][it] <= phase[0][it-1] {
			t.Errorf("phase %d not after phase %d", it, it-1)
		}
	}
}

func TestBarrierWaitAccounting(t *testing.T) {
	m := testMachine(t)
	var b Barrier
	Run(m, func(c *Ctx) {
		c.Fork(2, func(tc *Ctx) {
			if tc.ID == 0 {
				tc.Compute(100)
			}
			tc.Barrier(&b)
		})
	})
	// Thread 1 arrives ~100 cycles early and waits.
	wait := m.Ctrs.Counter(CtrBarrierWaitCycles).Read()
	if wait != 100 {
		t.Errorf("barrier wait = %d, want 100", wait)
	}
}

func TestSingleThreadBarrierIsFree(t *testing.T) {
	m := testMachine(t)
	var b Barrier
	Run(m, func(c *Ctx) {
		c.Barrier(&b)
		c.Compute(5)
		c.Barrier(&b)
	})
	if m.Eng.Now() != 5 {
		t.Errorf("elapsed = %d, want 5", m.Eng.Now())
	}
}

func TestPropertyTotalCSTimeLinearInThreads(t *testing.T) {
	// The paper's Fig 6 premise: with each of P threads executing the
	// critical section once, total CS occupancy is P times the
	// single-thread CS time, for any P.
	f := func(pRaw uint8) bool {
		p := int(pRaw%8) + 1
		m := machine.MustNew(machine.DefaultConfig())
		var lock Lock
		Run(m, func(c *Ctx) {
			c.Fork(p, func(tc *Ctx) {
				tc.Critical(&lock, func() { tc.Compute(40) })
			})
		})
		return m.Ctrs.Counter(CtrCSCycles).Read() == uint64(p)*40
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
