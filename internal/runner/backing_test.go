package runner

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// mapBacking is an in-memory stand-in for the disk store, with
// counters to observe the cache's load/save discipline.
type mapBacking struct {
	mu    sync.Mutex
	m     map[string]int
	loads atomic.Int64
	saves atomic.Int64
}

func newMapBacking() *mapBacking { return &mapBacking{m: map[string]int{}} }

func (b *mapBacking) load(key string) (int, bool) {
	b.loads.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	return v, ok
}

func (b *mapBacking) save(key string, v int) {
	b.saves.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = v
}

func TestBackingWriteThroughAndReload(t *testing.T) {
	var c Cache[int]
	b := newMapBacking()
	c.SetBacking(b.load, b.save)

	computes := 0
	v := c.Do("k", func() int { computes++; return 42 })
	if v != 42 || computes != 1 {
		t.Fatalf("first Do = %d (computes %d), want 42 computed once", v, computes)
	}
	if b.saves.Load() != 1 || b.m["k"] != 42 {
		t.Fatalf("computed value not written through: saves=%d m=%v", b.saves.Load(), b.m)
	}

	// In-memory hit: no load, no compute.
	v = c.Do("k", func() int { computes++; return -1 })
	if v != 42 || computes != 1 || b.loads.Load() != 1 {
		t.Fatalf("memory hit recomputed or reloaded: v=%d computes=%d loads=%d", v, computes, b.loads.Load())
	}

	// Drop the memory copy: the next Do must reload from the backing,
	// not recompute.
	c.Reset()
	v = c.Do("k", func() int { computes++; return -1 })
	if v != 42 || computes != 1 {
		t.Fatalf("backing reload failed: v=%d computes=%d", v, computes)
	}
	if c.Computes() != 0 || c.BackingHits() != 1 {
		t.Fatalf("counters after reload: computes=%d backingHits=%d, want 0/1", c.Computes(), c.BackingHits())
	}
}

func TestBackingEvictionReloadsNotRecomputes(t *testing.T) {
	var c Cache[int]
	b := newMapBacking()
	c.SetBacking(b.load, b.save)
	c.SetLimit(1)

	c.Do("a", func() int { return 1 })
	c.Do("b", func() int { return 2 }) // evicts a
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
	v := c.Do("a", func() int { return -1 })
	if v != 1 {
		t.Fatalf("evicted key reloaded %d, want 1", v)
	}
	if c.Computes() != 2 || c.BackingHits() != 1 {
		t.Fatalf("computes=%d backingHits=%d, want 2/1", c.Computes(), c.BackingHits())
	}
}

// Single-flight must hold with a backing attached: N concurrent Dos of
// one cold key perform exactly one load and one compute.
func TestBackingSingleFlight(t *testing.T) {
	var c Cache[int]
	b := newMapBacking()
	c.SetBacking(b.load, b.save)

	const goroutines = 32
	var computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			results[g] = c.Do("hot", func() int {
				computes.Add(1)
				return 7
			})
		}(g)
	}
	close(start)
	wg.Wait()
	for g, v := range results {
		if v != 7 {
			t.Fatalf("goroutine %d got %d", g, v)
		}
	}
	if computes.Load() != 1 || b.loads.Load() != 1 || b.saves.Load() != 1 {
		t.Fatalf("computes=%d loads=%d saves=%d, want 1/1/1",
			computes.Load(), b.loads.Load(), b.saves.Load())
	}
}

// Warm backing, many distinct keys, many goroutines: zero computes.
func TestBackingWarmConcurrent(t *testing.T) {
	b := newMapBacking()
	const keys = 16
	for i := 0; i < keys; i++ {
		b.m[fmt.Sprintf("k%d", i)] = i
	}
	var c Cache[int]
	c.SetBacking(b.load, b.save)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("k%d", i)
				if v := c.Do(key, func() int { return -1 }); v != i {
					t.Errorf("Do(%s) = %d, want %d", key, v, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Computes() != 0 || c.BackingHits() != keys {
		t.Fatalf("computes=%d backingHits=%d, want 0/%d", c.Computes(), c.BackingHits(), keys)
	}
	if b.saves.Load() != 0 {
		t.Fatalf("saves = %d on a fully warm backing", b.saves.Load())
	}
}

// Detaching the backing mid-life must leave the cache a plain
// memoizer again.
func TestBackingDetach(t *testing.T) {
	var c Cache[int]
	b := newMapBacking()
	c.SetBacking(b.load, b.save)
	c.Do("k", func() int { return 1 })
	c.SetBacking(nil, nil)
	c.Reset()
	v := c.Do("k", func() int { return 9 })
	if v != 9 {
		t.Fatalf("detached cache served %d from dead backing", v)
	}
	if b.loads.Load() != 1 {
		t.Fatalf("backing consulted after detach: loads=%d", b.loads.Load())
	}
}
