// Package runner provides the host-side execution layer for the
// simulation suite: a worker pool that fans independent simulated
// runs out across host cores, and a content-addressed cache that
// memoizes deterministic runs so figures sharing baselines simulate
// them once per process.
//
// Parallelism lives strictly here, across independent simulations.
// One sim.Engine is single-threaded by design (determinism depends on
// a total event order); the runner never touches an engine's
// internals, it only decides which engines run concurrently.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the configured pool width; 0 means GOMAXPROCS.
var workers atomic.Int64

// SetWorkers sets the default worker-pool width used by Map.
// n == 0 restores the default (GOMAXPROCS); n == 1 forces serial
// execution; negative values are treated as 0.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers reports the effective worker-pool width.
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n), fanning the calls out over the
// configured worker pool. Callers collect results by writing into
// index i of a pre-sized slice, so output order is independent of
// scheduling and identical to a serial loop.
//
// With one worker (or n <= 1) the calls run serially on the calling
// goroutine in index order — the legacy behaviour, bit-compatible
// with the pre-runner code path.
//
// If any fn panics, Map re-raises the lowest-index panic on the
// calling goroutine after all workers have stopped draining.
func Map(n int, fn func(i int)) {
	MapN(Workers(), n, fn)
}

// MapN is Map with an explicit pool width, for call sites that must
// override the process default (tests, determinism checks).
func MapN(w, n int, fn func(i int)) {
	if w <= 0 {
		w = Workers()
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicIdx = -1
		panicVal any
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicIdx < 0 || i < panicIdx {
								panicIdx, panicVal = i, r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicIdx >= 0 {
		panic(fmt.Sprintf("runner: task %d panicked: %v", panicIdx, panicVal))
	}
}
