package runner

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8, 17} {
		const n = 100
		counts := make([]atomic.Int32, n)
		MapN(w, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("w=%d: index %d ran %d times, want 1", w, i, got)
			}
		}
	}
}

func TestMapSerialPreservesIndexOrder(t *testing.T) {
	var order []int
	MapN(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order = %v, want ascending", order)
		}
	}
}

func TestMapZeroAndNegativeN(t *testing.T) {
	ran := false
	MapN(4, 0, func(int) { ran = true })
	if ran {
		t.Fatal("Map ran a task for n=0")
	}
}

func TestMapActuallyRunsConcurrently(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		// A single-P host can still interleave via the rendezvous
		// below; the test only needs goroutine concurrency, not
		// hardware parallelism.
	}
	const w = 2
	var entered sync.WaitGroup
	entered.Add(w)
	MapN(w, w, func(i int) {
		entered.Done()
		entered.Wait() // deadlocks unless both tasks are in flight at once
	})
}

func TestMapPanicPropagatesLowestIndex(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected Map to re-raise the task panic")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, "task 3 panicked") || !strings.Contains(msg, "boom") {
			t.Fatalf("panic = %q, want task 3 / boom", msg)
		}
	}()
	MapN(4, 16, func(i int) {
		if i >= 3 {
			panic("boom")
		}
	})
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(0)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS", got)
	}
	SetWorkers(-5)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d after SetWorkers(-5), want GOMAXPROCS", got)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	var c Cache[int]
	var calls atomic.Int32
	const n = 64
	results := make([]int, n)
	MapN(8, n, func(i int) {
		results[i] = c.Do("k", func() int {
			calls.Add(1)
			return 42
		})
	})
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times for one key, want 1", got)
	}
	for i, r := range results {
		if r != 42 {
			t.Fatalf("result[%d] = %d, want 42", i, r)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != n-1 {
		t.Fatalf("stats = %d hits / %d misses, want %d / 1", hits, misses, n-1)
	}
}

func TestCacheDistinctKeys(t *testing.T) {
	var c Cache[string]
	a := c.Do("a", func() string { return "va" })
	b := c.Do("b", func() string { return "vb" })
	if a != "va" || b != "vb" {
		t.Fatalf("got %q/%q", a, b)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if rate := c.HitRate(); rate != 0 {
		t.Fatalf("HitRate = %v with no hits", rate)
	}
	c.Do("a", func() string { t.Fatal("recomputed cached key"); return "" })
	if rate := c.HitRate(); rate <= 0 {
		t.Fatalf("HitRate = %v after a hit", rate)
	}
}

func TestCacheReset(t *testing.T) {
	var c Cache[int]
	c.Do("k", func() int { return 1 })
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Reset", c.Len())
	}
	recomputed := false
	c.Do("k", func() int { recomputed = true; return 2 })
	if !recomputed {
		t.Fatal("Reset did not drop the entry")
	}
	if h, m := c.Stats(); h != 0 || m != 1 {
		t.Fatalf("stats after reset = %d/%d, want 0/1", h, m)
	}
}

func TestCacheLimitEvictsOldestFirst(t *testing.T) {
	var c Cache[string]
	c.SetLimit(2)
	c.SetSizer(func(v string) uint64 { return uint64(len(v)) })
	keys := []string{"a", "b", "c", "d"}
	for _, k := range keys {
		k := k
		c.Do(k, func() string { return k + k })
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := c.Evictions(); got != 2 {
		t.Errorf("Evictions = %d, want 2", got)
	}
	if got := c.Bytes(); got != 4 {
		t.Errorf("Bytes = %d, want 4 (two 2-byte survivors)", got)
	}
	// The newest keys survive; the oldest were evicted and recompute.
	calls := 0
	for _, k := range []string{"c", "d"} {
		c.Do(k, func() string { calls++; return "" })
	}
	if calls != 0 {
		t.Errorf("surviving keys recomputed %d times", calls)
	}
	c.Do("a", func() string { calls++; return "aa" })
	if calls != 1 {
		t.Errorf("evicted key did not recompute (calls=%d)", calls)
	}
}

func TestCacheShrinkLimitEvictsImmediately(t *testing.T) {
	var c Cache[int]
	for i := 0; i < 5; i++ {
		c.Do(strings.Repeat("k", i+1), func() int { return i })
	}
	c.SetLimit(1)
	if got := c.Len(); got != 1 {
		t.Fatalf("Len after shrink = %d, want 1", got)
	}
	// The survivor is the newest insertion.
	calls := 0
	c.Do(strings.Repeat("k", 5), func() int { calls++; return 0 })
	if calls != 0 {
		t.Errorf("newest entry was evicted")
	}
}

func TestCacheBytesFollowEviction(t *testing.T) {
	var c Cache[[]byte]
	c.SetSizer(func(v []byte) uint64 { return uint64(len(v)) })
	c.Do("big", func() []byte { return make([]byte, 1000) })
	c.Do("small", func() []byte { return make([]byte, 10) })
	if got := c.Bytes(); got != 1010 {
		t.Fatalf("Bytes = %d, want 1010", got)
	}
	c.SetLimit(1) // evicts "big"
	if got := c.Bytes(); got != 10 {
		t.Errorf("Bytes after eviction = %d, want 10", got)
	}
	c.Reset()
	if got := c.Bytes(); got != 0 {
		t.Errorf("Bytes after reset = %d, want 0", got)
	}
	if got := c.Len(); got != 0 {
		t.Errorf("Len after reset = %d, want 0", got)
	}
}

func TestCacheZeroLimitUnbounded(t *testing.T) {
	var c Cache[int]
	for i := 0; i < 100; i++ {
		c.Do(strings.Repeat("x", i+1), func() int { return i })
	}
	if got := c.Len(); got != 100 {
		t.Errorf("unbounded cache evicted: Len = %d, want 100", got)
	}
	if got := c.Evictions(); got != 0 {
		t.Errorf("Evictions = %d, want 0", got)
	}
}
