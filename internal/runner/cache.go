package runner

import (
	"sync"
	"sync/atomic"
)

// Cache memoizes deterministic computations by content key, with
// single-flight semantics: when several workers ask for the same key
// concurrently, exactly one computes and the rest block on the result.
// Values must be treated as immutable by all callers — the same value
// is handed to every hit.
//
// The zero value is ready to use.
type Cache[V any] struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry[V]
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
}

// Do returns the cached value for key, computing it with fn on the
// first request. Concurrent requests for an in-flight key wait for
// the single computation and count as hits.
func (c *Cache[V]) Do(key string, fn func() V) V {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		if c.entries == nil {
			c.entries = make(map[string]*cacheEntry[V])
		}
		e = new(cacheEntry[V])
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.val = fn() })
	return e.val
}

// Stats reports cache hits and misses since construction or the last
// Reset.
func (c *Cache[V]) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// HitRate reports hits / (hits + misses), or 0 before any lookup.
func (c *Cache[V]) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len reports the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops every entry and zeroes the statistics.
func (c *Cache[V]) Reset() {
	c.mu.Lock()
	c.entries = nil
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}
