package runner

import (
	"sync"
	"sync/atomic"
)

// Cache memoizes deterministic computations by content key, with
// single-flight semantics: when several workers ask for the same key
// concurrently, exactly one computes and the rest block on the result.
// Values must be treated as immutable by all callers — the same value
// is handed to every hit.
//
// The cache can account its footprint (SetSizer) and bound its entry
// count (SetLimit); past the limit the oldest completed entries are
// evicted, so a long sweep over many configurations runs in bounded
// memory at the cost of recomputing whatever it revisits.
//
// A second, durable level can be attached with SetBacking: on a map
// miss the cache consults the backing before computing, and writes
// every freshly computed value through. Eviction only ever drops the
// in-memory copy — an evicted key reloads from the backing instead of
// recomputing — so SetLimit/Bytes/Evictions remain the sole bounded-
// memory mechanism while the backing provides persistence.
//
// The zero value is ready to use.
type Cache[V any] struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry[V]
	// order holds keys oldest-first for FIFO eviction.
	order []string
	limit int
	sizer func(V) uint64
	bytes uint64
	load  func(key string) (V, bool)
	save  func(key string, v V)

	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
	computes    atomic.Uint64
	backingHits atomic.Uint64
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	// bytes and done are written once by the computing goroutine
	// under the cache mutex; done gates eviction so an in-flight
	// entry is never dropped from under its waiters' accounting.
	bytes uint64
	done  bool
}

// SetLimit caps the number of cached entries; 0 (the default) means
// unlimited. Shrinking the limit below the current population evicts
// immediately.
func (c *Cache[V]) SetLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	c.evictLocked()
}

// SetSizer installs a value-size estimator for byte accounting. Only
// entries computed after the call are measured, so install it before
// populating the cache.
func (c *Cache[V]) SetSizer(f func(V) uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sizer = f
}

// SetBacking attaches (or, with nil funcs, detaches) a second-level
// load/save pair — typically a disk store. load is consulted on every
// map miss before fn runs; save receives every value fn computes.
// Both run outside the cache lock and must be safe for concurrent
// use; single-flight already guarantees at most one load or save per
// key is in flight at a time.
func (c *Cache[V]) SetBacking(load func(key string) (V, bool), save func(key string, v V)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.load, c.save = load, save
}

// Do returns the cached value for key, computing it with fn on the
// first request. Concurrent requests for an in-flight key wait for
// the single computation and count as hits. A re-request for an
// evicted key recomputes (and counts as a miss) — unless a backing is
// attached and still holds it, in which case it reloads.
func (c *Cache[V]) Do(key string, fn func() V) V {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		if c.entries == nil {
			c.entries = make(map[string]*cacheEntry[V])
		}
		e = new(cacheEntry[V])
		c.entries[key] = e
		c.order = append(c.order, key)
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		c.mu.Lock()
		load, save := c.load, c.save
		c.mu.Unlock()
		loaded := false
		if load != nil {
			if v, ok := load(key); ok {
				e.val = v
				loaded = true
				c.backingHits.Add(1)
			}
		}
		if !loaded {
			e.val = fn()
			c.computes.Add(1)
			if save != nil {
				save(key, e.val)
			}
		}
		c.mu.Lock()
		if c.sizer != nil {
			e.bytes = c.sizer(e.val)
		}
		e.done = true
		c.bytes += e.bytes
		c.evictLocked()
		c.mu.Unlock()
	})
	return e.val
}

// evictLocked drops the oldest completed entries until the population
// fits the limit. In-flight entries are skipped: their waiters hold
// the entry pointer and their accounting lands when they complete.
func (c *Cache[V]) evictLocked() {
	if c.limit <= 0 || len(c.entries) <= c.limit {
		return
	}
	kept := c.order[:0]
	for i, key := range c.order {
		e, live := c.entries[key]
		if !live {
			continue // stale key from an earlier eviction pass
		}
		if len(c.entries) > c.limit && e.done {
			delete(c.entries, key)
			c.bytes -= e.bytes
			c.evictions.Add(1)
			continue
		}
		kept = append(kept, key)
		if len(c.entries) <= c.limit {
			kept = append(kept, c.order[i+1:]...)
			break
		}
	}
	c.order = kept
}

// Stats reports cache hits and misses since construction or the last
// Reset.
func (c *Cache[V]) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// HitRate reports hits / (hits + misses), or 0 before any lookup.
func (c *Cache[V]) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len reports the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes reports the sizer-estimated footprint of the completed cached
// entries; 0 when no sizer is installed.
func (c *Cache[V]) Bytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Evictions reports how many entries the limit has pushed out.
func (c *Cache[V]) Evictions() uint64 { return c.evictions.Load() }

// Computes reports how many times Do actually ran its compute
// function; misses satisfied by the backing do not count. When no
// backing is attached, Computes equals the miss count.
func (c *Cache[V]) Computes() uint64 { return c.computes.Load() }

// BackingHits reports how many map misses the attached backing
// satisfied without recomputation.
func (c *Cache[V]) BackingHits() uint64 { return c.backingHits.Load() }

// Reset drops every entry and zeroes the statistics (the limit,
// sizer, and backing persist).
func (c *Cache[V]) Reset() {
	c.mu.Lock()
	c.entries = nil
	c.order = nil
	c.bytes = 0
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.computes.Store(0)
	c.backingHits.Store(0)
}
