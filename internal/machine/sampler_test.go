package machine

import (
	"strings"
	"testing"

	"fdt/internal/sim"
)

func TestSamplerCollectsSamples(t *testing.T) {
	m := MustNew(DefaultConfig())
	log := m.StartSampler(1000)
	m.Eng.Spawn("work", func(p *sim.Proc) {
		p.Advance(10500)
	})
	m.Eng.Run()
	if len(log.Samples) < 10 {
		t.Fatalf("got %d samples over 10500 cycles at interval 1000", len(log.Samples))
	}
	for i := 1; i < len(log.Samples); i++ {
		if log.Samples[i].Time <= log.Samples[i-1].Time {
			t.Fatal("sample times not increasing")
		}
	}
}

func TestSamplerStopsWhenWorkEnds(t *testing.T) {
	m := MustNew(DefaultConfig())
	log := m.StartSampler(100)
	m.Eng.Spawn("work", func(p *sim.Proc) { p.Advance(250) })
	m.Eng.Run() // must terminate (sampler exits once alone)
	if len(log.Samples) == 0 {
		t.Fatal("no samples")
	}
	last := log.Samples[len(log.Samples)-1].Time
	if last > 1000 {
		t.Errorf("sampler ran to %d cycles after 250-cycle workload", last)
	}
}

func TestSamplerDefaultInterval(t *testing.T) {
	m := MustNew(DefaultConfig())
	log := m.StartSampler(0)
	if log.Interval == 0 {
		t.Fatal("zero interval not defaulted")
	}
	m.Eng.Spawn("work", func(p *sim.Proc) { p.Advance(1) })
	m.Eng.Run()
}

func TestActiveCores(t *testing.T) {
	m := MustNew(DefaultConfig())
	if m.ActiveCores() != 0 {
		t.Fatal("fresh machine has active cores")
	}
	m.OccupyContext(0, 0)
	m.OccupyContext(5, 0)
	if m.ActiveCores() != 2 {
		t.Errorf("ActiveCores = %d, want 2", m.ActiveCores())
	}
	m.ReleaseContext(0, 1)
	m.ReleaseContext(5, 1)
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1}, 3, 1)
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline %q has wrong width", s)
	}
	runes := []rune(s)
	if runes[0] >= runes[2] {
		t.Errorf("sparkline not increasing: %q", s)
	}
	if Sparkline(nil, 10, 1) != "" {
		t.Error("empty input should render empty")
	}
	// Clamp: values above max must not panic.
	_ = Sparkline([]float64{5}, 1, 1)
}

func TestSampleLogString(t *testing.T) {
	l := &SampleLog{Interval: 10, Cores: 4, Samples: []Sample{
		{Time: 10, BusUtil: 0.5, ActiveCores: 2},
		{Time: 20, BusUtil: 1.0, ActiveCores: 4},
	}}
	s := l.String()
	if !strings.Contains(s, "bus util") || !strings.Contains(s, "act.cores") {
		t.Errorf("render incomplete: %q", s)
	}
	empty := &SampleLog{}
	if empty.String() != "(no samples)" {
		t.Error("empty log renders wrong")
	}
}
