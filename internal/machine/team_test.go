package machine

import (
	"testing"
)

func TestDefaultTeamIdentity(t *testing.T) {
	m := MustNew(DefaultConfig().WithCores(8))
	dt := m.DefaultTeam()
	if dt2 := m.DefaultTeam(); dt2 != dt {
		t.Error("DefaultTeam not idempotent")
	}
	if dt.Size() != m.Contexts() {
		t.Errorf("default team size %d, want %d", dt.Size(), m.Contexts())
	}
	// Legacy placement order and unprefixed names: a default-team run
	// is indistinguishable from the pre-team machine.
	for i, c := range dt.Contexts() {
		if c != i {
			t.Fatalf("default team ctx[%d] = %d, want identity order", i, c)
		}
	}
	if got := dt.ProcName("master"); got != "master" {
		t.Errorf("default team ProcName = %q, want unprefixed", got)
	}
	if m.TeamOf(0) != dt {
		t.Error("TeamOf(0) is not the default team")
	}
}

func TestDefaultTeamPanicsOnPartitionedMachine(t *testing.T) {
	m := MustNew(DefaultConfig().WithCores(8))
	if _, err := m.SplitTeams(MapPacked, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("DefaultTeam on a partitioned machine: want panic")
		}
	}()
	m.DefaultTeam()
}

func TestSplitTeams(t *testing.T) {
	m := MustNew(DefaultConfig().WithCores(8))
	teams, err := m.SplitTeams(MapScattered, []string{"t0:a", "t1:b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(teams) != 2 || teams[0].ID != 0 || teams[1].ID != 1 {
		t.Fatalf("teams %v", teams)
	}
	if teams[0].Name != "t0:a" || teams[0].ProcName("master") != "t0:a:master" {
		t.Errorf("team 0 name %q, proc %q", teams[0].Name, teams[0].ProcName("master"))
	}
	for _, c := range teams[1].Contexts() {
		if m.TeamOf(c) != teams[1] {
			t.Errorf("context %d not owned by team 1", c)
		}
	}
	if got := len(m.Teams()); got != 2 {
		t.Errorf("Teams() = %d entries, want 2", got)
	}
	// The machine is partitioned now: a second split must refuse.
	if _, err := m.SplitTeams(MapPacked, []string{"x"}); err == nil {
		t.Error("second SplitTeams: want error")
	}
}

func TestNewTeamValidation(t *testing.T) {
	m := MustNew(DefaultConfig().WithCores(8))
	if _, err := m.NewTeam("empty", nil); err == nil {
		t.Error("empty context list: want error")
	}
	if _, err := m.NewTeam("oob", []int{0, 99}); err == nil {
		t.Error("out-of-range context: want error")
	}
	m.OccupyContext(1, 0)
	if _, err := m.NewTeam("busy", []int{1}); err == nil {
		t.Error("occupied context: want error")
	}
	m.ReleaseContext(1, 10)
	if _, err := m.NewTeam("a", []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewTeam("b", []int{0}); err == nil {
		t.Error("double-owned context: want error")
	}
}

func TestTeamChargesAndNilSafety(t *testing.T) {
	var nilTeam *Team
	nilTeam.ChargeCS(5)
	nilTeam.ChargeCSWait(5)
	nilTeam.ChargeCSEntry()
	nilTeam.ChargeBarrierWait(5)

	m := MustNew(DefaultConfig().WithCores(8))
	team, err := m.NewTeam("a", []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	team.ChargeCS(7)
	team.ChargeCSWait(3)
	team.ChargeCSEntry()
	team.ChargeBarrierWait(11)
	for name, want := range map[string]uint64{
		CtrTeamCSCycles:          7,
		CtrTeamCSWaitCycles:      3,
		CtrTeamCSEntries:         1,
		CtrTeamBarrierWaitCycles: 11,
	} {
		if got := team.Ctrs.Counter(name).Read(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if team.MemAttr() == nil || team.MemAttr().BusBusy == nil {
		t.Error("MemAttr missing bus counters")
	}
}

func TestTeamContextActiveAccumulates(t *testing.T) {
	m := MustNew(DefaultConfig().WithCores(8))
	team, err := m.NewTeam("a", []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	m.OccupyContext(0, 100)
	m.ReleaseContext(0, 250)
	m.OccupyContext(1, 300)
	m.ReleaseContext(1, 350)
	if got := team.ContextActiveCycles(); got != 200 {
		t.Errorf("ContextActiveCycles = %d, want 200", got)
	}
}

func TestCheckpointRestoresTeams(t *testing.T) {
	cfg := DefaultConfig().WithCores(8)
	m := MustNew(cfg)
	teams, err := m.SplitTeams(MapPacked, []string{"t0:a", "t1:b"})
	if err != nil {
		t.Fatal(err)
	}
	teams[0].ChargeCS(42)
	m.OccupyContext(teams[1].Ctx(0), 10)
	m.ReleaseContext(teams[1].Ctx(0), 60)

	cp := m.Checkpoint()
	if len(cp.Teams) != 2 {
		t.Fatalf("%d team checkpoints, want 2", len(cp.Teams))
	}

	// Restore into a fresh machine of the same config.
	m2 := MustNew(cfg)
	m2.RestoreCheckpoint(cp)
	got := m2.Teams()
	if len(got) != 2 {
		t.Fatalf("restored %d teams, want 2", len(got))
	}
	if got[0].Name != "t0:a" || got[1].Name != "t1:b" {
		t.Errorf("restored names %q, %q", got[0].Name, got[1].Name)
	}
	wantEq(t, "restored team 0 ctxs", got[0].Contexts(), teams[0].Contexts())
	if cs := got[0].Ctrs.Counter(CtrTeamCSCycles).Read(); cs != 42 {
		t.Errorf("restored team 0 cs cycles = %d, want 42", cs)
	}
	if a := got[1].ContextActiveCycles(); a != 50 {
		t.Errorf("restored team 1 ctxActive = %d, want 50", a)
	}
	if m2.TeamOf(got[1].Ctx(0)) != got[1] {
		t.Error("restored context ownership wrong")
	}
}

// TestCheckpointRestoreClearsStaleTeams restores a teamless checkpoint
// over a partitioned machine: the partition must disappear.
func TestCheckpointRestoreClearsStaleTeams(t *testing.T) {
	cfg := DefaultConfig().WithCores(8)
	clean := MustNew(cfg).Checkpoint()
	m := MustNew(cfg)
	if _, err := m.SplitTeams(MapPacked, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	m.RestoreCheckpoint(clean)
	if len(m.Teams()) != 0 {
		t.Errorf("%d teams after restoring a teamless checkpoint", len(m.Teams()))
	}
	if m.TeamOf(0) != nil {
		t.Error("context 0 still owned after restore")
	}
}
