package machine

import (
	"strings"
	"testing"
)

func TestParseMapping(t *testing.T) {
	cases := []struct {
		in   string
		want Mapping
	}{
		{"", MapPacked},
		{"packed", MapPacked},
		{"scattered", MapScattered},
		{"smt", MapSMT},
		{"smt-aware", MapSMT},
	}
	for _, tc := range cases {
		got, err := ParseMapping(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMapping(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseMapping("nosuch"); err == nil {
		t.Error("ParseMapping(nosuch): want error")
	}
}

func TestMappingStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, mp := range Mappings() {
		s, d := mp.String(), mp.Describe()
		if s == "" || strings.Contains(s, "Mapping(") {
			t.Errorf("%d: bad String %q", int(mp), s)
		}
		if d == "" || d == "unknown mapping" {
			t.Errorf("%s: bad Describe %q", s, d)
		}
		if seen[s] {
			t.Errorf("duplicate mapping name %q", s)
		}
		seen[s] = true
		// Every listed mapping round-trips through the CLI spelling.
		rt, err := ParseMapping(s)
		if err != nil || rt != mp {
			t.Errorf("ParseMapping(%s.String()) = %v, %v", s, rt, err)
		}
	}
	if s := Mapping(99).String(); s != "Mapping(99)" {
		t.Errorf("unknown mapping String = %q", s)
	}
}

func TestPartitionPacked(t *testing.T) {
	m := MustNew(DefaultConfig().WithCores(8))
	got0, err0 := m.Partition(MapPacked, 0, 2)
	got1, err1 := m.Partition(MapPacked, 1, 2)
	if err0 != nil || err1 != nil {
		t.Fatal(err0, err1)
	}
	wantEq(t, "packed team 0", got0, []int{0, 1, 2, 3})
	wantEq(t, "packed team 1", got1, []int{4, 5, 6, 7})
}

func TestPartitionScattered(t *testing.T) {
	m := MustNew(DefaultConfig().WithCores(8))
	got0, _ := m.Partition(MapScattered, 0, 2)
	got1, _ := m.Partition(MapScattered, 1, 2)
	wantEq(t, "scattered team 0", got0, []int{0, 2, 4, 6})
	wantEq(t, "scattered team 1", got1, []int{1, 3, 5, 7})
}

func TestPartitionSMT(t *testing.T) {
	m := MustNew(DefaultConfig().WithCores(8).WithSMT(2))
	got0, err0 := m.Partition(MapSMT, 0, 2)
	got1, err1 := m.Partition(MapSMT, 1, 2)
	if err0 != nil || err1 != nil {
		t.Fatal(err0, err1)
	}
	// Plane-major context ids: plane p of core c is p*cores + c, so
	// each team sees every core on its own SMT plane.
	wantEq(t, "smt team 0", got0, []int{0, 1, 2, 3, 4, 5, 6, 7})
	wantEq(t, "smt team 1", got1, []int{8, 9, 10, 11, 12, 13, 14, 15})
}

// TestPartitionCovers checks the partition property on uneven splits:
// every context owned exactly once.
func TestPartitionCovers(t *testing.T) {
	m := MustNew(DefaultConfig().WithCores(8))
	for _, mp := range []Mapping{MapPacked, MapScattered} {
		for _, n := range []int{1, 2, 3, 5, 8} {
			owned := map[int]int{}
			for team := 0; team < n; team++ {
				ctxs, err := m.Partition(mp, team, n)
				if err != nil {
					t.Fatalf("%s %d of %d: %v", mp, team, n, err)
				}
				for _, c := range ctxs {
					owned[c]++
				}
			}
			for c := 0; c < m.Contexts(); c++ {
				if owned[c] != 1 {
					t.Errorf("%s split %d: context %d owned %d times", mp, n, c, owned[c])
				}
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	m := MustNew(DefaultConfig().WithCores(8))
	cases := []struct {
		mp   Mapping
		t, n int
	}{
		{MapPacked, 0, 0},  // no teams
		{MapPacked, -1, 2}, // negative slot
		{MapPacked, 2, 2},  // slot out of range
		{MapPacked, 0, 9},  // 9 teams on 8 cores: someone gets nothing
		{MapSMT, 0, 2},     // 2 teams on 1 SMT plane
		{Mapping(99), 0, 1},
	}
	for _, tc := range cases {
		if _, err := m.Partition(tc.mp, tc.t, tc.n); err == nil {
			t.Errorf("Partition(%v, %d, %d): want error", tc.mp, tc.t, tc.n)
		}
	}
}

func wantEq(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s = %v, want %v", label, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s = %v, want %v", label, got, want)
		}
	}
}
