package machine

import (
	"fmt"
	"strconv"
	"strings"

	"fdt/internal/power"
)

// This file gives the machine a discrete per-core P-state ladder
// (DVFS). Each state pairs a core frequency with a power-table row;
// state 0 is the nominal (highest) frequency, and a core in state s
// retires compute at MHz_s / MHz_0 of nominal speed while the memory
// system — bus, DRAM, caches — stays wall-clock-anchored. Lowering a
// core's frequency therefore shifts the compute/bus balance: a
// kernel's single-thread bus utilization BU_1 = BusBusy / T_1 drops
// as T_1 dilates, which widens Eq. 5's bandwidth-bound thread count.
// An empty ladder (the default) is the single-frequency machine of
// PR 9, bit-identical.

// FreqState is one rung of the P-state ladder.
type FreqState struct {
	// Name labels the state in reports and decisions ("perf", "eco");
	// ParseLadder derives "f<MHz>" names.
	Name string
	// MHz is the core clock in this state. States are ordered by
	// strictly descending MHz; state 0 is nominal.
	MHz int
	// Active and Idle are the state's power-table row, in
	// nominal-active-core units (see power.Row).
	Active float64
	Idle   float64
}

// FreqConfig is a machine's P-state ladder. The zero value (no
// states) is the trivial single-frequency machine.
type FreqConfig struct {
	States []FreqState
}

// Trivial reports whether the ladder is absent: the machine runs at
// one implicit nominal frequency with the legacy flat power meter,
// and run-cache keys carry no frequency fragment.
func (fc FreqConfig) Trivial() bool { return len(fc.States) == 0 }

// Validate checks ladder sanity: strictly descending positive MHz,
// unique non-empty names, and a valid power-table row per state.
func (fc FreqConfig) Validate() error {
	if fc.Trivial() {
		return nil
	}
	if err := fc.Table().Validate(); err != nil {
		return err
	}
	seen := map[string]bool{}
	for i, s := range fc.States {
		if s.MHz <= 0 {
			return fmt.Errorf("machine: freq state %d (%q): MHz = %d, want > 0", i, s.Name, s.MHz)
		}
		if i > 0 && s.MHz >= fc.States[i-1].MHz {
			return fmt.Errorf("machine: freq ladder not strictly descending at state %d (%d MHz after %d MHz)",
				i, s.MHz, fc.States[i-1].MHz)
		}
		if s.Name == "" {
			return fmt.Errorf("machine: freq state %d has no name", i)
		}
		if seen[s.Name] {
			return fmt.Errorf("machine: duplicate freq state name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// Table projects the ladder's power rows as a power.Table.
func (fc FreqConfig) Table() power.Table {
	rows := make([]power.Row, len(fc.States))
	for i, s := range fc.States {
		rows[i] = power.Row{Name: s.Name, Active: s.Active, Idle: s.Idle}
	}
	return power.Table{Rows: rows}
}

// Key fingerprints the ladder for run-cache content addressing.
// Only called on non-trivial ladders — a trivial ladder contributes
// nothing to the key, mirroring the exact-mode rule for Mode.key.
func (fc FreqConfig) Key() string {
	parts := make([]string, len(fc.States))
	for i, s := range fc.States {
		parts[i] = fmt.Sprintf("%s:%d:%g:%g", s.Name, s.MHz, s.Active, s.Idle)
	}
	return strings.Join(parts, ",")
}

// defaultLadderMHz are the rungs DefaultLadder and the CLIs'
// -power-budget default use.
var defaultLadderMHz = []int{2000, 1600, 1200, 800}

// DefaultLadder returns a four-state ladder from 2000 MHz down to
// 800 MHz with a cubic active-power law (P ∝ f³, the classic DVFS
// approximation with voltage scaled alongside frequency) and a linear
// idle (leakage) law floored well below active power.
func DefaultLadder() FreqConfig {
	fc, err := LadderFromMHz(defaultLadderMHz)
	if err != nil {
		panic(err)
	}
	return fc
}

// LadderFromMHz builds a ladder from a strictly descending MHz list,
// deriving names ("f2000") and the power table: Active = (f/f0)³
// (cubic DVFS law, nominal = 1) and Idle = 0.1·(f/f0).
func LadderFromMHz(mhz []int) (FreqConfig, error) {
	if len(mhz) == 0 {
		return FreqConfig{}, nil
	}
	f0 := float64(mhz[0])
	fc := FreqConfig{States: make([]FreqState, len(mhz))}
	for i, f := range mhz {
		rel := float64(f) / f0
		fc.States[i] = FreqState{
			Name:   fmt.Sprintf("f%d", f),
			MHz:    f,
			Active: rel * rel * rel,
			Idle:   0.1 * rel,
		}
	}
	if err := fc.Validate(); err != nil {
		return FreqConfig{}, err
	}
	return fc, nil
}

// ParseLadder parses a comma-separated MHz list ("2000,1600,800")
// into a ladder via LadderFromMHz. An empty string is the trivial
// ladder; the literal "default" is DefaultLadder.
func ParseLadder(s string) (FreqConfig, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return FreqConfig{}, nil
	}
	if s == "default" {
		return DefaultLadder(), nil
	}
	var mhz []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return FreqConfig{}, fmt.Errorf("machine: bad ladder entry %q: want an integer MHz value", tok)
		}
		mhz = append(mhz, v)
	}
	return LadderFromMHz(mhz)
}

// ResolveDVFS resolves the CLI/daemon (-power-budget, -freq-ladder)
// pair: the budget must be non-negative, the ladder must parse, and a
// positive budget with no explicit ladder implies DefaultLadder (a
// budget without P-states could only shed threads — the search the
// flag exists to widen). Both zero values return the trivial ladder:
// the single-frequency machine, bit-identical to the pre-DVFS paths.
func ResolveDVFS(budget float64, ladder string) (FreqConfig, error) {
	if budget < 0 {
		return FreqConfig{}, fmt.Errorf("machine: power budget %g, want >= 0 (0 = unconstrained)", budget)
	}
	fc, err := ParseLadder(ladder)
	if err != nil {
		return FreqConfig{}, err
	}
	if budget > 0 && fc.Trivial() {
		fc = DefaultLadder()
	}
	return fc, nil
}

// WithFreq returns a copy of the config with the P-state ladder
// replaced.
func (c Config) WithFreq(fc FreqConfig) Config {
	c.Freq = fc
	return c
}

// FreqStates exposes the machine's ladder (nil when trivial).
func (m *Machine) FreqStates() []FreqState { return m.Cfg.Freq.States }

// CoreFreq reports a core's current P-state index (0 on trivial
// ladders).
func (m *Machine) CoreFreq(core int) int {
	if m.coreFreq == nil {
		return 0
	}
	return m.coreFreq[core]
}

// FreqScale reports a core's current cycle-time multiplier as the
// exact rational nominalMHz / currentMHz: compute that takes d cycles
// at nominal takes d·num/den wall cycles in the core's current state.
func (m *Machine) FreqScale(core int) (num, den uint64) {
	s := m.CoreFreq(core)
	if s == 0 {
		return 1, 1
	}
	return uint64(m.Cfg.Freq.States[0].MHz), uint64(m.Cfg.Freq.States[s].MHz)
}

// SetCoreFreq moves one core to P-state s at cycle now. If the core
// is mid-activity its open power interval is flushed first, so active
// residency never spans a state transition. No-op on trivial ladders
// (s must be 0) and on transitions to the current state.
func (m *Machine) SetCoreFreq(core, s int, now uint64) {
	if m.coreFreq == nil {
		if s != 0 {
			panic(fmt.Sprintf("machine: SetCoreFreq(%d) on a trivial ladder", s))
		}
		return
	}
	if s < 0 || s >= len(m.Cfg.Freq.States) {
		panic(fmt.Sprintf("machine: freq state %d out of range [0,%d)", s, len(m.Cfg.Freq.States)))
	}
	if s == m.coreFreq[core] {
		return
	}
	if m.coreLoad[core] > 0 {
		m.Power.AddActive(core, m.coreSince[core], now)
		m.coreSince[core] = now
	}
	m.Power.SetState(core, s, now)
	m.coreFreq[core] = s
}

// SetFreq moves every core to P-state s at cycle now — the chip-wide
// DVFS action the FDT controller takes at decision points.
func (m *Machine) SetFreq(s int, now uint64) {
	for core := 0; core < m.Cores(); core++ {
		m.SetCoreFreq(core, s, now)
	}
}

// SetPowerBudget declares the run's power budget (in
// nominal-active-core units) to the invariant harness: the
// end-of-run "power-budget-compliance" rule verifies average chip
// power stayed within it (plus transition slack). Zero clears it.
func (m *Machine) SetPowerBudget(b float64) { m.powerBudget = b }
