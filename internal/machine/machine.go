// Package machine composes the simulated CMP: the event engine, the
// memory system, per-core CPUs, the power meter and the performance
// counters — the "simulated machine" of Table 1 that workloads run on
// and that the FDT runtime controls.
package machine

import (
	"fmt"

	"fdt/internal/counters"
	"fdt/internal/invariant"
	"fdt/internal/mem"
	"fdt/internal/power"
	"fdt/internal/sim"
	"fdt/internal/trace"
)

// Config describes a machine. Zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// Mem is the memory-system configuration (Table 1 by default).
	Mem mem.Config
	// IssueWidth is the per-core issue width (Table 1: 2-wide).
	IssueWidth int
	// ForkCost is the cycles a master thread spends entering a
	// parallel region (dispatching work to a pooled worker team).
	ForkCost uint64
	// SMTContexts is the number of hardware thread contexts per core.
	// The paper assumes 1 ("no SMT on individual cores") but argues
	// its conclusions carry over to SMT-enabled CMPs (Section 9);
	// setting 2 models such a machine: co-resident contexts share
	// their core's issue width and private caches, and a core is
	// active (for the power metric) while any of its contexts is.
	SMTContexts int
	// Freq is the per-core P-state ladder (see freq.go). The zero
	// value — no states — is the single-frequency machine of the
	// paper, bit-identical to pre-DVFS releases.
	Freq FreqConfig
}

// DefaultConfig returns the paper's 32-core machine.
func DefaultConfig() Config {
	return Config{
		Mem:         mem.DefaultConfig(),
		IssueWidth:  2,
		ForkCost:    100,
		SMTContexts: 1,
	}
}

// WithSMT returns a copy with the given contexts per core.
func (c Config) WithSMT(contexts int) Config {
	c.SMTContexts = contexts
	return c
}

// WithCores returns a copy with the core count replaced.
func (c Config) WithCores(n int) Config {
	c.Mem.Cores = n
	return c
}

// WithBandwidth returns a copy with off-chip bandwidth scaled by
// factor (Fig 13's machines).
func (c Config) WithBandwidth(factor float64) Config {
	c.Mem = c.Mem.ScaleBandwidth(factor)
	return c
}

// Machine is one simulated CMP instance. A Machine simulates exactly
// one program execution; build a fresh Machine per run.
type Machine struct {
	Cfg   Config
	Eng   *sim.Engine
	Mem   *mem.System
	Ctrs  *counters.Set
	Power *power.Meter

	// Trace is the machine's tracer, nil (all emit sites no-op) until
	// AttachTracer installs one. Layers that hold a Machine — the
	// threading runtime, the FDT controller — emit through it.
	Trace *trace.Tracer

	// Check is the machine's invariant checker, nil (all check sites
	// no-op) until AttachChecker installs one. Layers that hold a
	// Machine — the threading runtime, the FDT controller — consult it.
	Check *invariant.Checker

	// ctxBusy tracks hardware-context occupancy; coreLoad counts the
	// occupied contexts per core; coreSince records when each core
	// last became active (for the power integral).
	ctxBusy   []bool
	coreLoad  []int
	coreSince []uint64
	// coreTracks caches per-core trace tracks for the threading
	// runtime's synchronization spans.
	coreTracks []trace.TrackID
	// ledgers/occupiedAt hold per-context cycle-conservation ledgers
	// for the invariant harness (nil when unchecked); each context's
	// ledger is checked against its occupancy window at release.
	ledgers    []invariant.Ledger
	occupiedAt []uint64
	// teams/ctxTeam hold the machine's tenant partition (see Team);
	// ctxSince records each context's occupancy start for per-team
	// active-cycle attribution (kept separately from occupiedAt, which
	// exists only on checked runs).
	teams    []*Team
	ctxTeam  []*Team
	ctxSince []uint64
	// faultTeamFoldSkew is a deliberate-fault knob for the mutation
	// tests: ReleaseContext under-folds this many busy cycles into the
	// owning team's ledger, which "team-conservation" must catch.
	faultTeamFoldSkew uint64
	// coreFreq tracks each core's current P-state (nil on trivial
	// ladders); powerBudget, when set, arms the end-of-run
	// budget-compliance invariant.
	coreFreq    []int
	powerBudget float64
}

// New builds a machine.
func New(cfg Config) (*Machine, error) {
	ctrs := counters.NewSet()
	ms, err := mem.NewSystem(cfg.Mem, ctrs)
	if err != nil {
		return nil, err
	}
	if cfg.IssueWidth <= 0 {
		return nil, fmt.Errorf("machine: IssueWidth = %d, want > 0", cfg.IssueWidth)
	}
	if cfg.SMTContexts < 1 || cfg.SMTContexts > 4 {
		return nil, fmt.Errorf("machine: SMTContexts = %d, want 1..4", cfg.SMTContexts)
	}
	if err := cfg.Freq.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		Cfg:       cfg,
		Eng:       sim.NewEngine(),
		Mem:       ms,
		Ctrs:      ctrs,
		Power:     power.NewMeter(cfg.Mem.Cores),
		ctxBusy:   make([]bool, cfg.Mem.Cores*cfg.SMTContexts),
		coreLoad:  make([]int, cfg.Mem.Cores),
		coreSince: make([]uint64, cfg.Mem.Cores),
		ctxTeam:   make([]*Team, cfg.Mem.Cores*cfg.SMTContexts),
		ctxSince:  make([]uint64, cfg.Mem.Cores*cfg.SMTContexts),
	}
	if !cfg.Freq.Trivial() {
		mt, err := power.NewMeterTable(cfg.Mem.Cores, cfg.Freq.Table())
		if err != nil {
			return nil, err
		}
		m.Power = mt
		m.coreFreq = make([]int, cfg.Mem.Cores)
	}
	return m, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// AttachTracer wires a tracer through every layer of the machine:
// the event engine (dispatch/blocked events), the memory system (bus,
// DRAM banks, L3) and the per-core tracks the threading runtime and
// controller emit onto. Call it after New and before the run starts;
// attaching nil is a no-op and the machine stays untraced. Tracing
// never perturbs the simulation — a traced run and an untraced run of
// the same configuration are cycle-identical.
func (m *Machine) AttachTracer(t *trace.Tracer) {
	if t == nil {
		return
	}
	m.Trace = t
	m.Eng.SetTracer(t)
	m.Mem.SetTracer(t)
	if t.Wants(trace.CatSync) {
		m.coreTracks = make([]trace.TrackID, m.Cores())
		for c := range m.coreTracks {
			m.coreTracks[c] = t.Track(fmt.Sprintf("core-%d", c))
		}
	}
}

// AttachChecker wires the invariant harness through the machine: the
// memory system's queue audits and coherence checks plus the
// per-context cycle-conservation ledgers. Call it after New and before
// the run starts; attaching nil (or a disabled checker) is a no-op.
// Like tracing, checking never perturbs the simulation — a checked run
// and an unchecked run of the same configuration are cycle-identical.
func (m *Machine) AttachChecker(ck *invariant.Checker) {
	if !ck.Enabled() {
		return
	}
	m.Check = ck
	m.Mem.SetChecker(ck)
	m.ledgers = make([]invariant.Ledger, len(m.ctxBusy))
	m.occupiedAt = make([]uint64, len(m.ctxBusy))
}

// ContextLedger reports the conservation ledger for a hardware
// context, or nil when the harness is disabled (a nil *Ledger is
// no-op-safe).
func (m *Machine) ContextLedger(ctx int) *invariant.Ledger {
	if m.ledgers == nil {
		return nil
	}
	return &m.ledgers[ctx]
}

// FinishCheck runs the machine's end-of-run invariants (the memory
// system's conservation, queueing and coherence checks, plus the
// per-team conservation and bus-partition rules when the machine has
// teams). Call it after the workload completes, at quiescence.
func (m *Machine) FinishCheck() {
	if m.Check.Enabled() {
		m.Mem.FinishCheck(m.Eng.Now())
		m.checkTeams()
		m.checkPower()
	}
}

// powerBudgetSlack is the relative slack "power-budget-compliance"
// allows over the declared budget: decision-point transitions and the
// single-threaded training prefix execute outside the steady budgeted
// regime, so end-of-run average power may overshoot marginally.
const powerBudgetSlack = 0.02

// checkPower verifies the end-of-run energy-accounting invariants of
// a tracked (P-state ladder) machine:
//
//   - "power-state-residency": per core, the per-state wall
//     residencies partition the run exactly — they sum to the sealed
//     window, and no state's active residency exceeds its wall
//     residency. A dropped P-state transition loses residency here.
//   - "power-energy-conservation": the meter's reported energy equals
//     an independent re-derivation of Σ state-residency × table power
//     from the raw residencies and the machine config's own ladder
//     rows. A skewed power table in the meter's accounting lands here.
//   - "power-budget-compliance": when a budget was declared
//     (SetPowerBudget), average chip power over the run stays within
//     budget × (1 + slack).
func (m *Machine) checkPower() {
	if !m.Power.Tracked() {
		return
	}
	now := m.Eng.Now()
	m.Power.Seal(now)
	active := m.Power.ActiveByState()
	wall := m.Power.WallByState()

	for c := 0; c < m.Cores(); c++ {
		var sum uint64
		for s := range wall[c] {
			sum += wall[c][s]
			m.Check.Pass(1)
			if active[c][s] > wall[c][s] {
				m.Check.Failf("power-state-residency", now,
					"core %d state %d: active residency %d exceeds wall residency %d",
					c, s, active[c][s], wall[c][s])
			}
		}
		m.Check.Pass(1)
		if sum != now {
			m.Check.Failf("power-state-residency", now,
				"core %d: state wall residencies sum to %d != run window %d (a P-state transition was dropped?)",
				c, sum, now)
		}
	}

	// Re-derive energy from the raw residencies and the config's
	// ladder — deliberately not via the meter's table, so an
	// accounting bug in the meter (skewed rows) cannot agree with
	// itself.
	var want float64
	for s, st := range m.Cfg.Freq.States {
		var act, wl uint64
		for c := 0; c < m.Cores(); c++ {
			act += active[c][s]
			wl += wall[c][s]
		}
		idle := uint64(0)
		if wl > act {
			idle = wl - act
		}
		want += float64(act)*st.Active + float64(idle)*st.Idle
	}
	got := m.Power.Energy(now)
	m.Check.Pass(1)
	if !closeRel(got.Total, want, 1e-9) {
		m.Check.Failf("power-energy-conservation", now,
			"reported energy %.6f != Σ state-residency × table power %.6f", got.Total, want)
	}

	if m.powerBudget > 0 {
		m.Check.Pass(1)
		if got.AvgPower > m.powerBudget*(1+powerBudgetSlack) {
			m.Check.Failf("power-budget-compliance", now,
				"average chip power %.4f exceeds budget %.4f (+%.0f%% slack)",
				got.AvgPower, m.powerBudget, 100*powerBudgetSlack)
		}
	}
}

// closeRel reports near-equality under relative tolerance (absolute
// near zero).
func closeRel(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > a {
		scale = b
	}
	if scale < 1 {
		return d <= tol
	}
	return d <= tol*scale
}

// FaultTeamFoldSkew arms a deliberate fault for the mutation tests:
// every context release under-folds d busy cycles into the owning
// team's conservation ledger.
func (m *Machine) FaultTeamFoldSkew(d uint64) { m.faultTeamFoldSkew = d }

// checkTeams verifies the per-team end-of-run invariants:
//
//   - "team-conservation": each team's folded busy+stall+sync+idle
//     ledger equals the sum of its contexts' occupancy windows — the
//     per-context conservation law survives aggregation by tenant
//     (only meaningful when the per-context ledgers are armed).
//   - "team-bus-partition": the per-team bus busy counters sum to the
//     machine-global bus busy counter — every transferred line is
//     attributed to exactly one tenant.
func (m *Machine) checkTeams() {
	if len(m.teams) == 0 {
		return
	}
	now := m.Eng.Now()
	var teamBus uint64
	for _, t := range m.teams {
		teamBus += t.attr.BusBusy.Read()
		if m.ledgers == nil {
			continue
		}
		m.Check.Pass(1)
		if t.led.Total() != t.windows {
			m.Check.Failf("team-conservation", now,
				"team %d (%q): folded busy %d + stall %d + sync %d + idle %d = %d != occupancy windows %d",
				t.ID, t.Name, t.led.Busy, t.led.Stall, t.led.Sync, t.led.Idle, t.led.Total(), t.windows)
		}
	}
	m.Check.Pass(1)
	if global := m.Ctrs.Counter(counters.BusBusyCycles).Read(); teamBus != global {
		m.Check.Failf("team-bus-partition", now,
			"per-team bus busy cycles sum to %d != machine bus busy counter %d", teamBus, global)
	}
}

// CoreTrack reports the trace track for a core's synchronization
// spans. Only meaningful while a tracer with trace.CatSync is
// attached (callers gate on m.Trace.Wants).
func (m *Machine) CoreTrack(core int) trace.TrackID { return m.coreTracks[core] }

// Cores reports the number of cores on the chip.
func (m *Machine) Cores() int { return m.Cfg.Mem.Cores }

// Contexts reports the number of hardware thread contexts — the
// maximum team size (equals Cores on the paper's no-SMT machine).
func (m *Machine) Contexts() int { return m.Cfg.Mem.Cores * m.Cfg.SMTContexts }

// CoreOf maps a hardware context to its core. Contexts are numbered
// so that a team of up to Cores threads spreads one per core before
// any core hosts a second context (the placement every OS uses).
func (m *Machine) CoreOf(ctx int) int { return ctx % m.Cfg.Mem.Cores }

// Alloc reserves simulated address space (see mem.System.Alloc).
func (m *Machine) Alloc(size int) uint64 { return m.Mem.Alloc(size) }

// OccupyContext marks a hardware context occupied by a thread at
// cycle now. A core becomes active — and starts accruing power — when
// its first context is occupied. Double occupancy is a runtime bug
// and panics. Returns the context's core.
func (m *Machine) OccupyContext(ctx int, now uint64) (core int) {
	if m.ctxBusy[ctx] {
		panic(fmt.Sprintf("machine: context %d already occupied", ctx))
	}
	m.ctxBusy[ctx] = true
	m.ctxSince[ctx] = now
	if m.ledgers != nil {
		m.ledgers[ctx] = invariant.Ledger{}
		m.occupiedAt[ctx] = now
	}
	core = m.CoreOf(ctx)
	if m.coreLoad[core] == 0 {
		m.coreSince[core] = now
	}
	m.coreLoad[core]++
	return core
}

// ReleaseContext marks a context free at cycle now; when the core's
// last context leaves, its active interval is charged to the power
// meter.
func (m *Machine) ReleaseContext(ctx int, now uint64) {
	if !m.ctxBusy[ctx] {
		panic(fmt.Sprintf("machine: releasing idle context %d", ctx))
	}
	m.ctxBusy[ctx] = false
	if m.ledgers != nil {
		m.ledgers[ctx].CheckConservation(m.Check, ctx, m.occupiedAt[ctx], now)
	}
	if t := m.ctxTeam[ctx]; t != nil {
		t.ctxActive += now - m.ctxSince[ctx]
		if m.ledgers != nil {
			led := m.ledgers[ctx]
			t.led.Busy += led.Busy - m.faultTeamFoldSkew
			t.led.Stall += led.Stall
			t.led.Sync += led.Sync
			t.led.Idle += led.Idle
			t.windows += now - m.occupiedAt[ctx]
		}
	}
	core := m.CoreOf(ctx)
	m.coreLoad[core]--
	if m.coreLoad[core] == 0 {
		m.Power.AddActive(core, m.coreSince[core], now)
	}
}

// CoreLoad reports how many contexts are active on a core — the
// divisor for shared issue width under SMT.
func (m *Machine) CoreLoad(core int) int { return m.coreLoad[core] }

// BusUtilization reports the fraction of the window during which the
// off-chip data bus carried data, given busy-cycle samples at the
// window's edges.
func BusUtilization(busyDelta, windowCycles uint64) float64 {
	if windowCycles == 0 {
		return 0
	}
	u := float64(busyDelta) / float64(windowCycles)
	if u > 1 {
		u = 1
	}
	return u
}
