package machine

import (
	"fmt"
	"strings"

	"fdt/internal/counters"
	"fdt/internal/sim"
)

// Sample is one periodic snapshot of machine-level gauges.
type Sample struct {
	// Time is the cycle the interval ended at.
	Time uint64
	// BusUtil is the data-bus utilization within the interval.
	BusUtil float64
	// ActiveCores is the number of occupied cores at sample time.
	ActiveCores int
}

// SampleLog collects periodic samples over a run — the raw material
// for utilization-over-time traces (fdtsim -trace).
type SampleLog struct {
	Interval uint64
	// Cores is the machine's core count (the active-core axis).
	Cores   int
	Samples []Sample
}

// StartSampler arms a sampling process that snapshots the machine
// every interval cycles until every other process has finished. Call
// it before the run starts; read the log after.
func (m *Machine) StartSampler(interval uint64) *SampleLog {
	if interval == 0 {
		interval = 10000
	}
	log := &SampleLog{Interval: interval, Cores: m.Cores()}
	busCtr := m.Ctrs.Counter(counters.BusBusyCycles)
	m.Eng.Spawn("sampler", func(p *sim.Proc) {
		prev := busCtr.Sample()
		for {
			p.Advance(interval)
			delta := busCtr.DeltaSince(prev)
			prev = busCtr.Sample()
			util := float64(delta) / float64(interval)
			if util > 1 {
				util = 1
			}
			log.Samples = append(log.Samples, Sample{
				Time:        p.Now(),
				BusUtil:     util,
				ActiveCores: m.ActiveCores(),
			})
			// Stop when the sampler is the only live process left —
			// the program is done.
			if m.Eng.Live() <= 1 {
				return
			}
		}
	})
	return log
}

// ActiveCores reports how many cores currently host at least one
// thread.
func (m *Machine) ActiveCores() int {
	n := 0
	for _, load := range m.coreLoad {
		if load > 0 {
			n++
		}
	}
	return n
}

// Sparkline renders a value series as a one-line unicode bar chart,
// downsampled to width columns.
func Sparkline(vals []float64, width int, max float64) string {
	if len(vals) == 0 || width <= 0 || max <= 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for col := 0; col < width; col++ {
		lo := col * len(vals) / width
		hi := (col + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(vals) {
			hi = len(vals)
		}
		sum := 0.0
		for _, v := range vals[lo:hi] {
			sum += v
		}
		avg := sum / float64(hi-lo)
		idx := int(avg / max * float64(len(bars)))
		if idx >= len(bars) {
			idx = len(bars) - 1
		}
		if idx < 0 {
			idx = 0
		}
		b.WriteRune(bars[idx])
	}
	return b.String()
}

// BusUtils extracts the utilization series.
func (l *SampleLog) BusUtils() []float64 {
	out := make([]float64, len(l.Samples))
	for i, s := range l.Samples {
		out[i] = s.BusUtil
	}
	return out
}

// ActiveCoreSeries extracts the active-core series.
func (l *SampleLog) ActiveCoreSeries() []float64 {
	out := make([]float64, len(l.Samples))
	for i, s := range l.Samples {
		out[i] = float64(s.ActiveCores)
	}
	return out
}

// String renders the log as two labelled sparklines.
func (l *SampleLog) String() string {
	if len(l.Samples) == 0 {
		return "(no samples)"
	}
	width := len(l.Samples)
	if width > 72 {
		width = 72
	}
	return fmt.Sprintf("bus util   %s\nact.cores  %s",
		Sparkline(l.BusUtils(), width, 1.0),
		Sparkline(l.ActiveCoreSeries(), width, float64(l.Cores)))
}
