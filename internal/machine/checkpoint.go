package machine

import (
	"fmt"

	"fdt/internal/mem"
	"fdt/internal/power"
	"fdt/internal/sim"
)

// Checkpoint is a machine's complete observable state at a quiescent
// point: the simulated clock, every performance counter, the power
// meter's per-core integrals, and the memory system's deep state
// (cache tag arrays, directory, DRAM row buffers and schedules, bus
// schedule, store buffers, heap cursor).
//
// Goroutine stacks cannot be snapshotted, so checkpoints are only
// valid at quiescence — between thread.Run invocations (kernel
// boundaries) or after a run completes — where no simulation process
// is mid-flight and the state above is the whole state. Restoring
// into a fresh machine of the same Config and re-running the same
// remaining work reproduces the uninterrupted execution cycle for
// cycle (see the checkpoint determinism tests in internal/core).
type Checkpoint struct {
	Now      uint64
	Counters map[string]uint64
	Power    []uint64
	// PowerStates carries a tracked (P-state ladder) meter's
	// per-state residencies and per-core state registers; nil on
	// single-frequency machines, whose meter state is Power alone.
	PowerStates *power.Snapshot
	// CoreFreq is each core's P-state at the checkpoint (nil on
	// trivial ladders).
	CoreFreq []int
	Mem      *mem.State
	// Teams captures the tenant partition: each team's identity,
	// context ownership, private counter file and accumulated
	// context-active cycles. Empty on a machine that never formed a
	// team. The invariant harness's fold state (per-team ledgers) is
	// deliberately not part of observable state, matching the
	// per-context ledgers.
	Teams []TeamCheckpoint
}

// TeamCheckpoint is one team's contribution to a machine checkpoint.
type TeamCheckpoint struct {
	ID        int
	Name      string
	Ctxs      []int
	Counters  map[string]uint64
	CtxActive uint64
}

// Checkpoint captures the machine's state. Call only at quiescence:
// every hardware context free except none occupied mid-run, no
// simulation processes live.
func (m *Machine) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Now:         m.Eng.Now(),
		Counters:    m.Ctrs.Checkpoint(),
		Power:       m.Power.PerCore(),
		PowerStates: m.Power.Snapshot(),
		Mem:         m.Mem.Checkpoint(),
	}
	if m.coreFreq != nil {
		cp.CoreFreq = append([]int(nil), m.coreFreq...)
	}
	for _, t := range m.teams {
		cp.Teams = append(cp.Teams, TeamCheckpoint{
			ID:        t.ID,
			Name:      t.Name,
			Ctxs:      t.Contexts(),
			Counters:  t.Ctrs.Checkpoint(),
			CtxActive: t.ctxActive,
		})
	}
	return cp
}

// RestoreCheckpoint overwrites the machine's state from a checkpoint
// taken on a machine with an identical Config. The engine is replaced
// with a fresh one whose clock starts at the checkpoint time, so a
// subsequent thread.Run continues the simulation where the
// checkpointed one left off.
func (m *Machine) RestoreCheckpoint(cp *Checkpoint) {
	m.Eng = sim.NewEngineAt(cp.Now)
	m.Ctrs.Restore(cp.Counters)
	m.Power.Restore(cp.Power)
	m.Power.RestoreSnapshot(cp.PowerStates)
	if m.coreFreq != nil && cp.CoreFreq != nil {
		copy(m.coreFreq, cp.CoreFreq)
	}
	m.Mem.Restore(cp.Mem)
	m.teams = nil
	for i := range m.ctxTeam {
		m.ctxTeam[i] = nil
	}
	for _, tc := range cp.Teams {
		t, err := m.newTeam(tc.Name, tc.Ctxs)
		if err != nil {
			panic(fmt.Sprintf("machine: restoring checkpoint team %d: %v", tc.ID, err))
		}
		t.Ctrs.Restore(tc.Counters)
		t.ctxActive = tc.CtxActive
	}
}
