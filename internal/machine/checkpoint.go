package machine

import (
	"fdt/internal/mem"
	"fdt/internal/sim"
)

// Checkpoint is a machine's complete observable state at a quiescent
// point: the simulated clock, every performance counter, the power
// meter's per-core integrals, and the memory system's deep state
// (cache tag arrays, directory, DRAM row buffers and schedules, bus
// schedule, store buffers, heap cursor).
//
// Goroutine stacks cannot be snapshotted, so checkpoints are only
// valid at quiescence — between thread.Run invocations (kernel
// boundaries) or after a run completes — where no simulation process
// is mid-flight and the state above is the whole state. Restoring
// into a fresh machine of the same Config and re-running the same
// remaining work reproduces the uninterrupted execution cycle for
// cycle (see the checkpoint determinism tests in internal/core).
type Checkpoint struct {
	Now      uint64
	Counters map[string]uint64
	Power    []uint64
	Mem      *mem.State
}

// Checkpoint captures the machine's state. Call only at quiescence:
// every hardware context free except none occupied mid-run, no
// simulation processes live.
func (m *Machine) Checkpoint() *Checkpoint {
	return &Checkpoint{
		Now:      m.Eng.Now(),
		Counters: m.Ctrs.Checkpoint(),
		Power:    m.Power.PerCore(),
		Mem:      m.Mem.Checkpoint(),
	}
}

// RestoreCheckpoint overwrites the machine's state from a checkpoint
// taken on a machine with an identical Config. The engine is replaced
// with a fresh one whose clock starts at the checkpoint time, so a
// subsequent thread.Run continues the simulation where the
// checkpointed one left off.
func (m *Machine) RestoreCheckpoint(cp *Checkpoint) {
	m.Eng = sim.NewEngineAt(cp.Now)
	m.Ctrs.Restore(cp.Counters)
	m.Power.Restore(cp.Power)
	m.Mem.Restore(cp.Mem)
}
