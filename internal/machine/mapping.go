package machine

import "fmt"

// Mapping is a thread-to-core mapping policy: how a multi-tenant
// machine partitions its hardware contexts among concurrent teams
// (Tousimojarad & Vanderbauwhede, arXiv:1403.8020, study exactly
// these three placements under multiprogramming). With one team every
// mapping degenerates to the identity placement — all contexts, in
// the plane-major order the single-team runtime has always used — so
// the mapping dimension is invisible until a second team exists.
type Mapping int

const (
	// MapPacked gives each team a contiguous block of cores (all SMT
	// planes included): team t of n owns cores [t*C/n, (t+1)*C/n).
	// Contiguous blocks share ring locality — a team's cores sit next
	// to each other — but a team's traffic concentrates on the L3
	// banks nearest its block.
	MapPacked Mapping = iota
	// MapScattered interleaves cores round-robin: team t of n owns
	// cores {c : c mod n == t}. Every team's cores spread across the
	// whole ring, equalizing average hop distance at the cost of
	// neighborhood locality.
	MapScattered
	// MapSMT co-schedules teams onto the same cores on different SMT
	// planes: team t of n owns plane(s) [t*S/n, (t+1)*S/n) of every
	// core. Teams share issue width and private caches — the
	// throughput-versus-interference trade the SMT-aware placement in
	// arXiv:1403.8020 navigates. Requires at least one plane per team.
	MapSMT
)

// Mappings lists every mapping policy in display order.
func Mappings() []Mapping { return []Mapping{MapPacked, MapScattered, MapSMT} }

// String names the mapping as the CLIs spell it.
func (mp Mapping) String() string {
	switch mp {
	case MapPacked:
		return "packed"
	case MapScattered:
		return "scattered"
	case MapSMT:
		return "smt"
	default:
		return fmt.Sprintf("Mapping(%d)", int(mp))
	}
}

// Describe is the one-line description `fdtsim -list` prints.
func (mp Mapping) Describe() string {
	switch mp {
	case MapPacked:
		return "contiguous core blocks per team (ring locality, bank hot spots)"
	case MapScattered:
		return "round-robin core interleave per team (uniform ring distance)"
	case MapSMT:
		return "teams share every core on separate SMT planes (needs SMTContexts >= teams)"
	default:
		return "unknown mapping"
	}
}

// ParseMapping resolves a CLI spelling to a mapping policy.
func ParseMapping(s string) (Mapping, error) {
	switch s {
	case "packed", "":
		return MapPacked, nil
	case "scattered":
		return MapScattered, nil
	case "smt", "smt-aware":
		return MapSMT, nil
	default:
		return 0, fmt.Errorf("machine: unknown mapping %q (want packed, scattered or smt)", s)
	}
}

// Partition computes the hardware contexts team t of n owns on this
// machine, in the order the team's threads are placed on them. Within
// a team, contexts are ordered plane-major — every owned core once
// before any core hosts a second context — preserving the single-team
// runtime's spread-first placement. Returns an error when the split
// leaves team t without a context.
func (m *Machine) Partition(mp Mapping, t, n int) ([]int, error) {
	if n < 1 || t < 0 || t >= n {
		return nil, fmt.Errorf("machine: partition team %d of %d", t, n)
	}
	cores, planes := m.Cfg.Mem.Cores, m.Cfg.SMTContexts
	var myCores []int
	myPlanes := make([]int, 0, planes)
	for p := 0; p < planes; p++ {
		myPlanes = append(myPlanes, p)
	}
	switch mp {
	case MapPacked:
		lo, hi := t*cores/n, (t+1)*cores/n
		for c := lo; c < hi; c++ {
			myCores = append(myCores, c)
		}
	case MapScattered:
		for c := t; c < cores; c += n {
			myCores = append(myCores, c)
		}
	case MapSMT:
		for c := 0; c < cores; c++ {
			myCores = append(myCores, c)
		}
		lo, hi := t*planes/n, (t+1)*planes/n
		myPlanes = myPlanes[:0]
		for p := lo; p < hi; p++ {
			myPlanes = append(myPlanes, p)
		}
	default:
		return nil, fmt.Errorf("machine: unknown mapping %v", mp)
	}
	if len(myCores) == 0 || len(myPlanes) == 0 {
		return nil, fmt.Errorf("machine: mapping %s leaves team %d of %d without a context (%d cores, %d SMT planes)",
			mp, t, n, cores, planes)
	}
	ctxs := make([]int, 0, len(myCores)*len(myPlanes))
	for _, p := range myPlanes {
		for _, c := range myCores {
			ctxs = append(ctxs, p*cores+c)
		}
	}
	return ctxs, nil
}
