package machine

import (
	"testing"
)

func TestDefaultConfigBuilds(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Cores() != 32 {
		t.Errorf("cores = %d, want 32 (Table 1)", m.Cores())
	}
}

func TestWithCores(t *testing.T) {
	m := MustNew(DefaultConfig().WithCores(16))
	if m.Cores() != 16 {
		t.Errorf("cores = %d, want 16", m.Cores())
	}
}

func TestWithBandwidth(t *testing.T) {
	cfg := DefaultConfig().WithBandwidth(2)
	if cfg.Mem.BusCyclesPerLine != 16 {
		t.Errorf("cycles/line = %d, want 16 at 2x bandwidth", cfg.Mem.BusCyclesPerLine)
	}
}

func TestBadConfigRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IssueWidth = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero issue width accepted")
	}
	cfg = DefaultConfig()
	cfg.Mem.L3Banks = 5
	if _, err := New(cfg); err == nil {
		t.Error("invalid memory config accepted")
	}
}

func TestContextOccupancyGuard(t *testing.T) {
	m := MustNew(DefaultConfig())
	m.OccupyContext(3, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double occupancy did not panic")
			}
		}()
		m.OccupyContext(3, 0)
	}()
	m.ReleaseContext(3, 10)
	m.OccupyContext(3, 20) // re-occupancy after release is fine
	m.ReleaseContext(3, 30)
	defer func() {
		if recover() == nil {
			t.Error("release of idle context did not panic")
		}
	}()
	m.ReleaseContext(3, 40)
}

func TestOccupancyDrivesPowerMeter(t *testing.T) {
	m := MustNew(DefaultConfig())
	m.OccupyContext(2, 100)
	m.ReleaseContext(2, 350)
	if got := m.Power.ActiveCoreCycles(); got != 250 {
		t.Errorf("active core cycles = %d, want 250", got)
	}
}

func TestSMTContextsShareCores(t *testing.T) {
	m := MustNew(DefaultConfig().WithCores(8).WithSMT(2))
	if m.Contexts() != 16 {
		t.Fatalf("contexts = %d, want 16", m.Contexts())
	}
	// Spread-first placement: contexts 0..7 on distinct cores, 8..15
	// are the second context of each core.
	for ctx := 0; ctx < 16; ctx++ {
		if got, want := m.CoreOf(ctx), ctx%8; got != want {
			t.Errorf("CoreOf(%d) = %d, want %d", ctx, got, want)
		}
	}
	m.OccupyContext(0, 0)
	m.OccupyContext(8, 0) // second context of core 0
	if got := m.CoreLoad(0); got != 2 {
		t.Errorf("core 0 load = %d, want 2", got)
	}
	if got := m.ActiveCores(); got != 1 {
		t.Errorf("active cores = %d, want 1 (one core, two contexts)", got)
	}
	// Power accrues per core: 2 contexts on one core for 100 cycles
	// is 100 core-cycles, not 200.
	m.ReleaseContext(0, 100)
	m.ReleaseContext(8, 100)
	if got := m.Power.ActiveCoreCycles(); got != 100 {
		t.Errorf("active core cycles = %d, want 100", got)
	}
}

func TestSMTConfigValidated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SMTContexts = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero SMT contexts accepted")
	}
	cfg.SMTContexts = 9
	if _, err := New(cfg); err == nil {
		t.Error("9 SMT contexts accepted")
	}
}

func TestBusUtilization(t *testing.T) {
	if got := BusUtilization(50, 100); got != 0.5 {
		t.Errorf("util = %v, want 0.5", got)
	}
	if got := BusUtilization(0, 0); got != 0 {
		t.Errorf("util with zero window = %v, want 0", got)
	}
	if got := BusUtilization(150, 100); got != 1 {
		t.Errorf("util clamps to 1, got %v", got)
	}
}

func TestAllocDelegates(t *testing.T) {
	m := MustNew(DefaultConfig())
	a := m.Alloc(100)
	b := m.Alloc(100)
	if b <= a {
		t.Errorf("allocations not increasing: %d then %d", a, b)
	}
}
