package machine

import (
	"fmt"

	"fdt/internal/counters"
	"fdt/internal/invariant"
	"fdt/internal/mem"
)

// Team is one tenant of a multi-tenant machine: a set of hardware
// contexts owned exclusively by one program, with its own counter
// file. The threading runtime places a team's threads only on its
// contexts; the team's counter set accumulates the events its threads
// cause (critical-section cycles, its share of bus traffic), so each
// tenant's FDT controller samples its own behaviour while the shared
// structures — L3, ring, bus, DRAM — see the combined traffic of every
// tenant.
//
// What is per-team versus machine-global is deliberate (DESIGN.md
// Section 12): critical-section counters are per-team because a real
// runtime's lock instrumentation is private to the program, and the
// controller must never mistake a co-runner's synchronization for its
// own. The bus busy counter exists in both scopes: the per-team copy
// attributes each transfer to the tenant whose access caused it (the
// partition the "team-bus-partition" invariant checks), while the
// controller keeps reading the machine-global counter — a socket-wide
// PMU counter like BUS_DRDY_CLOCKS cannot filter by requestor, and
// that is exactly why co-runner traffic shifts Eq. 5's decision.
type Team struct {
	// ID is the team's index on its machine.
	ID int
	// Name labels the team in traces and reports ("t0:pagemine");
	// empty for the default whole-machine team.
	Name string
	// Ctrs is the team's private counter file.
	Ctrs *counters.Set

	m      *Machine
	ctxs   []int
	prefix string

	// Cached team counters for the runtime's hot charge sites.
	csCycles, csWait, csEntries, barrierWait *counters.Counter
	// attr hands the memory system the team's bus-attribution
	// counters (see mem.TeamCtrs).
	attr mem.TeamCtrs

	// ctxActive accumulates released context-occupancy cycles — the
	// team's share of the power metric's active time.
	ctxActive uint64
	// led and windows fold the team's released context ledgers and
	// occupancy windows for the "team-conservation" invariant
	// (meaningful only on checked runs).
	led     invariant.Ledger
	windows uint64
}

// newTeam registers a team owning the given contexts. Contexts must
// exist, be unowned, and not be occupied mid-run.
func (m *Machine) newTeam(name string, ctxs []int) (*Team, error) {
	if len(ctxs) == 0 {
		return nil, fmt.Errorf("machine: team %q with no contexts", name)
	}
	for _, c := range ctxs {
		if c < 0 || c >= len(m.ctxBusy) {
			return nil, fmt.Errorf("machine: team %q context %d out of range [0,%d)", name, c, len(m.ctxBusy))
		}
		if m.ctxTeam[c] != nil {
			return nil, fmt.Errorf("machine: context %d already owned by team %q", c, m.ctxTeam[c].Name)
		}
		if m.ctxBusy[c] {
			return nil, fmt.Errorf("machine: context %d occupied while forming team %q", c, name)
		}
	}
	ctrs := counters.NewSet()
	t := &Team{
		ID:          len(m.teams),
		Name:        name,
		Ctrs:        ctrs,
		m:           m,
		ctxs:        append([]int(nil), ctxs...),
		csCycles:    ctrs.Counter(CtrTeamCSCycles),
		csWait:      ctrs.Counter(CtrTeamCSWaitCycles),
		csEntries:   ctrs.Counter(CtrTeamCSEntries),
		barrierWait: ctrs.Counter(CtrTeamBarrierWaitCycles),
	}
	t.attr = mem.TeamCtrs{
		BusBusy: ctrs.Counter(counters.BusBusyCycles),
		BusTxns: ctrs.Counter(counters.BusTransactions),
	}
	if name != "" {
		t.prefix = name + ":"
	}
	m.teams = append(m.teams, t)
	for _, c := range ctxs {
		m.ctxTeam[c] = t
	}
	return t, nil
}

// NewTeam registers a team owning the given hardware contexts, in
// placement order. Most callers want SplitTeams or DefaultTeam;
// NewTeam exists for custom partitions.
func (m *Machine) NewTeam(name string, ctxs []int) (*Team, error) {
	return m.newTeam(name, ctxs)
}

// DefaultTeam returns the whole-machine team, creating it on first
// use. Idempotent — a restored or reused machine keeps its team — and
// the single-team path every pre-multi-tenant caller takes: the
// default team owns every context in the legacy placement order, and
// its thread names carry no prefix, so a default-team run is
// indistinguishable from a run on the un-partitioned machine.
func (m *Machine) DefaultTeam() *Team {
	if len(m.teams) == 1 && len(m.teams[0].ctxs) == len(m.ctxBusy) {
		return m.teams[0]
	}
	if len(m.teams) > 0 {
		panic("machine: DefaultTeam on a partitioned machine")
	}
	ctxs := make([]int, len(m.ctxBusy))
	for i := range ctxs {
		ctxs[i] = i
	}
	t, err := m.newTeam("", ctxs)
	if err != nil {
		panic(err)
	}
	return t
}

// SplitTeams partitions the machine among len(names) teams under the
// mapping policy and registers one team per name, in order.
func (m *Machine) SplitTeams(mp Mapping, names []string) ([]*Team, error) {
	if len(m.teams) > 0 {
		return nil, fmt.Errorf("machine: SplitTeams on a machine with %d teams", len(m.teams))
	}
	n := len(names)
	out := make([]*Team, 0, n)
	for t := 0; t < n; t++ {
		ctxs, err := m.Partition(mp, t, n)
		if err != nil {
			return nil, err
		}
		team, err := m.newTeam(names[t], ctxs)
		if err != nil {
			return nil, err
		}
		out = append(out, team)
	}
	return out, nil
}

// Teams lists the machine's registered teams in creation order.
func (m *Machine) Teams() []*Team {
	out := make([]*Team, len(m.teams))
	copy(out, m.teams)
	return out
}

// TeamOf reports the team owning a hardware context (nil if unowned).
func (m *Machine) TeamOf(ctx int) *Team { return m.ctxTeam[ctx] }

// Size reports the team's thread capacity (its context count).
func (t *Team) Size() int { return len(t.ctxs) }

// Ctx maps a team slot to its hardware context: slot i is the i-th
// context in the team's placement order.
func (t *Team) Ctx(slot int) int { return t.ctxs[slot] }

// Contexts lists the team's hardware contexts in placement order.
func (t *Team) Contexts() []int {
	out := make([]int, len(t.ctxs))
	copy(out, t.ctxs)
	return out
}

// ProcName prefixes a simulation-process name with the team's label;
// the default team's names are unprefixed (the legacy spelling).
func (t *Team) ProcName(base string) string { return t.prefix + base }

// MemAttr hands out the team's bus-attribution handle for the memory
// system (installed on each thread's CPU).
func (t *Team) MemAttr() *mem.TeamCtrs { return &t.attr }

// ContextActiveCycles reports the cycles the team's threads held
// hardware contexts — the team's share of active time for per-team
// power attribution. On a machine without SMT sharing this equals the
// team's active-core cycles exactly; when teams share cores on
// separate SMT planes it decomposes the overlap by occupancy.
func (t *Team) ContextActiveCycles() uint64 { return t.ctxActive }

// ChargeCSWait adds critical-section wait cycles to the team's
// counter file (nil-safe: a nil team is the un-teamed runtime).
func (t *Team) ChargeCSWait(d uint64) {
	if t != nil {
		t.csWait.Add(d)
	}
}

// ChargeCSEntry counts one critical-section execution.
func (t *Team) ChargeCSEntry() {
	if t != nil {
		t.csEntries.Inc()
	}
}

// ChargeCS adds lock-held cycles to the team's counter file.
func (t *Team) ChargeCS(d uint64) {
	if t != nil {
		t.csCycles.Add(d)
	}
}

// ChargeBarrierWait adds barrier wait cycles to the team's counter
// file.
func (t *Team) ChargeBarrierWait(d uint64) {
	if t != nil {
		t.barrierWait.Add(d)
	}
}

// Per-team counter names. They mirror the thread runtime's global
// counter names (thread.CtrCSCycles etc.; the string values are
// identical so one name reads the same quantity in either scope, and
// the constants live here because the thread package already imports
// machine).
const (
	CtrTeamCSCycles          = "sync.cs_cycles"
	CtrTeamCSWaitCycles      = "sync.cs_wait_cycles"
	CtrTeamCSEntries         = "sync.cs_entries"
	CtrTeamBarrierWaitCycles = "sync.barrier_wait_cycles"
)
