package workloads

import (
	"fmt"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// GSearch re-implements the paper's directed-graph search kernel
// (from the OpenMP source code repository): threads repeatedly pop
// nodes from a shared work queue, evaluate them, and mark them
// visited. The queue and the visited set are each guarded by their
// own critical section — the paper notes the kernel has two separate
// critical sections and that the CS fraction varies across iterations
// (Section 4.3: 3.84% on average, SAT chooses 5 threads).
type GSearch struct {
	m *machine.Machine
	p GSearchParams

	adj                  [][]int32 // adjacency lists
	adjAddr              uint64    // node records in simulated memory
	queueAddr, visitAddr uint64

	queueLock *thread.Lock
	visitLock *thread.Lock

	queue   []int32
	qHead   int
	visited []bool
	// itBudget is the shared per-iteration expansion budget,
	// decremented under the queue lock.
	itBudget   int
	visitCount int
}

// GSearchParams sizes GSearch.
type GSearchParams struct {
	// Nodes is the graph size (paper: 10K; ours 15K of lighter nodes).
	Nodes int
	// Degree is the average out-degree.
	Degree int
	// Batch is the nodes expanded per kernel iteration.
	Batch int
	// EvalInstr is the per-node evaluation work (the "search" —
	// comparing the node's payload against the query).
	EvalInstr uint64
	// EdgeInstr is the per-edge traversal work.
	EdgeInstr uint64
}

// DefaultGSearchParams returns the scaled Table-2 input.
func DefaultGSearchParams() GSearchParams {
	return GSearchParams{
		Nodes:     15000,
		Degree:    4,
		Batch:     64,
		EvalInstr: 800,
		EdgeInstr: 30,
	}
}

// NewGSearch builds a deterministic random digraph and seeds the work
// queue with node 0 plus enough roots that the whole graph is
// reachable (so the amount of work is input-determined, not
// schedule-determined).
func NewGSearch(m *machine.Machine, p GSearchParams) *GSearch {
	mustMachine(m, "gsearch")
	w := &GSearch{m: m, p: p}
	r := newRNG(0x65ea7c4)
	w.adj = make([][]int32, p.Nodes)
	for n := range w.adj {
		deg := 1 + r.intn(2*p.Degree-1) // avg ~Degree
		edges := make([]int32, deg)
		for e := range edges {
			edges[e] = int32(r.intn(p.Nodes))
		}
		w.adj[n] = edges
	}
	w.adjAddr = m.Alloc(p.Nodes * 64) // one record line per node
	w.queueLock = thread.NewLock(m)
	w.visitLock = thread.NewLock(m)
	w.queueAddr = m.Alloc(4 * p.Nodes)
	w.visitAddr = m.Alloc(p.Nodes)
	w.queue = make([]int32, 0, p.Nodes)
	w.visited = make([]bool, p.Nodes)
	// Seed: every node enters the logical work list exactly once, in
	// discovery order of a serial sweep — the standard trick for a
	// fixed-size parallel search benchmark whose result must not
	// depend on the thread count.
	for n := 0; n < p.Nodes; n++ {
		w.queue = append(w.queue, int32(n))
	}
	return w
}

// Name implements core.Workload.
func (w *GSearch) Name() string { return "gsearch" }

// Kernels implements core.Workload.
func (w *GSearch) Kernels() []core.Kernel { return []core.Kernel{w} }

// Iterations implements core.Kernel: batches of node expansions.
func (w *GSearch) Iterations() int {
	return (w.p.Nodes + w.p.Batch - 1) / w.p.Batch
}

// RunChunk implements core.Kernel: the team collectively expands up
// to Batch nodes per iteration. Each thread grabs its share of the
// batch from the shared queue under the queue lock (CS 1), evaluates
// the nodes in parallel, and publishes its results into the visited
// set under the visited lock (CS 2). Every thread executes both
// critical sections once per iteration, so — as in the paper's
// workloads — the total critical-section time grows with the team
// size while the parallel work per thread shrinks.
func (w *GSearch) RunChunk(master *thread.Ctx, n, lo, hi int) {
	bar := &thread.Barrier{}
	master.Fork(n, func(tc *thread.Ctx) {
		for it := lo; it < hi; it++ {
			if tc.ID == 0 {
				w.itBudget = w.p.Batch
			}
			tc.Barrier(bar)

			// CS 1: claim this thread's chunk of the batch.
			var mine []int32
			tc.Critical(w.queueLock, func() {
				tc.Load(w.queueAddr + uint64(4*w.qHead))
				tc.Exec(400)
				share := (w.p.Batch + tc.Size - 1) / tc.Size
				if share > w.itBudget {
					share = w.itBudget
				}
				if rest := len(w.queue) - w.qHead; share > rest {
					share = rest
				}
				if share > 0 {
					mine = w.queue[w.qHead : w.qHead+share]
					w.qHead += share
					w.itBudget -= share
					tc.Store(w.queueAddr + uint64(4*w.qHead))
				}
			})

			// Parallel part: evaluate the claimed nodes and walk
			// their edges.
			for _, node := range mine {
				tc.Load(w.adjAddr + uint64(node)*64)
				tc.Exec(w.p.EvalInstr)
				for _, e := range w.adj[node] {
					tc.Load(w.adjAddr + uint64(e)*64)
					tc.Exec(w.p.EdgeInstr)
				}
			}

			// CS 2: publish results into the shared visited set.
			tc.Critical(w.visitLock, func() {
				tc.Exec(400 + 8*uint64(len(mine)))
				for _, node := range mine {
					tc.Load(w.visitAddr + uint64(node))
					tc.Store(w.visitAddr + uint64(node))
					if !w.visited[node] {
						w.visited[node] = true
						w.visitCount++
					}
				}
			})
			tc.Barrier(bar)
		}
	})
}

// Verify checks that every node was visited exactly once.
func (w *GSearch) Verify() error {
	if w.visitCount != w.p.Nodes {
		return fmt.Errorf("gsearch: visited %d nodes, want %d", w.visitCount, w.p.Nodes)
	}
	for n, v := range w.visited {
		if !v {
			return fmt.Errorf("gsearch: node %d never visited", n)
		}
	}
	return nil
}

func init() {
	register(Info{
		Name:    "gsearch",
		Class:   CSLimited,
		Problem: "Search in directed graphs",
		Input:   "15K nodes",
		Factory: func(m *machine.Machine) core.Workload {
			return NewGSearch(m, DefaultGSearchParams())
		},
	})
}
