package workloads

import (
	"fmt"
	"math"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// MTwister re-implements the CUDA-SDK MersenneTwister sample the
// paper uses: two data-parallel kernels run back to back. The first
// generates uniform random numbers with per-block Mersenne-Twister
// generators (compute-bound — the paper reports it scales to 32
// threads); the second applies the Box-Muller transformation to turn
// them into Gaussians (bandwidth-bound — the paper reports it
// saturates at 12 threads). Because the kernels want different team
// sizes, no static thread count is power-optimal — the paper's
// Fig 15 story, where (SAT+BAT) beats even the oracle static policy.
type MTwister struct {
	m *machine.Machine
	p MTwisterParams

	uniform   []uint32
	gauss     []float64
	uniAddr   uint64
	gaussAddr uint64

	gen *mtGenKernel
	bm  *boxMullerKernel
}

// MTwisterParams sizes MTwister.
type MTwisterParams struct {
	// N is the numbers generated (paper: CUDA SDK default; scaled 64K).
	N int
	// BlockLen is the numbers per independent generator block — and
	// per kernel iteration.
	BlockLen int
	// GenInstr is the per-number generation work (twist + temper +
	// the SDK's per-sample post-processing).
	GenInstr uint64
	// BoxMullerInstr is the per-number transform work (log, sqrt,
	// cosine).
	BoxMullerInstr uint64
}

// DefaultMTwisterParams returns the scaled Table-2 input.
func DefaultMTwisterParams() MTwisterParams {
	return MTwisterParams{N: 64 << 10, BlockLen: 256, GenInstr: 260, BoxMullerInstr: 40}
}

// NewMTwister builds the workload.
func NewMTwister(m *machine.Machine, p MTwisterParams) *MTwister {
	mustMachine(m, "mtwister")
	w := &MTwister{m: m, p: p}
	w.uniform = make([]uint32, p.N)
	w.gauss = make([]float64, p.N)
	w.uniAddr = m.Alloc(4 * p.N)
	w.gaussAddr = m.Alloc(8 * p.N)
	w.gen = &mtGenKernel{w: w}
	w.bm = &boxMullerKernel{w: w}
	return w
}

// Name implements core.Workload.
func (w *MTwister) Name() string { return "mtwister" }

// Kernels implements core.Workload: generation, then transformation.
func (w *MTwister) Kernels() []core.Kernel { return []core.Kernel{w.gen, w.bm} }

func (w *MTwister) blocks() int { return (w.p.N + w.p.BlockLen - 1) / w.p.BlockLen }

// --- Mersenne-Twister generator ---------------------------------------

// mt19937 is a from-scratch MT19937 (Matsumoto & Nishimura 1998).
type mt19937 struct {
	state [624]uint32
	idx   int
}

func newMT19937(seed uint32) *mt19937 {
	g := &mt19937{idx: 624}
	g.state[0] = seed
	for i := 1; i < 624; i++ {
		g.state[i] = 1812433253*(g.state[i-1]^(g.state[i-1]>>30)) + uint32(i)
	}
	return g
}

func (g *mt19937) twist() {
	for i := 0; i < 624; i++ {
		y := g.state[i]&0x80000000 | g.state[(i+1)%624]&0x7fffffff
		n := g.state[(i+397)%624] ^ (y >> 1)
		if y&1 == 1 {
			n ^= 0x9908b0df
		}
		g.state[i] = n
	}
	g.idx = 0
}

func (g *mt19937) next() uint32 {
	if g.idx >= 624 {
		g.twist()
	}
	y := g.state[g.idx]
	g.idx++
	y ^= y >> 11
	y ^= y << 7 & 0x9d2c5680
	y ^= y << 15 & 0xefc60000
	y ^= y >> 18
	return y
}

// mtGenKernel is MTwister's first kernel: block b fills
// uniform[b*BlockLen : (b+1)*BlockLen) from its own generator, so the
// output is identical for every team size.
type mtGenKernel struct{ w *MTwister }

func (k *mtGenKernel) Name() string    { return "mtwister/gen" }
func (k *mtGenKernel) Iterations() int { return k.w.blocks() }

// SampleExactOnly implements core.ExactOnlyKernel: the uniform array
// this kernel stores is the Box-Muller kernel's cache-resident input,
// so fast-forwarding generation would hand the transform a cold
// working set the exact run never sees.
func (k *mtGenKernel) SampleExactOnly() bool { return true }

func (k *mtGenKernel) RunChunk(master *thread.Ctx, n, lo, hi int) {
	w := k.w
	master.Fork(n, func(tc *thread.Ctx) {
		myLo, myHi := tc.Range(lo, hi)
		for b := myLo; b < myHi; b++ {
			blkLo := b * w.p.BlockLen
			blkHi := blkLo + w.p.BlockLen
			if blkHi > w.p.N {
				blkHi = w.p.N
			}
			g := newMT19937(uint32(0x1571 + b))
			tc.Exec(624 * 4) // state initialization
			for i := blkLo; i < blkHi; i++ {
				w.uniform[i] = g.next()
			}
			tc.Exec(uint64(blkHi-blkLo) * w.p.GenInstr)
			tc.StoreRange(w.uniAddr+uint64(4*blkLo), 4*(blkHi-blkLo))
		}
	})
}

// --- Box-Muller transform ---------------------------------------------

// boxMullerKernel is MTwister's second kernel: consecutive pairs
// (u1, u2) become one Gaussian (and its pair partner) via
// z = sqrt(-2 ln u1) * cos(2 pi u2).
type boxMullerKernel struct{ w *MTwister }

func (k *boxMullerKernel) Name() string    { return "mtwister/boxmuller" }
func (k *boxMullerKernel) Iterations() int { return k.w.blocks() }

func boxMuller(u1, u2 uint32) (float64, float64) {
	f1 := (float64(u1) + 1) / (float64(1<<32) + 1) // in (0,1]
	f2 := float64(u2) / float64(1<<32)
	r := math.Sqrt(-2 * math.Log(f1))
	return r * math.Cos(2*math.Pi*f2), r * math.Sin(2*math.Pi*f2)
}

func (k *boxMullerKernel) RunChunk(master *thread.Ctx, n, lo, hi int) {
	w := k.w
	master.Fork(n, func(tc *thread.Ctx) {
		myLo, myHi := tc.Range(lo, hi)
		for b := myLo; b < myHi; b++ {
			blkLo := b * w.p.BlockLen
			blkHi := blkLo + w.p.BlockLen
			if blkHi > w.p.N {
				blkHi = w.p.N
			}
			tc.LoadRange(w.uniAddr+uint64(4*blkLo), 4*(blkHi-blkLo))
			tc.Exec(uint64(blkHi-blkLo) * w.p.BoxMullerInstr)
			for i := blkLo; i+1 < blkHi; i += 2 {
				z0, z1 := boxMuller(w.uniform[i], w.uniform[i+1])
				w.gauss[i], w.gauss[i+1] = z0, z1
			}
			tc.StoreRange(w.gaussAddr+uint64(8*blkLo), 8*(blkHi-blkLo))
		}
	})
}

// Gaussians returns the transformed output (not a copy; read-only).
func (w *MTwister) Gaussians() []float64 { return w.gauss }

// Verify regenerates both stages serially and compares bit-exactly,
// then sanity-checks the Gaussian moments.
func (w *MTwister) Verify() error {
	for b := 0; b < w.blocks(); b++ {
		blkLo := b * w.p.BlockLen
		blkHi := blkLo + w.p.BlockLen
		if blkHi > w.p.N {
			blkHi = w.p.N
		}
		g := newMT19937(uint32(0x1571 + b))
		for i := blkLo; i < blkHi; i++ {
			if want := g.next(); w.uniform[i] != want {
				return fmt.Errorf("mtwister: uniform[%d] = %d, want %d", i, w.uniform[i], want)
			}
		}
		for i := blkLo; i+1 < blkHi; i += 2 {
			z0, z1 := boxMuller(w.uniform[i], w.uniform[i+1])
			if w.gauss[i] != z0 || w.gauss[i+1] != z1 {
				return fmt.Errorf("mtwister: gauss pair %d mismatch", i)
			}
		}
	}
	var sum, sumSq float64
	for _, z := range w.gauss {
		sum += z
		sumSq += z * z
	}
	n := float64(w.p.N)
	mean, variance := sum/n, sumSq/n
	// Tolerances scale with sample size: the mean of n standard
	// normals has stddev 1/sqrt(n); allow 5 sigma.
	meanTol := math.Max(0.02, 5/math.Sqrt(n))
	varTol := math.Max(0.05, 10/math.Sqrt(n))
	if math.Abs(mean) > meanTol || math.Abs(variance-1) > varTol {
		return fmt.Errorf("mtwister: moments mean=%v var=%v, want ~N(0,1)", mean, variance)
	}
	return nil
}

func init() {
	register(Info{
		Name:    "mtwister",
		Class:   BWLimited,
		Problem: "Mersenne-Twister PRNG",
		Input:   "64K numbers, 2 kernels",
		Factory: func(m *machine.Machine) core.Workload {
			return NewMTwister(m, DefaultMTwisterParams())
		},
	})
}
