package workloads

import (
	"fmt"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// PageMine is the paper's motivating data-mining kernel (Figs 1/2,
// derived from rsearchk): GetPageHistogram counts the occurrences of
// each ASCII character on a page. The team splits each page; every
// thread gathers a local histogram in parallel, then adds it to the
// global histogram inside a critical section, then waits at a barrier.
//
// Tuning target (DESIGN.md): single-thread critical-section fraction
// around 2-3%, giving P_CS ~ 6-7 as in Section 4.3. Pages stream from
// memory (each page is touched exactly once), so there is moderate
// bus pressure too — but the critical section binds first, exactly as
// in the paper's Fig 2.
type PageMine struct {
	m *machine.Machine
	p PageMineParams

	data      []byte // all pages, deterministic content
	pagesAddr uint64
	histAddr  uint64
	lock      *thread.Lock

	global [pageMineBins]uint64
}

const (
	pageMineBins      = 128
	pageMineHistBytes = pageMineBins * 4 // "128 integers" (footnote 1)
)

// PageMineParams sizes PageMine.
type PageMineParams struct {
	// Pages is the document length in pages (paper: 1000; scaled 200).
	Pages int
	// PageBytes is the page size (paper default: 5280 = 66x80 chars).
	PageBytes int
	// WorkPerCharInstr is the histogram-gathering work per character.
	WorkPerCharInstr uint64
	// MergePerBinInstr is the critical-section work per histogram bin.
	MergePerBinInstr uint64
}

// DefaultPageMineParams returns the scaled Table-2 input.
func DefaultPageMineParams() PageMineParams {
	return PageMineParams{
		Pages:            200,
		PageBytes:        5280,
		WorkPerCharInstr: 2,
		MergePerBinInstr: 6,
	}
}

// NewPageMine builds the workload on m: it lays out the document and
// the global histogram in simulated memory and fills the document
// with deterministic text.
func NewPageMine(m *machine.Machine, p PageMineParams) *PageMine {
	mustMachine(m, "pagemine")
	w := &PageMine{m: m, p: p}
	w.data = make([]byte, p.Pages*p.PageBytes)
	r := newRNG(0x9a6e)
	for i := range w.data {
		w.data[i] = byte(r.intn(pageMineBins))
	}
	w.pagesAddr = m.Alloc(len(w.data))
	w.lock = thread.NewLock(m)
	w.histAddr = m.Alloc(pageMineHistBytes)
	return w
}

// Name implements core.Workload.
func (w *PageMine) Name() string { return "pagemine" }

// Kernels implements core.Workload: PageMine is a single kernel.
func (w *PageMine) Kernels() []core.Kernel { return []core.Kernel{w} }

// Iterations implements core.Kernel: one iteration per page, matching
// the paper's iteratively-called GetPageHistogram.
func (w *PageMine) Iterations() int { return w.p.Pages }

// RunChunk implements core.Kernel: pages [lo, hi) on a team of n.
func (w *PageMine) RunChunk(master *thread.Ctx, n, lo, hi int) {
	bar := &thread.Barrier{}
	master.Fork(n, func(tc *thread.Ctx) {
		var local [pageMineBins]uint64
		for page := lo; page < hi; page++ {
			base := w.pagesAddr + uint64(page*w.p.PageBytes)
			off := page * w.p.PageBytes

			// Parallel part: gather the local histogram over this
			// thread's fraction of the page (Fig 1).
			myLo, myHi := tc.Range(0, w.p.PageBytes)
			if myHi > myLo {
				tc.LoadRange(base+uint64(myLo), myHi-myLo)
				tc.Exec(uint64(myHi-myLo) * w.p.WorkPerCharInstr)
				for i := myLo; i < myHi; i++ {
					local[w.data[off+i]]++
				}
			}

			// Serial part: add the local histogram to the global
			// histogram under the critical section.
			tc.Critical(w.lock, func() {
				tc.LoadRange(w.histAddr, pageMineHistBytes)
				tc.Exec(pageMineBins * w.p.MergePerBinInstr)
				tc.StoreRange(w.histAddr, pageMineHistBytes)
				for b, v := range local {
					w.global[b] += v
					local[b] = 0
				}
			})
			tc.Barrier(bar)
		}
	})
}

// Histogram returns the accumulated global histogram (a copy).
func (w *PageMine) Histogram() []uint64 {
	out := make([]uint64, pageMineBins)
	copy(out, w.global[:])
	return out
}

// Verify recounts the document serially and compares with the global
// histogram the threaded run produced.
func (w *PageMine) Verify() error {
	var want [pageMineBins]uint64
	for _, b := range w.data {
		want[b]++
	}
	for i := range want {
		if want[i] != w.global[i] {
			return fmt.Errorf("pagemine: bin %d = %d, want %d", i, w.global[i], want[i])
		}
	}
	return nil
}

func init() {
	register(Info{
		Name:    "pagemine",
		Class:   CSLimited,
		Problem: "Data mining kernel",
		Input:   "200 pages x 5280 chars",
		Factory: func(m *machine.Machine) core.Workload {
			return NewPageMine(m, DefaultPageMineParams())
		},
	})
}
