package workloads

import (
	"testing"
	"testing/quick"

	"fdt/internal/core"
	"fdt/internal/machine"
)

// Parameter-fuzz properties: for randomized (small) workload
// parameters, every workload must stay correct under FDT — whatever
// the controller decides, the computed answer must match the serial
// reference. These catch range/rounding bugs in iteration splitting
// that fixed parameter sets would miss.

func fuzzRun(t *testing.T, name string, build func(m *machine.Machine, a, b, c int) core.Workload, maxCount int) {
	t.Helper()
	f := func(ar, br, cr uint8) bool {
		m := machine.MustNew(machine.DefaultConfig())
		w := build(m, int(ar), int(br), int(cr))
		core.NewController(core.Combined{}).Run(m, w)
		if err := w.(Verifier).Verify(); err != nil {
			t.Logf("%s: %v", name, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

func TestFuzzPageMine(t *testing.T) {
	fuzzRun(t, "pagemine", func(m *machine.Machine, a, b, c int) core.Workload {
		return NewPageMine(m, PageMineParams{
			Pages:            10 + a%30,
			PageBytes:        256 + 64*(b%16),
			WorkPerCharInstr: uint64(1 + c%4),
			MergePerBinInstr: 6,
		})
	}, 6)
}

func TestFuzzISort(t *testing.T) {
	fuzzRun(t, "isort", func(m *machine.Machine, a, b, c int) core.Workload {
		return NewISort(m, ISortParams{
			N:                   256 + 64*(a%8),
			Buckets:             8 << (b % 3),
			Repeats:             9 + c%20,
			WorkPerKeyInstr:     2,
			MergePerBucketInstr: 16,
		})
	}, 6)
}

func TestFuzzED(t *testing.T) {
	fuzzRun(t, "ed", func(m *machine.Machine, a, b, c int) core.Workload {
		return NewED(m, EDParams{
			N:           2048 + 512*(a%8),
			Block:       128 << (b % 3),
			MulAddInstr: uint64(2 + c%4),
		})
	}, 6)
}

func TestFuzzTranspose(t *testing.T) {
	fuzzRun(t, "transpose", func(m *machine.Machine, a, b, c int) core.Workload {
		return NewTranspose(m, TransposeParams{
			Rows:      16 + 8*(a%6),
			Cols:      64 + 8*(b%16),
			ElemInstr: uint64(2 + c%4),
		})
	}, 6)
}

func TestFuzzMTwister(t *testing.T) {
	fuzzRun(t, "mtwister", func(m *machine.Machine, a, b, c int) core.Workload {
		return NewMTwister(m, MTwisterParams{
			N:              2048 + 256*(a%8),
			BlockLen:       128 << (b % 2),
			GenInstr:       uint64(100 + c%100),
			BoxMullerInstr: 40,
		})
	}, 6)
}

func TestFuzzBT(t *testing.T) {
	fuzzRun(t, "bt", func(m *machine.Machine, a, b, c int) core.Workload {
		return NewBT(m, BTParams{
			Dim:       4 + a%4,
			Steps:     8 + b%12,
			CellInstr: uint64(40 + c%100),
		})
	}, 5)
}

func TestFuzzSConv(t *testing.T) {
	fuzzRun(t, "sconv", func(m *machine.Machine, a, b, c int) core.Workload {
		return NewSConv(m, SConvParams{
			Size:     16 + 8*(a%4),
			Radius:   2 + b%6,
			Frames:   8 + c%8,
			TapInstr: 2,
		})
	}, 5)
}

func TestFuzzBScholes(t *testing.T) {
	fuzzRun(t, "bscholes", func(m *machine.Machine, a, b, c int) core.Workload {
		return NewBScholes(m, BScholesParams{
			Options:     128 + 32*(a%6),
			Batch:       32 << (b % 2),
			Passes:      8 + c%8,
			OptionInstr: 200,
			Rate:        0.02,
			Vol:         0.30,
		})
	}, 5)
}
