package workloads

import (
	"fmt"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// Convert re-implements the unix image-conversion utility's kernel:
// each output row is computed from the corresponding input row and
// written to a fresh buffer, so both the read and the write stream
// consume off-chip bandwidth (Section 5.3). Per-pixel work is heavier
// than ED's (gamma correction + channel remap), so a single thread
// uses less of the bus and it takes more threads to saturate.
//
// Tuning target: single-thread bus utilization ~6% (paper: 5.8%,
// BAT predicts 17 with the minimum at 18, Fig 12b).
type Convert struct {
	m *machine.Machine
	p ConvertParams

	in      []uint32 // packed RGBA
	out     []uint32
	inAddr  uint64
	outAddr uint64

	gamma [256]uint8
}

// ConvertParams sizes Convert.
type ConvertParams struct {
	// Width and Height size the image in pixels (paper: 320x240).
	Width, Height int
	// PixelInstr is the per-pixel conversion work.
	PixelInstr uint64
}

// DefaultConvertParams returns the Table-2 input (unscaled — the
// paper's 320x240 image is already simulation-friendly).
func DefaultConvertParams() ConvertParams {
	return ConvertParams{Width: 320, Height: 240, PixelInstr: 120}
}

// NewConvert builds the workload with a deterministic source image
// and a gamma table.
func NewConvert(m *machine.Machine, p ConvertParams) *Convert {
	mustMachine(m, "convert")
	w := &Convert{m: m, p: p}
	n := p.Width * p.Height
	w.in = make([]uint32, n)
	w.out = make([]uint32, n)
	r := newRNG(0xc07)
	for i := range w.in {
		w.in[i] = uint32(r.next())
	}
	for i := range w.gamma {
		// A fixed-point gamma ~2.2 curve, computed without floats so
		// the table is bit-exact everywhere.
		v := i * i / 255
		w.gamma[i] = uint8(v)
	}
	w.inAddr = m.Alloc(4 * n)
	w.outAddr = m.Alloc(4 * n)
	return w
}

// Name implements core.Workload.
func (w *Convert) Name() string { return "convert" }

// Kernels implements core.Workload.
func (w *Convert) Kernels() []core.Kernel { return []core.Kernel{w} }

// Iterations implements core.Kernel: one iteration per image row
// ("the kernel computes one row of the output image at a time").
func (w *Convert) Iterations() int { return w.p.Height }

// convertPixel is the real per-pixel transform: gamma-correct each
// channel and swap R/B (an RGBA -> BGRA conversion).
func (w *Convert) convertPixel(px uint32) uint32 {
	r := uint32(w.gamma[px>>24&0xff])
	g := uint32(w.gamma[px>>16&0xff])
	b := uint32(w.gamma[px>>8&0xff])
	a := px & 0xff
	return b<<24 | g<<16 | r<<8 | a
}

// RunChunk implements core.Kernel: rows [lo, hi) split across the
// team. The conversion interleaves at line granularity — load a line
// of pixels, convert them, store the output line — the natural
// instruction stream of the real kernel (an artificial
// load-everything-then-compute structure would make the bus traffic
// bursty and convoy-prone).
func (w *Convert) RunChunk(master *thread.Ctx, n, lo, hi int) {
	const pxPerLine = 16 // 64-byte line / 4-byte pixel
	master.Fork(n, func(tc *thread.Ctx) {
		myLo, myHi := tc.Range(lo, hi)
		for row := myLo; row < myHi; row++ {
			base := row * w.p.Width
			for x := 0; x < w.p.Width; x += pxPerLine {
				tc.Load(w.inAddr + uint64(4*(base+x)))
				tc.Exec(pxPerLine * w.p.PixelInstr)
				end := x + pxPerLine
				if end > w.p.Width {
					end = w.p.Width
				}
				for i := base + x; i < base+end; i++ {
					w.out[i] = w.convertPixel(w.in[i])
				}
				tc.StoreRange(w.outAddr+uint64(4*(base+x)), 4*(end-x))
			}
		}
	})
}

// Verify re-converts the image serially and compares every pixel.
func (w *Convert) Verify() error {
	for i, px := range w.in {
		if want := w.convertPixel(px); w.out[i] != want {
			return fmt.Errorf("convert: pixel %d = %#x, want %#x", i, w.out[i], want)
		}
	}
	return nil
}

func init() {
	register(Info{
		Name:    "convert",
		Class:   BWLimited,
		Problem: "Image processing",
		Input:   "320x240 pixels",
		Factory: func(m *machine.Machine) core.Workload {
			return NewConvert(m, DefaultConvertParams())
		},
	})
}
