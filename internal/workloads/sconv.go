package workloads

import (
	"fmt"
	"math"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// SConv re-implements the CUDA-SDK separable-convolution sample: a 2D
// image convolved with a separable Gaussian — a horizontal pass into
// a temporary, a barrier, then a vertical pass into the output,
// repeated over a stream of frames. The image stays on chip and the
// multiply-accumulate work dominates, so the kernel scales and FDT
// must keep it at 32 threads.
//
// Each pass is sliced into sconvSlabs row/column bands; the bands are
// the kernel's fine-grained FDT iterations.
type SConv struct {
	m *machine.Machine
	p SConvParams

	img, tmp, out []float32
	kernelTaps    []float32
	imgAddr       uint64
	tmpAddr       uint64
	outAddr       uint64

	kernel *phasedKernel
}

const sconvSlabs = 16

// SConvParams sizes SConv.
type SConvParams struct {
	// Size is the square image edge.
	Size int
	// Radius is the filter radius (CUDA SDK: 8).
	Radius int
	// Frames is the number of images convolved.
	Frames int
	// TapInstr is the work per filter tap.
	TapInstr uint64
}

// DefaultSConvParams returns the scaled Table-2 input.
func DefaultSConvParams() SConvParams {
	return SConvParams{Size: 64, Radius: 8, Frames: 150, TapInstr: 2}
}

// NewSConv builds the workload with a deterministic image and a
// normalized Gaussian kernel.
func NewSConv(m *machine.Machine, p SConvParams) *SConv {
	mustMachine(m, "sconv")
	w := &SConv{m: m, p: p}
	n := p.Size * p.Size
	w.img = make([]float32, n)
	w.tmp = make([]float32, n)
	w.out = make([]float32, n)
	r := newRNG(0x5c07)
	for i := range w.img {
		w.img[i] = float32(r.float64())
	}
	w.kernelTaps = make([]float32, 2*p.Radius+1)
	var sum float64
	for i := range w.kernelTaps {
		d := float64(i - p.Radius)
		v := math.Exp(-d * d / (2 * float64(p.Radius) * float64(p.Radius) / 9))
		w.kernelTaps[i] = float32(v)
		sum += v
	}
	for i := range w.kernelTaps {
		w.kernelTaps[i] = float32(float64(w.kernelTaps[i]) / sum)
	}
	w.imgAddr = m.Alloc(4 * n)
	w.tmpAddr = m.Alloc(4 * n)
	w.outAddr = m.Alloc(4 * n)

	s := p.Size
	taps := uint64(2*p.Radius + 1)
	w.kernel = &phasedKernel{
		name:  "sconv",
		steps: p.Frames,
		phases: []phase{
			{
				slabs: sconvSlabs,
				run: func(tc *thread.Ctx, slab int) {
					lo, hi := slabRange(slab, sconvSlabs, s)
					if hi <= lo {
						return
					}
					tc.LoadRange(w.imgAddr+uint64(4*lo*s), 4*(hi-lo)*s)
					tc.Exec(uint64((hi-lo)*s) * taps * p.TapInstr)
					w.rowPass(lo, hi)
					tc.StoreRange(w.tmpAddr+uint64(4*lo*s), 4*(hi-lo)*s)
				},
			},
			{
				slabs: sconvSlabs,
				run: func(tc *thread.Ctx, slab int) {
					lo, hi := slabRange(slab, sconvSlabs, s)
					if hi <= lo {
						return
					}
					// The column band reads a radius-widened strip of tmp.
					tc.LoadRange(w.tmpAddr+uint64(4*lo*s), 4*(hi-lo)*s)
					tc.Exec(uint64((hi-lo)*s) * taps * p.TapInstr)
					w.colPass(lo, hi)
					tc.StoreRange(w.outAddr+uint64(4*lo*s), 4*(hi-lo)*s)
				},
			},
		},
	}
	return w
}

// Name implements core.Workload.
func (w *SConv) Name() string { return "sconv" }

// Kernels implements core.Workload.
func (w *SConv) Kernels() []core.Kernel { return []core.Kernel{w.kernel} }

func (w *SConv) at(x, y int) int {
	s := w.p.Size
	x, y = (x+s)%s, (y+s)%s
	return y*s + x
}

// rowPass convolves rows [lo, hi) of img into tmp.
func (w *SConv) rowPass(lo, hi int) {
	s, r := w.p.Size, w.p.Radius
	for y := lo; y < hi; y++ {
		for x := 0; x < s; x++ {
			var acc float32
			for k := -r; k <= r; k++ {
				acc += w.kernelTaps[k+r] * w.img[w.at(x+k, y)]
			}
			w.tmp[y*s+x] = acc
		}
	}
}

// colPass convolves columns [lo, hi) of tmp into out.
func (w *SConv) colPass(lo, hi int) {
	s, r := w.p.Size, w.p.Radius
	for x := lo; x < hi; x++ {
		for y := 0; y < s; y++ {
			var acc float32
			for k := -r; k <= r; k++ {
				acc += w.kernelTaps[k+r] * w.tmp[w.at(x, y+k)]
			}
			w.out[y*s+x] = acc
		}
	}
}

// Verify recomputes both passes serially and compares bit-exactly
// (per-pixel accumulation order is fixed).
func (w *SConv) Verify() error {
	ref := &SConv{m: w.m, p: w.p, img: w.img, kernelTaps: w.kernelTaps}
	ref.tmp = make([]float32, len(w.tmp))
	ref.out = make([]float32, len(w.out))
	ref.rowPass(0, w.p.Size)
	ref.colPass(0, w.p.Size)
	for i := range ref.out {
		if ref.out[i] != w.out[i] {
			return fmt.Errorf("sconv: pixel %d = %v, want %v", i, w.out[i], ref.out[i])
		}
	}
	return nil
}

func init() {
	register(Info{
		Name:    "sconv",
		Class:   Scalable,
		Problem: "2D separable convolution",
		Input:   "64x64, radius 8, 150 frames",
		Factory: func(m *machine.Machine) core.Workload {
			return NewSConv(m, DefaultSConvParams())
		},
	})
}

// Setup implements core.SetupWorkload: the frame buffer and
// intermediates are initialized serially, warming the caches.
func (w *SConv) Setup(c *thread.Ctx) {
	n := w.p.Size * w.p.Size
	c.StoreRange(w.imgAddr, 4*n)
	c.StoreRange(w.tmpAddr, 4*n)
	c.StoreRange(w.outAddr, 4*n)
	c.Exec(uint64(n))
}
