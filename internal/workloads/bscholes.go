package workloads

import (
	"fmt"
	"math"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// BScholes re-implements the CUDA-SDK BlackScholes sample: pricing a
// portfolio of European options with the closed-form Black-Scholes
// formula, repeatedly (the SDK re-prices the portfolio many times).
// Every option is independent, the portfolio stays on chip after the
// first pass, and the transcendental-heavy arithmetic dominates — so
// the kernel is scalable and FDT must keep all 32 cores busy.
type BScholes struct {
	m *machine.Machine
	p BScholesParams

	spot, strike, tte []float64
	call, put         []float64
	dataAddr          uint64
	outAddr           uint64
}

// BScholesParams sizes BScholes.
type BScholesParams struct {
	// Options is the portfolio size (paper: CUDA SDK; scaled 2K).
	Options int
	// Batch is the options priced per kernel iteration; batches are
	// fully independent, so iterations distribute freely across the
	// team (the CUDA SDK's thread blocks).
	Batch int
	// Passes re-prices the portfolio.
	Passes int
	// OptionInstr is the per-option pricing work.
	OptionInstr uint64
	// Rate and Vol are the market parameters.
	Rate, Vol float64
}

// DefaultBScholesParams returns the scaled Table-2 input.
func DefaultBScholesParams() BScholesParams {
	return BScholesParams{Options: 2048, Batch: 128, Passes: 125, OptionInstr: 200, Rate: 0.02, Vol: 0.30}
}

// NewBScholes builds a deterministic portfolio.
func NewBScholes(m *machine.Machine, p BScholesParams) *BScholes {
	mustMachine(m, "bscholes")
	w := &BScholes{m: m, p: p}
	n := p.Options
	w.spot = make([]float64, n)
	w.strike = make([]float64, n)
	w.tte = make([]float64, n)
	w.call = make([]float64, n)
	w.put = make([]float64, n)
	r := newRNG(0xb5)
	for i := 0; i < n; i++ {
		w.spot[i] = 5 + 95*r.float64()
		w.strike[i] = 5 + 95*r.float64()
		w.tte[i] = 0.25 + 9.75*r.float64()
	}
	w.dataAddr = m.Alloc(3 * 8 * n)
	w.outAddr = m.Alloc(2 * 8 * n)
	return w
}

// Name implements core.Workload.
func (w *BScholes) Name() string { return "bscholes" }

// Kernels implements core.Workload.
func (w *BScholes) Kernels() []core.Kernel { return []core.Kernel{w} }

// Iterations implements core.Kernel: one iteration per option batch
// per pass — the kernel's fine-grained parallel-loop units.
func (w *BScholes) Iterations() int {
	return w.p.Passes * w.batchesPerPass()
}

func (w *BScholes) batchesPerPass() int {
	return (w.p.Options + w.p.Batch - 1) / w.p.Batch
}

// normCDF is the standard normal CDF via the Abramowitz & Stegun
// 26.2.17 polynomial approximation (|error| < 7.5e-8), the same
// polynomial the CUDA SDK sample uses — implemented from scratch. By
// construction normCDF(-x) == 1 - normCDF(x), so put-call parity
// holds exactly.
func normCDF(x float64) float64 {
	neg := x < 0
	if neg {
		x = -x
	}
	k := 1 / (1 + 0.2316419*x)
	poly := k * (0.319381530 + k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	phi := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
	cdf := 1 - phi*poly
	if neg {
		return 1 - cdf
	}
	return cdf
}

// price computes the Black-Scholes call and put for option i.
func (w *BScholes) price(i int) (call, put float64) {
	s, k, t := w.spot[i], w.strike[i], w.tte[i]
	r, v := w.p.Rate, w.p.Vol
	sqrtT := math.Sqrt(t)
	d1 := (math.Log(s/k) + (r+v*v/2)*t) / (v * sqrtT)
	d2 := d1 - v*sqrtT
	disc := k * math.Exp(-r*t)
	call = s*normCDF(d1) - disc*normCDF(d2)
	put = disc*normCDF(-d2) - s*normCDF(-d1)
	return call, put
}

// RunChunk implements core.Kernel: batch iterations [lo, hi) are
// block-distributed across the team; each iteration prices one batch
// of options and writes their prices out.
func (w *BScholes) RunChunk(master *thread.Ctx, n, lo, hi int) {
	master.Fork(n, func(tc *thread.Ctx) {
		myLo, myHi := tc.Range(lo, hi)
		for it := myLo; it < myHi; it++ {
			batch := it % w.batchesPerPass()
			oLo := batch * w.p.Batch
			oHi := oLo + w.p.Batch
			if oHi > w.p.Options {
				oHi = w.p.Options
			}
			tc.LoadRange(w.dataAddr+uint64(3*8*oLo), 3*8*(oHi-oLo))
			tc.Exec(uint64(oHi-oLo) * w.p.OptionInstr)
			for i := oLo; i < oHi; i++ {
				w.call[i], w.put[i] = w.price(i)
			}
			tc.StoreRange(w.outAddr+uint64(2*8*oLo), 2*8*(oHi-oLo))
		}
	})
}

// Verify re-prices serially and checks put-call parity as an
// independent cross-check.
func (w *BScholes) Verify() error {
	for i := 0; i < w.p.Options; i++ {
		call, put := w.price(i)
		if w.call[i] != call || w.put[i] != put {
			return fmt.Errorf("bscholes: option %d = (%v,%v), want (%v,%v)", i, w.call[i], w.put[i], call, put)
		}
		// Put-call parity: C - P = S - K e^{-rT}.
		lhs := w.call[i] - w.put[i]
		rhs := w.spot[i] - w.strike[i]*math.Exp(-w.p.Rate*w.tte[i])
		if math.Abs(lhs-rhs) > 1e-6*(1+math.Abs(rhs)) {
			return fmt.Errorf("bscholes: option %d violates put-call parity: %v vs %v", i, lhs, rhs)
		}
	}
	return nil
}

func init() {
	register(Info{
		Name:    "bscholes",
		Class:   Scalable,
		Problem: "Black-Scholes pricing",
		Input:   "2K options x 125 passes",
		Factory: func(m *machine.Machine) core.Workload {
			return NewBScholes(m, DefaultBScholesParams())
		},
	})
}

// Setup implements core.SetupWorkload: the portfolio is generated
// serially before pricing begins, warming the caches.
func (w *BScholes) Setup(c *thread.Ctx) {
	c.StoreRange(w.dataAddr, 3*8*w.p.Options)
	c.StoreRange(w.outAddr, 2*8*w.p.Options)
	c.Exec(uint64(4 * w.p.Options))
}
