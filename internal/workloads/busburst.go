package workloads

import (
	"fmt"
	"math"
	"strings"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// BusBurst is a synthetic co-runner with delayed bandwidth onset (no
// paper counterpart; registered as an extra, outside Table 2). It is
// one kernel in two phases:
//
//	quiet [0, Q):    compute-only arithmetic over a cache-resident
//	                 vector — near-zero bus traffic
//	burst [Q, Q+B):  streams a fresh block from memory every
//	                 iteration — ED-like bus saturation
//
// Run solo it is unremarkable. Run as a co-runner it is the
// interference probe for the adaptive Monitor: a victim tenant trains
// while BusBurst is quiet, then BusBurst's burst phase floods the
// shared bus mid-execution. The victim's own behaviour never changes —
// but its monitor reads the socket-wide bus counter, sees per-iteration
// bus occupancy leave the tolerance band, and must classify the
// co-runner's onset as "bus" drift and retrain (the
// "corun-adaptive-drift-retrain" shape assertion).
type BusBurst struct {
	m *machine.Machine
	p BusBurstParams

	vec        []float64
	vecAddr    uint64
	streamAddr uint64
	lock       *thread.Lock

	sum float64
}

// BusBurstParams sizes BusBurst.
type BusBurstParams struct {
	// QuietIters and BurstIters are the two phase lengths.
	QuietIters, BurstIters int
	// Elems is the elements processed per iteration.
	Elems int
	// ComputeInstr is the per-element arithmetic of the quiet phase.
	ComputeInstr uint64
	// StreamInstr is the per-element arithmetic of the burst phase
	// (kept low so the phase is bandwidth- not compute-bound).
	StreamInstr uint64
}

// DefaultBusBurstParams returns the interference experiments'
// configuration.
func DefaultBusBurstParams() BusBurstParams {
	return BusBurstParams{
		QuietIters:   600,
		BurstIters:   600,
		Elems:        2048,
		ComputeInstr: 6,
		StreamInstr:  2,
	}
}

// NewBusBurst builds the workload on m.
func NewBusBurst(m *machine.Machine, p BusBurstParams) *BusBurst {
	mustMachine(m, "busburst")
	w := &BusBurst{m: m, p: p}
	w.vec = make([]float64, p.Elems)
	r := newRNG(0xb0b5)
	for i := range w.vec {
		w.vec[i] = r.float64()*2 - 1
	}
	w.vecAddr = m.Alloc(8 * p.Elems)
	w.streamAddr = m.Alloc(8 * p.Elems * p.BurstIters)
	w.lock = thread.NewLock(m)
	return w
}

// Name implements core.Workload.
func (w *BusBurst) Name() string { return "busburst" }

// Kernels implements core.Workload: one kernel, so the onset happens
// mid-kernel where only the Monitor (not per-kernel retraining) can
// react.
func (w *BusBurst) Kernels() []core.Kernel { return []core.Kernel{w} }

// Setup implements core.SetupWorkload.
func (w *BusBurst) Setup(c *thread.Ctx) {
	c.LoadRange(w.vecAddr, 8*w.p.Elems)
}

// Iterations implements core.Kernel.
func (w *BusBurst) Iterations() int { return w.p.QuietIters + w.p.BurstIters }

// RunChunk implements core.Kernel: iterations [lo, hi) on a team of
// n, each ending at a barrier.
func (w *BusBurst) RunChunk(master *thread.Ctx, n, lo, hi int) {
	bar := &thread.Barrier{}
	master.Fork(n, func(tc *thread.Ctx) {
		var partial float64
		for it := lo; it < hi; it++ {
			myLo, myHi := tc.Range(0, w.p.Elems)
			share := uint64(myHi - myLo)
			if it < w.p.QuietIters {
				// Quiet: hot-vector arithmetic, no off-chip traffic.
				if share > 0 {
					tc.LoadRange(w.vecAddr+uint64(8*myLo), int(8*share))
					tc.Exec(share * w.p.ComputeInstr)
					for i := myLo; i < myHi; i++ {
						partial += w.vec[i] * w.vec[i]
					}
				}
			} else {
				// Burst: stream a fresh block every iteration.
				blk := it - w.p.QuietIters
				base := w.streamAddr + uint64(8*blk*w.p.Elems)
				if share > 0 {
					tc.LoadRange(base+uint64(8*myLo), int(8*share))
					tc.Exec(share * w.p.StreamInstr)
					for i := myLo; i < myHi; i++ {
						partial += w.vec[i] * w.vec[i]
					}
				}
			}
			tc.Barrier(bar)
		}
		if partial != 0 {
			tc.Critical(w.lock, func() {
				tc.Exec(4)
				w.sum += partial
			})
		}
	})
}

// Verify recomputes the reduction serially: every iteration of both
// phases accumulates the shared vector's sum of squares.
func (w *BusBurst) Verify() error {
	var per float64
	for _, v := range w.vec {
		per += v * v
	}
	want := per * float64(w.p.QuietIters+w.p.BurstIters)
	if diff := math.Abs(want - w.sum); diff > 1e-6*math.Abs(want) {
		return fmt.Errorf("busburst: sum %v, want %v", w.sum, want)
	}
	return nil
}

func init() {
	registerExtra(Info{
		Name:    "busburst",
		Class:   BWLimited, // the binding limiter of its second phase
		Problem: "Synthetic delayed-onset bandwidth hog (co-runner probe)",
		Input:   "600 quiet + 600 burst iters x 2048 elems",
		Factory: func(m *machine.Machine) core.Workload {
			return NewBusBurst(m, DefaultBusBurstParams())
		},
	})
}

// ParsePair resolves an "a+b" co-run spec ("pagemine+mg") into its
// two registered workloads.
func ParsePair(s string) (a, b Info, err error) {
	parts := strings.Split(s, "+")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return Info{}, Info{}, fmt.Errorf("workloads: co-run spec %q, want \"a+b\"", s)
	}
	a, ok := ByName(parts[0])
	if !ok {
		return Info{}, Info{}, fmt.Errorf("workloads: unknown workload %q in co-run spec %q", parts[0], s)
	}
	b, ok = ByName(parts[1])
	if !ok {
		return Info{}, Info{}, fmt.Errorf("workloads: unknown workload %q in co-run spec %q", parts[1], s)
	}
	return a, b, nil
}
