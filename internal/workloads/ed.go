package workloads

import (
	"fmt"
	"math"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// ED computes the Euclidean distance of a point from the origin in an
// N-dimensional space (Fig 3): a data-parallel reduction that streams
// the whole coordinate vector from memory with two arithmetic
// operations per element. Per-thread bus demand is high and there is
// no data sharing, so it is the paper's canonical bandwidth-limited
// kernel (Figs 4 and 12a: time flattens at ~8 threads where bus
// utilization reaches 100%).
//
// Tuning target: single-thread bus utilization ~14% (paper: 14.3%,
// "a miss every 225 cycles"), so BAT predicts P_BW ~ 7-8.
type ED struct {
	m *machine.Machine
	p EDParams

	vec     []float64
	vecAddr uint64
	lock    *thread.Lock

	sumSquares float64
}

// EDParams sizes ED.
type EDParams struct {
	// N is the dimension count (paper: 100M; scaled 512K = 4MB of
	// coordinates, streamed once).
	N int
	// Block is the elements per kernel iteration.
	Block int
	// MulAddInstr is the per-element arithmetic (multiply+add).
	MulAddInstr uint64
}

// DefaultEDParams returns the scaled Table-2 input.
func DefaultEDParams() EDParams {
	return EDParams{N: 512 << 10, Block: 2048, MulAddInstr: 4}
}

// NewED builds the workload with a deterministic coordinate vector.
func NewED(m *machine.Machine, p EDParams) *ED {
	mustMachine(m, "ed")
	w := &ED{m: m, p: p}
	w.vec = make([]float64, p.N)
	r := newRNG(0xed)
	for i := range w.vec {
		w.vec[i] = r.float64()*2 - 1
	}
	w.vecAddr = m.Alloc(8 * p.N)
	w.lock = thread.NewLock(m)
	return w
}

// Name implements core.Workload.
func (w *ED) Name() string { return "ed" }

// Kernels implements core.Workload.
func (w *ED) Kernels() []core.Kernel { return []core.Kernel{w} }

// Iterations implements core.Kernel: one iteration per element block.
func (w *ED) Iterations() int {
	return (w.p.N + w.p.Block - 1) / w.p.Block
}

// RunChunk implements core.Kernel: blocks [lo, hi) split across the
// team; each thread accumulates partial sums locally and folds them
// into the shared sum once at the end of the chunk (the negligible
// synchronization the paper notes for data-parallel kernels).
func (w *ED) RunChunk(master *thread.Ctx, n, lo, hi int) {
	master.Fork(n, func(tc *thread.Ctx) {
		var partial float64
		for it := lo; it < hi; it++ {
			blkLo := it * w.p.Block
			blkHi := blkLo + w.p.Block
			if blkHi > w.p.N {
				blkHi = w.p.N
			}
			myLo, myHi := tc.Range(blkLo, blkHi)
			if myHi <= myLo {
				continue
			}
			tc.LoadRange(w.vecAddr+uint64(8*myLo), 8*(myHi-myLo))
			tc.Exec(uint64(myHi-myLo) * w.p.MulAddInstr)
			for i := myLo; i < myHi; i++ {
				partial += w.vec[i] * w.vec[i]
			}
		}
		tc.Critical(w.lock, func() {
			tc.Exec(8)
			w.sumSquares += partial
		})
	})
}

// Distance returns sqrt of the accumulated sum of squares.
func (w *ED) Distance() float64 { return math.Sqrt(w.sumSquares) }

// Verify recomputes the distance serially; floating-point reduction
// order differs across team sizes, so comparison uses a relative
// tolerance.
func (w *ED) Verify() error {
	var want float64
	for _, v := range w.vec {
		want += v * v
	}
	if diff := math.Abs(want - w.sumSquares); diff > 1e-6*math.Abs(want) {
		return fmt.Errorf("ed: sum of squares %v, want %v", w.sumSquares, want)
	}
	return nil
}

func init() {
	register(Info{
		Name:    "ed",
		Class:   BWLimited,
		Problem: "Euclidean distance",
		Input:   "n = 512K",
		Factory: func(m *machine.Machine) core.Workload {
			return NewED(m, DefaultEDParams())
		},
	})
}
