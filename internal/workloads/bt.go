package workloads

import (
	"fmt"
	"math"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// BT re-implements the computational pattern of the NAS BT fluid
// dynamics benchmark: a dense 3D grid of 5-variable cells advanced by
// a neighbour-coupled Jacobi update each time step. The grid fits on
// chip and the per-cell arithmetic dominates, so the kernel is
// limited by neither synchronization nor bandwidth — it keeps scaling
// and FDT must leave it at 32 threads (Fig 14's "Scalable" group).
//
// Each time step's parallelized loop is sliced into btSlabs
// independent slabs; the slabs are the kernel's FDT iterations, so
// training peels a few slabs (fine-grained, as the paper's loop
// peeling does), not whole time steps.
type BT struct {
	m *machine.Machine
	p BTParams

	cur, next []float64 // dim^3 * 5, double-buffered
	curAddr   uint64
	nextAddr  uint64

	kernel *phasedKernel
}

const btSlabs = 32

// BTParams sizes BT.
type BTParams struct {
	// Dim is the grid edge.
	Dim int
	// Steps is the number of time steps.
	Steps int
	// CellInstr is the per-cell update work per step.
	CellInstr uint64
}

// DefaultBTParams returns the scaled Table-2 input.
func DefaultBTParams() BTParams {
	return BTParams{Dim: 10, Steps: 200, CellInstr: 120}
}

// slabRange block-distributes total items over slabs.
func slabRange(slab, slabs, total int) (lo, hi int) {
	per := total / slabs
	rem := total % slabs
	lo = slab*per + minInt(slab, rem)
	hi = lo + per
	if slab < rem {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// NewBT builds the workload with a deterministic initial field.
func NewBT(m *machine.Machine, p BTParams) *BT {
	mustMachine(m, "bt")
	w := &BT{m: m, p: p}
	n := p.Dim * p.Dim * p.Dim * 5
	w.cur = make([]float64, n)
	w.next = make([]float64, n)
	r := newRNG(0xb7)
	for i := range w.cur {
		w.cur[i] = r.float64()
	}
	w.curAddr = m.Alloc(8 * n)
	w.nextAddr = m.Alloc(8 * n)

	d := p.Dim
	cells := d * d * d
	w.kernel = &phasedKernel{
		name:  "bt",
		steps: p.Steps,
		phases: []phase{{
			slabs: btSlabs,
			run: func(tc *thread.Ctx, slab int) {
				lo, hi := slabRange(slab, btSlabs, cells)
				if hi <= lo {
					return
				}
				tc.LoadRange(w.curAddr+uint64(8*5*lo), 8*5*(hi-lo))
				tc.Exec(uint64(hi-lo) * w.p.CellInstr)
				for c := lo; c < hi; c++ {
					w.updateCell(c/(d*d), c/d%d, c%d)
				}
				tc.StoreRange(w.nextAddr+uint64(8*5*lo), 8*5*(hi-lo))
			},
			after: func() {
				w.cur, w.next = w.next, w.cur
				w.curAddr, w.nextAddr = w.nextAddr, w.curAddr
			},
		}},
	}
	return w
}

// Name implements core.Workload.
func (w *BT) Name() string { return "bt" }

// Kernels implements core.Workload.
func (w *BT) Kernels() []core.Kernel { return []core.Kernel{w.kernel} }

func (w *BT) cellIndex(x, y, z int) int {
	d := w.p.Dim
	x, y, z = (x+d)%d, (y+d)%d, (z+d)%d
	return ((x*d+y)*d + z) * 5
}

// updateCell computes one cell's next value from its six neighbours —
// a damped averaging update that is numerically stable over any
// number of steps.
func (w *BT) updateCell(x, y, z int) {
	i := w.cellIndex(x, y, z)
	nb := [6]int{
		w.cellIndex(x-1, y, z), w.cellIndex(x+1, y, z),
		w.cellIndex(x, y-1, z), w.cellIndex(x, y+1, z),
		w.cellIndex(x, y, z-1), w.cellIndex(x, y, z+1),
	}
	for v := 0; v < 5; v++ {
		sum := 0.0
		for _, b := range nb {
			sum += w.cur[b+v]
		}
		w.next[i+v] = 0.4*w.cur[i+v] + 0.1*sum
	}
}

// Checksum reduces the field to one number for verification.
func (w *BT) Checksum() float64 {
	var s float64
	for _, v := range w.cur {
		s += v
	}
	return s
}

// Verify replays the same number of steps serially from the same
// initial field and compares checksums.
func (w *BT) Verify() error {
	ref := NewBT(machine.MustNew(machine.DefaultConfig()), w.p)
	d := w.p.Dim
	for step := 0; step < w.p.Steps; step++ {
		for c := 0; c < d*d*d; c++ {
			ref.updateCell(c/(d*d), c/d%d, c%d)
		}
		ref.cur, ref.next = ref.next, ref.cur
	}
	want, got := ref.Checksum(), w.Checksum()
	if math.Abs(want-got) > 1e-9*math.Abs(want) {
		return fmt.Errorf("bt: checksum %v, want %v", got, want)
	}
	return nil
}

func init() {
	register(Info{
		Name:    "bt",
		Class:   Scalable,
		Problem: "Fluid dynamics",
		Input:   "10x10x10 x 200 steps",
		Factory: func(m *machine.Machine) core.Workload {
			return NewBT(m, DefaultBTParams())
		},
	})
}

// Setup implements core.SetupWorkload: the serial field
// initialization touches both buffers, warming the on-chip caches
// with the grid.
func (w *BT) Setup(c *thread.Ctx) {
	n := len(w.cur)
	c.StoreRange(w.curAddr, 8*n)
	c.StoreRange(w.nextAddr, 8*n)
	c.Exec(uint64(2 * n))
}
