package workloads

import (
	"fmt"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// EP re-implements the NAS "embarrassingly parallel" kernel as the
// paper uses it: a linear-congruential pseudo-random number generator
// whose threads draw numbers independently and periodically fold
// their tallies (acceptance counts per annulus) into shared global
// counters inside a critical section. The periodic merge is what
// makes it synchronization-limited at small thread counts (Fig 8d:
// best at 4 threads, SAT predicts 5).
type EP struct {
	m *machine.Machine
	p EPParams

	tallyAddr uint64
	lock      *thread.Lock

	global [epAnnuli]uint64
	sumX   float64
}

const epAnnuli = 10

// EPParams sizes EP.
type EPParams struct {
	// N is the total numbers to generate (paper: 262K; scaled 64K).
	N int
	// Batch is the numbers per kernel iteration.
	Batch int
	// GenInstr is the per-number generation + classification work.
	GenInstr uint64
	// MergeInstr is the critical-section work per merge.
	MergeInstr uint64
}

// DefaultEPParams returns the scaled Table-2 input.
func DefaultEPParams() EPParams {
	return EPParams{
		N:          64 << 10,
		Batch:      128,
		GenInstr:   24,
		MergeInstr: 150,
	}
}

// lcg is the NAS-style linear congruential generator: deterministic,
// and — crucially for a parallel PRNG — skippable, so each thread can
// jump to its own subsequence without coordination.
type lcg struct{ s uint64 }

const (
	lcgA = 6364136223846793005
	lcgC = 1442695040888963407
)

func (g *lcg) next() uint64 {
	g.s = g.s*lcgA + lcgC
	return g.s
}

// lcgAt returns the generator state after n steps from seed — the
// standard O(log n) LCG jump, used to give iteration i an
// interleaving-independent subsequence.
func lcgAt(seed uint64, n uint64) lcg {
	a, c := uint64(lcgA), uint64(lcgC)
	aj, cj := uint64(1), uint64(0)
	for n > 0 {
		if n&1 == 1 {
			aj = aj * a
			cj = cj*a + c
		}
		c = c*a + c
		a = a * a
		n >>= 1
	}
	return lcg{s: seed*aj + cj}
}

// NewEP builds the workload.
func NewEP(m *machine.Machine, p EPParams) *EP {
	mustMachine(m, "ep")
	w := &EP{m: m, p: p}
	w.tallyAddr = m.Alloc(8 * epAnnuli)
	w.lock = thread.NewLock(m)
	return w
}

// Name implements core.Workload.
func (w *EP) Name() string { return "ep" }

// Kernels implements core.Workload.
func (w *EP) Kernels() []core.Kernel { return []core.Kernel{w} }

// Iterations implements core.Kernel: one iteration per batch.
func (w *EP) Iterations() int {
	return (w.p.N + w.p.Batch - 1) / w.p.Batch
}

// RunChunk implements core.Kernel: each iteration's batch is split
// across the team; every thread generates its sub-batch from a jumped
// LCG, classifies the draws into annuli, and merges its tallies into
// the global counters inside the critical section.
func (w *EP) RunChunk(master *thread.Ctx, n, lo, hi int) {
	bar := &thread.Barrier{}
	master.Fork(n, func(tc *thread.Ctx) {
		for it := lo; it < hi; it++ {
			batchLo := it * w.p.Batch
			batchHi := batchLo + w.p.Batch
			if batchHi > w.p.N {
				batchHi = w.p.N
			}
			myLo, myHi := tc.Range(batchLo, batchHi)

			var local [epAnnuli]uint64
			var localSum float64
			if myHi > myLo {
				g := lcgAt(0x2545f49, uint64(myLo))
				tc.Exec(uint64(myHi-myLo) * w.p.GenInstr)
				for i := myLo; i < myHi; i++ {
					u := float64(g.next()>>11) / float64(1<<53)
					local[int(u*epAnnuli)]++
					localSum += u
				}
			}

			tc.Critical(w.lock, func() {
				tc.LoadRange(w.tallyAddr, 8*epAnnuli)
				tc.Exec(w.p.MergeInstr)
				tc.StoreRange(w.tallyAddr, 8*epAnnuli)
				for a, v := range local {
					w.global[a] += v
				}
				w.sumX += localSum
			})
			tc.Barrier(bar)
		}
	})
}

// Verify regenerates the full sequence serially and compares tallies.
func (w *EP) Verify() error {
	var want [epAnnuli]uint64
	g := lcgAt(0x2545f49, 0)
	var total uint64
	for i := 0; i < w.p.N; i++ {
		u := float64(g.next()>>11) / float64(1<<53)
		want[int(u*epAnnuli)]++
		total++
	}
	var got uint64
	for a := range want {
		got += w.global[a]
		if w.global[a] != want[a] {
			return fmt.Errorf("ep: annulus %d = %d, want %d", a, w.global[a], want[a])
		}
	}
	if got != total {
		return fmt.Errorf("ep: generated %d numbers, want %d", got, total)
	}
	return nil
}

func init() {
	register(Info{
		Name:    "ep",
		Class:   CSLimited,
		Problem: "Linear Congruential PRNG",
		Input:   "64K numbers",
		Factory: func(m *machine.Machine) core.Workload {
			return NewEP(m, DefaultEPParams())
		},
	})
}
