// Package workloads re-implements the paper's twelve multi-threaded
// applications (Table 2) against the simulated machine. Each workload
// performs its real computation in Go (histograms are really counted,
// keys really sorted, options really priced) while driving the
// simulator with the memory accesses, critical sections and barriers
// the paper describes — so tests can verify both the computed results
// and the timing behaviour.
//
// Inputs are scaled relative to the paper (DESIGN.md Section 5): the
// phenomena FDT exploits depend on ratios — the fraction of time in
// critical sections, the per-thread bus demand — which each workload
// documents and tunes to land in the paper's reported ranges.
package workloads

import (
	"fmt"

	"fdt/internal/core"
	"fdt/internal/machine"
)

// Class is the paper's three-way workload taxonomy (Table 2).
type Class int

const (
	// CSLimited marks workloads limited by data-synchronization.
	CSLimited Class = iota
	// BWLimited marks workloads limited by off-chip bandwidth.
	BWLimited
	// Scalable marks workloads limited by neither.
	Scalable
)

// String names the class as in Table 2.
func (c Class) String() string {
	switch c {
	case CSLimited:
		return "CS-limited"
	case BWLimited:
		return "BW-limited"
	case Scalable:
		return "Scalable"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Verifier is implemented by workloads whose computed results can be
// checked against a serial reference after a run.
type Verifier interface {
	// Verify reports an error if the workload's computation produced
	// a wrong answer.
	Verify() error
}

// Info describes one registered workload.
type Info struct {
	// Name is the registry key ("pagemine", "isort", ...).
	Name string
	// Class is the Table-2 category.
	Class Class
	// Problem is Table 2's problem description.
	Problem string
	// Input is Table 2's input-set column (our scaled defaults).
	Input string
	// Factory builds the workload with default parameters.
	Factory core.Factory
}

var registry []Info

// extras holds workloads beyond the paper's Table 2 (synthetic
// stress cases, ablation drivers). They resolve through ByName like
// any workload but stay out of All()/ByClass(), so Table 2 and the
// whole-suite figures keep the paper's twelve applications.
var extras []Info

func register(i Info)      { registry = append(registry, i) }
func registerExtra(i Info) { extras = append(extras, i) }

// All lists every registered workload in Table-2 order.
func All() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	return out
}

// Extras lists the registered non-Table-2 workloads.
func Extras() []Info {
	out := make([]Info, len(extras))
	copy(out, extras)
	return out
}

// ByClass lists workloads of one class in registry order.
func ByClass(c Class) []Info {
	var out []Info
	for _, i := range registry {
		if i.Class == c {
			out = append(out, i)
		}
	}
	return out
}

// ByName finds a workload by registry key, consulting the Table-2
// registry first and the extras after it.
func ByName(name string) (Info, bool) {
	for _, i := range registry {
		if i.Name == name {
			return i, true
		}
	}
	for _, i := range extras {
		if i.Name == name {
			return i, true
		}
	}
	return Info{}, false
}

// rng is a small deterministic generator (xorshift64*) used to build
// reproducible synthetic inputs. Workloads must not depend on host
// randomness: identical runs must produce identical simulations.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// float64 returns a value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// mustMachine asserts workload constructors got a machine.
func mustMachine(m *machine.Machine, name string) {
	if m == nil {
		panic(fmt.Sprintf("workloads: %s constructed without a machine", name))
	}
}
