package workloads

import (
	"fmt"
	"math"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// MG re-implements the computational pattern of the NAS MG multigrid
// solver: V-cycles that smooth a fine 3D grid, restrict the residual
// to a coarse grid, smooth there, and prolongate back. Both grids
// stay on chip and the arithmetic dominates, so the kernel scales —
// FDT must keep it at 32 threads.
type MG struct {
	m *machine.Machine
	p MGParams

	fine, fineNext       []float64
	coarse, coarseNext   []float64
	fineAddr, coarseAddr uint64

	kernel *phasedKernel
}

// Slab counts for the V-cycle's four parallel phases. The fine-grid
// phases split finer than the coarse ones, keeping per-slab work
// roughly even.
const (
	mgFineSlabs   = 32
	mgCoarseSlabs = 8
)

// MGParams sizes MG.
type MGParams struct {
	// Dim is the fine-grid edge (paper: 64; scaled 24).
	Dim int
	// Cycles is the number of V-cycles (kernel iterations).
	Cycles int
	// PointInstr is the per-point smoothing work.
	PointInstr uint64
}

// DefaultMGParams returns the scaled Table-2 input.
func DefaultMGParams() MGParams {
	return MGParams{Dim: 16, Cycles: 150, PointInstr: 24}
}

// NewMG builds the workload with a deterministic initial field.
func NewMG(m *machine.Machine, p MGParams) *MG {
	mustMachine(m, "mg")
	if p.Dim%2 != 0 {
		panic("mg: Dim must be even for restriction")
	}
	w := &MG{m: m, p: p}
	nf := p.Dim * p.Dim * p.Dim
	nc := nf / 8
	w.fine = make([]float64, nf)
	w.fineNext = make([]float64, nf)
	w.coarse = make([]float64, nc)
	w.coarseNext = make([]float64, nc)
	r := newRNG(0x3197)
	for i := range w.fine {
		w.fine[i] = r.float64()
	}
	w.fineAddr = m.Alloc(8 * nf)
	w.coarseAddr = m.Alloc(8 * nc)
	w.buildKernel()
	return w
}

// buildKernel assembles the V-cycle as a phased kernel: smooth(fine)
// -> restrict -> smooth(coarse) -> prolongate, with slabs as the FDT
// iterations.
func (w *MG) buildKernel() {
	d := w.p.Dim
	dc := d / 2
	nf := d * d * d
	nc := nf / 8
	fineSlab := func(tc *thread.Ctx, slab int, work func(lo, hi int)) {
		lo, hi := slabRange(slab, mgFineSlabs, nf)
		w.slabMem(tc, w.fineAddr, lo, hi, work)
	}
	coarseSlab := func(tc *thread.Ctx, slab int, work func(lo, hi int)) {
		lo, hi := slabRange(slab, mgCoarseSlabs, nc)
		w.slabMem(tc, w.coarseAddr, lo, hi, work)
	}
	w.kernel = &phasedKernel{
		name:  "mg",
		steps: w.p.Cycles,
		phases: []phase{
			{
				slabs: mgFineSlabs,
				run: func(tc *thread.Ctx, s int) {
					fineSlab(tc, s, func(lo, hi int) { smooth(w.fine, w.fineNext, d, lo, hi) })
				},
				after: func() { w.fine, w.fineNext = w.fineNext, w.fine },
			},
			{
				slabs: mgCoarseSlabs,
				run: func(tc *thread.Ctx, s int) {
					coarseSlab(tc, s, func(lo, hi int) {
						for c := lo; c < hi; c++ {
							x, y, z := c/(dc*dc), c/dc%dc, c%dc
							sum := 0.0
							for ox := 0; ox < 2; ox++ {
								for oy := 0; oy < 2; oy++ {
									for oz := 0; oz < 2; oz++ {
										sum += w.fine[idx3(2*x+ox, 2*y+oy, 2*z+oz, d)]
									}
								}
							}
							w.coarse[c] = sum / 8
						}
					})
				},
			},
			{
				slabs: mgCoarseSlabs,
				run: func(tc *thread.Ctx, s int) {
					coarseSlab(tc, s, func(lo, hi int) { smooth(w.coarse, w.coarseNext, dc, lo, hi) })
				},
				after: func() { w.coarse, w.coarseNext = w.coarseNext, w.coarse },
			},
			{
				slabs: mgFineSlabs,
				run: func(tc *thread.Ctx, s int) {
					fineSlab(tc, s, func(lo, hi int) {
						for c := lo; c < hi; c++ {
							x, y, z := c/(d*d), c/d%d, c%d
							w.fine[c] = 0.75*w.fine[c] + 0.25*w.coarse[idx3(x/2, y/2, z/2, dc)]
						}
					})
				},
			},
		},
	}
}

// slabMem charges a slab's memory traffic and compute, then performs
// the real arithmetic.
func (w *MG) slabMem(tc *thread.Ctx, addr uint64, lo, hi int, work func(lo, hi int)) {
	if hi <= lo {
		return
	}
	tc.LoadRange(addr+uint64(8*lo), 8*(hi-lo))
	tc.Exec(uint64(hi-lo) * w.p.PointInstr)
	work(lo, hi)
	tc.StoreRange(addr+uint64(8*lo), 8*(hi-lo))
}

// Name implements core.Workload.
func (w *MG) Name() string { return "mg" }

// Kernels implements core.Workload.
func (w *MG) Kernels() []core.Kernel { return []core.Kernel{w.kernel} }

func idx3(x, y, z, d int) int {
	x, y, z = (x+d)%d, (y+d)%d, (z+d)%d
	return (x*d+y)*d + z
}

// smooth performs one Jacobi smoothing step of src into dst over the
// block [lo, hi) of a d-edged grid.
func smooth(src, dst []float64, d, lo, hi int) {
	for c := lo; c < hi; c++ {
		x, y, z := c/(d*d), c/d%d, c%d
		sum := src[idx3(x-1, y, z, d)] + src[idx3(x+1, y, z, d)] +
			src[idx3(x, y-1, z, d)] + src[idx3(x, y+1, z, d)] +
			src[idx3(x, y, z-1, d)] + src[idx3(x, y, z+1, d)]
		dst[c] = 0.5*src[c] + sum/12
	}
}

// Checksum reduces the fine grid to one number.
func (w *MG) Checksum() float64 {
	var s float64
	for _, v := range w.fine {
		s += v
	}
	return s
}

// Verify replays the V-cycles serially and compares checksums.
func (w *MG) Verify() error {
	ref := NewMG(machine.MustNew(machine.DefaultConfig()), w.p)
	d := ref.p.Dim
	dc := d / 2
	nf := d * d * d
	nc := nf / 8
	for cyc := 0; cyc < ref.p.Cycles; cyc++ {
		smooth(ref.fine, ref.fineNext, d, 0, nf)
		ref.fine, ref.fineNext = ref.fineNext, ref.fine
		for c := 0; c < nc; c++ {
			x, y, z := c/(dc*dc), c/dc%dc, c%dc
			sum := 0.0
			for ox := 0; ox < 2; ox++ {
				for oy := 0; oy < 2; oy++ {
					for oz := 0; oz < 2; oz++ {
						sum += ref.fine[idx3(2*x+ox, 2*y+oy, 2*z+oz, d)]
					}
				}
			}
			ref.coarse[c] = sum / 8
		}
		smooth(ref.coarse, ref.coarseNext, dc, 0, nc)
		ref.coarse, ref.coarseNext = ref.coarseNext, ref.coarse
		for c := 0; c < nf; c++ {
			x, y, z := c/(d*d), c/d%d, c%d
			ref.fine[c] = 0.75*ref.fine[c] + 0.25*ref.coarse[idx3(x/2, y/2, z/2, dc)]
		}
	}
	want, got := ref.Checksum(), w.Checksum()
	if math.Abs(want-got) > 1e-9*math.Abs(want) {
		return fmt.Errorf("mg: checksum %v, want %v", got, want)
	}
	return nil
}

func init() {
	register(Info{
		Name:    "mg",
		Class:   Scalable,
		Problem: "Multi-grid solver",
		Input:   "16x16x16 x 150 V-cycles",
		Factory: func(m *machine.Machine) core.Workload {
			return NewMG(m, DefaultMGParams())
		},
	})
}

// Setup implements core.SetupWorkload: serial initialization of both
// grids, warming the on-chip caches.
func (w *MG) Setup(c *thread.Ctx) {
	c.StoreRange(w.fineAddr, 8*len(w.fine))
	c.StoreRange(w.coarseAddr, 8*len(w.coarse))
	c.Exec(uint64(len(w.fine) + len(w.coarse)))
}
