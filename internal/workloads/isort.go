package workloads

import (
	"fmt"
	"sort"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// ISort re-implements the NAS Integer Sort ranking kernel: every
// iteration the keys are bucket-counted — threads count their key
// ranges into private histograms in parallel, then merge into the
// shared bucket array inside a critical section, then rank. The merge
// serializes, which is what makes IS synchronization-limited on CMPs.
//
// Tuning target: single-thread CS fraction ~3%, P_CS ~ 5-7 (paper:
// execution time minimized at 7 threads, Fig 8b).
type ISort struct {
	m *machine.Machine
	p ISortParams

	keys     []uint32
	keysAddr uint64
	bktAddr  uint64
	lock     *thread.Lock

	counts []uint64 // shared bucket counts of the last repeat
	ranks  []uint32 // final ranking, computed by Finish
}

// ISortParams sizes ISort.
type ISortParams struct {
	// N is the key count (paper: 64K; scaled 4K, ranked 500 times).
	N int
	// Buckets is the number of count buckets.
	Buckets int
	// Repeats is the number of ranking iterations (NAS IS performs
	// repeated rankings); each is one kernel iteration.
	Repeats int
	// WorkPerKeyInstr is the per-key classify work.
	WorkPerKeyInstr uint64
	// MergePerBucketInstr is the critical-section work per bucket.
	MergePerBucketInstr uint64
}

// DefaultISortParams returns the scaled Table-2 input.
func DefaultISortParams() ISortParams {
	return ISortParams{
		N:                   4 << 10,
		Buckets:             16,
		Repeats:             500,
		WorkPerKeyInstr:     2,
		MergePerBucketInstr: 48,
	}
}

// NewISort builds the workload: deterministic keys in simulated
// memory plus the shared bucket array.
func NewISort(m *machine.Machine, p ISortParams) *ISort {
	mustMachine(m, "isort")
	w := &ISort{m: m, p: p}
	w.keys = make([]uint32, p.N)
	r := newRNG(0x150f7)
	for i := range w.keys {
		w.keys[i] = uint32(r.intn(p.Buckets))
	}
	w.keysAddr = m.Alloc(4 * p.N)
	w.lock = thread.NewLock(m)
	w.bktAddr = m.Alloc(8 * p.Buckets)
	w.counts = make([]uint64, p.Buckets)
	return w
}

// Name implements core.Workload.
func (w *ISort) Name() string { return "isort" }

// Kernels implements core.Workload.
func (w *ISort) Kernels() []core.Kernel { return []core.Kernel{w} }

// Iterations implements core.Kernel: one iteration per ranking pass.
func (w *ISort) Iterations() int { return w.p.Repeats }

// RunChunk implements core.Kernel.
func (w *ISort) RunChunk(master *thread.Ctx, n, lo, hi int) {
	bar := &thread.Barrier{}
	master.Fork(n, func(tc *thread.Ctx) {
		local := make([]uint64, w.p.Buckets)
		for rep := lo; rep < hi; rep++ {
			// Thread 0 clears the shared counts for this pass.
			if tc.ID == 0 {
				for b := range w.counts {
					w.counts[b] = 0
				}
				tc.StoreRange(w.bktAddr, 8*w.p.Buckets)
			}
			tc.Barrier(bar)

			// Parallel: count this thread's key range.
			myLo, myHi := tc.Range(0, w.p.N)
			if myHi > myLo {
				tc.LoadRange(w.keysAddr+uint64(4*myLo), 4*(myHi-myLo))
				tc.Exec(uint64(myHi-myLo) * w.p.WorkPerKeyInstr)
				for i := myLo; i < myHi; i++ {
					local[w.keys[i]]++
				}
			}

			// Serial: merge into the shared bucket array.
			tc.Critical(w.lock, func() {
				tc.LoadRange(w.bktAddr, 8*w.p.Buckets)
				tc.Exec(uint64(w.p.Buckets) * w.p.MergePerBucketInstr)
				tc.StoreRange(w.bktAddr, 8*w.p.Buckets)
				for b, v := range local {
					w.counts[b] += v
					local[b] = 0
				}
			})
			tc.Barrier(bar)
		}
	})
}

// Finish computes the final key ranking from the last pass's bucket
// counts (serial epilogue, done in host code).
func (w *ISort) Finish() {
	prefix := make([]uint64, w.p.Buckets)
	var run uint64
	for b := 0; b < w.p.Buckets; b++ {
		prefix[b] = run
		run += w.counts[b]
	}
	w.ranks = make([]uint32, w.p.N)
	cursor := make([]uint64, w.p.Buckets)
	for _, k := range w.keys {
		w.ranks[prefix[k]+cursor[k]] = k
		cursor[k]++
	}
}

// Verify checks the bucket counts against a serial count and, if
// Finish ran, that the ranking is a sorted permutation of the keys.
func (w *ISort) Verify() error {
	want := make([]uint64, w.p.Buckets)
	for _, k := range w.keys {
		want[k]++
	}
	for b := range want {
		if w.counts[b] != want[b] {
			return fmt.Errorf("isort: bucket %d = %d, want %d", b, w.counts[b], want[b])
		}
	}
	if w.ranks != nil {
		if len(w.ranks) != w.p.N {
			return fmt.Errorf("isort: rank length %d, want %d", len(w.ranks), w.p.N)
		}
		if !sort.SliceIsSorted(w.ranks, func(i, j int) bool { return w.ranks[i] < w.ranks[j] }) {
			return fmt.Errorf("isort: ranking is not sorted")
		}
	}
	return nil
}

func init() {
	register(Info{
		Name:    "isort",
		Class:   CSLimited,
		Problem: "Integer sort",
		Input:   "n = 4K x 500 rankings",
		Factory: func(m *machine.Machine) core.Workload {
			return NewISort(m, DefaultISortParams())
		},
	})
}
