package workloads

import (
	"fmt"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// Transpose re-implements the CUDA-SDK-derived 2D matrix transpose:
// each thread operates on a different column block of the input,
// reading with a large stride (every access a fresh line) and writing
// the output rows sequentially. Both matrices stream from memory
// exactly once, so per-thread bus demand is high (Section 5.3: bus
// utilization 12.2% with one thread, BAT predicts 8, Fig 12c).
type Transpose struct {
	m *machine.Machine
	p TransposeParams

	in      []float64 // rows x cols, row-major
	out     []float64 // cols x rows, row-major
	inAddr  uint64
	outAddr uint64
}

// TransposeParams sizes Transpose.
type TransposeParams struct {
	// Rows and Cols size the input matrix (paper: 512x8192; scaled
	// 256x512 = 1MB per matrix).
	Rows, Cols int
	// ElemInstr is the per-element copy work.
	ElemInstr uint64
}

// DefaultTransposeParams returns the scaled Table-2 input.
func DefaultTransposeParams() TransposeParams {
	return TransposeParams{Rows: 128, Cols: 2048, ElemInstr: 4}
}

// NewTranspose builds the workload with a deterministic matrix.
func NewTranspose(m *machine.Machine, p TransposeParams) *Transpose {
	mustMachine(m, "transpose")
	w := &Transpose{m: m, p: p}
	n := p.Rows * p.Cols
	w.in = make([]float64, n)
	r := newRNG(0x7245)
	for i := range w.in {
		w.in[i] = r.float64()
	}
	w.out = make([]float64, n)
	w.inAddr = m.Alloc(8 * n)
	w.outAddr = m.Alloc(8 * n)
	return w
}

// Name implements core.Workload.
func (w *Transpose) Name() string { return "transpose" }

// Kernels implements core.Workload.
func (w *Transpose) Kernels() []core.Kernel { return []core.Kernel{w} }

// groupCols is the column-group width: one cache line of float64s.
// Grouping makes every kernel iteration homogeneous — each group
// fetches its input lines cold exactly once — which is what the FDT
// training loop's stability criterion expects of well-formed
// iterations.
const groupCols = 8

// Iterations implements core.Kernel: one iteration per group of
// groupCols input columns.
func (w *Transpose) Iterations() int {
	return (w.p.Cols + groupCols - 1) / groupCols
}

// RunChunk implements core.Kernel: column groups [lo, hi) split
// across the team. Within a group the thread walks each column j over
// every row i, loading in[i][j] (strided — a fresh line per row for
// the group's first column, line hits for the rest) and storing
// out[j][i] (sequential, write-buffered).
func (w *Transpose) RunChunk(master *thread.Ctx, n, lo, hi int) {
	master.Fork(n, func(tc *thread.Ctx) {
		myLo, myHi := tc.Range(lo, hi)
		for g := myLo; g < myHi; g++ {
			jHi := (g + 1) * groupCols
			if jHi > w.p.Cols {
				jHi = w.p.Cols
			}
			for j := g * groupCols; j < jHi; j++ {
				for i := 0; i < w.p.Rows; i++ {
					tc.Load(w.inAddr + uint64(8*(i*w.p.Cols+j)))
					w.out[j*w.p.Rows+i] = w.in[i*w.p.Cols+j]
				}
				tc.Exec(uint64(w.p.Rows) * w.p.ElemInstr)
				tc.StoreRange(w.outAddr+uint64(8*j*w.p.Rows), 8*w.p.Rows)
			}
		}
	})
}

// Verify checks out == in^T element-wise.
func (w *Transpose) Verify() error {
	for i := 0; i < w.p.Rows; i++ {
		for j := 0; j < w.p.Cols; j++ {
			if w.out[j*w.p.Rows+i] != w.in[i*w.p.Cols+j] {
				return fmt.Errorf("transpose: out[%d][%d] != in[%d][%d]", j, i, i, j)
			}
		}
	}
	return nil
}

func init() {
	register(Info{
		Name:    "transpose",
		Class:   BWLimited,
		Problem: "2D matrix transpose",
		Input:   "128x2048",
		Factory: func(m *machine.Machine) core.Workload {
			return NewTranspose(m, DefaultTransposeParams())
		},
	})
}
