package workloads

import (
	"fmt"
	"math"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// The gauntlet is a family of adversarial synthetic kernels, each
// engineered to break one assumption behind the FDT model equations
// (no paper counterpart; registered as extras, outside Table 2). They
// exist to score controllers on robustness: the paper's policies are
// correct when Eq. 3/5/7's assumptions hold, and the gauntlet is the
// set of worlds where they don't.
//
//	oscillate — sub-phases alternate faster than the monitor interval,
//	            so every execution interval has a different phase mix:
//	            the adaptive pipeline's drift test fires continuously
//	            and retraining thrashes (each retrain trains on one
//	            sub-phase and decides for the wrong mixture).
//	csdep     — the critical-section cost scales with the team size, so
//	            Eq. 3's premise (T_CS measured once, at one thread, is
//	            the T_CS of every allocation) is false. Behaviour is
//	            perfectly stationary in time — the monitor never sees
//	            drift — but single-threaded training wildly
//	            underestimates contention and SAT over-allocates.
//	busstorm  — bus traffic arrives in periodic bursts riding
//	            busburst's quiet/stream pattern. Training lands in a
//	            quiet stretch, BAT excludes bandwidth, and the decision
//	            is blind to the storms; every burst edge drifts.
//	eqclash   — a bandwidth-saturated streaming prefix covers the
//	            entire training window, then the kernel turns embarrassingly
//	            parallel: Eq. 5 reads "2 threads", Eq. 3 reads "no
//	            critical sections, take all 32" — maximal disagreement,
//	            with the training window deciding which wins.
//
// All members compute a real reduction (Verify checks it), and all
// randomness is a seeded xorshift at construction time — identical
// runs produce identical simulations.

// Adversary is one gauntlet kernel; Kind selects the member.
type Adversary struct {
	m *machine.Machine
	p AdversaryParams

	vec        []float64
	vecAddr    uint64
	streamAddr uint64
	lock       *thread.Lock
	accAddr    uint64

	sum float64
}

// AdversaryParams sizes an Adversary.
type AdversaryParams struct {
	// Kind selects the member: "oscillate", "csdep", "busstorm" or
	// "eqclash".
	Kind string
	// Iters is the kernel length.
	Iters int
	// Elems is the elements processed per iteration.
	Elems int
	// ComputeInstr is the per-element arithmetic of compute iterations.
	ComputeInstr uint64
	// MergeInstr is the critical-section work of one merge (oscillate:
	// per merging thread; csdep: multiplied by the team size — the
	// assumption breaker).
	MergeInstr uint64
	// StreamInstr is the per-element arithmetic of streaming
	// iterations (busstorm, eqclash).
	StreamInstr uint64
	// HalfPeriod is oscillate's sub-phase length in iterations; a full
	// scalable+CS period is twice this. Keep it under the monitor
	// interval to make interval composition vary.
	HalfPeriod int
	// QuietIters/BurstIters are busstorm's repeating pattern: each
	// period streams for BurstIters after QuietIters of quiet compute.
	QuietIters, BurstIters int
	// PrefixIters is eqclash's bandwidth-saturated prefix length.
	PrefixIters int
	// Seed seeds the input generator.
	Seed uint64
}

// DefaultAdversaryParams returns the gauntlet configuration of one
// member kind.
func DefaultAdversaryParams(kind string) AdversaryParams {
	p := AdversaryParams{
		Kind:         kind,
		Iters:        960,
		Elems:        2048,
		ComputeInstr: 4,
		Seed:         0xad7e,
	}
	switch kind {
	case "oscillate":
		p.MergeInstr = 100
		p.HalfPeriod = 24
	case "csdep":
		p.Iters = 768
		p.MergeInstr = 8
	case "busstorm":
		p.Iters = 1024
		p.StreamInstr = 2
		p.QuietIters = 96
		p.BurstIters = 32
	case "eqclash":
		p.Iters = 1024
		p.StreamInstr = 2
		p.PrefixIters = 256
	}
	return p
}

// NewAdversary builds the workload on m.
func NewAdversary(m *machine.Machine, p AdversaryParams) *Adversary {
	mustMachine(m, "gauntlet")
	switch p.Kind {
	case "oscillate", "csdep", "busstorm", "eqclash":
	default:
		panic(fmt.Sprintf("workloads: unknown adversary kind %q", p.Kind))
	}
	w := &Adversary{m: m, p: p}
	w.vec = make([]float64, p.Elems)
	r := newRNG(p.Seed)
	for i := range w.vec {
		w.vec[i] = r.float64()*2 - 1
	}
	w.vecAddr = m.Alloc(8 * p.Elems)
	if blocks := w.streamBlocks(p.Iters); blocks > 0 {
		w.streamAddr = m.Alloc(8 * p.Elems * blocks)
	}
	w.lock = thread.NewLock(m)
	w.accAddr = m.Alloc(64)
	return w
}

// Name implements core.Workload.
func (w *Adversary) Name() string { return "gauntlet/" + w.p.Kind }

// Kernels implements core.Workload: one kernel, so only the controller
// — not per-kernel retraining — can react to anything.
func (w *Adversary) Kernels() []core.Kernel { return []core.Kernel{w} }

// Setup implements core.SetupWorkload.
func (w *Adversary) Setup(c *thread.Ctx) {
	c.LoadRange(w.vecAddr, 8*w.p.Elems)
}

// Iterations implements core.Kernel.
func (w *Adversary) Iterations() int { return w.p.Iters }

// csIter reports whether iteration it merges under the lock.
func (w *Adversary) csIter(it int) bool {
	switch w.p.Kind {
	case "oscillate":
		return (it/w.p.HalfPeriod)%2 == 1
	case "csdep":
		return true
	}
	return false
}

// streamIter reports whether iteration it streams a fresh block.
func (w *Adversary) streamIter(it int) bool {
	switch w.p.Kind {
	case "busstorm":
		return it%(w.p.QuietIters+w.p.BurstIters) >= w.p.QuietIters
	case "eqclash":
		return it < w.p.PrefixIters
	}
	return false
}

// streamBlocks counts the streaming iterations in [0, it) — the block
// index of iteration it, and (at it = Iters) the allocation size.
func (w *Adversary) streamBlocks(it int) int {
	switch w.p.Kind {
	case "busstorm":
		period := w.p.QuietIters + w.p.BurstIters
		n := (it / period) * w.p.BurstIters
		if rem := it % period; rem > w.p.QuietIters {
			n += rem - w.p.QuietIters
		}
		return n
	case "eqclash":
		if it > w.p.PrefixIters {
			return w.p.PrefixIters
		}
		return it
	}
	return 0
}

// RunChunk implements core.Kernel: iterations [lo, hi) on a team of
// n, each ending at a barrier.
func (w *Adversary) RunChunk(master *thread.Ctx, n, lo, hi int) {
	bar := &thread.Barrier{}
	master.Fork(n, func(tc *thread.Ctx) {
		var partial float64
		for it := lo; it < hi; it++ {
			myLo, myHi := tc.Range(0, w.p.Elems)
			share := uint64(myHi - myLo)
			if share > 0 {
				base := w.vecAddr + uint64(8*myLo)
				instr := w.p.ComputeInstr
				if w.streamIter(it) {
					base = w.streamAddr + uint64(8*(w.streamBlocks(it)*w.p.Elems+myLo))
					instr = w.p.StreamInstr
				}
				tc.LoadRange(base, int(8*share))
				tc.Exec(share * instr)
				for i := myLo; i < myHi; i++ {
					partial += w.vec[i] * w.vec[i]
				}
			}
			if w.csIter(it) {
				tc.Critical(w.lock, func() {
					merge := w.p.MergeInstr
					if w.p.Kind == "csdep" {
						// The assumption breaker: the merge walks a
						// structure that grows with the team, so its cost
						// scales with the allocation — single-threaded
						// training sees the cheapest possible merge.
						merge *= uint64(tc.Size)
					}
					tc.Load(w.accAddr)
					tc.Exec(merge)
					tc.Store(w.accAddr)
					w.sum += partial
					partial = 0
				})
			}
			tc.Barrier(bar)
		}
		if partial != 0 {
			tc.Critical(w.lock, func() {
				tc.Exec(4)
				w.sum += partial
			})
		}
	})
}

// Verify recomputes the reduction serially: every iteration of every
// member accumulates the shared vector's sum of squares (streaming
// iterations stream separate memory but reduce the shared vector).
func (w *Adversary) Verify() error {
	var per float64
	for _, v := range w.vec {
		per += v * v
	}
	want := per * float64(w.p.Iters)
	if diff := math.Abs(want - w.sum); diff > 1e-6*math.Abs(want) {
		return fmt.Errorf("%s: sum %v, want %v", w.Name(), w.sum, want)
	}
	return nil
}

// GauntletMember describes one gauntlet entry for listings and the
// robustness experiment.
type GauntletMember struct {
	// Name is the registry key ("gauntlet/oscillate", ...).
	Name string
	// Breaks names the model assumption the member violates.
	Breaks string
}

// GauntletMembers lists the gauntlet in registration order.
func GauntletMembers() []GauntletMember {
	return []GauntletMember{
		{"gauntlet/oscillate", "phases flip faster than the monitor interval; retraining thrashes on interval composition"},
		{"gauntlet/csdep", "critical-section cost scales with team size; Eq. 3's stationary-T_CS premise"},
		{"gauntlet/busstorm", "bus traffic arrives in periodic bursts; Eq. 5's steady bus-utilization premise"},
		{"gauntlet/eqclash", "bandwidth-saturated prefix covers the training window; Eq. 3 and Eq. 5 disagree maximally"},
	}
}

func init() {
	class := map[string]Class{
		"oscillate": CSLimited,
		"csdep":     CSLimited,
		"busstorm":  BWLimited,
		"eqclash":   BWLimited,
	}
	input := map[string]string{
		"oscillate": "960 iters x 2048 elems, 24-iter sub-phases",
		"csdep":     "768 iters x 2048 elems, merge cost x team size",
		"busstorm":  "1024 iters x 2048 elems, 96 quiet + 32 burst",
		"eqclash":   "1024 iters x 2048 elems, 256-iter stream prefix",
	}
	for _, kind := range []string{"oscillate", "csdep", "busstorm", "eqclash"} {
		kind := kind
		registerExtra(Info{
			Name:    "gauntlet/" + kind,
			Class:   class[kind],
			Problem: "Adversarial model-assumption breaker (" + kind + ")",
			Input:   input[kind],
			Factory: func(m *machine.Machine) core.Workload {
				return NewAdversary(m, DefaultAdversaryParams(kind))
			},
		})
	}
}
