package workloads

import "fdt/internal/thread"

// phase is one barrier-separated stage of a step: slabs independent
// units of parallel work, after an optional thread-0 action run once
// when the phase's last slab completes (buffer swaps).
type phase struct {
	slabs int
	run   func(tc *thread.Ctx, slab int)
	after func()
}

// phasedKernel drives kernels structured as `steps` repetitions of a
// fixed sequence of phases. Its FDT iterations are the individual
// slabs — the fine-grained units of the parallelized loops — so
// training on a handful of iterations costs a handful of slabs, not
// whole time steps, exactly as the paper's loop-peeled training does.
//
// RunChunk may start and end in the middle of a phase; the phase's
// `after` action fires only in the chunk that completes it, so
// training chunks and the execution chunk compose into exactly one
// pass over the step sequence.
type phasedKernel struct {
	name   string
	steps  int
	phases []phase
}

func (k *phasedKernel) Name() string { return k.name }

func (k *phasedKernel) slabsPerStep() int {
	total := 0
	for _, p := range k.phases {
		total += p.slabs
	}
	return total
}

// Iterations implements core.Kernel.
func (k *phasedKernel) Iterations() int { return k.steps * k.slabsPerStep() }

// SampleUnit implements core.SampleUnitKernel: iteration costs repeat
// with the period of one full step (the slabs of every phase), so
// sampled windows and skips must cover whole steps to measure the
// phase mix they extrapolate.
func (k *phasedKernel) SampleUnit() int { return k.slabsPerStep() }

// locate maps a global iteration index to its phase and the slab
// offset within it.
func (k *phasedKernel) locate(it int) (phaseIdx, slab int) {
	within := it % k.slabsPerStep()
	for i, p := range k.phases {
		if within < p.slabs {
			return i, within
		}
		within -= p.slabs
	}
	panic("workloads: phased kernel iteration out of range")
}

// RunChunk implements core.Kernel.
func (k *phasedKernel) RunChunk(master *thread.Ctx, n, lo, hi int) {
	bar := &thread.Barrier{}
	master.Fork(n, func(tc *thread.Ctx) {
		it := lo
		for it < hi {
			phaseIdx, slabOff := k.locate(it)
			ph := k.phases[phaseIdx]
			end := slabOff + (hi - it)
			if end > ph.slabs {
				end = ph.slabs
			}
			myLo, myHi := tc.Range(slabOff, end)
			for s := myLo; s < myHi; s++ {
				ph.run(tc, s)
			}
			tc.Barrier(bar)
			if end == ph.slabs && ph.after != nil {
				if tc.ID == 0 {
					ph.after()
				}
				tc.Barrier(bar)
			}
			it += end - slabOff
		}
	})
}
