package workloads

import (
	"fmt"
	"math"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/thread"
)

// PhaseShift is a synthetic stress case for the train-once controller
// (no paper counterpart; registered as an extra, outside Table 2). It
// is one kernel whose behaviour shifts at two phase boundaries:
//
//	phase A [0, P):    scalable     — data-parallel arithmetic over a
//	                                  cache-resident vector
//	phase B [P, 2P):   CS-limited   — the same arithmetic, but every
//	                                  thread folds its partial into a
//	                                  shared accumulator under a lock
//	                                  each iteration (Fig 1's shape)
//	phase C [2P, 3P):  BW-limited   — streams a fresh block from
//	                                  memory every iteration (ED's
//	                                  shape)
//
// FDT's train-once controller samples phase A and locks 32 threads
// for the whole kernel, overpaying badly in phase B (Section 9's
// fragility). The adaptive pipeline's Monitor sees the per-iteration
// critical-section cycles appear at the A->B boundary and the bus
// occupancy appear at B->C, re-trains at each, and lands near the
// per-phase optima.
type PhaseShift struct {
	m *machine.Machine
	p PhaseShiftParams

	vec        []float64
	vecAddr    uint64
	streamAddr uint64
	lock       *thread.Lock
	accAddr    uint64

	sum float64
}

// PhaseShiftParams sizes PhaseShift.
type PhaseShiftParams struct {
	// ItersPerPhase is the length of each of the three phases.
	ItersPerPhase int
	// Elems is the elements processed per iteration.
	Elems int
	// ComputeInstr is the per-element arithmetic of phases A and B.
	ComputeInstr uint64
	// MergeInstr is the critical-section work of each per-iteration
	// merge in phase B. With ComputeInstr*Elems ~ 8K instructions of
	// parallel work, ~200 instructions of serial merge puts P_CS near
	// 6-7, like PageMine.
	MergeInstr uint64
	// StreamInstr is the per-element arithmetic of phase C; the phase
	// streams Elems fresh elements per iteration, so its bus demand
	// matches ED's.
	StreamInstr uint64
}

// DefaultPhaseShiftParams returns the ablation's configuration.
func DefaultPhaseShiftParams() PhaseShiftParams {
	return PhaseShiftParams{
		ItersPerPhase: 400,
		Elems:         2048,
		ComputeInstr:  4,
		MergeInstr:    200,
		StreamInstr:   4,
	}
}

// NewPhaseShift builds the workload on m.
func NewPhaseShift(m *machine.Machine, p PhaseShiftParams) *PhaseShift {
	mustMachine(m, "phaseshift")
	w := &PhaseShift{m: m, p: p}
	w.vec = make([]float64, p.Elems)
	r := newRNG(0x5f17)
	for i := range w.vec {
		w.vec[i] = r.float64()*2 - 1
	}
	w.vecAddr = m.Alloc(8 * p.Elems)
	w.streamAddr = m.Alloc(8 * p.Elems * p.ItersPerPhase)
	w.lock = thread.NewLock(m)
	w.accAddr = m.Alloc(64)
	return w
}

// Name implements core.Workload.
func (w *PhaseShift) Name() string { return "phaseshift" }

// Kernels implements core.Workload: PhaseShift is a single kernel —
// that is the point; per-kernel retraining cannot help it.
func (w *PhaseShift) Kernels() []core.Kernel { return []core.Kernel{w} }

// Setup implements core.SetupWorkload: warm the shared vector, like
// the serial initialization every real benchmark has.
func (w *PhaseShift) Setup(c *thread.Ctx) {
	c.LoadRange(w.vecAddr, 8*w.p.Elems)
}

// Iterations implements core.Kernel.
func (w *PhaseShift) Iterations() int { return 3 * w.p.ItersPerPhase }

// phaseOf maps an iteration to its phase (0 = A, 1 = B, 2 = C).
func (w *PhaseShift) phaseOf(it int) int { return it / w.p.ItersPerPhase }

// RunChunk implements core.Kernel: iterations [lo, hi) on a team of
// n. Every iteration splits its elements across the team and ends at
// a barrier, like PageMine's page loop.
func (w *PhaseShift) RunChunk(master *thread.Ctx, n, lo, hi int) {
	bar := &thread.Barrier{}
	master.Fork(n, func(tc *thread.Ctx) {
		var partial float64
		for it := lo; it < hi; it++ {
			myLo, myHi := tc.Range(0, w.p.Elems)
			share := uint64(myHi - myLo)
			switch w.phaseOf(it) {
			case 0: // scalable: hot-vector arithmetic
				if share > 0 {
					tc.LoadRange(w.vecAddr+uint64(8*myLo), int(8*share))
					tc.Exec(share * w.p.ComputeInstr)
					for i := myLo; i < myHi; i++ {
						partial += w.vec[i] * w.vec[i]
					}
				}
			case 1: // CS-limited: same arithmetic + per-iteration merge
				if share > 0 {
					tc.LoadRange(w.vecAddr+uint64(8*myLo), int(8*share))
					tc.Exec(share * w.p.ComputeInstr)
					for i := myLo; i < myHi; i++ {
						partial += w.vec[i] * w.vec[i]
					}
				}
				tc.Critical(w.lock, func() {
					tc.Load(w.accAddr)
					tc.Exec(w.p.MergeInstr)
					tc.Store(w.accAddr)
					w.sum += partial
					partial = 0
				})
			case 2: // BW-limited: stream a fresh block every iteration
				blk := it - 2*w.p.ItersPerPhase
				base := w.streamAddr + uint64(8*blk*w.p.Elems)
				if share > 0 {
					tc.LoadRange(base+uint64(8*myLo), int(8*share))
					tc.Exec(share * w.p.StreamInstr)
					for i := myLo; i < myHi; i++ {
						partial += w.vec[i] * w.vec[i]
					}
				}
			}
			tc.Barrier(bar)
		}
		// Fold the leftover partial from the scalable/streaming phases
		// once per chunk (ED's negligible chunk-end reduction).
		if partial != 0 {
			tc.Critical(w.lock, func() {
				tc.Exec(4)
				w.sum += partial
			})
		}
	})
}

// Verify recomputes the reduction serially. Every iteration of all
// three phases accumulates the same vector's sum of squares (phase C
// streams separate memory but reduces the shared vector), so the
// expected total is 3*P*sum(vec^2), within floating-point reordering
// tolerance.
func (w *PhaseShift) Verify() error {
	var per float64
	for _, v := range w.vec {
		per += v * v
	}
	want := per * float64(3*w.p.ItersPerPhase)
	if diff := math.Abs(want - w.sum); diff > 1e-6*math.Abs(want) {
		return fmt.Errorf("phaseshift: sum %v, want %v", w.sum, want)
	}
	return nil
}

func init() {
	registerExtra(Info{
		Name:    "phaseshift",
		Class:   CSLimited, // the binding limiter of its worst phase
		Problem: "Synthetic 3-phase kernel",
		Input:   "3 x 400 iters x 2048 elems",
		Factory: func(m *machine.Machine) core.Workload {
			return NewPhaseShift(m, DefaultPhaseShiftParams())
		},
	})
}
