package workloads

import (
	"strings"
	"testing"

	"fdt/internal/core"
	"fdt/internal/machine"
)

func TestGauntletMembersRegistered(t *testing.T) {
	members := GauntletMembers()
	if len(members) != 4 {
		t.Fatalf("%d gauntlet members, want 4", len(members))
	}
	for _, m := range members {
		if !strings.HasPrefix(m.Name, "gauntlet/") {
			t.Errorf("member %q not under the gauntlet/ prefix", m.Name)
		}
		if m.Breaks == "" {
			t.Errorf("%s: no broken-assumption description", m.Name)
		}
		info, ok := ByName(m.Name)
		if !ok {
			t.Errorf("%s: not registered", m.Name)
			continue
		}
		m8 := machine.MustNew(machine.DefaultConfig().WithCores(8))
		w := info.Factory(m8)
		if w.Name() != m.Name {
			t.Errorf("factory built %q for member %q", w.Name(), m.Name)
		}
		if len(w.Kernels()) != 1 {
			t.Errorf("%s: %d kernels, want 1 (only the controller may react)", m.Name, len(w.Kernels()))
		}
	}
}

// TestAdversaryPatternMath checks the per-iteration pattern predicates
// against their closed-form counters: streamBlocks(it) must count the
// streaming iterations in [0, it) for awkward, non-divisible period
// parameters, and oscillate's sub-phases must alternate on HalfPeriod.
func TestAdversaryPatternMath(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig().WithCores(8))
	bs := NewAdversary(m, AdversaryParams{
		Kind: "busstorm", Iters: 37, Elems: 64, ComputeInstr: 2,
		StreamInstr: 1, QuietIters: 5, BurstIters: 3,
	})
	eq := NewAdversary(m, AdversaryParams{
		Kind: "eqclash", Iters: 23, Elems: 64, ComputeInstr: 2,
		StreamInstr: 1, PrefixIters: 7,
	})
	for _, w := range []*Adversary{bs, eq} {
		count := 0
		for it := 0; it <= w.p.Iters; it++ {
			if got := w.streamBlocks(it); got != count {
				t.Fatalf("%s: streamBlocks(%d) = %d, want %d streaming iterations so far", w.Name(), it, got, count)
			}
			if it < w.p.Iters && w.streamIter(it) {
				count++
			}
		}
	}

	os := NewAdversary(m, AdversaryParams{
		Kind: "oscillate", Iters: 20, Elems: 64, ComputeInstr: 2,
		MergeInstr: 4, HalfPeriod: 3,
	})
	for it := 0; it < 20; it++ {
		want := (it/3)%2 == 1
		if os.csIter(it) != want {
			t.Errorf("oscillate: csIter(%d) = %v, want %v", it, os.csIter(it), want)
		}
		if os.streamIter(it) {
			t.Errorf("oscillate: streamIter(%d) = true, oscillate never streams", it)
		}
	}
	cd := NewAdversary(m, AdversaryParams{
		Kind: "csdep", Iters: 10, Elems: 64, ComputeInstr: 2, MergeInstr: 4,
	})
	for it := 0; it < 10; it++ {
		if !cd.csIter(it) {
			t.Errorf("csdep: csIter(%d) = false, csdep merges every iteration", it)
		}
	}
}

func TestAdversaryVerifyDetectsCorruption(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig().WithCores(8))
	p := DefaultAdversaryParams("oscillate")
	p.Iters, p.Elems = 48, 128
	w := NewAdversary(m, p)
	core.NewController(core.Static{N: 4}).Run(m, w)
	if err := w.Verify(); err != nil {
		t.Fatalf("clean run fails verification: %v", err)
	}
	w.sum += 1
	if err := w.Verify(); err == nil {
		t.Error("corrupted reduction passed verification")
	}
}

func TestAdversaryUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown adversary kind did not panic")
		}
	}()
	NewAdversary(machine.MustNew(machine.DefaultConfig().WithCores(8)), AdversaryParams{Kind: "nosuch"})
}

// FuzzGauntlet drives every adversary generator with randomized small
// parameters through both the combined FDT pipeline and the hybrid
// controller (whose probe half-chunks produce the oddest RunChunk
// ranges any controller issues), then checks the computed reduction
// against the serial reference. The four seeds — one per member kind —
// replay in normal test runs.
func FuzzGauntlet(f *testing.F) {
	f.Add(uint8(0), uint8(3), uint8(1), uint8(2))
	f.Add(uint8(1), uint8(5), uint8(0), uint8(7))
	f.Add(uint8(2), uint8(2), uint8(3), uint8(1))
	f.Add(uint8(3), uint8(7), uint8(2), uint8(4))
	kinds := []string{"oscillate", "csdep", "busstorm", "eqclash"}
	f.Fuzz(func(t *testing.T, kindSel, a, b, c uint8) {
		p := DefaultAdversaryParams(kinds[int(kindSel)%len(kinds)])
		p.Iters = 48 + 8*int(a%12)
		p.Elems = 64 + 32*int(b%6)
		p.HalfPeriod = 3 + int(c%8)
		p.QuietIters = 5 + int(c%9)
		p.BurstIters = 2 + int(a%5)
		p.PrefixIters = 4 + int(c%20)
		p.Seed = uint64(a)<<16 | uint64(b)<<8 | uint64(c)
		cfg := machine.DefaultConfig().WithCores(8)

		m := machine.MustNew(cfg)
		w := NewAdversary(m, p)
		core.NewController(core.Combined{}).Run(m, w)
		if err := w.Verify(); err != nil {
			t.Fatalf("combined: %v", err)
		}

		m2 := machine.MustNew(cfg)
		w2 := NewAdversary(m2, p)
		core.Hybrid{}.Run(m2, w2)
		if err := w2.Verify(); err != nil {
			t.Fatalf("hybrid: %v", err)
		}
	})
}
