package workloads

import (
	"testing"

	"fdt/internal/core"
	"fdt/internal/machine"
)

// small parameter sets keep unit tests fast; behaviour-shape tests
// that need the full defaults live in the experiments package.

func smallFactories() map[string]core.Factory {
	return map[string]core.Factory{
		"pagemine": func(m *machine.Machine) core.Workload {
			return NewPageMine(m, PageMineParams{Pages: 24, PageBytes: 1024, WorkPerCharInstr: 2, MergePerBinInstr: 6})
		},
		"isort": func(m *machine.Machine) core.Workload {
			return NewISort(m, ISortParams{N: 1024, Buckets: 16, Repeats: 12, WorkPerKeyInstr: 2, MergePerBucketInstr: 32})
		},
		"gsearch": func(m *machine.Machine) core.Workload {
			return NewGSearch(m, GSearchParams{Nodes: 400, Degree: 4, Batch: 40, EvalInstr: 400, EdgeInstr: 30})
		},
		"ep": func(m *machine.Machine) core.Workload {
			return NewEP(m, EPParams{N: 4096, Batch: 128, GenInstr: 24, MergeInstr: 150})
		},
		"ed": func(m *machine.Machine) core.Workload {
			return NewED(m, EDParams{N: 16 << 10, Block: 1024, MulAddInstr: 4})
		},
		"convert": func(m *machine.Machine) core.Workload {
			return NewConvert(m, ConvertParams{Width: 128, Height: 24, PixelInstr: 100})
		},
		"transpose": func(m *machine.Machine) core.Workload {
			return NewTranspose(m, TransposeParams{Rows: 32, Cols: 128, ElemInstr: 4})
		},
		"mtwister": func(m *machine.Machine) core.Workload {
			return NewMTwister(m, MTwisterParams{N: 4096, BlockLen: 256, GenInstr: 260, BoxMullerInstr: 40})
		},
		"bt": func(m *machine.Machine) core.Workload {
			return NewBT(m, BTParams{Dim: 6, Steps: 10, CellInstr: 120})
		},
		"mg": func(m *machine.Machine) core.Workload {
			return NewMG(m, MGParams{Dim: 8, Cycles: 8, PointInstr: 24})
		},
		"bscholes": func(m *machine.Machine) core.Workload {
			return NewBScholes(m, BScholesParams{Options: 256, Batch: 64, Passes: 8, OptionInstr: 200, Rate: 0.02, Vol: 0.30})
		},
		"sconv": func(m *machine.Machine) core.Workload {
			return NewSConv(m, SConvParams{Size: 32, Radius: 4, Frames: 6, TapInstr: 2})
		},
	}
}

func TestRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, info := range All() {
		if names[info.Name] {
			t.Errorf("duplicate registration %q", info.Name)
		}
		names[info.Name] = true
		if info.Factory == nil {
			t.Errorf("%s has no factory", info.Name)
		}
	}
	if len(names) != 12 {
		t.Errorf("registry has %d workloads, want the paper's 12", len(names))
	}
	for _, c := range []Class{CSLimited, BWLimited, Scalable} {
		if got := len(ByClass(c)); got != 4 {
			t.Errorf("class %s has %d workloads, want 4", c, got)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, ok := ByName("pagemine"); !ok {
		t.Error("pagemine not found")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("nonexistent workload found")
	}
}

func TestClassString(t *testing.T) {
	if CSLimited.String() != "CS-limited" || BWLimited.String() != "BW-limited" || Scalable.String() != "Scalable" {
		t.Error("class names changed")
	}
	if Class(99).String() == "" {
		t.Error("unknown class renders empty")
	}
}

// TestAllWorkloadsVerifyUnderEveryTeamSize runs every workload at
// several static team sizes and checks the computed results against
// each workload's serial reference — the key correctness property:
// the thread count must never change the answer.
func TestAllWorkloadsVerifyUnderEveryTeamSize(t *testing.T) {
	for name, fac := range smallFactories() {
		for _, threads := range []int{1, 3, 8} {
			m := machine.MustNew(machine.DefaultConfig())
			w := fac(m)
			core.NewController(core.Static{N: threads}).Run(m, w)
			if err := w.(Verifier).Verify(); err != nil {
				t.Errorf("%s at %d threads: %v", name, threads, err)
			}
		}
	}
}

// TestAllWorkloadsVerifyUnderFDT runs every workload under the
// combined policy (training chunks + execution chunk) and verifies.
func TestAllWorkloadsVerifyUnderFDT(t *testing.T) {
	for name, fac := range smallFactories() {
		m := machine.MustNew(machine.DefaultConfig())
		w := fac(m)
		core.NewController(core.Combined{}).Run(m, w)
		if err := w.(Verifier).Verify(); err != nil {
			t.Errorf("%s under SAT+BAT: %v", name, err)
		}
	}
}

// TestDeterminism re-runs each workload and demands identical cycle
// counts: the simulation must not depend on host scheduling or map
// iteration order.
func TestDeterminism(t *testing.T) {
	for name, fac := range smallFactories() {
		run := func() uint64 {
			m := machine.MustNew(machine.DefaultConfig())
			return core.NewController(core.Static{N: 5}).Run(m, fac(m)).TotalCycles
		}
		a, b := run(), run()
		if a != b {
			t.Errorf("%s: runs took %d and %d cycles", name, a, b)
		}
	}
}

// TestChunkSplitInvariance: executing a kernel's iterations as many
// small chunks must compute the same results as one big chunk (the
// property FDT's train-then-execute split relies on).
func TestChunkSplitInvariance(t *testing.T) {
	for name, fac := range smallFactories() {
		runSplit := func(split bool) core.Workload {
			m := machine.MustNew(machine.DefaultConfig())
			w := fac(m)
			if split {
				// Controller with static policy runs one chunk; emulate
				// FDT's split with a tiny training fraction via SAT.
				core.NewController(core.SAT{}).Run(m, w)
			} else {
				core.NewController(core.Static{N: 4}).Run(m, w)
			}
			return w
		}
		for _, split := range []bool{false, true} {
			w := runSplit(split)
			if err := w.(Verifier).Verify(); err != nil {
				t.Errorf("%s (split=%v): %v", name, split, err)
			}
		}
		_ = name
	}
}

func TestPageMineHistogramTotals(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	p := PageMineParams{Pages: 10, PageBytes: 512, WorkPerCharInstr: 2, MergePerBinInstr: 6}
	w := NewPageMine(m, p)
	core.NewController(core.Static{N: 4}).Run(m, w)
	var total uint64
	for _, v := range w.Histogram() {
		total += v
	}
	if want := uint64(p.Pages * p.PageBytes); total != want {
		t.Errorf("histogram totals %d chars, want %d", total, want)
	}
}

func TestISortFinishProducesSortedRanks(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	w := NewISort(m, ISortParams{N: 512, Buckets: 16, Repeats: 4, WorkPerKeyInstr: 2, MergePerBucketInstr: 32})
	core.NewController(core.Static{N: 4}).Run(m, w)
	w.Finish()
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestEDDistanceMatchesSerial(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	w := NewED(m, EDParams{N: 4096, Block: 512, MulAddInstr: 4})
	core.NewController(core.Static{N: 8}).Run(m, w)
	if w.Distance() <= 0 {
		t.Error("distance not positive")
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMTwisterTwoKernels(t *testing.T) {
	m := machine.MustNew(machine.DefaultConfig())
	w := NewMTwister(m, MTwisterParams{N: 2048, BlockLen: 256, GenInstr: 260, BoxMullerInstr: 40})
	ks := w.Kernels()
	if len(ks) != 2 {
		t.Fatalf("MTwister has %d kernels, want 2", len(ks))
	}
	if ks[0].Name() == ks[1].Name() {
		t.Error("kernel names not distinct")
	}
}

func TestLCGJumpMatchesSequential(t *testing.T) {
	seq := lcg{s: 0x2545f49}
	for i := 0; i < 1000; i++ {
		seq.next()
	}
	jumped := lcgAt(0x2545f49, 1000)
	if seq.s != jumped.s {
		t.Errorf("lcgAt(1000) = %#x, sequential = %#x", jumped.s, seq.s)
	}
	if got := lcgAt(0x2545f49, 0); got.s != 0x2545f49 {
		t.Errorf("lcgAt(0) moved the seed")
	}
}

func TestSlabRangeCoversExactly(t *testing.T) {
	for _, tc := range []struct{ slabs, total int }{{32, 1000}, {8, 7}, {16, 16}, {4, 0}} {
		covered := 0
		prevHi := 0
		for s := 0; s < tc.slabs; s++ {
			lo, hi := slabRange(s, tc.slabs, tc.total)
			if lo != prevHi {
				t.Errorf("slabs %d/%d: slab %d starts at %d, want %d", tc.slabs, tc.total, s, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.total {
			t.Errorf("slabs %d cover %d of %d items", tc.slabs, covered, tc.total)
		}
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	if newRNG(0).next() == 0 {
		t.Error("zero seed not remapped")
	}
	r := newRNG(7)
	for i := 0; i < 1000; i++ {
		if f := r.float64(); f < 0 || f >= 1 {
			t.Fatalf("float64 out of range: %v", f)
		}
		if n := r.intn(10); n < 0 || n >= 10 {
			t.Fatalf("intn out of range: %d", n)
		}
	}
}

func TestMT19937KnownValues(t *testing.T) {
	// Reference values for seed 5489 (the canonical MT19937 seed):
	// first outputs are well-known.
	g := newMT19937(5489)
	want := []uint32{3499211612, 581869302, 3890346734, 3586334585, 545404204}
	for i, w := range want {
		if got := g.next(); got != w {
			t.Fatalf("MT19937 output %d = %d, want %d", i, got, w)
		}
	}
}

func TestBoxMullerMoments(t *testing.T) {
	g := newMT19937(12345)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i += 2 {
		z0, z1 := boxMuller(g.next(), g.next())
		sum += z0 + z1
		sumSq += z0*z0 + z1*z1
	}
	mean := sum / n
	variance := sumSq / n
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestNormCDFProperties(t *testing.T) {
	if got := normCDF(0); got < 0.4999 || got > 0.5001 {
		t.Errorf("normCDF(0) = %v, want 0.5", got)
	}
	for _, x := range []float64{-3, -1, -0.1, 0.5, 2, 4} {
		if s := normCDF(x) + normCDF(-x); s < 0.9999 || s > 1.0001 {
			t.Errorf("normCDF(%v)+normCDF(-%v) = %v, want 1", x, x, s)
		}
	}
	if normCDF(5) < 0.999 || normCDF(-5) > 0.001 {
		t.Error("tails wrong")
	}
}

// TestPhaseShiftRegisteredAsExtra: the synthetic phased workload must
// resolve by name without joining the paper's Table-2 registry.
func TestPhaseShiftRegisteredAsExtra(t *testing.T) {
	if _, ok := ByName("phaseshift"); !ok {
		t.Fatal("phaseshift not resolvable by name")
	}
	for _, i := range All() {
		if i.Name == "phaseshift" {
			t.Error("phaseshift leaked into the Table-2 registry")
		}
	}
	found := false
	for _, i := range Extras() {
		if i.Name == "phaseshift" {
			found = true
		}
	}
	if !found {
		t.Error("phaseshift missing from Extras()")
	}
}

// TestPhaseShiftVerifies: the phased workload computes the right
// reduction at every team size and under the adaptive pipeline, whose
// interval-chunked execution and mid-kernel re-training must not
// change the answer.
func TestPhaseShiftVerifies(t *testing.T) {
	small := PhaseShiftParams{ItersPerPhase: 40, Elems: 256, ComputeInstr: 4, MergeInstr: 60, StreamInstr: 4}
	for _, threads := range []int{1, 3, 8} {
		m := machine.MustNew(machine.DefaultConfig())
		w := NewPhaseShift(m, small)
		core.NewController(core.Static{N: threads}).Run(m, w)
		if err := w.Verify(); err != nil {
			t.Errorf("at %d threads: %v", threads, err)
		}
	}
	m := machine.MustNew(machine.DefaultConfig())
	w := NewPhaseShift(m, small)
	mp := core.DefaultMonitorParams()
	mp.Interval = 8
	core.NewAdaptiveController(core.Combined{}, mp).Run(m, w)
	if err := w.Verify(); err != nil {
		t.Errorf("under adaptive FDT: %v", err)
	}
}
