package experiments

import (
	"fmt"
	"strings"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/runner"
)

// The Pareto experiment charts the power/performance frontier of
// power-budgeted threading on a DVFS machine — the PR 10 extension of
// the paper's Figure 14/15 power story. Three comparators run at each
// budget level:
//
//   - FDT+DVFS: the combined policy with the full (threads, frequency)
//     search — Eq. 3/5/7 re-evaluated per P-state, budget-clamped.
//   - fixed-freq FDT: the same policy locked to the nominal state, so
//     the budget can only shed threads — the paper's FDT under a
//     power cap.
//   - static oracle: the best (threads, P-state) static grid point
//     whose MEASURED average power fits the budget — what an offline
//     exhaustive search would pick.
//
// The headline claim (asserted by shape.Assertions): at every tested
// budget at or below 75% of unconstrained peak power, FDT+DVFS weakly
// dominates fixed-frequency FDT — trading frequency for threads never
// loses, because the frequency dimension strictly enlarges the
// feasible set.

// ParetoWorkloads are the charted workloads: one synchronization-
// limited (pagemine), one bandwidth-limited (ed), one scalable (mg).
var ParetoWorkloads = []string{"pagemine", "ed", "mg"}

// ParetoBudgetFracs are the tested budget levels as fractions of each
// workload's unconstrained peak power, descending.
var ParetoBudgetFracs = []float64{1.0, 0.75, 0.5, 0.35}

// paretoCores is the charted machine size. 16 cores keeps the full
// grid (threads × P-states, per workload) affordable while leaving
// the budget clamp a wide range to bite over.
const paretoCores = 16

// paretoGridThreads is the static oracle's thread grid.
var paretoGridThreads = []int{1, 2, 3, 4, 6, 8, 12, 16}

// ParetoPoint is one policy's placement at one budget level.
type ParetoPoint struct {
	Policy string
	// Cycles is the measured execution time; AvgPower and Energy the
	// measured table-driven averages (idle draw included).
	Cycles   uint64
	AvgPower float64
	Energy   float64
	// Threads and Freq are the headline decision (first kernel); the
	// oracle reports its grid point.
	Threads int
	Freq    string
}

// ParetoRow is one budget level's comparison.
type ParetoRow struct {
	// BudgetFrac is the level as a fraction of peak; Budget the
	// absolute cap in nominal-active-core units.
	BudgetFrac float64
	Budget     float64
	DVFS       ParetoPoint
	Fixed      ParetoPoint
	Oracle     ParetoPoint
}

// ParetoFrontier is one workload's frontier.
type ParetoFrontier struct {
	Workload string
	// Peak is the unconstrained static-all average chip power the
	// budget fractions are anchored to.
	Peak float64
	Rows []ParetoRow
}

// Pareto is the full experiment result.
type Pareto struct {
	Frontiers []ParetoFrontier
}

// paretoOptions pins the experiment's machine — the Table-1 memory
// system at 16 cores with the default P-state ladder — and forces
// exact execution like the gauntlet does: the frontier's budget and
// energy claims are wall-clock-exact accounting identities, so the
// chart is mode-independent by construction rather than re-derived
// per execution mode.
func paretoOptions(o Options) Options {
	o.Cfg = o.Cfg.WithCores(paretoCores).WithFreq(machine.DefaultLadder())
	o.Mode = core.ExactMode()
	return o
}

// runBudget executes (or recalls) a workload under a policy with
// explicit power parameters through the run cache.
func runBudget(o Options, name string, pol core.Policy, pp core.PowerParams) core.RunResult {
	r := core.RunPolicyBudgetKeyedMode(o.Cfg, name, factory(name), pol, pp, o.Mode)
	o.emit(ProgressEvent{Workload: name, Policy: r.Policy, Cycles: r.TotalCycles, Total: 1})
	return r
}

// paretoPoint condenses a run into its frontier placement.
func paretoPoint(label string, r core.RunResult) ParetoPoint {
	p := ParetoPoint{Policy: label, Cycles: r.TotalCycles}
	if r.Energy != nil {
		p.AvgPower = r.Energy.AvgPower
		p.Energy = r.Energy.Total
	}
	if len(r.Kernels) > 0 {
		p.Threads = r.Kernels[0].Decision.Threads
		p.Freq = r.Kernels[0].Decision.Freq
	}
	return p
}

// RunPareto executes the experiment, one parallel frontier per
// workload.
func RunPareto(o Options) Pareto {
	o = paretoOptions(o)
	var f Pareto
	f.Frontiers = make([]ParetoFrontier, len(ParetoWorkloads))
	runner.Map(len(ParetoWorkloads), func(i int) {
		f.Frontiers[i] = runParetoFrontier(o, ParetoWorkloads[i])
	})
	return f
}

// runParetoFrontier builds one workload's frontier: measure peak,
// then place the three comparators at every budget level.
func runParetoFrontier(o Options, name string) ParetoFrontier {
	fr := ParetoFrontier{Workload: name}

	// Peak: the unconstrained all-cores nominal run — the power the
	// budget fractions are anchored to. LockState 0 keeps the machine
	// at nominal exactly like the pre-DVFS baseline.
	peak := runBudget(o, name, core.Static{}, core.PowerParams{Budget: 0, LockState: 0})
	if peak.Energy != nil {
		fr.Peak = peak.Energy.AvgPower
	}

	// The static oracle grid is budget-independent: measure every
	// (threads, P-state) point once, filter per budget below. Grid
	// points fan out over the worker pool via the run cache.
	type gridRun struct {
		threads int
		state   int
		run     core.RunResult
	}
	states := len(o.Cfg.Freq.States)
	grid := make([]gridRun, 0, len(paretoGridThreads)*states)
	for _, n := range paretoGridThreads {
		for s := 0; s < states; s++ {
			grid = append(grid, gridRun{threads: n, state: s})
		}
	}
	runner.Map(len(grid), func(i int) {
		g := &grid[i]
		g.run = runBudget(o, name, core.Static{N: g.threads}, core.PowerParams{Budget: 0, LockState: g.state})
	})

	for _, frac := range ParetoBudgetFracs {
		budget := frac * fr.Peak
		row := ParetoRow{BudgetFrac: frac, Budget: budget}

		dvfs := runBudget(o, name, core.Combined{}, core.PowerParams{Budget: budget, LockState: -1})
		row.DVFS = paretoPoint("fdt+dvfs", dvfs)

		fixed := runBudget(o, name, core.Combined{}, core.PowerParams{Budget: budget, LockState: 0})
		row.Fixed = paretoPoint("fdt@nominal", fixed)

		// Oracle: fastest grid point whose measured power fits the
		// budget. Some point always fits in practice (one thread at
		// the lowest state); if none does, the oracle point stays
		// zero-valued and the shape assertions flag it.
		best := -1
		for i, g := range grid {
			if g.run.Energy == nil || g.run.Energy.AvgPower > budget {
				continue
			}
			if best < 0 || g.run.TotalCycles < grid[best].run.TotalCycles {
				best = i
			}
		}
		if best >= 0 {
			g := grid[best]
			row.Oracle = paretoPoint("oracle", g.run)
			row.Oracle.Threads = g.threads
			row.Oracle.Freq = o.Cfg.Freq.States[g.state].Name
		}

		fr.Rows = append(fr.Rows, row)
	}
	return fr
}

// Frontier finds one workload's frontier by name.
func (f Pareto) Frontier(workload string) (ParetoFrontier, bool) {
	for _, fr := range f.Frontiers {
		if fr.Workload == workload {
			return fr, true
		}
	}
	return ParetoFrontier{}, false
}

// String renders the experiment.
func (f Pareto) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pareto: power-budgeted (threads, frequency) co-optimization (%d cores, %d P-states)\n",
		paretoCores, len(machine.DefaultLadder().States))
	for _, fr := range f.Frontiers {
		fmt.Fprintf(&b, " %s (peak power %.2f):\n", fr.Workload, fr.Peak)
		fmt.Fprintf(&b, "  %-7s %-9s | %-28s | %-28s | %s\n",
			"budget", "(abs)", "FDT+DVFS", "FDT@nominal", "oracle")
		for _, r := range fr.Rows {
			fmt.Fprintf(&b, "  %-7.2f %-9.2f | %s | %s | %s\n",
				r.BudgetFrac, r.Budget, fmtParetoPoint(r.DVFS), fmtParetoPoint(r.Fixed), fmtParetoPoint(r.Oracle))
		}
	}
	return b.String()
}

func fmtParetoPoint(p ParetoPoint) string {
	return fmt.Sprintf("%9dcy %5.2fpw %2dt %-5s", p.Cycles, p.AvgPower, p.Threads, p.Freq)
}

// CSV renders the frontier table.
func (f Pareto) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload,budget_frac,budget,policy,cycles,avg_power,energy,threads,freq\n")
	for _, fr := range f.Frontiers {
		for _, r := range fr.Rows {
			for _, p := range []ParetoPoint{r.DVFS, r.Fixed, r.Oracle} {
				fmt.Fprintf(&b, "%s,%.2f,%.4f,%s,%d,%.4f,%.1f,%d,%s\n",
					fr.Workload, r.BudgetFrac, r.Budget, p.Policy, p.Cycles, p.AvgPower, p.Energy, p.Threads, p.Freq)
			}
		}
	}
	return b.String()
}
