package experiments

import (
	"fmt"
	"strings"

	"fdt/internal/core"
	"fdt/internal/runner"
)

// Fig12 reproduces Figure 12: BAT's placement on the baseline curves
// of the four bandwidth-limited applications (ED, convert, Transpose,
// MTwister). The paper reports BAT within 3% of the minimum for all
// four, with large power savings (78%/47%/75%/31%).
type Fig12 struct {
	Panels []Fig12Panel
}

// Fig12Panel is one application's panel.
type Fig12Panel struct {
	Curve Curve
	BAT   PolicyPoint
	// PowerSavingPct is BAT's power reduction versus the static
	// all-cores baseline.
	PowerSavingPct float64
}

// Fig12Workloads lists the panel order.
var Fig12Workloads = []string{"ed", "convert", "transpose", "mtwister"}

// RunFig12 executes the experiment, one parallel panel per workload.
func RunFig12(o Options) Fig12 {
	var f Fig12
	f.Panels = make([]Fig12Panel, len(Fig12Workloads))
	runner.Map(len(Fig12Workloads), func(i int) {
		name := Fig12Workloads[i]
		c := sweep(o, name)
		bat := policyPoint(o, name, core.BAT{}, c)
		allCores := c.Points[len(c.Points)-1].Power
		saving := 0.0
		if allCores > 0 {
			saving = 100 * (1 - bat.Run.AvgActiveCores/allCores)
		}
		f.Panels[i] = Fig12Panel{Curve: c, BAT: bat, PowerSavingPct: saving}
	})
	return f
}

// String renders the figure.
func (f Fig12) String() string {
	var b strings.Builder
	b.WriteString("Figure 12: BAT on bandwidth-limited applications\n")
	for _, p := range f.Panels {
		formatCurve(&b, p.Curve, p.BAT)
		fmt.Fprintf(&b, "  %-10s BAT power saving vs all-cores: %.0f%%\n", "", p.PowerSavingPct)
	}
	return b.String()
}

// Fig13 reproduces Figure 13: convert's curves on machines with half
// and double the baseline off-chip bandwidth, with BAT's choice on
// each — BAT adapts to the machine configuration (the paper's BAT
// picks 8 on the half-bandwidth machine and 32 on the
// double-bandwidth one).
type Fig13 struct {
	Half, Double       Curve
	BATHalf, BATDouble PolicyPoint
}

// RunFig13 executes the experiment; the two machine variants simulate
// in parallel (the run cache keeps them distinct via the machine
// fingerprint in every key).
func RunFig13(o Options) Fig13 {
	var f Fig13
	half := o
	half.Cfg = o.Cfg.WithBandwidth(0.5)
	double := o
	double.Cfg = o.Cfg.WithBandwidth(2)
	runner.Map(2, func(i int) {
		if i == 0 {
			f.Half = sweep(half, "convert")
			f.BATHalf = policyPoint(half, "convert", core.BAT{}, f.Half)
		} else {
			f.Double = sweep(double, "convert")
			f.BATDouble = policyPoint(double, "convert", core.BAT{}, f.Double)
		}
	})
	return f
}

// String renders the figure.
func (f Fig13) String() string {
	var b strings.Builder
	b.WriteString("Figure 13: BAT adapts to off-chip bandwidth (convert)\n")
	b.WriteString(" 0.5x bandwidth machine:\n")
	formatCurve(&b, f.Half, f.BATHalf)
	b.WriteString(" 2x bandwidth machine:\n")
	formatCurve(&b, f.Double, f.BATDouble)
	return b.String()
}
