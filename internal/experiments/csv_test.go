package experiments

import (
	"strings"
	"testing"
)

func TestCurveCSV(t *testing.T) {
	c := Curve{
		Workload: "demo",
		Points: []SweepPoint{
			{Threads: 1, Cycles: 100, NormTime: 1, BusUtil: 0.5, Power: 1},
			{Threads: 2, Cycles: 60, NormTime: 0.6, BusUtil: 0.9, Power: 2},
		},
	}
	csv := c.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2 rows:\n%s", len(lines), csv)
	}
	if lines[0] != "workload,threads,cycles,norm_time,bus_util,power" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "demo,1,100,") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestFig09CSV(t *testing.T) {
	f := Fig09{
		PageBytes:   []int{1024, 2048},
		BestThreads: []int{2, 3},
		SATThreads:  []int{3, 4},
	}
	csv := f.CSV()
	if !strings.Contains(csv, "1024,2,3") || !strings.Contains(csv, "2048,3,4") {
		t.Errorf("fig9 csv wrong:\n%s", csv)
	}
}

func TestFig14CSVIncludesGmean(t *testing.T) {
	f := Fig14{
		Rows:       []Fig14Row{{Workload: "x", NormTime: 0.5, NormPower: 0.4, Threads: 7}},
		GmeanTime:  0.5,
		GmeanPower: 0.4,
	}
	csv := f.CSV()
	if !strings.Contains(csv, "gmean,,0.5") {
		t.Errorf("gmean row missing:\n%s", csv)
	}
}

func TestFig15CSV(t *testing.T) {
	f := Fig15{Rows: []Fig15Row{{Workload: "mtwister", FDTTime: 1.2, OracleTime: 1.0, FDTPower: 0.5, OraclePower: 1.0, OracleThreads: 32}}}
	csv := f.CSV()
	if !strings.Contains(csv, "mtwister,1.2") {
		t.Errorf("row missing:\n%s", csv)
	}
}

func TestAblationCSV(t *testing.T) {
	a := Ablation{
		Title: "demo",
		Rows:  []AblationRow{{Config: "on", Workload: "ed", Threads: 7, Cycles: 9, BU1Pct: 15.5, TrainIters: 2}},
	}
	csv := a.CSV()
	if !strings.Contains(csv, `"demo",on,ed,7,9,15.5000,2`) {
		t.Errorf("ablation csv wrong:\n%s", csv)
	}
}

func TestFig10CSVSingleHeader(t *testing.T) {
	f := Fig10{
		Small: Curve{Workload: "a", Points: []SweepPoint{{Threads: 1, Cycles: 1, NormTime: 1}}},
		Large: Curve{Workload: "b", Points: []SweepPoint{{Threads: 1, Cycles: 1, NormTime: 1}}},
	}
	csv := f.CSV()
	if strings.Count(csv, "workload,threads") != 1 {
		t.Errorf("duplicated header:\n%s", csv)
	}
}
