package experiments

import (
	"fmt"
	"strings"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/runner"
)

// Ablations quantify the design choices DESIGN.md Section 6 calls
// out: what the memory-system details contribute to the measured
// behaviour, and what FDT's training knobs cost. They have no paper
// counterpart — they characterize this reproduction.

// AblationRow is one configuration's outcome on one workload.
type AblationRow struct {
	Config   string
	Workload string
	// Threads is the policy's decision, Cycles the execution time,
	// BU1Pct the measured single-thread bus utilization (where the
	// policy measures one), TrainIters the training length.
	Threads    int
	Cycles     uint64
	BU1Pct     float64
	TrainIters int
}

// Ablation is a titled set of rows.
type Ablation struct {
	Title string
	Rows  []AblationRow
}

// String renders the ablation.
func (a Ablation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n", a.Title)
	fmt.Fprintf(&b, "  %-26s %-10s %8s %12s %8s %6s\n", "config", "workload", "threads", "cycles", "bu1", "train")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "  %-26s %-10s %8d %12d %7.2f%% %6d\n",
			r.Config, r.Workload, r.Threads, r.Cycles, r.BU1Pct, r.TrainIters)
	}
	return b.String()
}

func ablationRow(cfgName, workload string, cfg machine.Config, pol core.Policy, md core.Mode) AblationRow {
	// Keyed by workload name; the machine fingerprint in the cache key
	// keeps each ablation's config variant distinct.
	r := core.RunPolicyKeyedMode(cfg, workload, factory(workload), pol, md)
	k := r.Kernels[0]
	return AblationRow{
		Config:     cfgName,
		Workload:   workload,
		Threads:    k.Decision.Threads,
		Cycles:     r.TotalCycles,
		BU1Pct:     100 * k.Decision.BusUtil1,
		TrainIters: k.TrainIters,
	}
}

// AblationRowBuffer toggles DRAM row-buffer modeling: without open
// rows every access pays the full bank latency, shifting ED's
// measured BU1 and therefore BAT's knee.
func AblationRowBuffer(o Options) Ablation {
	a := Ablation{Title: "DRAM row-buffer modeling (ED under BAT)"}
	on := o.Cfg
	off := o.Cfg
	off.Mem.ModelRowBuffer = false
	a.Rows = append(a.Rows,
		ablationRow("row-buffer on", "ed", on, core.BAT{}, o.Mode),
		ablationRow("row-buffer off", "ed", off, core.BAT{}, o.Mode),
	)
	return a
}

// AblationCoherence toggles the MESI directory: without coherence,
// critical sections lose the lock-line and shared-data ping-pong that
// makes them more expensive under contention.
func AblationCoherence(o Options) Ablation {
	a := Ablation{Title: "directory MESI modeling (PageMine under SAT)"}
	on := o.Cfg
	off := o.Cfg
	off.Mem.ModelCoherence = false
	a.Rows = append(a.Rows,
		ablationRow("coherence on", "pagemine", on, core.SAT{}, o.Mode),
		ablationRow("coherence off", "pagemine", off, core.SAT{}, o.Mode),
	)
	return a
}

// AblationStoreBuffer varies the store-buffer depth: transpose writes
// each output column as a burst of lines, so a shallow buffer stalls
// the core on its own writes while a deep one lets the burst drain in
// the background. (Convert, whose stores interleave with per-pixel
// compute, is insensitive to the depth — the buffer never fills.)
func AblationStoreBuffer(o Options) Ablation {
	a := Ablation{Title: "store-buffer depth (transpose under BAT)"}
	for _, entries := range []int{1, 8, 64} {
		cfg := o.Cfg
		cfg.Mem.StoreBufferEntries = entries
		a.Rows = append(a.Rows,
			ablationRow(fmt.Sprintf("store buffer %d", entries), "transpose", cfg, core.BAT{}, o.Mode))
	}
	return a
}

// AblationStabilityWindow varies SAT's stability criterion: a longer
// window trains longer before committing; window 0 disables early
// termination entirely (training runs to the 1% cap).
func AblationStabilityWindow(o Options) Ablation {
	a := Ablation{Title: "SAT stability window (ISort)"}
	for _, w := range []int{0, 3, 6} {
		pol := core.SAT{}
		ctl := core.NewController(pol)
		ctl.Mode = o.Mode
		ctl.Params.StabilityWindow = w
		m := machine.MustNew(o.Cfg)
		info := factory("isort")
		r := ctl.Run(m, info(m))
		k := r.Kernels[0]
		a.Rows = append(a.Rows, AblationRow{
			Config:     fmt.Sprintf("window %d", w),
			Workload:   "isort",
			Threads:    k.Decision.Threads,
			Cycles:     r.TotalCycles,
			BU1Pct:     100 * k.Decision.BusUtil1,
			TrainIters: k.TrainIters,
		})
	}
	return a
}

// AblationTrainingOverhead compares FDT's single single-threaded
// training loop against the related work's hill-climbing allocation
// search ([6][7][27]): the search probes several team sizes with real
// iterations, so its training grows with the allocation space —
// exactly the overhead the paper's Section 7 argues FDT avoids.
func AblationTrainingOverhead(o Options) Ablation {
	a := Ablation{Title: "FDT training vs hill-climbing allocation search"}
	for _, name := range []string{"pagemine", "ed", "bscholes"} {
		fdt := core.RunPolicyKeyedMode(o.Cfg, name, factory(name), core.Combined{}, o.Mode)
		hc := core.RunHillClimbKeyed(o.Cfg, name, factory(name), core.HillClimb{})
		a.Rows = append(a.Rows,
			AblationRow{
				Config: "FDT (SAT+BAT)", Workload: name,
				Threads: fdt.Kernels[0].Decision.Threads, Cycles: fdt.TotalCycles,
				BU1Pct: 100 * fdt.Kernels[0].Decision.BusUtil1, TrainIters: fdt.Kernels[0].TrainIters,
			},
			AblationRow{
				Config: "hill-climb", Workload: name,
				Threads: hc.Kernels[0].Decision.Threads, Cycles: hc.TotalCycles,
				TrainIters: hc.Kernels[0].TrainIters,
			},
		)
	}
	return a
}

// AblationRefinedBAT compares plain BAT against the future-work
// refinement (Section 9): confirmation probes that correct Eq 5's
// linear-utilization assumption. The refinement should land at or
// above plain BAT's thread count on kernels whose utilization scales
// sub-linearly, buying execution time for a little extra training.
func AblationRefinedBAT(o Options) Ablation {
	a := Ablation{Title: "BAT vs refined BAT (future work, Section 9)"}
	for _, name := range []string{"ed", "convert", "transpose"} {
		plain := core.RunPolicyKeyedMode(o.Cfg, name, factory(name), core.BAT{}, o.Mode)
		m := machine.MustNew(o.Cfg)
		refined := core.RefinedBAT{}.Run(m, factory(name)(m))
		a.Rows = append(a.Rows,
			AblationRow{
				Config: "BAT", Workload: name,
				Threads: plain.Kernels[0].Decision.Threads, Cycles: plain.TotalCycles,
				BU1Pct: 100 * plain.Kernels[0].Decision.BusUtil1, TrainIters: plain.Kernels[0].TrainIters,
			},
			AblationRow{
				Config: "BAT-refined", Workload: name,
				Threads: refined.Kernels[0].Decision.Threads, Cycles: refined.TotalCycles,
				BU1Pct: 100 * refined.Kernels[0].Decision.BusUtil1, TrainIters: refined.Kernels[0].TrainIters,
			},
		)
	}
	return a
}

// AblationPrefetcher adds a next-line L2 prefetcher (the paper's
// machine has none): a prefetching machine hides part of the miss
// latency, so a single thread issues lines faster and uses more of
// the bus — BAT measures the higher BU1 and correctly picks fewer
// threads to saturate the same bus. Another machine-configuration
// robustness story in the spirit of Fig 13.
func AblationPrefetcher(o Options) Ablation {
	a := Ablation{Title: "next-line L2 prefetcher (ED under BAT)"}
	off := o.Cfg
	on := o.Cfg
	on.Mem.PrefetchNextLine = true
	a.Rows = append(a.Rows,
		ablationRow("no prefetcher (paper)", "ed", off, core.BAT{}, o.Mode),
		ablationRow("next-line prefetcher", "ed", on, core.BAT{}, o.Mode),
	)
	return a
}

// AblationAdaptive compares train-once FDT against the Monitor-driven
// phase-adaptive pipeline on phaseshift, the synthetic kernel whose
// behaviour changes twice mid-execution (scalable -> CS-limited ->
// BW-limited). Train-once samples only the scalable prefix and locks
// its decision for the whole kernel (the fragility Section 9
// concedes); the adaptive controller re-trains at each detected phase
// boundary. One row per phase shows where the monitor re-decided and
// what it chose.
func AblationAdaptive(o Options) Ablation {
	a := Ablation{Title: "train-once vs phase-adaptive FDT (phaseshift)"}
	const name = "phaseshift"
	once := core.RunPolicyKeyedMode(o.Cfg, name, factory(name), core.Combined{}, o.Mode)
	ad := core.RunAdaptiveKeyedMode(o.Cfg, name, factory(name), core.Combined{}, core.DefaultMonitorParams(), o.Mode)
	ok, ak := once.Kernels[0], ad.Kernels[0]
	a.Rows = append(a.Rows,
		AblationRow{
			Config: "train-once", Workload: name,
			Threads: ok.Decision.Threads, Cycles: once.TotalCycles, TrainIters: ok.TrainIters,
		},
		AblationRow{
			Config: fmt.Sprintf("adaptive (%d retrains)", ak.Retrains), Workload: name,
			Threads: ak.Decision.Threads, Cycles: ad.TotalCycles, TrainIters: ak.TrainIters,
		},
	)
	for _, p := range ak.Phases {
		cfg := fmt.Sprintf("  phase @%d", p.StartIter)
		if p.Trigger != "" {
			cfg += " (" + p.Trigger + ")"
		}
		a.Rows = append(a.Rows, AblationRow{
			Config: cfg, Workload: name,
			Threads: p.Decision.Threads, Cycles: p.Cycles, TrainIters: p.TrainIters,
		})
	}
	return a
}

// RunAblations executes the full ablation set, one parallel lane per
// study (each study is itself a handful of independent simulations).
func RunAblations(o Options) []Ablation {
	studies := []func(Options) Ablation{
		AblationRowBuffer,
		AblationCoherence,
		AblationStoreBuffer,
		AblationStabilityWindow,
		AblationTrainingOverhead,
		AblationRefinedBAT,
		AblationPrefetcher,
		AblationAdaptive,
	}
	out := make([]Ablation, len(studies))
	runner.Map(len(studies), func(i int) {
		out[i] = studies[i](o)
	})
	return out
}
