package experiments

import (
	"testing"

	"fdt/internal/core"
)

// policyRunWithKernels fabricates a run result for label tests.
func policyRunWithKernels(name string, threads int) core.RunResult {
	return core.RunResult{Kernels: []core.KernelResult{
		{Kernel: name, Decision: core.Decision{Threads: threads}},
	}}
}

func TestDefaultOptionsSweepAllCores(t *testing.T) {
	o := DefaultOptions()
	ts := o.threads()
	if len(ts) != 32 {
		t.Fatalf("default sweep has %d counts, want 32", len(ts))
	}
	for i, n := range ts {
		if n != i+1 {
			t.Fatalf("sweep[%d] = %d, want %d", i, n, i+1)
		}
	}
}

func TestOptionsCustomSweep(t *testing.T) {
	o := DefaultOptions()
	o.SweepThreads = []int{1, 4, 32}
	ts := o.threads()
	if len(ts) != 3 || ts[1] != 4 {
		t.Fatalf("custom sweep not honored: %v", ts)
	}
}

func TestFactoryPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown workload did not panic")
		}
	}()
	factory("nonesuch")
}

func TestFewestIdx(t *testing.T) {
	// min at index 3 (100); index 1 (101) is within 1%.
	if got := fewestIdx([]uint64{200, 101, 150, 100}); got != 1 {
		t.Errorf("fewestIdx = %d, want 1", got)
	}
	if got := fewestIdx([]uint64{5}); got != 0 {
		t.Errorf("single-element fewestIdx = %d", got)
	}
}

func TestThreadsLabel(t *testing.T) {
	single := policyRunWithKernels("k", 7)
	if got := threadsLabel(single); got != "7 thread(s)" {
		t.Errorf("single-kernel label = %q", got)
	}
}
