package experiments_test

// The sampled-accuracy gate: every figure's underlying sweeps run in
// both exact and sampled mode, and the per-figure geometric mean of
// the absolute cycle error must stay within 3% — the bound DESIGN.md
// Section 11 commits to and BENCH_PR6.json records. The gate runs in
// CI's sampled-shapes job (FDT_SAMPLED=1) next to the shape suite,
// so a detector regression that bends a curve fails shapes and a
// quieter one that merely drifts the numbers fails here.

import (
	"math"
	"os"
	"testing"

	"fdt/internal/core"
	"fdt/internal/stats"
	"fdt/internal/workloads"
)

// gatePanels lists each figure's sweep panels: the workload curves
// whose sampled reproduction the 3% bound covers. Fig 9 and 10 reuse
// the PageMine kernel at other page sizes, and Figs 14/15 reuse these
// same sweeps through the run cache, so the panels below cover every
// distinct curve family in the report.
var gatePanels = []struct {
	figure    string
	workload  string
	bandwidth float64
}{
	{"fig2", "pagemine", 1},
	{"fig4", "ed", 1},
	{"fig8", "isort", 1},
	{"fig8", "gsearch", 1},
	{"fig8", "ep", 1},
	{"fig12", "convert", 1},
	{"fig12", "transpose", 1},
	{"fig12", "mtwister", 1},
	{"fig13", "convert", 0.5},
	{"fig13", "convert", 2},
}

func TestSampledErrorGate(t *testing.T) {
	if os.Getenv("FDT_SAMPLED") == "" {
		t.Skip("set FDT_SAMPLED=1 to run the sampled-vs-exact error gate (runs every sweep twice)")
	}
	const maxGmeanErr = 0.03
	o := fastOptions()
	counts := o.SweepThreads
	md := core.SampledMode()

	perFig := map[string][]float64{}
	var order []string
	for _, p := range gatePanels {
		info, ok := workloads.ByName(p.workload)
		if !ok {
			t.Fatalf("unknown workload %q", p.workload)
		}
		cfg := o.Cfg.WithBandwidth(p.bandwidth)
		exact := core.SweepKeyedMode(cfg, info.Name, info.Factory, counts, core.ExactMode())
		sampled := core.SweepKeyedMode(cfg, info.Name, info.Factory, counts, md)
		if _, seen := perFig[p.figure]; !seen {
			order = append(order, p.figure)
		}
		for i := range exact {
			err := math.Abs(float64(sampled[i].TotalCycles)-float64(exact[i].TotalCycles)) /
				float64(exact[i].TotalCycles)
			perFig[p.figure] = append(perFig[p.figure], 1+err)
		}
	}
	for _, fig := range order {
		g := stats.Gmean(perFig[fig]) - 1
		t.Logf("%s: gmean |cycle err| %.3f%% over %d points", fig, 100*g, len(perFig[fig]))
		if g > maxGmeanErr {
			t.Errorf("%s: sampled gmean cycle error %.3f%% exceeds %.0f%%",
				fig, 100*g, 100*maxGmeanErr)
		}
	}
}
