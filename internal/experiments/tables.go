package experiments

import (
	"fmt"
	"strings"

	"fdt/internal/machine"
	"fdt/internal/mem"
	"fdt/internal/workloads"
)

// Table1 renders the simulated machine configuration in the shape of
// the paper's Table 1.
func Table1(cfg machine.Config) string {
	m := cfg.Mem
	var b strings.Builder
	b.WriteString("Table 1: configuration of the simulated machine\n")
	row := func(k, v string) { fmt.Fprintf(&b, "  %-14s %s\n", k, v) }
	row("System", fmt.Sprintf("%d-core CMP with shared L3 cache", m.Cores))
	row("Core", fmt.Sprintf("in-order, %d-wide; %dKB write-through private L1 (lat %d)",
		cfg.IssueWidth, m.L1Bytes>>10, m.L1Lat))
	row("L2", fmt.Sprintf("%dKB, %d-way, inclusive private (lat %d)", m.L2Bytes>>10, m.L2Ways, m.L2Lat))
	row("Interconnect", fmt.Sprintf("bidirectional ring, %d-cycle hop latency", m.RingHopLat))
	row("Coherence", coherenceDesc(m))
	row("Shared L3", fmt.Sprintf("%dMB, %d-way, %d banks, %d-cycle, 64B lines, LRU",
		m.L3Bytes>>20, m.L3Ways, m.L3Banks, m.L3Lat))
	row("Data bus", fmt.Sprintf("split-transaction, %d-cycle latency, one %dB line per %d cycles peak",
		m.BusLat, m.LineBytes, m.BusCyclesPerLine))
	row("Memory", fmt.Sprintf("%d DRAM banks, row buffers (hit %d / miss %d), bank conflicts modeled",
		m.DRAMBanks, m.DRAMRowHitLat, m.DRAMRowMissLat))
	return b.String()
}

func coherenceDesc(m mem.Config) string {
	if m.ModelCoherence {
		return "distributed directory-based MESI"
	}
	return "disabled (ablation)"
}

// Table2 renders the workload table in the shape of the paper's
// Table 2.
func Table2() string {
	var b strings.Builder
	b.WriteString("Table 2: simulated workloads\n")
	fmt.Fprintf(&b, "  %-12s %-10s %-28s %s\n", "type", "workload", "problem", "input")
	for _, c := range []workloads.Class{workloads.CSLimited, workloads.BWLimited, workloads.Scalable} {
		for _, i := range workloads.ByClass(c) {
			fmt.Fprintf(&b, "  %-12s %-10s %-28s %s\n", c, i.Name, i.Problem, i.Input)
		}
	}
	return b.String()
}
