// Package shape is the machine-checked figure-shape regression suite:
// it encodes EXPERIMENTS.md's prose claims about the paper's curves —
// PageMine's valley, ED's knee, where SAT/BAT/FDT land — as named,
// executable assertions over the experiment results. A refactor or
// optimization that silently bends a curve now fails a named
// assertion instead of quietly shifting a number in a document.
//
// The package has two layers. The predicates in this file are pure
// functions over already-computed curves and points — cheap to test
// against synthetic data and reusable by mutation tests that must not
// touch the experiment run cache. The registry in assertions.go binds
// predicates to the experiment runners under stable names
// ("fig2-pagemine-valley", ...), which EXPERIMENTS.md references from
// each claim.
package shape

import (
	"fmt"

	"fdt/internal/core"
	"fdt/internal/experiments"
	"fdt/internal/machine"
)

// CurveOf builds an experiments.Curve from direct run results — the
// entry point for mutation tests, whose deliberately broken machines
// must never flow through the keyed run cache.
func CurveOf(workload string, threads []int, runs []core.RunResult) experiments.Curve {
	if len(threads) == 0 || len(runs) != len(threads) {
		panic("shape: threads and runs must be non-empty and equal length")
	}
	c := experiments.Curve{Workload: workload}
	base := runs[0].TotalCycles
	minIdx := 0
	for i, r := range runs {
		c.Points = append(c.Points, experiments.SweepPoint{
			Threads:  threads[i],
			Cycles:   r.TotalCycles,
			NormTime: float64(r.TotalCycles) / float64(base),
			BusUtil:  machine.BusUtilization(r.BusBusyCycles, r.TotalCycles),
			Power:    r.AvgActiveCores,
		})
		if r.TotalCycles < runs[minIdx].TotalCycles {
			minIdx = i
		}
	}
	c.MinThreads = threads[minIdx]
	c.MinCycles = runs[minIdx].TotalCycles
	return c
}

// Valley checks the U/valley shape of a synchronization-limited curve:
// the minimum sits at an interior thread count inside [minLo, minHi],
// the curve falls from its 1-thread start to the minimum, and the
// all-cores end rises at least endRiseFactor above the minimum.
func Valley(c experiments.Curve, minLo, minHi int, endRiseFactor float64) error {
	if len(c.Points) < 3 {
		return fmt.Errorf("%s: %d sweep points, too few for a valley", c.Workload, len(c.Points))
	}
	first, last := c.Points[0], c.Points[len(c.Points)-1]
	if c.MinThreads <= first.Threads || c.MinThreads >= last.Threads {
		return fmt.Errorf("%s: minimum at %d threads is not interior to [%d, %d] — no valley",
			c.Workload, c.MinThreads, first.Threads, last.Threads)
	}
	if c.MinThreads < minLo || c.MinThreads > minHi {
		return fmt.Errorf("%s: minimum at %d threads, outside the claimed band [%d, %d]",
			c.Workload, c.MinThreads, minLo, minHi)
	}
	if first.Cycles <= c.MinCycles {
		return fmt.Errorf("%s: 1-thread time (%d) does not fall toward the minimum (%d)",
			c.Workload, first.Cycles, c.MinCycles)
	}
	if got := float64(last.Cycles) / float64(c.MinCycles); got < endRiseFactor {
		return fmt.Errorf("%s: time at %d threads is only %.2fx the minimum, want >= %.2fx — the right wall is missing",
			c.Workload, last.Threads, got, endRiseFactor)
	}
	return nil
}

// Flattens checks the L-shape of a bandwidth-limited curve: the
// all-cores end stays within maxEndOverMin of the minimum (the curve
// stops improving but does not climb a wall).
func Flattens(c experiments.Curve, maxEndOverMin float64) error {
	if len(c.Points) < 2 {
		return fmt.Errorf("%s: %d sweep points, too few", c.Workload, len(c.Points))
	}
	last := c.Points[len(c.Points)-1]
	if got := float64(last.Cycles) / float64(c.MinCycles); got > maxEndOverMin {
		return fmt.Errorf("%s: time at %d threads is %.2fx the minimum, want <= %.2fx — curve did not flatten",
			c.Workload, last.Threads, got, maxEndOverMin)
	}
	return nil
}

// SaturationThreads reports the fewest swept threads at which bus
// utilization reaches util, or 0 if it never does.
func SaturationThreads(c experiments.Curve, util float64) int {
	for _, p := range c.Points {
		if p.BusUtil >= util {
			return p.Threads
		}
	}
	return 0
}

// KneeWithin checks that the bus saturates (utilization >= util)
// first at a thread count inside [lo, hi] — the knee-position band.
func KneeWithin(c experiments.Curve, util float64, lo, hi int) error {
	knee := SaturationThreads(c, util)
	if knee == 0 {
		return fmt.Errorf("%s: bus never reaches %.0f%% utilization on the sweep — no knee",
			c.Workload, 100*util)
	}
	if knee < lo || knee > hi {
		return fmt.Errorf("%s: bus saturates first at %d threads, outside the claimed band [%d, %d]",
			c.Workload, knee, lo, hi)
	}
	return nil
}

// WithinValley checks that a policy landed near a curve's floor: at
// most maxOverMinPct percent above the sweep minimum.
func WithinValley(c experiments.Curve, pp experiments.PolicyPoint, maxOverMinPct float64) error {
	if pp.OverMinPct > maxOverMinPct {
		return fmt.Errorf("%s: %s is %.1f%% above the sweep minimum, want <= %.0f%%",
			c.Workload, pp.Policy, pp.OverMinPct, maxOverMinPct)
	}
	return nil
}

// NonDecreasing checks that a series of chosen thread counts never
// shrinks, and strictly grows end to end — the monotone-knee claim.
func NonDecreasing(label string, xs []int) error {
	if len(xs) < 2 {
		return fmt.Errorf("%s: %d points, too few for a trend", label, len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return fmt.Errorf("%s: not monotone at index %d: %v", label, i, xs)
		}
	}
	if xs[len(xs)-1] <= xs[0] {
		return fmt.Errorf("%s: no end-to-end growth: %v", label, xs)
	}
	return nil
}

// RatioIn checks got/base against [lo, hi].
func RatioIn(label string, got, base, lo, hi float64) error {
	if base == 0 {
		return fmt.Errorf("%s: zero base", label)
	}
	r := got / base
	if r < lo || r > hi {
		return fmt.Errorf("%s: ratio %.3f outside [%.3f, %.3f]", label, r, lo, hi)
	}
	return nil
}
