package shape

// The cross-suite mutation test ISSUE.md demands: at least one
// injected breakage must trip a shape assertion, not just a runtime
// invariant. Bus occupancy skew stretches every transfer's bus
// residency beyond what the busy counter accounts, so measured
// utilization can never reach the saturation threshold — ED's Figure-4
// knee (KneeWithin, the fig4-ed-knee predicate) disappears. The same
// fault is caught at runtime by bus-busy-audit (see
// internal/invariant/mutation_test.go); here it must also bend the
// curve.
//
// All machines are built directly: a mutated machine's results must
// never enter the keyed run cache, whose keys do not include fault
// knobs.

import (
	"testing"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

// edSweep runs ED at each static thread count on fresh machines,
// mutating each machine before the run.
func edSweep(t *testing.T, threads []int, mutate func(m *machine.Machine)) []core.RunResult {
	t.Helper()
	info, ok := workloads.ByName("ed")
	if !ok {
		t.Fatal("ed workload not registered")
	}
	runs := make([]core.RunResult, len(threads))
	for i, n := range threads {
		m := machine.MustNew(machine.DefaultConfig())
		if mutate != nil {
			mutate(m)
		}
		runs[i] = core.NewController(core.Static{N: n}).Run(m, info.Factory(m))
	}
	return runs
}

func TestMutationBusOccupancySkewBendsKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("two direct ED sweeps")
	}
	threads := []int{1, 2, 4, 6, 8, 10, 12}

	control := CurveOf("ed", threads, edSweep(t, threads, nil))
	if err := KneeWithin(control, 0.95, 6, 12); err != nil {
		t.Fatalf("control sweep fails the fig4-ed-knee predicate: %v", err)
	}

	mutated := CurveOf("ed", threads, edSweep(t, threads, func(m *machine.Machine) {
		m.Mem.Bus.FaultOccupancySkew(4)
	}))
	if err := KneeWithin(mutated, 0.95, 6, 12); err == nil {
		t.Fatal("bus occupancy skew did not bend the knee: shape suite would miss this regression")
	}
}
