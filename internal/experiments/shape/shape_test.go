package shape

// Predicate unit tests on synthetic curves — no simulation. The
// suite that runs the registry against real experiment results lives
// in internal/experiments (shape_suite_test.go), where it shares the
// process-wide run cache with the other experiment tests.

import (
	"strings"
	"testing"

	"fdt/internal/core"
	"fdt/internal/experiments"
)

// curve builds a synthetic sweep from (threads, cycles) pairs, with
// optional bus utilizations.
func curve(threads []int, cycles []uint64, busUtil []float64) experiments.Curve {
	c := experiments.Curve{Workload: "synthetic"}
	base := cycles[0]
	minIdx := 0
	for i := range threads {
		p := experiments.SweepPoint{
			Threads:  threads[i],
			Cycles:   cycles[i],
			NormTime: float64(cycles[i]) / float64(base),
		}
		if busUtil != nil {
			p.BusUtil = busUtil[i]
		}
		c.Points = append(c.Points, p)
		if cycles[i] < cycles[minIdx] {
			minIdx = i
		}
	}
	c.MinThreads = threads[minIdx]
	c.MinCycles = cycles[minIdx]
	return c
}

func TestValley(t *testing.T) {
	u := curve([]int{1, 2, 4, 8, 16, 32}, []uint64{100, 60, 40, 55, 80, 90}, nil)
	if err := Valley(u, 2, 8, 1.3); err != nil {
		t.Errorf("true valley rejected: %v", err)
	}
	cases := []struct {
		name string
		c    experiments.Curve
		want string
	}{
		{"too few points", curve([]int{1, 32}, []uint64{100, 50}, nil), "too few"},
		{"min at edge", curve([]int{1, 2, 4, 8}, []uint64{100, 80, 60, 40}, nil), "no valley"},
		{"min outside band", curve([]int{1, 8, 16, 32}, []uint64{100, 60, 40, 80}, nil), "outside the claimed band"},
		{"no right wall", curve([]int{1, 2, 4, 8, 32}, []uint64{100, 60, 40, 42, 45}, nil), "right wall"},
	}
	for _, tc := range cases {
		err := Valley(tc.c, 2, 8, 1.3)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestFlattens(t *testing.T) {
	l := curve([]int{1, 4, 8, 32}, []uint64{100, 40, 30, 32}, nil)
	if err := Flattens(l, 1.15); err != nil {
		t.Errorf("flat curve rejected: %v", err)
	}
	wall := curve([]int{1, 4, 8, 32}, []uint64{100, 40, 30, 60}, nil)
	if err := Flattens(wall, 1.15); err == nil {
		t.Error("climbing curve accepted as flat")
	}
}

func TestKnee(t *testing.T) {
	c := curve([]int{1, 4, 8, 16}, []uint64{100, 30, 25, 25},
		[]float64{0.13, 0.52, 0.97, 1.0})
	if got := SaturationThreads(c, 0.95); got != 8 {
		t.Errorf("SaturationThreads = %d, want 8", got)
	}
	if err := KneeWithin(c, 0.95, 6, 12); err != nil {
		t.Errorf("knee at 8 rejected for band [6, 12]: %v", err)
	}
	if err := KneeWithin(c, 0.95, 10, 12); err == nil {
		t.Error("knee at 8 accepted for band [10, 12]")
	}
	unsat := curve([]int{1, 4}, []uint64{100, 30}, []float64{0.1, 0.4})
	if got := SaturationThreads(unsat, 0.95); got != 0 {
		t.Errorf("unsaturated SaturationThreads = %d, want 0", got)
	}
	if err := KneeWithin(unsat, 0.95, 1, 32); err == nil || !strings.Contains(err.Error(), "no knee") {
		t.Errorf("unsaturated curve: err = %v, want \"no knee\"", err)
	}
}

func TestWithinValley(t *testing.T) {
	c := curve([]int{1, 4, 8}, []uint64{100, 50, 80}, nil)
	if err := WithinValley(c, experiments.PolicyPoint{Policy: "SAT", OverMinPct: 12}, 25); err != nil {
		t.Errorf("in-valley point rejected: %v", err)
	}
	if err := WithinValley(c, experiments.PolicyPoint{Policy: "SAT", OverMinPct: 40}, 25); err == nil {
		t.Error("far-from-valley point accepted")
	}
}

func TestNonDecreasing(t *testing.T) {
	if err := NonDecreasing("x", []int{2, 2, 4, 8}); err != nil {
		t.Errorf("monotone growth rejected: %v", err)
	}
	if err := NonDecreasing("x", []int{2, 4, 3, 8}); err == nil {
		t.Error("dip accepted")
	}
	if err := NonDecreasing("x", []int{4, 4, 4}); err == nil {
		t.Error("flat series accepted (no end-to-end growth)")
	}
	if err := NonDecreasing("x", []int{4}); err == nil {
		t.Error("single point accepted")
	}
}

func TestRatioIn(t *testing.T) {
	if err := RatioIn("x", 1.2, 1.0, 0, 1.35); err != nil {
		t.Errorf("in-range ratio rejected: %v", err)
	}
	if err := RatioIn("x", 1.5, 1.0, 0, 1.35); err == nil {
		t.Error("out-of-range ratio accepted")
	}
	if err := RatioIn("x", 1.0, 0, 0, 2); err == nil {
		t.Error("zero base accepted")
	}
}

func TestCurveOf(t *testing.T) {
	runs := []core.RunResult{
		{TotalCycles: 100, BusBusyCycles: 10},
		{TotalCycles: 60, BusBusyCycles: 30},
		{TotalCycles: 90, BusBusyCycles: 80},
	}
	c := CurveOf("w", []int{1, 4, 8}, runs)
	if c.MinThreads != 4 || c.MinCycles != 60 {
		t.Errorf("min = (%d threads, %d cycles), want (4, 60)", c.MinThreads, c.MinCycles)
	}
	if len(c.Points) != 3 || c.Points[2].NormTime != 0.9 {
		t.Errorf("points malformed: %+v", c.Points)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	CurveOf("w", []int{1, 2}, runs)
}

func TestRegistry(t *testing.T) {
	as := Assertions()
	if len(as) < 8 {
		t.Fatalf("%d assertions registered, the suite promises >= 8", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Claim == "" || a.Check == nil {
			t.Errorf("incomplete assertion: %+v", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate assertion name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if _, ok := ByName("fig2-pagemine-valley"); !ok {
		t.Error("ByName misses a registered assertion")
	}
	if _, ok := ByName("no-such-assertion"); ok {
		t.Error("ByName invents an assertion")
	}
}
