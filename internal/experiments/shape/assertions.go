package shape

import (
	"fmt"
	"math"

	"fdt/internal/core"
	"fdt/internal/experiments"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

// Assertion is one named, machine-checked figure-shape claim. The
// Name is stable — EXPERIMENTS.md cites it next to the prose claim it
// encodes — and the Claim restates the prose so a failure message is
// self-contained. Heavy assertions re-run the expensive experiments
// (oracle sweeps, page-size sweeps) and are skipped under -short; the
// fast suite still covers every curve family.
type Assertion struct {
	Name  string
	Claim string
	Heavy bool
	Check func(o experiments.Options) error
}

// Assertions returns the full registry in figure order.
func Assertions() []Assertion {
	return []Assertion{
		{
			Name:  "fig2-pagemine-valley",
			Claim: "PageMine's execution time is U-shaped: it falls to an interior minimum at 2-8 threads and the 32-thread end rises at least 1.3x above it (Figure 2).",
			Check: func(o experiments.Options) error {
				return Valley(experiments.RunFig02(o).Curve, 2, 8, 1.3)
			},
		},
		{
			Name:  "fig4-ed-knee",
			Claim: "ED's execution time flattens (no wall: end within 1.15x of the minimum), its bus saturates first at 6-12 threads, and single-thread bus utilization is 10-20% (Figure 4).",
			Check: func(o experiments.Options) error {
				c := experiments.RunFig04(o).Curve
				if err := Flattens(c, 1.15); err != nil {
					return err
				}
				if err := KneeWithin(c, 0.95, 6, 12); err != nil {
					return err
				}
				if bu1 := c.Points[0].BusUtil; bu1 < 0.10 || bu1 > 0.20 {
					return fmt.Errorf("%s: single-thread bus utilization %.2f, outside [0.10, 0.20]", c.Workload, bu1)
				}
				return nil
			},
		},
		{
			Name:  "fig8-sat-in-valley",
			Claim: "On every CS-limited panel, SAT lands within 25% of the sweep minimum and chooses 2-12 threads (Figure 8).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				for _, p := range experiments.RunFig08(o).Panels {
					if err := WithinValley(p.Curve, p.SAT, 25); err != nil {
						return err
					}
					if n := decidedThreads(p.SAT.Run); n < 2 || n > 12 {
						return fmt.Errorf("%s: SAT chose %d threads, outside the CS-limited regime [2, 12]",
							p.Curve.Workload, n)
					}
				}
				return nil
			},
		},
		{
			Name:  "fig9-knee-monotone",
			Claim: "PageMine's best thread count grows with page size and SAT's choice tracks the trend (Figure 9).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				f := experiments.RunFig09(o)
				if err := NonDecreasing("fig9 best threads", f.BestThreads); err != nil {
					return err
				}
				return NonDecreasing("fig9 SAT threads", f.SATThreads)
			},
		},
		{
			Name:  "fig10-sat-adapts",
			Claim: "SAT picks more threads for 10KB pages than for 2.5KB pages and stays within 30% of each sweep minimum (Figure 10).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				f := experiments.RunFig10(o)
				small, large := decidedThreads(f.SATSmall.Run), decidedThreads(f.SATLarge.Run)
				if large <= small {
					return fmt.Errorf("fig10: SAT chose %d threads for 2.5KB and %d for 10KB — no adaptation", small, large)
				}
				if err := WithinValley(f.Small, f.SATSmall, 30); err != nil {
					return err
				}
				return WithinValley(f.Large, f.SATLarge, 30)
			},
		},
		{
			Name:  "fig12-bat-power",
			Claim: "On every BW-limited panel, BAT saves at least 30% power versus all-cores (ED: at least 60%) while staying within 45% of the minimum time (Figure 12).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				f := experiments.RunFig12(o)
				for _, p := range f.Panels {
					if p.PowerSavingPct < 30 {
						return fmt.Errorf("%s: BAT saves only %.0f%% power, want >= 30%%", p.Curve.Workload, p.PowerSavingPct)
					}
					if err := WithinValley(p.Curve, p.BAT, 45); err != nil {
						return err
					}
				}
				if ed := f.Panels[0]; ed.PowerSavingPct < 60 {
					return fmt.Errorf("ed: BAT power saving %.0f%%, want >= 60%% (paper: 78%%)", ed.PowerSavingPct)
				}
				return nil
			},
		},
		{
			Name:  "fig13-bat-tracks-bandwidth",
			Claim: "BAT chooses more threads on a 2x-bandwidth bus than on a 0.5x bus (Figure 13).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				f := experiments.RunFig13(o)
				half, double := decidedThreads(f.BATHalf.Run), decidedThreads(f.BATDouble.Run)
				if double <= half {
					return fmt.Errorf("fig13: BAT chose %d threads at 0.5x bandwidth and %d at 2x — no adaptation", half, double)
				}
				return nil
			},
		},
		{
			Name:  "fig14-class-bands",
			Claim: "FDT lands each workload class in its Figure-14 band: CS-limited time<0.9 & power<0.5, BW-limited power<0.65 & time<1.35, scalable time in [0.9, 1.15] & power>=0.85 at 32 threads; gmean time < 1.0 and gmean power < 0.6.",
			Check: func(o experiments.Options) error {
				f := experiments.RunFig14(o)
				for _, r := range f.Rows {
					var err error
					switch r.Class {
					case workloads.CSLimited:
						if r.NormTime > 0.9 || r.NormPower > 0.5 {
							err = fmt.Errorf("%s: CS-limited at time %.2f / power %.2f, want < 0.9 / < 0.5", r.Workload, r.NormTime, r.NormPower)
						}
					case workloads.BWLimited:
						if r.NormPower > 0.65 || r.NormTime > 1.35 {
							err = fmt.Errorf("%s: BW-limited at time %.2f / power %.2f, want < 1.35 / < 0.65", r.Workload, r.NormTime, r.NormPower)
						}
					case workloads.Scalable:
						if r.NormTime < 0.9 || r.NormTime > 1.15 || r.NormPower < 0.85 || r.Threads != 32 {
							err = fmt.Errorf("%s: scalable at time %.2f / power %.2f / %.0f threads, want ~1 / >= 0.85 / 32", r.Workload, r.NormTime, r.NormPower, r.Threads)
						}
					}
					if err != nil {
						return err
					}
				}
				if f.GmeanTime >= 1.0 {
					return fmt.Errorf("fig14: gmean time %.3f, want < 1.0 (paper: 0.83)", f.GmeanTime)
				}
				if f.GmeanPower >= 0.6 {
					return fmt.Errorf("fig14: gmean power %.3f, want < 0.6 (paper: 0.41)", f.GmeanPower)
				}
				return nil
			},
		},
		{
			Name:  "fig14-fdt-beats-parts",
			Claim: "Combined SAT+BAT is never materially slower than the better of SAT alone and BAT alone: per workload within 1.15x, and at most 1.05x on geometric mean (Section 5.3).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				prod, n := 1.0, 0
				for _, info := range workloads.All() {
					fdt := core.RunPolicyKeyedMode(o.Cfg, info.Name, info.Factory, core.Combined{}, o.Mode).TotalCycles
					sat := core.RunPolicyKeyedMode(o.Cfg, info.Name, info.Factory, core.SAT{}, o.Mode).TotalCycles
					bat := core.RunPolicyKeyedMode(o.Cfg, info.Name, info.Factory, core.BAT{}, o.Mode).TotalCycles
					best := sat
					if bat < best {
						best = bat
					}
					r := float64(fdt) / float64(best)
					if r > 1.15 {
						return fmt.Errorf("%s: SAT+BAT takes %.2fx the better single policy, want <= 1.15x", info.Name, r)
					}
					prod *= r
					n++
				}
				if gmean := math.Pow(prod, 1/float64(n)); gmean > 1.05 {
					return fmt.Errorf("fig14: SAT+BAT gmean %.3fx the better single policy, want <= 1.05x", gmean)
				}
				return nil
			},
		},
		{
			Name:  "fig15-fdt-vs-oracle",
			Claim: "FDT's gmean time stays within 1.35x of the offline oracle's, and on MTwister FDT uses less power than any static choice (Figure 15).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				f := experiments.RunFig15(o)
				if err := RatioIn("fig15 gmean time vs oracle", f.GmeanFDTTime, f.GmeanOracleTime, 0, 1.35); err != nil {
					return err
				}
				for _, r := range f.Rows {
					if r.Workload == "mtwister" && r.FDTPower >= r.OraclePower {
						return fmt.Errorf("mtwister: FDT power %.3f not below oracle %.3f (the Figure-15 headline)", r.FDTPower, r.OraclePower)
					}
				}
				return nil
			},
		},
		{
			Name:  "adaptive-retrains-twice",
			Claim: "On the phased workload, the adaptive controller re-trains exactly at both behaviour changes: two retrains, three phases, triggered by nothing/critical-section drift/bus drift in that order (Section 6).",
			Check: func(o experiments.Options) error {
				info, ok := workloads.ByName("phaseshift")
				if !ok {
					return fmt.Errorf("phaseshift workload not registered")
				}
				r := core.RunAdaptiveKeyedMode(o.Cfg, "phaseshift", info.Factory, core.Combined{}, core.DefaultMonitorParams(), o.Mode)
				if len(r.Kernels) != 1 {
					return fmt.Errorf("phaseshift: %d kernels, want 1", len(r.Kernels))
				}
				k := r.Kernels[0]
				if k.Retrains != 2 || len(k.Phases) != 3 {
					return fmt.Errorf("phaseshift: %d retrains / %d phases, want 2 / 3", k.Retrains, len(k.Phases))
				}
				p := k.Phases
				if p[0].Trigger != "" || p[1].Trigger != "cs" || p[2].Trigger != "bus" {
					return fmt.Errorf("phaseshift: triggers %q/%q/%q, want \"\"/\"cs\"/\"bus\"", p[0].Trigger, p[1].Trigger, p[2].Trigger)
				}
				return nil
			},
		},
		{
			Name:  "corun-bat-decision-shift",
			Claim: "A co-runner's bus traffic shifts the Eq. 5 decision: both ED and Convert choose strictly fewer threads co-scheduled than solo on the identical partition, because the socket-wide bus observable reports the bandwidth the other tenant already consumed.",
			Check: func(o experiments.Options) error {
				specs := []core.TeamSpec{corunSpec("ed"), corunSpec("convert")}
				co, err := core.RunCorun(o.Cfg, machine.MapPacked, specs, o.Mode)
				if err != nil {
					return err
				}
				for i, s := range specs {
					solo, err := core.RunSolo(o.Cfg, machine.MapPacked, len(specs), i, s, o.Mode)
					if err != nil {
						return err
					}
					sn, cn := decidedThreads(solo.RunResult), decidedThreads(co.Teams[i].RunResult)
					if cn >= sn {
						return fmt.Errorf("%s: %d threads co-run, %d solo — co-runner traffic did not lower the BAT decision", s.Workload, cn, sn)
					}
				}
				return nil
			},
		},
		{
			Name:  "corun-adaptive-drift-retrain",
			Claim: "The adaptive Monitor treats co-runner interference as drift: a steady victim (bscholes) co-run with the delayed-onset bandwidth hog (busburst) re-trains on a \"bus\" trigger and throttles below its solo team size, while the same victim solo on the same partition never re-trains.",
			Check: func(o experiments.Options) error {
				// Exact mode regardless of o.Mode: sampled fast-forward
				// skips the monitored intervals in which the co-runner's
				// onset would be observed, so this interference path is
				// only exercised end to end by exact execution.
				md := core.ExactMode()
				mp := core.DefaultMonitorParams()
				victim := corunSpec("bscholes")
				victim.Monitor = &mp
				specs := []core.TeamSpec{victim, corunSpec("busburst")}
				co, err := core.RunCorun(o.Cfg, machine.MapPacked, specs, md)
				if err != nil {
					return err
				}
				k := co.Teams[0].Kernels[0]
				if k.Retrains < 1 {
					return fmt.Errorf("bscholes co-run with busburst: %d retrains, want >= 1", k.Retrains)
				}
				throttled := false
				for _, p := range k.Phases[1:] {
					if p.Trigger != "bus" {
						return fmt.Errorf("bscholes: retrain trigger %q, want \"bus\" (the co-runner is a pure bandwidth hog)", p.Trigger)
					}
					if p.Decision.Threads < k.Phases[0].Decision.Threads {
						throttled = true
					}
				}
				if !throttled {
					return fmt.Errorf("bscholes: no post-onset phase ran below the initial %d threads", k.Phases[0].Decision.Threads)
				}
				solo, err := core.RunSolo(o.Cfg, machine.MapPacked, len(specs), 0, victim, md)
				if err != nil {
					return err
				}
				if r := solo.Kernels[0].Retrains; r != 0 {
					return fmt.Errorf("bscholes solo: %d retrains, want 0 — the drift must come from the co-runner", r)
				}
				return nil
			},
		},
		{
			Name:  "gauntlet-hybrid-never-worse",
			Claim: "On every gauntlet member the hybrid controller's time-vs-oracle ratio is at most the worse of its two parents — the pure-model adaptive pipeline and pure-measurement hill-climbing — so seeding from the model and refining by measurement never combines their failure modes (robustness gauntlet).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				g := experiments.RunGauntlet(o)
				for _, m := range g.Members {
					hy, ad, hc, err := gauntletParents(g, m.Workload)
					if err != nil {
						return err
					}
					worst := ad.VsOracle
					if hc.VsOracle > worst {
						worst = hc.VsOracle
					}
					if hy.VsOracle > worst {
						return fmt.Errorf("%s: hybrid %.3fx oracle, worse than both parents (adaptive %.3fx, hill-climb %.3fx)",
							m.Workload, hy.VsOracle, ad.VsOracle, hc.VsOracle)
					}
				}
				return nil
			},
		},
		{
			Name:  "gauntlet-recovers-on-model-break",
			Claim: "When busstorm's periodic bursts break the trained bus expectation, the hybrid controller falls back to measured mode at least once and still finishes within 1.10x of the static oracle — the fallback path is exercised by a real model break and it works (robustness gauntlet).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				g := experiments.RunGauntlet(o)
				r, ok := g.Row("gauntlet/busstorm", "hybrid")
				if !ok {
					return fmt.Errorf("gauntlet/busstorm: no hybrid row")
				}
				if r.Fallbacks < 1 {
					return fmt.Errorf("gauntlet/busstorm: hybrid never fell back (%d fallbacks) — the model break went unnoticed", r.Fallbacks)
				}
				if r.VsOracle > 1.10 {
					return fmt.Errorf("gauntlet/busstorm: hybrid %.3fx oracle after fallback, want <= 1.10x", r.VsOracle)
				}
				return nil
			},
		},
		{
			Name:  "gauntlet-fallback-hysteresis-no-thrash",
			Claim: "On every gauntlet member the hybrid state machine transitions at most twice in each direction — the residual hysteresis band (fall back at High, recover at Low < High) prevents fallback/recover thrash even on adversarial inputs (robustness gauntlet).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				g := experiments.RunGauntlet(o)
				for _, m := range g.Members {
					r, ok := g.Row(m.Workload, "hybrid")
					if !ok {
						return fmt.Errorf("%s: no hybrid row", m.Workload)
					}
					if r.Fallbacks > 2 || r.Recoveries > 2 {
						return fmt.Errorf("%s: hybrid state machine thrashed — %d fallbacks / %d recoveries, want <= 2 each",
							m.Workload, r.Fallbacks, r.Recoveries)
					}
				}
				return nil
			},
		},
		{
			Name:  "pareto-dvfs-dominates-fixed",
			Claim: "At every tested budget at or below 75% of unconstrained peak power, on every charted workload, FDT+DVFS finishes no later than fixed-frequency FDT — the frequency dimension only ever enlarges the feasible set, and the model-trust margin returns the fixed-frequency decision outright when no lower state clearly wins (Pareto frontier).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				p := experiments.RunPareto(o)
				for _, fr := range p.Frontiers {
					for _, r := range fr.Rows {
						if r.BudgetFrac > 0.75 {
							continue
						}
						if r.DVFS.Cycles > r.Fixed.Cycles {
							return fmt.Errorf("%s at budget %.2f: FDT+DVFS %d cycles > FDT@nominal %d — the co-search lost to its own restriction",
								fr.Workload, r.BudgetFrac, r.DVFS.Cycles, r.Fixed.Cycles)
						}
					}
				}
				return nil
			},
		},
		{
			Name:  "pareto-dvfs-strict-win",
			Claim: "At the tightest budget (35% of peak), trading frequency for threads wins outright where the model says it should: FDT+DVFS beats fixed-frequency FDT by at least 10% on both the bandwidth-limited (ed) and scalable (mg) workloads (Pareto frontier).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				p := experiments.RunPareto(o)
				for _, name := range []string{"ed", "mg"} {
					fr, ok := p.Frontier(name)
					if !ok {
						return fmt.Errorf("pareto: no %s frontier", name)
					}
					r := fr.Rows[len(fr.Rows)-1]
					if r.BudgetFrac != 0.35 {
						return fmt.Errorf("%s: tightest charted budget is %.2f, want 0.35", name, r.BudgetFrac)
					}
					if float64(r.DVFS.Cycles) > 0.9*float64(r.Fixed.Cycles) {
						return fmt.Errorf("%s at budget 0.35: FDT+DVFS %d vs FDT@nominal %d cycles — no material win from the frequency dimension",
							name, r.DVFS.Cycles, r.Fixed.Cycles)
					}
				}
				return nil
			},
		},
		{
			Name:  "pareto-budget-respected",
			Claim: "Every charted point's measured average chip power — FDT+DVFS, fixed-frequency FDT, and the static oracle, at every budget level — stays within the declared 2% slack of its budget (the same bound the power-budget-compliance invariant enforces in-run) (Pareto frontier).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				p := experiments.RunPareto(o)
				for _, fr := range p.Frontiers {
					for _, r := range fr.Rows {
						for _, pt := range []experiments.ParetoPoint{r.DVFS, r.Fixed, r.Oracle} {
							if pt.Cycles == 0 {
								return fmt.Errorf("%s at budget %.2f: %s point missing", fr.Workload, r.BudgetFrac, pt.Policy)
							}
							if pt.AvgPower > r.Budget*1.02 {
								return fmt.Errorf("%s at budget %.2f: %s drew %.3f average power, budget %.3f (+2%% slack)",
									fr.Workload, r.BudgetFrac, pt.Policy, pt.AvgPower, r.Budget)
							}
						}
					}
				}
				return nil
			},
		},
		{
			Name:  "pareto-frontier-monotone",
			Claim: "Loosening the budget never hurts: the static oracle's time is exactly non-increasing in the budget (a superset feasible set), and the FDT+DVFS and fixed-frequency points are non-increasing within a 15% training-and-model-noise band (Pareto frontier).",
			Heavy: true,
			Check: func(o experiments.Options) error {
				p := experiments.RunPareto(o)
				for _, fr := range p.Frontiers {
					// Rows are ordered by descending budget.
					for i := 1; i < len(fr.Rows); i++ {
						hi, lo := fr.Rows[i-1], fr.Rows[i]
						if hi.Oracle.Cycles > lo.Oracle.Cycles {
							return fmt.Errorf("%s: oracle took %d cycles at budget %.2f but %d at tighter %.2f — a feasible point was missed",
								fr.Workload, hi.Oracle.Cycles, hi.BudgetFrac, lo.Oracle.Cycles, lo.BudgetFrac)
						}
						for _, pair := range [][2]experiments.ParetoPoint{{hi.DVFS, lo.DVFS}, {hi.Fixed, lo.Fixed}} {
							if float64(pair[0].Cycles) > 1.15*float64(pair[1].Cycles) {
								return fmt.Errorf("%s: %s took %d cycles at budget %.2f, over 1.15x its %d at tighter %.2f",
									fr.Workload, pair[0].Policy, pair[0].Cycles, hi.BudgetFrac, pair[1].Cycles, lo.BudgetFrac)
							}
						}
					}
				}
				return nil
			},
		},
		{
			Name:  "corun-mapping-matters",
			Claim: "Thread-to-core mapping is a first-order knob for co-scheduling: packed and scattered mappings of the same pagemine+mg pair differ in makespan by at least 10%.",
			Check: func(o experiments.Options) error {
				specs := []core.TeamSpec{corunSpec("pagemine"), corunSpec("mg")}
				packed, err := core.RunCorun(o.Cfg, machine.MapPacked, specs, o.Mode)
				if err != nil {
					return err
				}
				scattered, err := core.RunCorun(o.Cfg, machine.MapScattered, specs, o.Mode)
				if err != nil {
					return err
				}
				hi, lo := packed.TotalCycles, scattered.TotalCycles
				if lo > hi {
					hi, lo = lo, hi
				}
				if lo == 0 || float64(hi)/float64(lo) < 1.10 {
					return fmt.Errorf("pagemine+mg: packed %d vs scattered %d cycles — mappings within 10%%, no placement effect", packed.TotalCycles, scattered.TotalCycles)
				}
				return nil
			},
		},
	}
}

// gauntletParents pulls one member's hybrid row and its two parent
// controllers' rows from the gauntlet scoreboard.
func gauntletParents(g experiments.Gauntlet, workload string) (hy, ad, hc experiments.GauntletRow, err error) {
	var ok bool
	if hy, ok = g.Row(workload, "hybrid"); !ok {
		return hy, ad, hc, fmt.Errorf("%s: no hybrid row", workload)
	}
	if ad, ok = g.Row(workload, "adaptive"); !ok {
		return hy, ad, hc, fmt.Errorf("%s: no adaptive row", workload)
	}
	if hc, ok = g.Row(workload, "hill-climb"); !ok {
		return hy, ad, hc, fmt.Errorf("%s: no hill-climb row", workload)
	}
	return hy, ad, hc, nil
}

// corunSpec builds a train-once SAT+BAT tenant spec for a registered
// workload.
func corunSpec(name string) core.TeamSpec {
	info, ok := workloads.ByName(name)
	if !ok {
		panic(fmt.Sprintf("shape: unknown workload %q", name))
	}
	return core.TeamSpec{Workload: name, Factory: info.Factory, Policy: core.Combined{}}
}

// ByName looks an assertion up by its stable name.
func ByName(name string) (Assertion, bool) {
	for _, a := range Assertions() {
		if a.Name == name {
			return a, true
		}
	}
	return Assertion{}, false
}

// decidedThreads reports the controller's headline decision — the
// first kernel's chosen team size.
func decidedThreads(r core.RunResult) int {
	if len(r.Kernels) == 0 {
		return 0
	}
	return r.Kernels[0].Decision.Threads
}
