package experiments

import (
	"strings"
	"testing"
)

func TestSMTDecisionsTrackLimiters(t *testing.T) {
	s := RunSMT(testOptions())
	if len(s.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(s.Rows))
	}
	byName := map[string]SMTRow{}
	for _, r := range s.Rows {
		byName[r.Workload] = r
	}
	// The limiters are machine resources that SMT does not change, so
	// the CS- and BW-limited decisions must stay (nearly) the same.
	for _, name := range []string{"pagemine", "ed"} {
		r := byName[name]
		if diff := r.SMTThreads - r.BaseThreads; diff < -2 || diff > 2 {
			t.Errorf("%s: threads moved from %.1f to %.1f under SMT", name, r.BaseThreads, r.SMTThreads)
		}
	}
	// The scalable workload must exploit the extra contexts.
	bs := byName["bscholes"]
	if bs.SMTThreads <= bs.BaseThreads {
		t.Errorf("bscholes: SMT threads %.1f not above base %.1f", bs.SMTThreads, bs.BaseThreads)
	}
	// Power is measured in cores and cannot exceed the core count.
	for _, r := range s.Rows {
		if r.SMTPower > 32.01 {
			t.Errorf("%s: SMT power %.2f exceeds the 32-core budget", r.Workload, r.SMTPower)
		}
	}
}

func TestSMTRenders(t *testing.T) {
	s := SMT{Rows: []SMTRow{{Workload: "x", BaseThreads: 7, SMTThreads: 7}}}
	if !strings.Contains(s.String(), "Section 9") {
		t.Error("render missing title")
	}
	if !strings.Contains(s.CSV(), "x,7.00,7.00") {
		t.Errorf("csv wrong:\n%s", s.CSV())
	}
}
