package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"fdt/internal/core"
	"fdt/internal/stats"
	"fdt/internal/workloads"
)

// SweepJobResult is the structured outcome of one sweep job: the
// full RunResult of every sweep point and policy placement, in the
// same shape fdtsweep's -json emits. The fdtd daemon marshals it as a
// job's result payload; because every RunResult either came from the
// simulator or JSON-round-tripped through the disk store, the payload
// is byte-stable across daemon restarts.
type SweepJobResult struct {
	Workload   string           `json:"workload"`
	Cores      int              `json:"cores"`
	Threads    []int            `json:"threads"`
	Sweep      []core.RunResult `json:"sweep,omitempty"`
	MinThreads int              `json:"min_threads,omitempty"`
	Policies   []core.RunResult `json:"policies,omitempty"`
}

// RunSweepJob sweeps a workload across static thread counts and then
// places the named policies, all through the process-wide run cache —
// the daemon-facing twin of the fdtsweep CLI path. counts may be
// empty when policies are given (policy placements only). Progress
// events flow to o.Progress: one per sweep point (with Threads set)
// and one per policy placement.
func RunSweepJob(o Options, workload string, counts []int, policies []string) (SweepJobResult, error) {
	info, ok := workloads.ByName(workload)
	if !ok {
		return SweepJobResult{}, fmt.Errorf("unknown workload %q", workload)
	}
	if len(counts) == 0 && len(policies) == 0 {
		return SweepJobResult{}, fmt.Errorf("empty job: no thread counts and no policies")
	}
	cores := o.Cfg.Mem.Cores
	for _, n := range counts {
		if n < 1 {
			return SweepJobResult{}, fmt.Errorf("bad thread count %d", n)
		}
	}

	res := SweepJobResult{
		Workload: info.Name,
		Cores:    cores,
		Threads:  counts,
	}
	if len(counts) > 0 {
		res.Sweep = sweepRuns(o, info.Name, counts)
		times := make([]uint64, len(res.Sweep))
		for i, r := range res.Sweep {
			times[i] = r.TotalCycles
		}
		idx, _ := stats.ArgMinUint(times)
		res.MinThreads = counts[idx]
	}
	for i, pname := range policies {
		r, err := runPolicyJob(o, info.Name, pname)
		if err != nil {
			return SweepJobResult{}, err
		}
		o.emit(ProgressEvent{
			Workload: info.Name, Policy: r.Policy, Cycles: r.TotalCycles,
			Index: i, Total: len(policies),
		})
		res.Policies = append(res.Policies, r)
	}
	return res, nil
}

// runPolicyJob resolves one policy name and executes it through the
// matching keyed (cached) runner. Measurement-driven controllers
// (adaptive, hillclimb, hybrid) have dedicated cache entry points;
// hill-climbing and the hybrid always run exact because their probes
// time real chunks.
func runPolicyJob(o Options, workload, pname string) (core.RunResult, error) {
	f := factory(workload)
	switch strings.ToLower(strings.TrimSpace(pname)) {
	case "adaptive":
		if o.powerOn() {
			return core.RunAdaptiveBudgetKeyed(o.Cfg, workload, f, core.Combined{},
				core.DefaultMonitorParams(), o.pp()), nil
		}
		return core.RunAdaptiveKeyedMode(o.Cfg, workload, f, core.Combined{},
			core.DefaultMonitorParams(), o.Mode), nil
	case "hillclimb", "hill-climb":
		if o.powerOn() {
			return core.RunResult{}, fmt.Errorf("policy %q does not support a power budget or P-state ladder (its probes time real chunks at nominal frequency)", pname)
		}
		return core.RunHillClimbKeyed(o.Cfg, workload, f, core.HillClimb{}), nil
	case "hybrid":
		if o.powerOn() {
			return core.RunResult{}, fmt.Errorf("policy %q does not support a power budget or P-state ladder (its probes time real chunks at nominal frequency)", pname)
		}
		return core.RunHybridKeyed(o.Cfg, workload, f, core.Hybrid{}), nil
	default:
		pol, err := PolicyByName(pname)
		if err != nil {
			return core.RunResult{}, err
		}
		if o.powerOn() {
			return core.RunPolicyBudgetKeyedMode(o.Cfg, workload, f, pol, o.pp(), o.Mode), nil
		}
		return core.RunPolicyKeyedMode(o.Cfg, workload, f, pol, o.Mode), nil
	}
}

// PolicyByName resolves a model-driven policy label: "sat", "bat",
// "sat+bat" (aliases "combined", "fdt"), "serial", or "static:N".
// Measurement-driven labels (adaptive, hillclimb, hybrid) are not
// Policies — they own their controllers — and are rejected here;
// RunSweepJob routes them to their dedicated runners.
func PolicyByName(name string) (core.Policy, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	switch n {
	case "sat":
		return core.SAT{}, nil
	case "bat":
		return core.BAT{}, nil
	case "sat+bat", "combined", "fdt":
		return core.Combined{}, nil
	case "serial":
		return core.Static{N: 1}, nil
	}
	if rest, ok := strings.CutPrefix(n, "static:"); ok {
		k, err := strconv.Atoi(rest)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad static policy %q (want static:N, N >= 1)", name)
		}
		return core.Static{N: k}, nil
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

// ValidPolicyName reports whether RunSweepJob can execute the label,
// including the measurement-driven controllers PolicyByName rejects.
func ValidPolicyName(name string) bool {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "adaptive", "hillclimb", "hill-climb", "hybrid":
		return true
	}
	_, err := PolicyByName(name)
	return err == nil
}
