package experiments

import (
	"strings"
	"testing"

	"fdt/internal/core"
	"fdt/internal/machine"
)

// TestAdaptiveRedecidesAtPhaseBoundaries is the tentpole's acceptance
// check: on the phased workload, the Monitor-driven pipeline must
// re-train at both behaviour changes — the critical-section onset at
// iteration 400 and the bandwidth onset at 800 — and beat train-once
// FDT on total cycles and power.
func TestAdaptiveRedecidesAtPhaseBoundaries(t *testing.T) {
	o := testOptions()
	mp := core.DefaultMonitorParams()

	m := machine.MustNew(o.Cfg)
	w := factory("phaseshift")(m)
	ad := core.NewAdaptiveController(core.Combined{}, mp).Run(m, w)
	if err := w.(interface{ Verify() error }).Verify(); err != nil {
		t.Fatalf("adaptive run computed a wrong result: %v", err)
	}

	k := ad.Kernels[0]
	if k.Retrains != 2 || len(k.Phases) != 3 {
		t.Fatalf("retrains=%d phases=%d, want 2 retrains / 3 phases: %+v",
			k.Retrains, len(k.Phases), k.Phases)
	}
	p := k.Phases
	if p[0].Trigger != "" || p[1].Trigger != "cs" || p[2].Trigger != "bus" {
		t.Errorf("triggers %q/%q/%q, want \"\"/\"cs\"/\"bus\"", p[0].Trigger, p[1].Trigger, p[2].Trigger)
	}
	// Detection lag is bounded by the monitoring granularity: at most
	// two intervals past the boundary (one to cross it, one to read a
	// full drifted interval).
	lag := 2 * mp.Interval
	if p[1].StartIter <= 400 || p[1].StartIter > 400+lag {
		t.Errorf("CS phase detected at %d, want in (400, %d]", p[1].StartIter, 400+lag)
	}
	if p[2].StartIter <= 800 || p[2].StartIter > 800+lag {
		t.Errorf("BW phase detected at %d, want in (800, %d]", p[2].StartIter, 800+lag)
	}
	// The CS phase must run far narrower than the scalable phase.
	if p[1].Decision.Threads >= p[0].Decision.Threads {
		t.Errorf("CS phase kept %d threads (scalable phase: %d)",
			p[1].Decision.Threads, p[0].Decision.Threads)
	}
	// KernelResult invariants: headline decision is phase 0's, totals
	// aggregate the phases.
	if k.Decision != p[0].Decision {
		t.Errorf("kernel decision %+v != first phase's %+v", k.Decision, p[0].Decision)
	}
	wantTrain := p[0].TrainIters + p[1].TrainIters + p[2].TrainIters
	if k.TrainIters != wantTrain {
		t.Errorf("TrainIters %d, want sum of phases %d", k.TrainIters, wantTrain)
	}

	once := core.RunPolicyKeyed(o.Cfg, "phaseshift", factory("phaseshift"), core.Combined{})
	if len(once.Kernels[0].Phases) != 0 || once.Kernels[0].Retrains != 0 {
		t.Errorf("train-once run recorded phases: %+v", once.Kernels[0])
	}
	if ad.TotalCycles >= once.TotalCycles {
		t.Errorf("adaptive %d cycles not below train-once %d", ad.TotalCycles, once.TotalCycles)
	}
	if ad.AvgActiveCores >= once.AvgActiveCores {
		t.Errorf("adaptive power %.2f not below train-once %.2f", ad.AvgActiveCores, once.AvgActiveCores)
	}
}

// TestAblationAdaptive checks the reported study: train-once row,
// adaptive row, then one row per adaptive phase.
func TestAblationAdaptive(t *testing.T) {
	a := AblationAdaptive(testOptions())
	if len(a.Rows) != 5 {
		t.Fatalf("%d rows, want 5 (train-once, adaptive, 3 phases):\n%s", len(a.Rows), a)
	}
	once, ad := a.Rows[0], a.Rows[1]
	if ad.Cycles >= once.Cycles {
		t.Errorf("adaptive %d cycles not below train-once %d", ad.Cycles, once.Cycles)
	}
	s := a.String()
	for _, want := range []string{"train-once", "adaptive (2 retrains)", "(cs)", "(bus)"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering lacks %q:\n%s", want, s)
		}
	}
}
