package experiments

import (
	"fmt"
	"strings"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/runner"
)

// This file implements the co-runner interference family: the
// multiprogrammed scenario the paper leaves open. Two workloads are
// co-scheduled on one machine, each on its own team under a
// thread-to-core mapping, each run by its own controller — and every
// tenant is compared against its own solo control run on the *same*
// partition (same core budget, same placement, empty machine
// otherwise), so the reported slowdown is pure shared-resource
// interference, not a smaller core allowance.

// InterferenceRow compares one tenant's solo and co-run executions
// under one mapping x policy combination.
type InterferenceRow struct {
	// Workload is this tenant's kernel; Corunner the one it shared the
	// machine with.
	Workload, Corunner string
	Mapping            string
	Policy             string
	Adaptive           bool

	SoloCycles, CorunCycles uint64
	// SlowdownPct is the co-run's execution-time penalty over solo.
	SlowdownPct           float64
	SoloPower, CorunPower float64
	// SoloThreads/CorunThreads are cycle-weighted average team sizes —
	// where the controller's decisions landed with and without the
	// co-runner's traffic in its counters.
	SoloThreads, CorunThreads float64
	// SoloRetrains/CorunRetrains count Monitor-triggered re-trainings
	// (adaptive rows only).
	SoloRetrains, CorunRetrains int
	// CorunBusShare is the tenant's fraction of all bus traffic in the
	// co-run.
	CorunBusShare float64
}

// InterferencePair is one co-scheduled workload pair's full table.
type InterferencePair struct {
	A, B string
	Rows []InterferenceRow
}

// Interference is the experiment family's result.
type Interference struct {
	Pairs []InterferencePair
}

// interferencePairs are the family's co-run pairs: a CS-limited
// kernel against a scalable one (does PageMine's controller still
// throttle threads when MG floods nothing?) and two bandwidth-limited
// kernels (ED and Convert fighting over the one resource BAT models).
func interferencePairs() [][2]string {
	return [][2]string{
		{"pagemine", "mg"},
		{"ed", "convert"},
	}
}

// interferenceMappings lists the mappings the family sweeps on a
// configuration: packed and scattered always; SMT-aware only when the
// machine has a plane per tenant.
func interferenceMappings(cfg machine.Config) []machine.Mapping {
	ms := []machine.Mapping{machine.MapPacked, machine.MapScattered}
	if cfg.SMTContexts >= 2 {
		ms = append(ms, machine.MapSMT)
	}
	return ms
}

// interferenceSpec builds one tenant's TeamSpec.
func interferenceSpec(name string, adaptive bool) core.TeamSpec {
	s := core.TeamSpec{Workload: name, Factory: factory(name), Policy: core.Combined{}}
	if adaptive {
		mp := core.DefaultMonitorParams()
		s.Monitor = &mp
	}
	return s
}

// interferenceCell runs one (pair, mapping, adaptive?) cell: both
// solo controls and the co-run, producing one row per tenant.
func interferenceCell(o Options, pair [2]string, mp machine.Mapping, adaptive bool) []InterferenceRow {
	specs := []core.TeamSpec{
		interferenceSpec(pair[0], adaptive),
		interferenceSpec(pair[1], adaptive),
	}
	co, err := core.RunCorun(o.Cfg, mp, specs, o.Mode)
	if err != nil {
		panic(fmt.Sprintf("experiments: corun %s+%s under %s: %v", pair[0], pair[1], mp, err))
	}
	rows := make([]InterferenceRow, 2)
	for i := range specs {
		solo, err := core.RunSolo(o.Cfg, mp, len(specs), i, specs[i], o.Mode)
		if err != nil {
			panic(fmt.Sprintf("experiments: solo %s under %s: %v", specs[i].Workload, mp, err))
		}
		ct := co.Teams[i]
		row := InterferenceRow{
			Workload:      specs[i].Workload,
			Corunner:      specs[1-i].Workload,
			Mapping:       mp.String(),
			Policy:        specs[i].Policy.Name(),
			Adaptive:      adaptive,
			SoloCycles:    solo.TotalCycles,
			CorunCycles:   ct.TotalCycles,
			SoloPower:     solo.AvgActiveCores,
			CorunPower:    ct.AvgActiveCores,
			SoloThreads:   solo.AvgThreads(),
			CorunThreads:  ct.AvgThreads(),
			CorunBusShare: ct.BusShare,
		}
		if solo.TotalCycles > 0 {
			row.SlowdownPct = 100 * (float64(ct.TotalCycles)/float64(solo.TotalCycles) - 1)
		}
		for _, k := range solo.Kernels {
			row.SoloRetrains += k.Retrains
		}
		for _, k := range ct.Kernels {
			row.CorunRetrains += k.Retrains
		}
		rows[i] = row
	}
	return rows
}

// RunInterference executes the family: every pair x mapping x
// {train-once, adaptive} cell, solo controls included. Cells simulate
// in parallel and memoize, like every other figure.
func RunInterference(o Options) Interference {
	return RunInterferencePairs(o, interferencePairs(), interferenceMappings(o.Cfg))
}

// RunInterferencePairs is RunInterference over explicit pairs and
// mappings — the hook behind `fdtreport -corun` / `-mapping`. Nil
// pairs or mappings mean the family defaults.
func RunInterferencePairs(o Options, pairs [][2]string, mappings []machine.Mapping) Interference {
	if pairs == nil {
		pairs = interferencePairs()
	}
	if mappings == nil {
		mappings = interferenceMappings(o.Cfg)
	}
	type job struct {
		pair     [2]string
		mp       machine.Mapping
		adaptive bool
	}
	var jobs []job
	for _, p := range pairs {
		for _, mp := range mappings {
			for _, ad := range []bool{false, true} {
				jobs = append(jobs, job{p, mp, ad})
			}
		}
	}
	cells := make([][]InterferenceRow, len(jobs))
	runner.Map(len(jobs), func(i int) {
		cells[i] = interferenceCell(o, jobs[i].pair, jobs[i].mp, jobs[i].adaptive)
	})

	var out Interference
	for _, p := range pairs {
		ip := InterferencePair{A: p[0], B: p[1]}
		for i, j := range jobs {
			if j.pair == p {
				ip.Rows = append(ip.Rows, cells[i]...)
			}
		}
		out.Pairs = append(out.Pairs, ip)
	}
	return out
}

// String renders the family as per-pair tables.
func (f Interference) String() string {
	var b strings.Builder
	b.WriteString("Co-runner interference: solo-on-partition vs co-run, per mapping x policy\n")
	for _, p := range f.Pairs {
		fmt.Fprintf(&b, "\n %s + %s\n", p.A, p.B)
		fmt.Fprintf(&b, "  %-9s %-9s %-9s %8s %12s %12s %9s %8s %8s %8s %9s\n",
			"workload", "mapping", "policy", "adaptive", "solo cyc", "corun cyc",
			"slowdown", "thr solo", "thr co", "retrains", "bus share")
		for _, r := range p.Rows {
			fmt.Fprintf(&b, "  %-9s %-9s %-9s %8v %12d %12d %8.1f%% %8.1f %8.1f %3d->%-3d %8.1f%%\n",
				r.Workload, r.Mapping, r.Policy, r.Adaptive, r.SoloCycles, r.CorunCycles,
				r.SlowdownPct, r.SoloThreads, r.CorunThreads,
				r.SoloRetrains, r.CorunRetrains, 100*r.CorunBusShare)
		}
	}
	return b.String()
}

// CSV renders the family as CSV.
func (f Interference) CSV() string {
	var b strings.Builder
	b.WriteString("pair,workload,corunner,mapping,policy,adaptive,solo_cycles,corun_cycles,slowdown_pct,solo_power,corun_power,solo_threads,corun_threads,solo_retrains,corun_retrains,corun_bus_share\n")
	for _, p := range f.Pairs {
		for _, r := range p.Rows {
			fmt.Fprintf(&b, "%s+%s,%s,%s,%s,%s,%v,%d,%d,%.2f,%.4f,%.4f,%.2f,%.2f,%d,%d,%.4f\n",
				p.A, p.B, r.Workload, r.Corunner, r.Mapping, r.Policy, r.Adaptive,
				r.SoloCycles, r.CorunCycles, r.SlowdownPct, r.SoloPower, r.CorunPower,
				r.SoloThreads, r.CorunThreads, r.SoloRetrains, r.CorunRetrains, r.CorunBusShare)
		}
	}
	return b.String()
}
