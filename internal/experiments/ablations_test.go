package experiments

import (
	"strings"
	"testing"
)

func TestAblationCoherenceMatters(t *testing.T) {
	a := AblationCoherence(testOptions())
	if len(a.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(a.Rows))
	}
	on, off := a.Rows[0], a.Rows[1]
	// Without MESI, critical sections lose the lock-line ping-pong,
	// so the run must get faster.
	if off.Cycles >= on.Cycles {
		t.Errorf("coherence off (%d cycles) not faster than on (%d)", off.Cycles, on.Cycles)
	}
}

func TestAblationRowBufferShiftsBU(t *testing.T) {
	a := AblationRowBuffer(testOptions())
	on, off := a.Rows[0], a.Rows[1]
	// Without row buffers every DRAM access pays the miss latency, so
	// a single thread spends longer per line and uses less of the bus.
	if off.BU1Pct >= on.BU1Pct {
		t.Errorf("BU1 without row buffers (%.2f%%) not below with (%.2f%%)", off.BU1Pct, on.BU1Pct)
	}
	// Both configurations must still classify ED as bandwidth-limited.
	if on.Threads >= 16 || off.Threads >= 16 {
		t.Errorf("BAT no longer limits ED: %d / %d threads", on.Threads, off.Threads)
	}
}

func TestAblationStoreBufferDepth(t *testing.T) {
	a := AblationStoreBuffer(testOptions())
	if len(a.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(a.Rows))
	}
	shallow, deep := a.Rows[0], a.Rows[2]
	// A 1-entry buffer serializes transpose's write bursts; deeper
	// buffers must not be slower.
	if deep.Cycles > shallow.Cycles {
		t.Errorf("deep store buffer slower (%d) than shallow (%d)", deep.Cycles, shallow.Cycles)
	}
}

func TestAblationStabilityWindowControlsTraining(t *testing.T) {
	a := AblationStabilityWindow(testOptions())
	byConfig := map[string]AblationRow{}
	for _, r := range a.Rows {
		byConfig[r.Config] = r
	}
	// A wider window cannot train for fewer iterations than a
	// narrower one (it needs more consecutive agreeing samples).
	if byConfig["window 6"].TrainIters < byConfig["window 3"].TrainIters {
		t.Errorf("window 6 trained %d iters < window 3's %d",
			byConfig["window 6"].TrainIters, byConfig["window 3"].TrainIters)
	}
	// The decision itself must be robust across windows.
	for cfgName, r := range byConfig {
		if r.Threads < 3 || r.Threads > 8 {
			t.Errorf("%s: decision %d threads drifted out of the CS regime", cfgName, r.Threads)
		}
	}
}

func TestAblationHillClimbTrainsMore(t *testing.T) {
	a := AblationTrainingOverhead(testOptions())
	// Pair up rows: FDT then hill-climb per workload.
	for i := 0; i+1 < len(a.Rows); i += 2 {
		fdt, hc := a.Rows[i], a.Rows[i+1]
		if fdt.Workload != hc.Workload {
			t.Fatalf("row pairing broken: %s vs %s", fdt.Workload, hc.Workload)
		}
		if hc.TrainIters <= fdt.TrainIters {
			t.Errorf("%s: hill-climb trained %d iters, FDT %d — search should cost more",
				fdt.Workload, hc.TrainIters, fdt.TrainIters)
		}
	}
}

func TestAblationPrefetcherRaisesBU1(t *testing.T) {
	a := AblationPrefetcher(testOptions())
	off, on := a.Rows[0], a.Rows[1]
	if on.BU1Pct <= off.BU1Pct {
		t.Errorf("prefetcher BU1 %.2f%% not above baseline %.2f%%", on.BU1Pct, off.BU1Pct)
	}
	if on.Threads >= off.Threads {
		t.Errorf("prefetching machine got %d threads, baseline %d — BAT should need fewer", on.Threads, off.Threads)
	}
	// The bus is the bottleneck either way: execution time must stay
	// in the same ballpark despite fewer cores.
	if float64(on.Cycles) > 1.25*float64(off.Cycles) {
		t.Errorf("prefetching run %d cycles vs %d — lost the bus bound", on.Cycles, off.Cycles)
	}
}

func TestAblationRefinedBATNotBelowPlain(t *testing.T) {
	a := AblationRefinedBAT(testOptions())
	for i := 0; i+1 < len(a.Rows); i += 2 {
		plain, refined := a.Rows[i], a.Rows[i+1]
		if refined.Threads < plain.Threads {
			t.Errorf("%s: refined BAT %d threads below plain %d", plain.Workload, refined.Threads, plain.Threads)
		}
		if refined.TrainIters <= plain.TrainIters {
			t.Errorf("%s: refined BAT trained %d iters, plain %d", plain.Workload, refined.TrainIters, plain.TrainIters)
		}
	}
}

func TestAblationsRender(t *testing.T) {
	a := AblationCoherence(testOptions())
	s := a.String()
	if !strings.Contains(s, "coherence on") || !strings.Contains(s, "pagemine") {
		t.Errorf("render incomplete:\n%s", s)
	}
}
