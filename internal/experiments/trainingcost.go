package experiments

import (
	"fmt"
	"strings"

	"fdt/internal/core"
)

// TrainingCostRow quantifies FDT's runtime overhead for one workload:
// how many iterations trained, what fraction of the run they took,
// and how training terminated.
type TrainingCostRow struct {
	Workload string
	Kernel   string
	// TrainIters / TotalIters is the sampled fraction (paper: at
	// most 1%, usually far less thanks to the stability and
	// early-out terminations).
	TrainIters, TotalIters int
	// TrainPct is training time as a percentage of the whole run.
	TrainPct float64
	Threads  int
}

// TrainingCost reports the overhead table for all twelve workloads
// under SAT+BAT — the quantitative backing for the paper's "requires
// minimal support ... leverages existing performance counters" claim:
// the technique's cost is a handful of single-threaded iterations.
type TrainingCost struct {
	Rows []TrainingCostRow
}

// RunTrainingCost executes the experiment.
func RunTrainingCost(o Options) TrainingCost {
	var t TrainingCost
	for _, name := range AllWorkloads {
		r := core.RunPolicy(o.Cfg, factory(name), core.Combined{})
		for _, k := range r.Kernels {
			t.Rows = append(t.Rows, TrainingCostRow{
				Workload:   name,
				Kernel:     k.Kernel,
				TrainIters: k.TrainIters,
				TrainPct:   100 * float64(k.TrainCycles) / float64(r.TotalCycles),
				Threads:    k.Decision.Threads,
			})
		}
	}
	return t
}

// String renders the table.
func (t TrainingCost) String() string {
	var b strings.Builder
	b.WriteString("FDT training cost (SAT+BAT, per kernel)\n")
	fmt.Fprintf(&b, "  %-22s %10s %10s %8s\n", "kernel", "trainiters", "train%run", "threads")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-22s %10d %9.1f%% %8d\n", r.Kernel, r.TrainIters, r.TrainPct, r.Threads)
	}
	return b.String()
}

// CSV renders the table as CSV.
func (t TrainingCost) CSV() string {
	var b strings.Builder
	b.WriteString("workload,kernel,train_iters,train_pct,threads\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%s,%d,%.3f,%d\n", r.Workload, r.Kernel, r.TrainIters, r.TrainPct, r.Threads)
	}
	return b.String()
}
