package experiments

import (
	"fmt"
	"strings"

	"fdt/internal/core"
	"fdt/internal/runner"
)

// TrainingCostRow quantifies FDT's runtime overhead for one workload:
// how many iterations trained, what fraction of the run they took,
// and how training terminated.
type TrainingCostRow struct {
	Workload string
	Kernel   string
	// TrainIters / TotalIters is the sampled fraction (paper: at
	// most 1%, usually far less thanks to the stability and
	// early-out terminations).
	TrainIters, TotalIters int
	// TrainPct is training time as a percentage of the whole run.
	TrainPct float64
	Threads  int
}

// TrainingCost reports the overhead table for all twelve workloads
// under SAT+BAT — the quantitative backing for the paper's "requires
// minimal support ... leverages existing performance counters" claim:
// the technique's cost is a handful of single-threaded iterations.
type TrainingCost struct {
	Rows []TrainingCostRow
}

// RunTrainingCost executes the experiment. The SAT+BAT runs are the
// same memoized executions Fig 14/15 use, so with a warm cache this
// table costs nothing.
func RunTrainingCost(o Options) TrainingCost {
	var t TrainingCost
	rows := make([][]TrainingCostRow, len(AllWorkloads))
	runner.Map(len(AllWorkloads), func(i int) {
		name := AllWorkloads[i]
		r := runNamed(o, name, core.Combined{})
		for _, k := range r.Kernels {
			rows[i] = append(rows[i], TrainingCostRow{
				Workload:   name,
				Kernel:     k.Kernel,
				TrainIters: k.TrainIters,
				TrainPct:   100 * float64(k.TrainCycles) / float64(r.TotalCycles),
				Threads:    k.Decision.Threads,
			})
		}
	})
	for _, rs := range rows {
		t.Rows = append(t.Rows, rs...)
	}
	return t
}

// String renders the table.
func (t TrainingCost) String() string {
	var b strings.Builder
	b.WriteString("FDT training cost (SAT+BAT, per kernel)\n")
	fmt.Fprintf(&b, "  %-22s %10s %10s %8s\n", "kernel", "trainiters", "train%run", "threads")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-22s %10d %9.1f%% %8d\n", r.Kernel, r.TrainIters, r.TrainPct, r.Threads)
	}
	return b.String()
}

// CSV renders the table as CSV.
func (t TrainingCost) CSV() string {
	var b strings.Builder
	b.WriteString("workload,kernel,train_iters,train_pct,threads\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%s,%d,%.3f,%d\n", r.Workload, r.Kernel, r.TrainIters, r.TrainPct, r.Threads)
	}
	return b.String()
}
