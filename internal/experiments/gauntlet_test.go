package experiments

import (
	"strings"
	"testing"
)

// The robustness acceptance numbers: per-member ceilings on the hybrid
// controller's time-vs-oracle ratio, set from the measured table with a
// little headroom (measured: oscillate 1.124, csdep 1.150, busstorm
// 1.051, eqclash 1.155). On oscillate, busstorm and eqclash the hybrid
// sits within 10% of the member's best controller; on csdep it lands
// 11.6% over hill-climb's 1.029 — the probe comparisons cost real
// iterations and csdep is the family's shortest kernel, so the audit
// overhead is a larger slice of the run (EXPERIMENTS.md documents the
// miss). The ceilings gate against regression, not against the paper.
var hybridCeilings = map[string]float64{
	"gauntlet/oscillate": 1.16,
	"gauntlet/csdep":     1.19,
	"gauntlet/busstorm":  1.09,
	"gauntlet/eqclash":   1.20,
}

func TestGauntletRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("full gauntlet: 7 controllers x 4 members plus oracle sweeps")
	}
	g := RunGauntlet(testOptions())
	if len(g.Members) != 4 {
		t.Fatalf("%d gauntlet members, want 4", len(g.Members))
	}

	adaptiveLosses := 0
	for _, m := range g.Members {
		hy, ok := g.Row(m.Workload, "hybrid")
		if !ok {
			t.Fatalf("%s: no hybrid row", m.Workload)
		}
		ad, ok := g.Row(m.Workload, "adaptive")
		if !ok {
			t.Fatalf("%s: no adaptive row", m.Workload)
		}
		hc, ok := g.Row(m.Workload, "hill-climb")
		if !ok {
			t.Fatalf("%s: no hill-climb row", m.Workload)
		}

		// Never worse than the worse parent, on every member.
		worst := ad.VsOracle
		if hc.VsOracle > worst {
			worst = hc.VsOracle
		}
		if hy.VsOracle > worst {
			t.Errorf("%s: hybrid %.3fx oracle, worse than both parents (adaptive %.3fx, hill-climb %.3fx)",
				m.Workload, hy.VsOracle, ad.VsOracle, hc.VsOracle)
		}
		// Absolute per-member ceiling.
		if ceil := hybridCeilings[m.Workload]; hy.VsOracle > ceil {
			t.Errorf("%s: hybrid %.3fx oracle, ceiling %.2fx", m.Workload, hy.VsOracle, ceil)
		}
		if ad.VsOracle >= 1.25 {
			adaptiveLosses++
		}
		// Hysteresis: the state machine never thrashes.
		if hy.Fallbacks > 2 || hy.Recoveries > 2 {
			t.Errorf("%s: hybrid transitions %d fallbacks / %d recoveries, want <= 2 each",
				m.Workload, hy.Fallbacks, hy.Recoveries)
		}
	}
	// The gauntlet must actually break the pure-model pipeline — it is
	// only a robustness test if the adversaries draw blood.
	if adaptiveLosses < 2 {
		t.Errorf("pure-model adaptive loses >= 25%% on only %d members, want >= 2 (the gauntlet is too soft)", adaptiveLosses)
	}

	// The fallback story: busstorm's bursts break the trained bus
	// expectation, the hybrid must notice and switch to measured mode.
	bu, _ := g.Row("gauntlet/busstorm", "hybrid")
	if bu.Fallbacks < 1 {
		t.Errorf("gauntlet/busstorm: hybrid never fell back (%d fallbacks)", bu.Fallbacks)
	}
}

func TestGauntletScoreboardShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full gauntlet: 7 controllers x 4 members plus oracle sweeps")
	}
	g := RunGauntlet(testOptions())

	for _, m := range g.Members {
		if m.Breaks == "" {
			t.Errorf("%s: no Breaks description", m.Workload)
		}
		if m.OracleThreads < 1 || m.OracleCycles == 0 {
			t.Errorf("%s: malformed oracle (%d threads, %d cycles)", m.Workload, m.OracleThreads, m.OracleCycles)
		}
		if len(m.Rows) != len(gauntletPolicies()) {
			t.Errorf("%s: %d rows, want %d", m.Workload, len(m.Rows), len(gauntletPolicies()))
		}
		best := m.Best()
		for _, r := range m.Rows {
			if r.Cycles < best.Cycles {
				t.Errorf("%s: Best() returned %s (%d cycles) but %s has %d", m.Workload, best.Policy, best.Cycles, r.Policy, r.Cycles)
			}
			// VsOracle >= 1 by construction: the oracle is the best
			// static run, and no controller beats the member's best
			// static allocation on these kernels.
			if r.VsOracle < 1.0 {
				t.Errorf("%s/%s: VsOracle %.3f < 1 — oracle is not the sweep minimum", m.Workload, r.Policy, r.VsOracle)
			}
		}
		// Training and probing are free for the serial baseline only.
		if serial, ok := g.Row(m.Workload, "serial"); !ok || serial.Retrains != 0 || serial.Fallbacks != 0 {
			t.Errorf("%s: serial row has retrains/fallbacks", m.Workload)
		}
	}

	if _, ok := g.Member("gauntlet/oscillate"); !ok {
		t.Error("Member() misses a scored member")
	}
	if _, ok := g.Member("gauntlet/nosuch"); ok {
		t.Error("Member() invents a member")
	}
	if _, ok := g.Row("gauntlet/oscillate", "nosuch"); ok {
		t.Error("Row() invents a policy")
	}

	s := g.String()
	for _, want := range []string{"Robustness gauntlet", "gauntlet/oscillate", "gauntlet/eqclash",
		"vs.oracle", "fall", "rec", "<- best", "breaks:"} {
		if !strings.Contains(s, want) {
			t.Errorf("table rendering missing %q", want)
		}
	}
	csv := g.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if want := 1 + 4*len(gauntletPolicies()); len(lines) != want {
		t.Errorf("CSV has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "workload,breaks,oracle_threads") {
		t.Errorf("CSV header malformed: %s", lines[0])
	}
}
