package experiments

import (
	"strings"
	"testing"
)

func TestTrainingCostBounded(t *testing.T) {
	tc := RunTrainingCost(testOptions())
	if len(tc.Rows) < 12 {
		t.Fatalf("%d rows, want >= 12 (one per kernel)", len(tc.Rows))
	}
	for _, r := range tc.Rows {
		if r.TrainIters < 2 {
			t.Errorf("%s trained %d iterations, want >= 2 (warmup + measurement)", r.Kernel, r.TrainIters)
		}
		if r.TrainIters > 20 {
			t.Errorf("%s trained %d iterations — early termination broken", r.Kernel, r.TrainIters)
		}
		if r.TrainPct > 20 {
			t.Errorf("%s spent %.1f%% of the run training", r.Kernel, r.TrainPct)
		}
	}
}

func TestTrainingCostRenders(t *testing.T) {
	tc := TrainingCost{Rows: []TrainingCostRow{{Workload: "w", Kernel: "k", TrainIters: 3, TrainPct: 1.5, Threads: 7}}}
	if !strings.Contains(tc.String(), "k") {
		t.Error("render missing kernel")
	}
	if !strings.Contains(tc.CSV(), "w,k,3,1.500,7") {
		t.Errorf("csv wrong:\n%s", tc.CSV())
	}
}
