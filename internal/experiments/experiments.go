// Package experiments reproduces every table and figure of the
// paper's evaluation. Each Fig* function runs the simulations behind
// one figure and returns a printable result whose rows/series mirror
// what the paper plots; cmd/fdtreport renders them all.
//
// The per-experiment index lives in DESIGN.md; paper-vs-measured
// numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/runner"
	"fdt/internal/stats"
	"fdt/internal/workloads"
)

// Options configures an experiment run.
type Options struct {
	// Cfg is the simulated machine (Table 1 by default).
	Cfg machine.Config
	// SweepThreads are the static thread counts swept for baseline
	// curves and the oracle. Defaults to 1..cores.
	SweepThreads []int
	// Mode selects exact or sampled execution for every run the
	// experiment performs (zero value = exact; see core.Mode).
	Mode core.Mode
	// Progress, when non-nil, receives one event per completed
	// simulated run (sweep points and policy placements). It is the
	// injection point that decouples experiments from "one process,
	// one report": cmd/fdtreport leaves it nil and prints summaries,
	// the fdtd daemon injects a sink that forwards into each job's SSE
	// stream. Sweep points complete on worker-pool goroutines, so the
	// sink must be safe for concurrent use; Index orders events.
	Progress ProgressFunc
	// Power, when non-nil, runs every policy placement and sweep
	// point under a power budget on Cfg's P-state ladder (the
	// fdtsweep/fdtd budget plumbing). nil with a trivial ladder is
	// the PR 9 path, byte-identical results and cache keys.
	Power *core.PowerParams
}

// powerOn reports whether runs need the budget-aware entry points: an
// explicit budget, or a non-trivial ladder on the machine (which by
// itself arms the controller's (threads, frequency) search).
func (o Options) powerOn() bool {
	return o.Power != nil || !o.Cfg.Freq.Trivial()
}

// pp resolves the effective power parameters.
func (o Options) pp() core.PowerParams {
	if o.Power != nil {
		return *o.Power
	}
	return core.DefaultPowerParams()
}

// ProgressFunc receives experiment progress events. Implementations
// must be safe for concurrent use.
type ProgressFunc func(ProgressEvent)

// ProgressEvent describes one completed simulated run inside an
// experiment or sweep.
type ProgressEvent struct {
	// Workload names the run's workload; Policy its resolved policy
	// label ("static-7", "SAT+BAT", ...).
	Workload string `json:"workload"`
	Policy   string `json:"policy"`
	// Threads is the static thread count of a sweep point; 0 for
	// policy placements (the policy chose its own count).
	Threads int `json:"threads,omitempty"`
	// Cycles is the run's simulated execution time.
	Cycles uint64 `json:"cycles"`
	// Index and Total place the event inside its batch: sweep points
	// report their position in the sweep, policy placements their
	// position in the policy list.
	Index int `json:"index"`
	Total int `json:"total"`
}

// emit forwards an event to the configured sink, if any.
func (o Options) emit(ev ProgressEvent) {
	if o.Progress != nil {
		o.Progress(ev)
	}
}

// DefaultOptions returns the paper's setup: the Table-1 machine and a
// full 1..32 sweep.
func DefaultOptions() Options {
	return Options{Cfg: machine.DefaultConfig()}
}

func (o Options) threads() []int {
	if len(o.SweepThreads) > 0 {
		return o.SweepThreads
	}
	out := make([]int, o.Cfg.Mem.Cores)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// factory resolves a registered workload into a core.Factory.
func factory(name string) core.Factory {
	info, ok := workloads.ByName(name)
	if !ok {
		panic(fmt.Sprintf("experiments: unknown workload %q", name))
	}
	return func(m *machine.Machine) core.Workload { return info.Factory(m) }
}

// SweepPoint is one point of a baseline curve.
type SweepPoint struct {
	Threads  int
	Cycles   uint64
	NormTime float64 // normalized to the sweep's first point
	BusUtil  float64 // fraction of the run the data bus was busy
	Power    float64 // average active cores
}

// Curve is a swept baseline plus the thread counts that minimize it.
type Curve struct {
	Workload   string
	Points     []SweepPoint
	MinThreads int
	MinCycles  uint64
}

// runNamed executes (or recalls) a registered workload under a policy
// through the process-wide run cache, keyed by the workload name.
func runNamed(o Options, name string, pol core.Policy) core.RunResult {
	var r core.RunResult
	if o.powerOn() {
		r = core.RunPolicyBudgetKeyedMode(o.Cfg, name, factory(name), pol, o.pp(), o.Mode)
	} else {
		r = core.RunPolicyKeyedMode(o.Cfg, name, factory(name), pol, o.Mode)
	}
	o.emit(ProgressEvent{Workload: name, Policy: r.Policy, Cycles: r.TotalCycles, Total: 1})
	return r
}

// sweep produces a Curve for a workload. Sweep points are simulated in
// parallel and memoized under the workload name, so figures sharing a
// baseline (Fig 8's panels reappear inside Fig 15's oracle) simulate
// each point once per process. Each completed point is reported to the
// Options' progress sink from its worker goroutine.
func sweep(o Options, name string) Curve {
	ts := o.threads()
	runs := sweepRuns(o, name, ts)
	base := runs[0].TotalCycles
	c := Curve{Workload: name}
	times := make([]uint64, len(runs))
	for i, r := range runs {
		times[i] = r.TotalCycles
		c.Points = append(c.Points, SweepPoint{
			Threads:  ts[i],
			Cycles:   r.TotalCycles,
			NormTime: float64(r.TotalCycles) / float64(base),
			BusUtil:  machine.BusUtilization(r.BusBusyCycles, r.TotalCycles),
			Power:    r.AvgActiveCores,
		})
	}
	idx, minCycles := stats.ArgMinUint(times)
	c.MinThreads = ts[idx]
	c.MinCycles = minCycles
	return c
}

// sweepRuns is core.SweepKeyedMode with per-point progress reporting:
// identical scheduling (runner worker pool), identical results,
// identical cache keys.
func sweepRuns(o Options, name string, ts []int) []core.RunResult {
	f := factory(name)
	out := make([]core.RunResult, len(ts))
	runner.Map(len(ts), func(i int) {
		if o.powerOn() {
			out[i] = core.RunPolicyBudgetKeyedMode(o.Cfg, name, f, core.Static{N: ts[i]}, o.pp(), o.Mode)
		} else {
			out[i] = core.RunPolicyKeyedMode(o.Cfg, name, f, core.Static{N: ts[i]}, o.Mode)
		}
		o.emit(ProgressEvent{
			Workload: name, Policy: out[i].Policy, Threads: ts[i],
			Cycles: out[i].TotalCycles, Index: i, Total: len(ts),
		})
	})
	return out
}

// PolicyPoint is where a feedback policy lands on a curve.
type PolicyPoint struct {
	Policy     string
	Run        core.RunResult
	NormTime   float64 // vs the curve's 1-thread base
	OverMinPct float64 // percent above the curve's minimum
}

func policyPoint(o Options, name string, pol core.Policy, c Curve) PolicyPoint {
	r := runNamed(o, name, pol)
	base := c.Points[0].Cycles
	return PolicyPoint{
		Policy:     pol.Name(),
		Run:        r,
		NormTime:   float64(r.TotalCycles) / float64(base),
		OverMinPct: 100 * (float64(r.TotalCycles)/float64(c.MinCycles) - 1),
	}
}

// formatCurve renders a curve (and optional policy points) as the
// text analogue of the paper's figure panels.
func formatCurve(b *strings.Builder, c Curve, pts ...PolicyPoint) {
	fmt.Fprintf(b, "  %-10s %8s %10s %9s %8s\n", c.Workload, "threads", "cycles", "norm", "bus")
	for _, p := range c.Points {
		marker := ""
		if p.Threads == c.MinThreads {
			marker = "  <- min"
		}
		fmt.Fprintf(b, "  %-10s %8d %10d %9.3f %7.1f%%%s\n",
			"", p.Threads, p.Cycles, p.NormTime, 100*p.BusUtil, marker)
	}
	for _, pp := range pts {
		fmt.Fprintf(b, "  %-10s %s -> %s, norm %.3f (%.1f%% above min), power %.2f\n",
			"", pp.Policy, threadsLabel(pp.Run), pp.NormTime, pp.OverMinPct, pp.Run.AvgActiveCores)
	}
}

// chosenThreads summarizes a run's decision (single-kernel runs).
func chosenThreads(r core.RunResult) int {
	if len(r.Kernels) == 0 {
		return 0
	}
	return r.Kernels[0].Decision.Threads
}

// threadsLabel renders per-kernel decisions ("7 threads" or
// "gen=32, boxmuller=7 threads").
func threadsLabel(r core.RunResult) string {
	if len(r.Kernels) == 1 {
		return fmt.Sprintf("%d thread(s)", r.Kernels[0].Decision.Threads)
	}
	parts := make([]string, len(r.Kernels))
	for i, k := range r.Kernels {
		parts[i] = fmt.Sprintf("%s=%d", k.Kernel, k.Decision.Threads)
	}
	return strings.Join(parts, ", ") + " threads"
}
