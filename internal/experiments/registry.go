package experiments

import "strings"

// RegistryEntry is one runnable experiment: the unit cmd/fdtreport
// renders and the fdtd daemon serves as an "experiment" job. Run
// returns the text rendition, the CSV series (empty for text-only
// tables), and the experiment's data value for JSON emission (nil for
// text-only tables).
type RegistryEntry struct {
	Name string
	Run  func() (text, csv string, data any)
}

// Registry lists every experiment over the given options, in report
// order. It is the single catalogue behind both front ends — the
// fdtreport CLI and the fdtd daemon — so a figure regenerated
// interactively and one served over HTTP run exactly the same code
// path (and therefore share run-cache entries).
func Registry(o Options) []RegistryEntry {
	return []RegistryEntry{
		{"table1", func() (string, string, any) { return Table1(o.Cfg), "", nil }},
		{"table2", func() (string, string, any) { return Table2(), "", nil }},
		{"fig2", func() (string, string, any) { f := RunFig02(o); return f.String(), f.CSV(), f }},
		{"fig4", func() (string, string, any) { f := RunFig04(o); return f.String(), f.CSV(), f }},
		{"fig8", func() (string, string, any) { f := RunFig08(o); return f.String(), f.CSV(), f }},
		{"fig9", func() (string, string, any) { f := RunFig09(o); return f.String(), f.CSV(), f }},
		{"fig10", func() (string, string, any) { f := RunFig10(o); return f.String(), f.CSV(), f }},
		{"fig12", func() (string, string, any) { f := RunFig12(o); return f.String(), f.CSV(), f }},
		{"fig13", func() (string, string, any) { f := RunFig13(o); return f.String(), f.CSV(), f }},
		{"fig14", func() (string, string, any) { f := RunFig14(o); return f.String(), f.CSV(), f }},
		{"fig15", func() (string, string, any) { f := RunFig15(o); return f.String(), f.CSV(), f }},
		{"smt", func() (string, string, any) { s := RunSMT(o); return s.String(), s.CSV(), s }},
		{"trainingcost", func() (string, string, any) { t := RunTrainingCost(o); return t.String(), t.CSV(), t }},
		{"interference", func() (string, string, any) {
			f := RunInterferencePairs(o, nil, nil)
			return f.String(), f.CSV(), f
		}},
		{"gauntlet", func() (string, string, any) { g := RunGauntlet(o); return g.String(), g.CSV(), g }},
		{"pareto", func() (string, string, any) { p := RunPareto(o); return p.String(), p.CSV(), p }},
		{"ablations", func() (string, string, any) {
			as := RunAblations(o)
			var texts, csvs []string
			for _, a := range as {
				texts = append(texts, a.String())
				csvs = append(csvs, a.CSV())
			}
			return strings.Join(texts, "\n"), strings.Join(csvs, ""), as
		}},
	}
}

// RegistryNames lists the experiment names Registry serves, in order.
func RegistryNames() []string {
	entries := Registry(DefaultOptions())
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names
}

// LookupExperiment finds one registry entry by name.
func LookupExperiment(o Options, name string) (RegistryEntry, bool) {
	for _, e := range Registry(o) {
		if e.Name == name {
			return e, true
		}
	}
	return RegistryEntry{}, false
}
