package experiments

import (
	"fmt"
	"strings"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/runner"
	"fdt/internal/workloads"
)

// Fig08 reproduces Figure 8: SAT's placement on the baseline curves
// of the four synchronization-limited applications (PageMine, ISort,
// GSearch, EP). The paper reports SAT within 1% of the minimum
// execution time for all four.
type Fig08 struct {
	Panels []Fig08Panel
}

// Fig08Panel is one application's panel.
type Fig08Panel struct {
	Curve Curve
	SAT   PolicyPoint
}

// Fig08Workloads lists the panel order.
var Fig08Workloads = []string{"pagemine", "isort", "gsearch", "ep"}

// RunFig08 executes the experiment, one parallel panel per workload.
func RunFig08(o Options) Fig08 {
	var f Fig08
	f.Panels = make([]Fig08Panel, len(Fig08Workloads))
	runner.Map(len(Fig08Workloads), func(i int) {
		name := Fig08Workloads[i]
		c := sweep(o, name)
		f.Panels[i] = Fig08Panel{
			Curve: c,
			SAT:   policyPoint(o, name, core.SAT{}, c),
		}
	})
	return f
}

// String renders the figure.
func (f Fig08) String() string {
	var b strings.Builder
	b.WriteString("Figure 8: SAT on synchronization-limited applications\n")
	for _, p := range f.Panels {
		formatCurve(&b, p.Curve, p.SAT)
	}
	return b.String()
}

// Fig09 reproduces Figure 9: the best number of threads for PageMine
// as the page size varies from 1KB to 25KB. The paper's best count
// grows from ~2 at 1KB to ~13 at 25KB — the reason a static choice
// tuned for one input set is wrong for another.
type Fig09 struct {
	PageBytes   []int
	BestThreads []int
	SATThreads  []int
}

// Fig09PageSizes are the swept page sizes (bytes).
var Fig09PageSizes = []int{1 << 10, 2560, 5280, 10 << 10, 15 << 10, 20 << 10, 25 << 10}

// RunFig09 executes the experiment, one parallel lane per page size.
// Each lane's runs are keyed by the PageMine parameters, so the 2.5KB
// and 10KB sweeps are shared verbatim with Fig 10.
func RunFig09(o Options) Fig09 {
	var f Fig09
	f.PageBytes = make([]int, len(Fig09PageSizes))
	f.BestThreads = make([]int, len(Fig09PageSizes))
	f.SATThreads = make([]int, len(Fig09PageSizes))
	runner.Map(len(Fig09PageSizes), func(i int) {
		pb := Fig09PageSizes[i]
		fac, wkey := pageMineSized(pb)
		runs := core.SweepKeyedMode(o.Cfg, wkey, fac, o.threads(), o.Mode)
		times := make([]uint64, len(runs))
		for j, r := range runs {
			times[j] = r.TotalCycles
		}
		best := o.threads()[fewestIdx(times)]
		sat := core.RunPolicyKeyedMode(o.Cfg, wkey, fac, core.SAT{}, o.Mode)
		f.PageBytes[i] = pb
		f.BestThreads[i] = best
		f.SATThreads[i] = chosenThreads(sat)
	})
	return f
}

// pageMineSized builds a PageMine factory with a non-default page size
// plus the cache key naming that parameterization.
func pageMineSized(pageBytes int) (core.Factory, string) {
	params := workloads.DefaultPageMineParams()
	params.PageBytes = pageBytes
	fac := func(m *machine.Machine) core.Workload { return workloads.NewPageMine(m, params) }
	return fac, fmt.Sprintf("pagemine/pb=%d", pageBytes)
}

// fewestIdx picks the fewest threads within 1% of the minimum — the
// paper's definition of "best number of threads".
func fewestIdx(times []uint64) int {
	best := times[0]
	for _, t := range times {
		if t < best {
			best = t
		}
	}
	limit := float64(best) * 1.01
	for i, t := range times {
		if float64(t) <= limit {
			return i
		}
	}
	return 0
}

// String renders the figure.
func (f Fig09) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: best thread count vs PageMine page size\n")
	fmt.Fprintf(&b, "  %10s %6s %4s\n", "page-bytes", "best", "SAT")
	for i := range f.PageBytes {
		fmt.Fprintf(&b, "  %10d %6d %4d\n", f.PageBytes[i], f.BestThreads[i], f.SATThreads[i])
	}
	return b.String()
}

// Fig10 reproduces Figure 10: PageMine's curves for 2.5KB and 10KB
// pages with SAT's choice marked — SAT adapts to the input set.
type Fig10 struct {
	Small, Large Curve
	SATSmall     PolicyPoint
	SATLarge     PolicyPoint
}

// RunFig10 executes the experiment. Both page sizes also appear in
// Fig 9's sweep, so with a warm cache this figure simulates nothing.
func RunFig10(o Options) Fig10 {
	run := func(pageBytes int) (Curve, PolicyPoint) {
		fac, wkey := pageMineSized(pageBytes)
		ts := o.threads()
		runs := core.SweepKeyedMode(o.Cfg, wkey, fac, ts, o.Mode)
		c := Curve{Workload: fmt.Sprintf("pagemine-%dB", pageBytes)}
		base := runs[0].TotalCycles
		times := make([]uint64, len(runs))
		for i, r := range runs {
			times[i] = r.TotalCycles
			c.Points = append(c.Points, SweepPoint{
				Threads:  ts[i],
				Cycles:   r.TotalCycles,
				NormTime: float64(r.TotalCycles) / float64(base),
				BusUtil:  machine.BusUtilization(r.BusBusyCycles, r.TotalCycles),
				Power:    r.AvgActiveCores,
			})
		}
		idx := fewestIdx(times)
		c.MinThreads, c.MinCycles = ts[idx], times[idx]
		sat := core.RunPolicyKeyedMode(o.Cfg, wkey, fac, core.SAT{}, o.Mode)
		pp := PolicyPoint{
			Policy:   "SAT",
			Run:      sat,
			NormTime: float64(sat.TotalCycles) / float64(base),
		}
		var minAll uint64 = times[0]
		for _, t := range times {
			if t < minAll {
				minAll = t
			}
		}
		pp.OverMinPct = 100 * (float64(sat.TotalCycles)/float64(minAll) - 1)
		return c, pp
	}
	var f Fig10
	sizes := []int{2560, 10 << 10}
	curves := make([]Curve, len(sizes))
	points := make([]PolicyPoint, len(sizes))
	runner.Map(len(sizes), func(i int) {
		curves[i], points[i] = run(sizes[i])
	})
	f.Small, f.SATSmall = curves[0], points[0]
	f.Large, f.SATLarge = curves[1], points[1]
	return f
}

// String renders the figure.
func (f Fig10) String() string {
	var b strings.Builder
	b.WriteString("Figure 10: SAT adapts to PageMine page size (2.5KB and 10KB)\n")
	formatCurve(&b, f.Small, f.SATSmall)
	formatCurve(&b, f.Large, f.SATLarge)
	return b.String()
}
