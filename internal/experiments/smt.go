package experiments

import (
	"fmt"
	"strings"

	"fdt/internal/core"
	"fdt/internal/runner"
)

// SMTRow compares one workload under FDT on the paper's machine and
// on an SMT variant with the same core count but two hardware
// contexts per core.
type SMTRow struct {
	Workload string
	// BaseThreads/BasePower are (SAT+BAT)'s decision and power on the
	// no-SMT machine; SMTThreads/SMTPower on the 2-way-SMT machine.
	BaseThreads, SMTThreads     float64
	BaseCycles, SMTCycles       uint64
	BasePower, SMTPower         float64
	BaseContexts, SMTContextCap int
}

// SMT reproduces the paper's Section-9 claim that FDT's conclusions
// carry over to SMT-enabled CMPs: on a machine with 32 cores x 2
// contexts, the limiters are unchanged — a synchronization-limited
// kernel still wants few threads, a bandwidth-limited kernel still
// wants just enough to saturate the bus — and FDT's counters measure
// them the same way, so its decisions stay sensible without any
// SMT-specific logic.
type SMT struct {
	Rows []SMTRow
}

// RunSMT executes the experiment over one workload per class. The
// no-SMT baselines are the memoized Fig 14 runs; only the 2-way-SMT
// machine simulates fresh.
func RunSMT(o Options) SMT {
	var s SMT
	smtCfg := o.Cfg.WithSMT(2)
	smtOpts := o
	smtOpts.Cfg = smtCfg
	names := []string{"pagemine", "ed", "bscholes"}
	s.Rows = make([]SMTRow, len(names))
	runner.Map(len(names), func(i int) {
		name := names[i]
		base := runNamed(o, name, core.Combined{})
		smt := runNamed(smtOpts, name, core.Combined{})
		s.Rows[i] = SMTRow{
			Workload:      name,
			BaseThreads:   base.AvgThreads(),
			SMTThreads:    smt.AvgThreads(),
			BaseCycles:    base.TotalCycles,
			SMTCycles:     smt.TotalCycles,
			BasePower:     base.AvgActiveCores,
			SMTPower:      smt.AvgActiveCores,
			BaseContexts:  o.Cfg.Mem.Cores * o.Cfg.SMTContexts,
			SMTContextCap: smtCfg.Mem.Cores * smtCfg.SMTContexts,
		}
	})
	return s
}

// String renders the comparison.
func (s SMT) String() string {
	var b strings.Builder
	b.WriteString("SMT machine (Section 9): SAT+BAT on 32 cores x 1 vs 32 cores x 2 contexts\n")
	fmt.Fprintf(&b, "  %-10s %14s %14s %12s %12s\n", "workload", "threads 1xSMT", "threads 2xSMT", "power 1x", "power 2x")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "  %-10s %14.1f %14.1f %12.2f %12.2f\n",
			r.Workload, r.BaseThreads, r.SMTThreads, r.BasePower, r.SMTPower)
	}
	return b.String()
}

// CSV renders the comparison as CSV.
func (s SMT) CSV() string {
	var b strings.Builder
	b.WriteString("workload,base_threads,smt_threads,base_cycles,smt_cycles,base_power,smt_power\n")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%s,%.2f,%.2f,%d,%d,%.4f,%.4f\n",
			r.Workload, r.BaseThreads, r.SMTThreads, r.BaseCycles, r.SMTCycles, r.BasePower, r.SMTPower)
	}
	return b.String()
}
