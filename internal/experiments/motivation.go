package experiments

import (
	"fmt"
	"strings"
)

// Fig02 reproduces Figure 2: PageMine's normalized execution time as
// the thread count grows from 1 to 32 — the U-shaped curve that
// motivates SAT. The paper's curve falls until ~4 threads and rises
// substantially beyond 6.
type Fig02 struct {
	Curve Curve
}

// RunFig02 executes the experiment.
func RunFig02(o Options) Fig02 {
	return Fig02{Curve: sweep(o, "pagemine")}
}

// String renders the figure.
func (f Fig02) String() string {
	var b strings.Builder
	b.WriteString("Figure 2: PageMine execution time vs thread count\n")
	formatCurve(&b, f.Curve)
	return b.String()
}

// Fig04 reproduces Figure 4: ED's normalized execution time (a) and
// bus utilization (b) versus thread count. The paper's time falls
// until 8 threads and is flat after; utilization climbs linearly to
// 100% at ~8 threads.
type Fig04 struct {
	Curve Curve
}

// RunFig04 executes the experiment.
func RunFig04(o Options) Fig04 {
	return Fig04{Curve: sweep(o, "ed")}
}

// SaturationThreads reports the fewest swept threads whose bus
// utilization reached 95%.
func (f Fig04) SaturationThreads() int {
	for _, p := range f.Curve.Points {
		if p.BusUtil >= 0.95 {
			return p.Threads
		}
	}
	return 0
}

// String renders the figure.
func (f Fig04) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: ED execution time (a) and bus utilization (b) vs thread count\n")
	formatCurve(&b, f.Curve)
	fmt.Fprintf(&b, "  bus saturates (>=95%%) at %d threads\n", f.SaturationThreads())
	return b.String()
}
