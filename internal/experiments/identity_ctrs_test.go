package experiments

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

// TestRunIdentityPR9 pins the default single-frequency pipeline
// bit-identical to the pre-DVFS release (satellite 1's execution
// half): testdata/identity_ctrs_pr9.txt was captured from the
// unmodified PR 9 tree, and a machine with no P-state ladder must
// reproduce every decision, cycle count, power figure and raw counter
// byte-for-byte. Any diff means the DVFS plumbing leaked into the
// default path.
func TestRunIdentityPR9(t *testing.T) {
	data, err := os.ReadFile("../../testdata/identity_ctrs_pr9.txt")
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	var got []string
	for _, name := range []string{"pagemine", "ed"} {
		for _, pol := range []core.Policy{core.Static{}, core.Combined{}} {
			info, ok := workloads.ByName(name)
			if !ok {
				t.Fatalf("workload %q not registered", name)
			}
			cfg := machine.DefaultConfig().WithCores(8)
			m := machine.MustNew(cfg)
			ctl := core.NewController(pol)
			res := ctl.Run(m, info.Factory(m))
			got = append(got,
				fmt.Sprintf("%s/%s cycles=%d power=%.6f bus=%d", name, res.Policy,
					res.TotalCycles, res.AvgActiveCores, res.BusBusyCycles),
				fmt.Sprintf("%s/%s ctrs=%s", name, res.Policy, m.Ctrs))
			// The DVFS-only report fields must stay at their zero
			// values, so the JSON encoding (all omitempty) is unchanged.
			if res.Energy != nil {
				t.Errorf("%s/%s: Energy set on a single-frequency run", name, res.Policy)
			}
			for _, k := range res.Kernels {
				if k.Decision.FreqIndex != 0 || k.Decision.Freq != "" || k.Decision.PredPower != 0 {
					t.Errorf("%s/%s kernel %s: DVFS decision fields set: %+v",
						name, res.Policy, k.Kernel, k.Decision)
				}
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("line count drifted: got %d, golden file has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("run identity drifted from PR 9 at line %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}
