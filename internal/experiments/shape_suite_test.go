package experiments_test

// The fast shape suite: every registered figure-shape assertion runs
// against the same reduced sweep the experiment tests use, sharing
// their process-wide run cache (this external test package compiles
// into the same test binary as the package's own tests). Heavy
// assertions — the ones re-running oracle or page-size sweeps — are
// skipped under -short, mirroring the experiment tests they shadow.
// The full 1..32 sweep lives behind the fullsweep build tag in
// shape_full_test.go.

import (
	"os"
	"testing"

	"fdt/internal/core"
	"fdt/internal/experiments"
	"fdt/internal/experiments/shape"
)

// fastOptions mirrors testOptions in experiments_test.go: the
// 13-point sweep that keeps tier-1 cheap while preserving every
// curve's shape. With FDT_SAMPLED=1 in the environment every run
// executes in sampled mode — CI's sampled-shapes job uses this to
// assert the paper's figure shapes survive steady-state
// extrapolation (the errors TestSampledErrorGate bounds).
func fastOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.SweepThreads = []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 24, 32}
	if os.Getenv("FDT_SAMPLED") != "" {
		o.Mode = core.SampledMode()
	}
	return o
}

func TestShapeSuite(t *testing.T) {
	o := fastOptions()
	for _, a := range shape.Assertions() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			if a.Heavy && testing.Short() {
				t.Skip("heavy assertion (full experiment re-run)")
			}
			if err := a.Check(o); err != nil {
				t.Errorf("claim: %s\nviolation: %v", a.Claim, err)
			}
		})
	}
}
