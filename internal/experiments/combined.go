package experiments

import (
	"fmt"
	"strings"

	"fdt/internal/core"
	"fdt/internal/runner"
	"fdt/internal/stats"
	"fdt/internal/workloads"
)

// AllWorkloads lists the twelve applications in the paper's Fig 14/15
// order: synchronization-limited, bandwidth-limited, scalable.
var AllWorkloads = []string{
	"pagemine", "isort", "gsearch", "ep",
	"ed", "convert", "transpose", "mtwister",
	"bt", "mg", "bscholes", "sconv",
}

// Fig14Row is one application's bars in Figure 14.
type Fig14Row struct {
	Workload string
	Class    workloads.Class
	// NormTime and NormPower are (SAT+BAT) relative to conventional
	// threading with as many threads as cores.
	NormTime  float64
	NormPower float64
	// Threads is the cycle-weighted average team size FDT chose.
	Threads float64
}

// Fig14 reproduces Figure 14: execution time and power of (SAT+BAT)
// normalized to 32 static threads, for all twelve applications plus
// the geometric mean. The paper reports gmean time 0.83 (-17%) and
// gmean power 0.41 (-59%).
type Fig14 struct {
	Rows       []Fig14Row
	GmeanTime  float64
	GmeanPower float64
}

// RunFig14 executes the experiment. The twelve workloads simulate in
// parallel on the runner's worker pool; the conventional-threading
// baselines and FDT runs are memoized, so Fig 8/12/15 reuse them.
func RunFig14(o Options) Fig14 {
	var f Fig14
	f.Rows = make([]Fig14Row, len(AllWorkloads))
	runner.Map(len(AllWorkloads), func(i int) {
		name := AllWorkloads[i]
		info, _ := workloads.ByName(name)
		base := runNamed(o, name, core.Static{})
		fdt := runNamed(o, name, core.Combined{})
		f.Rows[i] = Fig14Row{
			Workload:  name,
			Class:     info.Class,
			NormTime:  float64(fdt.TotalCycles) / float64(base.TotalCycles),
			NormPower: fdt.AvgActiveCores / base.AvgActiveCores,
			Threads:   fdt.AvgThreads(),
		}
	})
	var times, powers []float64
	for _, row := range f.Rows {
		times = append(times, row.NormTime)
		powers = append(powers, row.NormPower)
	}
	f.GmeanTime = stats.Gmean(times)
	f.GmeanPower = stats.Gmean(powers)
	return f
}

// String renders the figure.
func (f Fig14) String() string {
	var b strings.Builder
	b.WriteString("Figure 14: (SAT+BAT) normalized to 32 static threads\n")
	fmt.Fprintf(&b, "  %-10s %-12s %9s %9s %8s\n", "workload", "class", "norm.time", "norm.pwr", "threads")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %-10s %-12s %9.3f %9.3f %8.1f\n", r.Workload, r.Class, r.NormTime, r.NormPower, r.Threads)
	}
	fmt.Fprintf(&b, "  %-10s %-12s %9.3f %9.3f\n", "gmean", "", f.GmeanTime, f.GmeanPower)
	return b.String()
}

// Fig15Row is one application's bars in Figure 15.
type Fig15Row struct {
	Workload string
	// FDTTime/FDTPower are (SAT+BAT) normalized to 32 threads;
	// OracleTime/OraclePower are the best static policy's, likewise
	// normalized. OracleThreads is the static count the offline
	// search selected.
	FDTTime, OracleTime   float64
	FDTPower, OraclePower float64
	OracleThreads         int
}

// Fig15 reproduces Figure 15: (SAT+BAT) versus the oracle static
// policy (fewest threads within 1% of the minimum execution time,
// found by exhaustive offline simulation). The paper's headline: FDT
// matches the oracle everywhere and beats it on MTwister's power by
// 31%, because no single static count fits both MTwister kernels.
type Fig15 struct {
	Rows            []Fig15Row
	GmeanFDTTime    float64
	GmeanOracleTime float64
	GmeanFDTPower   float64
	GmeanOraclePwr  float64
}

// RunFig15 executes the experiment. It is the heaviest experiment in
// the suite: the oracle simulates every swept thread count for every
// application. The per-workload oracles fan out in parallel, and
// every run is memoized — the static sweeps behind Fig 8 and Fig 12
// and the FDT/baseline runs behind Fig 14 are recalled, not re-run.
func RunFig15(o Options) Fig15 {
	var f Fig15
	f.Rows = make([]Fig15Row, len(AllWorkloads))
	runner.Map(len(AllWorkloads), func(i int) {
		name := AllWorkloads[i]
		oracle := oracleOver(o, name, factory(name))
		fdt := runNamed(o, name, core.Combined{})
		base := runNamed(o, name, core.Static{})
		f.Rows[i] = Fig15Row{
			Workload:      name,
			FDTTime:       float64(fdt.TotalCycles) / float64(base.TotalCycles),
			OracleTime:    float64(oracle.Run.TotalCycles) / float64(base.TotalCycles),
			FDTPower:      fdt.AvgActiveCores / base.AvgActiveCores,
			OraclePower:   oracle.Run.AvgActiveCores / base.AvgActiveCores,
			OracleThreads: oracle.Threads,
		}
	})
	var ft, ot, fp, op []float64
	for _, row := range f.Rows {
		ft = append(ft, row.FDTTime)
		ot = append(ot, row.OracleTime)
		fp = append(fp, row.FDTPower)
		op = append(op, row.OraclePower)
	}
	f.GmeanFDTTime = stats.Gmean(ft)
	f.GmeanOracleTime = stats.Gmean(ot)
	f.GmeanFDTPower = stats.Gmean(fp)
	f.GmeanOraclePwr = stats.Gmean(op)
	return f
}

// oracleOver runs the oracle restricted to the options' sweep set,
// with the sweep memoized under the workload key.
func oracleOver(o Options, wkey string, fac core.Factory) core.OracleResult {
	ts := o.threads()
	runs := core.SweepKeyedMode(o.Cfg, wkey, fac, ts, o.Mode)
	times := make([]uint64, len(runs))
	for i, r := range runs {
		times[i] = r.TotalCycles
	}
	idx := stats.FewestWithin(times, 0.01)
	return core.OracleResult{Threads: ts[idx], Run: runs[idx], Sweep: runs}
}

// String renders the figure.
func (f Fig15) String() string {
	var b strings.Builder
	b.WriteString("Figure 15: (SAT+BAT) vs oracle static policy (normalized to 32 threads)\n")
	fmt.Fprintf(&b, "  %-10s %9s %9s %9s %9s %8s\n",
		"workload", "fdt.time", "orc.time", "fdt.pwr", "orc.pwr", "orc.thr")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %-10s %9.3f %9.3f %9.3f %9.3f %8d\n",
			r.Workload, r.FDTTime, r.OracleTime, r.FDTPower, r.OraclePower, r.OracleThreads)
	}
	fmt.Fprintf(&b, "  %-10s %9.3f %9.3f %9.3f %9.3f\n",
		"gmean", f.GmeanFDTTime, f.GmeanOracleTime, f.GmeanFDTPower, f.GmeanOraclePwr)
	return b.String()
}
