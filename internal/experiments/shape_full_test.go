//go:build fullsweep

package experiments_test

// The full-resolution shape suite: every assertion over the complete
// 1..32 thread sweep, the resolution EXPERIMENTS.md's figures are
// rendered at. Too slow for tier-1 — CI runs it in its own job with
//
//	go test -tags fullsweep -run TestShapeSuiteFullSweep ./internal/experiments/
//
// where the run cache amortizes the sweeps across assertions exactly
// as the figure generators do.

import (
	"testing"

	"fdt/internal/experiments"
	"fdt/internal/experiments/shape"
)

func TestShapeSuiteFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1..32 sweeps")
	}
	o := experiments.DefaultOptions()
	for _, a := range shape.Assertions() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			if err := a.Check(o); err != nil {
				t.Errorf("claim: %s\nviolation: %v", a.Claim, err)
			}
		})
	}
}
