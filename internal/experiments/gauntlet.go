package experiments

import (
	"fmt"
	"strings"

	"fdt/internal/core"
	"fdt/internal/runner"
	"fdt/internal/workloads"
)

// This file implements the robustness gauntlet: every controller —
// the paper's static and feedback policies, the adaptive pipeline,
// the hill-climbing baseline and the hybrid controller — scored
// against the static oracle on the adversarial workload family
// (internal/workloads/gauntlet.go), whose members each break one
// assumption behind Eq. 3/5/7. The paper's own figures show the
// policies where their assumptions hold; this table shows what each
// one costs where they don't.
//
// The family always executes exactly, whatever Options.Mode says:
// hill-climbing and hybrid probes time real chunks, and the oracle
// must be measured in the same mode as the contenders.

// GauntletRow is one (member, controller) score.
type GauntletRow struct {
	Workload string
	Policy   string
	Cycles   uint64
	// VsOracle is Cycles over the member's static-oracle cycles
	// (1.0 = matched the best static allocation).
	VsOracle float64
	Power    float64
	// AvgThreads is the cycle-weighted average team size.
	AvgThreads float64
	// Retrains counts monitor-triggered re-trainings; Fallbacks and
	// Recoveries count the hybrid state machine's transitions.
	Retrains, Fallbacks, Recoveries int
}

// GauntletMemberResult is one adversarial member's full scoreboard.
type GauntletMemberResult struct {
	// Workload names the member; Breaks the model assumption it
	// violates (from workloads.GauntletMembers).
	Workload, Breaks string
	// OracleThreads/OracleCycles locate the static oracle — the best
	// fixed allocation over the sweep grid.
	OracleThreads int
	OracleCycles  uint64
	Rows          []GauntletRow
}

// Gauntlet is the robustness experiment's result.
type Gauntlet struct {
	Members []GauntletMemberResult
}

// gauntletPolicies lists the scored controllers in table order.
func gauntletPolicies() []string {
	return []string{"serial", "sat", "bat", "sat+bat", "adaptive", "hill-climb", "hybrid"}
}

// gauntletRun executes one controller on one member (exact mode,
// through the run cache).
func gauntletRun(o Options, name, policy string) core.RunResult {
	f := factory(name)
	switch policy {
	case "serial":
		return core.RunPolicyKeyed(o.Cfg, name, f, core.Static{N: 1})
	case "sat":
		return core.RunPolicyKeyed(o.Cfg, name, f, core.SAT{})
	case "bat":
		return core.RunPolicyKeyed(o.Cfg, name, f, core.BAT{})
	case "sat+bat":
		return core.RunPolicyKeyed(o.Cfg, name, f, core.Combined{})
	case "adaptive":
		return core.RunAdaptiveKeyed(o.Cfg, name, f, core.Combined{}, core.DefaultMonitorParams())
	case "hill-climb":
		return core.RunHillClimbKeyed(o.Cfg, name, f, core.HillClimb{})
	case "hybrid":
		return core.RunHybridKeyed(o.Cfg, name, f, core.Hybrid{})
	}
	panic(fmt.Sprintf("experiments: unknown gauntlet policy %q", policy))
}

// RunGauntlet executes the family: every member swept for its static
// oracle, every controller scored against it. Runs fan out over the
// worker pool and memoize like every other figure.
func RunGauntlet(o Options) Gauntlet {
	members := workloads.GauntletMembers()
	policies := gauntletPolicies()
	exact := o
	exact.Mode = core.ExactMode()

	type job struct{ member, policy int }
	var jobs []job
	for mi := range members {
		for pi := range policies {
			jobs = append(jobs, job{mi, pi})
		}
	}
	runs := make([]core.RunResult, len(jobs))
	curves := make([]Curve, len(members))
	runner.Map(len(jobs)+len(members), func(i int) {
		if i < len(jobs) {
			runs[i] = gauntletRun(exact, members[jobs[i].member].Name, policies[jobs[i].policy])
			return
		}
		curves[i-len(jobs)] = sweep(exact, members[i-len(jobs)].Name)
	})

	var out Gauntlet
	for mi, m := range members {
		mr := GauntletMemberResult{
			Workload:      m.Name,
			Breaks:        m.Breaks,
			OracleThreads: curves[mi].MinThreads,
			OracleCycles:  curves[mi].MinCycles,
		}
		for pi, pol := range policies {
			r := runs[mi*len(policies)+pi]
			row := GauntletRow{
				Workload:   m.Name,
				Policy:     pol,
				Cycles:     r.TotalCycles,
				VsOracle:   float64(r.TotalCycles) / float64(mr.OracleCycles),
				Power:      r.AvgActiveCores,
				AvgThreads: r.AvgThreads(),
			}
			for _, k := range r.Kernels {
				row.Retrains += k.Retrains
				row.Fallbacks += k.Fallbacks
				row.Recoveries += k.Recoveries
			}
			mr.Rows = append(mr.Rows, row)
		}
		out.Members = append(out.Members, mr)
	}
	return out
}

// Row finds one (member, policy) score.
func (g Gauntlet) Row(workload, policy string) (GauntletRow, bool) {
	for _, m := range g.Members {
		if m.Workload != workload {
			continue
		}
		for _, r := range m.Rows {
			if r.Policy == policy {
				return r, true
			}
		}
	}
	return GauntletRow{}, false
}

// Member finds one member's scoreboard.
func (g Gauntlet) Member(workload string) (GauntletMemberResult, bool) {
	for _, m := range g.Members {
		if m.Workload == workload {
			return m, true
		}
	}
	return GauntletMemberResult{}, false
}

// Best reports the member's best-scoring controller row.
func (m GauntletMemberResult) Best() GauntletRow {
	best := m.Rows[0]
	for _, r := range m.Rows[1:] {
		if r.Cycles < best.Cycles {
			best = r
		}
	}
	return best
}

// String renders the robustness table.
func (g Gauntlet) String() string {
	var b strings.Builder
	b.WriteString("Robustness gauntlet: controllers vs the static oracle on adversarial members\n")
	for _, m := range g.Members {
		fmt.Fprintf(&b, "\n %s — breaks: %s\n", m.Workload, m.Breaks)
		fmt.Fprintf(&b, "  oracle: %d threads, %d cycles\n", m.OracleThreads, m.OracleCycles)
		fmt.Fprintf(&b, "  %-11s %12s %9s %8s %8s %9s %6s %5s\n",
			"policy", "cycles", "vs.oracle", "power", "threads", "retrains", "fall", "rec")
		best := m.Best()
		for _, r := range m.Rows {
			marker := ""
			if r.Policy == best.Policy {
				marker = "  <- best"
			}
			fmt.Fprintf(&b, "  %-11s %12d %8.3fx %8.2f %8.1f %9d %6d %5d%s\n",
				r.Policy, r.Cycles, r.VsOracle, r.Power, r.AvgThreads,
				r.Retrains, r.Fallbacks, r.Recoveries, marker)
		}
	}
	return b.String()
}

// CSV renders the family as CSV.
func (g Gauntlet) CSV() string {
	var b strings.Builder
	b.WriteString("workload,breaks,oracle_threads,oracle_cycles,policy,cycles,vs_oracle,power,avg_threads,retrains,fallbacks,recoveries\n")
	for _, m := range g.Members {
		for _, r := range m.Rows {
			fmt.Fprintf(&b, "%s,%q,%d,%d,%s,%d,%.4f,%.4f,%.2f,%d,%d,%d\n",
				m.Workload, m.Breaks, m.OracleThreads, m.OracleCycles,
				r.Policy, r.Cycles, r.VsOracle, r.Power, r.AvgThreads,
				r.Retrains, r.Fallbacks, r.Recoveries)
		}
	}
	return b.String()
}
