package experiments

import (
	"strings"
	"testing"

	"fdt/internal/workloads"
)

// testOptions uses a reduced sweep so the shape checks stay fast.
func testOptions() Options {
	o := DefaultOptions()
	o.SweepThreads = []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 24, 32}
	return o
}

func TestFig02PageMineUShape(t *testing.T) {
	f := RunFig02(testOptions())
	c := f.Curve
	if c.MinThreads < 2 || c.MinThreads > 8 {
		t.Errorf("PageMine minimum at %d threads, paper has ~4-6", c.MinThreads)
	}
	last := c.Points[len(c.Points)-1]
	minNorm := float64(c.MinCycles) / float64(c.Points[0].Cycles)
	if last.NormTime < minNorm*1.3 {
		t.Errorf("PageMine time at 32 threads (%.3f) does not rise substantially above min (%.3f)",
			last.NormTime, minNorm)
	}
	if s := f.String(); !strings.Contains(s, "pagemine") {
		t.Error("render missing workload name")
	}
}

func TestFig04EDFlattens(t *testing.T) {
	f := RunFig04(testOptions())
	c := f.Curve
	// Time at 32 threads must be within 15% of the minimum — the
	// L-shaped curve of Fig 4a.
	last := c.Points[len(c.Points)-1]
	if ratio := float64(last.Cycles) / float64(c.MinCycles); ratio > 1.15 {
		t.Errorf("ED time at 32 threads is %.2fx the minimum — curve did not flatten", ratio)
	}
	// Utilization climbs roughly linearly then saturates (Fig 4b).
	sat := f.SaturationThreads()
	if sat < 6 || sat > 12 {
		t.Errorf("ED bus saturates at %d threads, paper has ~8", sat)
	}
	if bu1 := c.Points[0].BusUtil; bu1 < 0.10 || bu1 > 0.20 {
		t.Errorf("ED single-thread bus utilization %.1f%%, paper has 14.3%%", 100*bu1)
	}
}

func TestFig08SATNearMinimum(t *testing.T) {
	if testing.Short() {
		t.Skip("four full sweeps")
	}
	f := RunFig08(testOptions())
	if len(f.Panels) != 4 {
		t.Fatalf("%d panels, want 4", len(f.Panels))
	}
	for _, p := range f.Panels {
		if p.SAT.OverMinPct > 25 {
			t.Errorf("%s: SAT is %.1f%% above the minimum (paper: within 1%%; repo tolerance 25%%)",
				p.Curve.Workload, p.SAT.OverMinPct)
		}
		if n := chosenThreads(p.SAT.Run); n < 2 || n > 12 {
			t.Errorf("%s: SAT chose %d threads, outside the CS-limited regime", p.Curve.Workload, n)
		}
	}
}

func TestFig09BestThreadsGrowWithPageSize(t *testing.T) {
	if testing.Short() {
		t.Skip("page-size sweep is slow")
	}
	o := testOptions()
	f := RunFig09(o)
	first, last := f.BestThreads[0], f.BestThreads[len(f.BestThreads)-1]
	if last <= first {
		t.Errorf("best threads did not grow with page size: %v", f.BestThreads)
	}
	// SAT must track the trend.
	satFirst, satLast := f.SATThreads[0], f.SATThreads[len(f.SATThreads)-1]
	if satLast <= satFirst {
		t.Errorf("SAT did not adapt to page size: %v", f.SATThreads)
	}
}

func TestFig10SATAdaptsToInput(t *testing.T) {
	if testing.Short() {
		t.Skip("two full sweeps")
	}
	f := RunFig10(testOptions())
	small := chosenThreads(f.SATSmall.Run)
	large := chosenThreads(f.SATLarge.Run)
	if large <= small {
		t.Errorf("SAT chose %d threads for 2.5KB and %d for 10KB — no adaptation", small, large)
	}
	if f.SATSmall.OverMinPct > 30 || f.SATLarge.OverMinPct > 30 {
		t.Errorf("SAT too far above min: %.1f%% / %.1f%%", f.SATSmall.OverMinPct, f.SATLarge.OverMinPct)
	}
}

func TestFig12BATSavesPower(t *testing.T) {
	if testing.Short() {
		t.Skip("four full sweeps")
	}
	f := RunFig12(testOptions())
	if len(f.Panels) != 4 {
		t.Fatalf("%d panels, want 4", len(f.Panels))
	}
	for _, p := range f.Panels {
		if p.PowerSavingPct < 30 {
			t.Errorf("%s: BAT saves only %.0f%% power (paper: 31-78%%)", p.Curve.Workload, p.PowerSavingPct)
		}
		if p.BAT.OverMinPct > 45 {
			t.Errorf("%s: BAT is %.1f%% above the minimum time", p.Curve.Workload, p.BAT.OverMinPct)
		}
	}
	// ED specifically: the paper's marquee BAT number is ~78% power
	// saving.
	if ed := f.Panels[0]; ed.PowerSavingPct < 60 {
		t.Errorf("ED: BAT power saving %.0f%%, paper has 78%%", ed.PowerSavingPct)
	}
}

func TestFig13BATAdaptsToBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("two full sweeps on modified machines")
	}
	f := RunFig13(testOptions())
	half := chosenThreads(f.BATHalf.Run)
	double := chosenThreads(f.BATDouble.Run)
	if double <= half {
		t.Errorf("BAT chose %d threads at 0.5x bandwidth and %d at 2x — no adaptation", half, double)
	}
}

func TestFig14CombinedShape(t *testing.T) {
	f := RunFig14(testOptions())
	if len(f.Rows) != 12 {
		t.Fatalf("%d rows, want 12", len(f.Rows))
	}
	for _, r := range f.Rows {
		switch r.Class {
		case workloads.CSLimited:
			if r.NormTime > 0.9 {
				t.Errorf("%s: CS-limited norm time %.2f, want < 0.9", r.Workload, r.NormTime)
			}
			if r.NormPower > 0.5 {
				t.Errorf("%s: CS-limited norm power %.2f, want < 0.5", r.Workload, r.NormPower)
			}
		case workloads.BWLimited:
			if r.NormPower > 0.65 {
				t.Errorf("%s: BW-limited norm power %.2f, want < 0.65", r.Workload, r.NormPower)
			}
			if r.NormTime > 1.35 {
				t.Errorf("%s: BW-limited norm time %.2f, want ~1", r.Workload, r.NormTime)
			}
		case workloads.Scalable:
			if r.NormTime < 0.9 || r.NormTime > 1.15 {
				t.Errorf("%s: scalable norm time %.2f, want ~1", r.Workload, r.NormTime)
			}
			if r.NormPower < 0.85 {
				t.Errorf("%s: scalable norm power %.2f, want ~1 (FDT must not throttle it)", r.Workload, r.NormPower)
			}
			if r.Threads != 32 {
				t.Errorf("%s: scalable got %.0f threads, want 32", r.Workload, r.Threads)
			}
		}
	}
	if f.GmeanTime >= 1.0 {
		t.Errorf("gmean time %.3f, paper has 0.83 (a reduction)", f.GmeanTime)
	}
	if f.GmeanPower >= 0.6 {
		t.Errorf("gmean power %.3f, paper has 0.41", f.GmeanPower)
	}
}

func TestFig15FDTMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweeps every workload")
	}
	f := RunFig15(testOptions())
	if len(f.Rows) != 12 {
		t.Fatalf("%d rows, want 12", len(f.Rows))
	}
	// FDT must be close to the oracle on average without its offline
	// knowledge.
	if f.GmeanFDTTime > f.GmeanOracleTime*1.35 {
		t.Errorf("FDT gmean time %.3f vs oracle %.3f — too far", f.GmeanFDTTime, f.GmeanOracleTime)
	}
	// The MTwister story: per-kernel adaptation beats any static
	// choice on power.
	for _, r := range f.Rows {
		if r.Workload == "mtwister" && r.FDTPower >= r.OraclePower {
			t.Errorf("mtwister: FDT power %.3f not below oracle %.3f (the Fig 15 headline)",
				r.FDTPower, r.OraclePower)
		}
	}
}

func TestTablesRender(t *testing.T) {
	t1 := Table1(DefaultOptions().Cfg)
	for _, want := range []string{"32-core", "MESI", "ring", "split-transaction"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2()
	for _, w := range AllWorkloads {
		if !strings.Contains(t2, w) {
			t.Errorf("Table 2 missing %q", w)
		}
	}
}

func TestAllWorkloadsListMatchesRegistry(t *testing.T) {
	if len(AllWorkloads) != 12 {
		t.Fatalf("AllWorkloads has %d entries", len(AllWorkloads))
	}
	for _, name := range AllWorkloads {
		if _, ok := workloads.ByName(name); !ok {
			t.Errorf("AllWorkloads lists unknown %q", name)
		}
	}
}
