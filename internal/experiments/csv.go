package experiments

import (
	"fmt"
	"strings"
)

// CSV renderings of the experiments, for plotting the figures with
// external tools. Columns mirror what the paper's axes show.

// CSV renders a baseline curve: threads, cycles, normalized time,
// bus utilization, power.
func (c Curve) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload,threads,cycles,norm_time,bus_util,power\n")
	for _, p := range c.Points {
		fmt.Fprintf(&b, "%s,%d,%d,%.6f,%.6f,%.4f\n",
			c.Workload, p.Threads, p.Cycles, p.NormTime, p.BusUtil, p.Power)
	}
	return b.String()
}

// CSV renders Figure 2.
func (f Fig02) CSV() string { return f.Curve.CSV() }

// CSV renders Figure 4.
func (f Fig04) CSV() string { return f.Curve.CSV() }

// CSV renders Figure 8: all four panels plus the SAT points.
func (f Fig08) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload,threads,cycles,norm_time,bus_util,power,sat_threads,sat_norm_time\n")
	for _, panel := range f.Panels {
		satN := chosenThreads(panel.SAT.Run)
		for _, p := range panel.Curve.Points {
			fmt.Fprintf(&b, "%s,%d,%d,%.6f,%.6f,%.4f,%d,%.6f\n",
				panel.Curve.Workload, p.Threads, p.Cycles, p.NormTime, p.BusUtil, p.Power,
				satN, panel.SAT.NormTime)
		}
	}
	return b.String()
}

// CSV renders Figure 9.
func (f Fig09) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "page_bytes,best_threads,sat_threads\n")
	for i := range f.PageBytes {
		fmt.Fprintf(&b, "%d,%d,%d\n", f.PageBytes[i], f.BestThreads[i], f.SATThreads[i])
	}
	return b.String()
}

// CSV renders Figure 10: both page-size curves.
func (f Fig10) CSV() string {
	return f.Small.CSV() + strings.TrimPrefix(f.Large.CSV(), "workload,threads,cycles,norm_time,bus_util,power\n")
}

// CSV renders Figure 12: all four panels plus the BAT points.
func (f Fig12) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload,threads,cycles,norm_time,bus_util,power,bat_threads,bat_norm_time,bat_power_saving_pct\n")
	for _, panel := range f.Panels {
		batN := chosenThreads(panel.BAT.Run)
		for _, p := range panel.Curve.Points {
			fmt.Fprintf(&b, "%s,%d,%d,%.6f,%.6f,%.4f,%d,%.6f,%.2f\n",
				panel.Curve.Workload, p.Threads, p.Cycles, p.NormTime, p.BusUtil, p.Power,
				batN, panel.BAT.NormTime, panel.PowerSavingPct)
		}
	}
	return b.String()
}

// CSV renders Figure 13: both machines' curves.
func (f Fig13) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine,threads,cycles,norm_time,bus_util,power\n")
	emit := func(machine string, c Curve) {
		for _, p := range c.Points {
			fmt.Fprintf(&b, "%s,%d,%d,%.6f,%.6f,%.4f\n",
				machine, p.Threads, p.Cycles, p.NormTime, p.BusUtil, p.Power)
		}
	}
	emit("0.5x", f.Half)
	emit("2x", f.Double)
	return b.String()
}

// CSV renders Figure 14.
func (f Fig14) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload,class,norm_time,norm_power,threads\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%s,%s,%.6f,%.6f,%.2f\n", r.Workload, r.Class, r.NormTime, r.NormPower, r.Threads)
	}
	fmt.Fprintf(&b, "gmean,,%.6f,%.6f,\n", f.GmeanTime, f.GmeanPower)
	return b.String()
}

// CSV renders Figure 15.
func (f Fig15) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload,fdt_time,oracle_time,fdt_power,oracle_power,oracle_threads\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%s,%.6f,%.6f,%.6f,%.6f,%d\n",
			r.Workload, r.FDTTime, r.OracleTime, r.FDTPower, r.OraclePower, r.OracleThreads)
	}
	fmt.Fprintf(&b, "gmean,%.6f,%.6f,%.6f,%.6f,\n",
		f.GmeanFDTTime, f.GmeanOracleTime, f.GmeanFDTPower, f.GmeanOraclePwr)
	return b.String()
}

// CSV renders an ablation.
func (a Ablation) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ablation,config,workload,threads,cycles,bu1_pct,train_iters\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%q,%s,%s,%d,%d,%.4f,%d\n",
			a.Title, r.Config, r.Workload, r.Threads, r.Cycles, r.BU1Pct, r.TrainIters)
	}
	return b.String()
}
