// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark
// runs the full experiment per iteration and reports the figure's
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both times the harness and reprints the reproduction numbers.
// Fig 15's oracle makes it the heaviest benchmark (it simulates every
// swept thread count for all twelve workloads).
package main

import (
	"testing"

	"fdt/internal/core"
	"fdt/internal/experiments"
	"fdt/internal/invariant"
	"fdt/internal/machine"
	"fdt/internal/trace"
	"fdt/internal/workloads"
)

// benchOptions uses the reduced sweep that fdtreport -fast uses; the
// shapes are identical to the full 1..32 sweep.
//
// Each figure benchmark resets the process-wide run cache before its
// timing loop, so the measurement is self-contained: iteration one
// simulates cold and fans out over the host worker pool, later
// iterations recall memoized runs — exactly the behaviour a full
// fdtreport process sees.
func benchOptions(b *testing.B) experiments.Options {
	b.Helper()
	core.ResetRunCache()
	o := experiments.DefaultOptions()
	o.SweepThreads = []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 32}
	return o
}

func BenchmarkTable1MachineBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		machine.MustNew(machine.DefaultConfig())
	}
}

func BenchmarkTable2WorkloadBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, info := range workloads.All() {
			m := machine.MustNew(machine.DefaultConfig())
			info.Factory(m)
		}
	}
}

func BenchmarkFig02PageMineSweep(b *testing.B) {
	var f experiments.Fig02
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig02(o)
	}
	b.ReportMetric(float64(f.Curve.MinThreads), "min-threads")
	last := f.Curve.Points[len(f.Curve.Points)-1]
	b.ReportMetric(last.NormTime, "norm-time@32")
}

func BenchmarkFig04EDSweep(b *testing.B) {
	var f experiments.Fig04
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig04(o)
	}
	b.ReportMetric(float64(f.SaturationThreads()), "saturation-threads")
	b.ReportMetric(100*f.Curve.Points[0].BusUtil, "bu1-pct")
}

func BenchmarkFig08SAT(b *testing.B) {
	var f experiments.Fig08
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig08(o)
	}
	for _, p := range f.Panels {
		b.ReportMetric(p.SAT.OverMinPct, p.Curve.Workload+"-over-min-pct")
	}
}

func BenchmarkFig09PageSizeSweep(b *testing.B) {
	var f experiments.Fig09
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig09(o)
	}
	b.ReportMetric(float64(f.BestThreads[0]), "best@1KB")
	b.ReportMetric(float64(f.BestThreads[len(f.BestThreads)-1]), "best@25KB")
}

func BenchmarkFig10SATAdapt(b *testing.B) {
	var f experiments.Fig10
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig10(o)
	}
	b.ReportMetric(f.SATSmall.OverMinPct, "2.5KB-over-min-pct")
	b.ReportMetric(f.SATLarge.OverMinPct, "10KB-over-min-pct")
}

func BenchmarkFig12BAT(b *testing.B) {
	var f experiments.Fig12
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig12(o)
	}
	for _, p := range f.Panels {
		b.ReportMetric(p.PowerSavingPct, p.Curve.Workload+"-power-saving-pct")
	}
}

func BenchmarkFig13BATAdapt(b *testing.B) {
	var f experiments.Fig13
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig13(o)
	}
	b.ReportMetric(float64(chosen(f.BATHalf.Run)), "threads@0.5x")
	b.ReportMetric(float64(chosen(f.BATDouble.Run)), "threads@2x")
}

func BenchmarkFig14Combined(b *testing.B) {
	var f experiments.Fig14
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig14(o)
	}
	b.ReportMetric(f.GmeanTime, "gmean-norm-time")
	b.ReportMetric(f.GmeanPower, "gmean-norm-power")
}

func BenchmarkFig15Oracle(b *testing.B) {
	var f experiments.Fig15
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig15(o)
	}
	b.ReportMetric(f.GmeanFDTTime, "fdt-gmean-time")
	b.ReportMetric(f.GmeanOracleTime, "oracle-gmean-time")
	b.ReportMetric(f.GmeanFDTPower, "fdt-gmean-power")
	b.ReportMetric(f.GmeanOraclePwr, "oracle-gmean-power")
}

func BenchmarkAblations(b *testing.B) {
	var abl []experiments.Ablation
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		abl = experiments.RunAblations(o)
	}
	// Surface the headline ablation: hill-climb training cost vs FDT's.
	for _, a := range abl {
		for _, r := range a.Rows {
			if r.Config == "hill-climb" && r.Workload == "bscholes" {
				b.ReportMetric(float64(r.TrainIters), "hillclimb-train-iters")
			}
			if r.Config == "FDT (SAT+BAT)" && r.Workload == "bscholes" {
				b.ReportMetric(float64(r.TrainIters), "fdt-train-iters")
			}
		}
	}
}

// chosen extracts a single-kernel run's team size.
func chosen(r core.RunResult) int {
	if len(r.Kernels) == 0 {
		return 0
	}
	return r.Kernels[0].Decision.Threads
}

// BenchmarkSimulatorThroughput measures raw simulation speed: events
// per second of the discrete-event kernel driving the full memory
// system — the headline number for simulator hot-path tuning. It
// deliberately bypasses the run cache (fresh machine per iteration)
// so every iteration pays full simulation cost.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := machine.DefaultConfig()
	info, _ := workloads.ByName("ed")
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.MustNew(cfg)
		core.NewController(core.Static{N: 8}).Run(m, info.Factory(m))
		events += m.Eng.Events()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkSimulatorThroughputDVFS is BenchmarkSimulatorThroughput
// on the laddered machine: the per-core P-state meter tracks
// residencies and the controller runs the (threads, frequency)
// co-search under a budget. Compare events/sec against the flat
// benchmark to read the DVFS accounting overhead; the flat-ladder
// path itself is held to the <=2% regression budget in
// BENCH_PR10.json because the trivial ladder skips all of this.
func BenchmarkSimulatorThroughputDVFS(b *testing.B) {
	cfg := machine.DefaultConfig().WithFreq(machine.DefaultLadder())
	info, _ := workloads.ByName("ed")
	pp := core.PowerParams{Budget: 12, LockState: -1}
	var events uint64
	var energy float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.MustNew(cfg)
		ctl := core.NewController(core.Combined{})
		ctl.Power = &pp
		res := ctl.Run(m, info.Factory(m))
		events += m.Eng.Events()
		energy = res.Energy.Total
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(energy, "energy/op")
}

// BenchmarkSimulatorThroughputSampled is BenchmarkSimulatorThroughput
// in sampled execution mode (DESIGN.md Section 11): steady-state
// regions fast-forward analytically instead of simulating every
// event. simcycles/sec — simulated time retired per wall second, the
// number sampling exists to raise — is the headline; compare against
// the exact benchmark's implied rate to read the speedup.
func BenchmarkSimulatorThroughputSampled(b *testing.B) {
	cfg := machine.DefaultConfig()
	info, _ := workloads.ByName("ed")
	var events, cycles uint64
	var skipped float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.MustNew(cfg)
		ctl := core.NewController(core.Static{N: 8})
		ctl.Mode = core.SampledMode()
		res := ctl.Run(m, info.Factory(m))
		events += m.Eng.Events()
		cycles += res.TotalCycles
		skipped = res.Sampled.SkippedFrac()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/sec")
	b.ReportMetric(100*skipped, "skipped-pct")
}

// BenchmarkSimulatorThroughputTraced is BenchmarkSimulatorThroughput
// with the full trace subsystem armed (all categories, 1<<18-event
// ring) — the cost ceiling of tracing. Compare against the untraced
// benchmark to read the enabled-tracing overhead; the untraced number
// itself is the one held to the <=2% no-tracer regression budget.
func BenchmarkSimulatorThroughputTraced(b *testing.B) {
	cfg := machine.DefaultConfig()
	info, _ := workloads.ByName("ed")
	var events, emitted uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.MustNew(cfg)
		tr := trace.New(1<<18, trace.CatAll)
		m.AttachTracer(tr)
		core.NewController(core.Static{N: 8}).Run(m, info.Factory(m))
		events += m.Eng.Events()
		emitted += tr.Emitted()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(emitted)/float64(b.N), "trace-events/op")
}

// BenchmarkSimulatorThroughputChecked is BenchmarkSimulatorThroughput
// with the runtime invariant checker armed (conservation ledgers,
// queue audits, coherence walk, controller re-derivation) — the cost
// ceiling of -check. The untraced, unchecked benchmark is the one
// held to the <=2% no-instrumentation regression budget.
func BenchmarkSimulatorThroughputChecked(b *testing.B) {
	cfg := machine.DefaultConfig()
	info, _ := workloads.ByName("ed")
	var events, checks uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.MustNew(cfg)
		ck := invariant.New()
		m.AttachChecker(ck)
		core.NewController(core.Static{N: 8}).Run(m, info.Factory(m))
		if err := ck.Err(); err != nil {
			b.Fatal(err)
		}
		events += m.Eng.Events()
		checks += ck.Checks()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(checks)/float64(b.N), "checks/op")
}

// BenchmarkSimulatorThroughputCorun is the multi-tenant counterpart of
// BenchmarkSimulatorThroughput: two teams (ed + convert), each with
// its own FDT controller, packed onto one machine. Events/sec here
// measures the shared-machine hot path with team attribution armed;
// the single-team benchmark is the one held to the <=2% budget.
func BenchmarkSimulatorThroughputCorun(b *testing.B) {
	cfg := machine.DefaultConfig()
	edInfo, _ := workloads.ByName("ed")
	cvInfo, _ := workloads.ByName("convert")
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.MustNew(cfg)
		specs := []core.TeamSpec{
			{Workload: "ed", Factory: edInfo.Factory, Policy: core.Static{N: 8}},
			{Workload: "convert", Factory: cvInfo.Factory, Policy: core.Static{N: 8}},
		}
		if _, err := core.RunCorunOn(m, machine.MapPacked, specs, core.ExactMode()); err != nil {
			b.Fatal(err)
		}
		events += m.Eng.Events()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkAdaptivePhaseShift times the phase-adaptive pipeline on the
// phased workload and reports its wins over train-once FDT — the
// tentpole ablation's headline numbers.
func BenchmarkAdaptivePhaseShift(b *testing.B) {
	cfg := machine.DefaultConfig()
	info, _ := workloads.ByName("phaseshift")
	var ad, once core.RunResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.MustNew(cfg)
		ad = core.NewAdaptiveController(core.Combined{}, core.DefaultMonitorParams()).Run(m, info.Factory(m))
		m2 := machine.MustNew(cfg)
		once = core.NewController(core.Combined{}).Run(m2, info.Factory(m2))
	}
	b.ReportMetric(float64(ad.Kernels[0].Retrains), "retrains")
	b.ReportMetric(float64(once.TotalCycles)/float64(ad.TotalCycles), "speedup-vs-train-once")
	b.ReportMetric(once.AvgActiveCores/ad.AvgActiveCores, "power-ratio-vs-train-once")
}
