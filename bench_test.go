// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark
// runs the full experiment per iteration and reports the figure's
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both times the harness and reprints the reproduction numbers.
// Fig 15's oracle makes it the heaviest benchmark (it simulates every
// swept thread count for all twelve workloads).
package main

import (
	"testing"

	"fdt/internal/core"
	"fdt/internal/experiments"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

// benchOptions uses the reduced sweep that fdtreport -fast uses; the
// shapes are identical to the full 1..32 sweep.
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.SweepThreads = []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 32}
	return o
}

func BenchmarkTable1MachineBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		machine.MustNew(machine.DefaultConfig())
	}
}

func BenchmarkTable2WorkloadBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, info := range workloads.All() {
			m := machine.MustNew(machine.DefaultConfig())
			info.Factory(m)
		}
	}
}

func BenchmarkFig02PageMineSweep(b *testing.B) {
	var f experiments.Fig02
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig02(benchOptions())
	}
	b.ReportMetric(float64(f.Curve.MinThreads), "min-threads")
	last := f.Curve.Points[len(f.Curve.Points)-1]
	b.ReportMetric(last.NormTime, "norm-time@32")
}

func BenchmarkFig04EDSweep(b *testing.B) {
	var f experiments.Fig04
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig04(benchOptions())
	}
	b.ReportMetric(float64(f.SaturationThreads()), "saturation-threads")
	b.ReportMetric(100*f.Curve.Points[0].BusUtil, "bu1-pct")
}

func BenchmarkFig08SAT(b *testing.B) {
	var f experiments.Fig08
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig08(benchOptions())
	}
	for _, p := range f.Panels {
		b.ReportMetric(p.SAT.OverMinPct, p.Curve.Workload+"-over-min-pct")
	}
}

func BenchmarkFig09PageSizeSweep(b *testing.B) {
	var f experiments.Fig09
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig09(benchOptions())
	}
	b.ReportMetric(float64(f.BestThreads[0]), "best@1KB")
	b.ReportMetric(float64(f.BestThreads[len(f.BestThreads)-1]), "best@25KB")
}

func BenchmarkFig10SATAdapt(b *testing.B) {
	var f experiments.Fig10
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig10(benchOptions())
	}
	b.ReportMetric(f.SATSmall.OverMinPct, "2.5KB-over-min-pct")
	b.ReportMetric(f.SATLarge.OverMinPct, "10KB-over-min-pct")
}

func BenchmarkFig12BAT(b *testing.B) {
	var f experiments.Fig12
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig12(benchOptions())
	}
	for _, p := range f.Panels {
		b.ReportMetric(p.PowerSavingPct, p.Curve.Workload+"-power-saving-pct")
	}
}

func BenchmarkFig13BATAdapt(b *testing.B) {
	var f experiments.Fig13
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig13(benchOptions())
	}
	b.ReportMetric(float64(chosen(f.BATHalf.Run)), "threads@0.5x")
	b.ReportMetric(float64(chosen(f.BATDouble.Run)), "threads@2x")
}

func BenchmarkFig14Combined(b *testing.B) {
	var f experiments.Fig14
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig14(benchOptions())
	}
	b.ReportMetric(f.GmeanTime, "gmean-norm-time")
	b.ReportMetric(f.GmeanPower, "gmean-norm-power")
}

func BenchmarkFig15Oracle(b *testing.B) {
	var f experiments.Fig15
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig15(benchOptions())
	}
	b.ReportMetric(f.GmeanFDTTime, "fdt-gmean-time")
	b.ReportMetric(f.GmeanOracleTime, "oracle-gmean-time")
	b.ReportMetric(f.GmeanFDTPower, "fdt-gmean-power")
	b.ReportMetric(f.GmeanOraclePwr, "oracle-gmean-power")
}

func BenchmarkAblations(b *testing.B) {
	var abl []experiments.Ablation
	for i := 0; i < b.N; i++ {
		abl = experiments.RunAblations(benchOptions())
	}
	// Surface the headline ablation: hill-climb training cost vs FDT's.
	for _, a := range abl {
		for _, r := range a.Rows {
			if r.Config == "hill-climb" && r.Workload == "bscholes" {
				b.ReportMetric(float64(r.TrainIters), "hillclimb-train-iters")
			}
			if r.Config == "FDT (SAT+BAT)" && r.Workload == "bscholes" {
				b.ReportMetric(float64(r.TrainIters), "fdt-train-iters")
			}
		}
	}
}

// chosen extracts a single-kernel run's team size.
func chosen(r core.RunResult) int {
	if len(r.Kernels) == 0 {
		return 0
	}
	return r.Kernels[0].Decision.Threads
}

// BenchmarkSimulatorThroughput measures raw simulation speed: events
// per second of the discrete-event kernel driving the full memory
// system — useful when tuning the simulator itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := machine.DefaultConfig()
		info, _ := workloads.ByName("ed")
		fac := func(m *machine.Machine) core.Workload { return info.Factory(m) }
		core.RunPolicy(cfg, fac, core.Static{N: 8})
	}
}
