// Per-kernel adaptation (the paper's Section 5.3 and Fig 15 story):
// MTwister runs two kernels back to back — a compute-bound generator
// that scales to all 32 cores and a bandwidth-bound Box-Muller
// transform that saturates early. No single static thread count is
// right for both; FDT retrains per kernel and beats even the oracle
// static policy on power.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

func main() {
	cfg := machine.DefaultConfig()
	info, _ := workloads.ByName("mtwister")
	factory := func(m *machine.Machine) core.Workload { return info.Factory(m) }

	fdt := core.RunPolicy(cfg, factory, core.Combined{})
	fmt.Println("MTwister under SAT+BAT: per-kernel decisions")
	for _, k := range fdt.Kernels {
		fmt.Printf("  %-22s bu1=%5.2f%%  -> %2d threads (%d cycles)\n",
			k.Kernel, 100*k.Decision.BusUtil1, k.Decision.Threads, k.Cycles)
	}
	fmt.Printf("  cycle-weighted average: %.1f threads\n\n", fdt.AvgThreads())

	// The oracle: the best single static thread count, found by
	// simulating every possibility offline (Section 6.3).
	oracle := core.Oracle(cfg, factory, 0.01)
	fmt.Printf("Best static policy (offline search over 1..%d): %d threads\n",
		cfg.Mem.Cores, oracle.Threads)

	fmt.Printf("\n  %-26s %12s %8s\n", "policy", "exec cycles", "power")
	fmt.Printf("  %-26s %12d %8.2f\n", "oracle static", oracle.Run.TotalCycles, oracle.Run.AvgActiveCores)
	fmt.Printf("  %-26s %12d %8.2f\n", "SAT+BAT (per kernel)", fdt.TotalCycles, fdt.AvgActiveCores)
	fmt.Printf("\nFDT's power is %.0f%% below the oracle's: the oracle must pick one\n",
		100*(1-fdt.AvgActiveCores/oracle.Run.AvgActiveCores))
	fmt.Println("count for the whole program, FDT picks one per kernel.")
}
