// PageMine input-set adaptation (the paper's Section 4.4): the best
// thread count for the same program changes with the page size, and
// SAT — because it trains at runtime — tracks it, while any static
// choice is only right for one input.
//
//	go run ./examples/pagemine
package main

import (
	"fmt"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

func main() {
	cfg := machine.DefaultConfig()
	fmt.Println("SAT vs static threading across PageMine page sizes")
	fmt.Printf("  %-10s %6s %14s %14s %14s\n",
		"page size", "SAT->", "SAT cycles", "static-4", "static-16")

	for _, pageBytes := range []int{1 << 10, 2560, 5280, 10 << 10, 20 << 10} {
		params := workloads.DefaultPageMineParams()
		params.PageBytes = pageBytes
		// Keep total input size roughly constant so runs are comparable.
		params.Pages = 200 * 5280 / pageBytes

		factory := func(m *machine.Machine) core.Workload {
			return workloads.NewPageMine(m, params)
		}
		sat := core.RunPolicy(cfg, factory, core.SAT{})
		s4 := core.RunPolicy(cfg, factory, core.Static{N: 4})
		s16 := core.RunPolicy(cfg, factory, core.Static{N: 16})

		fmt.Printf("  %-10s %6d %14d %14d %14d\n",
			fmt.Sprintf("%dB", pageBytes),
			sat.Kernels[0].Decision.Threads,
			sat.TotalCycles, s4.TotalCycles, s16.TotalCycles)
	}
	fmt.Println("\nSmall pages: merging histograms dominates, SAT stays low;")
	fmt.Println("large pages: parallel work dominates, SAT scales up. The")
	fmt.Println("static columns are each only competitive on part of the range.")
}
