// Quickstart: run one workload on the simulated 32-core CMP under
// conventional threading (as many threads as cores) and under
// Feedback-Driven Threading (SAT+BAT), and compare execution time and
// power.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

func main() {
	// The Table-1 machine: 32 in-order cores, private L1/L2, shared
	// banked L3 on a ring, split-transaction off-chip bus, 32 DRAM
	// banks.
	cfg := machine.DefaultConfig()

	// PageMine — the paper's motivating kernel: a data-mining loop
	// whose per-page histogram merge serializes in a critical
	// section.
	info, _ := workloads.ByName("pagemine")
	factory := func(m *machine.Machine) core.Workload { return info.Factory(m) }

	// Conventional threading: one thread per core.
	conventional := core.RunPolicy(cfg, factory, core.Static{})

	// Feedback-Driven Threading: train on a few iterations, read the
	// cycle and bus counters, apply the SAT and BAT models, execute
	// the rest on min(P_CS, P_BW, cores) threads.
	fdt := core.RunPolicy(cfg, factory, core.Combined{})

	fmt.Println("PageMine on the simulated 32-core CMP")
	fmt.Printf("  %-22s %12s %8s\n", "policy", "exec cycles", "power")
	fmt.Printf("  %-22s %12d %8.2f\n", conventional.Policy, conventional.TotalCycles, conventional.AvgActiveCores)
	fmt.Printf("  %-22s %12d %8.2f\n", fdt.Policy, fdt.TotalCycles, fdt.AvgActiveCores)

	d := fdt.Kernels[0].Decision
	fmt.Printf("\nFDT trained %d iterations, measured a critical-section fraction of %.2f%%\n",
		fdt.Kernels[0].TrainIters, 100*d.CSFraction)
	fmt.Printf("and bus utilization of %.2f%%, and chose %d threads (P_CS=%d, P_BW=%d).\n",
		100*d.BusUtil1, d.Threads, d.PCS, d.PBW)
	fmt.Printf("\nSpeedup %.2fx, power reduced %.0f%%.\n",
		float64(conventional.TotalCycles)/float64(fdt.TotalCycles),
		100*(1-fdt.AvgActiveCores/conventional.AvgActiveCores))
}
