// Machine-configuration adaptation (the paper's Section 5.4): the
// thread count that saturates the off-chip bus depends on the
// machine's bandwidth. BAT measures utilization at runtime, so the
// same binary picks few threads on a narrow-bus machine and many on a
// wide one — a static choice tuned for one machine wastes power or
// performance on the other.
//
//	go run ./examples/bandwidth
package main

import (
	"fmt"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

func main() {
	info, _ := workloads.ByName("convert")
	factory := func(m *machine.Machine) core.Workload { return info.Factory(m) }

	fmt.Println("BAT on machines with different off-chip bandwidth (convert)")
	fmt.Printf("  %-12s %8s %10s %12s %8s\n", "machine", "BU1", "BAT->", "exec cycles", "power")
	for _, scale := range []float64{0.5, 1, 2} {
		cfg := machine.DefaultConfig().WithBandwidth(scale)
		r := core.RunPolicy(cfg, factory, core.BAT{})
		d := r.Kernels[0].Decision
		fmt.Printf("  %-12s %7.1f%% %10d %12d %8.2f\n",
			fmt.Sprintf("%.2gx bus", scale), 100*d.BusUtil1, d.Threads,
			r.TotalCycles, r.AvgActiveCores)
	}
	fmt.Println("\nHalving the bus doubles a thread's measured utilization, so")
	fmt.Println("BAT halves the team; doubling it does the reverse — no")
	fmt.Println("recompilation, no profiling, just the training loop's counters.")
}
