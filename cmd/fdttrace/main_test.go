package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListIncludesExtras(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	// Table 2 plus the extras registry (the phased stress workload).
	for _, want := range []string{"pagemine", "phaseshift"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestBadInvocations(t *testing.T) {
	cases := [][]string{
		{"-workload", "nosuch"},
		{"-policy", "nosuch", "-workload", "ed"},
		{"-events", "nosuchcat"},
		{"-events", ""},
		{"-nosuchflag"},
		{"-corun", "nosuch+mg"},
		{"-corun", "pagemine+mg", "-mapping", "nosuch"},
		{"-corun", "pagemine+mg", "-mapping", "smt"}, // 1 SMT plane, 2 teams
		{"-corun", "pagemine+mg", "-policy", "hybrid"},
		{"-power-budget", "-1"},
		{"-freq-ladder", "notanumber"},
		{"-freq-ladder", "800,1600"}, // must be strictly descending
		{"-power-budget", "5", "-policy", "hybrid"},
		{"-power-budget", "5", "-corun", "pagemine+mg"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want exit 2; stderr: %s", args, code, errb.String())
		}
	}
}

func TestTraceAndTimelineOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulated run")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.json")
	timelinePath := filepath.Join(dir, "t.txt")
	var out, errb bytes.Buffer
	args := []string{"-workload", "ed", "-policy", "static", "-threads", "2",
		"-cores", "8", "-events", "all", "-o", tracePath, "-timeline", timelinePath, "-check"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "invariants ok (") {
		t.Errorf("report missing checker verdict in:\n%s", out.String())
	}

	blob, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace output has no events")
	}

	tl, err := os.ReadFile(timelinePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) == 0 {
		t.Error("timeline output is empty")
	}
}

func TestCorunTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulated co-run")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "c.json")
	var out, errb bytes.Buffer
	args := []string{"-corun", "pagemine+mg", "-mapping", "packed", "-policy", "sat+bat",
		"-cores", "8", "-o", tracePath}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "pagemine+mg") {
		t.Errorf("report missing the pair label in:\n%s", out.String())
	}
	blob, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("co-run trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("co-run trace has no events")
	}
	if !strings.Contains(string(blob), `"mapping"`) {
		t.Error("co-run trace metadata missing the mapping")
	}
}

func TestPowerBudgetTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulated run")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.json")
	var out, errb bytes.Buffer
	args := []string{"-workload", "ed", "-policy", "sat+bat", "-cores", "16",
		"-power-budget", "5.6", "-check", "-o", tracePath}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"energy", "avg chip power, table-driven", "invariants ok ("} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q in:\n%s", want, out.String())
		}
	}
	blob, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Meta map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if doc.Meta["budget"] != "5.6" {
		t.Errorf("trace metadata budget = %q, want 5.6", doc.Meta["budget"])
	}
	if !strings.Contains(doc.Meta["ladder"], "f1600") {
		t.Errorf("trace metadata ladder = %q, want it to name f1600", doc.Meta["ladder"])
	}
}
