// Command fdttrace runs one registered workload on the simulated CMP
// under any threading policy with the trace subsystem armed, and
// writes the captured trace out: Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing) and, optionally, a plain-text
// per-resource utilization timeline.
//
// Usage:
//
//	fdttrace -workload phaseshift -policy adaptive
//	fdttrace -workload pagemine -policy sat+bat -o pagemine.trace.json
//	fdttrace -workload ed -policy static -threads 8 -timeline ed.timeline.txt
//	fdttrace -workload convert -policy bat -events all -buf 1048576
//	fdttrace -workload isort -check
//	fdttrace -list
//
// The exported JSON has one track per core, the off-chip bus, each
// DRAM bank, plus the controller-decision track; open it in
// https://ui.perfetto.dev. Ring-buffer overflow is reported on stderr
// and recorded in the trace metadata (events_dropped) — a truncated
// trace always says so.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fdt/internal/core"
	"fdt/internal/invariant"
	"fdt/internal/machine"
	"fdt/internal/trace"
	"fdt/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable command body: flag errors and unknown inputs
// return 2, write failures and violated invariants return 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdttrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload  = fs.String("workload", "phaseshift", "workload name (see -list)")
		corun     = fs.String("corun", "", "trace two co-scheduled workloads as \"a+b\" (overrides -workload)")
		mapping   = fs.String("mapping", "packed", "thread-to-core mapping for -corun: packed, scattered, smt")
		policy    = fs.String("policy", "adaptive", "threading policy: sat, bat, sat+bat, static, adaptive, hybrid")
		threads   = fs.Int("threads", 0, "thread count for -policy static (0 = all cores)")
		cores     = fs.Int("cores", 32, "cores on the simulated chip")
		bandwidth = fs.Float64("bandwidth", 1.0, "off-chip bandwidth scale factor")
		out       = fs.String("o", "trace.json", "Chrome trace-event JSON output path")
		timeline  = fs.String("timeline", "", "also write a plain-text utilization timeline to this path")
		interval  = fs.Uint64("interval", 10000, "timeline bin width in cycles")
		events    = fs.String("events", "mem,sync,ctl", "traced categories, comma-separated: sim, mem, sync, ctl (or all)")
		bufCap    = fs.Int("buf", 1<<19, "trace ring-buffer capacity in events (newest kept on overflow)")
		list      = fs.Bool("list", false, "list workloads and exit")
		check     = fs.Bool("check", false, "arm the runtime invariant checker (conservation, queueing, coherence, controller equations)")
		useSample = fs.Bool("sampled", false, "ignored: traces always execute exactly (kept for flag parity with fdtsim)")
		budget    = fs.Float64("power-budget", 0, "average-chip-power cap in nominal-active-core units (0 = unconstrained; implies -freq-ladder default)")
		ladderStr = fs.String("freq-ladder", "", "P-state ladder: \"default\" or comma-separated MHz values, nominal first (empty = single-frequency machine)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ladder, errDVFS := machine.ResolveDVFS(*budget, *ladderStr)
	if errDVFS != nil {
		fmt.Fprintln(stderr, "fdttrace:", errDVFS)
		return 2
	}
	dvfs := *budget > 0 || !ladder.Trivial()
	if *useSample {
		// A golden trace must record every simulated event;
		// fast-forwarded regions would leave silent gaps.
		fmt.Fprintln(stdout, "note: fdttrace always executes exactly (a golden trace must record every event); -sampled ignored")
	}

	if *list {
		fmt.Fprintf(stdout, "%-10s %-12s %-28s %s\n", "NAME", "CLASS", "PROBLEM", "INPUT")
		for _, info := range workloads.All() {
			fmt.Fprintf(stdout, "%-10s %-12s %-28s %s\n", info.Name, info.Class, info.Problem, info.Input)
		}
		for _, info := range workloads.Extras() {
			fmt.Fprintf(stdout, "%-10s %-12s %-28s %s\n", info.Name, info.Class, info.Problem, info.Input)
		}
		return 0
	}

	var info workloads.Info
	if *corun == "" {
		var ok bool
		info, ok = workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(stderr, "fdttrace: unknown workload %q (try -list)\n", *workload)
			return 2
		}
	}
	mask, err := parseCategories(*events)
	if err != nil {
		fmt.Fprintln(stderr, "fdttrace:", err)
		return 2
	}

	cfg := machine.DefaultConfig().WithCores(*cores).WithBandwidth(*bandwidth).WithFreq(ladder)
	m := machine.MustNew(cfg)
	tr := trace.New(*bufCap, mask)
	m.AttachTracer(tr)
	var ck *invariant.Checker
	if *check {
		ck = invariant.New()
		m.AttachChecker(ck)
	}
	var res core.RunResult
	meta := map[string]string{
		"cores":     fmt.Sprintf("%d", *cores),
		"bandwidth": fmt.Sprintf("%g", *bandwidth),
	}
	if dvfs {
		meta["budget"] = fmt.Sprintf("%g", *budget)
		meta["ladder"] = ladder.Key()
	}
	if *corun != "" {
		if dvfs {
			fmt.Fprintln(stderr, "fdttrace: -corun does not support -power-budget/-freq-ladder (per-team power attribution is not modeled)")
			return 2
		}
		if strings.ToLower(*policy) == "hybrid" {
			fmt.Fprintln(stderr, "fdttrace: -policy hybrid does not support -corun (its probes own the whole machine)")
			return 2
		}
		a, b, err := workloads.ParsePair(*corun)
		if err != nil {
			fmt.Fprintf(stderr, "fdttrace: %v (try -list)\n", err)
			return 2
		}
		mp, err := machine.ParseMapping(*mapping)
		if err != nil {
			fmt.Fprintln(stderr, "fdttrace:", err)
			return 2
		}
		spec := func(i workloads.Info) core.TeamSpec {
			s := core.TeamSpec{Workload: i.Name, Factory: i.Factory}
			switch strings.ToLower(*policy) {
			case "adaptive":
				s.Policy = core.Combined{}
				p := core.DefaultMonitorParams()
				s.Monitor = &p
			default:
				pol, err := parsePolicy(*policy, *threads)
				if err != nil {
					fmt.Fprintln(stderr, "fdttrace:", err)
					os.Exit(2)
				}
				s.Policy = pol
			}
			return s
		}
		co, err := core.RunCorunOn(m, mp, []core.TeamSpec{spec(a), spec(b)}, core.ExactMode())
		if err != nil {
			fmt.Fprintln(stderr, "fdttrace:", err)
			return 2
		}
		meta["corun"] = a.Name + "+" + b.Name
		meta["mapping"] = co.Mapping
		meta["policy"] = policyLabel(*policy, co.Teams[0].Policy)
		meta["total_cycles"] = fmt.Sprintf("%d", co.TotalCycles)
		res = co.Teams[0].RunResult
		res.Workload = a.Name + "+" + b.Name
		res.TotalCycles = co.TotalCycles
		res.AvgActiveCores = co.AvgActiveCores
		for _, t := range co.Teams[1:] {
			res.Kernels = append(res.Kernels, t.Kernels...)
		}
	} else {
		w := info.Factory(m)
		pp := core.PowerParams{Budget: *budget, LockState: -1}
		switch strings.ToLower(*policy) {
		case "adaptive":
			ctl := core.NewAdaptiveController(core.Combined{}, core.DefaultMonitorParams())
			if dvfs {
				ctl.Power = &pp
			}
			res = ctl.Run(m, w)
		case "hybrid":
			if dvfs {
				fmt.Fprintln(stderr, "fdttrace: -policy hybrid does not support -power-budget/-freq-ladder (its probes time real chunks at nominal frequency)")
				return 2
			}
			res = core.Hybrid{}.Run(m, w)
		default:
			pol, err := parsePolicy(*policy, *threads)
			if err != nil {
				fmt.Fprintln(stderr, "fdttrace:", err)
				return 2
			}
			ctl := core.NewController(pol)
			if dvfs {
				ctl.Power = &pp
			}
			res = ctl.Run(m, w)
		}
		meta["workload"] = res.Workload
		meta["policy"] = policyLabel(*policy, res.Policy)
		meta["total_cycles"] = fmt.Sprintf("%d", res.TotalCycles)
	}
	if err := writeChromeFile(*out, tr, meta); err != nil {
		fmt.Fprintln(stderr, "fdttrace:", err)
		return 1
	}
	if *timeline != "" {
		if err := writeTimelineFile(*timeline, tr, *interval); err != nil {
			fmt.Fprintln(stderr, "fdttrace:", err)
			return 1
		}
	}

	fmt.Fprintf(stdout, "workload   %s under %s: %d cycles, %.2f avg active cores\n",
		res.Workload, policyLabel(*policy, res.Policy), res.TotalCycles, res.AvgActiveCores)
	if res.Energy != nil {
		fmt.Fprintf(stdout, "energy     %.0f core-cycles (%.2f avg chip power, table-driven)\n",
			res.Energy.Total, res.Energy.AvgPower)
	}
	for _, k := range res.Kernels {
		if k.Retrains > 0 {
			fmt.Fprintf(stdout, "kernel     %s: %d phases (%d retrains)\n", k.Kernel, len(k.Phases), k.Retrains)
		}
	}
	fmt.Fprintf(stdout, "trace      %d events captured (%d emitted, %d dropped; categories %s) -> %s\n",
		tr.Len(), tr.Emitted(), tr.Dropped(), mask, *out)
	if *timeline != "" {
		fmt.Fprintf(stdout, "timeline   interval %d cycles -> %s\n", *interval, *timeline)
	}
	if tr.Dropped() > 0 {
		fmt.Fprintf(stderr, "fdttrace: ring buffer overflowed: %d events dropped (oldest first); raise -buf or narrow -events\n",
			tr.Dropped())
	}
	if *check {
		fmt.Fprintf(stdout, "invariants %s\n", ck.Report())
		if err := ck.Err(); err != nil {
			fmt.Fprintln(stderr, "fdttrace:", err)
			return 1
		}
	}
	return 0
}

// policyLabel names the effective policy: the adaptive pseudo-policy
// wraps the combined SAT+BAT policy in a monitored controller.
func policyLabel(requested, resolved string) string {
	if strings.ToLower(requested) == "adaptive" {
		return "adaptive(" + resolved + ")"
	}
	return resolved
}

func writeChromeFile(path string, tr *trace.Tracer, meta map[string]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tr, meta); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTimelineFile(path string, tr *trace.Tracer, interval uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteTimeline(f, tr, interval); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseCategories resolves the -events flag to a category mask.
func parseCategories(s string) (trace.Category, error) {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return trace.CatAll, nil
	}
	var mask trace.Category
	for _, part := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(part)) {
		case "sim":
			mask |= trace.CatSim
		case "mem":
			mask |= trace.CatMem
		case "sync":
			mask |= trace.CatSync
		case "ctl":
			mask |= trace.CatCtl
		case "":
		default:
			return 0, fmt.Errorf("unknown event category %q (want sim, mem, sync, ctl or all)", part)
		}
	}
	if mask == 0 {
		return 0, fmt.Errorf("no event categories selected")
	}
	return mask, nil
}

func parsePolicy(name string, threads int) (core.Policy, error) {
	switch strings.ToLower(name) {
	case "sat":
		return core.SAT{}, nil
	case "bat":
		return core.BAT{}, nil
	case "sat+bat", "combined", "fdt":
		return core.Combined{}, nil
	case "static":
		return core.Static{N: threads}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (want sat, bat, sat+bat, static or adaptive)", name)
	}
}
